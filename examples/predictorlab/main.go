// Predictor lab: an executable tour of the paper's §3 branch-prediction
// model — the 2-bit FSA of Fig. 1 and the loop lemmas of §3.2, verified
// empirically against simulated loop traces, plus a comparison of the
// predictor zoo on a graph-kernel branch trace.
//
//	go run ./examples/predictorlab
package main

import (
	"fmt"

	"bagraph/internal/predictor"
	"bagraph/internal/xrand"
)

func main() {
	fmt.Println("== Fig 1: the 2-bit saturating counter ==")
	states := []predictor.State{
		predictor.StronglyNotTaken, predictor.WeaklyNotTaken,
		predictor.WeaklyTaken, predictor.StronglyTaken,
	}
	for _, s := range states {
		fmt.Printf("  %-20s predicts %-9v taken->%-20s not-taken->%s\n",
			s, s.Predict(), s.Next(true), s.Next(false))
	}

	fmt.Println("\n== §3.2 lemmas, verified by simulation ==")
	fmt.Println("simple loop executed n times (n taken + 1 not-taken test):")
	fmt.Printf("  %3s  %-22s %-22s %s\n", "n", "worst-case misses", "bound (lemmas 2,4-6)", "final state from SNT")
	for _, n := range []int{0, 1, 2, 3, 10, 100} {
		worst := 0
		for _, s0 := range states {
			if r := predictor.SimulateLoop(s0, n); r.Misses > worst {
				worst = r.Misses
			}
		}
		r := predictor.SimulateLoop(predictor.StronglyNotTaken, n)
		fmt.Printf("  %3d  %-22d %-22d %v\n", n, worst, predictor.WorstCaseLoopMisses(n), r.Final)
	}

	fmt.Println("\nnested loop (lemma 3 / corollary 1): k executions of an n=5 inner loop:")
	for _, k := range []int{1, 2, 10, 100} {
		counts := make([]int, k)
		for i := range counts {
			counts[i] = 5
		}
		r := predictor.SimulateNestedLoop(predictor.StronglyNotTaken, counts)
		fmt.Printf("  k=%-4d misses=%-5d bound k+2=%d\n", k, r.Misses, predictor.NestedLoopMissBound(k))
	}

	fmt.Println("\n== predictor zoo on a graph-kernel-like branch trace ==")
	fmt.Println("trace: the SV comparison branch — taken with decaying probability per pass")
	r := xrand.New(7)
	var trace []bool
	for pass := 0; pass < 8; pass++ {
		p := 0.5 / float64(pass+1) // churn decays as labels stabilize
		for i := 0; i < 20000; i++ {
			trace = append(trace, r.Float64() < p)
		}
	}
	for name, factory := range predictor.Catalog() {
		u := factory()
		misses := 0
		for _, taken := range trace {
			if predictor.Observe(u, 3, taken) {
				misses++
			}
		}
		fmt.Printf("  %-18s miss rate %5.2f%%\n", name, 100*float64(misses)/float64(len(trace)))
	}
	fmt.Println("\nthe branch-avoiding kernels sidestep all of the above: a conditional")
	fmt.Println("move executes identically whether the condition holds or not.")
}
