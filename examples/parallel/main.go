// Parallel: run the data-parallel SV and direction-optimizing BFS
// kernels against their sequential oracles on an RMAT graph, sweeping
// worker counts 1..GOMAXPROCS and printing the speedup curve.
//
//	go run ./examples/parallel
//	go run ./examples/parallel -scale 18 -workers 16
package main

import (
	"flag"
	"fmt"
	"log"
	"runtime"
	"time"

	"bagraph/internal/bfs"
	"bagraph/internal/cc"
	"bagraph/internal/gen"
	"bagraph/internal/par"
)

func main() {
	scale := flag.Int("scale", 16, "RMAT scale (2^scale vertices)")
	edgeFactor := flag.Int("edgefactor", 8, "edges per vertex")
	maxWorkers := flag.Int("workers", runtime.GOMAXPROCS(0), "largest worker count to sweep")
	flag.Parse()

	g := gen.RMAT(*scale, *edgeFactor, gen.DefaultRMAT, 42)
	fmt.Println("graph:", g)

	// Sequential oracles: the parallel kernels must reproduce these
	// labelings exactly.
	svStart := time.Now()
	refLabels, svStats := cc.SVHybrid(g, cc.HybridOptions{SwitchIteration: -1})
	svSeq := time.Since(svStart)
	fmt.Printf("sequential SV (hybrid):   %10v  (%d passes)\n", svSeq, svStats.Iterations)

	bfsStart := time.Now()
	refDist, bfsStats := bfs.DirectionOptimizing(g, 0, 0, 0)
	bfsSeq := time.Since(bfsStart)
	fmt.Printf("sequential BFS (dir-opt): %10v  (%d levels, %d reached)\n",
		bfsSeq, bfsStats.Levels, bfsStats.Reached)

	// 1, 2, 4, ... plus the full -workers count itself when it is not a
	// power of two.
	var sweep []int
	for w := 1; w < *maxWorkers; w *= 2 {
		sweep = append(sweep, w)
	}
	if *maxWorkers >= 1 {
		sweep = append(sweep, *maxWorkers)
	}

	fmt.Printf("\n%8s  %12s %8s  %12s %8s\n", "workers", "SV", "speedup", "BFS", "speedup")
	for _, w := range sweep {
		pool := par.NewPool(w)

		start := time.Now()
		labels, _ := cc.SVParallel(g, cc.ParallelOptions{Pool: pool, Variant: cc.Hybrid})
		svPar := time.Since(start)
		for v := range labels {
			if labels[v] != refLabels[v] {
				log.Fatalf("SV workers=%d: label mismatch at vertex %d", w, v)
			}
		}

		start = time.Now()
		dist, _ := bfs.ParallelDO(g, 0, bfs.ParallelOptions{Pool: pool})
		bfsPar := time.Since(start)
		for v := range dist {
			if dist[v] != refDist[v] {
				log.Fatalf("BFS workers=%d: distance mismatch at vertex %d", w, v)
			}
		}

		pool.Close()
		fmt.Printf("%8d  %12v %7.2fx  %12v %7.2fx\n",
			w, svPar, svSeq.Seconds()/svPar.Seconds(), bfsPar, bfsSeq.Seconds()/bfsPar.Seconds())
	}
	fmt.Println("\nall parallel results match the sequential oracles")
}
