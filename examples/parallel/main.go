// Parallel: run the data-parallel SV and direction-optimizing BFS
// kernels against their sequential oracles on an RMAT graph through
// the unified Run API, sweeping worker counts 1..GOMAXPROCS and
// printing the speedup curve.
//
//	go run ./examples/parallel
//	go run ./examples/parallel -scale 18 -workers 16
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"runtime"
	"time"

	"bagraph"
	"bagraph/internal/gen"
)

func main() {
	scale := flag.Int("scale", 16, "RMAT scale (2^scale vertices)")
	edgeFactor := flag.Int("edgefactor", 8, "edges per vertex")
	maxWorkers := flag.Int("workers", runtime.GOMAXPROCS(0), "largest worker count to sweep")
	flag.Parse()

	ctx := context.Background()
	g := gen.RMAT(*scale, *edgeFactor, gen.DefaultRMAT, 42)
	fmt.Println("graph:", g)

	// Sequential oracles: the parallel kernels must reproduce these
	// labelings exactly.
	svStart := time.Now()
	sv, err := bagraph.Run(ctx, g, bagraph.Request{Kind: bagraph.KindCC, CC: bagraph.CCHybrid})
	if err != nil {
		log.Fatal(err)
	}
	svSeq := time.Since(svStart)
	fmt.Printf("sequential SV (hybrid):   %10v  (%d passes)\n", svSeq, sv.Stats.Passes)

	bfsStart := time.Now()
	bfsRes, err := bagraph.Run(ctx, g, bagraph.Request{
		Kind: bagraph.KindBFS, BFS: bagraph.BFSDirectionOptimizing, Root: 0,
	})
	if err != nil {
		log.Fatal(err)
	}
	bfsSeq := time.Since(bfsStart)
	fmt.Printf("sequential BFS (dir-opt): %10v  (%d levels: %d top-down + %d bottom-up, %d reached)\n",
		bfsSeq, bfsRes.Stats.Passes, bfsRes.Stats.TopDownLevels,
		bfsRes.Stats.BottomUpLevels, bfsRes.Stats.Reached)
	refLabels, refDist := sv.Labels, bfsRes.Hops

	// 1, 2, 4, ... plus the full -workers count itself when it is not a
	// power of two.
	var sweep []int
	for w := 1; w < *maxWorkers; w *= 2 {
		sweep = append(sweep, w)
	}
	if *maxWorkers >= 1 {
		sweep = append(sweep, *maxWorkers)
	}

	fmt.Printf("\n%8s  %12s %8s  %12s %8s\n", "workers", "SV", "speedup", "BFS", "speedup")
	for _, w := range sweep {
		// One resident pool and one reusable workspace per worker count:
		// the serving configuration, amortizing both goroutine startup
		// and result-buffer allocation across the two kernel runs.
		pool := bagraph.NewWorkerPool(w)
		ws := &bagraph.Workspace{}

		start := time.Now()
		ccPar, err := pool.Run(ctx, g, bagraph.Request{
			Kind: bagraph.KindCC, CC: bagraph.CCHybrid, Parallel: true, Workspace: ws,
		})
		if err != nil {
			log.Fatal(err)
		}
		svPar := time.Since(start)
		for v := range ccPar.Labels {
			if ccPar.Labels[v] != refLabels[v] {
				log.Fatalf("SV workers=%d: label mismatch at vertex %d", w, v)
			}
		}

		start = time.Now()
		bfsPar, err := pool.Run(ctx, g, bagraph.Request{
			Kind: bagraph.KindBFS, Parallel: true, Root: 0, Workspace: ws,
		})
		if err != nil {
			log.Fatal(err)
		}
		bfsParT := time.Since(start)
		for v := range bfsPar.Hops {
			if bfsPar.Hops[v] != refDist[v] {
				log.Fatalf("BFS workers=%d: distance mismatch at vertex %d", w, v)
			}
		}

		pool.Close()
		fmt.Printf("%8d  %12v %7.2fx  %12v %7.2fx\n",
			w, svPar, svSeq.Seconds()/svPar.Seconds(), bfsParT, bfsSeq.Seconds()/bfsParT.Seconds())
	}
	fmt.Println("\nall parallel results match the sequential oracles")
}
