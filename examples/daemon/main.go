// Daemon: start the query-serving core in-process, fire a burst of
// concurrent BFS queries plus repeated CC queries at it over HTTP, and
// print how the batching dispatcher coalesced them — batch sizes for
// the traversals, cache hits for the components.
//
//	go run ./examples/daemon
//	go run ./examples/daemon -queries 64 -window 2ms
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"sync"
	"time"

	"bagraph"
	"bagraph/internal/serve"
)

func main() {
	queries := flag.Int("queries", 32, "concurrent BFS queries to fire")
	window := flag.Duration("window", 2*time.Millisecond, "batching window")
	flag.Parse()

	g, err := bagraph.CorpusGraph("coAuthorsDBLP", 0.02, 42)
	if err != nil {
		log.Fatal(err)
	}
	reg := serve.NewRegistry()
	if _, err := reg.Add("dblp", g); err != nil {
		log.Fatal(err)
	}
	core := serve.New(reg, serve.Config{BatchWindow: *window})
	defer core.Close()
	ts := httptest.NewServer(core.Handler())
	defer ts.Close()
	fmt.Printf("daemon up at %s serving %v\n", ts.URL, g)

	// A burst of concurrent BFS queries: the window coalesces them
	// into shared dispatches.
	type bfsResp struct {
		Batch   int `json:"batch"`
		Reached int `json:"reached"`
	}
	batches := make([]int, *queries)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < *queries; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, _ := json.Marshal(map[string]any{
				"graph": "dblp", "root": i % g.NumVertices(), "algo": "ba",
			})
			resp, err := http.Post(ts.URL+"/query/bfs", "application/json", bytes.NewReader(body))
			if err != nil {
				log.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				msg, _ := io.ReadAll(resp.Body)
				log.Fatalf("query %d: status %d: %s", i, resp.StatusCode, msg)
			}
			var r bfsResp
			if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
				log.Fatal(err)
			}
			batches[i] = r.Batch
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	hist := map[int]int{}
	for _, b := range batches {
		hist[b]++
	}
	fmt.Printf("%d BFS queries answered in %v; dispatch batch sizes:\n", *queries, elapsed)
	for size, count := range hist {
		fmt.Printf("  batch=%2d × %d queries\n", size, count)
	}

	// Repeated CC queries: the first run computes, the rest hit the
	// epoch cache.
	type ccResp struct {
		Components int  `json:"components"`
		Cached     bool `json:"cached"`
	}
	for i := 0; i < 3; i++ {
		body, _ := json.Marshal(map[string]any{"graph": "dblp", "algo": "par-hybrid"})
		resp, err := http.Post(ts.URL+"/query/cc", "application/json", bytes.NewReader(body))
		if err != nil {
			log.Fatal(err)
		}
		var r ccResp
		if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
			log.Fatal(err)
		}
		resp.Body.Close()
		fmt.Printf("CC query %d: %d components (cached=%v)\n", i+1, r.Components, r.Cached)
	}
}
