// FEM mesh traversal: the workload class of the paper's matrix graphs
// (audikw1, ldoor). Runs all BFS kernels over a 3-D finite-element mesh,
// prints the frontier profile, and demonstrates the paper's negative
// result — the branch-avoiding BFS pays O(|E|) stores and usually loses.
//
//	go run ./examples/meshlevels
package main

import (
	"fmt"
	"log"

	"bagraph"
	"bagraph/internal/bfs"
	"bagraph/internal/gen"
)

func main() {
	// A 26-point-stencil FEM mesh, the structure class of audikw1/ldoor.
	g := gen.Grid3D(20, 20, 20, 1)
	fmt.Println("mesh:", g)

	root := uint32(0)
	dist, st := bfs.TopDownBranchBased(g, root)
	if err := bfs.Verify(g, root, dist); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("levels: %d, reached %d\n", st.Levels, st.Reached)
	fmt.Println("frontier sizes per level:")
	for i, s := range st.LevelSizes {
		bar := ""
		for j := 0; j < s*60/maxOf(st.LevelSizes); j++ {
			bar += "#"
		}
		fmt.Printf("  level %2d %6d %s\n", i, s, bar)
	}

	// Store traffic: the crux of the paper's BFS result.
	_, bbSt := bfs.TopDownBranchBased(g, root)
	_, baSt := bfs.TopDownBranchAvoiding(g, root)
	fmt.Printf("\nstore traffic (distance + queue writes):\n")
	fmt.Printf("  branch-based:    %8d\n", bbSt.DistStores+bbSt.QueueStores)
	fmt.Printf("  branch-avoiding: %8d (%.0fx more — the paper's §6.3 blow-up)\n",
		baSt.DistStores+baSt.QueueStores,
		float64(baSt.DistStores+baSt.QueueStores)/float64(bbSt.DistStores+bbSt.QueueStores))

	// Simulated consequence per platform: branch-avoiding BFS mostly
	// loses; Silvermont (cheap stores) is the exception class.
	fmt.Println("\nsimulated BFS speedup (branch-based / branch-avoiding; <1 = branch-avoiding loses):")
	for _, platform := range bagraph.Platforms() {
		bb, err := bagraph.ProfileBFS(g, root, platform, false)
		if err != nil {
			log.Fatal(err)
		}
		ba, err := bagraph.ProfileBFS(g, root, platform, true)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12s %.2fx\n", platform, bb.TotalSeconds()/ba.TotalSeconds())
	}

	// The direction-optimizing baseline sidesteps the issue entirely by
	// shrinking the number of edge traversals.
	_, doSt := bfs.DirectionOptimizing(g, root, 0, 0)
	fmt.Printf("\ndirection-optimizing baseline: %d levels, %v total\n", doSt.Levels, doSt.Total())
}

func maxOf(xs []int) int {
	m := 1
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
