// Social-network analysis: the workload class that motivates the paper's
// collaboration graphs (coAuthorsDBLP, cond-mat-2005). Builds a community
// network, finds its connected components with every kernel, verifies
// they agree, and reports where the branch-avoiding kernel's advantage
// comes from across the simulated platforms.
//
//	go run ./examples/socialnetwork
package main

import (
	"context"
	"fmt"
	"log"
	"sort"
	"time"

	"bagraph"
	"bagraph/internal/gen"
)

func main() {
	// A clustered collaboration network: 40 communities plus random
	// inter-community collaborations, with some isolated researchers.
	g := gen.Community(40, 120, 0.15, 900, 2025)
	fmt.Println("network:", g)
	st := g.Degrees()
	fmt.Printf("degrees: min %d, mean %.1f, max %d\n", st.Min, st.Mean, st.Max)

	// Compare all CC kernels on wall clock and agreement.
	algos := []bagraph.CCAlgorithm{
		bagraph.CCBranchBased, bagraph.CCBranchAvoiding,
		bagraph.CCHybrid, bagraph.CCUnionFind,
	}
	var ref []uint32
	for _, a := range algos {
		start := time.Now()
		res, err := bagraph.Run(context.Background(), g, bagraph.Request{
			Kind: bagraph.KindCC, CC: a,
		})
		if err != nil {
			log.Fatal(err)
		}
		labels := res.Labels
		elapsed := time.Since(start)
		if ref == nil {
			ref = labels
		} else {
			for v := range ref {
				if labels[v] != ref[v] {
					log.Fatalf("%v disagrees with reference at vertex %d", a, v)
				}
			}
		}
		fmt.Printf("%-22s %10v  components=%d\n", a, elapsed, bagraph.ComponentCount(labels))
	}

	// Community size distribution.
	sizes := map[uint32]int{}
	for _, l := range ref {
		sizes[l]++
	}
	var sorted []int
	for _, s := range sizes {
		sorted = append(sorted, s)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(sorted)))
	fmt.Printf("\nlargest components: %v\n", sorted[:min(5, len(sorted))])

	// Where does branch avoidance pay? Per-platform simulated speedups.
	fmt.Println("\nsimulated SV speedup (branch-based time / branch-avoiding time):")
	for _, platform := range bagraph.Platforms() {
		bb, err := bagraph.ProfileSV(g, platform, false)
		if err != nil {
			log.Fatal(err)
		}
		ba, err := bagraph.ProfileSV(g, platform, true)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12s %.2fx  (mispredictions %d -> %d)\n",
			platform, bb.TotalSeconds()/ba.TotalSeconds(),
			bb.TotalMispredictions(), ba.TotalMispredictions())
	}
}
