// Road-network routing: the weighted shortest-path extension. Builds a
// grid-with-diagonals "road map" with congestion weights, routes with
// Bellman-Ford in both forms and Dijkstra, checks they agree, and shows
// the SV-style trade-off transferring to the weighted propagation kernel.
//
//	go run ./examples/roadnetwork
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"bagraph"
	"bagraph/internal/gen"
	"bagraph/internal/graph"
	"bagraph/internal/xrand"
)

func main() {
	// A city-like road grid: 8-neighbor intersections with congestion
	// weights 1..20 (deterministic per road segment).
	base := gen.Grid2D(60, 60, true)
	roads, err := graph.AttachWeights(base, func(u, v uint32) uint32 {
		if u > v {
			u, v = v, u
		}
		return uint32(xrand.Hash64(uint64(u)<<32|uint64(v)))%20 + 1
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("road network:", roads.Graph)

	src := uint32(0)
	algos := []bagraph.SSSPAlgorithm{
		bagraph.SSSPBellmanFord,
		bagraph.SSSPBellmanFordBranchAvoiding,
		bagraph.SSSPDijkstra,
	}
	var ref []uint64
	for _, a := range algos {
		start := time.Now()
		res, err := bagraph.Run(context.Background(), roads, bagraph.Request{
			Kind: bagraph.KindSSSP, SSSP: a, Root: src,
		})
		if err != nil {
			log.Fatal(err)
		}
		dist := res.Dists
		elapsed := time.Since(start)
		if ref == nil {
			ref = dist
		} else {
			for v := range ref {
				if dist[v] != ref[v] {
					log.Fatalf("%v disagrees at vertex %d", a, v)
				}
			}
		}
		fmt.Printf("%-30s %10v\n", a, elapsed)
	}

	// Farthest intersection and its travel cost.
	far, best := 0, uint64(0)
	for v, d := range ref {
		if d != bagraph.InfDistance && d > best {
			best, far = d, v
		}
	}
	fmt.Printf("\nfarthest intersection from %d: %d (cost %d)\n", src, far, best)

	// Cost histogram in coarse buckets.
	fmt.Println("\ntravel-cost distribution:")
	buckets := make([]int, 8)
	bucketWidth := best/uint64(len(buckets)) + 1
	for _, d := range ref {
		if d != bagraph.InfDistance {
			buckets[d/bucketWidth]++
		}
	}
	for i, c := range buckets {
		bar := ""
		for j := 0; j < c*50/len(ref); j++ {
			bar += "#"
		}
		fmt.Printf("  <%4d %6d %s\n", uint64(i+1)*bucketWidth, c, bar)
	}
}
