// Hybrid SV: the algorithm the paper's §6.2 proposes. Early
// Shiloach-Vishkin passes churn labels and mispredict heavily (the
// branch-avoiding kernel wins); late passes are stable and predictable
// (the branch-based kernel wins). This example locates the crossover on a
// simulated in-order machine and shows the hybrid beating both parents.
//
//	go run ./examples/hybrid
package main

import (
	"context"
	"fmt"
	"log"

	"bagraph"
)

func main() {
	// auto's structure class: a partitioning mesh whose node ordering
	// makes SV take several passes — room for a crossover.
	g, err := bagraph.CorpusGraph("auto", 0.01, 9)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("graph:", g)

	// Bobcat: a small out-of-order core where the conditional move costs
	// enough that the branch-based kernel wins the stable tail, yet the
	// early misprediction-heavy passes still favor branch-avoiding.
	const platform = "Bobcat"
	bb, err := bagraph.ProfileSV(g, platform, false)
	if err != nil {
		log.Fatal(err)
	}
	ba, err := bagraph.ProfileSV(g, platform, true)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nper-pass simulated time on %s:\n", platform)
	fmt.Printf("%5s %14s %14s  %s\n", "pass", "branch-based", "branch-avoid", "faster")
	crossover := -1
	for i := range bb.PerIteration {
		t1 := bb.PerIteration[i].Seconds * 1e6
		t2 := ba.PerIteration[i].Seconds * 1e6
		who := "branch-avoiding"
		if t1 < t2 {
			who = "branch-based"
			if crossover < 0 {
				crossover = i
			}
		}
		fmt.Printf("%5d %12.1fµs %12.1fµs  %s\n", i+1, t1, t2, who)
	}

	totalBB := bb.TotalSeconds()
	totalBA := ba.TotalSeconds()
	fmt.Printf("\npure branch-based:    %8.1fµs\n", totalBB*1e6)
	fmt.Printf("pure branch-avoiding: %8.1fµs\n", totalBA*1e6)

	if crossover < 0 {
		fmt.Println("no crossover on this platform/graph; a pure kernel is optimal")
		return
	}

	// One-way hybrid: branch-avoiding for passes < k, branch-based after.
	best, bestK := 0.0, 0
	for k := 0; k <= len(bb.PerIteration); k++ {
		total := 0.0
		for i := range bb.PerIteration {
			if i < k {
				total += ba.PerIteration[i].Seconds
			} else {
				total += bb.PerIteration[i].Seconds
			}
		}
		if bestK == 0 && k == 0 || total < best {
			best, bestK = total, k
		}
	}
	fmt.Printf("hybrid (switch at %d): %8.1fµs\n", bestK, best*1e6)
	pure := totalBB
	if totalBA < pure {
		pure = totalBA
	}
	fmt.Printf("hybrid vs best pure kernel: %.2fx\n", pure/best)

	// The runnable production version: bagraph.CCHybrid switches
	// adaptively when label churn drops.
	res, err := bagraph.Run(context.Background(), g, bagraph.Request{
		Kind: bagraph.KindCC, CC: bagraph.CCHybrid,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nadaptive native hybrid found %d component(s) in %d passes\n",
		bagraph.ComponentCount(res.Labels), res.Stats.Passes)
}
