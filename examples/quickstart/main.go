// Quickstart: build a graph, run both connected-components and BFS
// kernels, and profile the branch behaviour on a simulated platform.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"bagraph"
)

func main() {
	// A scaled-down stand-in for the paper's cond-mat-2005 collaboration
	// network (Table 2).
	g, err := bagraph.CorpusGraph("cond-mat-2005", 0.05, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("graph:", g)

	// Connected components through the unified Run API: every algorithm
	// returns the same canonical labels (the smallest vertex id in each
	// component), and Result.Stats carries the kernel's pass structure.
	cc, err := bagraph.Run(context.Background(), g, bagraph.Request{
		Kind: bagraph.KindCC, CC: bagraph.CCBranchAvoiding,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("components: %d (%d label-propagation passes, %d label stores)\n",
		bagraph.ComponentCount(cc.Labels), cc.Stats.Passes, cc.Stats.LabelStores)

	// BFS hop distances from vertex 0.
	bfs, err := bagraph.Run(context.Background(), g, bagraph.Request{
		Kind: bagraph.KindBFS, BFS: bagraph.BFSBranchAvoiding, Root: 0,
	})
	if err != nil {
		log.Fatal(err)
	}
	maxHops := uint32(0)
	for _, d := range bfs.Hops {
		if d != bagraph.Unreached && d > maxHops {
			maxHops = d
		}
	}
	fmt.Printf("eccentricity of vertex 0: %d hops (%d levels, %d queue stores)\n",
		maxHops, bfs.Stats.Passes, bfs.Stats.QueueStores)

	// The paper's instrument: simulate both Shiloach-Vishkin variants on
	// a Haswell-class machine model and compare branch behaviour.
	fmt.Println("\nsimulated Shiloach-Vishkin on Haswell (per pass):")
	fmt.Printf("%4s  %12s %12s %14s %12s\n", "pass", "variant", "time", "mispredictions", "stores")
	for _, avoid := range []bool{false, true} {
		p, err := bagraph.ProfileSV(g, "Haswell", avoid)
		if err != nil {
			log.Fatal(err)
		}
		name := "branch-based"
		if avoid {
			name = "branch-avoid"
		}
		for i, it := range p.PerIteration {
			fmt.Printf("%4d  %12s %10.3fµs %14d %12d\n",
				i+1, name, it.Seconds*1e6, it.Mispredictions, it.Stores)
		}
	}

	bb, _ := bagraph.ProfileSV(g, "Haswell", false)
	ba, _ := bagraph.ProfileSV(g, "Haswell", true)
	fmt.Printf("\nspeedup of branch-avoiding over branch-based: %.2fx\n",
		bb.TotalSeconds()/ba.TotalSeconds())
	fmt.Printf("misprediction reduction: %.1fx\n",
		float64(bb.TotalMispredictions())/float64(ba.TotalMispredictions()))
}
