package bagraph

// Property suite for the degree-ordered relabeling layer: for every
// corpus graph (including the Hub multigraph adversary), every kernel
// kind, and every standard worker count, a request against the
// Relabeled view must produce results byte-identical to the same
// request against the raw graph. Runs under -race in CI like the rest
// of the suite.

import (
	"context"
	"testing"

	"bagraph/internal/testutil"
)

// pickRoots returns a deterministic spread of roots for an n-vertex
// graph: the ends plus interior vertices, deduplicated by range.
func pickRoots(n int) []uint32 {
	if n == 0 {
		return nil
	}
	roots := []uint32{0}
	if n > 3 {
		roots = append(roots, uint32(n/2), uint32(n-1))
	}
	return roots
}

func TestRelabeledEquivalence(t *testing.T) {
	testutil.ForEachGraph(t, nil, func(t *testing.T, g *Graph) {
		rl, err := RelabelDegree(g)
		if err != nil {
			t.Fatal(err)
		}
		n := g.NumVertices()
		roots := pickRoots(n)
		for _, workers := range testutil.WorkerCounts {
			for _, parallel := range []bool{false, true} {
				req := Request{Kind: KindCC, CC: CCBranchAvoiding, Parallel: parallel, Workers: workers}
				want := runOK(t, g, req)
				got := runOK(t, rl, req)
				testutil.MustEqualLabels(t, "cc", got.Labels, want.Labels)
				if !parallel {
					break // sequential kernels ignore workers
				}
			}
			for _, root := range roots {
				req := Request{Kind: KindBFS, Parallel: true, Root: root, Workers: workers,
					Schedule: ScheduleStealing}
				want := runOK(t, g, req)
				got := runOK(t, rl, req)
				testutil.MustEqualDists(t, "bfs", got.Hops, want.Hops)
			}
			if n > 0 {
				req := Request{Kind: KindBFSBatch, Roots: roots, Workers: workers}
				want := runOK(t, g, req)
				got := runOK(t, rl, req)
				for i := range want.HopsBatch {
					testutil.MustEqualDists(t, "bfs-batch", got.HopsBatch[i], want.HopsBatch[i])
				}
			}
		}
	})
}

func TestRelabeledWeightedEquivalence(t *testing.T) {
	for _, seed := range testutil.DefaultSeeds {
		for _, w := range testutil.WeightedCorpus(t, seed) {
			rl, err := RelabelDegree(w)
			if err != nil {
				t.Fatal(err)
			}
			roots := pickRoots(w.NumVertices())
			for _, workers := range testutil.WorkerCounts {
				for _, root := range roots {
					for _, lh := range []bool{false, true} {
						req := Request{Kind: KindSSSP, SSSP: SSSPHybrid, Parallel: true,
							Root: root, Workers: workers, LightHeavy: lh}
						want := runOK(t, w, req)
						got := runOK(t, rl, req)
						testutil.MustEqualDists(t, "sssp", got.Dists, want.Dists)
					}
				}
			}
			// The unweighted kinds run on a weighted wrapper's structure.
			req := Request{Kind: KindCC, Parallel: true, Workers: 2}
			want := runOK(t, w, req)
			got := runOK(t, rl, req)
			testutil.MustEqualLabels(t, "cc-on-weighted", got.Labels, want.Labels)
		}
	}
}

// TestRequestRelabelOption checks the Request.Relabel path: same
// results, and the Workspace caches the permuted view across calls.
func TestRequestRelabelOption(t *testing.T) {
	g := testutil.Hub(192, 600)
	ws := &Workspace{}
	for call := 0; call < 3; call++ {
		req := Request{Kind: KindBFS, Parallel: true, Relabel: true, Workspace: ws}
		got := runOK(t, g, req)
		want := runOK(t, g, Request{Kind: KindBFS, Parallel: true})
		testutil.MustEqualDists(t, "bfs-relabel-opt", got.Hops, want.Hops)
	}
	if ws.rl == nil || ws.rl.rel == nil {
		t.Fatal("workspace did not cache the relabeled view")
	}
	first := ws.rl.rel
	runOK(t, g, Request{Kind: KindCC, Parallel: true, Relabel: true, Workspace: ws})
	if ws.rl.rel != first {
		t.Fatal("cached relabeled view rebuilt for the same target")
	}
}

// TestRelabeledWorkspaceReuse checks that a workspace-bearing relabeled
// run reuses the caller-visible output buffers across calls.
func TestRelabeledWorkspaceReuse(t *testing.T) {
	g := testutil.Corpus(1)[0]
	rl, err := RelabelDegree(g)
	if err != nil {
		t.Fatal(err)
	}
	ws := &Workspace{}
	res1 := runOK(t, rl, Request{Kind: KindBFS, Parallel: true, Workspace: ws})
	ptr1 := &res1.Hops[0]
	res2 := runOK(t, rl, Request{Kind: KindBFS, Parallel: true, Root: 1, Workspace: ws})
	if &res2.Hops[0] != ptr1 {
		t.Error("relabeled run did not reuse the workspace Hops buffer")
	}
	want := runOK(t, g, Request{Kind: KindBFS, Parallel: true, Root: 1})
	testutil.MustEqualDists(t, "ws-reuse", res2.Hops, want.Hops)
}

// TestRelabeledAttachWeights checks weight attachment in original ids:
// SSSP on the weighted Relabeled matches SSSP on AttachWeights of the
// raw graph.
func TestRelabeledAttachWeights(t *testing.T) {
	g := testutil.Corpus(2)[0]
	fn := func(u, v uint32) uint32 { return 1 + (u^v)%7 }
	w, err := AttachWeights(g, fn)
	if err != nil {
		t.Fatal(err)
	}
	rl, err := RelabelDegree(g)
	if err != nil {
		t.Fatal(err)
	}
	if rl.Weighted() != nil {
		t.Fatal("unweighted wrapper claims weights")
	}
	if _, err := rl.AttachWeights(fn); err != nil {
		t.Fatal(err)
	}
	if _, err := rl.AttachWeights(fn); err == nil {
		t.Fatal("second AttachWeights accepted")
	}
	req := Request{Kind: KindSSSP, SSSP: SSSPBellmanFordBranchAvoiding}
	want := runOK(t, w, req)
	got := runOK(t, rl, req)
	testutil.MustEqualDists(t, "attach-weights", got.Dists, want.Dists)
}

// TestRelabeledRootValidation checks out-of-range roots fail the same
// way they do unrelabeled, and that errors carry the caller's id.
func TestRelabeledRootValidation(t *testing.T) {
	g := testutil.Corpus(1)[3]
	rl, err := RelabelDegree(g)
	if err != nil {
		t.Fatal(err)
	}
	bad := uint32(g.NumVertices() + 7)
	_, errRaw := Run(context.Background(), g, Request{Kind: KindBFS, Root: bad})
	_, errRel := Run(context.Background(), rl, Request{Kind: KindBFS, Root: bad})
	if errRaw == nil || errRel == nil {
		t.Fatal("out-of-range root accepted")
	}
	if errRaw.Error() != errRel.Error() {
		t.Fatalf("validation messages diverge: %q vs %q", errRaw, errRel)
	}
}

// TestRelabeledStatsWordsScanned checks the locality proxy is populated
// by the succinct sweeps on a graph dense enough to go bottom-up.
func TestRelabeledStatsWordsScanned(t *testing.T) {
	g := testutil.Corpus(1)[0] // rmat: bottom-up levels guaranteed
	res := runOK(t, g, Request{Kind: KindBFS, Parallel: true})
	if res.Stats.BottomUpLevels > 0 && res.Stats.WordsScanned == 0 {
		t.Fatal("bottom-up levels ran but WordsScanned is zero")
	}
	batch := runOK(t, g, Request{Kind: KindBFSBatch, Roots: []uint32{0, 1, 2}})
	if batch.Stats.WordsScanned == 0 {
		t.Fatal("multi-source sweep reported zero WordsScanned")
	}
}
