module bagraph

go 1.22
