package bagraph

// Degree-ordered relabeling: the memory-layout optimization layer. A
// Relabeled wraps a graph whose vertices have been renumbered by
// descending degree (hub clustering, internal/relabel.DegreeOrder) and
// presents it to Run as an ordinary Target: requests are translated into
// the permuted id space on the way in and every result — labels, hops,
// batch hops, weighted distances — is translated back on the way out,
// byte-identical to what the same request produces on the unrelabeled
// graph. No kernel knows the layer exists; what changes is purely where
// vertices live in memory, which concentrates frontier bits into the low
// words of the kernels' succinct bitsets and clusters the hottest CSR
// rows onto shared cache lines.

import (
	"context"
	"fmt"

	"bagraph/internal/graph"
	"bagraph/internal/par"
	"bagraph/internal/relabel"
)

// Relabeled is a degree-ordered view of a graph. Build one with
// RelabelDegree and pass it to Run / WorkerPool.Run wherever a *Graph or
// *WeightedGraph is accepted; results come back in the ORIGINAL vertex
// ids. The wrapper is immutable and safe for concurrent Runs (each run
// carries its own workspace).
type Relabeled struct {
	g    *Graph         // permuted structure
	w    *WeightedGraph // permuted weighted form; nil when built from a *Graph
	perm []uint32       // perm[old] = new
	inv  []uint32       // inv[new] = old
}

// RelabelDegree builds the degree-ordered view of g, which must be a
// *Graph or a *WeightedGraph. The permutation sorts vertices by
// descending degree with ties broken by ascending original id, so the
// layout is deterministic for a given graph.
func RelabelDegree(g Target) (*Relabeled, error) {
	switch t := g.(type) {
	case *WeightedGraph:
		if t == nil {
			return nil, fmt.Errorf("bagraph: RelabelDegree on a nil graph")
		}
		perm := relabel.DegreeOrder(t.Graph)
		pw, err := t.Permute(perm)
		if err != nil {
			return nil, err
		}
		return &Relabeled{g: pw.Graph, w: pw, perm: perm, inv: relabel.Inverse(perm)}, nil
	case *Graph:
		if t == nil {
			return nil, fmt.Errorf("bagraph: RelabelDegree on a nil graph")
		}
		perm := relabel.DegreeOrder(t)
		pg, err := t.Permute(perm)
		if err != nil {
			return nil, err
		}
		return &Relabeled{g: pg, perm: perm, inv: relabel.Inverse(perm)}, nil
	case *Relabeled:
		return t, nil
	case nil:
		return nil, fmt.Errorf("bagraph: RelabelDegree on a nil graph")
	default:
		return nil, fmt.Errorf("bagraph: unsupported graph type %T (want *Graph or *WeightedGraph)", g)
	}
}

// NumVertices returns |V|; Relabeled satisfies Target.
func (r *Relabeled) NumVertices() int { return r.g.NumVertices() }

// Graph returns the permuted structure. Vertex ids in it are PERMUTED
// ids; use Perm/Inv to translate.
func (r *Relabeled) Graph() *Graph { return r.g }

// Weighted returns the permuted weighted form, or nil when the wrapper
// was built from an unweighted *Graph (see AttachWeights).
func (r *Relabeled) Weighted() *WeightedGraph { return r.w }

// Perm returns the forward permutation: Perm()[old] = new. Shared
// storage; do not modify.
func (r *Relabeled) Perm() []uint32 { return r.perm }

// Inv returns the inverse permutation: Inv()[new] = old. Shared storage;
// do not modify.
func (r *Relabeled) Inv() []uint32 { return r.inv }

// AttachWeights derives the weighted form of an unweighted Relabeled,
// assigning each arc the weight fn(u, v) *in original vertex ids* — the
// same arcs get the same weights as bagraph.AttachWeights on the
// unrelabeled graph, so SSSP results stay byte-identical. fn must be
// symmetric for undirected graphs. Returns the wrapper itself, now
// answering weighted requests; calling it on an already weighted wrapper
// is an error (the weights are part of the permuted CSR and cannot be
// swapped in place).
func (r *Relabeled) AttachWeights(fn func(u, v uint32) uint32) (*Relabeled, error) {
	if r.w != nil {
		return nil, fmt.Errorf("bagraph: Relabeled already weighted")
	}
	inv := r.inv
	w, err := graph.AttachWeights(r.g, func(pu, pv uint32) uint32 {
		return fn(inv[pu], inv[pv])
	})
	if err != nil {
		return nil, err
	}
	r.w = w
	return r, nil
}

// String implements fmt.Stringer.
func (r *Relabeled) String() string {
	return fmt.Sprintf("relabeled{%s}", r.g)
}

// relabelScratch holds the permuted-space buffers a relabeled Run needs:
// an inner Workspace the kernels write into, the mapped root list, and
// the CC canonicalization table. It lives inside the caller's Workspace
// so repeated relabeled Runs reuse all of it.
type relabelScratch struct {
	inner Workspace
	roots []uint32
	canon []uint32
	// rel caches the wrapper Request.Relabel built, keyed by the target
	// it was built from.
	rel    *Relabeled
	relFor Target
}

// relabeledFor returns the Relabeled view of g for a Request.Relabel
// run, reusing the one cached in ws (if ws is non-nil and was last used
// with the same target). Without a workspace every call pays the full
// permute — documented on Request.Relabel.
func relabeledFor(g Target, ws *Workspace) (*Relabeled, error) {
	if ws != nil {
		if ws.rl != nil && ws.rl.relFor == g && ws.rl.rel != nil {
			return ws.rl.rel, nil
		}
		rl, err := RelabelDegree(g)
		if err != nil {
			return nil, err
		}
		if ws.rl == nil {
			ws.rl = &relabelScratch{}
		}
		ws.rl.rel, ws.rl.relFor = rl, g
		return rl, nil
	}
	return RelabelDegree(g)
}

// unpermute32 writes src (indexed by permuted id) into dst (indexed by
// original id): dst[old] = src[perm[old]]. dst is reallocated when it
// does not fit.
func unpermute32(dst, src, perm []uint32) []uint32 {
	if src == nil {
		return nil
	}
	if len(dst) != len(src) {
		dst = make([]uint32, len(src))
	}
	for v := range dst {
		dst[v] = src[perm[v]]
	}
	return dst
}

// unpermute64 is unpermute32 for the weighted distances.
func unpermute64(dst []uint64, src []uint64, perm []uint32) []uint64 {
	if src == nil {
		return nil
	}
	if len(dst) != len(src) {
		dst = make([]uint64, len(src))
	}
	for v := range dst {
		dst[v] = src[perm[v]]
	}
	return dst
}

// unpermuteLabels maps a permuted-space component labeling back to the
// exact labeling the unrelabeled kernels produce: component label = the
// minimum ORIGINAL id in the component. The permuted kernel's labels are
// component minima of PERMUTED ids, whose preimage inv[label] is merely
// some member of the component — so each component is re-canonicalized
// to the first original id encountered in an ascending scan, which is
// its minimum. canon is scratch of length |V|.
func unpermuteLabels(dst, src, perm, inv, canon []uint32) []uint32 {
	if src == nil {
		return nil
	}
	n := len(src)
	if len(dst) != n {
		dst = make([]uint32, n)
	}
	const unset = ^uint32(0)
	for i := range canon {
		canon[i] = unset
	}
	for v := 0; v < n; v++ {
		rep := inv[src[perm[v]]]
		if canon[rep] == unset {
			canon[rep] = uint32(v)
		}
		dst[v] = canon[rep]
	}
	return dst
}

// runRelabeled executes req against a Relabeled target: the request is
// translated into the permuted id space, dispatched like any other run
// (the kernels see only the permuted graph), and the results translated
// back. On mid-kernel cancellation the partial permuted results are
// translated too, so the contract of Run's partial-output clause holds
// unchanged.
func runRelabeled(ctx context.Context, r *Relabeled, req Request, pool *par.Pool) (*Result, error) {
	outWS := req.Workspace
	var scratch *relabelScratch
	if outWS != nil {
		if outWS.rl == nil {
			outWS.rl = &relabelScratch{}
		}
		scratch = outWS.rl
	} else {
		scratch = &relabelScratch{}
	}

	inner := req
	inner.Relabel = false // the target is already permuted
	inner.Workspace = &scratch.inner
	n := len(r.perm)
	switch req.Kind {
	case KindBFS, KindSSSP:
		// Map in-range roots; out-of-range ones pass through unmapped so
		// the inner validation reports the id the caller supplied.
		if int(req.Root) < n {
			inner.Root = r.perm[req.Root]
		}
	case KindBFSBatch:
		scratch.roots = scratch.roots[:0]
		for _, rt := range req.Roots {
			if int(rt) < n {
				rt = r.perm[rt]
			}
			scratch.roots = append(scratch.roots, rt)
		}
		inner.Roots = scratch.roots
	}

	var tgt Target = r.g
	if r.w != nil {
		tgt = r.w
	}
	res, err := runRequest(ctx, tgt, inner, pool)
	if res == nil {
		return nil, err
	}

	out := &Result{Stats: res.Stats}
	switch req.Kind {
	case KindCC:
		if len(scratch.canon) != n {
			scratch.canon = make([]uint32, n)
		}
		var dst []uint32
		if outWS != nil {
			dst = outWS.Labels
		}
		out.Labels = unpermuteLabels(dst, res.Labels, r.perm, r.inv, scratch.canon)
		if outWS != nil && out.Labels != nil {
			outWS.Labels = out.Labels
		}
	case KindBFS:
		var dst []uint32
		if outWS != nil {
			dst = outWS.Hops
		}
		out.Hops = unpermute32(dst, res.Hops, r.perm)
		if outWS != nil && out.Hops != nil {
			outWS.Hops = out.Hops
		}
	case KindBFSBatch:
		var dsts [][]uint32
		if outWS != nil {
			dsts = outWS.HopsBatch
		}
		if len(dsts) != len(res.HopsBatch) {
			dsts = make([][]uint32, len(res.HopsBatch))
		}
		for i, src := range res.HopsBatch {
			dsts[i] = unpermute32(dsts[i], src, r.perm)
		}
		out.HopsBatch = dsts
		if outWS != nil {
			outWS.HopsBatch = dsts
		}
	case KindSSSP:
		var dst []uint64
		if outWS != nil {
			dst = outWS.Dists
		}
		out.Dists = unpermute64(dst, res.Dists, r.perm)
		if outWS != nil && out.Dists != nil {
			outWS.Dists = out.Dists
		}
	}
	return out, err
}

// Interface conformance: a Relabeled is a Target.
var _ Target = (*Relabeled)(nil)
