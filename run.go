package bagraph

// The unified request/response kernel API. Every kernel family the
// facade exposes — connected components, BFS, weighted SSSP, and the
// batch-aware multi-source BFS — is served by one entry point:
//
//	res, err := bagraph.Run(ctx, g, bagraph.Request{...})
//
// or, for query-serving workloads holding a resident pool,
//
//	res, err := pool.Run(ctx, g, bagraph.Request{...})
//
// Run is what the older per-kernel free functions (ConnectedComponents,
// ShortestHops, ShortestPaths, ...) now wrap: they remain as deprecated
// shims, but only Run exposes the three things the serving layer needs
// and the old surface dropped:
//
//   - cooperative cancellation: ctx is observed at kernel pass/level
//     barriers (workers never see it, staying atomic-free), so an
//     abandoned query stops burning the machine at the next barrier;
//   - the kernel's Stats: passes, per-pass changes, store counts,
//     candidate stores, bucket activations, top-down/bottom-up level
//     split — the branch-behaviour counters that are the point of the
//     paper, previously discarded by every free function;
//   - reusable Workspaces: one struct holding every result/scratch
//     buffer a request kind needs, re-primed across calls, replacing
//     the positional nil-able buffer arguments of the WorkerPool
//     methods.

import (
	"context"
	"fmt"
	"time"

	"bagraph/internal/bfs"
	"bagraph/internal/cc"
	"bagraph/internal/graph"
	"bagraph/internal/par"
	"bagraph/internal/sssp"
)

// Kind selects the kernel family a Request runs.
type Kind int

// Request kinds.
const (
	// KindCC labels connected components (Request.CC selects the
	// algorithm).
	KindCC Kind = iota
	// KindBFS computes hop distances from Request.Root (Request.BFS
	// selects the variant; with Parallel set the engine's
	// direction-optimizing kernel runs and the variant is ignored).
	KindBFS
	// KindSSSP computes weighted shortest-path distances from
	// Request.Root (Request.SSSP selects the algorithm). The graph must
	// be a *WeightedGraph.
	KindSSSP
	// KindBFSBatch runs every Request.Roots member through shared
	// multi-source mask sweeps — one graph pass per level advances up
	// to 64 searches. Always an engine kernel; Parallel is implied.
	KindBFSBatch
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindCC:
		return "cc"
	case KindBFS:
		return "bfs"
	case KindSSSP:
		return "sssp"
	case KindBFSBatch:
		return "bfs-batch"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Target is the graph argument of Run: a *Graph, or a *WeightedGraph
// for the weighted kernels (a *WeightedGraph satisfies every kind; the
// unweighted kinds run on its structure and ignore the weights).
type Target interface {
	NumVertices() int
}

// Schedule selects how a parallel kernel's passes distribute work
// across the pool.
type Schedule int

const (
	// ScheduleStatic partitions each pass once at launch into one
	// arc-balanced block per worker — no scheduling traffic during the
	// pass, but a straggler block stalls the pass barrier on skewed
	// work (an RMAT hub, a sparse late-level frontier).
	ScheduleStatic Schedule = iota
	// ScheduleStealing over-decomposes each pass into arc-balanced
	// chunks (Request.ChunkFactor per worker); an idle worker steals
	// whole chunks from the most-loaded straggler through one atomic
	// fetch per chunk. The per-edge inner loops are untouched — results
	// are byte-identical to ScheduleStatic.
	ScheduleStealing
)

// String implements fmt.Stringer.
func (s Schedule) String() string {
	switch s {
	case ScheduleStatic:
		return "static"
	case ScheduleStealing:
		return "steal"
	default:
		return fmt.Sprintf("Schedule(%d)", int(s))
	}
}

// ParseSchedule resolves the schedule names the CLIs and the daemon
// expose: "static" and "steal" (or "stealing").
func ParseSchedule(s string) (Schedule, error) {
	switch s {
	case "", "static":
		return ScheduleStatic, nil
	case "steal", "stealing":
		return ScheduleStealing, nil
	default:
		return ScheduleStatic, fmt.Errorf("bagraph: unknown schedule %q (want static or steal)", s)
	}
}

// par converts to the engine's schedule enum.
func (s Schedule) par() par.Schedule {
	if s == ScheduleStealing {
		return par.Stealing
	}
	return par.Static
}

// Request describes one kernel execution. The zero value runs the
// sequential branch-based connected-components kernel; set Kind, the
// matching algorithm field, and the source vertices as needed.
type Request struct {
	// Kind selects the kernel family.
	Kind Kind
	// CC selects the connected-components algorithm (KindCC).
	CC CCAlgorithm
	// BFS selects the BFS variant (KindBFS, sequential only: the
	// parallel BFS kernel is direction-optimizing by construction).
	BFS BFSVariant
	// SSSP selects the shortest-paths algorithm (KindSSSP).
	SSSP SSSPAlgorithm
	// Parallel runs the data-parallel engine kernel of the family
	// instead of the sequential one. Baselines without a parallel form
	// (CCUnionFind, SSSPDijkstra) are rejected; SSSPHybrid exists only
	// with Parallel set.
	Parallel bool
	// Root is the source vertex for KindBFS and KindSSSP.
	Root uint32
	// Roots are the source vertices for KindBFSBatch; duplicates are
	// allowed and produce identical arrays.
	Roots []uint32
	// Workers sizes the transient pool of a parallel bagraph.Run; < 1
	// means GOMAXPROCS. Ignored by WorkerPool.Run (the resident pool's
	// size wins) and by sequential kernels.
	Workers int
	// Delta overrides the delta-stepping bucket width of the parallel
	// SSSP kernel; 0 picks the kernel default. Long-lived callers cache
	// it per graph to skip the per-query weight sweep.
	Delta uint64
	// LightHeavy enables the Meyer & Sanders light/heavy edge split in
	// the parallel SSSP kernel: in-bucket passes relax only light arcs
	// (weight <= delta) and each vertex's heavy arcs relax once at
	// bucket close. Distances are byte-identical either way; ignored by
	// every other kind.
	LightHeavy bool
	// Relabel runs the request against a degree-ordered view of the
	// graph (see RelabelDegree): the kernels see the hub-clustered
	// layout, the results come back in the original vertex ids,
	// byte-identical to an unrelabeled run. The permuted view is cached
	// in the Workspace, so long-lived callers pay the permute once per
	// graph; without a workspace every call rebuilds it. Ignored when
	// the target is already a *Relabeled.
	Relabel bool
	// Schedule selects static or work-stealing chunk scheduling for the
	// parallel kernels (results are byte-identical; see the Schedule
	// constants). Ignored by sequential kernels.
	Schedule Schedule
	// ChunkFactor scales ScheduleStealing's chunks per worker; 0 means
	// the engine default. Ignored under ScheduleStatic.
	ChunkFactor int
	// Workspace, when non-nil, supplies (and collects) the reusable
	// buffers of the request kind. Results alias workspace buffers, so
	// a later Run with the same workspace overwrites them; a workspace
	// must not be shared by concurrent Runs.
	Workspace *Workspace
}

// Workspace holds the reusable buffers of Run requests. The zero value
// is ready to use: buffers are allocated on first use and re-primed
// after each Run, so a long-lived caller pays the allocations once.
// Results returned by Run alias these buffers. The engine kernels
// (Parallel requests, KindBFSBatch, and all SSSP forms) reuse a preset
// buffer's memory; the remaining sequential kernels allocate
// internally and the workspace captures their result instead — either
// way, after a Run the matching field holds that run's output,
// partial if the run was cancelled mid-kernel.
type Workspace struct {
	// Labels and Scratch are the parallel CC kernel's label
	// double-buffer (each |V| when preset; Result.Labels aliases one).
	Labels, Scratch []uint32
	// Hops receives KindBFS distances (|V| when preset).
	Hops []uint32
	// HopsBatch receives KindBFSBatch per-root distances (len(Roots)
	// slices of |V| when preset).
	HopsBatch [][]uint32
	// Dists receives KindSSSP distances (|V| when preset).
	Dists []uint64
	// rl holds the relabeling layer's private state: the cached
	// degree-ordered view (Request.Relabel), the permuted-space inner
	// workspace, and the un-permute scratch.
	rl *relabelScratch
}

// Stats is the kernel-side observability record of one Run: the
// branch-behaviour counters the paper measures, normalized across the
// kernel families. Fields not meaningful for a family stay zero.
type Stats struct {
	// Passes counts outer iterations: SV passes, BFS levels (shared
	// sweeps for KindBFSBatch), SSSP relaxation passes.
	Passes int
	// PassDurations holds per-pass wall-clock times.
	PassDurations []time.Duration
	// PassChanges holds per-pass changed-vertex counts (CC and SSSP).
	PassChanges []int
	// LevelSizes holds per-level frontier sizes (KindBFS).
	LevelSizes []int
	// TopDownLevels and BottomUpLevels split BFS levels by traversal
	// direction (the direction-optimizing kernels' heuristic record).
	TopDownLevels, BottomUpLevels int
	// Waves counts 64-source sweeps (KindBFSBatch).
	Waves int
	// Reached counts discovered vertices (BFS; source-vertex pairs for
	// KindBFSBatch).
	Reached int
	// LabelStores counts label-array writes (CC).
	LabelStores uint64
	// DistStores counts distance-array writes (BFS and SSSP).
	DistStores uint64
	// QueueStores counts frontier-queue writes (BFS); the
	// branch-avoiding store blow-up of the paper's §5.2 shows up here.
	QueueStores uint64
	// CandStores counts candidate-buffer writes in the parallel SSSP
	// scatter (the §5.2 blow-up with the candidate buffer in the
	// queue's role).
	CandStores uint64
	// Buckets counts delta-stepping bucket activations (parallel SSSP).
	Buckets int
	// Chunks counts scheduler chunks executed across all passes of a
	// parallel kernel, under either schedule (zero only for sequential
	// kernels); Steals counts the chunks run by a worker that did not
	// own them, and StealPasses the victim-selection scans behind
	// those steals — both necessarily zero under ScheduleStatic.
	Chunks      int
	Steals      uint64
	StealPasses uint64
	// LightRelaxed and HeavyRelaxed split the parallel SSSP kernel's
	// applied relaxations by arc class (weight <= delta vs above);
	// without Request.LightHeavy everything counts as light.
	LightRelaxed, HeavyRelaxed uint64
	// WordsScanned counts the succinct-bitset words the parallel BFS
	// kernels loaded while sweeping for candidates (bottom-up levels of
	// KindBFS, shared sweeps of KindBFSBatch) — the frontier-locality
	// proxy that drops under Request.Relabel's hub-clustered layout.
	// Zero for CC, SSSP, and the sequential kernels.
	WordsScanned uint64
}

// StealsPerPass returns the average number of stolen chunks per pass —
// the load-imbalance signal the autotuner and /metrics watch. Zero when
// no passes ran or the schedule was static.
func (s Stats) StealsPerPass() float64 {
	if s.Passes == 0 {
		return 0
	}
	return float64(s.Steals) / float64(s.Passes)
}

// Total returns the summed wall-clock time of all passes.
func (s Stats) Total() time.Duration {
	var t time.Duration
	for _, d := range s.PassDurations {
		t += d
	}
	return t
}

// Result is the outcome of one Run. Exactly the field matching the
// request kind is set, plus Stats.
type Result struct {
	// Labels is the canonical min-id component labeling (KindCC).
	Labels []uint32
	// Hops are hop distances, Unreached for other components (KindBFS).
	Hops []uint32
	// HopsBatch holds one hop-distance array per request root, in
	// order (KindBFSBatch).
	HopsBatch [][]uint32
	// Dists are weighted distances, InfDistance for unreachable
	// vertices (KindSSSP).
	Dists []uint64
	// Stats describes the kernel execution.
	Stats Stats
}

// Run executes one kernel request against g — a *Graph, or a
// *WeightedGraph for KindSSSP — and returns its result together with
// the kernel's statistics.
//
// ctx cancels the run cooperatively: a context cancelled before the
// call returns ctx.Err() without running; one cancelled mid-kernel is
// observed at the next pass/level barrier (workers never observe the
// context, so the inner loops keep the paper's exact operation mix).
// A nil ctx means context.Background(). On mid-kernel cancellation the
// error is ctx's, and the Result — when non-nil — carries the partial
// output of the passes that completed (labels so far, distances with
// deeper vertices still unreached) plus their Stats; callers that
// cannot use partial progress just check the error first.
//
// Parallel requests start and stop a transient worker pool sized by
// Request.Workers; query-serving workloads keep a WorkerPool resident
// and call its Run method instead.
func Run(ctx context.Context, g Target, req Request) (*Result, error) {
	return runRequest(ctx, g, req, nil)
}

// Run executes one kernel request on the resident pool (see the
// package-level Run). Request.Workers is ignored: the pool's size wins.
func (p *WorkerPool) Run(ctx context.Context, g Target, req Request) (*Result, error) {
	return runRequest(ctx, g, req, p.pool)
}

// Each runs fn(0), ..., fn(n-1) across the pool's workers and returns
// when all calls have completed. It is the raw fan-out primitive
// beneath Run; the serving layer uses it to spread the independent
// sequential kernels of one batch across the pool. fn must not call
// back into the pool (a nested submit would wait on workers busy
// running it).
func (p *WorkerPool) Each(n int, fn func(i int)) { p.pool.Run(n, fn) }

// runRequest validates and dispatches one request. pool, when non-nil,
// is a resident pool owned by the caller; parallel kernels otherwise
// start a transient one.
func runRequest(ctx context.Context, g Target, req Request, pool *par.Pool) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		// Pre-cancelled: nothing runs, not even validation.
		return nil, err
	}
	if rl, ok := g.(*Relabeled); ok {
		if rl == nil {
			return nil, fmt.Errorf("bagraph: Run on a nil graph")
		}
		return runRelabeled(ctx, rl, req, pool)
	}
	if req.Relabel {
		rl, err := relabeledFor(g, req.Workspace)
		if err != nil {
			return nil, err
		}
		return runRelabeled(ctx, rl, req, pool)
	}
	var base *Graph
	var weighted *WeightedGraph
	switch t := g.(type) {
	case *WeightedGraph:
		if t == nil {
			return nil, fmt.Errorf("bagraph: Run on a nil graph")
		}
		weighted = t
		base = t.Graph
	case *Graph:
		if t == nil {
			return nil, fmt.Errorf("bagraph: Run on a nil graph")
		}
		base = t
	case nil:
		return nil, fmt.Errorf("bagraph: Run on a nil graph")
	default:
		return nil, fmt.Errorf("bagraph: unsupported graph type %T (want *Graph or *WeightedGraph)", g)
	}
	switch req.Kind {
	case KindCC:
		return runCCRequest(ctx, base, req, pool)
	case KindBFS:
		return runBFSRequest(ctx, base, req, pool)
	case KindBFSBatch:
		return runBFSBatchRequest(ctx, base, req, pool)
	case KindSSSP:
		if weighted == nil {
			return nil, fmt.Errorf("bagraph: %v needs a *WeightedGraph (AttachWeights derives one)", req.Kind)
		}
		return runSSSPRequest(ctx, weighted, req, pool)
	default:
		return nil, fmt.Errorf("bagraph: unknown request kind %v", req.Kind)
	}
}

// runCCRequest dispatches KindCC.
func runCCRequest(ctx context.Context, g *Graph, req Request, pool *par.Pool) (*Result, error) {
	if req.Parallel {
		variant, err := ccVariant(req.CC)
		if err != nil {
			return nil, err
		}
		ws := req.Workspace
		var labelsBuf, scratchBuf []uint32
		if ws != nil {
			// Prime the double-buffer so both arrays persist in the
			// workspace across calls.
			n := g.NumVertices()
			if n > 0 {
				if len(ws.Labels) != n {
					ws.Labels = make([]uint32, n)
				}
				if len(ws.Scratch) != n || &ws.Scratch[0] == &ws.Labels[0] {
					ws.Scratch = make([]uint32, n)
				}
			}
			labelsBuf, scratchBuf = ws.Labels, ws.Scratch
		}
		labels, st, err := cc.SVParallel(g, cc.ParallelOptions{
			Ctx:         ctx,
			Workers:     req.Workers,
			Pool:        pool,
			Variant:     variant,
			Schedule:    req.Schedule.par(),
			ChunkFactor: req.ChunkFactor,
			Labels:      labelsBuf,
			Scratch:     scratchBuf,
		})
		return &Result{Labels: labels, Stats: statsFromCC(st)}, err
	}
	var (
		labels []uint32
		st     cc.Stats
		err    error
	)
	switch req.CC {
	case CCBranchBased:
		labels, st, err = cc.SVBranchBasedCtx(ctx, g)
	case CCBranchAvoiding:
		labels, st, err = cc.SVBranchAvoidingCtx(ctx, g)
	case CCHybrid:
		labels, st, err = cc.SVHybridCtx(ctx, g, cc.HybridOptions{SwitchIteration: -1})
	case CCUnionFind:
		// The union-find baseline has no pass structure to cancel at;
		// the pre-call context check above is its only gate.
		labels = cc.UnionFind(g)
	default:
		return nil, fmt.Errorf("bagraph: unknown CC algorithm %v", req.CC)
	}
	if req.Workspace != nil && labels != nil {
		// The sequential kernels allocate internally; capture the result
		// so the workspace's Labels always hold the latest CC labeling —
		// partial on cancellation, like the kinds that write the
		// workspace buffers in place — and seed a later parallel run's
		// double-buffer.
		req.Workspace.Labels = labels
	}
	return &Result{Labels: labels, Stats: statsFromCC(st)}, err
}

// runBFSRequest dispatches KindBFS.
func runBFSRequest(ctx context.Context, g *Graph, req Request, pool *par.Pool) (*Result, error) {
	if err := checkRoot(g, req.Root); err != nil {
		return nil, err
	}
	if req.Parallel {
		ws := req.Workspace
		var distBuf []uint32
		if ws != nil {
			if n := g.NumVertices(); len(ws.Hops) != n {
				ws.Hops = make([]uint32, n)
			}
			distBuf = ws.Hops
		}
		dist, st, err := bfs.ParallelDO(g, req.Root, bfs.ParallelOptions{
			Ctx:         ctx,
			Workers:     req.Workers,
			Pool:        pool,
			Schedule:    req.Schedule.par(),
			ChunkFactor: req.ChunkFactor,
			Dist:        distBuf,
		})
		return &Result{Hops: dist, Stats: statsFromBFS(st)}, err
	}
	var (
		dist []uint32
		st   bfs.Stats
		err  error
	)
	switch req.BFS {
	case BFSBranchBased:
		dist, st, err = bfs.TopDownBranchBasedCtx(ctx, g, req.Root)
	case BFSBranchAvoiding:
		dist, st, err = bfs.TopDownBranchAvoidingCtx(ctx, g, req.Root)
	case BFSDirectionOptimizing:
		dist, st, err = bfs.DirectionOptimizingCtx(ctx, g, req.Root, 0, 0)
	default:
		return nil, fmt.Errorf("bagraph: unknown BFS variant %v", req.BFS)
	}
	if req.Workspace != nil && dist != nil {
		// The sequential kernels allocate internally; capture the result
		// so the workspace's Hops always hold the latest BFS distances
		// (partial on cancellation, like the in-place kinds).
		req.Workspace.Hops = dist
	}
	return &Result{Hops: dist, Stats: statsFromBFS(st)}, err
}

// runBFSBatchRequest dispatches KindBFSBatch.
func runBFSBatchRequest(ctx context.Context, g *Graph, req Request, pool *par.Pool) (*Result, error) {
	for _, r := range req.Roots {
		if err := checkRoot(g, r); err != nil {
			return nil, err
		}
	}
	ws := req.Workspace
	var distsBuf [][]uint32
	if ws != nil {
		if len(ws.HopsBatch) != len(req.Roots) {
			ws.HopsBatch = make([][]uint32, len(req.Roots))
		}
		distsBuf = ws.HopsBatch
	}
	dists, st, err := bfs.MultiSource(g, req.Roots, bfs.MultiSourceOptions{
		Ctx:         ctx,
		Workers:     req.Workers,
		Pool:        pool,
		Schedule:    req.Schedule.par(),
		ChunkFactor: req.ChunkFactor,
		Dists:       distsBuf,
	})
	if ws != nil {
		ws.HopsBatch = dists
	}
	return &Result{HopsBatch: dists, Stats: statsFromMulti(st)}, err
}

// runSSSPRequest dispatches KindSSSP.
func runSSSPRequest(ctx context.Context, g *WeightedGraph, req Request, pool *par.Pool) (*Result, error) {
	if err := checkSource(g, req.Root); err != nil {
		return nil, err
	}
	ws := req.Workspace
	var distBuf []uint64
	if ws != nil {
		distBuf = ws.Dists
	}
	var (
		dist []uint64
		st   sssp.Stats
		err  error
	)
	if req.Parallel {
		variant, verr := ssspVariant(req.SSSP)
		if verr != nil {
			return nil, verr
		}
		dist, st, err = sssp.Parallel(g, req.Root, sssp.ParallelOptions{
			Ctx:         ctx,
			Workers:     req.Workers,
			Pool:        pool,
			Variant:     variant,
			Delta:       req.Delta,
			LightHeavy:  req.LightHeavy,
			Schedule:    req.Schedule.par(),
			ChunkFactor: req.ChunkFactor,
			Dist:        distBuf,
		})
	} else {
		switch req.SSSP {
		case SSSPBellmanFord:
			dist, st, err = sssp.BellmanFordBranchBasedCtx(ctx, g, req.Root, distBuf)
		case SSSPBellmanFordBranchAvoiding:
			dist, st, err = sssp.BellmanFordBranchAvoidingCtx(ctx, g, req.Root, distBuf)
		case SSSPDijkstra:
			dist, err = sssp.DijkstraCtx(ctx, g, req.Root, distBuf)
		case SSSPHybrid:
			return nil, fmt.Errorf("bagraph: %v exists only in the parallel kernel (set Request.Parallel)", req.SSSP)
		default:
			return nil, fmt.Errorf("bagraph: unknown SSSP algorithm %v", req.SSSP)
		}
	}
	if ws != nil {
		ws.Dists = dist
	}
	return &Result{Dists: dist, Stats: statsFromSSSP(st)}, err
}

// statsFromCC normalizes a connected-components Stats record.
func statsFromCC(st cc.Stats) Stats {
	return Stats{
		Passes:        st.Iterations,
		PassDurations: st.IterDurations,
		PassChanges:   st.IterChanges,
		LabelStores:   st.LabelStores,
		Chunks:        st.Chunks,
		Steals:        st.Steals,
		StealPasses:   st.StealPasses,
	}
}

// statsFromBFS normalizes a BFS Stats record.
func statsFromBFS(st bfs.Stats) Stats {
	return Stats{
		Passes:         st.Levels,
		PassDurations:  st.LevelDurations,
		LevelSizes:     st.LevelSizes,
		TopDownLevels:  st.TopDownLevels,
		BottomUpLevels: st.BottomUpLevels,
		Reached:        st.Reached,
		DistStores:     st.DistStores,
		QueueStores:    st.QueueStores,
		Chunks:         st.Chunks,
		Steals:         st.Steals,
		StealPasses:    st.StealPasses,
		WordsScanned:   st.BUWordsScanned,
	}
}

// statsFromMulti normalizes a multi-source BFS MultiStats record.
func statsFromMulti(st bfs.MultiStats) Stats {
	return Stats{
		Passes:        st.Levels,
		PassDurations: st.LevelDurations,
		Waves:         st.Waves,
		Reached:       st.Reached,
		DistStores:    st.DistStores,
		Chunks:        st.Chunks,
		Steals:        st.Steals,
		StealPasses:   st.StealPasses,
		WordsScanned:  st.WordsScanned,
	}
}

// statsFromSSSP normalizes an SSSP Stats record.
func statsFromSSSP(st sssp.Stats) Stats {
	return Stats{
		Passes:        st.Passes,
		PassDurations: st.PassDurations,
		PassChanges:   st.PassChanges,
		DistStores:    st.DistStores,
		CandStores:    st.CandStores,
		Buckets:       st.Buckets,
		Chunks:        st.Chunks,
		Steals:        st.Steals,
		StealPasses:   st.StealPasses,
		LightRelaxed:  st.LightRelaxed,
		HeavyRelaxed:  st.HeavyRelaxed,
	}
}

// Interface conformance: both graph forms satisfy Target.
var (
	_ Target = (*graph.Graph)(nil)
	_ Target = (*graph.Weighted)(nil)
)
