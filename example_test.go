package bagraph_test

import (
	"context"
	"fmt"
	"log"

	"bagraph"
)

// ExampleRun runs two kernel families through the unified
// request/response API and reads the kernel statistics the older
// per-kernel functions used to discard.
func ExampleRun() {
	// Two components plus an isolated vertex.
	g, err := bagraph.NewGraph(6, []bagraph.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 3, V: 4},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Connected components with the branch-avoiding kernel.
	cc, err := bagraph.Run(context.Background(), g, bagraph.Request{
		Kind: bagraph.KindCC, CC: bagraph.CCBranchAvoiding,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("components:", bagraph.ComponentCount(cc.Labels))
	fmt.Println("label-propagation passes:", cc.Stats.Passes)

	// BFS hop distances from vertex 0 (Unreached elsewhere).
	bfs, err := bagraph.Run(context.Background(), g, bagraph.Request{
		Kind: bagraph.KindBFS, BFS: bagraph.BFSBranchAvoiding, Root: 0,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("hops to vertex 2:", bfs.Hops[2])
	fmt.Println("vertices reached:", bfs.Stats.Reached)

	// Output:
	// components: 3
	// label-propagation passes: 2
	// hops to vertex 2: 2
	// vertices reached: 3
}
