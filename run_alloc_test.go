package bagraph

import (
	"context"
	"testing"
)

// pathWeighted builds a weighted path 0-1-...-n-1 with unit weights.
// The pull-style Bellman-Ford sweeps vertices in ascending order and
// relaxes in place, so from the far end (root n-1) distances propagate
// one vertex per pass and the pass count is controlled by n.
func pathWeighted(t *testing.T, n int) *WeightedGraph {
	t.Helper()
	edges := make([]WeightedEdge, n-1)
	for i := range edges {
		edges[i] = WeightedEdge{U: uint32(i), V: uint32(i + 1), W: 1}
	}
	g, err := NewWeightedGraph(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestRunWarmWorkspaceAllocs pins the per-pass heap allocation count of
// the Run dispatch path at zero on a warm Workspace.
//
// A Run can never be literally allocation-free: it returns a fresh
// *Result and appends per-pass observability records (PassDurations,
// PassChanges) into slices that grow 1→2→4→…. But those growth
// allocations depend only on the *bracket* the pass count falls in, not
// on the count itself. So the guard compares two warm-workspace runs
// whose pass counts differ but sit inside the same append-growth
// bracket (16, 32]: every allocation that is per-run or per-bracket
// cancels, and any allocation made once per pass — a conversion that
// boxes, a buffer the kernel forgot to reuse, a map the dispatch grew —
// shows up as a difference and fails the test.
func TestRunWarmWorkspaceAllocs(t *testing.T) {
	const bracketLo, bracketHi = 16, 32
	ctx := context.Background()
	measure := func(n int) float64 {
		t.Helper()
		g := pathWeighted(t, n)
		ws := &Workspace{}
		req := Request{Kind: KindSSSP, SSSP: SSSPBellmanFordBranchAvoiding, Root: uint32(n - 1), Workspace: ws}
		// Warm the workspace and check the run lands in the bracket.
		res, err := Run(ctx, g, req)
		if err != nil {
			t.Fatal(err)
		}
		if p := res.Stats.Passes; p <= bracketLo || p > bracketHi {
			t.Fatalf("n=%d: %d passes, outside the (%d, %d] growth bracket the test needs", n, p, bracketLo, bracketHi)
		}
		return testing.AllocsPerRun(10, func() {
			if _, err := Run(ctx, g, req); err != nil {
				t.Fatal(err)
			}
		})
	}
	short := measure(18)
	long := measure(26)
	if short != long {
		t.Fatalf("allocations grew with pass count: %.1f allocs at 18 passes vs %.1f at 26 — some allocation is per-pass, not per-run", short, long)
	}
}
