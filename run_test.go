package bagraph

// Tests for the unified Run API: result equivalence against the
// internal kernels, populated Stats for every family, cooperative
// cancellation (pre-cancelled, barrier-exact mid-kernel, pool
// survival), workspace reuse, and the empty-graph root-validation
// regression.

import (
	"context"
	"errors"
	"sync"
	"testing"

	"bagraph/internal/bfs"
	"bagraph/internal/cc"
	"bagraph/internal/gen"
	"bagraph/internal/sssp"
	"bagraph/internal/testutil"
)

// runOK is the no-error Run helper.
func runOK(t *testing.T, g Target, req Request) *Result {
	t.Helper()
	res, err := Run(context.Background(), g, req)
	if err != nil {
		t.Fatalf("Run(%v): %v", req.Kind, err)
	}
	return res
}

// TestRunCCEquivalence: every CC request form reproduces the internal
// kernels' canonical labeling byte for byte.
func TestRunCCEquivalence(t *testing.T) {
	g := gen.RMAT(9, 6, gen.DefaultRMAT, 7)
	want, _ := cc.SVBranchBased(g)
	for _, alg := range []CCAlgorithm{CCBranchBased, CCBranchAvoiding, CCHybrid, CCUnionFind} {
		res := runOK(t, g, Request{Kind: KindCC, CC: alg})
		testutil.MustEqualLabels(t, "seq/"+alg.String(), res.Labels, want)
	}
	for _, alg := range []CCAlgorithm{CCBranchBased, CCBranchAvoiding, CCHybrid} {
		res := runOK(t, g, Request{Kind: KindCC, CC: alg, Parallel: true, Workers: 3})
		testutil.MustEqualLabels(t, "par/"+alg.String(), res.Labels, want)
	}
}

// TestRunBFSEquivalence: every BFS request form (including the batch
// kind) reproduces the internal kernels' distances byte for byte.
func TestRunBFSEquivalence(t *testing.T) {
	g := gen.RMAT(9, 6, gen.DefaultRMAT, 7)
	want, _ := bfs.TopDownBranchBased(g, 3)
	for _, v := range []BFSVariant{BFSBranchBased, BFSBranchAvoiding, BFSDirectionOptimizing} {
		res := runOK(t, g, Request{Kind: KindBFS, BFS: v, Root: 3})
		testutil.MustEqualDists(t, "seq/"+v.String(), res.Hops, want)
	}
	res := runOK(t, g, Request{Kind: KindBFS, Parallel: true, Root: 3, Workers: 3})
	testutil.MustEqualDists(t, "par-do", res.Hops, want)

	roots := []uint32{3, 0, 17, 3}
	batch := runOK(t, g, Request{Kind: KindBFSBatch, Roots: roots, Workers: 2})
	if len(batch.HopsBatch) != len(roots) {
		t.Fatalf("batch returned %d arrays for %d roots", len(batch.HopsBatch), len(roots))
	}
	for i, r := range roots {
		w, _ := bfs.TopDownBranchBased(g, r)
		testutil.MustEqualDists(t, "batch", batch.HopsBatch[i], w)
	}
}

// TestRunSSSPEquivalence: every SSSP request form matches the Dijkstra
// oracle, and the weighted-graph requirement is enforced.
func TestRunSSSPEquivalence(t *testing.T) {
	w := testutil.RandomWeighted(300, 900, 25, 11)
	want := sssp.Dijkstra(w, 5)
	seq := []SSSPAlgorithm{SSSPBellmanFord, SSSPBellmanFordBranchAvoiding, SSSPDijkstra}
	for _, alg := range seq {
		res := runOK(t, w, Request{Kind: KindSSSP, SSSP: alg, Root: 5})
		testutil.MustEqualDists(t, "seq/"+alg.String(), res.Dists, want)
	}
	par := []SSSPAlgorithm{SSSPBellmanFord, SSSPBellmanFordBranchAvoiding, SSSPHybrid}
	for _, alg := range par {
		res := runOK(t, w, Request{Kind: KindSSSP, SSSP: alg, Parallel: true, Root: 5, Workers: 3})
		testutil.MustEqualDists(t, "par/"+alg.String(), res.Dists, want)
	}

	// An unweighted graph cannot serve KindSSSP.
	g := gen.Path(10)
	if _, err := Run(context.Background(), g, Request{Kind: KindSSSP, Root: 0}); err == nil {
		t.Fatal("KindSSSP accepted an unweighted *Graph")
	}
	// A *WeightedGraph serves the unweighted kinds through its
	// structure.
	res := runOK(t, w, Request{Kind: KindBFS, BFS: BFSBranchBased, Root: 5})
	if len(res.Hops) != w.NumVertices() {
		t.Fatalf("BFS over weighted target: %d hops", len(res.Hops))
	}
}

// TestRunRejections pins Run's error paths: unknown kinds and enums,
// baselines without parallel forms, and the parallel-only hybrid.
func TestRunRejections(t *testing.T) {
	g := gen.Path(8)
	w := testutil.AttachHashWeights(t, g, 9, 1)
	cases := []Request{
		{Kind: Kind(99)},
		{Kind: KindCC, CC: CCAlgorithm(99)},
		{Kind: KindCC, CC: CCAlgorithm(99), Parallel: true},
		{Kind: KindCC, CC: CCUnionFind, Parallel: true},
		{Kind: KindBFS, BFS: BFSVariant(99)},
		{Kind: KindBFS, Root: 8},
		{Kind: KindBFSBatch, Roots: []uint32{0, 8}},
	}
	for _, req := range cases {
		if _, err := Run(context.Background(), g, req); err == nil {
			t.Errorf("Run(%+v) accepted", req)
		}
	}
	wcases := []Request{
		{Kind: KindSSSP, SSSP: SSSPAlgorithm(99)},
		{Kind: KindSSSP, SSSP: SSSPDijkstra, Parallel: true},
		{Kind: KindSSSP, SSSP: SSSPHybrid}, // parallel-only
		{Kind: KindSSSP, Root: 8},
	}
	for _, req := range wcases {
		if _, err := Run(context.Background(), w, req); err == nil {
			t.Errorf("Run(%+v) accepted", req)
		}
	}
	if _, err := Run(context.Background(), nil, Request{Kind: KindCC}); err == nil {
		t.Error("Run on a nil graph accepted")
	}
	// Typed nils must error, not dereference.
	var nilG *Graph
	if _, err := Run(context.Background(), nilG, Request{Kind: KindCC}); err == nil {
		t.Error("Run on a typed-nil *Graph accepted")
	}
	var nilW *WeightedGraph
	if _, err := Run(context.Background(), nilW, Request{Kind: KindSSSP}); err == nil {
		t.Error("Run on a typed-nil *WeightedGraph accepted")
	}
}

// TestRunStatsPopulated: Result.Stats is non-zero for every kernel
// family, sequential and parallel — the counters the free functions
// used to discard.
func TestRunStatsPopulated(t *testing.T) {
	g := gen.RMAT(9, 6, gen.DefaultRMAT, 3)
	w := testutil.AttachHashWeights(t, g, 16, 3)

	checks := []struct {
		name string
		req  Request
		more func(t *testing.T, st Stats)
	}{
		{"cc/seq-bb", Request{Kind: KindCC, CC: CCBranchBased}, func(t *testing.T, st Stats) {
			if st.LabelStores == 0 || len(st.PassChanges) != st.Passes {
				t.Errorf("cc stats incomplete: %+v", st)
			}
		}},
		{"cc/seq-ba", Request{Kind: KindCC, CC: CCBranchAvoiding}, nil},
		{"cc/par-hybrid", Request{Kind: KindCC, CC: CCHybrid, Parallel: true, Workers: 2}, func(t *testing.T, st Stats) {
			if st.LabelStores == 0 {
				t.Error("parallel cc lost LabelStores")
			}
		}},
		{"bfs/seq-bb", Request{Kind: KindBFS, BFS: BFSBranchBased, Root: 0}, func(t *testing.T, st Stats) {
			if st.Reached == 0 || st.DistStores == 0 || st.QueueStores == 0 {
				t.Errorf("bfs stats incomplete: %+v", st)
			}
			if st.TopDownLevels != st.Passes {
				t.Errorf("top-down kernel: %d of %d levels top-down", st.TopDownLevels, st.Passes)
			}
		}},
		{"bfs/seq-ba", Request{Kind: KindBFS, BFS: BFSBranchAvoiding, Root: 0}, nil},
		{"bfs/par-do", Request{Kind: KindBFS, Parallel: true, Root: 0, Workers: 2}, func(t *testing.T, st Stats) {
			if st.TopDownLevels+st.BottomUpLevels != st.Passes {
				t.Errorf("direction split %d+%d != %d levels",
					st.TopDownLevels, st.BottomUpLevels, st.Passes)
			}
			if st.Reached == 0 || st.DistStores == 0 {
				t.Errorf("parallel bfs stats incomplete: %+v", st)
			}
		}},
		{"bfsbatch", Request{Kind: KindBFSBatch, Roots: []uint32{0, 9}, Workers: 2}, func(t *testing.T, st Stats) {
			if st.Waves != 1 || st.Reached == 0 || st.DistStores == 0 {
				t.Errorf("batch stats incomplete: %+v", st)
			}
		}},
		{"sssp/seq-bb", Request{Kind: KindSSSP, SSSP: SSSPBellmanFord, Root: 0}, func(t *testing.T, st Stats) {
			if st.DistStores == 0 || len(st.PassChanges) != st.Passes {
				t.Errorf("sssp stats incomplete: %+v", st)
			}
		}},
		{"sssp/seq-ba", Request{Kind: KindSSSP, SSSP: SSSPBellmanFordBranchAvoiding, Root: 0}, nil},
		{"sssp/par-ba", Request{Kind: KindSSSP, SSSP: SSSPBellmanFordBranchAvoiding, Parallel: true, Root: 0, Workers: 2}, func(t *testing.T, st Stats) {
			if st.CandStores == 0 || st.Buckets == 0 || st.DistStores == 0 {
				t.Errorf("delta-stepping stats incomplete: %+v", st)
			}
		}},
	}
	for _, c := range checks {
		t.Run(c.name, func(t *testing.T) {
			var target Target = g
			if c.req.Kind == KindSSSP {
				target = w
			}
			res := runOK(t, target, c.req)
			if res.Stats.Passes == 0 {
				t.Fatalf("Stats.Passes == 0: %+v", res.Stats)
			}
			if len(res.Stats.PassDurations) != res.Stats.Passes {
				t.Fatalf("%d durations for %d passes",
					len(res.Stats.PassDurations), res.Stats.Passes)
			}
			if c.more != nil {
				c.more(t, res.Stats)
			}
		})
	}

	// The Dijkstra baseline has no pass structure; everything else must
	// never return an all-zero Stats. (Union-find likewise — both are
	// baselines, not paper kernels.)
	res := runOK(t, w, Request{Kind: KindSSSP, SSSP: SSSPDijkstra, Root: 0})
	if res.Stats.Passes != 0 {
		t.Errorf("dijkstra reported %d passes", res.Stats.Passes)
	}
}

// TestRunPreCancelled: a context dead before the call returns its
// error for every kind, with no result.
func TestRunPreCancelled(t *testing.T) {
	g := gen.Path(64)
	w := testutil.AttachHashWeights(t, g, 9, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	reqs := []Request{
		{Kind: KindCC, CC: CCBranchAvoiding},
		{Kind: KindCC, CC: CCHybrid, Parallel: true},
		{Kind: KindBFS, Root: 0},
		{Kind: KindBFS, Parallel: true, Root: 0},
		{Kind: KindBFSBatch, Roots: []uint32{0, 1}},
		{Kind: KindSSSP, SSSP: SSSPDijkstra, Root: 0},
	}
	for _, req := range reqs {
		var target Target = g
		if req.Kind == KindSSSP {
			target = w
		}
		res, err := Run(ctx, target, req)
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%v: err = %v, want context.Canceled", req.Kind, err)
		}
		if res != nil {
			t.Errorf("%v: pre-cancelled Run returned a result", req.Kind)
		}
	}
}

// errBudgetCtx is a context whose Err starts reporting Canceled after
// a fixed number of calls. The kernels observe cancellation only
// through Err at pass/level barriers (never Done), so the budget makes
// mid-kernel cancellation barrier-exact and timing-free: the run is
// guaranteed to start, complete at least one pass, and stop early.
type errBudgetCtx struct {
	context.Context
	mu   sync.Mutex
	left int
}

func (f *errBudgetCtx) Err() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.left <= 0 {
		return context.Canceled
	}
	f.left--
	return nil
}

// budget returns a context that allows n Err checks before cancelling.
func budget(n int) *errBudgetCtx {
	return &errBudgetCtx{Context: context.Background(), left: n}
}

// TestRunCancelMidKernel: a context cancelled mid-run stops every
// kernel family at a pass barrier, returning ctx's error plus the
// partial result of the completed passes. High-diameter graphs (ring,
// path) guarantee many barriers.
func TestRunCancelMidKernel(t *testing.T) {
	g := gen.Path(512) // diameter 511: hundreds of passes/levels
	w := testutil.AttachHashWeights(t, g, 1, 1)

	// Per-case Err budgets: every kernel checks the context once at the
	// Run entry and once per pass/level barrier, except the parallel CC
	// kernel whose RunCtx barrier checks twice per pass (before and
	// after). Budget 2 therefore completes exactly one pass of any
	// once-per-pass kernel and cancels at the second barrier — below
	// even the Gauss-Seidel kernels' two-pass minimum — while the
	// parallel CC case needs 3 for its first pass to be accounted.
	reqs := []struct {
		name   string
		budget int
		req    Request
	}{
		{"cc/seq-bb", 2, Request{Kind: KindCC, CC: CCBranchBased}},
		{"cc/seq-ba", 2, Request{Kind: KindCC, CC: CCBranchAvoiding}},
		{"cc/seq-hybrid", 2, Request{Kind: KindCC, CC: CCHybrid}},
		{"cc/par", 3, Request{Kind: KindCC, CC: CCBranchAvoiding, Parallel: true, Workers: 2}},
		{"bfs/seq-bb", 2, Request{Kind: KindBFS, BFS: BFSBranchBased, Root: 0}},
		{"bfs/seq-ba", 2, Request{Kind: KindBFS, BFS: BFSBranchAvoiding, Root: 0}},
		{"bfs/seq-do", 2, Request{Kind: KindBFS, BFS: BFSDirectionOptimizing, Root: 0}},
		{"bfs/par", 2, Request{Kind: KindBFS, Parallel: true, Root: 0, Workers: 2}},
		{"bfsbatch", 2, Request{Kind: KindBFSBatch, Roots: []uint32{0, 511}, Workers: 2}},
		{"sssp/seq-bb", 2, Request{Kind: KindSSSP, SSSP: SSSPBellmanFord, Root: 0}},
		{"sssp/seq-ba", 2, Request{Kind: KindSSSP, SSSP: SSSPBellmanFordBranchAvoiding, Root: 0}},
		{"sssp/par", 2, Request{Kind: KindSSSP, SSSP: SSSPHybrid, Parallel: true, Root: 0, Workers: 2}},
	}
	for _, c := range reqs {
		t.Run(c.name, func(t *testing.T) {
			var target Target = g
			if c.req.Kind == KindSSSP {
				target = w
			}
			full := runOK(t, target, c.req)
			res, err := Run(budget(c.budget), target, c.req)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			if res == nil {
				t.Fatal("mid-kernel cancellation returned no partial result")
			}
			if res.Stats.Passes == 0 || res.Stats.Passes >= full.Stats.Passes {
				t.Fatalf("cancelled run completed %d of %d passes — not a mid-kernel stop",
					res.Stats.Passes, full.Stats.Passes)
			}
		})
	}
}

// TestWorkerPoolSurvivesCancelledRun: a resident pool that served a
// cancelled Run keeps serving correct results (run with -race, this is
// the no-leaked-state proof for the serving layer's steady state).
func TestWorkerPoolSurvivesCancelledRun(t *testing.T) {
	g := gen.Path(512)
	pool := NewWorkerPool(2)
	defer pool.Close()

	want := runOK(t, g, Request{Kind: KindBFS, BFS: BFSBranchBased, Root: 0})
	for i := 0; i < 3; i++ {
		res, err := pool.Run(budget(5), g, Request{Kind: KindBFS, Parallel: true, Root: 0})
		if !errors.Is(err, context.Canceled) || res == nil {
			t.Fatalf("cancelled pool Run: res=%v err=%v", res, err)
		}
		ok, err := pool.Run(context.Background(), g, Request{Kind: KindBFS, Parallel: true, Root: 0})
		if err != nil {
			t.Fatalf("pool unusable after cancelled Run: %v", err)
		}
		testutil.MustEqualDists(t, "post-cancel", ok.Hops, want.Hops)
	}
}

// TestRunEmptyGraphRootValidation is the checkRoot/checkSource
// regression test: on a 0-vertex graph every root/source — including
// 0 — must be rejected, for every kind and for the deprecated
// wrappers. (The guard used to be skipped entirely when
// NumVertices() == 0.)
func TestRunEmptyGraphRootValidation(t *testing.T) {
	empty, err := NewGraph(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	wempty, err := NewWeightedGraph(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, root := range []uint32{0, 3} {
		if _, err := Run(context.Background(), empty, Request{Kind: KindBFS, Root: root}); err == nil {
			t.Errorf("KindBFS root %d accepted on the empty graph", root)
		}
		if _, err := Run(context.Background(), empty, Request{Kind: KindBFSBatch, Roots: []uint32{root}}); err == nil {
			t.Errorf("KindBFSBatch root %d accepted on the empty graph", root)
		}
		if _, err := Run(context.Background(), wempty, Request{Kind: KindSSSP, Root: root}); err == nil {
			t.Errorf("KindSSSP source %d accepted on the empty graph", root)
		}
		if _, err := ShortestHops(empty, root, BFSBranchBased); err == nil {
			t.Errorf("ShortestHops root %d accepted on the empty graph", root)
		}
		if _, err := ShortestPaths(wempty, root, SSSPDijkstra); err == nil {
			t.Errorf("ShortestPaths source %d accepted on the empty graph", root)
		}
	}
	// CC has no root: the empty graph is a valid (empty) instance.
	res := runOK(t, empty, Request{Kind: KindCC, CC: CCBranchAvoiding})
	if len(res.Labels) != 0 {
		t.Fatalf("empty-graph CC returned %d labels", len(res.Labels))
	}
	// An empty batch is likewise valid: no roots, no arrays.
	batch := runOK(t, empty, Request{Kind: KindBFSBatch})
	if len(batch.HopsBatch) != 0 {
		t.Fatal("empty batch returned arrays")
	}
}

// TestWorkspaceReuse: a workspace primed by the first Run is reused by
// later runs of every kind — results alias the workspace buffers, and
// the buffers persist across calls.
func TestWorkspaceReuse(t *testing.T) {
	g := gen.GNM(400, 1200, 5)
	w := testutil.AttachHashWeights(t, g, 9, 5)
	n := g.NumVertices()
	ws := &Workspace{}

	cc1 := runOK(t, g, Request{Kind: KindCC, CC: CCHybrid, Parallel: true, Workers: 2, Workspace: ws})
	if len(ws.Labels) != n || len(ws.Scratch) != n {
		t.Fatalf("CC did not prime the workspace: %d/%d", len(ws.Labels), len(ws.Scratch))
	}
	if &cc1.Labels[0] != &ws.Labels[0] && &cc1.Labels[0] != &ws.Scratch[0] {
		t.Fatal("CC result does not alias the workspace")
	}
	labels0, scratch0 := &ws.Labels[0], &ws.Scratch[0]
	runOK(t, g, Request{Kind: KindCC, CC: CCBranchAvoiding, Parallel: true, Workers: 2, Workspace: ws})
	if &ws.Labels[0] != labels0 || &ws.Scratch[0] != scratch0 {
		t.Fatal("second CC run reallocated the workspace")
	}

	b1 := runOK(t, g, Request{Kind: KindBFS, Parallel: true, Root: 0, Workers: 2, Workspace: ws})
	if &b1.Hops[0] != &ws.Hops[0] {
		t.Fatal("BFS result does not alias the workspace")
	}
	hops0 := &ws.Hops[0]
	runOK(t, g, Request{Kind: KindBFS, Parallel: true, Root: 7, Workers: 2, Workspace: ws})
	if &ws.Hops[0] != hops0 {
		t.Fatal("second BFS run reallocated the workspace")
	}

	s1 := runOK(t, w, Request{Kind: KindSSSP, SSSP: SSSPHybrid, Parallel: true, Root: 0, Workers: 2, Workspace: ws})
	if &s1.Dists[0] != &ws.Dists[0] {
		t.Fatal("SSSP result does not alias the workspace")
	}
	dists0 := &ws.Dists[0]
	runOK(t, w, Request{Kind: KindSSSP, SSSP: SSSPBellmanFord, Root: 3, Workspace: ws})
	if &ws.Dists[0] != dists0 {
		t.Fatal("sequential SSSP run reallocated the workspace")
	}

	batch := runOK(t, g, Request{Kind: KindBFSBatch, Roots: []uint32{0, 1, 2}, Workers: 2, Workspace: ws})
	if len(ws.HopsBatch) != 3 || &batch.HopsBatch[0][0] != &ws.HopsBatch[0][0] {
		t.Fatal("batch result does not alias the workspace")
	}
	inner0 := &ws.HopsBatch[0][0]
	runOK(t, g, Request{Kind: KindBFSBatch, Roots: []uint32{9, 8, 7}, Workers: 2, Workspace: ws})
	if &ws.HopsBatch[0][0] != inner0 {
		t.Fatal("second batch run reallocated the workspace")
	}

	// Reused buffers never leak stale results: a fresh workspace-less
	// run agrees.
	again := runOK(t, g, Request{Kind: KindBFS, Parallel: true, Root: 7, Workers: 2, Workspace: ws})
	clean := runOK(t, g, Request{Kind: KindBFS, BFS: BFSBranchBased, Root: 7})
	testutil.MustEqualDists(t, "workspace reuse", again.Hops, clean.Hops)

	// Sequential kernels allocate internally; the workspace captures
	// their result, so reading ws.Hops/ws.Labels after a sequential Run
	// never yields a previous run's output.
	seqBFS := runOK(t, g, Request{Kind: KindBFS, BFS: BFSBranchBased, Root: 9, Workspace: ws})
	if &ws.Hops[0] != &seqBFS.Hops[0] {
		t.Fatal("sequential BFS result not captured in the workspace")
	}
	seqCC := runOK(t, g, Request{Kind: KindCC, CC: CCBranchAvoiding, Workspace: ws})
	if &ws.Labels[0] != &seqCC.Labels[0] {
		t.Fatal("sequential CC result not captured in the workspace")
	}
	// The capture keeps the workspace valid for a later parallel run.
	runOK(t, g, Request{Kind: KindCC, CC: CCHybrid, Parallel: true, Workers: 2, Workspace: ws})
}

// TestKindStrings: every kind names itself.
func TestKindStrings(t *testing.T) {
	for _, k := range []Kind{KindCC, KindBFS, KindSSSP, KindBFSBatch} {
		if s := k.String(); s == "" || s[0] == 'K' {
			t.Errorf("Kind(%d).String() = %q", int(k), s)
		}
	}
	if Kind(42).String() != "Kind(42)" {
		t.Errorf("unknown kind stringer: %q", Kind(42).String())
	}
}
