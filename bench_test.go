package bagraph

// The benchmark harness: one benchmark per table/figure of the paper's
// evaluation section (regenerating the exhibit's underlying measurement),
// plus native wall-clock benchmarks of the branch-based vs branch-avoiding
// kernels themselves.
//
// Run everything:      go test -bench=. -benchmem
// One exhibit:         go test -bench=BenchmarkFig3 -benchmem
// Larger corpus scale: go test -bench=. -benchscale 0.05
//
// Simulated benchmarks report events per simulated run; native kernel
// benchmarks measure this machine's wall clock, where the branchless
// transformation's effect depends on how the Go compiler lowers the inner
// loops (the paper's §6.1 compiler discussion applies to Go as well).

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math"
	"runtime"
	"testing"

	"bagraph/internal/bfs"
	"bagraph/internal/cc"
	"bagraph/internal/exp"
	"bagraph/internal/gen"
	"bagraph/internal/graph"
	"bagraph/internal/par"
	"bagraph/internal/perfsim"
	"bagraph/internal/relabel"
	"bagraph/internal/simkern"
	"bagraph/internal/sssp"
	"bagraph/internal/uarch"
	"bagraph/internal/xrand"
)

var benchScale = flag.Float64("benchscale", 0.01, "corpus scale for benchmarks")

// benchOpt restricts simulated sweeps to a representative platform pair so
// a full -bench=. run stays in minutes; pass -benchscale to grow graphs.
func benchOpt() exp.Options {
	return exp.Options{
		Scale:     *benchScale,
		Seed:      42,
		Platforms: []string{"Haswell", "Bonnell"},
	}
}

func benchGraph(b *testing.B, name string) *graph.Graph {
	b.Helper()
	g, err := CorpusGraph(name, *benchScale, 42)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// --- Table 1 / Table 2 -------------------------------------------------

func BenchmarkTable1Systems(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.Table1(io.Discard)
	}
}

func BenchmarkTable2Corpus(b *testing.B) {
	// Regenerating Table 2 measures corpus construction end to end.
	for i := 0; i < b.N; i++ {
		if err := exp.Table2(io.Discard, benchOpt()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Fig 1 / Fig 2 ------------------------------------------------------

func BenchmarkFig1PredictorFSA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.Fig1(io.Discard)
	}
}

func BenchmarkFig2LabelPropagation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp.Fig2(io.Discard)
	}
}

// --- Figs 3-5: the SV sweep --------------------------------------------

func benchSVSweep(b *testing.B, render func(io.Writer, []exp.SVRun)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		runs, err := exp.ComputeSV(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		render(io.Discard, runs)
	}
}

func BenchmarkFig3SVTimePerIteration(b *testing.B)  { benchSVSweep(b, exp.Fig3) }
func BenchmarkFig4SVBranches(b *testing.B)          { benchSVSweep(b, exp.Fig4) }
func BenchmarkFig5SVMispredictions(b *testing.B)    { benchSVSweep(b, exp.Fig5) }
func BenchmarkFig9aSVMispredictBounds(b *testing.B) { benchSVSweep(b, exp.Fig9a) }

// --- Figs 6-8: the BFS sweep ---------------------------------------------

func benchBFSSweep(b *testing.B, render func(io.Writer, []exp.BFSRun)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		runs, err := exp.ComputeBFS(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		render(io.Discard, runs)
	}
}

func BenchmarkFig6BFSTimePerLevel(b *testing.B)      { benchBFSSweep(b, exp.Fig6) }
func BenchmarkFig7BFSBranches(b *testing.B)          { benchBFSSweep(b, exp.Fig7) }
func BenchmarkFig8BFSMispredictions(b *testing.B)    { benchBFSSweep(b, exp.Fig8) }
func BenchmarkFig9bBFSMispredictBounds(b *testing.B) { benchBFSSweep(b, exp.Fig9b) }

// --- Fig 10, speedups, hybrid, ablation ----------------------------------

func BenchmarkFig10Correlations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.Compute(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		exp.Fig10(io.Discard, res)
	}
}

func BenchmarkHeadlineSpeedups(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.Compute(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		exp.Speedups(io.Discard, res)
	}
}

func BenchmarkHybridSV(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runs, err := exp.ComputeSV(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		exp.Hybrid(io.Discard, runs)
	}
}

func BenchmarkAblationPredictors(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := exp.AblationPredictors(io.Discard, benchOpt()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationStoreCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := exp.AblationStoreCost(io.Discard, benchOpt()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationCmovCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := exp.AblationCmovCost(io.Discard, benchOpt()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- native kernels (host wall clock) ------------------------------------

// benchEdges reports a custom metric so kernel benchmarks are comparable
// across graphs.
func reportEdges(b *testing.B, arcs int64) {
	b.Helper()
	b.ReportMetric(float64(arcs), "arcs/op")
}

func BenchmarkNativeSV(b *testing.B) {
	for _, name := range CorpusNames() {
		g := benchGraph(b, name)
		b.Run(fmt.Sprintf("branch-based/%s", name), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				labels, _ := cc.SVBranchBased(g)
				if len(labels) == 0 && g.NumVertices() > 0 {
					b.Fatal("no labels")
				}
			}
			reportEdges(b, g.NumArcs())
		})
		b.Run(fmt.Sprintf("branch-avoiding/%s", name), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				labels, _ := cc.SVBranchAvoiding(g)
				if len(labels) == 0 && g.NumVertices() > 0 {
					b.Fatal("no labels")
				}
			}
			reportEdges(b, g.NumArcs())
		})
		b.Run(fmt.Sprintf("hybrid/%s", name), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				labels, _ := cc.SVHybrid(g, cc.HybridOptions{SwitchIteration: -1})
				if len(labels) == 0 && g.NumVertices() > 0 {
					b.Fatal("no labels")
				}
			}
			reportEdges(b, g.NumArcs())
		})
		b.Run(fmt.Sprintf("union-find/%s", name), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				labels := cc.UnionFind(g)
				if len(labels) == 0 && g.NumVertices() > 0 {
					b.Fatal("no labels")
				}
			}
			reportEdges(b, g.NumArcs())
		})
	}
}

func BenchmarkNativeBFS(b *testing.B) {
	for _, name := range CorpusNames() {
		g := benchGraph(b, name)
		b.Run(fmt.Sprintf("branch-based/%s", name), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				dist, _ := bfs.TopDownBranchBased(g, 0)
				if len(dist) == 0 {
					b.Fatal("no distances")
				}
			}
			reportEdges(b, g.NumArcs())
		})
		b.Run(fmt.Sprintf("branch-avoiding/%s", name), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				dist, _ := bfs.TopDownBranchAvoiding(g, 0)
				if len(dist) == 0 {
					b.Fatal("no distances")
				}
			}
			reportEdges(b, g.NumArcs())
		})
		b.Run(fmt.Sprintf("direction-optimizing/%s", name), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				dist, _ := bfs.DirectionOptimizing(g, 0, 0, 0)
				if len(dist) == 0 {
					b.Fatal("no distances")
				}
			}
			reportEdges(b, g.NumArcs())
		})
	}
}

// --- parallel kernels: speedup curves over worker counts ------------------

// benchRMAT is the largest generated RMAT graph in the harness; the
// parallel benchmarks sweep workers 1..GOMAXPROCS over it so speedup
// curves come straight out of `go test -bench=Parallel`. -benchscale
// grows it: scale 0.01 → RMAT-16, 0.1 → RMAT-19 (log2 growth).
func benchRMAT(b *testing.B) *graph.Graph {
	b.Helper()
	scale := 16 + int(math.Round(math.Log2(*benchScale/0.01)))
	if scale < 10 {
		scale = 10
	}
	return gen.RMAT(scale, 8, gen.DefaultRMAT, 42)
}

// workerSweep returns 1, 2, 4, ... up to GOMAXPROCS (always including
// GOMAXPROCS itself).
func workerSweep() []int {
	max := runtime.GOMAXPROCS(0)
	var ws []int
	for w := 1; w < max; w *= 2 {
		ws = append(ws, w)
	}
	return append(ws, max)
}

func BenchmarkParallelSV(b *testing.B) {
	g := benchRMAT(b)
	b.Run("sequential-baseline", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			labels, _ := cc.SVHybrid(g, cc.HybridOptions{SwitchIteration: -1})
			if len(labels) == 0 {
				b.Fatal("no labels")
			}
		}
		reportEdges(b, g.NumArcs())
	})
	for _, w := range workerSweep() {
		pool := par.NewPool(w)
		b.Run(fmt.Sprintf("hybrid/workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				labels, _, _ := cc.SVParallel(g, cc.ParallelOptions{Pool: pool, Variant: cc.Hybrid})
				if len(labels) == 0 {
					b.Fatal("no labels")
				}
			}
			reportEdges(b, g.NumArcs())
		})
		pool.Close()
	}
}

func BenchmarkParallelBFS(b *testing.B) {
	g := benchRMAT(b)
	b.Run("sequential-baseline", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dist, _ := bfs.DirectionOptimizing(g, 0, 0, 0)
			if len(dist) == 0 {
				b.Fatal("no distances")
			}
		}
		reportEdges(b, g.NumArcs())
	})
	for _, w := range workerSweep() {
		pool := par.NewPool(w)
		b.Run(fmt.Sprintf("dir-opt/workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				dist, _, _ := bfs.ParallelDO(g, 0, bfs.ParallelOptions{Pool: pool})
				if len(dist) == 0 {
					b.Fatal("no distances")
				}
			}
			reportEdges(b, g.NumArcs())
		})
		pool.Close()
	}
}

func BenchmarkParallelSSSP(b *testing.B) {
	g := benchRMAT(b)
	// Deterministic symmetric weights in [1, 64]: heavy enough to make
	// the delta-stepping buckets non-trivial.
	w, err := graph.AttachWeights(g, xrand.SymmetricWeights(64, 42))
	if err != nil {
		b.Fatal(err)
	}
	b.Run("sequential-baseline", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dist := sssp.Dijkstra(w, 0)
			if len(dist) == 0 {
				b.Fatal("no distances")
			}
		}
		reportEdges(b, g.NumArcs())
	})
	for _, workers := range workerSweep() {
		pool := par.NewPool(workers)
		b.Run(fmt.Sprintf("hybrid/workers=%d", workers), func(b *testing.B) {
			dist := make([]uint64, g.NumVertices())
			for i := 0; i < b.N; i++ {
				dist, _, _ = sssp.Parallel(w, 0, sssp.ParallelOptions{
					Pool: pool, Variant: sssp.Hybrid, Dist: dist,
				})
				if len(dist) == 0 {
					b.Fatal("no distances")
				}
			}
			reportEdges(b, g.NumArcs())
		})
		pool.Close()
	}
}

// --- chunk scheduling: stealing vs static on skewed frontiers -------------

// stealWorkers picks the scheduler benchmarks' pool size: at least 4
// so steals can happen even when the container exposes one CPU (pool
// goroutines still interleave at blocking points), GOMAXPROCS when the
// hardware offers more.
func stealWorkers() int {
	if w := runtime.GOMAXPROCS(0); w > 4 {
		return w
	}
	return 4
}

// BenchmarkStealVsStatic pairs the two chunk schedules on a skewed
// graph: the RMAT benchmark graph overlaid with a forced hub that owns
// the majority of all arcs (star edges to every vertex plus enough
// kept parallel self-loops to push vertex 0 past 50% — an undirected
// simple graph caps a vertex at exactly half, see testutil.Hub), so
// the static split hands one worker a straggler block every pass.
// Speedup (and the steals/op, chunks/op metrics showing the steal path
// is actually exercised) is reported, never asserted: CI containers
// may expose a single CPU.
func benchHubRMAT(b *testing.B) *graph.Graph {
	b.Helper()
	base := benchRMAT(b)
	n := base.NumVertices()
	adj := base.Adjacency()
	offs := base.Offsets()
	loops := int(base.NumArcs()) + 4*n // hub mass: strictly >50% of all arcs
	edges := make([]graph.Edge, 0, int(base.NumArcs())/2+n+loops)
	for v := 0; v < n; v++ {
		for _, u := range adj[offs[v]:offs[v+1]] {
			if uint32(v) < u {
				edges = append(edges, graph.Edge{U: uint32(v), V: u})
			}
		}
	}
	for i := 1; i < n; i++ {
		edges = append(edges, graph.Edge{U: 0, V: uint32(i)})
	}
	for i := 0; i < loops; i++ {
		edges = append(edges, graph.Edge{U: 0, V: 0})
	}
	g := graph.MustBuild(n, edges, graph.Options{
		Name: "rmat+hub", KeepSelfLoops: true, KeepParallelEdges: true,
	})
	if hub := g.Degree(0); int64(hub)*2 <= g.NumArcs() {
		b.Fatalf("hub owns %d of %d arcs — not a majority", hub, g.NumArcs())
	}
	return g
}

func BenchmarkStealVsStatic(b *testing.B) {
	g := benchHubRMAT(b)
	workers := stealWorkers()
	for _, sched := range []par.Schedule{par.Static, par.Stealing} {
		pool := par.NewPool(workers)
		b.Run(fmt.Sprintf("cc/%v/workers=%d", sched, workers), func(b *testing.B) {
			var steals, chunks uint64
			for i := 0; i < b.N; i++ {
				_, st, err := cc.SVParallel(g, cc.ParallelOptions{
					Pool: pool, Variant: cc.Hybrid, Schedule: sched,
				})
				if err != nil {
					b.Fatal(err)
				}
				steals += st.Steals
				chunks += uint64(st.Chunks)
			}
			b.ReportMetric(float64(steals)/float64(b.N), "steals/op")
			b.ReportMetric(float64(chunks)/float64(b.N), "chunks/op")
			reportEdges(b, g.NumArcs())
		})
		b.Run(fmt.Sprintf("bfs/%v/workers=%d", sched, workers), func(b *testing.B) {
			var steals, chunks uint64
			for i := 0; i < b.N; i++ {
				_, st, err := bfs.ParallelDO(g, 0, bfs.ParallelOptions{
					Pool: pool, Schedule: sched,
				})
				if err != nil {
					b.Fatal(err)
				}
				steals += st.Steals
				chunks += uint64(st.Chunks)
			}
			b.ReportMetric(float64(steals)/float64(b.N), "steals/op")
			b.ReportMetric(float64(chunks)/float64(b.N), "chunks/op")
			reportEdges(b, g.NumArcs())
		})
		pool.Close()
	}
}

// BenchmarkRelabelSpeedup pairs each kernel on the same skewed graph in
// two memory layouts: a shuffled layout (what bagen -shuffle writes —
// vertex ids carry no locality) and the degree-ordered layout
// RelabelDegree produces, which clusters the hub and its satellites into
// the low vertex ids. The words/op metric is Stats.WordsScanned — how
// many frontier-bitset words the succinct bottom-up and multi-source
// sweeps actually loaded — a locality measure that stays stable when CI
// wall clocks are noisy. Speedup is reported, never asserted.
func BenchmarkRelabelSpeedup(b *testing.B) {
	skew := benchHubRMAT(b)
	shuf, err := skew.Permute(relabel.Shuffle(skew.NumVertices(), 7))
	if err != nil {
		b.Fatal(err)
	}
	rl, err := RelabelDegree(shuf)
	if err != nil {
		b.Fatal(err)
	}
	roots := make([]uint32, 64)
	for i := range roots {
		roots[i] = uint32(i)
	}
	pool := NewWorkerPool(stealWorkers())
	defer pool.Close()
	layouts := []struct {
		name string
		tgt  Target
	}{{"identity", shuf}, {"degree", rl}}
	for _, kern := range []struct {
		name string
		req  Request
	}{
		{"bfs", Request{Kind: KindBFS, Parallel: true}},
		{"msbfs", Request{Kind: KindBFSBatch, Roots: roots}},
		{"cc", Request{Kind: KindCC, Parallel: true}},
	} {
		for _, l := range layouts {
			b.Run(kern.name+"/"+l.name, func(b *testing.B) {
				ws := &Workspace{}
				req := kern.req
				req.Workspace = ws
				var words uint64
				for i := 0; i < b.N; i++ {
					res, err := pool.Run(context.Background(), l.tgt, req)
					if err != nil {
						b.Fatal(err)
					}
					words += res.Stats.WordsScanned
				}
				b.ReportMetric(float64(words)/float64(b.N), "words/op")
				reportEdges(b, shuf.NumArcs())
			})
		}
	}
}

// BenchmarkParallelSSSPLightHeavy pairs delta-stepping with and
// without the Meyer & Sanders light/heavy split on weights that dwarf
// the default bucket width, so heavy arcs are re-scanned by every
// in-bucket pass unless deferred. The light/heavy relaxation metrics
// record how much work the split reroutes; wall clock is reported, not
// asserted.
func BenchmarkParallelSSSPLightHeavy(b *testing.B) {
	g := benchRMAT(b)
	w, err := graph.AttachWeights(g, xrand.SymmetricWeights(256, 42))
	if err != nil {
		b.Fatal(err)
	}
	workers := stealWorkers()
	// A deliberately narrow bucket makes most arcs heavy — the regime
	// the split exists for.
	const delta = 16
	for _, tc := range []struct {
		name  string
		split bool
	}{{"unified", false}, {"light-heavy", true}} {
		pool := par.NewPool(workers)
		b.Run(fmt.Sprintf("%s/workers=%d", tc.name, workers), func(b *testing.B) {
			dist := make([]uint64, g.NumVertices())
			var light, heavy uint64
			for i := 0; i < b.N; i++ {
				var st sssp.Stats
				dist, st, err = sssp.Parallel(w, 0, sssp.ParallelOptions{
					Pool: pool, Variant: sssp.Hybrid, Delta: delta,
					LightHeavy: tc.split, Dist: dist,
				})
				if err != nil {
					b.Fatal(err)
				}
				light += st.LightRelaxed
				heavy += st.HeavyRelaxed
			}
			b.ReportMetric(float64(light)/float64(b.N), "light-relax/op")
			b.ReportMetric(float64(heavy)/float64(b.N), "heavy-relax/op")
			reportEdges(b, g.NumArcs())
		})
		pool.Close()
	}
}

// --- simulated kernels (events per run, one platform) --------------------

func BenchmarkSimulatedSV(b *testing.B) {
	model, _ := uarch.ByName("Haswell")
	for _, name := range []string{"cond-mat-2005", "auto"} {
		g := benchGraph(b, name)
		b.Run("branch-based/"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := simkern.SVBranchBased(perfsim.NewDefault(model), g)
				if r.Iterations == 0 {
					b.Fatal("no passes")
				}
			}
		})
		b.Run("branch-avoiding/"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := simkern.SVBranchAvoiding(perfsim.NewDefault(model), g)
				if r.Iterations == 0 {
					b.Fatal("no passes")
				}
			}
		})
	}
}

func BenchmarkSimulatedBFS(b *testing.B) {
	model, _ := uarch.ByName("Haswell")
	g := benchGraph(b, "coAuthorsDBLP")
	b.Run("branch-based", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r := simkern.BFSBranchBased(perfsim.NewDefault(model), g, 0)
			if r.Reached == 0 {
				b.Fatal("nothing reached")
			}
		}
	})
	b.Run("branch-avoiding", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r := simkern.BFSBranchAvoiding(perfsim.NewDefault(model), g, 0)
			if r.Reached == 0 {
				b.Fatal("nothing reached")
			}
		}
	})
}

// --- extensions (paper §1's predicted transfers) --------------------------

func BenchmarkExtensionSSSP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := exp.ExtensionSSSP(io.Discard, benchOpt()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtensionBetweenness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := exp.ExtensionBC(io.Discard, benchOpt()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtensionAPSP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := exp.ExtensionAPSP(io.Discard, benchOpt()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- unified API dispatch overhead ---------------------------------------

// BenchmarkRunOverhead quantifies what the unified request/response API
// costs on top of a direct kernel call: request validation, the kind
// dispatch, the context entry check, and the Stats normalization. The
// graph is deliberately tiny — a few-microsecond kernel — so any facade
// overhead would be a visible fraction of the time; on serving-size
// graphs it vanishes entirely. Paired with the direct-call baselines
// below, the bench artifact records that Run's dispatch is negligible.
func BenchmarkRunOverhead(b *testing.B) {
	g := gen.Grid2D(16, 16, false) // 256 vertices: kernel time ~µs
	ctx := context.Background()

	b.Run("bfs/direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dist, _ := bfs.TopDownBranchBased(g, 0)
			if len(dist) == 0 {
				b.Fatal("no distances")
			}
		}
	})
	b.Run("bfs/run", func(b *testing.B) {
		req := Request{Kind: KindBFS, BFS: BFSBranchBased, Root: 0}
		for i := 0; i < b.N; i++ {
			res, err := Run(ctx, g, req)
			if err != nil || len(res.Hops) == 0 {
				b.Fatal("no distances")
			}
		}
	})
	b.Run("cc/direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			labels, _ := cc.SVBranchAvoiding(g)
			if len(labels) == 0 {
				b.Fatal("no labels")
			}
		}
	})
	b.Run("cc/run", func(b *testing.B) {
		req := Request{Kind: KindCC, CC: CCBranchAvoiding}
		for i := 0; i < b.N; i++ {
			res, err := Run(ctx, g, req)
			if err != nil || len(res.Labels) == 0 {
				b.Fatal("no labels")
			}
		}
	})
}
