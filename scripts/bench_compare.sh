#!/usr/bin/env bash
# bench_compare.sh [--gate PCT] OLD.json NEW.json — diff two benchmark
# artifacts.
#
# The CI bench smoke emits its benchmarks as a test2json event stream
# (BENCH_pr*.json). This script extracts the "Benchmark... N ns/op"
# result lines from two such artifacts and prints a per-benchmark
# comparison: old ns/op, new ns/op, delta.
#
# REPORT-ONLY by default: it exits 0 on a successful parse and never
# asserts that anything got faster. CI containers may expose a single
# CPU and share hardware with other jobs, so cross-run timings are a
# trajectory record, not a gate (see ROADMAP). A missing baseline file
# is also fine — fresh checkouts have no prior artifact — and reports
# the new artifact's benchmarks on their own.
#
# --gate PCT opts into gating: when a baseline IS supplied, any
# benchmark whose ns/op regressed by more than PCT percent fails the
# run (exit 1, regressed benchmarks listed). The no-baseline path
# stays report-only even under --gate — there is nothing to regress
# against — so the flag is safe to leave on in jobs that only
# sometimes download a prior artifact.
set -euo pipefail

gate=""
if [ "${1:-}" = "--gate" ]; then
    gate=${2:?"--gate needs a percentage"}
    case $gate in
        ''|*[!0-9.]*) echo "bench_compare: --gate wants a number, got $gate" >&2; exit 2 ;;
    esac
    shift 2
fi

if [ $# -ne 2 ]; then
    echo "usage: $0 [--gate PCT] OLD.json NEW.json" >&2
    exit 2
fi
old=$1
new=$2

if [ ! -f "$new" ]; then
    echo "bench_compare: new artifact $new not found" >&2
    exit 2
fi

# extract FILE — print "name ns_per_op" for every benchmark result
# carried by the stream's output events. test2json may emit the
# benchmark name and its result numbers as separate events, so the
# name comes from the event's Test field, not the output text.
extract() {
    # grep exits 1 on zero matches; an artifact with no benchmark
    # lines must yield an empty extraction, not abort the report.
    { grep '"Action":"output"' "$1" | grep 'ns/op' || true; } |
        sed -n 's/.*"Test":"\(Benchmark[^"]*\)".*"Output":"\([^"]*\)".*/\1 \2/p' |
        awk '{
            gsub(/\\[tn]/, " ")
            ns = ""
            for (i = 2; i <= NF; i++) if ($i == "ns/op") ns = $(i - 1)
            if (ns != "") print $1, ns
        }'
}

if [ ! -f "$old" ]; then
    echo "bench_compare: no baseline at $old — skipping comparison, listing $new only"
    extract "$new" | awk '{printf "  %-64s %14.0f ns/op\n", $1, $2}'
    exit 0
fi

mode="report-only"
if [ -n "$gate" ]; then
    mode="gate at +$gate%"
fi
echo "bench_compare: $old -> $new ($mode)"
{
    extract "$old" | sed 's/^/old /'
    extract "$new" | sed 's/^/new /'
} | awk -v gate="$gate" '
    $1 == "old" { oldns[$2] = $3 }
    $1 == "new" { newns[$2] = $3; order[n++] = $2 }
    END {
        printf "  %-64s %14s %14s %9s\n", "benchmark", "old ns/op", "new ns/op", "delta"
        failed = 0
        for (i = 0; i < n; i++) {
            name = order[i]
            if (name in oldns && oldns[name] > 0) {
                d = (newns[name] - oldns[name]) / oldns[name] * 100
                printf "  %-64s %14.0f %14.0f %8.1f%%\n", name, oldns[name], newns[name], d
                if (gate != "" && d > gate + 0) {
                    regressed[failed++] = sprintf("%s +%.1f%% (%.0f -> %.0f ns/op)", \
                        name, d, oldns[name], newns[name])
                }
            } else {
                printf "  %-64s %14s %14.0f %9s\n", name, "-", newns[name], "new"
            }
        }
        for (name in oldns) if (!(name in newns))
            printf "  %-64s %14.0f %14s %9s\n", name, oldns[name], "-", "gone"
        if (failed > 0) {
            printf "bench_compare: %d benchmark(s) regressed beyond +%s%%:\n", failed, gate > "/dev/stderr"
            for (i = 0; i < failed; i++) print "  " regressed[i] > "/dev/stderr"
            exit 1
        }
    }'
