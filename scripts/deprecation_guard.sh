#!/usr/bin/env bash
# Deprecation guard: the per-kernel facade functions
# (ConnectedComponents*, ShortestHops*, ShortestPaths*) survive only as
# thin wrappers for external callers migrating to the unified
# request/response API. First-party code — the CLIs, the examples, and
# the serving layer — must go through bagraph.Run / WorkerPool.Run,
# which carry cancellation, kernel Stats, and reusable workspaces.
# This script fails CI when a deprecated entry point creeps back into
# those trees. Run from the repository root.
set -euo pipefail

deprecated='ConnectedComponentsParallel|ConnectedComponents|ShortestHopsParallel|ShortestHopsMultiSource|ShortestHopsBatch|ShortestHops|ShortestPathsParallel|ShortestPathsInto|ShortestPaths'

# Match method/package-qualified calls of the deprecated names (the
# leading dot keeps kernel-package functions like cc.CountComponents
# out of scope) across every first-party tree: the CLIs, the examples,
# and all internal packages. The root package is excluded — it is
# where the wrappers live.
pattern="\.(${deprecated})\("

if grep -rnE "$pattern" cmd examples internal; then
    echo >&2
    echo "deprecation guard: the calls above use deprecated facade wrappers;" >&2
    echo "internal code must use bagraph.Run / WorkerPool.Run (see run.go)." >&2
    exit 1
fi
echo "deprecation guard: OK"
