#!/usr/bin/env bash
# Daemon smoke test: build the binaries, serve a small generated graph
# (plus a weighted variant) with baserved, check that CC, BFS and
# weighted SSSP answers over HTTP match the bacc, babfs and basssp
# command-line kernels on the same files — with -autotune on, so the
# adaptive controller's picks are exercised against the same
# equivalence bars — scrape /metrics and fail unless the query-count,
# CC-cache-hit and batch-size-histogram series are present and
# non-zero, and verify the daemon drains cleanly on SIGTERM. A second
# phase smokes the fleet plane: a router over two replicated shards
# must answer byte-identically to a single daemon, survive a SIGTERM
# of one shard mid-traffic with zero failed queries (failover to the
# replica), and expose non-zero router metrics. Run from the
# repository root; CI runs it as a dedicated job.
set -euo pipefail

workdir=$(mktemp -d)
bindir="$workdir/bin"
addr=127.0.0.1:18421
daemon_pid=""
fleet_pids=""
trap '[ -n "$daemon_pid" ] && kill "$daemon_pid" 2>/dev/null || true; [ -n "$fleet_pids" ] && kill $fleet_pids 2>/dev/null || true; rm -rf "$workdir"' EXIT

echo "== build"
mkdir -p "$bindir"
go build -o "$bindir" ./cmd/...

echo "== generate graphs"
"$bindir/bagen" -kind ba -n 2000 -k 4 -seed 7 -out "$workdir/smoke.metis"
"$bindir/bagen" -kind ba -n 2000 -k 4 -seed 7 -wmax 9 -out "$workdir/wsmoke.metis"

echo "== start daemon"
"$bindir/baserved" -listen "$addr" -graph "smoke=$workdir/smoke.metis" \
    -graph "wsmoke=$workdir/wsmoke.metis" \
    -batch-window 1ms -autotune >"$workdir/baserved.log" 2>&1 &
daemon_pid=$!

for i in $(seq 1 50); do
    if curl -sf "http://$addr/healthz" >/dev/null 2>&1; then
        break
    fi
    if ! kill -0 "$daemon_pid" 2>/dev/null; then
        echo "daemon died during startup:" >&2
        cat "$workdir/baserved.log" >&2
        exit 1
    fi
    sleep 0.2
done
curl -sf "http://$addr/healthz"; echo

echo "== CC equivalence (daemon vs bacc)"
cc_daemon=$(curl -sf -d '{"graph":"smoke","algo":"hybrid"}' "http://$addr/query/cc" \
    | grep -o '"components":[0-9]*' | cut -d: -f2)
cc_direct=$("$bindir/bacc" -in "$workdir/smoke.metis" -algo hybrid \
    | awk '/^components:/{print $2}')
echo "daemon=$cc_daemon direct=$cc_direct"
[ -n "$cc_daemon" ] && [ "$cc_daemon" = "$cc_direct" ] \
    || { echo "CC mismatch" >&2; exit 1; }
# Repeat the identical query: the second answer comes from the epoch
# cache (asserted through /metrics below) and must not change.
cc_cached=$(curl -sf -d '{"graph":"smoke","algo":"hybrid"}' "http://$addr/query/cc" \
    | grep -o '"components":[0-9]*' | cut -d: -f2)
[ "$cc_cached" = "$cc_direct" ] || { echo "cached CC mismatch" >&2; exit 1; }
# The autotuner's pick ("auto", the daemon's default under -autotune)
# must resolve to a concrete kernel with the same component count.
cc_auto=$(curl -sf -d '{"graph":"smoke","algo":"auto"}' "http://$addr/query/cc" \
    | grep -o '"components":[0-9]*' | cut -d: -f2)
echo "daemon(auto)=$cc_auto"
[ -n "$cc_auto" ] && [ "$cc_auto" = "$cc_direct" ] \
    || { echo "autotuned CC mismatch" >&2; exit 1; }

echo "== BFS equivalence (daemon vs babfs)"
bfs_daemon=$(curl -sf -d '{"graph":"smoke","root":0,"algo":"ba"}' "http://$addr/query/bfs" \
    | grep -o '"reached":[0-9]*' | cut -d: -f2)
bfs_direct=$("$bindir/babfs" -in "$workdir/smoke.metis" -root 0 -variant ba \
    | awk '/^reached /{split($2, a, "/"); print a[1]}')
echo "daemon=$bfs_daemon direct=$bfs_direct"
[ -n "$bfs_daemon" ] && [ "$bfs_daemon" = "$bfs_direct" ] \
    || { echo "BFS mismatch" >&2; exit 1; }
bfs_auto=$(curl -sf -d '{"graph":"smoke","root":0,"algo":"auto"}' "http://$addr/query/bfs" \
    | grep -o '"reached":[0-9]*' | cut -d: -f2)
echo "daemon(auto)=$bfs_auto"
[ -n "$bfs_auto" ] && [ "$bfs_auto" = "$bfs_direct" ] \
    || { echo "autotuned BFS mismatch" >&2; exit 1; }

echo "== multi-source BFS equivalence (daemon ms vs babfs)"
ms_daemon=$(curl -sf -d '{"graph":"smoke","root":0,"algo":"ms"}' "http://$addr/query/bfs" \
    | grep -o '"reached":[0-9]*' | cut -d: -f2)
echo "daemon(ms)=$ms_daemon direct=$bfs_direct"
[ -n "$ms_daemon" ] && [ "$ms_daemon" = "$bfs_direct" ] \
    || { echo "multi-source BFS mismatch" >&2; exit 1; }

echo "== weighted SSSP equivalence (daemon vs basssp, real edge weights)"
# /graphs must report the weighted entry as weighted.
curl -sf "http://$addr/graphs" | grep -q '"name":"wsmoke"[^}]*"weighted":true' \
    || { echo "wsmoke not served as weighted" >&2; exit 1; }
sssp_daemon=$(curl -sf -d '{"graph":"wsmoke","root":0,"algo":"par-hybrid"}' "http://$addr/query/sssp" \
    | grep -o '"sum":[0-9]*' | cut -d: -f2)
sssp_direct=$("$bindir/basssp" -in "$workdir/wsmoke.metis" -root 0 -algo par-hybrid \
    | awk '/^sum /{print $2}')
sssp_seq=$("$bindir/basssp" -in "$workdir/wsmoke.metis" -root 0 -algo ba \
    | awk '/^sum /{print $2}')
echo "daemon=$sssp_daemon direct=$sssp_direct sequential=$sssp_seq"
[ -n "$sssp_daemon" ] && [ "$sssp_daemon" = "$sssp_direct" ] && [ "$sssp_daemon" = "$sssp_seq" ] \
    || { echo "weighted SSSP mismatch" >&2; exit 1; }
# Unit-weight sanity: on the unweighted graph the SSSP sum must differ
# from the weighted one (weights actually reached the kernels).
sssp_unit=$(curl -sf -d '{"graph":"smoke","root":0,"algo":"par-hybrid"}' "http://$addr/query/sssp" \
    | grep -o '"sum":[0-9]*' | cut -d: -f2)
echo "unit-weight sum=$sssp_unit"
[ -n "$sssp_unit" ] && [ "$sssp_unit" != "$sssp_daemon" ] \
    || { echo "weighted and unit-weight sums identical; weights ignored?" >&2; exit 1; }

echo "== metrics exposition"
metrics="$workdir/metrics.txt"
curl -sf "http://$addr/metrics" >"$metrics"
# Every sample line must match the exposition grammar.
bad=$(grep -vE '^(#.*|[A-Za-z_][A-Za-z0-9_]*(\{[^{}]*\})? [0-9eE+.InNa-]+)$' "$metrics" || true)
[ -z "$bad" ] || { echo "unparseable /metrics lines:" >&2; echo "$bad" >&2; exit 1; }
# A named series must be present with a value > 0.
metric_nonzero() {
    local pattern=$1
    local v
    v=$(grep -E "$pattern" "$metrics" | awk '{s+=$NF} END {printf "%d", s}')
    if [ -z "$v" ] || [ "$v" -le 0 ]; then
        echo "metrics series $pattern missing or zero" >&2
        grep -E "$pattern" "$metrics" >&2 || true
        exit 1
    fi
    echo "  $pattern = $v"
}
metric_nonzero '^baserved_queries_total\{kind="cc",status="ok"\}'
metric_nonzero '^baserved_queries_total\{kind="bfs",status="ok"\}'
metric_nonzero '^baserved_queries_total\{kind="sssp",status="ok"\}'
metric_nonzero '^baserved_cc_cache_events_total\{event="hit"\}'
metric_nonzero '^baserved_cc_cache_events_total\{event="miss"\}'
metric_nonzero '^baserved_batch_size_count'
metric_nonzero '^baserved_kernel_passes_total'
metric_nonzero '^baserved_autotune_decisions_total'

echo "== graceful shutdown on SIGTERM"
kill -TERM "$daemon_pid"
status=0
wait "$daemon_pid" || status=$?
[ "$status" -eq 0 ] || { echo "daemon exited $status" >&2; cat "$workdir/baserved.log" >&2; exit 1; }
grep -q "drained, bye" "$workdir/baserved.log" \
    || { echo "no drain marker in log" >&2; cat "$workdir/baserved.log" >&2; exit 1; }

#
# ---- fleet phase -----------------------------------------------------
#
# Two shards replicate both graphs; a stateless router fronts them. A
# reference daemon with the identical static configuration (no
# autotune, static schedule, same worker count) pins the bar: every
# response through the router must be byte-identical to the single
# daemon's. Then one shard takes a SIGTERM mid-traffic and the replica
# must absorb every query — zero failures — with the failover visible
# in the router's /metrics.
shard1_addr=127.0.0.1:18431
shard2_addr=127.0.0.1:18432
ref_addr=127.0.0.1:18433
router_addr=127.0.0.1:18434

echo "== fleet: start two shards, a reference daemon and a router"
shard_flags=(-workers 2 -batch-window 1ms -schedule static
    -graph "smoke=$workdir/smoke.metis" -graph "wsmoke=$workdir/wsmoke.metis")
"$bindir/baserved" -listen "$shard1_addr" "${shard_flags[@]}" >"$workdir/shard1.log" 2>&1 &
shard1_pid=$!
"$bindir/baserved" -listen "$shard2_addr" "${shard_flags[@]}" >"$workdir/shard2.log" 2>&1 &
shard2_pid=$!
"$bindir/baserved" -listen "$ref_addr" "${shard_flags[@]}" >"$workdir/ref.log" 2>&1 &
ref_pid=$!
fleet_pids="$shard1_pid $shard2_pid $ref_pid"
for a in "$shard1_addr" "$shard2_addr" "$ref_addr"; do
    for i in $(seq 1 50); do
        curl -sf "http://$a/healthz" >/dev/null 2>&1 && break
        sleep 0.2
    done
done
# A long health interval keeps the router from noticing the SIGTERM on
# its own: the query path must discover the death and fail over.
"$bindir/baserved" -router -shard "$shard1_addr,$shard2_addr" \
    -listen "$router_addr" -health-interval 30s -max-stale 5m >"$workdir/router.log" 2>&1 &
router_pid=$!
fleet_pids="$fleet_pids $router_pid"
for i in $(seq 1 50); do
    if curl -sf "http://$router_addr/healthz" 2>/dev/null | grep -q '"shards":2'; then
        break
    fi
    if ! kill -0 "$router_pid" 2>/dev/null; then
        echo "router died during startup:" >&2
        cat "$workdir/router.log" >&2
        exit 1
    fi
    sleep 0.2
done
curl -sf "http://$router_addr/healthz" | grep -q '"shards":2' \
    || { echo "router never saw both shards live" >&2; cat "$workdir/router.log" >&2; exit 1; }

echo "== fleet: router answers byte-identical to a single daemon"
# Prime the reference daemon's CC caches: the router warmed its shards
# on join, so the comparable answer is the cached replay on both sides.
curl -sf -d '{"graph":"smoke","algo":"par-hybrid"}' "http://$ref_addr/query/cc" >/dev/null
curl -sf -d '{"graph":"wsmoke","algo":"par-hybrid"}' "http://$ref_addr/query/cc" >/dev/null
fleet_query() {
    local path=$1 body=$2 tag=$3
    curl -sf -d "$body" "http://$ref_addr$path" >"$workdir/ref-$tag.json"
    curl -sf -d "$body" "http://$router_addr$path" >"$workdir/router-$tag.json"
    cmp -s "$workdir/ref-$tag.json" "$workdir/router-$tag.json" || {
        echo "router answer differs from single daemon for $tag:" >&2
        diff "$workdir/ref-$tag.json" "$workdir/router-$tag.json" >&2 || true
        exit 1
    }
    echo "  $tag: byte-identical"
}
fleet_query /query/cc '{"graph":"smoke","algo":"par-hybrid","labels":true}' cc
fleet_query /query/cc '{"graph":"wsmoke","algo":"par-hybrid"}' wcc
fleet_query /query/bfs '{"graph":"smoke","root":0,"algo":"par-do"}' bfs
fleet_query /query/bfs '{"graph":"smoke","root":0,"algo":"ms"}' ms
fleet_query /query/sssp '{"graph":"wsmoke","root":0,"algo":"par-hybrid"}' sssp
# The fleet-wide listing carries both graphs exactly once.
[ "$(curl -sf "http://$router_addr/graphs" | grep -o '"name"' | wc -l)" -eq 2 ] \
    || { echo "fleet /graphs listing wrong" >&2; exit 1; }

echo "== fleet: SIGTERM one shard mid-traffic, zero failed queries"
# The shard the router prefers for graph "smoke" is the one whose
# death exercises failover; find it by watching which shard's cc
# request counter moves (ring preference order is per graph name).
cc_count() {
    curl -sf "http://$router_addr/metrics" \
        | awk -v s="shard=\"http://$1\"" \
            '/^baserved_router_shard_requests_total\{/ && $0 ~ s && /kind="cc"/ {n=$NF} END {printf "%d", n+0}'
}
before1=$(cc_count "$shard1_addr")
curl -sf -d '{"graph":"smoke","algo":"par-hybrid"}' "http://$router_addr/query/cc" >/dev/null
after1=$(cc_count "$shard1_addr")
if [ "$after1" -gt "$before1" ]; then
    victim_pid=$shard1_pid; victim_addr=$shard1_addr; victim_log="$workdir/shard1.log"
    survivor_addr=$shard2_addr; survivor_pid=$shard2_pid
else
    victim_pid=$shard2_pid; victim_addr=$shard2_addr; victim_log="$workdir/shard2.log"
    survivor_addr=$shard1_addr; survivor_pid=$shard1_pid
fi
echo "  victim shard: $victim_addr"
kill -TERM "$victim_pid"
failed=0
for i in $(seq 1 20); do
    body=$(curl -sf -d '{"graph":"smoke","algo":"par-hybrid","labels":true}' \
        "http://$router_addr/query/cc" || true)
    [ "$body" = "$(cat "$workdir/router-cc.json")" ] || failed=$((failed + 1))
done
[ "$failed" -eq 0 ] || { echo "$failed/20 queries failed during shard rotation" >&2; exit 1; }
echo "  20/20 queries answered by the replica"
status=0
wait "$victim_pid" || status=$?
[ "$status" -eq 0 ] || { echo "shard exited $status on SIGTERM" >&2; cat "$victim_log" >&2; exit 1; }
grep -q "drained, bye" "$victim_log" \
    || { echo "no drain marker in shard log" >&2; cat "$victim_log" >&2; exit 1; }

echo "== fleet: router metrics"
curl -sf "http://$router_addr/metrics" >"$metrics"
metric_nonzero '^baserved_router_shard_requests_total\{.*kind="cc"\}'
metric_nonzero '^baserved_router_retries_total'
metric_nonzero '^baserved_router_failovers_total'
metric_nonzero '^baserved_router_health_checks_total\{.*result="ok"\}'
metric_nonzero '^baserved_router_warm_queries_total'
grep -q "^baserved_router_shard_up{shard=\"http://$survivor_addr\"} 1" "$metrics" \
    || { echo "survivor shard not up in metrics" >&2; grep '^baserved_router_shard_up' "$metrics" >&2; exit 1; }
grep -q "^baserved_router_shard_up{shard=\"http://$victim_addr\"} 0" "$metrics" \
    || { echo "victim shard still up in metrics" >&2; grep '^baserved_router_shard_up' "$metrics" >&2; exit 1; }

echo "== fleet: total holder loss answers 503 + Retry-After, CC degrades to stale"
# Kill the survivor too: nothing holds the graphs now. Traversals must
# answer the full 503 contract (Retry-After header, a body naming the
# graph and its dead-holder count); CC must degrade to the router's
# cached answer, marked stale but otherwise byte-identical.
kill -TERM "$survivor_pid"
wait "$survivor_pid" 2>/dev/null || true
code=$(curl -s -o "$workdir/bfs-503.json" -D "$workdir/bfs-503.hdr" -w '%{http_code}' \
    -d '{"graph":"smoke","root":0,"algo":"par-do"}' "http://$router_addr/query/bfs")
[ "$code" = "503" ] \
    || { echo "BFS with no holder answered $code, want 503" >&2; cat "$workdir/bfs-503.json" >&2; exit 1; }
grep -qi '^Retry-After:' "$workdir/bfs-503.hdr" \
    || { echo "503 without Retry-After header" >&2; cat "$workdir/bfs-503.hdr" >&2; exit 1; }
grep -q '"retry_after":' "$workdir/bfs-503.json" \
    || { echo "503 body without retry_after" >&2; cat "$workdir/bfs-503.json" >&2; exit 1; }
grep -q 'holders dead' "$workdir/bfs-503.json" && grep -q 'smoke' "$workdir/bfs-503.json" \
    || { echo "503 body does not name the graph and dead-holder count" >&2; cat "$workdir/bfs-503.json" >&2; exit 1; }
echo "  BFS: 503 with Retry-After and dead-holder body"
code=$(curl -s -o "$workdir/cc-stale.json" -w '%{http_code}' \
    -d '{"graph":"smoke","algo":"par-hybrid","labels":true}' "http://$router_addr/query/cc")
[ "$code" = "200" ] \
    || { echo "CC with no holder answered $code, want a 200 stale serve" >&2; cat "$workdir/cc-stale.json" >&2; exit 1; }
grep -q '"stale":true' "$workdir/cc-stale.json" \
    || { echo "degraded CC answer not marked stale" >&2; cat "$workdir/cc-stale.json" >&2; exit 1; }
sed 's/"stale":true,//' "$workdir/cc-stale.json" | cmp -s - "$workdir/router-cc.json" \
    || { echo "stale CC answer diverges from the cached bytes" >&2; exit 1; }
echo "  CC: 200 stale serve, byte-identical modulo the marker"
curl -sf "http://$router_addr/metrics" >"$metrics"
metric_nonzero '^baserved_router_stale_serves_total'
metric_nonzero '^baserved_router_retry_budget_exhausted_total'
grep -q "^baserved_router_breaker_state{shard=\"http://$survivor_addr\"} 2" "$metrics" \
    || { echo "dead survivor's breaker not open in metrics" >&2; grep '^baserved_router_breaker_state' "$metrics" >&2; exit 1; }

echo "== fleet: router drains on SIGTERM"
kill -TERM "$router_pid"
status=0
wait "$router_pid" || status=$?
[ "$status" -eq 0 ] || { echo "router exited $status" >&2; cat "$workdir/router.log" >&2; exit 1; }
grep -q "drained, bye" "$workdir/router.log" \
    || { echo "no drain marker in router log" >&2; cat "$workdir/router.log" >&2; exit 1; }

echo "daemon smoke: OK"
