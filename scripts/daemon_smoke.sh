#!/usr/bin/env bash
# Daemon smoke test: build the binaries, serve a small generated graph
# (plus a weighted variant) with baserved, check that CC, BFS and
# weighted SSSP answers over HTTP match the bacc, babfs and basssp
# command-line kernels on the same files — with -autotune on, so the
# adaptive controller's picks are exercised against the same
# equivalence bars — scrape /metrics and fail unless the query-count,
# CC-cache-hit and batch-size-histogram series are present and
# non-zero, and verify the daemon drains cleanly on SIGTERM. Run from
# the repository root; CI runs it as a dedicated job.
set -euo pipefail

workdir=$(mktemp -d)
bindir="$workdir/bin"
addr=127.0.0.1:18421
daemon_pid=""
trap '[ -n "$daemon_pid" ] && kill "$daemon_pid" 2>/dev/null || true; rm -rf "$workdir"' EXIT

echo "== build"
mkdir -p "$bindir"
go build -o "$bindir" ./cmd/...

echo "== generate graphs"
"$bindir/bagen" -kind ba -n 2000 -k 4 -seed 7 -out "$workdir/smoke.metis"
"$bindir/bagen" -kind ba -n 2000 -k 4 -seed 7 -wmax 9 -out "$workdir/wsmoke.metis"

echo "== start daemon"
"$bindir/baserved" -listen "$addr" -graph "smoke=$workdir/smoke.metis" \
    -graph "wsmoke=$workdir/wsmoke.metis" \
    -batch-window 1ms -autotune >"$workdir/baserved.log" 2>&1 &
daemon_pid=$!

for i in $(seq 1 50); do
    if curl -sf "http://$addr/healthz" >/dev/null 2>&1; then
        break
    fi
    if ! kill -0 "$daemon_pid" 2>/dev/null; then
        echo "daemon died during startup:" >&2
        cat "$workdir/baserved.log" >&2
        exit 1
    fi
    sleep 0.2
done
curl -sf "http://$addr/healthz"; echo

echo "== CC equivalence (daemon vs bacc)"
cc_daemon=$(curl -sf -d '{"graph":"smoke","algo":"hybrid"}' "http://$addr/query/cc" \
    | grep -o '"components":[0-9]*' | cut -d: -f2)
cc_direct=$("$bindir/bacc" -in "$workdir/smoke.metis" -algo hybrid \
    | awk '/^components:/{print $2}')
echo "daemon=$cc_daemon direct=$cc_direct"
[ -n "$cc_daemon" ] && [ "$cc_daemon" = "$cc_direct" ] \
    || { echo "CC mismatch" >&2; exit 1; }
# Repeat the identical query: the second answer comes from the epoch
# cache (asserted through /metrics below) and must not change.
cc_cached=$(curl -sf -d '{"graph":"smoke","algo":"hybrid"}' "http://$addr/query/cc" \
    | grep -o '"components":[0-9]*' | cut -d: -f2)
[ "$cc_cached" = "$cc_direct" ] || { echo "cached CC mismatch" >&2; exit 1; }
# The autotuner's pick ("auto", the daemon's default under -autotune)
# must resolve to a concrete kernel with the same component count.
cc_auto=$(curl -sf -d '{"graph":"smoke","algo":"auto"}' "http://$addr/query/cc" \
    | grep -o '"components":[0-9]*' | cut -d: -f2)
echo "daemon(auto)=$cc_auto"
[ -n "$cc_auto" ] && [ "$cc_auto" = "$cc_direct" ] \
    || { echo "autotuned CC mismatch" >&2; exit 1; }

echo "== BFS equivalence (daemon vs babfs)"
bfs_daemon=$(curl -sf -d '{"graph":"smoke","root":0,"algo":"ba"}' "http://$addr/query/bfs" \
    | grep -o '"reached":[0-9]*' | cut -d: -f2)
bfs_direct=$("$bindir/babfs" -in "$workdir/smoke.metis" -root 0 -variant ba \
    | awk '/^reached /{split($2, a, "/"); print a[1]}')
echo "daemon=$bfs_daemon direct=$bfs_direct"
[ -n "$bfs_daemon" ] && [ "$bfs_daemon" = "$bfs_direct" ] \
    || { echo "BFS mismatch" >&2; exit 1; }
bfs_auto=$(curl -sf -d '{"graph":"smoke","root":0,"algo":"auto"}' "http://$addr/query/bfs" \
    | grep -o '"reached":[0-9]*' | cut -d: -f2)
echo "daemon(auto)=$bfs_auto"
[ -n "$bfs_auto" ] && [ "$bfs_auto" = "$bfs_direct" ] \
    || { echo "autotuned BFS mismatch" >&2; exit 1; }

echo "== multi-source BFS equivalence (daemon ms vs babfs)"
ms_daemon=$(curl -sf -d '{"graph":"smoke","root":0,"algo":"ms"}' "http://$addr/query/bfs" \
    | grep -o '"reached":[0-9]*' | cut -d: -f2)
echo "daemon(ms)=$ms_daemon direct=$bfs_direct"
[ -n "$ms_daemon" ] && [ "$ms_daemon" = "$bfs_direct" ] \
    || { echo "multi-source BFS mismatch" >&2; exit 1; }

echo "== weighted SSSP equivalence (daemon vs basssp, real edge weights)"
# /graphs must report the weighted entry as weighted.
curl -sf "http://$addr/graphs" | grep -q '"name":"wsmoke"[^}]*"weighted":true' \
    || { echo "wsmoke not served as weighted" >&2; exit 1; }
sssp_daemon=$(curl -sf -d '{"graph":"wsmoke","root":0,"algo":"par-hybrid"}' "http://$addr/query/sssp" \
    | grep -o '"sum":[0-9]*' | cut -d: -f2)
sssp_direct=$("$bindir/basssp" -in "$workdir/wsmoke.metis" -root 0 -algo par-hybrid \
    | awk '/^sum /{print $2}')
sssp_seq=$("$bindir/basssp" -in "$workdir/wsmoke.metis" -root 0 -algo ba \
    | awk '/^sum /{print $2}')
echo "daemon=$sssp_daemon direct=$sssp_direct sequential=$sssp_seq"
[ -n "$sssp_daemon" ] && [ "$sssp_daemon" = "$sssp_direct" ] && [ "$sssp_daemon" = "$sssp_seq" ] \
    || { echo "weighted SSSP mismatch" >&2; exit 1; }
# Unit-weight sanity: on the unweighted graph the SSSP sum must differ
# from the weighted one (weights actually reached the kernels).
sssp_unit=$(curl -sf -d '{"graph":"smoke","root":0,"algo":"par-hybrid"}' "http://$addr/query/sssp" \
    | grep -o '"sum":[0-9]*' | cut -d: -f2)
echo "unit-weight sum=$sssp_unit"
[ -n "$sssp_unit" ] && [ "$sssp_unit" != "$sssp_daemon" ] \
    || { echo "weighted and unit-weight sums identical; weights ignored?" >&2; exit 1; }

echo "== metrics exposition"
metrics="$workdir/metrics.txt"
curl -sf "http://$addr/metrics" >"$metrics"
# Every sample line must match the exposition grammar.
bad=$(grep -vE '^(#.*|[A-Za-z_][A-Za-z0-9_]*(\{[^{}]*\})? [0-9eE+.InNa-]+)$' "$metrics" || true)
[ -z "$bad" ] || { echo "unparseable /metrics lines:" >&2; echo "$bad" >&2; exit 1; }
# A named series must be present with a value > 0.
metric_nonzero() {
    local pattern=$1
    local v
    v=$(grep -E "$pattern" "$metrics" | awk '{s+=$NF} END {printf "%d", s}')
    if [ -z "$v" ] || [ "$v" -le 0 ]; then
        echo "metrics series $pattern missing or zero" >&2
        grep -E "$pattern" "$metrics" >&2 || true
        exit 1
    fi
    echo "  $pattern = $v"
}
metric_nonzero '^baserved_queries_total\{kind="cc",status="ok"\}'
metric_nonzero '^baserved_queries_total\{kind="bfs",status="ok"\}'
metric_nonzero '^baserved_queries_total\{kind="sssp",status="ok"\}'
metric_nonzero '^baserved_cc_cache_events_total\{event="hit"\}'
metric_nonzero '^baserved_cc_cache_events_total\{event="miss"\}'
metric_nonzero '^baserved_batch_size_count'
metric_nonzero '^baserved_kernel_passes_total'
metric_nonzero '^baserved_autotune_decisions_total'

echo "== graceful shutdown on SIGTERM"
kill -TERM "$daemon_pid"
status=0
wait "$daemon_pid" || status=$?
[ "$status" -eq 0 ] || { echo "daemon exited $status" >&2; cat "$workdir/baserved.log" >&2; exit 1; }
grep -q "drained, bye" "$workdir/baserved.log" \
    || { echo "no drain marker in log" >&2; cat "$workdir/baserved.log" >&2; exit 1; }

echo "daemon smoke: OK"
