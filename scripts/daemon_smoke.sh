#!/usr/bin/env bash
# Daemon smoke test: build the binaries, serve a small generated graph
# with baserved, check that CC and BFS answers over HTTP match the bacc
# and babfs command-line kernels on the same file, and verify the
# daemon drains cleanly on SIGTERM. Run from the repository root; CI
# runs it as a dedicated job.
set -euo pipefail

workdir=$(mktemp -d)
bindir="$workdir/bin"
addr=127.0.0.1:18421
daemon_pid=""
trap '[ -n "$daemon_pid" ] && kill "$daemon_pid" 2>/dev/null || true; rm -rf "$workdir"' EXIT

echo "== build"
mkdir -p "$bindir"
go build -o "$bindir" ./cmd/...

echo "== generate graph"
"$bindir/bagen" -kind ba -n 2000 -k 4 -seed 7 -out "$workdir/smoke.metis"

echo "== start daemon"
"$bindir/baserved" -listen "$addr" -graph "smoke=$workdir/smoke.metis" \
    -batch-window 1ms >"$workdir/baserved.log" 2>&1 &
daemon_pid=$!

for i in $(seq 1 50); do
    if curl -sf "http://$addr/healthz" >/dev/null 2>&1; then
        break
    fi
    if ! kill -0 "$daemon_pid" 2>/dev/null; then
        echo "daemon died during startup:" >&2
        cat "$workdir/baserved.log" >&2
        exit 1
    fi
    sleep 0.2
done
curl -sf "http://$addr/healthz"; echo

echo "== CC equivalence (daemon vs bacc)"
cc_daemon=$(curl -sf -d '{"graph":"smoke","algo":"hybrid"}' "http://$addr/query/cc" \
    | grep -o '"components":[0-9]*' | cut -d: -f2)
cc_direct=$("$bindir/bacc" -in "$workdir/smoke.metis" -algo hybrid \
    | awk '/^components:/{print $2}')
echo "daemon=$cc_daemon direct=$cc_direct"
[ -n "$cc_daemon" ] && [ "$cc_daemon" = "$cc_direct" ] \
    || { echo "CC mismatch" >&2; exit 1; }

echo "== BFS equivalence (daemon vs babfs)"
bfs_daemon=$(curl -sf -d '{"graph":"smoke","root":0,"algo":"ba"}' "http://$addr/query/bfs" \
    | grep -o '"reached":[0-9]*' | cut -d: -f2)
bfs_direct=$("$bindir/babfs" -in "$workdir/smoke.metis" -root 0 -variant ba \
    | awk '/^reached /{split($2, a, "/"); print a[1]}')
echo "daemon=$bfs_daemon direct=$bfs_direct"
[ -n "$bfs_daemon" ] && [ "$bfs_daemon" = "$bfs_direct" ] \
    || { echo "BFS mismatch" >&2; exit 1; }

echo "== graceful shutdown on SIGTERM"
kill -TERM "$daemon_pid"
status=0
wait "$daemon_pid" || status=$?
[ "$status" -eq 0 ] || { echo "daemon exited $status" >&2; cat "$workdir/baserved.log" >&2; exit 1; }
grep -q "drained, bye" "$workdir/baserved.log" \
    || { echo "no drain marker in log" >&2; cat "$workdir/baserved.log" >&2; exit 1; }

echo "daemon smoke: OK"
