// Package scripts tests the CI helper scripts against checked-in
// fixture streams, so their extraction and gating logic is pinned by
// `go test ./...` instead of only surfacing inside CI jobs.
package scripts

import (
	"os/exec"
	"strings"
	"testing"
)

// runCompare executes bench_compare.sh with args and returns its exit
// code plus combined output. Skips when bash is unavailable.
func runCompare(t *testing.T, args ...string) (int, string) {
	t.Helper()
	if _, err := exec.LookPath("bash"); err != nil {
		t.Skip("bash not available")
	}
	cmd := exec.Command("bash", append([]string{"bench_compare.sh"}, args...)...)
	out, err := cmd.CombinedOutput()
	code := 0
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("run bench_compare.sh %v: %v\n%s", args, err, out)
		}
		code = ee.ExitCode()
	}
	return code, string(out)
}

// TestBenchCompareExtraction: the report path parses the test2json
// fixture streams — names from the Test field, ns/op from the output
// text — and stays exit-0 however the numbers moved.
func TestBenchCompareExtraction(t *testing.T) {
	code, out := runCompare(t, "testdata/bench_old.json", "testdata/bench_new.json")
	if code != 0 {
		t.Fatalf("report-only compare exited %d:\n%s", code, out)
	}
	for _, want := range []string{
		"BenchmarkFoo", "1000", "1100", "10.0%", // +10% regression, reported not gated
		"BenchmarkBar", "900", "-10.0%",
		"BenchmarkNew", "new",
		"BenchmarkGone", "gone",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "PASS") || strings.Contains(out, "queries/s") {
		t.Fatalf("non-ns/op output leaked into the report:\n%s", out)
	}
}

// TestBenchCompareGate: --gate turns regressions beyond the threshold
// into a non-zero exit that names the offender, leaves improvements
// and sub-threshold noise alone, and stays report-only with no
// baseline.
func TestBenchCompareGate(t *testing.T) {
	// Foo regressed +10%: a 5% gate trips and names it.
	code, out := runCompare(t, "--gate", "5", "testdata/bench_old.json", "testdata/bench_new.json")
	if code != 1 {
		t.Fatalf("gate 5 exited %d, want 1:\n%s", code, out)
	}
	if !strings.Contains(out, "regressed beyond +5%") || !strings.Contains(out, "BenchmarkFoo +10.0%") {
		t.Fatalf("gate failure does not name the regression:\n%s", out)
	}
	if strings.Contains(out, "BenchmarkBar +") {
		t.Fatalf("improved benchmark flagged as regressed:\n%s", out)
	}

	// A 200% gate tolerates the +10%.
	if code, out := runCompare(t, "--gate", "200", "testdata/bench_old.json", "testdata/bench_new.json"); code != 0 {
		t.Fatalf("gate 200 exited %d:\n%s", code, out)
	}

	// No baseline: report-only even under --gate.
	code, out = runCompare(t, "--gate", "5", "testdata/no_such_baseline.json", "testdata/bench_new.json")
	if code != 0 {
		t.Fatalf("missing-baseline gate exited %d:\n%s", code, out)
	}
	if !strings.Contains(out, "no baseline") {
		t.Fatalf("missing-baseline path did not announce itself:\n%s", out)
	}

	// A non-numeric gate is a usage error, not a silent report.
	if code, out := runCompare(t, "--gate", "fast", "testdata/bench_old.json", "testdata/bench_new.json"); code != 2 {
		t.Fatalf("bad gate value exited %d, want 2:\n%s", code, out)
	}
}
