package bagraph

import (
	"bytes"
	"strings"
	"testing"
)

func ring(t *testing.T, n int) *Graph {
	t.Helper()
	edges := make([]Edge, n)
	for i := 0; i < n; i++ {
		edges[i] = Edge{U: uint32(i), V: uint32((i + 1) % n)}
	}
	g, err := NewGraph(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewGraphAndDigraph(t *testing.T) {
	g, err := NewGraph(3, []Edge{{U: 0, V: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if g.Directed() || g.NumEdges() != 1 {
		t.Fatal("NewGraph produced wrong graph")
	}
	d, err := NewDigraph(3, []Edge{{U: 0, V: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if !d.Directed() {
		t.Fatal("NewDigraph not directed")
	}
	if _, err := NewGraph(1, []Edge{{U: 0, V: 5}}); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
}

func TestConnectedComponentsAllAlgorithms(t *testing.T) {
	g := ring(t, 40)
	var ref []uint32
	for _, alg := range []CCAlgorithm{CCBranchBased, CCBranchAvoiding, CCHybrid, CCUnionFind} {
		labels, err := ConnectedComponents(g, alg)
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if ComponentCount(labels) != 1 {
			t.Fatalf("%v: ring has %d components", alg, ComponentCount(labels))
		}
		if ref == nil {
			ref = labels
			continue
		}
		for v := range ref {
			if labels[v] != ref[v] {
				t.Fatalf("%v: labels differ from reference at %d", alg, v)
			}
		}
	}
	if _, err := ConnectedComponents(g, CCAlgorithm(99)); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestConnectedComponentsParallelFacade(t *testing.T) {
	g := ring(t, 200)
	ref, err := ConnectedComponents(g, CCBranchBased)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []CCAlgorithm{CCBranchBased, CCBranchAvoiding, CCHybrid} {
		for _, workers := range []int{0, 1, 4} {
			labels, err := ConnectedComponentsParallel(g, alg, workers)
			if err != nil {
				t.Fatalf("%v workers=%d: %v", alg, workers, err)
			}
			for v := range ref {
				if labels[v] != ref[v] {
					t.Fatalf("%v workers=%d: labels differ at %d", alg, workers, v)
				}
			}
		}
	}
	if _, err := ConnectedComponentsParallel(g, CCUnionFind, 2); err == nil {
		t.Fatal("union-find accepted by parallel facade")
	}
}

func TestShortestHopsParallelFacade(t *testing.T) {
	g := ring(t, 200)
	ref, err := ShortestHops(g, 7, BFSBranchBased)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 1, 4} {
		dist, err := ShortestHopsParallel(g, 7, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for v := range ref {
			if dist[v] != ref[v] {
				t.Fatalf("workers=%d: distances differ at %d", workers, v)
			}
		}
	}
	if _, err := ShortestHopsParallel(g, 999, 2); err == nil {
		t.Fatal("out-of-range root accepted")
	}
}

func TestCCAlgorithmStrings(t *testing.T) {
	for _, alg := range []CCAlgorithm{CCBranchBased, CCBranchAvoiding, CCHybrid, CCUnionFind} {
		if strings.HasPrefix(alg.String(), "CCAlgorithm(") {
			t.Fatalf("missing name for %d", alg)
		}
	}
}

func TestShortestHopsVariants(t *testing.T) {
	g := ring(t, 30)
	var ref []uint32
	for _, v := range []BFSVariant{BFSBranchBased, BFSBranchAvoiding, BFSDirectionOptimizing} {
		dist, err := ShortestHops(g, 3, v)
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if dist[3] != 0 || dist[18] != 15 {
			t.Fatalf("%v: distances wrong: d[3]=%d d[18]=%d", v, dist[3], dist[18])
		}
		if ref == nil {
			ref = dist
			continue
		}
		for i := range ref {
			if dist[i] != ref[i] {
				t.Fatalf("%v: distance mismatch at %d", v, i)
			}
		}
	}
	if _, err := ShortestHops(g, 99, BFSBranchBased); err == nil {
		t.Fatal("out-of-range root accepted")
	}
	if _, err := ShortestHops(g, 0, BFSVariant(9)); err == nil {
		t.Fatal("unknown variant accepted")
	}
}

func TestUnreachedSentinel(t *testing.T) {
	g, _ := NewGraph(4, []Edge{{U: 0, V: 1}, {U: 2, V: 3}})
	dist, err := ShortestHops(g, 0, BFSBranchAvoiding)
	if err != nil {
		t.Fatal(err)
	}
	if dist[2] != Unreached || dist[3] != Unreached {
		t.Fatal("other component not marked Unreached")
	}
}

func TestPlatformsCatalog(t *testing.T) {
	ps := Platforms()
	if len(ps) != 7 {
		t.Fatalf("Platforms() = %v", ps)
	}
}

func TestProfileSVReproducesHeadline(t *testing.T) {
	g, err := CorpusGraph("cond-mat-2005", 0.02, 7)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := ProfileSV(g, "Haswell", false)
	if err != nil {
		t.Fatal(err)
	}
	ba, err := ProfileSV(g, "Haswell", true)
	if err != nil {
		t.Fatal(err)
	}
	if len(bb.PerIteration) != len(ba.PerIteration) {
		t.Fatal("pass counts differ")
	}
	if bb.TotalMispredictions() <= ba.TotalMispredictions() {
		t.Fatal("branch-based should mispredict more")
	}
	if bb.TotalSeconds() <= ba.TotalSeconds() {
		t.Fatal("branch-avoiding SV should win on Haswell")
	}
	if !ba.BranchAvoiding || bb.BranchAvoiding {
		t.Fatal("BranchAvoiding flag wrong")
	}
	if _, err := ProfileSV(g, "M1", false); err == nil {
		t.Fatal("unknown platform accepted")
	}
}

func TestProfileBFSStoreBlowup(t *testing.T) {
	g, err := CorpusGraph("ldoor", 0.002, 7)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := ProfileBFS(g, 0, "Bonnell", false)
	if err != nil {
		t.Fatal(err)
	}
	ba, err := ProfileBFS(g, 0, "Bonnell", true)
	if err != nil {
		t.Fatal(err)
	}
	var sBB, sBA uint64
	for _, it := range bb.PerIteration {
		sBB += it.Stores
	}
	for _, it := range ba.PerIteration {
		sBA += it.Stores
	}
	if sBA < 10*sBB {
		t.Fatalf("BA stores %d not an order of magnitude above BB %d", sBA, sBB)
	}
	// On Bonnell (expensive stores) branch-avoiding BFS must lose.
	if ba.TotalSeconds() <= bb.TotalSeconds() {
		t.Fatal("branch-avoiding BFS should lose on Bonnell")
	}
	if _, err := ProfileBFS(g, uint32(g.NumVertices()), "Bonnell", true); err == nil {
		t.Fatal("out-of-range root accepted")
	}
	if _, err := ProfileBFS(g, 0, "M1", false); err == nil {
		t.Fatal("unknown platform accepted")
	}
}

func TestCorpusGraphErrors(t *testing.T) {
	if _, err := CorpusGraph("karate", 0.01, 1); err == nil {
		t.Fatal("unknown corpus name accepted")
	}
	if _, err := CorpusGraph("auto", 2.0, 1); err == nil {
		t.Fatal("bad scale accepted")
	}
	g, err := CorpusGraph("coAuthorsDBLP", 0.005, 1)
	if err != nil || g.NumVertices() == 0 {
		t.Fatalf("corpus generation failed: %v", err)
	}
	if len(CorpusNames()) != 5 {
		t.Fatal("corpus roster wrong")
	}
}

func TestMETISRoundTripViaFacade(t *testing.T) {
	g := ring(t, 12)
	var buf bytes.Buffer
	if err := WriteMETIS(&buf, g); err != nil {
		t.Fatal(err)
	}
	h, err := ReadMETIS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumVertices() != 12 || h.NumEdges() != 12 {
		t.Fatal("round trip changed graph")
	}
}

func TestRunExperimentFacade(t *testing.T) {
	var buf bytes.Buffer
	if err := RunExperiment("table1", &buf, ExperimentOptions{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Haswell") {
		t.Fatal("table1 output missing systems")
	}
	if err := RunExperiment("fig99", &buf, ExperimentOptions{}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if len(Experiments()) < 15 {
		t.Fatalf("Experiments() = %v", Experiments())
	}
}

// TestFacadeErrorPaths pins the facade's rejection behaviour: source
// validation (checkRoot) on every traversal entry point, unknown
// enum values, and the parallel facade's union-find rejection.
func TestFacadeErrorPaths(t *testing.T) {
	g := ring(t, 8)

	if _, err := ShortestHops(g, 8, BFSBranchBased); err == nil {
		t.Fatal("out-of-range root accepted by ShortestHops")
	}
	if _, err := ShortestHops(g, 0, BFSVariant(99)); err == nil {
		t.Fatal("unknown BFS variant accepted")
	}
	if _, err := ShortestHopsParallel(g, 100, 2); err == nil {
		t.Fatal("out-of-range root accepted by ShortestHopsParallel")
	}
	if _, err := ProfileBFS(g, 8, "Haswell", false); err == nil {
		t.Fatal("out-of-range root accepted by ProfileBFS")
	}
	if _, err := ConnectedComponents(g, CCAlgorithm(99)); err == nil {
		t.Fatal("unknown CC algorithm accepted")
	}
	if _, err := ConnectedComponentsParallel(g, CCUnionFind, 2); err == nil {
		t.Fatal("union-find accepted by the parallel facade")
	}

	// A 0-vertex graph has no valid root: every root — including 0 —
	// is out of range. (Regression: checkRoot used to carry a
	// `NumVertices() > 0 &&` guard that waved any root through on the
	// empty graph.)
	empty, err := NewGraph(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ShortestHops(empty, 3, BFSBranchAvoiding); err == nil {
		t.Fatal("out-of-range root accepted on the 0-vertex graph")
	}
	if _, err := ShortestHops(empty, 0, BFSBranchAvoiding); err == nil {
		t.Fatal("root 0 accepted on the 0-vertex graph")
	}
}

// TestWorkerPoolFacade exercises the resident-pool facade: results
// match the one-shot parallel calls, caller buffers are reused, and
// the error paths mirror the one-shot facade's.
func TestWorkerPoolFacade(t *testing.T) {
	g := ring(t, 64)
	pool := NewWorkerPool(2)
	defer pool.Close()
	if pool.Workers() != 2 {
		t.Fatalf("Workers() = %d", pool.Workers())
	}

	want, err := ConnectedComponentsParallel(g, CCHybrid, 2)
	if err != nil {
		t.Fatal(err)
	}
	labels := make([]uint32, 64)
	scratch := make([]uint32, 64)
	got, err := pool.ConnectedComponents(g, CCHybrid, labels, scratch)
	if err != nil {
		t.Fatal(err)
	}
	if &got[0] != &labels[0] && &got[0] != &scratch[0] {
		t.Fatal("result does not alias a caller buffer")
	}
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("labels[%d] = %d, want %d", v, got[v], want[v])
		}
	}

	wantDist, err := ShortestHopsParallel(g, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]uint32, 64)
	gotDist, err := pool.ShortestHops(g, 5, buf)
	if err != nil {
		t.Fatal(err)
	}
	if &gotDist[0] != &buf[0] {
		t.Fatal("distances do not alias the caller buffer")
	}
	for v := range wantDist {
		if gotDist[v] != wantDist[v] {
			t.Fatalf("dist[%d] = %d, want %d", v, gotDist[v], wantDist[v])
		}
	}

	if _, err := pool.ConnectedComponents(g, CCUnionFind, nil, nil); err == nil {
		t.Fatal("union-find accepted by the pool facade")
	}
	if _, err := pool.ShortestHops(g, 64, nil); err == nil {
		t.Fatal("out-of-range root accepted by the pool facade")
	}
}
