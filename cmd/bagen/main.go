// Command bagen generates synthetic graphs and writes them in METIS
// (DIMACS-10) format.
//
// Usage:
//
//	bagen -kind rmat -scale 14 -edgefactor 8 -out rmat14.graph
//	bagen -kind ba -n 100000 -k 4 -out collab.graph
//	bagen -kind grid3d -n 64000 -radius 1 -out mesh.graph
//	bagen -kind corpus -name ldoor -corpusscale 0.05 -out ldoor-small.graph
//	bagen -kind ba -n 20000 -wmax 9 -out weighted.graph
//	bagen -kind rmat -scale 14 -shuffle -out rmat14-shuffled.graph
//
// Every generator is deterministic given -seed. -shuffle randomly
// permutes the vertex ids before writing (also seed-deterministic) —
// the adversarial no-locality layout for exercising -relabel and the
// memory-layout benchmarks. A positive -wmax
// attaches deterministic per-edge weights in [1, wmax] (hashed from the
// endpoints and the seed, so symmetric and reproducible) and writes the
// edge-weighted METIS format the weighted SSSP kernels consume.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"bagraph"
	"bagraph/internal/gen"
	"bagraph/internal/graph"
	"bagraph/internal/metis"
	"bagraph/internal/relabel"
	"bagraph/internal/xrand"
)

func main() {
	kind := flag.String("kind", "rmat", "generator: rmat | ba | gnm | ws | grid2d | grid3d | community | corpus")
	out := flag.String("out", "", "output file (default: stdout)")
	seed := flag.Uint64("seed", 42, "generator seed")

	n := flag.Int("n", 1024, "vertex count (ba, gnm, ws, grid2d, grid3d, community)")
	m := flag.Int64("m", 4096, "edge count (gnm)")
	k := flag.Int("k", 4, "attachment/neighbor count (ba, ws)")
	beta := flag.Float64("beta", 0.1, "rewiring probability (ws)")
	scale := flag.Int("scale", 10, "log2 vertex count (rmat)")
	edgeFactor := flag.Int("edgefactor", 8, "edges per vertex (rmat)")
	radius := flag.Int("radius", 1, "box stencil radius (grid3d)")
	diag := flag.Bool("diag", false, "include diagonals (grid2d)")
	communities := flag.Int("communities", 16, "community count (community)")
	intraP := flag.Float64("intrap", 0.3, "intra-community edge probability (community)")
	name := flag.String("name", "cond-mat-2005", "corpus dataset name (corpus)")
	corpusScale := flag.Float64("corpusscale", 0.01, "corpus scale in (0,1] (corpus)")
	wmax := flag.Uint("wmax", 0, "attach per-edge weights in [1, wmax] and write weighted METIS (0 = unweighted)")
	shuffle := flag.Bool("shuffle", false,
		"randomly permute vertex ids before writing (deterministic from -seed); adversarial input for layout benchmarks")
	flag.Parse()

	g, err := build(*kind, params{
		n: *n, m: *m, k: *k, beta: *beta, scale: *scale, edgeFactor: *edgeFactor,
		radius: *radius, diag: *diag, communities: *communities, intraP: *intraP,
		name: *name, corpusScale: *corpusScale, seed: *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "bagen:", err)
		os.Exit(1)
	}
	if *shuffle {
		// Shuffle before weight attachment: -wmax weights are hashed
		// from the ids as written, so the output is fully determined by
		// the flags either way.
		g, err = g.Permute(relabel.Shuffle(g.NumVertices(), *seed))
		if err != nil {
			fmt.Fprintln(os.Stderr, "bagen:", err)
			os.Exit(1)
		}
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bagen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if *wmax > 0 {
		if *wmax > math.MaxUint32 {
			fmt.Fprintf(os.Stderr, "bagen: -wmax %d exceeds the 32-bit weight range\n", *wmax)
			os.Exit(1)
		}
		wg, err := graph.AttachWeights(g, xrand.SymmetricWeights(uint32(*wmax), *seed))
		if err != nil {
			fmt.Fprintln(os.Stderr, "bagen:", err)
			os.Exit(1)
		}
		if err := metis.WriteWeighted(w, wg); err != nil {
			fmt.Fprintln(os.Stderr, "bagen:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "bagen: wrote %s (weights 1..%d)\n", g, *wmax)
		return
	}
	if err := metis.Write(w, g); err != nil {
		fmt.Fprintln(os.Stderr, "bagen:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "bagen: wrote %s\n", g)
}

type params struct {
	n           int
	m           int64
	k           int
	beta        float64
	scale       int
	edgeFactor  int
	radius      int
	diag        bool
	communities int
	intraP      float64
	name        string
	corpusScale float64
	seed        uint64
}

func build(kind string, p params) (*graph.Graph, error) {
	switch kind {
	case "rmat":
		return gen.RMAT(p.scale, p.edgeFactor, gen.DefaultRMAT, p.seed), nil
	case "ba":
		return gen.BarabasiAlbert(p.n, p.k, p.seed), nil
	case "gnm":
		return gen.GNM(p.n, p.m, p.seed), nil
	case "ws":
		return gen.WattsStrogatz(p.n, p.k, p.beta, p.seed), nil
	case "grid2d":
		side := int(math.Round(math.Sqrt(float64(p.n))))
		return gen.Grid2D(side, side, p.diag), nil
	case "grid3d":
		side := int(math.Round(math.Cbrt(float64(p.n))))
		return gen.Grid3D(side, side, side, p.radius), nil
	case "community":
		cs := p.n / p.communities
		if cs < 2 {
			return nil, fmt.Errorf("community size %d too small", cs)
		}
		return gen.Community(p.communities, cs, p.intraP, p.n/10, p.seed), nil
	case "corpus":
		return bagraph.CorpusGraph(p.name, p.corpusScale, p.seed)
	default:
		return nil, fmt.Errorf("unknown generator %q", kind)
	}
}
