// Command baexp regenerates the tables and figures of "Branch-Avoiding
// Graph Algorithms" (SPAA 2015) on the simulated machine models.
//
// Usage:
//
//	baexp -experiment all
//	baexp -experiment fig3 -scale 0.02 -platforms Haswell,Bonnell
//	baexp -experiment fig10 -graphs coAuthorsDBLP,cond-mat-2005
//	baexp -list
//
// Scale 1.0 approximates the paper's graph sizes; the default 0.01 keeps
// a full sweep to seconds. Output is plain text; each figure block
// mirrors one exhibit of the paper's evaluation section.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"bagraph"
)

func main() {
	experiment := flag.String("experiment", "all", "exhibit to regenerate (see -list)")
	scale := flag.Float64("scale", 0.01, "corpus scale in (0, 1]; 1 approximates the paper's sizes")
	seed := flag.Uint64("seed", 42, "generator seed")
	graphs := flag.String("graphs", "", "comma-separated corpus subset (default: all five)")
	platforms := flag.String("platforms", "", "comma-separated platform subset (default: all seven)")
	list := flag.Bool("list", false, "list experiments, graphs and platforms, then exit")
	flag.Parse()

	if *list {
		fmt.Println("experiments:", strings.Join(bagraph.Experiments(), " "))
		fmt.Println("graphs:     ", strings.Join(bagraph.CorpusNames(), " "))
		fmt.Println("platforms:  ", strings.Join(bagraph.Platforms(), " "))
		return
	}

	opt := bagraph.ExperimentOptions{Scale: *scale, Seed: *seed}
	if *graphs != "" {
		opt.Graphs = strings.Split(*graphs, ",")
	}
	if *platforms != "" {
		opt.Platforms = strings.Split(*platforms, ",")
	}
	if err := bagraph.RunExperiment(*experiment, os.Stdout, opt); err != nil {
		fmt.Fprintln(os.Stderr, "baexp:", err)
		os.Exit(1)
	}
}
