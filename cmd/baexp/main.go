// Command baexp regenerates the tables and figures of "Branch-Avoiding
// Graph Algorithms" (SPAA 2015) on the simulated machine models.
//
// Usage:
//
//	baexp -experiment all
//	baexp -experiment fig3 -scale 0.02 -platforms Haswell,Bonnell
//	baexp -experiment fig10 -graphs coAuthorsDBLP,cond-mat-2005
//	baexp -list
//
// Scale 1.0 approximates the paper's graph sizes; the default 0.01 keeps
// a full sweep to seconds. Output is plain text; each figure block
// mirrors one exhibit of the paper's evaluation section.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"bagraph"
)

// errTrackWriter records the first write failure. The experiment
// runners print with fmt.Fprintf and drop its error, so a broken pipe
// or full disk would otherwise exit 0 with truncated output; the
// tracker surfaces the failure in the exit code.
type errTrackWriter struct {
	w   io.Writer
	err error
}

func (t *errTrackWriter) Write(p []byte) (int, error) {
	if t.err != nil {
		return 0, t.err
	}
	n, err := t.w.Write(p)
	if err != nil {
		t.err = err
	}
	return n, err
}

func main() {
	experiment := flag.String("experiment", "all", "exhibit to regenerate (see -list)")
	scale := flag.Float64("scale", 0.01, "corpus scale in (0, 1]; 1 approximates the paper's sizes")
	seed := flag.Uint64("seed", 42, "generator seed")
	graphs := flag.String("graphs", "", "comma-separated corpus subset (default: all five)")
	platforms := flag.String("platforms", "", "comma-separated platform subset (default: all seven)")
	workers := flag.Int("workers", 0, "parallel sweep cells (0 = GOMAXPROCS); output is identical at any width")
	list := flag.Bool("list", false, "list experiments, graphs and platforms, then exit")
	flag.Parse()

	if *list {
		fmt.Println("experiments:", strings.Join(bagraph.Experiments(), " "))
		fmt.Println("graphs:     ", strings.Join(bagraph.CorpusNames(), " "))
		fmt.Println("platforms:  ", strings.Join(bagraph.Platforms(), " "))
		return
	}

	opt := bagraph.ExperimentOptions{Scale: *scale, Seed: *seed, Workers: *workers}
	if *graphs != "" {
		opt.Graphs = strings.Split(*graphs, ",")
	}
	if *platforms != "" {
		opt.Platforms = strings.Split(*platforms, ",")
	}
	tracked := &errTrackWriter{w: os.Stdout}
	out := bufio.NewWriter(tracked)
	if err := bagraph.RunExperiment(*experiment, out, opt); err != nil {
		fmt.Fprintln(os.Stderr, "baexp:", err)
		os.Exit(1)
	}
	if err := out.Flush(); err != nil || tracked.err != nil {
		if err == nil {
			err = tracked.err
		}
		fmt.Fprintln(os.Stderr, "baexp: writing output:", err)
		os.Exit(1)
	}
}
