// Command babfs runs breadth-first search over a METIS-format graph with
// a selectable kernel and prints the level structure.
//
// Usage:
//
//	babfs -in graph.metis -root 0 -variant ba
//	bagen -kind grid3d -n 30000 | babfs -variant bb
//	bagen -kind rmat -scale 17 | babfs -variant par-do -workers 8
//	babfs -in graph.metis -variant ms -roots 0,17,96
//
// The ms variant runs all -roots sources through one batch-aware
// multi-source kernel: shared bottom-up mask sweeps advance up to 64
// searches per graph pass (the kernel the daemon's batched BFS
// dispatch uses).
//
// Kernels run through the unified bagraph.Run API; SIGINT/SIGTERM
// cancels the context, and the kernel stops at its next level barrier
// with a partial-progress report.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"bagraph"
	"bagraph/internal/algoreq"
	"bagraph/internal/bfs"
)

func main() {
	in := flag.String("in", "", "input METIS file (default: stdin)")
	root := flag.Uint("root", 0, "source vertex")
	roots := flag.String("roots", "", "comma-separated source list for -variant ms (default: -root)")
	variant := flag.String("variant", "ba", "kernel: bb | ba | dir-opt | par-do | ms")
	workers := flag.Int("workers", 0, "workers for par-do/ms (0 = GOMAXPROCS)")
	schedule := flag.String("schedule", "static", "chunk schedule for par-do/ms: static | steal")
	relabelOn := flag.Bool("relabel", false, "run on a degree-ordered copy (results stay in original ids)")
	flag.Parse()

	sched, err := bagraph.ParseSchedule(*schedule)
	if err != nil {
		fail(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		r = f
	}
	g, err := bagraph.ReadMETIS(r)
	if err != nil {
		fail(err)
	}
	var tgt bagraph.Target = g
	if *relabelOn {
		rl, err := bagraph.RelabelDegree(g)
		if err != nil {
			fail(err)
		}
		tgt = rl
	}
	if *variant == "ms" {
		runMultiSource(ctx, g, tgt, *roots, uint32(*root), *workers, sched)
		return
	}
	if *roots != "" {
		fail(fmt.Errorf("-roots is only meaningful with -variant ms"))
	}
	req, err := algoreq.BFS(*variant, uint32(*root))
	if err != nil {
		fail(err)
	}
	req.Workers = *workers
	req.Schedule = sched
	fmt.Printf("graph: %s, root %d\n", g, *root)

	res, err := bagraph.Run(ctx, tgt, req)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			if res != nil {
				fmt.Fprintf(os.Stderr, "babfs: interrupted after %d completed level(s) (%v, %d vertices reached); distances are partial\n",
					res.Stats.Passes, res.Stats.Total(), res.Stats.Reached)
			} else {
				fmt.Fprintln(os.Stderr, "babfs: interrupted before the kernel started")
			}
			os.Exit(130)
		}
		fail(err)
	}
	dist, st := res.Hops, res.Stats

	if err := bfs.Verify(g, uint32(*root), dist); err != nil {
		fail(fmt.Errorf("result failed verification: %w", err))
	}

	fmt.Printf("reached %d/%d vertices in %d levels (%d top-down, %d bottom-up, total %v)\n",
		st.Reached, g.NumVertices(), st.Passes, st.TopDownLevels, st.BottomUpLevels, st.Total())
	fmt.Printf("stores: %d distance, %d queue\n", st.DistStores, st.QueueStores)
	if st.Chunks > 0 {
		fmt.Printf("schedule: %d chunks, %d stolen (%d steal passes)\n",
			st.Chunks, st.Steals, st.StealPasses)
	}
	for i, size := range st.LevelSizes {
		fmt.Printf("  level %3d: %8d vertices  %10v\n", i, size, st.PassDurations[i])
	}
}

// runMultiSource parses the root list, runs the batch-aware kernel
// through the facade, verifies every member against the BFS
// invariants, and prints the per-root reach alongside the shared-sweep
// economics.
func runMultiSource(ctx context.Context, g *bagraph.Graph, tgt bagraph.Target, rootsFlag string, root uint32, workers int, sched bagraph.Schedule) {
	var srcs []uint32
	if rootsFlag == "" {
		srcs = []uint32{root}
	} else {
		for _, tok := range strings.Split(rootsFlag, ",") {
			v, err := strconv.ParseUint(strings.TrimSpace(tok), 10, 32)
			if err != nil {
				fail(fmt.Errorf("bad root %q: %w", tok, err))
			}
			srcs = append(srcs, uint32(v))
		}
	}
	fmt.Printf("graph: %s, %d sources\n", g, len(srcs))

	res, err := bagraph.Run(ctx, tgt, bagraph.Request{
		Kind: bagraph.KindBFSBatch, Roots: srcs, Workers: workers, Schedule: sched,
	})
	if err != nil {
		if errors.Is(err, context.Canceled) {
			if res != nil {
				fmt.Fprintf(os.Stderr, "babfs: interrupted after %d shared sweep(s) over %d wave(s) (%v); distances are partial\n",
					res.Stats.Passes, res.Stats.Waves, res.Stats.Total())
			} else {
				fmt.Fprintln(os.Stderr, "babfs: interrupted before the kernel started")
			}
			os.Exit(130)
		}
		fail(err)
	}
	dists, st := res.HopsBatch, res.Stats
	for i, s := range srcs {
		if err := bfs.Verify(g, s, dists[i]); err != nil {
			fail(fmt.Errorf("root %d failed verification: %w", s, err))
		}
		reached := 0
		for _, d := range dists[i] {
			if d != bfs.Inf {
				reached++
			}
		}
		fmt.Printf("  root %6d: reached %d/%d\n", s, reached, g.NumVertices())
	}
	fmt.Printf("reached %d source-vertex pairs in %d shared sweeps over %d waves (total %v)\n",
		st.Reached, st.Passes, st.Waves, st.Total())
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "babfs:", err)
	os.Exit(1)
}
