// Command babfs runs breadth-first search over a METIS-format graph with
// a selectable kernel and prints the level structure.
//
// Usage:
//
//	babfs -in graph.metis -root 0 -variant ba
//	bagen -kind grid3d -n 30000 | babfs -variant bb
//	bagen -kind rmat -scale 17 | babfs -variant par-do -workers 8
//	babfs -in graph.metis -variant ms -roots 0,17,96
//
// The ms variant runs all -roots sources through one batch-aware
// multi-source kernel: shared bottom-up mask sweeps advance up to 64
// searches per graph pass (the kernel the daemon's batched BFS
// dispatch uses).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"bagraph/internal/bfs"
	"bagraph/internal/graph"
	"bagraph/internal/metis"
)

func main() {
	in := flag.String("in", "", "input METIS file (default: stdin)")
	root := flag.Uint("root", 0, "source vertex")
	roots := flag.String("roots", "", "comma-separated source list for -variant ms (default: -root)")
	variant := flag.String("variant", "ba", "kernel: bb | ba | dir-opt | par-do | ms")
	workers := flag.Int("workers", 0, "workers for par-do/ms (0 = GOMAXPROCS)")
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		r = f
	}
	g, err := metis.Read(r)
	if err != nil {
		fail(err)
	}
	if *variant == "ms" {
		runMultiSource(g, *roots, uint32(*root), *workers)
		return
	}
	if *roots != "" {
		fail(fmt.Errorf("-roots is only meaningful with -variant ms"))
	}
	if int(*root) >= g.NumVertices() {
		fail(fmt.Errorf("root %d out of range for %d vertices", *root, g.NumVertices()))
	}
	fmt.Printf("graph: %s, root %d\n", g, *root)

	var dist []uint32
	var st bfs.Stats
	switch *variant {
	case "bb":
		dist, st = bfs.TopDownBranchBased(g, uint32(*root))
	case "ba":
		dist, st = bfs.TopDownBranchAvoiding(g, uint32(*root))
	case "dir-opt":
		dist, st = bfs.DirectionOptimizing(g, uint32(*root), 0, 0)
	case "par-do":
		dist, st = bfs.ParallelDO(g, uint32(*root), bfs.ParallelOptions{Workers: *workers})
	default:
		fail(fmt.Errorf("unknown variant %q", *variant))
	}

	if err := bfs.Verify(g, uint32(*root), dist); err != nil {
		fail(fmt.Errorf("result failed verification: %w", err))
	}

	fmt.Printf("reached %d/%d vertices in %d levels (total %v)\n",
		st.Reached, g.NumVertices(), st.Levels, st.Total())
	fmt.Printf("stores: %d distance, %d queue\n", st.DistStores, st.QueueStores)
	for i, size := range st.LevelSizes {
		fmt.Printf("  level %3d: %8d vertices  %10v\n", i, size, st.LevelDurations[i])
	}
}

// runMultiSource parses the root list, runs the batch-aware kernel,
// verifies every member against the BFS invariants, and prints the
// per-root reach alongside the shared-sweep economics.
func runMultiSource(g *graph.Graph, rootsFlag string, root uint32, workers int) {
	var srcs []uint32
	if rootsFlag == "" {
		srcs = []uint32{root}
	} else {
		for _, tok := range strings.Split(rootsFlag, ",") {
			v, err := strconv.ParseUint(strings.TrimSpace(tok), 10, 32)
			if err != nil {
				fail(fmt.Errorf("bad root %q: %w", tok, err))
			}
			srcs = append(srcs, uint32(v))
		}
	}
	for _, s := range srcs {
		if int(s) >= g.NumVertices() {
			fail(fmt.Errorf("root %d out of range for %d vertices", s, g.NumVertices()))
		}
	}
	fmt.Printf("graph: %s, %d sources\n", g, len(srcs))

	dists, st := bfs.MultiSource(g, srcs, bfs.MultiSourceOptions{Workers: workers})
	for i, s := range srcs {
		if err := bfs.Verify(g, s, dists[i]); err != nil {
			fail(fmt.Errorf("root %d failed verification: %w", s, err))
		}
		reached := 0
		for _, d := range dists[i] {
			if d != bfs.Inf {
				reached++
			}
		}
		fmt.Printf("  root %6d: reached %d/%d\n", s, reached, g.NumVertices())
	}
	fmt.Printf("reached %d source-vertex pairs in %d shared sweeps over %d waves (total %v)\n",
		st.Reached, st.Levels, st.Waves, st.Total())
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "babfs:", err)
	os.Exit(1)
}
