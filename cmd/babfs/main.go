// Command babfs runs breadth-first search over a METIS-format graph with
// a selectable kernel and prints the level structure.
//
// Usage:
//
//	babfs -in graph.metis -root 0 -variant ba
//	bagen -kind grid3d -n 30000 | babfs -variant bb
//	bagen -kind rmat -scale 17 | babfs -variant par-do -workers 8
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"bagraph/internal/bfs"
	"bagraph/internal/metis"
)

func main() {
	in := flag.String("in", "", "input METIS file (default: stdin)")
	root := flag.Uint("root", 0, "source vertex")
	variant := flag.String("variant", "ba", "kernel: bb | ba | dir-opt | par-do")
	workers := flag.Int("workers", 0, "workers for par-do (0 = GOMAXPROCS)")
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		r = f
	}
	g, err := metis.Read(r)
	if err != nil {
		fail(err)
	}
	if int(*root) >= g.NumVertices() {
		fail(fmt.Errorf("root %d out of range for %d vertices", *root, g.NumVertices()))
	}
	fmt.Printf("graph: %s, root %d\n", g, *root)

	var dist []uint32
	var st bfs.Stats
	switch *variant {
	case "bb":
		dist, st = bfs.TopDownBranchBased(g, uint32(*root))
	case "ba":
		dist, st = bfs.TopDownBranchAvoiding(g, uint32(*root))
	case "dir-opt":
		dist, st = bfs.DirectionOptimizing(g, uint32(*root), 0, 0)
	case "par-do":
		dist, st = bfs.ParallelDO(g, uint32(*root), bfs.ParallelOptions{Workers: *workers})
	default:
		fail(fmt.Errorf("unknown variant %q", *variant))
	}

	if err := bfs.Verify(g, uint32(*root), dist); err != nil {
		fail(fmt.Errorf("result failed verification: %w", err))
	}

	fmt.Printf("reached %d/%d vertices in %d levels (total %v)\n",
		st.Reached, g.NumVertices(), st.Levels, st.Total())
	fmt.Printf("stores: %d distance, %d queue\n", st.DistStores, st.QueueStores)
	for i, size := range st.LevelSizes {
		fmt.Printf("  level %3d: %8d vertices  %10v\n", i, size, st.LevelDurations[i])
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "babfs:", err)
	os.Exit(1)
}
