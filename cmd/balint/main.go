// Command balint is the repo's branch-avoiding contract checker: a
// go vet -vettool backend bundling the internal/analysis suite.
//
// Usage:
//
//	go build -o balint ./cmd/balint
//	go vet -vettool=$(pwd)/balint ./...
//
// The checks (see internal/analysis/... for the full contracts):
//
//	branchfree   //ba:branch-free regions contain no branches and call
//	             only mask/bit intrinsics or other marked functions
//	atomicfree   //ba:atomic-free and //ba:branch-free regions contain
//	             no atomics, mutexes, or channel operations
//	maskdomain   core.MaskLess64-family operands stay within the proven
//	             2^62 domain of the signed-subtraction mask
//	barrierctx   kernel packages observe cancellation via ctx.Err() at
//	             pass barriers only
//	deprecated   first-party code does not call the deprecated facade
//	             wrappers (replaces scripts/deprecation_guard.sh)
package main

import (
	"bagraph/internal/analysis/atomicfree"
	"bagraph/internal/analysis/barrierctx"
	"bagraph/internal/analysis/branchfree"
	"bagraph/internal/analysis/deprecated"
	"bagraph/internal/analysis/maskdomain"
	"bagraph/internal/analysis/unitchecker"
)

func main() {
	unitchecker.Main(
		branchfree.Analyzer,
		atomicfree.Analyzer,
		maskdomain.Analyzer,
		barrierctx.Analyzer,
		deprecated.Analyzer,
	)
}
