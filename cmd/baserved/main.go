// Command baserved is the branch-avoiding graph query daemon: it loads
// a set of named graphs at startup, keeps their CSR representations and
// a warm worker pool resident, and serves connected-components, BFS and
// SSSP queries over an HTTP+JSON API with batched kernel dispatch (see
// internal/serve). METIS files carrying per-edge weights (format code
// "1", e.g. from bagen -wmax) publish weighted graphs whose SSSP
// queries run on the real weights; unweighted files serve SSSP through
// a unit-weight view.
//
// Usage:
//
//	baserved -corpus cond-mat-2005,coAuthorsDBLP -scale 0.02
//	baserved -graph web=crawl.metis -graph road=weighted-roads.metis -listen :9090
//	baserved -corpus all -workers 8 -batch-max 64 -batch-window 1ms
//
// Queries:
//
//	curl -s localhost:8080/graphs
//	curl -s -d '{"graph":"cond-mat-2005","algo":"par-hybrid"}' localhost:8080/query/cc
//	curl -s -d '{"graph":"cond-mat-2005","root":0,"algo":"par-do"}' localhost:8080/query/bfs
//	curl -s -d '{"graph":"cond-mat-2005","root":0,"algo":"ms"}' localhost:8080/query/bfs
//	curl -s -d '{"graph":"road","root":0,"algo":"par-hybrid"}' localhost:8080/query/sssp
//
// BFS algo "ms" opts a query into the batch-aware multi-source kernel:
// every concurrent "ms" query against the same graph joins one shared
// traversal. SSSP algos par-bb / par-ba / par-hybrid (the default) run
// the delta-stepping kernel on the resident pool.
//
// GET /metrics exposes the daemon's aggregation plane in the
// Prometheus text format: query counts and latency by kind, batch
// sizes, multi-source wave occupancy, CC cache hit/miss/retry counts,
// per-kind kernel counters (passes, steals, words scanned, light/heavy
// relaxations) and — with -autotune — the controller's knob picks.
// -autotune turns on the adaptive controller: schedule, delta-stepping
// width and the bb/ba/hybrid cutover are chosen per (graph, kernel)
// from live counters (algo "auto", the default when the flag is set);
// results stay byte-identical to the static flags.
//
// The daemon drains in-flight requests and exits cleanly on SIGINT or
// SIGTERM.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"bagraph"
	"bagraph/internal/corpus"
	"bagraph/internal/serve"
)

// graphFlags collects repeated -graph name=path.metis arguments.
type graphFlags []struct{ name, path string }

func (g *graphFlags) String() string { return fmt.Sprint(*g) }

func (g *graphFlags) Set(v string) error {
	name, path, ok := strings.Cut(v, "=")
	if !ok || name == "" || path == "" {
		return fmt.Errorf("want name=path.metis, got %q", v)
	}
	*g = append(*g, struct{ name, path string }{name, path})
	return nil
}

func main() {
	var graphs graphFlags
	flag.Var(&graphs, "graph", "load a METIS graph as name=path (repeatable)")
	corpusList := flag.String("corpus", "", "comma-separated corpus graphs to load, or \"all\"")
	scale := flag.Float64("scale", 0.01, "corpus scale in (0, 1]")
	seed := flag.Uint64("seed", 42, "corpus generator seed")
	listen := flag.String("listen", ":8080", "HTTP listen address")
	workers := flag.Int("workers", 0, "resident pool size (0 = GOMAXPROCS)")
	batchMax := flag.Int("batch-max", 32, "max traversals per dispatch")
	batchWindow := flag.Duration("batch-window", 500*time.Microsecond,
		"how long the first query of a batch waits for company (negative: dispatch immediately)")
	queryTimeout := flag.Duration("query-timeout", 0,
		"per-query deadline; kernels stop at their next pass barrier and the query answers 504 (0 = none)")
	schedule := flag.String("schedule", "static",
		"chunk schedule for the dispatched parallel kernels: static | steal")
	autotune := flag.Bool("autotune", false,
		"pick schedule, delta and the bb/ba/hybrid cutover per (graph, kernel) from live counters")
	relabelOn := flag.Bool("relabel", false,
		"store graphs degree-ordered (hub clustering); queries and results keep original vertex ids")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "graceful shutdown limit")
	flag.Parse()

	sched, err := bagraph.ParseSchedule(*schedule)
	if err != nil {
		log.Fatalf("baserved: %v", err)
	}
	if *queryTimeout < 0 {
		log.Fatal("baserved: -query-timeout must be >= 0")
	}

	if len(graphs) == 0 && *corpusList == "" {
		log.Fatal("baserved: nothing to serve; pass -graph and/or -corpus (e.g. -corpus all)")
	}

	reg := serve.NewRegistry()
	reg.SetRelabel(*relabelOn)
	for _, gf := range graphs {
		e, err := reg.LoadMETISFile(gf.name, gf.path)
		if err != nil {
			log.Fatalf("baserved: %v", err)
		}
		log.Printf("loaded %s: %v", gf.name, e.Graph())
	}
	if *corpusList != "" {
		names := corpus.Names()
		if *corpusList != "all" {
			names = strings.Split(*corpusList, ",")
		}
		for _, name := range names {
			e, err := reg.AddCorpus(name, *scale, *seed)
			if err != nil {
				log.Fatalf("baserved: %v", err)
			}
			log.Printf("generated %s: %v", name, e.Graph())
		}
	}

	window := *batchWindow
	if window == 0 {
		// Config treats 0 as "default"; the flag's 0 means immediate.
		window = -1
	}
	core := serve.New(reg, serve.Config{
		Workers:      *workers,
		MaxBatch:     *batchMax,
		BatchWindow:  window,
		QueryTimeout: *queryTimeout,
		Schedule:     sched,
		Autotune:     *autotune,
	})
	defer core.Close()

	srv := &http.Server{Addr: *listen, Handler: core.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("serving %d graphs on %s (workers %d, batch %d/%v)",
		len(reg.Entries()), *listen, core.Batcher().Workers(), *batchMax, window)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Printf("received %v, draining", sig)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Fatalf("baserved: shutdown: %v", err)
		}
		log.Print("drained, bye")
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("baserved: %v", err)
		}
	}
}
