// Command baserved is the branch-avoiding graph query daemon: it loads
// a set of named graphs at startup, keeps their CSR representations and
// a warm worker pool resident, and serves connected-components, BFS and
// SSSP queries over an HTTP+JSON API with batched kernel dispatch (see
// internal/serve). METIS files carrying per-edge weights (format code
// "1", e.g. from bagen -wmax) publish weighted graphs whose SSSP
// queries run on the real weights; unweighted files serve SSSP through
// a unit-weight view.
//
// Usage:
//
//	baserved -corpus cond-mat-2005,coAuthorsDBLP -scale 0.02
//	baserved -graph web=crawl.metis -graph road=weighted-roads.metis -listen :9090
//	baserved -corpus all -workers 8 -batch-max 64 -batch-window 1ms
//
// Fleet mode promotes the daemon to many processes: shards are
// ordinary daemons (usually with -admin, so graphs can be rolled out
// in place), and a router is a stateless front that owns no graphs —
// it places queries on shards by consistent hashing over graph names,
// fans replicated graphs to the least-loaded live replica, health-
// checks shards with retry/backoff, and fails over to replicas when a
// shard dies (503 only when no live replica holds the graph):
//
//	baserved -graph web=crawl.metis -listen :9101 -admin   # shard 1
//	baserved -graph web=crawl.metis -listen :9102 -admin   # shard 2
//	baserved -router -shard 127.0.0.1:9101,127.0.0.1:9102 -listen :8080
//
// With -admin on the router, POST /admin/rollout
// {"graph":"web","path":"new.metis"} replaces the graph one replica at
// a time (Registry.Replace under each shard's epoch machinery) and
// re-warms each shard's CC cache before the next swap — zero-downtime
// rollout. Shard rotation reuses the SIGTERM drain path: kill a shard,
// the router reroutes to replicas, restart it, and the router warms
// its CC cache before returning it to traffic.
//
// Queries:
//
//	curl -s localhost:8080/graphs
//	curl -s -d '{"graph":"cond-mat-2005","algo":"par-hybrid"}' localhost:8080/query/cc
//	curl -s -d '{"graph":"cond-mat-2005","root":0,"algo":"par-do"}' localhost:8080/query/bfs
//	curl -s -d '{"graph":"cond-mat-2005","root":0,"algo":"ms"}' localhost:8080/query/bfs
//	curl -s -d '{"graph":"road","root":0,"algo":"par-hybrid"}' localhost:8080/query/sssp
//
// BFS algo "ms" opts a query into the batch-aware multi-source kernel:
// every concurrent "ms" query against the same graph joins one shared
// traversal. SSSP algos par-bb / par-ba / par-hybrid (the default) run
// the delta-stepping kernel on the resident pool.
//
// GET /metrics exposes the daemon's aggregation plane in the
// Prometheus text format: query counts and latency by kind, batch
// sizes, multi-source wave occupancy, CC cache hit/miss/retry counts,
// per-kind kernel counters (passes, steals, words scanned, light/heavy
// relaxations) and — with -autotune — the controller's knob picks. A
// router additionally exposes the fleet plane: per-shard request
// counts, retries, failovers, health checks and per-shard up gauges.
// -autotune turns on the adaptive controller: schedule, delta-stepping
// width and the bb/ba/hybrid cutover are chosen per (graph, kernel)
// from live counters (algo "auto", the default when the flag is set);
// results stay byte-identical to the static flags.
//
// The daemon drains in-flight requests and exits cleanly on SIGINT or
// SIGTERM.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"bagraph"
	"bagraph/internal/corpus"
	"bagraph/internal/fleet"
	"bagraph/internal/serve"
)

// graphFlags collects repeated -graph name=path.metis arguments.
type graphFlags []struct{ name, path string }

func (g *graphFlags) String() string { return fmt.Sprint(*g) }

func (g *graphFlags) Set(v string) error {
	name, path, ok := strings.Cut(v, "=")
	if !ok || name == "" || path == "" {
		return fmt.Errorf("want name=path.metis, got %q", v)
	}
	*g = append(*g, struct{ name, path string }{name, path})
	return nil
}

// shardFlags collects -shard addresses (repeatable, comma-splittable).
type shardFlags []string

func (s *shardFlags) String() string { return strings.Join(*s, ",") }

func (s *shardFlags) Set(v string) error {
	for _, addr := range strings.Split(v, ",") {
		if addr = strings.TrimSpace(addr); addr != "" {
			*s = append(*s, addr)
		}
	}
	return nil
}

func main() {
	var graphs graphFlags
	var shards shardFlags
	flag.Var(&graphs, "graph", "load a METIS graph as name=path (repeatable)")
	corpusList := flag.String("corpus", "", "comma-separated corpus graphs to load, or \"all\"")
	scale := flag.Float64("scale", 0.01, "corpus scale in (0, 1]")
	seed := flag.Uint64("seed", 42, "corpus generator seed")
	listen := flag.String("listen", ":8080", "HTTP listen address")
	workers := flag.Int("workers", 0, "resident pool size (0 = GOMAXPROCS)")
	batchMax := flag.Int("batch-max", 32, "max traversals per dispatch")
	batchWindow := flag.Duration("batch-window", 500*time.Microsecond,
		"how long the first query of a batch waits for company (negative: dispatch immediately)")
	queryTimeout := flag.Duration("query-timeout", 0,
		"per-query deadline; kernels stop at their next pass barrier and the query answers 504 (0 = none)")
	schedule := flag.String("schedule", "static",
		"chunk schedule for the dispatched parallel kernels: static | steal")
	autotune := flag.Bool("autotune", false,
		"pick schedule, delta and the bb/ba/hybrid cutover per (graph, kernel) from live counters")
	relabelOn := flag.Bool("relabel", false,
		"store graphs degree-ordered (hub clustering); queries and results keep original vertex ids")
	admin := flag.Bool("admin", false,
		"mount the admin plane: /admin/replace (zero-downtime graph rollout) on a daemon/shard, /admin/rollout on a router")
	router := flag.Bool("router", false,
		"run as a stateless fleet router over the -shard addresses instead of serving graphs in-process")
	flag.Var(&shards, "shard", "router mode: shard address host:port (repeatable or comma-separated)")
	replicas := flag.Int("replicas", 2, "router mode: shards a rollout places a NEW graph on")
	healthInterval := flag.Duration("health-interval", time.Second,
		"router mode: live-shard probe period (dead shards back off to 8x); also the Retry-After hint on 503s")
	retryBudget := flag.Int("retry-budget", 3,
		"router mode: max attempts one query spends across a graph's replicas")
	hedgeAfter := flag.Duration("hedge-after", 0,
		"router mode: duplicate a slow query on the next live replica after this delay (0: adapt to the observed p95; negative: never hedge)")
	breakerCooldown := flag.Duration("breaker-cooldown", 5*time.Second,
		"router mode: first open->half-open wait of a shard's circuit breaker (doubles per consecutive open, capped at 8x)")
	maxInflight := flag.Int("max-inflight", 0,
		"router mode: concurrent-query cap; excess answers 503 + Retry-After before touching any shard (0: unlimited)")
	maxStale := flag.Duration("max-stale", 0,
		"router mode: serve the last good CC answer, marked \"stale\", for up to this long when no live replica holds the graph (0: never)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "graceful shutdown limit")
	flag.Parse()

	if *queryTimeout < 0 {
		log.Fatal("baserved: -query-timeout must be >= 0")
	}

	var core *serve.Server
	if *router {
		if len(graphs) != 0 || *corpusList != "" {
			log.Fatal("baserved: -router owns no graphs; drop -graph/-corpus (load them on the shards)")
		}
		if len(shards) == 0 {
			log.Fatal("baserved: -router needs at least one -shard address")
		}
		fl, err := fleet.New(fleet.Config{
			Shards:          shards,
			Replicas:        *replicas,
			HealthInterval:  *healthInterval,
			RetryBudget:     *retryBudget,
			HedgeAfter:      *hedgeAfter,
			BreakerCooldown: *breakerCooldown,
			MaxInflight:     *maxInflight,
			MaxStale:        *maxStale,
			Logf:            log.Printf,
		})
		if err != nil {
			log.Fatalf("baserved: %v", err)
		}
		core = serve.NewWithBackend(fl, serve.Config{
			QueryTimeout: *queryTimeout,
			Admin:        *admin,
		})
		fl.SetMetrics(fleet.NewMetrics(core.Metrics().Registry()))
		fl.Start()
		log.Printf("routing over %d shards on %s: %s", len(shards), *listen, shards.String())
	} else {
		if len(shards) != 0 {
			log.Fatal("baserved: -shard only applies with -router")
		}
		sched, err := bagraph.ParseSchedule(*schedule)
		if err != nil {
			log.Fatalf("baserved: %v", err)
		}
		if len(graphs) == 0 && *corpusList == "" {
			log.Fatal("baserved: nothing to serve; pass -graph and/or -corpus (e.g. -corpus all)")
		}
		reg := serve.NewRegistry()
		reg.SetRelabel(*relabelOn)
		for _, gf := range graphs {
			e, err := reg.LoadMETISFile(gf.name, gf.path)
			if err != nil {
				log.Fatalf("baserved: %v", err)
			}
			log.Printf("loaded %s: %v", gf.name, e.Graph())
		}
		if *corpusList != "" {
			names := corpus.Names()
			if *corpusList != "all" {
				names = strings.Split(*corpusList, ",")
			}
			for _, name := range names {
				e, err := reg.AddCorpus(name, *scale, *seed)
				if err != nil {
					log.Fatalf("baserved: %v", err)
				}
				log.Printf("generated %s: %v", name, e.Graph())
			}
		}
		window := *batchWindow
		if window == 0 {
			// Config treats 0 as "default"; the flag's 0 means immediate.
			window = -1
		}
		core = serve.New(reg, serve.Config{
			Workers:      *workers,
			MaxBatch:     *batchMax,
			BatchWindow:  window,
			QueryTimeout: *queryTimeout,
			Schedule:     sched,
			Autotune:     *autotune,
			Admin:        *admin,
		})
		log.Printf("serving %d graphs on %s (workers %d, batch %d/%v)",
			len(reg.Entries()), *listen, core.Batcher().Workers(), *batchMax, window)
	}
	defer core.Close()

	srv := &http.Server{Addr: *listen, Handler: core.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Printf("received %v, draining", sig)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Fatalf("baserved: shutdown: %v", err)
		}
		log.Print("drained, bye")
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("baserved: %v", err)
		}
	}
}
