// Command bacc computes connected components of a METIS-format graph
// with a selectable kernel and prints per-pass statistics.
//
// Usage:
//
//	bacc -in graph.metis -algo sv-ba
//	bagen -kind ba -n 20000 | bacc -algo hybrid
//	bagen -kind rmat -scale 17 | bacc -algo par-hybrid -workers 8
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"bagraph/internal/cc"
	"bagraph/internal/metis"
)

func main() {
	in := flag.String("in", "", "input METIS file (default: stdin)")
	algo := flag.String("algo", "sv-ba",
		"kernel: sv-bb | sv-ba | hybrid | unionfind | par-bb | par-ba | par-hybrid")
	top := flag.Int("top", 5, "print the N largest components")
	workers := flag.Int("workers", 0, "workers for par-* kernels (0 = GOMAXPROCS)")
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		r = f
	}
	g, err := metis.Read(r)
	if err != nil {
		fail(err)
	}
	fmt.Printf("graph: %s\n", g)

	var labels []uint32
	var st cc.Stats
	switch *algo {
	case "sv-bb":
		labels, st = cc.SVBranchBased(g)
	case "sv-ba":
		labels, st = cc.SVBranchAvoiding(g)
	case "hybrid":
		labels, st = cc.SVHybrid(g, cc.HybridOptions{SwitchIteration: -1})
	case "unionfind":
		labels = cc.UnionFind(g)
	case "par-bb":
		labels, st = cc.SVParallel(g, cc.ParallelOptions{Workers: *workers, Variant: cc.BranchBased})
	case "par-ba":
		labels, st = cc.SVParallel(g, cc.ParallelOptions{Workers: *workers, Variant: cc.BranchAvoiding})
	case "par-hybrid":
		labels, st = cc.SVParallel(g, cc.ParallelOptions{Workers: *workers, Variant: cc.Hybrid})
	default:
		fail(fmt.Errorf("unknown algorithm %q", *algo))
	}

	if err := cc.Verify(g, labels); err != nil {
		fail(fmt.Errorf("result failed verification: %w", err))
	}

	sizes := cc.ComponentSizes(labels)
	fmt.Printf("components: %d\n", len(sizes))
	if st.Iterations > 0 {
		fmt.Printf("passes: %d, total %v, label stores %d\n", st.Iterations, st.Total(), st.LabelStores)
		for i := range st.IterDurations {
			fmt.Printf("  pass %2d: %10v  changed %d\n", i+1, st.IterDurations[i], st.IterChanges[i])
		}
	}

	type comp struct {
		label uint32
		size  int
	}
	var cs []comp
	for l, s := range sizes {
		cs = append(cs, comp{l, s})
	}
	sort.Slice(cs, func(i, j int) bool {
		if cs[i].size != cs[j].size {
			return cs[i].size > cs[j].size
		}
		return cs[i].label < cs[j].label
	})
	if *top > len(cs) {
		*top = len(cs)
	}
	for _, c := range cs[:*top] {
		fmt.Printf("  component %d: %d vertices\n", c.label, c.size)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "bacc:", err)
	os.Exit(1)
}
