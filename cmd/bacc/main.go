// Command bacc computes connected components of a METIS-format graph
// with a selectable kernel and prints per-pass statistics.
//
// Usage:
//
//	bacc -in graph.metis -algo sv-ba
//	bagen -kind ba -n 20000 | bacc -algo hybrid
//	bagen -kind rmat -scale 17 | bacc -algo par-hybrid -workers 8
//
// Kernels run through the unified bagraph.Run API; SIGINT/SIGTERM
// cancels the context, and the kernel stops at its next pass barrier
// with a partial-progress report.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"syscall"

	"bagraph"
	"bagraph/internal/algoreq"
	"bagraph/internal/cc"
)

func main() {
	in := flag.String("in", "", "input METIS file (default: stdin)")
	algo := flag.String("algo", "sv-ba",
		"kernel: sv-bb | sv-ba | hybrid | unionfind | par-bb | par-ba | par-hybrid")
	top := flag.Int("top", 5, "print the N largest components")
	workers := flag.Int("workers", 0, "workers for par-* kernels (0 = GOMAXPROCS)")
	schedule := flag.String("schedule", "static", "chunk schedule for par-* kernels: static | steal")
	relabelOn := flag.Bool("relabel", false, "run on a degree-ordered copy (results stay in original ids)")
	flag.Parse()

	sched, err := bagraph.ParseSchedule(*schedule)
	if err != nil {
		fail(err)
	}

	// SIGINT/SIGTERM cancels the kernel at its next pass barrier.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		r = f
	}
	g, err := bagraph.ReadMETIS(r)
	if err != nil {
		fail(err)
	}
	fmt.Printf("graph: %s\n", g)
	var tgt bagraph.Target = g
	if *relabelOn {
		rl, err := bagraph.RelabelDegree(g)
		if err != nil {
			fail(err)
		}
		tgt = rl
	}

	req, err := algoreq.CC(*algo)
	if err != nil {
		fail(err)
	}
	req.Workers = *workers
	req.Schedule = sched
	res, err := bagraph.Run(ctx, tgt, req)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			if res != nil {
				fmt.Fprintf(os.Stderr, "bacc: interrupted after %d completed pass(es) (%v, %d label stores); labels are partial\n",
					res.Stats.Passes, res.Stats.Total(), res.Stats.LabelStores)
			} else {
				fmt.Fprintln(os.Stderr, "bacc: interrupted before the kernel started")
			}
			os.Exit(130)
		}
		fail(err)
	}
	labels, st := res.Labels, res.Stats

	if err := cc.Verify(g, labels); err != nil {
		fail(fmt.Errorf("result failed verification: %w", err))
	}

	sizes := cc.ComponentSizes(labels)
	fmt.Printf("components: %d\n", len(sizes))
	if st.Passes > 0 {
		fmt.Printf("passes: %d, total %v, label stores %d\n", st.Passes, st.Total(), st.LabelStores)
		if st.Chunks > 0 {
			fmt.Printf("schedule: %d chunks, %d stolen (%d steal passes)\n",
				st.Chunks, st.Steals, st.StealPasses)
		}
		for i := range st.PassDurations {
			fmt.Printf("  pass %2d: %10v  changed %d\n", i+1, st.PassDurations[i], st.PassChanges[i])
		}
	}

	type comp struct {
		label uint32
		size  int
	}
	var cs []comp
	for l, s := range sizes {
		cs = append(cs, comp{l, s})
	}
	sort.Slice(cs, func(i, j int) bool {
		if cs[i].size != cs[j].size {
			return cs[i].size > cs[j].size
		}
		return cs[i].label < cs[j].label
	})
	if *top > len(cs) {
		*top = len(cs)
	}
	for _, c := range cs[:*top] {
		fmt.Printf("  component %d: %d vertices\n", c.label, c.size)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "bacc:", err)
	os.Exit(1)
}
