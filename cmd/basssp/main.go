// Command basssp computes single-source shortest paths over a METIS
// graph with a selectable kernel and prints per-pass statistics. Files
// carrying per-edge weights (format code "1") are used as-is;
// unweighted inputs run with unit weights.
//
// Usage:
//
//	basssp -in weighted.metis -root 0 -algo par-hybrid
//	bagen -kind ba -n 20000 -wmax 9 | basssp -algo ba
//	basssp -in graph.metis -algo par-bb -workers 8 -delta 16
//
// The "reached" and "sum" lines are the equivalence digest the daemon
// smoke script compares against baserved's /query/sssp responses.
//
// Kernels run through the unified bagraph.Run API; SIGINT/SIGTERM
// cancels the context, and the kernel stops at its next pass barrier
// with a partial-progress report.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"bagraph"
	"bagraph/internal/algoreq"
	"bagraph/internal/metis"
	"bagraph/internal/sssp"
)

func main() {
	in := flag.String("in", "", "input METIS file (default: stdin)")
	root := flag.Uint("root", 0, "source vertex")
	algo := flag.String("algo", "ba",
		"kernel: bb | ba | dijkstra | par-bb | par-ba | par-hybrid")
	workers := flag.Int("workers", 0, "workers for par-* kernels (0 = GOMAXPROCS)")
	delta := flag.Uint64("delta", 0, "bucket width for par-* kernels (0 = auto)")
	schedule := flag.String("schedule", "static", "chunk schedule for par-* kernels: static | steal")
	lightHeavy := flag.Bool("lightheavy", false,
		"split relaxation by edge class: light (weight <= delta) in-bucket, heavy once at bucket close")
	relabelOn := flag.Bool("relabel", false, "run on a degree-ordered copy (results stay in original ids)")
	flag.Parse()

	sched, err := bagraph.ParseSchedule(*schedule)
	if err != nil {
		fail(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		r = f
	}
	g, err := metis.ReadWeighted(r)
	if err != nil {
		fail(err)
	}
	kind := "unit"
	if g.HasWeights {
		kind = "explicit"
	}
	fmt.Printf("graph: %s (%s weights), root %d\n", g.Graph, kind, *root)
	var tgt bagraph.Target = g.Weighted
	if *relabelOn {
		rl, err := bagraph.RelabelDegree(g.Weighted)
		if err != nil {
			fail(err)
		}
		tgt = rl
	}

	src := uint32(*root)
	req, err := algoreq.SSSP(*algo, src, *delta)
	if err != nil {
		fail(err)
	}
	req.Workers = *workers
	req.Schedule = sched
	req.LightHeavy = *lightHeavy
	res, err := bagraph.Run(ctx, tgt, req)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			switch {
			case res != nil && req.Parallel:
				fmt.Fprintf(os.Stderr, "basssp: interrupted after %d completed pass(es) over %d bucket(s) (%v); distances are partial\n",
					res.Stats.Passes, res.Stats.Buckets, res.Stats.Total())
			case res != nil && res.Stats.Passes > 0:
				fmt.Fprintf(os.Stderr, "basssp: interrupted after %d completed pass(es) (%v); distances are partial\n",
					res.Stats.Passes, res.Stats.Total())
			case res != nil:
				// Dijkstra has no pass structure to report.
				fmt.Fprintln(os.Stderr, "basssp: interrupted mid-kernel; distances are partial")
			default:
				fmt.Fprintln(os.Stderr, "basssp: interrupted before the kernel started")
			}
			os.Exit(130)
		}
		fail(err)
	}
	dist, st := res.Dists, res.Stats

	if err := sssp.Verify(g.Weighted, src, dist); err != nil {
		fail(fmt.Errorf("result failed verification: %w", err))
	}

	reached := 0
	sum := uint64(0)
	for _, d := range dist {
		if d != sssp.Inf {
			reached++
			sum += d
		}
	}
	fmt.Printf("reached %d/%d vertices\n", reached, g.NumVertices())
	fmt.Printf("sum %d\n", sum)
	if st.Passes > 0 {
		fmt.Printf("passes: %d, total %v, dist stores %d, cand stores %d, buckets %d\n",
			st.Passes, st.Total(), st.DistStores, st.CandStores, st.Buckets)
		if st.Chunks > 0 {
			fmt.Printf("schedule: %d chunks, %d stolen (%d steal passes)\n",
				st.Chunks, st.Steals, st.StealPasses)
		}
		// The split exists only in the parallel kernel; sequential
		// variants ignore -lightheavy and report nothing here.
		if st.LightRelaxed+st.HeavyRelaxed > 0 {
			fmt.Printf("relaxations: %d light, %d heavy\n", st.LightRelaxed, st.HeavyRelaxed)
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "basssp:", err)
	os.Exit(1)
}
