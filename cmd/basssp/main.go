// Command basssp computes single-source shortest paths over a METIS
// graph with a selectable kernel and prints per-pass statistics. Files
// carrying per-edge weights (format code "1") are used as-is;
// unweighted inputs run with unit weights.
//
// Usage:
//
//	basssp -in weighted.metis -root 0 -algo par-hybrid
//	bagen -kind ba -n 20000 -wmax 9 | basssp -algo ba
//	basssp -in graph.metis -algo par-bb -workers 8 -delta 16
//
// The "reached" and "sum" lines are the equivalence digest the daemon
// smoke script compares against baserved's /query/sssp responses.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"bagraph/internal/metis"
	"bagraph/internal/sssp"
)

func main() {
	in := flag.String("in", "", "input METIS file (default: stdin)")
	root := flag.Uint("root", 0, "source vertex")
	algo := flag.String("algo", "ba",
		"kernel: bb | ba | dijkstra | par-bb | par-ba | par-hybrid")
	workers := flag.Int("workers", 0, "workers for par-* kernels (0 = GOMAXPROCS)")
	delta := flag.Uint64("delta", 0, "bucket width for par-* kernels (0 = auto)")
	flag.Parse()

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		r = f
	}
	g, err := metis.ReadWeighted(r)
	if err != nil {
		fail(err)
	}
	if int(*root) >= g.NumVertices() {
		fail(fmt.Errorf("root %d out of range for %d vertices", *root, g.NumVertices()))
	}
	kind := "unit"
	if g.HasWeights {
		kind = "explicit"
	}
	fmt.Printf("graph: %s (%s weights), root %d\n", g.Graph, kind, *root)

	src := uint32(*root)
	var dist []uint64
	var st sssp.Stats
	switch *algo {
	case "bb":
		dist, st = sssp.BellmanFordBranchBased(g.Weighted, src)
	case "ba":
		dist, st = sssp.BellmanFordBranchAvoiding(g.Weighted, src)
	case "dijkstra":
		dist = sssp.Dijkstra(g.Weighted, src)
	case "par-bb", "par-ba", "par-hybrid":
		variant := sssp.BranchBased
		switch *algo {
		case "par-ba":
			variant = sssp.BranchAvoiding
		case "par-hybrid":
			variant = sssp.Hybrid
		}
		dist, st = sssp.Parallel(g.Weighted, src, sssp.ParallelOptions{
			Workers: *workers, Variant: variant, Delta: *delta,
		})
	default:
		fail(fmt.Errorf("unknown algorithm %q", *algo))
	}

	if err := sssp.Verify(g.Weighted, src, dist); err != nil {
		fail(fmt.Errorf("result failed verification: %w", err))
	}

	reached := 0
	sum := uint64(0)
	for _, d := range dist {
		if d != sssp.Inf {
			reached++
			sum += d
		}
	}
	fmt.Printf("reached %d/%d vertices\n", reached, g.NumVertices())
	fmt.Printf("sum %d\n", sum)
	if st.Passes > 0 {
		fmt.Printf("passes: %d, total %v, dist stores %d, cand stores %d, buckets %d\n",
			st.Passes, st.Total(), st.DistStores, st.CandStores, st.Buckets)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "basssp:", err)
	os.Exit(1)
}
