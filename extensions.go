package bagraph

// Facade for the extension kernels: the algorithm families the paper's
// §1 predicts its findings extend to (shortest paths, betweenness
// centrality, APSP).

import (
	"context"
	"fmt"

	"bagraph/internal/apsp"
	"bagraph/internal/bc"
	"bagraph/internal/graph"
	"bagraph/internal/sssp"
)

// WeightedGraph is an immutable CSR graph with non-negative per-edge
// weights. Construct with NewWeightedGraph.
type WeightedGraph = graph.Weighted

// WeightedEdge is an edge with a non-negative 32-bit weight.
type WeightedEdge = graph.WeightedEdge

// InfDistance marks unreachable vertices in weighted shortest-path
// results.
const InfDistance = sssp.Inf

// NewWeightedGraph builds an undirected weighted graph; parallel edges
// collapse to the minimum weight and self-loops are dropped.
func NewWeightedGraph(n int, edges []WeightedEdge) (*WeightedGraph, error) {
	return graph.BuildWeighted(n, edges, false, "")
}

// AttachWeights derives a weighted view of g, assigning every arc the
// weight weight(u, v). The view shares g's CSR arrays; weight must be
// symmetric for undirected graphs and positive for the SSSP kernels. Use
// it to run weighted kernels over graphs loaded from unweighted formats
// (METIS, the corpus) — e.g. unit weights: AttachWeights(g, func(u, v
// uint32) uint32 { return 1 }).
func AttachWeights(g *Graph, weight func(u, v uint32) uint32) (*WeightedGraph, error) {
	return graph.AttachWeights(g, weight)
}

// SSSPAlgorithm selects a single-source shortest-path kernel.
type SSSPAlgorithm int

// Shortest-path kernels.
const (
	// SSSPBellmanFord is the pull-style branch-based Bellman-Ford — the
	// weighted analogue of the paper's Algorithm 2. In the parallel
	// kernel it selects the branch-based relaxation loop.
	SSSPBellmanFord SSSPAlgorithm = iota
	// SSSPBellmanFordBranchAvoiding relaxes with conditional moves — the
	// weighted analogue of Algorithm 3. In the parallel kernel it
	// selects the branch-avoiding relaxation loop.
	SSSPBellmanFordBranchAvoiding
	// SSSPDijkstra is the classical heap-based baseline. It has no
	// parallel form.
	SSSPDijkstra
	// SSSPHybrid relaxes branch-avoidingly while the relaxation branch
	// is unpredictable and switches to the branch-based loop once
	// improvements become rare (the paper's §6.2 crossover). It exists
	// only in the parallel kernel.
	SSSPHybrid
)

// String implements fmt.Stringer.
func (a SSSPAlgorithm) String() string {
	switch a {
	case SSSPBellmanFord:
		return "bellman-ford"
	case SSSPBellmanFordBranchAvoiding:
		return "bellman-ford-branch-avoiding"
	case SSSPDijkstra:
		return "dijkstra"
	case SSSPHybrid:
		return "hybrid"
	default:
		return fmt.Sprintf("SSSPAlgorithm(%d)", int(a))
	}
}

// ShortestPaths returns weighted shortest-path distances from src
// (InfDistance for unreachable vertices). All algorithms produce
// identical distances.
//
// Deprecated: use Run with Request{Kind: KindSSSP, SSSP: alg, Root:
// src}, which also returns the kernel's Stats and honors a context.
func ShortestPaths(g *WeightedGraph, src uint32, alg SSSPAlgorithm) ([]uint64, error) {
	return ShortestPathsInto(g, src, alg, nil)
}

// ShortestPathsInto is ShortestPaths writing into dist when it has
// length |V| (the returned slice aliases it); any other length
// allocates. Long-lived callers reuse the buffer across queries.
//
// Deprecated: use Run with Request{Kind: KindSSSP, SSSP: alg, Root:
// src} and a reusable Workspace in place of the positional buffer.
func ShortestPathsInto(g *WeightedGraph, src uint32, alg SSSPAlgorithm, dist []uint64) ([]uint64, error) {
	res, err := Run(context.Background(), g, Request{
		Kind: KindSSSP, SSSP: alg, Root: src,
		Workspace: &Workspace{Dists: dist},
	})
	if err != nil {
		return nil, err
	}
	return res.Dists, nil
}

// checkSource validates an SSSP source vertex against the graph. On a
// 0-vertex graph every source is out of range — no vertex exists for
// the traversal to start from.
func checkSource(g *WeightedGraph, src uint32) error {
	if int(src) >= g.NumVertices() {
		return fmt.Errorf("bagraph: source %d out of range for %d vertices", src, g.NumVertices())
	}
	return nil
}

// ssspVariant maps a facade algorithm to its parallel relaxation loop.
func ssspVariant(alg SSSPAlgorithm) (sssp.Variant, error) {
	switch alg {
	case SSSPBellmanFord:
		return sssp.BranchBased, nil
	case SSSPBellmanFordBranchAvoiding:
		return sssp.BranchAvoiding, nil
	case SSSPHybrid:
		return sssp.Hybrid, nil
	default:
		return 0, fmt.Errorf("bagraph: no parallel kernel for %v", alg)
	}
}

// ShortestPathsParallel is the data-parallel counterpart of
// ShortestPaths: a delta-stepping kernel whose bucketed frontiers are
// relaxed in degree-balanced ranges over the worker-pool engine
// (internal/par), with the branch-based, branch-avoiding or hybrid
// relaxation loop selected by alg. workers < 1 means GOMAXPROCS.
// Distances are identical to the sequential kernels'. SSSPDijkstra has
// no parallel form and is rejected.
//
// Deprecated: use Run with Request{Kind: KindSSSP, SSSP: alg,
// Parallel: true, Root: src, Workers: workers}.
func ShortestPathsParallel(g *WeightedGraph, src uint32, alg SSSPAlgorithm, workers int) ([]uint64, error) {
	res, err := Run(context.Background(), g, Request{
		Kind: KindSSSP, SSSP: alg, Parallel: true, Root: src, Workers: workers,
	})
	if err != nil {
		return nil, err
	}
	return res.Dists, nil
}

// ShortestPaths runs the parallel SSSP kernel on the resident pool.
// dist, when of length |V|, receives the distances and suppresses the
// per-call result allocation (the returned slice aliases it); pass nil
// to allocate. SSSPDijkstra has no parallel form and is rejected.
//
// Deprecated: use WorkerPool.Run with Request{Kind: KindSSSP,
// Parallel: true} and a reusable Workspace in place of the positional
// buffer.
func (p *WorkerPool) ShortestPaths(g *WeightedGraph, src uint32, alg SSSPAlgorithm, dist []uint64) ([]uint64, error) {
	res, err := p.Run(context.Background(), g, Request{
		Kind: KindSSSP, SSSP: alg, Parallel: true, Root: src,
		Workspace: &Workspace{Dists: dist},
	})
	if err != nil {
		return nil, err
	}
	return res.Dists, nil
}

// Betweenness returns the exact betweenness centrality of every vertex.
// With branchAvoiding the Brandes forward phase uses the paper's
// conditional-move transformation; results are bit-identical either way.
func Betweenness(g *Graph, branchAvoiding bool) []float64 {
	if branchAvoiding {
		vals, _ := bc.BranchAvoiding(g)
		return vals
	}
	vals, _ := bc.BranchBased(g)
	return vals
}

// DistanceSummary aggregates all-pairs distance structure (eccentricities,
// diameter, radius, mean distance) by running a BFS from every vertex.
type DistanceSummary = apsp.Result

// AllPairsSummary computes the distance summary using the selected BFS
// kernel for the |V| sweeps. Only BFSBranchBased and BFSBranchAvoiding
// are supported.
func AllPairsSummary(g *Graph, variant BFSVariant) (DistanceSummary, error) {
	switch variant {
	case BFSBranchBased:
		return apsp.Summary(g, apsp.BranchBased), nil
	case BFSBranchAvoiding:
		return apsp.Summary(g, apsp.BranchAvoiding), nil
	default:
		return DistanceSummary{}, fmt.Errorf("bagraph: unsupported APSP variant %v", variant)
	}
}
