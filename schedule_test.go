package bagraph

// The steal-schedule property suite: work stealing moves chunks
// between workers, never elements between chunks, so every kernel must
// produce byte-identical output under ScheduleStealing and
// ScheduleStatic — across the whole corpus (including the forced-skew
// hub graph whose single vertex owns >50% of all arcs), at every
// standard worker count, for every parallel kernel family. Run under
// -race this doubles as the no-shared-state proof for the stealing
// scheduler's chunk handoff.

import (
	"context"
	"fmt"
	"testing"

	"bagraph/internal/testutil"
)

// runPair executes one request under both schedules and returns the
// two results (stealing first).
func runPair(t *testing.T, g Target, req Request) (*Result, *Result) {
	t.Helper()
	req.Schedule = ScheduleStealing
	steal, err := Run(context.Background(), g, req)
	if err != nil {
		t.Fatalf("stealing run: %v", err)
	}
	req.Schedule = ScheduleStatic
	static, err := Run(context.Background(), g, req)
	if err != nil {
		t.Fatalf("static run: %v", err)
	}
	return steal, static
}

func TestScheduleEquivalenceCC(t *testing.T) {
	testutil.ForEachGraph(t, nil, func(t *testing.T, g *Graph) {
		for _, workers := range testutil.WorkerCounts {
			steal, static := runPair(t, g, Request{
				Kind: KindCC, CC: CCHybrid, Parallel: true, Workers: workers,
			})
			testutil.MustEqualLabels(t, fmt.Sprintf("w%d", workers), steal.Labels, static.Labels)
		}
	})
}

func TestScheduleEquivalenceBFS(t *testing.T) {
	testutil.ForEachGraph(t, nil, func(t *testing.T, g *Graph) {
		if g.NumVertices() == 0 {
			return // no root to traverse from
		}
		for _, workers := range testutil.WorkerCounts {
			steal, static := runPair(t, g, Request{
				Kind: KindBFS, Parallel: true, Root: 0, Workers: workers,
			})
			testutil.MustEqualDists(t, fmt.Sprintf("w%d", workers), steal.Hops, static.Hops)
		}
	})
}

func TestScheduleEquivalenceBFSBatch(t *testing.T) {
	testutil.ForEachGraph(t, nil, func(t *testing.T, g *Graph) {
		n := g.NumVertices()
		if n == 0 {
			return
		}
		roots := []uint32{0, uint32(n / 2), uint32(n - 1), 0}
		for _, workers := range testutil.WorkerCounts {
			steal, static := runPair(t, g, Request{
				Kind: KindBFSBatch, Roots: roots, Workers: workers,
			})
			for i := range roots {
				testutil.MustEqualDists(t, fmt.Sprintf("w%d/root%d", workers, roots[i]),
					steal.HopsBatch[i], static.HopsBatch[i])
			}
		}
	})
}

func TestScheduleEquivalenceSSSP(t *testing.T) {
	testutil.ForEachWeighted(t, nil, func(t *testing.T, g *WeightedGraph) {
		if g.NumVertices() == 0 {
			return
		}
		for _, workers := range testutil.WorkerCounts {
			for _, lightHeavy := range []bool{false, true} {
				steal, static := runPair(t, g, Request{
					Kind: KindSSSP, SSSP: SSSPHybrid, Parallel: true,
					Root: 0, Workers: workers, LightHeavy: lightHeavy,
				})
				testutil.MustEqualDists(t, fmt.Sprintf("w%d/lh=%v", workers, lightHeavy),
					steal.Dists, static.Dists)
			}
		}
	})
}

// TestScheduleChunkAccounting pins the observability contract: a
// parallel run reports its chunk volume, a stealing run over-decomposes
// relative to static, and a sequential run reports nothing.
func TestScheduleChunkAccounting(t *testing.T) {
	g := testutil.Hub(192, 600)
	static, err := Run(context.Background(), g, Request{
		Kind: KindCC, CC: CCBranchAvoiding, Parallel: true, Workers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if static.Stats.Chunks == 0 {
		t.Fatal("static parallel run reported no chunks")
	}
	if static.Stats.Steals != 0 || static.Stats.StealPasses != 0 {
		t.Fatalf("static run reported steals: %+v", static.Stats)
	}
	steal, err := Run(context.Background(), g, Request{
		Kind: KindCC, CC: CCBranchAvoiding, Parallel: true, Workers: 4,
		Schedule: ScheduleStealing,
	})
	if err != nil {
		t.Fatal(err)
	}
	if steal.Stats.Chunks <= static.Stats.Chunks {
		t.Fatalf("stealing run did not over-decompose: %d chunks vs static %d",
			steal.Stats.Chunks, static.Stats.Chunks)
	}
	seq, err := Run(context.Background(), g, Request{Kind: KindCC, CC: CCBranchAvoiding})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Stats.Chunks != 0 || seq.Stats.Steals != 0 {
		t.Fatalf("sequential run reported scheduler stats: %+v", seq.Stats)
	}
}

// TestParseSchedule pins the flag vocabulary the CLIs and daemon share.
func TestParseSchedule(t *testing.T) {
	for in, want := range map[string]Schedule{
		"": ScheduleStatic, "static": ScheduleStatic,
		"steal": ScheduleStealing, "stealing": ScheduleStealing,
	} {
		got, err := ParseSchedule(in)
		if err != nil || got != want {
			t.Errorf("ParseSchedule(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseSchedule("fifo"); err == nil {
		t.Error("ParseSchedule accepted an unknown name")
	}
	if ScheduleStatic.String() != "static" || ScheduleStealing.String() != "steal" {
		t.Errorf("Schedule strings: %v %v", ScheduleStatic, ScheduleStealing)
	}
}
