// Package bagraph is a library of branch-avoiding graph algorithms, a
// reproduction of "Branch-Avoiding Graph Algorithms" (Green, Dukhan,
// Vuduc — SPAA 2015, arXiv:1411.1460).
//
// The package provides:
//
//   - connected components via Shiloach-Vishkin label propagation in
//     branch-based, branch-avoiding and hybrid forms, plus a union-find
//     baseline (ConnectedComponents);
//   - top-down BFS in branch-based and branch-avoiding forms, plus a
//     direction-optimizing baseline (ShortestHops);
//   - multi-core variants of both kernels on a shared worker-pool engine;
//   - an instrumented machine model — 2-bit branch predictor, LRU cache
//     hierarchy, per-microarchitecture cost model — that reproduces the
//     paper's per-iteration hardware-event measurements (ProfileSV,
//     ProfileBFS, Platforms);
//   - the paper's graph corpus as seeded synthetic stand-ins
//     (CorpusGraph) and METIS-format I/O for real DIMACS-10 files
//     (ReadMETIS, WriteMETIS);
//   - runners that regenerate every table and figure of the paper's
//     evaluation (Experiments, RunExperiment).
//
// Every kernel family is executed through the unified request/response
// entry point Run (and WorkerPool.Run for resident-pool serving), which
// carries cooperative cancellation, the kernel's Stats, and reusable
// Workspaces — see run.go. The per-kernel free functions below predate
// Run and remain as thin deprecated wrappers.
//
// The deeper machinery lives in the internal packages; this facade is the
// supported API surface.
package bagraph

import (
	"context"
	"fmt"
	"io"

	"bagraph/internal/cc"
	"bagraph/internal/corpus"
	"bagraph/internal/exp"
	"bagraph/internal/graph"
	"bagraph/internal/metis"
	"bagraph/internal/par"
	"bagraph/internal/perfsim"
	"bagraph/internal/simkern"
	"bagraph/internal/uarch"
)

// Graph is an immutable CSR graph. Construct with NewGraph, CorpusGraph
// or ReadMETIS.
type Graph = graph.Graph

// Edge is an undirected (or directed, see NewDigraph) vertex pair.
type Edge = graph.Edge

// Unreached marks vertices not reached by a traversal.
const Unreached = ^uint32(0)

// NewGraph builds an undirected graph over n vertices; self-loops and
// duplicate edges are dropped.
func NewGraph(n int, edges []Edge) (*Graph, error) {
	return graph.Build(n, edges, graph.Options{})
}

// NewDigraph builds a directed graph over n vertices.
func NewDigraph(n int, edges []Edge) (*Graph, error) {
	return graph.Build(n, edges, graph.Options{Directed: true})
}

// CCAlgorithm selects a connected-components kernel.
type CCAlgorithm int

// Connected-components kernels.
const (
	// CCBranchBased is the classical Shiloach-Vishkin label propagation
	// (paper Algorithm 2).
	CCBranchBased CCAlgorithm = iota
	// CCBranchAvoiding replaces the label-comparison branch with
	// arithmetic conditional moves (paper Algorithm 3).
	CCBranchAvoiding
	// CCHybrid runs branch-avoiding passes while labels churn and
	// switches to branch-based once they stabilize (paper §6.2).
	CCHybrid
	// CCUnionFind is a weighted union-find baseline.
	CCUnionFind
)

// String implements fmt.Stringer.
func (a CCAlgorithm) String() string {
	switch a {
	case CCBranchBased:
		return "sv-branch-based"
	case CCBranchAvoiding:
		return "sv-branch-avoiding"
	case CCHybrid:
		return "sv-hybrid"
	case CCUnionFind:
		return "union-find"
	default:
		return fmt.Sprintf("CCAlgorithm(%d)", int(a))
	}
}

// ConnectedComponents labels every vertex with the smallest vertex id in
// its connected component. All algorithms produce identical labels.
//
// Deprecated: use Run with Request{Kind: KindCC, CC: alg}, which also
// returns the kernel's Stats and honors a context.
func ConnectedComponents(g *Graph, alg CCAlgorithm) ([]uint32, error) {
	res, err := Run(context.Background(), g, Request{Kind: KindCC, CC: alg})
	if err != nil {
		return nil, err
	}
	return res.Labels, nil
}

// ComponentCount returns the number of connected components given a
// labeling from ConnectedComponents.
func ComponentCount(labels []uint32) int { return cc.CountComponents(labels) }

// ccVariant maps a facade algorithm to its parallel inner-loop variant.
func ccVariant(alg CCAlgorithm) (cc.Variant, error) {
	switch alg {
	case CCBranchBased:
		return cc.BranchBased, nil
	case CCBranchAvoiding:
		return cc.BranchAvoiding, nil
	case CCHybrid:
		return cc.Hybrid, nil
	default:
		return 0, fmt.Errorf("bagraph: no parallel kernel for %v", alg)
	}
}

// ConnectedComponentsParallel is the data-parallel counterpart of
// ConnectedComponents: Shiloach-Vishkin label propagation over
// degree-balanced vertex ranges with a per-pass barrier (internal/par).
// workers < 1 means GOMAXPROCS. The labeling is identical to the
// sequential kernels'. CCUnionFind has no parallel form and is rejected.
//
// Deprecated: use Run with Request{Kind: KindCC, CC: alg, Parallel:
// true, Workers: workers}.
func ConnectedComponentsParallel(g *Graph, alg CCAlgorithm, workers int) ([]uint32, error) {
	res, err := Run(context.Background(), g, Request{
		Kind: KindCC, CC: alg, Parallel: true, Workers: workers,
	})
	if err != nil {
		return nil, err
	}
	return res.Labels, nil
}

// WorkerPool is a persistent set of worker goroutines shared across
// parallel kernel calls. Each ConnectedComponentsParallel or
// ShortestHopsParallel call otherwise starts and stops its own pool;
// query-serving workloads — many small kernels back to back — amortize
// that startup by keeping one WorkerPool resident. A WorkerPool must be
// released with Close.
type WorkerPool struct {
	pool *par.Pool
}

// NewWorkerPool starts a pool of the given size; workers < 1 means
// GOMAXPROCS.
func NewWorkerPool(workers int) *WorkerPool {
	return &WorkerPool{pool: par.NewPool(workers)}
}

// Workers returns the pool size.
func (p *WorkerPool) Workers() int { return p.pool.Workers() }

// Close stops the worker goroutines. The pool must not be used after
// Close; Close is idempotent.
func (p *WorkerPool) Close() { p.pool.Close() }

// ConnectedComponents runs the parallel CC kernel on the resident pool.
// labels and scratch, when of length |V| and distinct, provide the
// kernel's label double-buffer and suppress per-call allocations (the
// returned labeling aliases one of them); pass nil to allocate.
//
// Deprecated: use WorkerPool.Run with Request{Kind: KindCC, Parallel:
// true} and a reusable Workspace in place of the positional buffers.
func (p *WorkerPool) ConnectedComponents(g *Graph, alg CCAlgorithm, labels, scratch []uint32) ([]uint32, error) {
	res, err := p.Run(context.Background(), g, Request{
		Kind: KindCC, CC: alg, Parallel: true,
		Workspace: &Workspace{Labels: labels, Scratch: scratch},
	})
	if err != nil {
		return nil, err
	}
	return res.Labels, nil
}

// ShortestHops runs the parallel direction-optimizing BFS on the
// resident pool. dist, when of length |V|, receives the distances and
// suppresses the per-call result allocation (the returned slice aliases
// it); pass nil to allocate.
//
// Deprecated: use WorkerPool.Run with Request{Kind: KindBFS, Parallel:
// true} and a reusable Workspace in place of the positional buffer.
func (p *WorkerPool) ShortestHops(g *Graph, root uint32, dist []uint32) ([]uint32, error) {
	res, err := p.Run(context.Background(), g, Request{
		Kind: KindBFS, Parallel: true, Root: root,
		Workspace: &Workspace{Hops: dist},
	})
	if err != nil {
		return nil, err
	}
	return res.Hops, nil
}

// ShortestHopsBatch runs every root of a batch through shared
// bottom-up mask sweeps on the resident pool (one graph pass per level
// advances up to 64 searches at once) and returns one distance array
// per root, each identical to an independent traversal's. dists, when
// holding len(roots) slices of length |V|, receives the results and
// suppresses the per-call allocations (the returned slices alias it);
// pass nil to allocate.
//
// Deprecated: use WorkerPool.Run with Request{Kind: KindBFSBatch} and
// a reusable Workspace in place of the positional buffers.
func (p *WorkerPool) ShortestHopsBatch(g *Graph, roots []uint32, dists [][]uint32) ([][]uint32, error) {
	res, err := p.Run(context.Background(), g, Request{
		Kind: KindBFSBatch, Roots: roots,
		Workspace: &Workspace{HopsBatch: dists},
	})
	if err != nil {
		return nil, err
	}
	return res.HopsBatch, nil
}

// ShortestHopsMultiSource is the batch-aware counterpart of
// ShortestHops: all roots traverse together through shared bottom-up
// mask sweeps (see WorkerPool.ShortestHopsBatch). workers < 1 means
// GOMAXPROCS.
//
// Deprecated: use Run with Request{Kind: KindBFSBatch, Roots: roots,
// Workers: workers}.
func ShortestHopsMultiSource(g *Graph, roots []uint32, workers int) ([][]uint32, error) {
	res, err := Run(context.Background(), g, Request{
		Kind: KindBFSBatch, Roots: roots, Workers: workers,
	})
	if err != nil {
		return nil, err
	}
	return res.HopsBatch, nil
}

// BFSVariant selects a breadth-first-search kernel.
type BFSVariant int

// BFS kernels.
const (
	// BFSBranchBased is the classical top-down BFS (paper Algorithm 4).
	BFSBranchBased BFSVariant = iota
	// BFSBranchAvoiding trades the discovery branch for unconditional
	// queue/distance stores with conditional moves (paper Algorithm 5).
	BFSBranchAvoiding
	// BFSDirectionOptimizing is the Beamer-style top-down/bottom-up
	// baseline (the paper's reference [8]).
	BFSDirectionOptimizing
)

// String implements fmt.Stringer.
func (v BFSVariant) String() string {
	switch v {
	case BFSBranchBased:
		return "bfs-branch-based"
	case BFSBranchAvoiding:
		return "bfs-branch-avoiding"
	case BFSDirectionOptimizing:
		return "bfs-direction-optimizing"
	default:
		return fmt.Sprintf("BFSVariant(%d)", int(v))
	}
}

// checkRoot validates a BFS source vertex against the graph. On a
// 0-vertex graph every root is out of range — no vertex exists for the
// traversal to start from.
func checkRoot(g *Graph, root uint32) error {
	if int(root) >= g.NumVertices() {
		return fmt.Errorf("bagraph: root %d out of range for %d vertices", root, g.NumVertices())
	}
	return nil
}

// ShortestHops returns the hop distance from root to every vertex
// (Unreached for vertices in other components). All variants produce
// identical distances.
//
// Deprecated: use Run with Request{Kind: KindBFS, BFS: variant, Root:
// root}, which also returns the kernel's Stats and honors a context.
func ShortestHops(g *Graph, root uint32, variant BFSVariant) ([]uint32, error) {
	res, err := Run(context.Background(), g, Request{
		Kind: KindBFS, BFS: variant, Root: root,
	})
	if err != nil {
		return nil, err
	}
	return res.Hops, nil
}

// ShortestHopsParallel is the data-parallel counterpart of ShortestHops:
// direction-optimizing BFS with per-worker top-down frontier queues and a
// branch-avoiding bottom-up bitset sweep (internal/par). workers < 1
// means GOMAXPROCS. Distances are identical to the sequential variants'.
//
// Deprecated: use Run with Request{Kind: KindBFS, Parallel: true, Root:
// root, Workers: workers}.
func ShortestHopsParallel(g *Graph, root uint32, workers int) ([]uint32, error) {
	res, err := Run(context.Background(), g, Request{
		Kind: KindBFS, Parallel: true, Root: root, Workers: workers,
	})
	if err != nil {
		return nil, err
	}
	return res.Hops, nil
}

// Platforms returns the names of the simulated microarchitectures (the
// paper's Table 1 systems).
func Platforms() []string { return uarch.Names() }

// IterationProfile is the simulated hardware-event snapshot of one SV
// pass or one BFS level.
type IterationProfile struct {
	Seconds        float64
	Instructions   uint64
	Branches       uint64
	Mispredictions uint64
	Loads          uint64
	Stores         uint64
}

// Profile is the per-iteration simulated behaviour of one kernel run on
// one platform.
type Profile struct {
	Platform string
	// BranchAvoiding records which kernel variant ran.
	BranchAvoiding bool
	PerIteration   []IterationProfile
}

// TotalSeconds sums the simulated time.
func (p *Profile) TotalSeconds() float64 {
	t := 0.0
	for _, it := range p.PerIteration {
		t += it.Seconds
	}
	return t
}

// TotalMispredictions sums the simulated branch misses.
func (p *Profile) TotalMispredictions() uint64 {
	var m uint64
	for _, it := range p.PerIteration {
		m += it.Mispredictions
	}
	return m
}

func lookupPlatform(name string) (uarch.Model, error) {
	m, ok := uarch.ByName(name)
	if !ok {
		return uarch.Model{}, fmt.Errorf("bagraph: unknown platform %q (known: %v)", name, uarch.Names())
	}
	return m, nil
}

func toProfile(platform string, avoid bool, model uarch.Model, series []IterationProfile) *Profile {
	return &Profile{Platform: platform, BranchAvoiding: avoid, PerIteration: series}
}

// ProfileSV runs the instrumented Shiloach-Vishkin kernel on the named
// simulated platform and returns per-pass event counts and times under
// the paper's 2-bit predictor model.
func ProfileSV(g *Graph, platform string, branchAvoiding bool) (*Profile, error) {
	model, err := lookupPlatform(platform)
	if err != nil {
		return nil, err
	}
	m := perfsim.NewDefault(model)
	var res simkern.SVResult
	if branchAvoiding {
		res = simkern.SVBranchAvoiding(m, g)
	} else {
		res = simkern.SVBranchBased(m, g)
	}
	series := make([]IterationProfile, len(res.PerIter))
	for i, c := range res.PerIter {
		series[i] = IterationProfile{
			Seconds:        model.Seconds(c),
			Instructions:   c.Instructions,
			Branches:       c.Branches,
			Mispredictions: c.Mispredicts,
			Loads:          c.Loads,
			Stores:         c.Stores,
		}
	}
	return toProfile(platform, branchAvoiding, model, series), nil
}

// ProfileBFS runs the instrumented top-down BFS kernel on the named
// simulated platform and returns per-level event counts and times.
func ProfileBFS(g *Graph, root uint32, platform string, branchAvoiding bool) (*Profile, error) {
	model, err := lookupPlatform(platform)
	if err != nil {
		return nil, err
	}
	if err := checkRoot(g, root); err != nil {
		return nil, err
	}
	m := perfsim.NewDefault(model)
	var res simkern.BFSResult
	if branchAvoiding {
		res = simkern.BFSBranchAvoiding(m, g, root)
	} else {
		res = simkern.BFSBranchBased(m, g, root)
	}
	series := make([]IterationProfile, len(res.PerLevel))
	for i, c := range res.PerLevel {
		series[i] = IterationProfile{
			Seconds:        model.Seconds(c),
			Instructions:   c.Instructions,
			Branches:       c.Branches,
			Mispredictions: c.Mispredicts,
			Loads:          c.Loads,
			Stores:         c.Stores,
		}
	}
	return toProfile(platform, branchAvoiding, model, series), nil
}

// CorpusNames returns the names of the paper's Table 2 graphs.
func CorpusNames() []string { return corpus.Names() }

// CorpusGraph generates the synthetic stand-in for the named Table 2
// graph at the given scale in (0, 1] (1 ≈ the paper's size).
func CorpusGraph(name string, scale float64, seed uint64) (*Graph, error) {
	d, ok := corpus.ByName(name)
	if !ok {
		return nil, fmt.Errorf("bagraph: unknown corpus graph %q (known: %v)", name, corpus.Names())
	}
	if scale <= 0 || scale > 1 {
		return nil, fmt.Errorf("bagraph: scale %v out of (0, 1]", scale)
	}
	return d.Generate(scale, seed), nil
}

// ReadMETIS parses a DIMACS-10 / METIS format graph.
func ReadMETIS(r io.Reader) (*Graph, error) { return metis.Read(r) }

// WriteMETIS serializes an undirected graph in METIS format.
func WriteMETIS(w io.Writer, g *Graph) error { return metis.Write(w, g) }

// Experiments returns the names of the paper's reproducible exhibits
// (tables, figures, and the extensions).
func Experiments() []string { return exp.Names() }

// ExperimentOptions configures RunExperiment. The zero value uses the
// defaults (scale 0.01, all graphs, all platforms, seed 42).
type ExperimentOptions struct {
	Scale     float64
	Seed      uint64
	Graphs    []string
	Platforms []string
	// Workers parallelizes the graph×platform sweep cells; < 1 means
	// GOMAXPROCS. Output is identical at any width.
	Workers int
}

// RunExperiment regenerates one named exhibit ("table1", "fig3", "all",
// ...) to w.
func RunExperiment(name string, w io.Writer, opt ExperimentOptions) error {
	return exp.Run(name, w, exp.Options{
		Scale:     opt.Scale,
		Seed:      opt.Seed,
		Graphs:    opt.Graphs,
		Platforms: opt.Platforms,
		Workers:   opt.Workers,
	})
}
