package bagraph

import (
	"strings"
	"testing"

	"bagraph/internal/testutil"
)

func weightedRing(t *testing.T, n int) *WeightedGraph {
	t.Helper()
	edges := make([]WeightedEdge, n)
	for i := 0; i < n; i++ {
		edges[i] = WeightedEdge{U: uint32(i), V: uint32((i + 1) % n), W: uint32(i%3 + 1)}
	}
	g, err := NewWeightedGraph(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestShortestPathsAllAlgorithms(t *testing.T) {
	g := weightedRing(t, 24)
	var ref []uint64
	for _, alg := range []SSSPAlgorithm{SSSPBellmanFord, SSSPBellmanFordBranchAvoiding, SSSPDijkstra} {
		dist, err := ShortestPaths(g, 0, alg)
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if dist[0] != 0 {
			t.Fatalf("%v: dist[src] = %d", alg, dist[0])
		}
		if ref == nil {
			ref = dist
			continue
		}
		for v := range ref {
			if dist[v] != ref[v] {
				t.Fatalf("%v: dist[%d] = %d, want %d", alg, v, dist[v], ref[v])
			}
		}
	}
	if _, err := ShortestPaths(g, 99, SSSPDijkstra); err == nil {
		t.Fatal("out-of-range source accepted")
	}
	if _, err := ShortestPaths(g, 0, SSSPAlgorithm(9)); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestSSSPUnreachable(t *testing.T) {
	g, err := NewWeightedGraph(3, []WeightedEdge{{U: 0, V: 1, W: 2}})
	if err != nil {
		t.Fatal(err)
	}
	dist, err := ShortestPaths(g, 0, SSSPBellmanFordBranchAvoiding)
	if err != nil {
		t.Fatal(err)
	}
	if dist[2] != InfDistance {
		t.Fatalf("isolated vertex distance = %d, want InfDistance", dist[2])
	}
}

func TestSSSPAlgorithmStrings(t *testing.T) {
	for _, a := range []SSSPAlgorithm{SSSPBellmanFord, SSSPBellmanFordBranchAvoiding, SSSPDijkstra} {
		if strings.HasPrefix(a.String(), "SSSPAlgorithm(") {
			t.Fatalf("missing name for %d", a)
		}
	}
}

func TestBetweennessFacade(t *testing.T) {
	// Path of 5: interior vertices have positive centrality, endpoints 0.
	g, _ := NewGraph(5, []Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4}})
	bb := Betweenness(g, false)
	ba := Betweenness(g, true)
	for v := range bb {
		if bb[v] != ba[v] {
			t.Fatalf("variants differ at %d", v)
		}
	}
	if bb[0] != 0 || bb[2] <= bb[1] == false && bb[2] != 4 {
		t.Fatalf("path centralities: %v", bb)
	}
	if bb[2] != 4 { // middle of P5: pairs {0,3},{0,4},{1,3},{1,4}
		t.Fatalf("bc[2] = %v, want 4", bb[2])
	}
}

func TestAllPairsSummaryFacade(t *testing.T) {
	g := ring(t, 10)
	a, err := AllPairsSummary(g, BFSBranchBased)
	if err != nil {
		t.Fatal(err)
	}
	b, err := AllPairsSummary(g, BFSBranchAvoiding)
	if err != nil {
		t.Fatal(err)
	}
	if a.Diameter != 5 || b.Diameter != 5 {
		t.Fatalf("ring diameter = %d/%d, want 5", a.Diameter, b.Diameter)
	}
	if a.MeanDistance != b.MeanDistance {
		t.Fatal("summaries differ between variants")
	}
	if _, err := AllPairsSummary(g, BFSDirectionOptimizing); err == nil {
		t.Fatal("unsupported variant accepted")
	}
}

func TestRunExtensionsExperiment(t *testing.T) {
	var sb strings.Builder
	err := RunExperiment("extensions", &sb, ExperimentOptions{Scale: 0.004})
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Bellman-Ford", "betweenness", "APSP"} {
		if !strings.Contains(out, want) {
			t.Errorf("extensions output missing %q", want)
		}
	}
}

// TestExtensionsErrorPaths pins the extension facade's rejections:
// source validation, unknown enum values, unsupported APSP variants.
func TestExtensionsErrorPaths(t *testing.T) {
	w := weightedRing(t, 6)
	if _, err := ShortestPaths(w, 6, SSSPDijkstra); err == nil {
		t.Fatal("out-of-range source accepted")
	}
	if _, err := ShortestPaths(w, 0, SSSPAlgorithm(99)); err == nil {
		t.Fatal("unknown SSSP algorithm accepted")
	}
	if _, err := ShortestPaths(w, 0, SSSPHybrid); err == nil {
		t.Fatal("hybrid accepted by the sequential facade (it exists only in the parallel kernel)")
	}
	g := ring(t, 6)
	if _, err := AllPairsSummary(g, BFSDirectionOptimizing); err == nil {
		t.Fatal("unsupported APSP variant accepted")
	}
}

// TestShortestPathsParallelFacade checks the parallel SSSP facade:
// every parallel-capable algorithm matches the sequential oracle, and
// the rejections (Dijkstra has no parallel form, unknown enums,
// out-of-range sources) hold on both the package-level entry point and
// the WorkerPool method.
func TestShortestPathsParallelFacade(t *testing.T) {
	w := testutil.RandomWeighted(250, 800, 40, 5)
	want, err := ShortestPaths(w, 4, SSSPDijkstra)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []SSSPAlgorithm{SSSPBellmanFord, SSSPBellmanFordBranchAvoiding, SSSPHybrid} {
		got, err := ShortestPathsParallel(w, 4, alg, 3)
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		testutil.MustEqualDists(t, alg.String(), got, want)
	}
	if _, err := ShortestPathsParallel(w, 4, SSSPDijkstra, 2); err == nil {
		t.Fatal("dijkstra accepted by the parallel facade")
	}
	if _, err := ShortestPathsParallel(w, 4, SSSPAlgorithm(99), 2); err == nil {
		t.Fatal("unknown algorithm accepted by the parallel facade")
	}
	if _, err := ShortestPathsParallel(w, 9999, SSSPHybrid, 2); err == nil {
		t.Fatal("out-of-range source accepted by the parallel facade")
	}

	pool := NewWorkerPool(2)
	defer pool.Close()
	buf := make([]uint64, w.NumVertices())
	got, err := pool.ShortestPaths(w, 4, SSSPHybrid, buf)
	if err != nil {
		t.Fatal(err)
	}
	if &got[0] != &buf[0] {
		t.Fatal("pool SSSP result does not alias the caller buffer")
	}
	testutil.MustEqualDists(t, "pool/hybrid", got, want)
	if _, err := pool.ShortestPaths(w, 4, SSSPDijkstra, nil); err == nil {
		t.Fatal("dijkstra accepted by the pool facade")
	}
	if _, err := pool.ShortestPaths(w, 9999, SSSPHybrid, nil); err == nil {
		t.Fatal("out-of-range source accepted by the pool facade")
	}
}

// TestShortestHopsMultiSourceFacade checks the batch BFS facade: the
// shared-sweep results match per-source parallel BFS, root validation
// covers every batch member, and the pool method honors its buffers.
func TestShortestHopsMultiSourceFacade(t *testing.T) {
	g := ring(t, 30)
	roots := []uint32{0, 7, 7, 29}
	dists, err := ShortestHopsMultiSource(g, roots, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range roots {
		want, err := ShortestHops(g, r, BFSBranchBased)
		if err != nil {
			t.Fatal(err)
		}
		testutil.MustEqualDists(t, "multi-source", dists[i], want)
	}
	if _, err := ShortestHopsMultiSource(g, []uint32{0, 99}, 2); err == nil {
		t.Fatal("out-of-range batch member accepted")
	}

	pool := NewWorkerPool(2)
	defer pool.Close()
	bufs := make([][]uint32, len(roots))
	for i := range bufs {
		bufs[i] = make([]uint32, g.NumVertices())
	}
	got, err := pool.ShortestHopsBatch(g, roots, bufs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if &got[i][0] != &bufs[i][0] {
			t.Fatalf("batch result %d does not alias the caller buffer", i)
		}
		testutil.MustEqualDists(t, "pool batch", got[i], dists[i])
	}
	if _, err := pool.ShortestHopsBatch(g, []uint32{99}, nil); err == nil {
		t.Fatal("out-of-range batch member accepted by the pool facade")
	}
}

// TestShortestPathsIntoAndAttachWeights covers the reusable-buffer SSSP
// entry point and the weighted-view constructor the daemon uses.
func TestShortestPathsIntoAndAttachWeights(t *testing.T) {
	g := ring(t, 10)
	w, err := AttachWeights(g, func(u, v uint32) uint32 { return 1 })
	if err != nil {
		t.Fatal(err)
	}
	want, err := ShortestPaths(w, 0, SSSPDijkstra)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]uint64, 10)
	for _, alg := range []SSSPAlgorithm{SSSPBellmanFord, SSSPBellmanFordBranchAvoiding, SSSPDijkstra} {
		got, err := ShortestPathsInto(w, 0, alg, buf)
		if err != nil {
			t.Fatal(err)
		}
		if &got[0] != &buf[0] {
			t.Fatalf("%v: result does not alias the caller buffer", alg)
		}
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("%v: dist[%d] = %d, want %d", alg, v, got[v], want[v])
			}
		}
	}
	// A wrong-size buffer allocates instead of clobbering.
	small := make([]uint64, 3)
	got, err := ShortestPathsInto(w, 0, SSSPDijkstra, small)
	if err != nil || len(got) != 10 {
		t.Fatalf("wrong-size buffer: len=%d err=%v", len(got), err)
	}
	// Asymmetric weight functions are rejected on undirected graphs.
	if _, err := AttachWeights(g, func(u, v uint32) uint32 { return u + 1 }); err == nil {
		t.Fatal("asymmetric weights accepted")
	}
}
