package bagraph

import (
	"strings"
	"testing"
)

func weightedRing(t *testing.T, n int) *WeightedGraph {
	t.Helper()
	edges := make([]WeightedEdge, n)
	for i := 0; i < n; i++ {
		edges[i] = WeightedEdge{U: uint32(i), V: uint32((i + 1) % n), W: uint32(i%3 + 1)}
	}
	g, err := NewWeightedGraph(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestShortestPathsAllAlgorithms(t *testing.T) {
	g := weightedRing(t, 24)
	var ref []uint64
	for _, alg := range []SSSPAlgorithm{SSSPBellmanFord, SSSPBellmanFordBranchAvoiding, SSSPDijkstra} {
		dist, err := ShortestPaths(g, 0, alg)
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if dist[0] != 0 {
			t.Fatalf("%v: dist[src] = %d", alg, dist[0])
		}
		if ref == nil {
			ref = dist
			continue
		}
		for v := range ref {
			if dist[v] != ref[v] {
				t.Fatalf("%v: dist[%d] = %d, want %d", alg, v, dist[v], ref[v])
			}
		}
	}
	if _, err := ShortestPaths(g, 99, SSSPDijkstra); err == nil {
		t.Fatal("out-of-range source accepted")
	}
	if _, err := ShortestPaths(g, 0, SSSPAlgorithm(9)); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestSSSPUnreachable(t *testing.T) {
	g, err := NewWeightedGraph(3, []WeightedEdge{{U: 0, V: 1, W: 2}})
	if err != nil {
		t.Fatal(err)
	}
	dist, err := ShortestPaths(g, 0, SSSPBellmanFordBranchAvoiding)
	if err != nil {
		t.Fatal(err)
	}
	if dist[2] != InfDistance {
		t.Fatalf("isolated vertex distance = %d, want InfDistance", dist[2])
	}
}

func TestSSSPAlgorithmStrings(t *testing.T) {
	for _, a := range []SSSPAlgorithm{SSSPBellmanFord, SSSPBellmanFordBranchAvoiding, SSSPDijkstra} {
		if strings.HasPrefix(a.String(), "SSSPAlgorithm(") {
			t.Fatalf("missing name for %d", a)
		}
	}
}

func TestBetweennessFacade(t *testing.T) {
	// Path of 5: interior vertices have positive centrality, endpoints 0.
	g, _ := NewGraph(5, []Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4}})
	bb := Betweenness(g, false)
	ba := Betweenness(g, true)
	for v := range bb {
		if bb[v] != ba[v] {
			t.Fatalf("variants differ at %d", v)
		}
	}
	if bb[0] != 0 || bb[2] <= bb[1] == false && bb[2] != 4 {
		t.Fatalf("path centralities: %v", bb)
	}
	if bb[2] != 4 { // middle of P5: pairs {0,3},{0,4},{1,3},{1,4}
		t.Fatalf("bc[2] = %v, want 4", bb[2])
	}
}

func TestAllPairsSummaryFacade(t *testing.T) {
	g := ring(t, 10)
	a, err := AllPairsSummary(g, BFSBranchBased)
	if err != nil {
		t.Fatal(err)
	}
	b, err := AllPairsSummary(g, BFSBranchAvoiding)
	if err != nil {
		t.Fatal(err)
	}
	if a.Diameter != 5 || b.Diameter != 5 {
		t.Fatalf("ring diameter = %d/%d, want 5", a.Diameter, b.Diameter)
	}
	if a.MeanDistance != b.MeanDistance {
		t.Fatal("summaries differ between variants")
	}
	if _, err := AllPairsSummary(g, BFSDirectionOptimizing); err == nil {
		t.Fatal("unsupported variant accepted")
	}
}

func TestRunExtensionsExperiment(t *testing.T) {
	var sb strings.Builder
	err := RunExperiment("extensions", &sb, ExperimentOptions{Scale: 0.004})
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Bellman-Ford", "betweenness", "APSP"} {
		if !strings.Contains(out, want) {
			t.Errorf("extensions output missing %q", want)
		}
	}
}

// TestExtensionsErrorPaths pins the extension facade's rejections:
// source validation, unknown enum values, unsupported APSP variants.
func TestExtensionsErrorPaths(t *testing.T) {
	w := weightedRing(t, 6)
	if _, err := ShortestPaths(w, 6, SSSPDijkstra); err == nil {
		t.Fatal("out-of-range source accepted")
	}
	if _, err := ShortestPaths(w, 0, SSSPAlgorithm(99)); err == nil {
		t.Fatal("unknown SSSP algorithm accepted")
	}
	g := ring(t, 6)
	if _, err := AllPairsSummary(g, BFSDirectionOptimizing); err == nil {
		t.Fatal("unsupported APSP variant accepted")
	}
}

// TestShortestPathsIntoAndAttachWeights covers the reusable-buffer SSSP
// entry point and the weighted-view constructor the daemon uses.
func TestShortestPathsIntoAndAttachWeights(t *testing.T) {
	g := ring(t, 10)
	w, err := AttachWeights(g, func(u, v uint32) uint32 { return 1 })
	if err != nil {
		t.Fatal(err)
	}
	want, err := ShortestPaths(w, 0, SSSPDijkstra)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]uint64, 10)
	for _, alg := range []SSSPAlgorithm{SSSPBellmanFord, SSSPBellmanFordBranchAvoiding, SSSPDijkstra} {
		got, err := ShortestPathsInto(w, 0, alg, buf)
		if err != nil {
			t.Fatal(err)
		}
		if &got[0] != &buf[0] {
			t.Fatalf("%v: result does not alias the caller buffer", alg)
		}
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("%v: dist[%d] = %d, want %d", alg, v, got[v], want[v])
			}
		}
	}
	// A wrong-size buffer allocates instead of clobbering.
	small := make([]uint64, 3)
	got, err := ShortestPathsInto(w, 0, SSSPDijkstra, small)
	if err != nil || len(got) != 10 {
		t.Fatalf("wrong-size buffer: len=%d err=%v", len(got), err)
	}
	// Asymmetric weight functions are rejected on undirected graphs.
	if _, err := AttachWeights(g, func(u, v uint32) uint32 { return u + 1 }); err == nil {
		t.Fatal("asymmetric weights accepted")
	}
}
