// Package algoreq is the single translation table from canonical
// kernel-algorithm names — the vocabulary the bacc/babfs/basssp
// command lines and the daemon's query bodies share — to the facade
// Requests the unified bagraph.Run API executes. The CLIs and
// internal/serve both dispatch through it, so adding or renaming a
// kernel variant is a one-place change and the daemon stays
// byte-identical to the command-line kernels by construction.
package algoreq

import (
	"fmt"

	"bagraph"
)

// CC translates a canonical connected-components algorithm name.
func CC(algo string) (bagraph.Request, error) {
	req := bagraph.Request{Kind: bagraph.KindCC}
	switch algo {
	case "sv-bb":
		req.CC = bagraph.CCBranchBased
	case "sv-ba":
		req.CC = bagraph.CCBranchAvoiding
	case "hybrid":
		req.CC = bagraph.CCHybrid
	case "unionfind":
		req.CC = bagraph.CCUnionFind
	case "par-bb":
		req.CC, req.Parallel = bagraph.CCBranchBased, true
	case "par-ba":
		req.CC, req.Parallel = bagraph.CCBranchAvoiding, true
	case "par-hybrid":
		req.CC, req.Parallel = bagraph.CCHybrid, true
	default:
		return req, fmt.Errorf("unknown CC algorithm %q", algo)
	}
	return req, nil
}

// BFS translates a canonical BFS variant name. "ms" has no
// single-source form — a batch of sources becomes one KindBFSBatch
// request — so it is rejected here.
func BFS(algo string, root uint32) (bagraph.Request, error) {
	req := bagraph.Request{Kind: bagraph.KindBFS, Root: root}
	switch algo {
	case "bb":
		req.BFS = bagraph.BFSBranchBased
	case "ba":
		req.BFS = bagraph.BFSBranchAvoiding
	case "dir-opt":
		req.BFS = bagraph.BFSDirectionOptimizing
	case "par-do":
		req.Parallel = true
	default:
		return req, fmt.Errorf("unknown BFS variant %q", algo)
	}
	return req, nil
}

// SSSP translates a canonical SSSP algorithm name. delta is the
// delta-stepping bucket width for the par-* kernels (0 = kernel
// default); long-lived callers pass a per-graph cached value to skip
// the per-query weight sweep.
func SSSP(algo string, root uint32, delta uint64) (bagraph.Request, error) {
	req := bagraph.Request{Kind: bagraph.KindSSSP, Root: root}
	switch algo {
	case "bb":
		req.SSSP = bagraph.SSSPBellmanFord
	case "ba":
		req.SSSP = bagraph.SSSPBellmanFordBranchAvoiding
	case "dijkstra":
		req.SSSP = bagraph.SSSPDijkstra
	case "par-bb":
		req.SSSP, req.Parallel, req.Delta = bagraph.SSSPBellmanFord, true, delta
	case "par-ba":
		req.SSSP, req.Parallel, req.Delta = bagraph.SSSPBellmanFordBranchAvoiding, true, delta
	case "par-hybrid":
		req.SSSP, req.Parallel, req.Delta = bagraph.SSSPHybrid, true, delta
	default:
		return req, fmt.Errorf("unknown SSSP algorithm %q", algo)
	}
	return req, nil
}
