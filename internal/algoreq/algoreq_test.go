package algoreq

import (
	"strings"
	"testing"

	"bagraph"
)

func TestCCMappings(t *testing.T) {
	cases := map[string]struct {
		alg      bagraph.CCAlgorithm
		parallel bool
	}{
		"sv-bb":      {bagraph.CCBranchBased, false},
		"sv-ba":      {bagraph.CCBranchAvoiding, false},
		"hybrid":     {bagraph.CCHybrid, false},
		"unionfind":  {bagraph.CCUnionFind, false},
		"par-bb":     {bagraph.CCBranchBased, true},
		"par-ba":     {bagraph.CCBranchAvoiding, true},
		"par-hybrid": {bagraph.CCHybrid, true},
	}
	for name, want := range cases {
		req, err := CC(name)
		if err != nil {
			t.Fatalf("CC(%q): %v", name, err)
		}
		if req.Kind != bagraph.KindCC || req.CC != want.alg || req.Parallel != want.parallel {
			t.Errorf("CC(%q) = %+v", name, req)
		}
	}
	if _, err := CC("nope"); err == nil || !strings.Contains(err.Error(), "nope") {
		t.Errorf("CC(nope) = %v, want error naming it", err)
	}
}

func TestBFSMappings(t *testing.T) {
	for name, wantPar := range map[string]bool{"bb": false, "ba": false, "dir-opt": false, "par-do": true} {
		req, err := BFS(name, 7)
		if err != nil {
			t.Fatalf("BFS(%q): %v", name, err)
		}
		if req.Kind != bagraph.KindBFS || req.Root != 7 || req.Parallel != wantPar {
			t.Errorf("BFS(%q) = %+v", name, req)
		}
	}
	// The multi-source kernel has no single-source request form.
	if _, err := BFS("ms", 0); err == nil {
		t.Error("BFS(ms) accepted; batches must go through KindBFSBatch")
	}
}

func TestSSSPMappings(t *testing.T) {
	for name, want := range map[string]struct {
		alg      bagraph.SSSPAlgorithm
		parallel bool
	}{
		"bb":         {bagraph.SSSPBellmanFord, false},
		"ba":         {bagraph.SSSPBellmanFordBranchAvoiding, false},
		"dijkstra":   {bagraph.SSSPDijkstra, false},
		"par-bb":     {bagraph.SSSPBellmanFord, true},
		"par-ba":     {bagraph.SSSPBellmanFordBranchAvoiding, true},
		"par-hybrid": {bagraph.SSSPHybrid, true},
	} {
		req, err := SSSP(name, 3, 16)
		if err != nil {
			t.Fatalf("SSSP(%q): %v", name, err)
		}
		if req.Kind != bagraph.KindSSSP || req.Root != 3 || req.SSSP != want.alg || req.Parallel != want.parallel {
			t.Errorf("SSSP(%q) = %+v", name, req)
		}
		// Delta only matters to (and is only set for) the delta-stepping
		// kernels.
		if wantDelta := uint64(0); want.parallel {
			wantDelta = 16
			if req.Delta != wantDelta {
				t.Errorf("SSSP(%q).Delta = %d, want %d", name, req.Delta, wantDelta)
			}
		} else if req.Delta != 0 {
			t.Errorf("SSSP(%q).Delta = %d, want 0", name, req.Delta)
		}
	}
	if _, err := SSSP("nope", 0, 0); err == nil {
		t.Error("SSSP(nope) accepted")
	}
}
