// Package bounds implements the paper's analytic misprediction bounds —
// the black reference lines of Fig. 9.
//
// All bounds assume the 2-bit predictor model of §3 and are expressed in
// total mispredictions for a complete kernel run.
//
// Shiloach-Vishkin (§4.1): with d passes of the while loop over a graph
// with |V| vertices,
//
//   - the while test contributes at most 3 misses (lemma 2, d+1 evals);
//   - the per-vertex for loop is one repeated loop executed d times:
//     at most d+2 misses (lemma 3);
//   - the neighbor for loop is executed |V| times per pass: ≈ |V| misses
//     per pass (corollary 1), d·(|V|+... ) in total;
//   - the if has no input-independent bound (it is the term the
//     branch-avoiding algorithm eliminates).
//
// The lower bound used to normalize Fig. 9(a) is therefore the loop
// floor: d·|V| + d + 3 — what an ideal branch-avoiding kernel cannot go
// below, since every adjacency-list exit costs about one miss.
//
// BFS (§5.1): for a traversal reaching |V̂| vertices, the while loop is
// O(1), the neighbor for loop contributes ≈ |V̂| misses, and the if
// contributes between 0 (perfectly predictable) and ≈ 2·|V̂| (oscillating
// between the weak states). The paper's Fig. 9(b) lower bound is |V̂| and
// the upper bound 3·|V̂| + O(1).
package bounds

// SVLowerBound returns the misprediction floor for a Shiloach-Vishkin run
// with the given vertex count and number of while-loop passes: the
// loop-structure misses that remain after all data-dependent branches are
// eliminated.
func SVLowerBound(numVertices, passes int) uint64 {
	if numVertices < 0 || passes < 0 {
		panic("bounds: negative arguments")
	}
	return uint64(passes)*uint64(numVertices) + uint64(passes) + 3
}

// BFSLowerBound returns the misprediction floor for a top-down BFS that
// reached the given number of vertices: ≈ one neighbor-loop exit miss per
// dequeued vertex (§5.1), plus the O(1) while-loop misses.
func BFSLowerBound(reached int) uint64 {
	if reached < 0 {
		panic("bounds: negative reached count")
	}
	return uint64(reached) + 3
}

// BFSUpperBound returns the paper's upper bound for the branch-based
// top-down BFS: the for-loop's ≈|V̂| misses plus up to 2·|V̂| from the
// discovery if oscillating between weak predictor states — 3·|V̂| + O(1)
// in total.
func BFSUpperBound(reached int) uint64 {
	if reached < 0 {
		panic("bounds: negative reached count")
	}
	return 3*uint64(reached) + 8
}

// Ratio returns observed/bound as a float, the normalization used by both
// panels of Fig. 9. A zero bound yields 0.
func Ratio(observed, bound uint64) float64 {
	if bound == 0 {
		return 0
	}
	return float64(observed) / float64(bound)
}
