package bounds

import (
	"testing"

	"bagraph/internal/corpus"
	"bagraph/internal/simkern"

	"bagraph/internal/gen"
	"bagraph/internal/perfsim"
	"bagraph/internal/uarch"
)

func TestBoundFormulas(t *testing.T) {
	if got := SVLowerBound(100, 5); got != 5*100+5+3 {
		t.Fatalf("SVLowerBound = %d", got)
	}
	if got := BFSLowerBound(100); got != 103 {
		t.Fatalf("BFSLowerBound = %d", got)
	}
	if got := BFSUpperBound(100); got != 308 {
		t.Fatalf("BFSUpperBound = %d", got)
	}
}

func TestBoundsPanicOnNegative(t *testing.T) {
	for name, f := range map[string]func(){
		"sv":    func() { SVLowerBound(-1, 1) },
		"bfslo": func() { BFSLowerBound(-1) },
		"bfshi": func() { BFSUpperBound(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestRatio(t *testing.T) {
	if Ratio(300, 100) != 3 {
		t.Fatal("Ratio wrong")
	}
	if Ratio(5, 0) != 0 {
		t.Fatal("zero bound not handled")
	}
}

func machine() *perfsim.Machine {
	m, _ := uarch.ByName("Haswell")
	return perfsim.NewDefault(m)
}

// TestSVBoundsHold reproduces Fig. 9(a)'s structure on simulated runs:
// the branch-avoiding kernel sits near the lower bound (ratio ≈ 1)
// while the branch-based kernel sits clearly above it.
func TestSVBoundsHold(t *testing.T) {
	for _, d := range corpus.All() {
		g := d.Generate(0.003, 7)
		rBB := simkern.SVBranchBased(machine(), g)
		rBA := simkern.SVBranchAvoiding(machine(), g)
		lb := SVLowerBound(g.NumVertices(), rBA.Iterations)

		baRatio := Ratio(rBA.PerIter.Total().Mispredicts, lb)
		bbRatio := Ratio(rBB.PerIter.Total().Mispredicts, lb)

		if baRatio > 1.2 || baRatio < 0.3 {
			t.Errorf("%s: branch-avoiding SV at %.2f× lower bound, want ≈1", d.Name, baRatio)
		}
		if bbRatio <= baRatio {
			t.Errorf("%s: branch-based SV (%.2f×) not above branch-avoiding (%.2f×)", d.Name, bbRatio, baRatio)
		}
	}
}

// TestBFSBoundsHold reproduces Fig. 9(b): branch-avoiding BFS near the
// lower bound, branch-based between the bounds (with modest slack for the
// O(1) terms the paper's bound absorbs).
func TestBFSBoundsHold(t *testing.T) {
	for _, d := range corpus.All() {
		g := d.Generate(0.003, 7)
		rBB := simkern.BFSBranchBased(machine(), g, 0)
		rBA := simkern.BFSBranchAvoiding(machine(), g, 0)

		lb := BFSLowerBound(rBB.Reached)
		ub := BFSUpperBound(rBB.Reached)

		baM := rBA.PerLevel.Total().Mispredicts
		bbM := rBB.PerLevel.Total().Mispredicts

		if r := Ratio(baM, lb); r > 1.25 {
			t.Errorf("%s: branch-avoiding BFS at %.2f× lower bound", d.Name, r)
		}
		if bbM <= baM {
			t.Errorf("%s: branch-based BFS mispredicts (%d) not above branch-avoiding (%d)", d.Name, bbM, baM)
		}
		if bbM > ub+ub/10 {
			t.Errorf("%s: branch-based BFS mispredicts %d exceed upper bound %d", d.Name, bbM, ub)
		}
	}
}

// TestSVBoundTracksPasses: the bound scales linearly with passes, so a
// high-diameter graph (more passes) has a proportionally larger floor.
func TestSVBoundTracksPasses(t *testing.T) {
	g := gen.Path(300)
	r := simkern.SVBranchAvoiding(machine(), g)
	lb := SVLowerBound(g.NumVertices(), r.Iterations)
	got := r.PerIter.Total().Mispredicts
	if ratio := Ratio(got, lb); ratio > 1.2 || ratio < 0.3 {
		t.Fatalf("path graph BA ratio %.2f (misses %d, bound %d)", ratio, got, lb)
	}
}
