package cc

// Parallel Shiloach-Vishkin label propagation on the internal/par engine.
//
// The sequential kernels in cc.go propagate labels Gauss-Seidel style: a
// label improved early in a pass is visible to later vertices of the same
// pass. That in-pass dependency is what a parallel sweep must give up, so
// SVParallel iterates Jacobi style over two label arrays: every worker
// reads the previous pass's labels (immutable during the pass) and writes
// only the labels of its own vertex range in the next array; the arrays
// swap at the pass barrier. Reads and writes therefore never touch the
// same array and no per-element atomic is needed — the pass barrier is
// the only synchronization. Jacobi iteration may need more passes than
// Gauss-Seidel (label information moves one hop per pass instead of
// rippling within a pass), but it converges to the identical fixed point:
// labels only decrease, and a labeling is stable exactly when both
// endpoints of every edge agree, which forces the canonical component
// minimum.
//
// One consequence is shared by all three inner-loop variants: because the
// write array is two passes stale, every vertex's label is stored
// unconditionally each pass, so LabelStores is Iterations × |V| even for
// the branch-based loop (whose *comparisons* still branch — the property
// the paper measures).

import (
	"context"
	"time"

	"bagraph/internal/core"
	"bagraph/internal/graph"
	"bagraph/internal/par"
)

// Variant selects the inner loop of SVParallel.
type Variant int

const (
	// BranchBased compares labels with a conditional branch per edge
	// (the paper's Algorithm 2 comparison).
	BranchBased Variant = iota
	// BranchAvoiding computes the label minimum with arithmetic masks
	// (Algorithm 3): no data-dependent branch in the pass.
	BranchAvoiding
	// Hybrid runs branch-avoiding passes while labels churn and switches
	// to the branch-based loop once the per-pass change fraction drops
	// below ParallelOptions.ChangeFraction (the paper's §6.2 crossover).
	Hybrid
)

// String implements fmt.Stringer.
func (v Variant) String() string {
	switch v {
	case BranchBased:
		return "branch-based"
	case BranchAvoiding:
		return "branch-avoiding"
	case Hybrid:
		return "hybrid"
	default:
		return "unknown"
	}
}

// ParallelOptions configures SVParallel.
type ParallelOptions struct {
	// Ctx, when non-nil, cancels the run cooperatively: it is observed
	// at each pass barrier (workers never see it, staying atomic-free)
	// and a cancelled run returns the labels computed so far alongside
	// the context's error.
	Ctx context.Context
	// Workers is the number of concurrent workers; < 1 means GOMAXPROCS.
	Workers int
	// Variant selects the inner loop (default BranchBased).
	Variant Variant
	// ChangeFraction is the Hybrid switch threshold (see HybridOptions);
	// zero means the default of 2%.
	ChangeFraction float64
	// Schedule selects how each pass's chunks reach the workers:
	// par.Static (the default) fixes one arc-balanced block per worker
	// at launch; par.Stealing over-decomposes the vertex set and lets
	// idle workers steal whole chunks from stragglers. Both schedules
	// produce byte-identical labelings.
	Schedule par.Schedule
	// ChunkFactor scales the Stealing schedule's chunks per worker;
	// 0 means par.DefaultChunkFactor. Ignored under par.Static.
	ChunkFactor int
	// Pool, when non-nil, supplies the worker pool (its size overrides
	// Workers). The caller keeps ownership; SVParallel will not close it.
	Pool *par.Pool
	// Labels and Scratch, when of length |V| and distinct, provide the
	// label double-buffer and suppress the per-call allocations. The
	// returned labeling aliases one of them; their prior contents are
	// overwritten. Long-lived callers (the serving layer) reuse these
	// across queries.
	Labels, Scratch []uint32
}

// SVParallel runs data-parallel Shiloach-Vishkin label propagation and
// returns the canonical min-id component labeling, identical to the
// sequential kernels'. Vertex ranges are degree-balanced across workers;
// each pass ends at a barrier where per-worker change counts merge and
// the label buffers swap. A cancelled ParallelOptions.Ctx is observed
// at the next pass barrier and returned as the error.
func SVParallel(g *graph.Graph, opt ParallelOptions) ([]uint32, Stats, error) {
	ctx := opt.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	n := g.NumVertices()
	var st Stats
	if n == 0 {
		return []uint32{}, st, ctx.Err()
	}
	pool := opt.Pool
	if pool == nil {
		pool = par.NewPool(opt.Workers)
		defer pool.Close()
	}
	adj := g.Adjacency()
	offs := g.Offsets()
	// The chunk list is fixed across passes (the graph does not change);
	// what varies under par.Stealing is which worker runs each chunk.
	chunks := par.Partition(offs, par.ChunkCount(pool.Workers(), opt.Schedule, opt.ChunkFactor), 1)

	prev := opt.Labels
	if len(prev) != n {
		prev = make([]uint32, n)
	}
	for i := range prev {
		prev[i] = uint32(i)
	}
	cur := opt.Scratch
	if len(cur) != n || &cur[0] == &prev[0] {
		cur = make([]uint32, n)
	}
	// Change counts, accumulated across a worker's chunks and merged at
	// the barrier. A worker runs its chunks serially, so no atomics.
	perWorker := make([]int, pool.Workers())
	// sink publishes each worker's lookahead accumulator (see the
	// prefetch comment below) so the early loads stay live; written once
	// per chunk, never read.
	sink := make([]uint32, pool.Workers())

	threshold := opt.ChangeFraction
	if threshold == 0 {
		threshold = 0.02
	}
	avoiding := opt.Variant == BranchAvoiding || opt.Variant == Hybrid

	for {
		start := time.Now()
		for t := range perWorker {
			perWorker[t] = 0
		}
		var cst par.ChunkStats
		var err error
		if avoiding {
			//ba:atomic-free
			cst, err = pool.RunChunksCtx(ctx, chunks, opt.Schedule, func(t int, r par.Range) {
				changed := 0
				pf := uint32(0)
				//ba:branch-free
				for v := r.Lo; v < r.Hi; v++ {
					cv := prev[v]
					row := adj[offs[v]:offs[v+1]]
					// Software-prefetch shape: the gather's misses are the
					// dependent prev[row[i]] loads, so issue the load for
					// the edge Lookahead slots ahead before consuming edge
					// i. The accumulator keeps the early load live; both
					// loops stay branch-free (the split bounds replace any
					// data-dependent test).
					i := 0
					for ; i+core.Lookahead < len(row); i++ {
						pf ^= prev[row[i+core.Lookahead]]
						cu := prev[row[i]]
						m := core.MaskLess32(cu, cv)
						cv = core.Select32(m, cu, cv)
					}
					for ; i < len(row); i++ {
						cu := prev[row[i]]
						m := core.MaskLess32(cu, cv)
						cv = core.Select32(m, cu, cv)
					}
					cur[v] = cv
					changed += core.Bit(^core.MaskEqual32(cv^prev[v], 0))
				}
				perWorker[t] += changed
				sink[t] ^= pf
			})
		} else {
			//ba:atomic-free
			cst, err = pool.RunChunksCtx(ctx, chunks, opt.Schedule, func(t int, r par.Range) {
				changed := 0
				for v := r.Lo; v < r.Hi; v++ {
					cv := prev[v]
					for _, u := range adj[offs[v]:offs[v+1]] {
						cu := prev[u]
						if cu < cv {
							cv = cu
						}
					}
					cur[v] = cv
					if cv != prev[v] {
						changed++
					}
				}
				perWorker[t] += changed
			})
		}
		if err != nil {
			// Cancelled at the pass barrier: prev holds the labels of
			// the last completed pass.
			return prev, st, err
		}
		st.Chunks += cst.Chunks
		st.Steals += cst.Steals
		st.StealPasses += cst.StealPasses
		changed := 0
		for _, c := range perWorker {
			changed += c
		}
		st.IterDurations = append(st.IterDurations, time.Since(start))
		st.IterChanges = append(st.IterChanges, changed)
		st.Iterations++
		st.LabelStores += uint64(n)
		prev, cur = cur, prev
		if changed == 0 {
			break
		}
		if opt.Variant == Hybrid && avoiding && float64(changed) < threshold*float64(n) {
			avoiding = false
		}
	}
	return prev, st, nil
}
