package cc

import (
	"testing"
	"testing/quick"

	"bagraph/internal/gen"
	"bagraph/internal/graph"
)

// allVariants runs every CC implementation on g and checks they agree on
// the canonical min-id labeling.
func allVariants(t *testing.T, g *graph.Graph) []uint32 {
	t.Helper()
	bb, stBB := SVBranchBased(g)
	ba, stBA := SVBranchAvoiding(g)
	hyAuto, _ := SVHybrid(g, HybridOptions{SwitchIteration: -1})
	hyForced, _ := SVHybrid(g, HybridOptions{SwitchIteration: 1})
	uf := UnionFind(g)
	ref := ViaBFS(g)

	for name, labels := range map[string][]uint32{
		"sv-branch-based": bb, "sv-branch-avoiding": ba,
		"sv-hybrid-auto": hyAuto, "sv-hybrid-forced": hyForced,
		"union-find": uf,
	} {
		if err := Verify(g, labels); err != nil {
			t.Fatalf("%s on %s: %v", name, g, err)
		}
		for v := range ref {
			if labels[v] != ref[v] {
				t.Fatalf("%s on %s: vertex %d labeled %d, want %d", name, g, v, labels[v], ref[v])
			}
		}
	}
	if stBB.Iterations < 1 || stBA.Iterations < 1 {
		t.Fatal("SV reported zero iterations")
	}
	// Both SV variants make identical label-propagation passes, so the
	// pass counts must agree.
	if stBB.Iterations != stBA.Iterations {
		t.Fatalf("iteration counts differ: BB=%d BA=%d", stBB.Iterations, stBA.Iterations)
	}
	return ref
}

func TestAgreementOnStructuredGraphs(t *testing.T) {
	graphs := []*graph.Graph{
		gen.Path(50),
		gen.Cycle(64),
		gen.Star(100),
		gen.Complete(20),
		gen.Grid2D(12, 17, false),
		gen.Grid3D(5, 6, 7, 1),
		gen.Disconnected(gen.Cycle(9), 5),
		graph.MustBuild(7, nil, graph.Options{Name: "isolated7"}),
	}
	for _, g := range graphs {
		allVariants(t, g)
	}
}

func TestAgreementOnRandomGraphs(t *testing.T) {
	f := func(seed uint64) bool {
		n := 20 + int(seed%200)
		g := gen.GNM(n, int64(n), seed) // sparse: many components
		labels := allVariants(t, g)
		return len(labels) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestComponentCountsKnown(t *testing.T) {
	cases := []struct {
		g    *graph.Graph
		want int
	}{
		{gen.Path(10), 1},
		{gen.Disconnected(gen.Path(4), 6), 6},
		{graph.MustBuild(5, nil, graph.Options{}), 5},
		{gen.Complete(8), 1},
	}
	for _, c := range cases {
		labels, _ := SVBranchAvoiding(c.g)
		if got := CountComponents(labels); got != c.want {
			t.Errorf("%s: components = %d, want %d", c.g, got, c.want)
		}
	}
}

func TestComponentSizes(t *testing.T) {
	g := gen.Disconnected(gen.Cycle(5), 3)
	labels, _ := SVBranchBased(g)
	sizes := ComponentSizes(labels)
	if len(sizes) != 3 {
		t.Fatalf("got %d components", len(sizes))
	}
	for l, s := range sizes {
		if s != 5 {
			t.Errorf("component %d size %d, want 5", l, s)
		}
	}
}

func TestLabelsAreMinIDs(t *testing.T) {
	// Component {0,1,2} and {3,4}: labels must be 0 and 3.
	g := graph.MustBuild(5, []graph.Edge{{U: 2, V: 1}, {U: 1, V: 0}, {U: 4, V: 3}}, graph.Options{})
	labels, _ := SVBranchAvoiding(g)
	want := []uint32{0, 0, 0, 3, 3}
	for v, w := range want {
		if labels[v] != w {
			t.Fatalf("labels = %v, want %v", labels, want)
		}
	}
}

func TestIterationsBoundedByDiameter(t *testing.T) {
	// Label propagation converges in at most diameter+1 passes plus the
	// final no-change pass.
	g := gen.Path(100)
	_, st := SVBranchBased(g)
	d := g.PseudoDiameter()
	if st.Iterations > d+2 {
		t.Fatalf("iterations = %d for diameter %d", st.Iterations, d)
	}
	// The in-place sweep propagates labels in ascending order, so the
	// descending-id path still needs many passes — ensure it is not
	// trivially 1 (guards against accidentally computing min globally).
	rev := gen.Cycle(101)
	_, st2 := SVBranchBased(rev)
	if st2.Iterations < 2 {
		t.Fatalf("cycle converged suspiciously fast: %d passes", st2.Iterations)
	}
}

func TestStatsAccounting(t *testing.T) {
	g := gen.Grid2D(10, 10, false)
	_, bb := SVBranchBased(g)
	_, ba := SVBranchAvoiding(g)
	n := uint64(g.NumVertices())

	// BA stores once per vertex per pass, exactly.
	if want := n * uint64(ba.Iterations); ba.LabelStores != want {
		t.Fatalf("BA stores = %d, want %d", ba.LabelStores, want)
	}
	// BB stores only on improvements; final pass stores nothing.
	if bb.LabelStores == 0 || bb.LabelStores >= n*uint64(bb.Iterations)*4 {
		t.Fatalf("BB stores = %d out of plausible range", bb.LabelStores)
	}
	if len(bb.IterDurations) != bb.Iterations || len(bb.IterChanges) != bb.Iterations {
		t.Fatal("stats slices inconsistent with iteration count")
	}
	// Last pass observes convergence: zero changes.
	if bb.IterChanges[bb.Iterations-1] != 0 {
		t.Fatalf("final pass changed %d labels", bb.IterChanges[bb.Iterations-1])
	}
	if bb.Total() <= 0 {
		t.Fatal("total duration not positive")
	}
}

func TestIterChangesAgreeBetweenVariants(t *testing.T) {
	g := gen.Community(6, 20, 0.4, 30, 11)
	_, bb := SVBranchBased(g)
	_, ba := SVBranchAvoiding(g)
	if len(bb.IterChanges) != len(ba.IterChanges) {
		t.Fatalf("pass counts differ: %d vs %d", len(bb.IterChanges), len(ba.IterChanges))
	}
	for i := range bb.IterChanges {
		if bb.IterChanges[i] != ba.IterChanges[i] {
			t.Fatalf("pass %d: BB changed %d, BA changed %d", i, bb.IterChanges[i], ba.IterChanges[i])
		}
	}
}

func TestHybridSwitchesAndMatches(t *testing.T) {
	g := gen.Grid2D(20, 20, false)
	labels, st := SVHybrid(g, HybridOptions{SwitchIteration: -1, ChangeFraction: 0.5})
	if err := Verify(g, labels); err != nil {
		t.Fatal(err)
	}
	ref, refSt := SVBranchBased(g)
	for v := range ref {
		if labels[v] != ref[v] {
			t.Fatal("hybrid labels differ from reference")
		}
	}
	if st.Iterations != refSt.Iterations {
		t.Fatalf("hybrid iterations %d != %d", st.Iterations, refSt.Iterations)
	}
}

func TestHybridForcedAtZeroIsBranchBased(t *testing.T) {
	g := gen.Community(4, 15, 0.5, 10, 3)
	labels, st := SVHybrid(g, HybridOptions{SwitchIteration: 0})
	if err := Verify(g, labels); err != nil {
		t.Fatal(err)
	}
	_, bb := SVBranchBased(g)
	if st.LabelStores != bb.LabelStores {
		t.Fatalf("forced-BB hybrid stores %d != branch-based %d", st.LabelStores, bb.LabelStores)
	}
}

func TestVerifyCatchesBadLabelings(t *testing.T) {
	g := gen.Path(6)
	good, _ := SVBranchBased(g)
	if err := Verify(g, good); err != nil {
		t.Fatalf("good labels rejected: %v", err)
	}
	bad := make([]uint32, len(good))
	copy(bad, good)
	bad[3] = 99
	if err := Verify(g, bad); err == nil {
		t.Fatal("edge-spanning mismatch not caught")
	}
	// Consistent but non-canonical labeling (all vertices share label 1).
	uniform := []uint32{1, 1, 1, 1, 1, 1}
	if err := Verify(g, uniform); err == nil {
		t.Fatal("non-canonical labeling not caught")
	}
	if err := Verify(g, good[:3]); err == nil {
		t.Fatal("wrong length not caught")
	}
}

func TestEmptyGraph(t *testing.T) {
	g := graph.MustBuild(0, nil, graph.Options{})
	labels, st := SVBranchBased(g)
	if len(labels) != 0 || st.Iterations != 1 {
		t.Fatalf("empty graph: labels=%v iterations=%d", labels, st.Iterations)
	}
	labels2, _ := SVBranchAvoiding(g)
	if len(labels2) != 0 {
		t.Fatal("empty graph BA labels non-empty")
	}
}

func TestSingleVertex(t *testing.T) {
	g := graph.MustBuild(1, nil, graph.Options{})
	for _, fn := range []func(*graph.Graph) ([]uint32, Stats){SVBranchBased, SVBranchAvoiding} {
		labels, _ := fn(g)
		if len(labels) != 1 || labels[0] != 0 {
			t.Fatalf("single vertex labels = %v", labels)
		}
	}
}
