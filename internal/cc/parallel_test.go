package cc

import (
	"fmt"
	"testing"

	"bagraph/internal/gen"
	"bagraph/internal/graph"
	"bagraph/internal/par"
	"bagraph/internal/testutil"
)

func TestSVParallelMatchesSequential(t *testing.T) {
	testutil.ForEachGraph(t, nil, func(t *testing.T, g *graph.Graph) {
		ref, _ := SVBranchBased(g)
		for _, variant := range []Variant{BranchBased, BranchAvoiding, Hybrid} {
			for _, workers := range testutil.WorkerCounts {
				name := fmt.Sprintf("%s/w%d", variant, workers)
				labels, st, _ := SVParallel(g, ParallelOptions{Workers: workers, Variant: variant})
				testutil.MustEqualLabels(t, name, labels, ref)
				if g.NumVertices() > 0 {
					if err := Verify(g, labels); err != nil {
						t.Fatalf("%s: %v", name, err)
					}
					if st.Iterations == 0 {
						t.Fatalf("%s: no passes recorded", name)
					}
					if st.IterChanges[len(st.IterChanges)-1] != 0 {
						t.Fatalf("%s: final pass still changed labels", name)
					}
				}
			}
		}
	})
}

func TestSVParallelSharedPool(t *testing.T) {
	pool := par.NewPool(4)
	defer pool.Close()
	g := gen.RMAT(10, 8, gen.DefaultRMAT, 7)
	ref, _ := SVBranchBased(g)
	// Reuse one pool across runs; the kernel must not close it.
	for run := 0; run < 3; run++ {
		labels, _, _ := SVParallel(g, ParallelOptions{Pool: pool, Variant: Hybrid})
		for v := range labels {
			if labels[v] != ref[v] {
				t.Fatalf("run %d: vertex %d labeled %d, want %d", run, v, labels[v], ref[v])
			}
		}
	}
}

func TestVariantString(t *testing.T) {
	for v, want := range map[Variant]string{
		BranchBased: "branch-based", BranchAvoiding: "branch-avoiding",
		Hybrid: "hybrid", Variant(42): "unknown",
	} {
		if got := v.String(); got != want {
			t.Errorf("Variant(%d).String() = %q, want %q", int(v), got, want)
		}
	}
}

func TestTalliesMatchParallelLabels(t *testing.T) {
	g := gen.Disconnected(gen.GNM(400, 700, 9), 3)
	labels, _, _ := SVParallel(g, ParallelOptions{Workers: 4, Variant: BranchAvoiding})
	want := make(map[uint32]int)
	for _, l := range labels {
		want[l]++
	}
	if got := CountComponents(labels); got != len(want) {
		t.Fatalf("CountComponents = %d, want %d", got, len(want))
	}
	sizes := ComponentSizes(labels)
	if len(sizes) != len(want) {
		t.Fatalf("ComponentSizes has %d entries, want %d", len(sizes), len(want))
	}
	for l, s := range want {
		if sizes[l] != s {
			t.Errorf("component %d: size %d, want %d", l, sizes[l], s)
		}
	}
}
