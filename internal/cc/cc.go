// Package cc implements connected-components kernels: the paper's
// Shiloach-Vishkin label-propagation algorithm in branch-based
// (Algorithm 2) and branch-avoiding (Algorithm 3) forms, the hybrid
// algorithm the paper's §6.2 proposes, and two independent baselines
// (union-find and BFS labeling) used to cross-validate results.
//
// All SV variants converge to the same canonical labeling: every vertex
// carries the minimum vertex id of its connected component.
//
// Two deliberate deviations from the paper's pseudocode, both documented
// here because they affect instruction counts, not results:
//
//  1. Algorithm 2 compares cu ≤ cv; taken literally with the change flag
//     set inside the branch the loop never terminates (equal labels keep
//     signalling change). We use the strict cu < cv, which is what any
//     working implementation (including the paper's measured assembly,
//     judging by its termination) must do.
//  2. Algorithm 2 never refreshes cv after a label improvement; we keep
//     cv current (cv ← cu on the taken path), matching the "minimum label
//     among itself and its neighbors" semantics stated in the text.
package cc

import (
	"context"
	"fmt"
	"time"

	"bagraph/internal/core"
	"bagraph/internal/graph"
)

// Stats describes one SV run.
type Stats struct {
	// Iterations is the number of passes of the outer while loop,
	// including the final pass that observes no change.
	Iterations int
	// IterDurations holds the wall-clock time of each pass.
	IterDurations []time.Duration
	// IterChanges holds the number of vertices whose label changed in
	// each pass.
	IterChanges []int
	// LabelStores counts writes to the label array.
	LabelStores uint64
	// Chunks, Steals and StealPasses describe the parallel kernel's
	// chunk scheduling across all passes: chunks executed, chunks run
	// by a worker that did not own them, and victim-selection scans
	// (see par.ChunkStats). Chunks is zero only for the sequential
	// kernels; Steals and StealPasses are also zero under par.Static.
	Chunks      int
	Steals      uint64
	StealPasses uint64
}

// Total returns the summed wall-clock time of all passes.
func (s Stats) Total() time.Duration {
	var t time.Duration
	for _, d := range s.IterDurations {
		t += d
	}
	return t
}

func initLabels(n int) []uint32 {
	labels := make([]uint32, n)
	for i := range labels {
		labels[i] = uint32(i)
	}
	return labels
}

// SVBranchBased runs the branch-based Shiloach-Vishkin kernel
// (Algorithm 2): the inner loop branches on every label comparison.
func SVBranchBased(g *graph.Graph) ([]uint32, Stats) {
	labels, st, _ := SVBranchBasedCtx(context.Background(), g)
	return labels, st
}

// SVBranchBasedCtx is SVBranchBased with cooperative cancellation: the
// context is observed between passes (never inside the inner loop,
// which stays exactly the paper's operation mix), and a cancelled run
// returns the labels computed so far alongside ctx's error.
func SVBranchBasedCtx(ctx context.Context, g *graph.Graph) ([]uint32, Stats, error) {
	n := g.NumVertices()
	labels := initLabels(n)
	var st Stats
	adj := g.Adjacency()
	offs := g.Offsets()

	for change := true; change; {
		if err := ctx.Err(); err != nil {
			return labels, st, err
		}
		change = false
		changed := 0
		start := time.Now()
		for v := 0; v < n; v++ {
			cv := labels[v]
			cv0 := cv
			for _, u := range adj[offs[v]:offs[v+1]] {
				cu := labels[u]
				if cu < cv {
					cv = cu
					labels[v] = cu
					st.LabelStores++
					change = true
				}
			}
			if cv != cv0 {
				changed++
			}
		}
		st.IterDurations = append(st.IterDurations, time.Since(start))
		st.IterChanges = append(st.IterChanges, changed)
		st.Iterations++
	}
	return labels, st, nil
}

// SVBranchAvoiding runs the branch-avoiding Shiloach-Vishkin kernel
// (Algorithm 3): the label comparison feeds an arithmetic conditional
// move; the only branches left are the loop tests. Every vertex writes its
// label exactly once per pass, so LabelStores is Iterations × |V|.
func SVBranchAvoiding(g *graph.Graph) ([]uint32, Stats) {
	labels, st, _ := SVBranchAvoidingCtx(context.Background(), g)
	return labels, st
}

// SVBranchAvoidingCtx is SVBranchAvoiding with cooperative cancellation
// at pass boundaries (see SVBranchBasedCtx).
func SVBranchAvoidingCtx(ctx context.Context, g *graph.Graph) ([]uint32, Stats, error) {
	n := g.NumVertices()
	labels := initLabels(n)
	var st Stats
	adj := g.Adjacency()
	offs := g.Offsets()

	for change := uint32(1); change != 0; {
		if err := ctx.Err(); err != nil {
			return labels, st, err
		}
		change = 0
		changed := 0
		start := time.Now()
		//ba:branch-free
		for v := 0; v < n; v++ {
			cinit := labels[v]
			cv := cinit
			for _, u := range adj[offs[v]:offs[v+1]] {
				cu := labels[u]
				// cv ← min(cv, cu) via mask select: no data branch.
				m := core.MaskLess32(cu, cv)
				cv = core.Select32(m, cu, cv)
			}
			labels[v] = cv
			st.LabelStores++
			diff := cv ^ cinit
			change |= diff
			// Branch-free change tally: diff != 0 contributes 1.
			changed += core.Bit(^core.MaskEqual32(diff, 0))
		}
		st.IterDurations = append(st.IterDurations, time.Since(start))
		st.IterChanges = append(st.IterChanges, changed)
		st.Iterations++
	}
	return labels, st, nil
}

// HybridOptions configures SVHybrid.
type HybridOptions struct {
	// SwitchIteration forces the switch from branch-avoiding to
	// branch-based at the given pass (0-based). Negative means adaptive.
	SwitchIteration int
	// ChangeFraction is the adaptive threshold: once the fraction of
	// vertices that changed label in a pass drops below it, the labels
	// have mostly stabilized, the comparison branch has become
	// predictable, and the kernel switches to the branch-based loop. The
	// paper's §6.2 observes a single crossover point, which makes this
	// one-way switch sound. Zero means the default of 2%.
	ChangeFraction float64
}

// SVHybrid is the algorithm the paper's §6.2 proposes: run the
// branch-avoiding kernel in the early, misprediction-heavy passes and the
// branch-based kernel once labels stabilize.
func SVHybrid(g *graph.Graph, opt HybridOptions) ([]uint32, Stats) {
	labels, st, _ := SVHybridCtx(context.Background(), g, opt)
	return labels, st
}

// SVHybridCtx is SVHybrid with cooperative cancellation at pass
// boundaries (see SVBranchBasedCtx).
func SVHybridCtx(ctx context.Context, g *graph.Graph, opt HybridOptions) ([]uint32, Stats, error) {
	n := g.NumVertices()
	labels := initLabels(n)
	var st Stats
	adj := g.Adjacency()
	offs := g.Offsets()
	threshold := opt.ChangeFraction
	if threshold == 0 {
		threshold = 0.02
	}

	avoiding := true
	for change := true; change; {
		if err := ctx.Err(); err != nil {
			return labels, st, err
		}
		if opt.SwitchIteration >= 0 && st.Iterations >= opt.SwitchIteration {
			avoiding = false
		}
		change = false
		changed := 0
		start := time.Now()
		if avoiding {
			var diffAccum uint32
			//ba:branch-free
			for v := 0; v < n; v++ {
				cinit := labels[v]
				cv := cinit
				for _, u := range adj[offs[v]:offs[v+1]] {
					cu := labels[u]
					m := core.MaskLess32(cu, cv)
					cv = core.Select32(m, cu, cv)
				}
				labels[v] = cv
				st.LabelStores++
				diff := cv ^ cinit
				diffAccum |= diff
				changed += core.Bit(^core.MaskEqual32(diff, 0))
			}
			change = diffAccum != 0
		} else {
			for v := 0; v < n; v++ {
				cv := labels[v]
				cv0 := cv
				for _, u := range adj[offs[v]:offs[v+1]] {
					cu := labels[u]
					if cu < cv {
						cv = cu
						labels[v] = cu
						st.LabelStores++
						change = true
					}
				}
				if cv != cv0 {
					changed++
				}
			}
		}
		st.IterDurations = append(st.IterDurations, time.Since(start))
		st.IterChanges = append(st.IterChanges, changed)
		st.Iterations++
		if opt.SwitchIteration < 0 && avoiding && float64(changed) < threshold*float64(n) {
			avoiding = false
		}
	}
	return labels, st, nil
}

// UnionFind computes components with a weighted quick-union with path
// halving — an independent baseline for cross-validating the SV kernels.
// Labels are canonicalized to the minimum vertex id per component.
func UnionFind(g *graph.Graph) []uint32 {
	n := g.NumVertices()
	parent := make([]uint32, n)
	rank := make([]uint8, n)
	for i := range parent {
		parent[i] = uint32(i)
	}
	find := func(x uint32) uint32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]] // path halving
			x = parent[x]
		}
		return x
	}
	for u := 0; u < n; u++ {
		for _, v := range g.Neighbors(uint32(u)) {
			ru, rv := find(uint32(u)), find(v)
			if ru == rv {
				continue
			}
			if rank[ru] < rank[rv] {
				ru, rv = rv, ru
			}
			parent[rv] = ru
			if rank[ru] == rank[rv] {
				rank[ru]++
			}
		}
	}
	// Canonicalize to min id per component.
	minID := make([]uint32, n)
	for i := range minID {
		minID[i] = ^uint32(0)
	}
	for v := 0; v < n; v++ {
		r := find(uint32(v))
		if uint32(v) < minID[r] {
			minID[r] = uint32(v)
		}
	}
	labels := make([]uint32, n)
	for v := 0; v < n; v++ {
		labels[v] = minID[find(uint32(v))]
	}
	return labels
}

// ViaBFS computes components by sweeping vertices in ascending order and
// flood-filling each unvisited one. Because the sweep is ascending, every
// component is labeled with its minimum vertex id — the same canonical
// form the SV kernels converge to.
func ViaBFS(g *graph.Graph) []uint32 {
	n := g.NumVertices()
	labels := make([]uint32, n)
	const unset = ^uint32(0)
	for i := range labels {
		labels[i] = unset
	}
	queue := make([]uint32, 0, n)
	for s := 0; s < n; s++ {
		if labels[s] != unset {
			continue
		}
		root := uint32(s)
		labels[s] = root
		queue = append(queue[:0], root)
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			for _, w := range g.Neighbors(v) {
				if labels[w] == unset {
					labels[w] = root
					queue = append(queue, w)
				}
			}
		}
	}
	return labels
}

// CountComponents returns the number of distinct labels. Canonical
// labelings keep every label below len(labels), so the tally is a flat
// boolean array — no per-vertex hash probe (whose data-dependent probe
// branches would be an own-goal in this repository); labels outside that
// range spill to a map that stays empty in practice.
func CountComponents(labels []uint32) int {
	n := len(labels)
	seen := make([]bool, n)
	count := 0
	var overflow map[uint32]struct{}
	for _, l := range labels {
		if int(l) < n {
			if !seen[l] {
				seen[l] = true
				count++
			}
		} else {
			if overflow == nil {
				overflow = make(map[uint32]struct{})
			}
			overflow[l] = struct{}{}
		}
	}
	return count + len(overflow)
}

// ComponentSizes returns the size of each component keyed by label. The
// per-vertex tally runs over a flat counter array (see CountComponents);
// the map is materialized once per distinct label at the end.
func ComponentSizes(labels []uint32) map[uint32]int {
	n := len(labels)
	tally := make([]int, n)
	sizes := make(map[uint32]int)
	for _, l := range labels {
		if int(l) < n {
			tally[l]++
		} else {
			sizes[l]++
		}
	}
	for l, c := range tally {
		if c > 0 {
			sizes[uint32(l)] = c
		}
	}
	return sizes
}

// Verify checks that labels is the canonical min-id component labeling of
// g: endpoints of every edge agree, every label is the minimum id of its
// component, and the labeling matches an independently computed one.
func Verify(g *graph.Graph, labels []uint32) error {
	n := g.NumVertices()
	if len(labels) != n {
		return fmt.Errorf("cc: %d labels for %d vertices", len(labels), n)
	}
	for u := 0; u < n; u++ {
		for _, v := range g.Neighbors(uint32(u)) {
			if labels[u] != labels[v] {
				return fmt.Errorf("cc: edge (%d,%d) spans labels %d,%d", u, v, labels[u], labels[v])
			}
		}
	}
	ref := ViaBFS(g)
	for v := 0; v < n; v++ {
		if labels[v] != ref[v] {
			return fmt.Errorf("cc: vertex %d labeled %d, reference %d", v, labels[v], ref[v])
		}
	}
	return nil
}
