package graph

// Weighted graphs for the shortest-path extensions. Weights are carried
// in a flat array aligned with the CSR adjacency array, so weighted
// kernels keep the same memory behaviour as the unweighted ones plus one
// extra load per edge.

import (
	"errors"
	"fmt"
	"sort"
)

// WeightedEdge is an edge with a non-negative 32-bit weight.
type WeightedEdge struct {
	U, V uint32
	W    uint32
}

// Weighted is an immutable CSR graph with per-arc weights. It embeds
// *Graph, so all structural queries apply.
type Weighted struct {
	*Graph
	weights []uint32 // aligned with Adjacency()
}

// ArcWeights exposes the per-arc weight array, aligned with Adjacency().
// Shared storage; do not modify.
func (g *Weighted) ArcWeights() []uint32 { return g.weights }

// NeighborWeights returns v's adjacency list and the matching weights.
func (g *Weighted) NeighborWeights(v uint32) ([]uint32, []uint32) {
	offs := g.Offsets()
	return g.Adjacency()[offs[v]:offs[v+1]], g.weights[offs[v]:offs[v+1]]
}

// BuildWeighted constructs a weighted CSR graph. For undirected graphs
// each edge contributes both arcs with the same weight. Parallel edges
// collapse to the minimum weight (the only sensible choice for
// shortest-path kernels); self-loops are dropped.
func BuildWeighted(n int, edges []WeightedEdge, directed bool, name string) (*Weighted, error) {
	if n < 0 {
		return nil, errors.New("graph: negative vertex count")
	}
	type warc struct {
		u, v, w uint32
	}
	arcs := make([]warc, 0, len(edges)*2)
	for _, e := range edges {
		if int(e.U) >= n || int(e.V) >= n {
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range for n=%d", e.U, e.V, n)
		}
		if e.U == e.V {
			continue
		}
		arcs = append(arcs, warc{e.U, e.V, e.W})
		if !directed {
			arcs = append(arcs, warc{e.V, e.U, e.W})
		}
	}
	sort.Slice(arcs, func(i, j int) bool {
		if arcs[i].u != arcs[j].u {
			return arcs[i].u < arcs[j].u
		}
		if arcs[i].v != arcs[j].v {
			return arcs[i].v < arcs[j].v
		}
		return arcs[i].w < arcs[j].w
	})
	// Dedup keeping the minimum weight (first after the sort).
	out := arcs[:0]
	for i, a := range arcs {
		if i > 0 && a.u == arcs[i-1].u && a.v == arcs[i-1].v {
			continue
		}
		out = append(out, a)
	}
	arcs = out

	g := &Graph{
		offs:     make([]int64, n+1),
		adj:      make([]uint32, len(arcs)),
		directed: directed,
		name:     name,
	}
	weights := make([]uint32, len(arcs))
	for i, a := range arcs {
		g.offs[a.u+1]++
		g.adj[i] = a.v
		weights[i] = a.w
	}
	for v := 0; v < n; v++ {
		g.offs[v+1] += g.offs[v]
	}
	return &Weighted{Graph: g, weights: weights}, nil
}

// MustBuildWeighted is BuildWeighted that panics on error.
func MustBuildWeighted(n int, edges []WeightedEdge, directed bool, name string) *Weighted {
	g, err := BuildWeighted(n, edges, directed, name)
	if err != nil {
		panic(err)
	}
	return g
}

// AttachWeights wraps an existing graph with per-arc weights produced by
// fn(u, v). fn must be symmetric for undirected graphs (fn(u,v) ==
// fn(v,u)) so both arcs of an edge carry the same weight; this is the
// caller's responsibility and is checked for undirected inputs.
func AttachWeights(g *Graph, fn func(u, v uint32) uint32) (*Weighted, error) {
	weights := make([]uint32, g.NumArcs())
	n := g.NumVertices()
	for u := 0; u < n; u++ {
		offs := g.Offsets()
		for j := offs[u]; j < offs[u+1]; j++ {
			weights[j] = fn(uint32(u), g.Adjacency()[j])
		}
	}
	w := &Weighted{Graph: g, weights: weights}
	if !g.Directed() {
		for u := 0; u < n; u++ {
			adj, ws := w.NeighborWeights(uint32(u))
			for i, v := range adj {
				if fn(v, uint32(u)) != ws[i] {
					return nil, fmt.Errorf("graph: asymmetric weight for edge (%d,%d)", u, v)
				}
			}
		}
	}
	return w, nil
}
