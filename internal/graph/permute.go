package graph

// Layout permutation. Unlike Relabel, which round-trips through Build
// and therefore applies its dedup/self-loop collapse rules, Permute is a
// pure CSR rewrite: the permuted graph has exactly the arcs of the
// original — self-loops and parallel arcs included — just stored under
// new vertex ids. The layout pass relies on this so relabeled kernel
// results can be byte-identical to unrelabeled ones on every corpus
// graph, including the multigraph adversaries.

import (
	"errors"
	"fmt"
	"slices"
	"sort"
)

// checkPerm verifies perm is a permutation of [0, n).
func checkPerm(perm []uint32, n int) error {
	if len(perm) != n {
		return fmt.Errorf("graph: perm has %d entries, want %d", len(perm), n)
	}
	seen := make([]bool, n)
	for _, p := range perm {
		if int(p) >= n || seen[p] {
			return errors.New("graph: perm is not a permutation")
		}
		seen[p] = true
	}
	return nil
}

// Permute returns a new graph in which vertex v of the receiver becomes
// perm[v], preserving arc multiplicity exactly. Neighbor lists of the
// result are sorted ascending, maintaining the CSR invariant HasEdge
// depends on.
func (g *Graph) Permute(perm []uint32) (*Graph, error) {
	n := g.NumVertices()
	if err := checkPerm(perm, n); err != nil {
		return nil, err
	}
	offs := make([]int64, n+1)
	for old := 0; old < n; old++ {
		offs[perm[old]+1] = int64(g.Degree(uint32(old)))
	}
	for v := 0; v < n; v++ {
		offs[v+1] += offs[v]
	}
	adj := make([]uint32, g.NumArcs())
	for old := 0; old < n; old++ {
		nb := g.Neighbors(uint32(old))
		lo := offs[perm[old]]
		dst := adj[lo : lo+int64(len(nb))]
		for i, w := range nb {
			dst[i] = perm[w]
		}
		slices.Sort(dst)
	}
	return &Graph{offs: offs, adj: adj, directed: g.directed, name: g.name}, nil
}

// Permute returns a new weighted graph in which vertex v becomes
// perm[v]; arcs keep their weights. Shadows (*Graph).Permute so weighted
// callers cannot accidentally drop the weight array.
func (g *Weighted) Permute(perm []uint32) (*Weighted, error) {
	n := g.NumVertices()
	if err := checkPerm(perm, n); err != nil {
		return nil, err
	}
	offs := make([]int64, n+1)
	for old := 0; old < n; old++ {
		offs[perm[old]+1] = int64(g.Degree(uint32(old)))
	}
	for v := 0; v < n; v++ {
		offs[v+1] += offs[v]
	}
	adj := make([]uint32, g.NumArcs())
	weights := make([]uint32, g.NumArcs())
	for old := 0; old < n; old++ {
		nb, ws := g.NeighborWeights(uint32(old))
		lo := offs[perm[old]]
		dstA := adj[lo : lo+int64(len(nb))]
		dstW := weights[lo : lo+int64(len(nb))]
		for i, w := range nb {
			dstA[i] = perm[w]
			dstW[i] = ws[i]
		}
		// Sort the (neighbor, weight) pairs together; ties on neighbor
		// keep the lighter arc first for determinism.
		sort.Sort(&arcWeightSort{dstA, dstW})
	}
	pg := &Graph{offs: offs, adj: adj, directed: g.Directed(), name: g.Name()}
	return &Weighted{Graph: pg, weights: weights}, nil
}

type arcWeightSort struct {
	adj, w []uint32
}

func (s *arcWeightSort) Len() int { return len(s.adj) }
func (s *arcWeightSort) Less(i, j int) bool {
	if s.adj[i] != s.adj[j] {
		return s.adj[i] < s.adj[j]
	}
	return s.w[i] < s.w[j]
}
func (s *arcWeightSort) Swap(i, j int) {
	s.adj[i], s.adj[j] = s.adj[j], s.adj[i]
	s.w[i], s.w[j] = s.w[j], s.w[i]
}
