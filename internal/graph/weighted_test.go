package graph

import (
	"testing"

	"bagraph/internal/xrand"
)

func TestBuildWeightedBasics(t *testing.T) {
	g := MustBuildWeighted(3, []WeightedEdge{{U: 0, V: 1, W: 5}, {U: 1, V: 2, W: 7}}, false, "w3")
	if g.NumVertices() != 3 || g.NumArcs() != 4 {
		t.Fatalf("V=%d arcs=%d", g.NumVertices(), g.NumArcs())
	}
	adj, w := g.NeighborWeights(1)
	if len(adj) != 2 || len(w) != 2 {
		t.Fatalf("neighbor weights: %v %v", adj, w)
	}
	// Sorted adjacency: 0 then 2.
	if adj[0] != 0 || w[0] != 5 || adj[1] != 2 || w[1] != 7 {
		t.Fatalf("weights misaligned: %v %v", adj, w)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildWeightedSymmetricWeights(t *testing.T) {
	g := MustBuildWeighted(4, []WeightedEdge{{U: 2, V: 0, W: 9}}, false, "")
	a1, w1 := g.NeighborWeights(0)
	a2, w2 := g.NeighborWeights(2)
	if a1[0] != 2 || a2[0] != 0 || w1[0] != 9 || w2[0] != 9 {
		t.Fatal("reverse arc weight differs")
	}
}

func TestBuildWeightedParallelKeepsMin(t *testing.T) {
	g := MustBuildWeighted(2, []WeightedEdge{{U: 0, V: 1, W: 9}, {U: 0, V: 1, W: 3}, {U: 1, V: 0, W: 5}}, false, "")
	_, w := g.NeighborWeights(0)
	if len(w) != 1 || w[0] != 3 {
		t.Fatalf("parallel edges: weights %v, want [3]", w)
	}
}

func TestBuildWeightedDirected(t *testing.T) {
	g := MustBuildWeighted(2, []WeightedEdge{{U: 0, V: 1, W: 4}}, true, "")
	if g.NumArcs() != 1 || !g.Directed() {
		t.Fatal("directed weighted build wrong")
	}
	if g.Degree(1) != 0 {
		t.Fatal("reverse arc created for directed graph")
	}
}

func TestBuildWeightedErrors(t *testing.T) {
	if _, err := BuildWeighted(2, []WeightedEdge{{U: 0, V: 5, W: 1}}, false, ""); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
	if _, err := BuildWeighted(-1, nil, false, ""); err == nil {
		t.Fatal("negative n accepted")
	}
}

func TestBuildWeightedDropsSelfLoops(t *testing.T) {
	g := MustBuildWeighted(2, []WeightedEdge{{U: 0, V: 0, W: 1}, {U: 0, V: 1, W: 2}}, false, "")
	if g.NumArcs() != 2 {
		t.Fatalf("arcs = %d", g.NumArcs())
	}
}

func TestAttachWeights(t *testing.T) {
	g := MustBuild(4, []Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}}, Options{})
	// Symmetric function: weight = u + v.
	w, err := AttachWeights(g, func(u, v uint32) uint32 { return u + v })
	if err != nil {
		t.Fatal(err)
	}
	_, ws := w.NeighborWeights(1)
	if ws[0] != 1 || ws[1] != 3 {
		t.Fatalf("attached weights wrong: %v", ws)
	}
	// Asymmetric function must be rejected for undirected graphs.
	if _, err := AttachWeights(g, func(u, v uint32) uint32 { return u }); err == nil {
		t.Fatal("asymmetric weights accepted on undirected graph")
	}
}

func TestAttachWeightsRandomSymmetric(t *testing.T) {
	g := MustBuild(30, randomEdges(30, 60, 3), Options{})
	// Hash of the unordered pair: symmetric by construction.
	w, err := AttachWeights(g, func(u, v uint32) uint32 {
		if u > v {
			u, v = v, u
		}
		return uint32(xrand.Hash64(uint64(u)<<32|uint64(v)))%100 + 1
	})
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(w.ArcWeights())) != g.NumArcs() {
		t.Fatal("weight array misaligned")
	}
}

func randomEdges(n, m int, seed uint64) []Edge {
	r := xrand.New(seed)
	edges := make([]Edge, 0, m)
	for i := 0; i < m; i++ {
		edges = append(edges, Edge{U: uint32(r.Intn(n)), V: uint32(r.Intn(n))})
	}
	return edges
}
