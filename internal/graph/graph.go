// Package graph provides the compressed-sparse-row (CSR) graph
// representation shared by every kernel in the repository.
//
// The paper's kernels iterate over all vertices and, per vertex, over its
// adjacency list (Algorithms 2–5). CSR makes both loops contiguous array
// scans, matching the memory behaviour the paper's assembly kernels were
// written against: an offsets array of |V|+1 indices and a flat adjacency
// array of |E| (directed) or 2|E| (undirected) vertex ids.
//
// Vertex ids are uint32, which covers every graph in the paper's Table 2
// with 4-byte labels — the same element width the paper's conditional-move
// kernels operate on.
package graph

import (
	"errors"
	"fmt"
	"sort"
)

// Edge is a directed (u, v) pair. For undirected graphs an Edge represents
// both directions; Build symmetrizes it.
type Edge struct {
	U, V uint32
}

// Graph is an immutable CSR graph. Use Build or the generators in
// internal/gen to construct one.
type Graph struct {
	offs     []int64  // len n+1; offs[v]..offs[v+1] bounds v's adjacency
	adj      []uint32 // flat adjacency array
	directed bool
	name     string
}

// NumVertices returns |V|.
func (g *Graph) NumVertices() int { return len(g.offs) - 1 }

// NumArcs returns the number of directed adjacency entries (2|E| for an
// undirected graph).
func (g *Graph) NumArcs() int64 { return g.offs[len(g.offs)-1] }

// NumEdges returns the number of logical edges: arcs for a directed graph,
// arcs/2 for an undirected one.
func (g *Graph) NumEdges() int64 {
	if g.directed {
		return g.NumArcs()
	}
	return g.NumArcs() / 2
}

// Directed reports whether the graph was built as a directed graph.
func (g *Graph) Directed() bool { return g.directed }

// Name returns the label attached at build time ("" if none).
func (g *Graph) Name() string { return g.name }

// SetName attaches a human-readable label used in reports.
func (g *Graph) SetName(name string) { g.name = name }

// Degree returns the out-degree of v.
func (g *Graph) Degree(v uint32) int {
	return int(g.offs[v+1] - g.offs[v])
}

// Neighbors returns the adjacency list of v as a shared sub-slice; callers
// must not modify it.
func (g *Graph) Neighbors(v uint32) []uint32 {
	return g.adj[g.offs[v]:g.offs[v+1]]
}

// Offsets exposes the CSR offsets array (len |V|+1). Shared storage; do not
// modify. The instrumented kernels need raw access to attribute simulated
// memory addresses to loads.
func (g *Graph) Offsets() []int64 { return g.offs }

// Adjacency exposes the flat CSR adjacency array. Shared storage; do not
// modify.
func (g *Graph) Adjacency() []uint32 { return g.adj }

// Options configures Build.
type Options struct {
	// Directed, when true, keeps the edges exactly as given. When false
	// (the default, matching the paper's undirected inputs) every edge is
	// inserted in both directions.
	Directed bool
	// KeepSelfLoops retains u→u edges; by default they are dropped, as
	// they contribute nothing to connectivity or BFS and the DIMACS-10
	// inputs have none.
	KeepSelfLoops bool
	// KeepParallelEdges retains duplicate (u,v) entries; by default the
	// builder dedups them.
	KeepParallelEdges bool
	// Name labels the graph for reports.
	Name string
}

// Build constructs a CSR graph over n vertices from an edge list.
// Neighbor lists are sorted ascending. It returns an error if any endpoint
// is out of range.
func Build(n int, edges []Edge, opt Options) (*Graph, error) {
	if n < 0 {
		return nil, errors.New("graph: negative vertex count")
	}
	for _, e := range edges {
		if int(e.U) >= n || int(e.V) >= n {
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range for n=%d", e.U, e.V, n)
		}
	}

	// Arc list: one direction for directed, both for undirected.
	arcs := make([]Edge, 0, len(edges)*2)
	for _, e := range edges {
		if e.U == e.V && !opt.KeepSelfLoops {
			continue
		}
		arcs = append(arcs, e)
		if !opt.Directed && e.U != e.V {
			arcs = append(arcs, Edge{e.V, e.U})
		}
	}

	sort.Slice(arcs, func(i, j int) bool {
		if arcs[i].U != arcs[j].U {
			return arcs[i].U < arcs[j].U
		}
		return arcs[i].V < arcs[j].V
	})

	if !opt.KeepParallelEdges {
		arcs = dedupArcs(arcs)
	}

	g := &Graph{
		offs:     make([]int64, n+1),
		adj:      make([]uint32, len(arcs)),
		directed: opt.Directed,
		name:     opt.Name,
	}
	for i, a := range arcs {
		g.offs[a.U+1]++
		g.adj[i] = a.V
	}
	for v := 0; v < n; v++ {
		g.offs[v+1] += g.offs[v]
	}
	return g, nil
}

// MustBuild is Build that panics on error; intended for generators and
// tests where inputs are constructed, not parsed.
func MustBuild(n int, edges []Edge, opt Options) *Graph {
	g, err := Build(n, edges, opt)
	if err != nil {
		panic(err)
	}
	return g
}

func dedupArcs(arcs []Edge) []Edge {
	out := arcs[:0]
	for i, a := range arcs {
		if i > 0 && a == arcs[i-1] {
			continue
		}
		out = append(out, a)
	}
	return out
}

// FromCSR wraps pre-built CSR arrays without copying. offs must have length
// n+1, be non-decreasing, start at 0, and end at len(adj); every adjacency
// entry must be < n. Used by file readers that already produce CSR.
func FromCSR(offs []int64, adj []uint32, directed bool, name string) (*Graph, error) {
	g := &Graph{offs: offs, adj: adj, directed: directed, name: name}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// Validate checks the structural invariants of the CSR arrays.
func (g *Graph) Validate() error {
	if len(g.offs) == 0 {
		return errors.New("graph: empty offsets array")
	}
	if g.offs[0] != 0 {
		return fmt.Errorf("graph: offsets[0] = %d, want 0", g.offs[0])
	}
	n := len(g.offs) - 1
	for v := 0; v < n; v++ {
		if g.offs[v+1] < g.offs[v] {
			return fmt.Errorf("graph: offsets decrease at vertex %d", v)
		}
	}
	if g.offs[n] != int64(len(g.adj)) {
		return fmt.Errorf("graph: offsets end at %d, adjacency has %d entries", g.offs[n], len(g.adj))
	}
	for i, w := range g.adj {
		if int(w) >= n {
			return fmt.Errorf("graph: adjacency entry %d = %d out of range (n=%d)", i, w, n)
		}
	}
	if !g.directed {
		if err := g.checkSymmetric(); err != nil {
			return err
		}
	}
	return nil
}

// checkSymmetric verifies that every arc has its reverse, required of
// undirected CSR. Neighbor lists are sorted by construction, so each
// reverse lookup is a binary search.
func (g *Graph) checkSymmetric() error {
	n := g.NumVertices()
	for u := 0; u < n; u++ {
		for _, v := range g.Neighbors(uint32(u)) {
			if !g.HasEdge(v, uint32(u)) {
				return fmt.Errorf("graph: missing reverse arc %d->%d", v, u)
			}
		}
	}
	return nil
}

// HasEdge reports whether the arc u→v exists. O(log deg(u)) thanks to
// sorted neighbor lists.
func (g *Graph) HasEdge(u, v uint32) bool {
	nb := g.Neighbors(u)
	i := sort.Search(len(nb), func(i int) bool { return nb[i] >= v })
	return i < len(nb) && nb[i] == v
}

// DegreeStats summarizes the degree distribution.
type DegreeStats struct {
	Min, Max int
	Mean     float64
	// Isolated counts degree-zero vertices.
	Isolated int
}

// Degrees computes degree statistics in one pass.
func (g *Graph) Degrees() DegreeStats {
	n := g.NumVertices()
	if n == 0 {
		return DegreeStats{}
	}
	st := DegreeStats{Min: g.Degree(0), Max: g.Degree(0)}
	total := int64(0)
	for v := 0; v < n; v++ {
		d := g.Degree(uint32(v))
		if d < st.Min {
			st.Min = d
		}
		if d > st.Max {
			st.Max = d
		}
		if d == 0 {
			st.Isolated++
		}
		total += int64(d)
	}
	st.Mean = float64(total) / float64(n)
	return st
}

// bfsLevels runs a plain BFS from root and returns (levels, reached,
// farthest vertex, eccentricity). Level -1 marks unreached vertices. This
// is deliberately private: the measured BFS kernels live in internal/bfs;
// this one only serves structural queries (diameter estimates,
// reachability).
func (g *Graph) bfsLevels(root uint32) (levels []int32, reached int, far uint32, ecc int32) {
	n := g.NumVertices()
	levels = make([]int32, n)
	for i := range levels {
		levels[i] = -1
	}
	q := make([]uint32, 0, n)
	levels[root] = 0
	q = append(q, root)
	far = root
	for head := 0; head < len(q); head++ {
		v := q[head]
		lv := levels[v]
		if lv > ecc {
			ecc = lv
			far = v
		}
		for _, w := range g.Neighbors(v) {
			if levels[w] < 0 {
				levels[w] = lv + 1
				q = append(q, w)
			}
		}
	}
	return levels, len(q), far, ecc
}

// Reached returns the number of vertices reachable from root (including
// root itself).
func (g *Graph) Reached(root uint32) int {
	_, r, _, _ := g.bfsLevels(root)
	return r
}

// IsConnected reports whether the undirected graph is connected. For
// directed graphs it reports whether every vertex is reachable from vertex
// 0 (a weaker property, documented rather than hidden).
func (g *Graph) IsConnected() bool {
	n := g.NumVertices()
	if n == 0 {
		return true
	}
	return g.Reached(0) == n
}

// PseudoDiameter estimates the graph diameter with the standard
// double-sweep heuristic: BFS from root, then BFS again from the farthest
// vertex found. The result is a lower bound on the true diameter and is
// exact on trees. The paper's complexity analysis of SV is O(d·(|V|+|E|))
// in this d.
func (g *Graph) PseudoDiameter() int {
	n := g.NumVertices()
	if n == 0 {
		return 0
	}
	_, _, far, _ := g.bfsLevels(0)
	_, _, _, ecc := g.bfsLevels(far)
	return int(ecc)
}

// Relabel returns a new graph in which vertex v of the receiver becomes
// perm[v]. perm must be a permutation of [0, n). Relabeling changes memory
// access order, which the branch-prediction experiments use to decouple
// structure from layout.
func (g *Graph) Relabel(perm []uint32) (*Graph, error) {
	n := g.NumVertices()
	if len(perm) != n {
		return nil, fmt.Errorf("graph: perm has %d entries, want %d", len(perm), n)
	}
	seen := make([]bool, n)
	for _, p := range perm {
		if int(p) >= n || seen[p] {
			return nil, errors.New("graph: perm is not a permutation")
		}
		seen[p] = true
	}
	edges := make([]Edge, 0, g.NumArcs())
	for u := 0; u < n; u++ {
		for _, v := range g.Neighbors(uint32(u)) {
			if g.directed || perm[u] <= perm[v] {
				edges = append(edges, Edge{perm[u], perm[v]})
			}
		}
	}
	return Build(n, edges, Options{Directed: g.directed, Name: g.name, KeepSelfLoops: true})
}

// EdgeList materializes the logical edge list: all arcs for a directed
// graph, one (u ≤ v) representative per edge for an undirected one.
func (g *Graph) EdgeList() []Edge {
	out := make([]Edge, 0, g.NumEdges())
	n := g.NumVertices()
	for u := 0; u < n; u++ {
		for _, v := range g.Neighbors(uint32(u)) {
			if g.directed || uint32(u) <= v {
				out = append(out, Edge{uint32(u), v})
			}
		}
	}
	return out
}

// String implements fmt.Stringer with a compact summary.
func (g *Graph) String() string {
	kind := "undirected"
	if g.directed {
		kind = "directed"
	}
	name := g.name
	if name == "" {
		name = "graph"
	}
	return fmt.Sprintf("%s{%s, |V|=%d, |E|=%d}", name, kind, g.NumVertices(), g.NumEdges())
}
