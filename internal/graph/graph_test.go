package graph

import (
	"testing"
	"testing/quick"

	"bagraph/internal/xrand"
)

func path5() *Graph {
	return MustBuild(5, []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 4}}, Options{Name: "path5"})
}

func TestBuildUndirectedSymmetrizes(t *testing.T) {
	g := path5()
	if g.NumVertices() != 5 || g.NumEdges() != 4 || g.NumArcs() != 8 {
		t.Fatalf("path5: V=%d E=%d arcs=%d", g.NumVertices(), g.NumEdges(), g.NumArcs())
	}
	if !g.HasEdge(1, 0) || !g.HasEdge(0, 1) {
		t.Fatal("missing symmetric arcs")
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestBuildDirected(t *testing.T) {
	g := MustBuild(3, []Edge{{0, 1}, {1, 2}}, Options{Directed: true})
	if g.NumEdges() != 2 || g.NumArcs() != 2 {
		t.Fatalf("directed: E=%d arcs=%d", g.NumEdges(), g.NumArcs())
	}
	if g.HasEdge(1, 0) {
		t.Fatal("directed build created reverse arc")
	}
}

func TestBuildRejectsOutOfRange(t *testing.T) {
	if _, err := Build(3, []Edge{{0, 3}}, Options{}); err == nil {
		t.Fatal("Build accepted out-of-range endpoint")
	}
	if _, err := Build(-1, nil, Options{}); err == nil {
		t.Fatal("Build accepted negative n")
	}
}

func TestBuildDropsSelfLoopsAndDuplicates(t *testing.T) {
	g := MustBuild(3, []Edge{{0, 0}, {0, 1}, {0, 1}, {1, 0}}, Options{})
	if g.NumArcs() != 2 {
		t.Fatalf("arcs = %d, want 2 (one undirected edge)", g.NumArcs())
	}
	if g.Degree(0) != 1 || g.Degree(1) != 1 || g.Degree(2) != 0 {
		t.Fatalf("degrees = %d,%d,%d", g.Degree(0), g.Degree(1), g.Degree(2))
	}
}

func TestBuildKeepsSelfLoopsWhenAsked(t *testing.T) {
	g := MustBuild(2, []Edge{{0, 0}, {0, 1}}, Options{KeepSelfLoops: true})
	if !g.HasEdge(0, 0) {
		t.Fatal("self loop dropped despite KeepSelfLoops")
	}
	_ = g.NumEdges()
}

func TestBuildKeepsParallelEdgesWhenAsked(t *testing.T) {
	g := MustBuild(2, []Edge{{0, 1}, {0, 1}}, Options{KeepParallelEdges: true, Directed: true})
	if g.Degree(0) != 2 {
		t.Fatalf("Degree(0) = %d, want 2 parallel arcs", g.Degree(0))
	}
}

func TestNeighborsSorted(t *testing.T) {
	g := MustBuild(6, []Edge{{0, 5}, {0, 2}, {0, 4}, {0, 1}}, Options{})
	nb := g.Neighbors(0)
	for i := 1; i < len(nb); i++ {
		if nb[i-1] >= nb[i] {
			t.Fatalf("neighbors not sorted: %v", nb)
		}
	}
}

func TestDegreesStats(t *testing.T) {
	g := MustBuild(4, []Edge{{0, 1}, {0, 2}, {0, 3}}, Options{}) // star
	st := g.Degrees()
	if st.Max != 3 || st.Min != 1 || st.Isolated != 0 {
		t.Fatalf("star stats = %+v", st)
	}
	if st.Mean != 6.0/4.0 {
		t.Fatalf("mean = %v", st.Mean)
	}

	g2 := MustBuild(3, nil, Options{})
	st2 := g2.Degrees()
	if st2.Isolated != 3 || st2.Max != 0 {
		t.Fatalf("empty graph stats = %+v", st2)
	}
}

func TestPseudoDiameterOnPath(t *testing.T) {
	if d := path5().PseudoDiameter(); d != 4 {
		t.Fatalf("path5 pseudo-diameter = %d, want 4", d)
	}
}

func TestPseudoDiameterCycle(t *testing.T) {
	// 6-cycle: diameter 3.
	g := MustBuild(6, []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}}, Options{})
	if d := g.PseudoDiameter(); d != 3 {
		t.Fatalf("cycle6 pseudo-diameter = %d, want 3", d)
	}
}

func TestIsConnected(t *testing.T) {
	if !path5().IsConnected() {
		t.Fatal("path5 reported disconnected")
	}
	g := MustBuild(4, []Edge{{0, 1}, {2, 3}}, Options{})
	if g.IsConnected() {
		t.Fatal("two components reported connected")
	}
	if g.Reached(0) != 2 || g.Reached(2) != 2 {
		t.Fatalf("Reached = %d, %d", g.Reached(0), g.Reached(2))
	}
}

func TestFromCSRValidates(t *testing.T) {
	// Valid 2-cycle.
	g, err := FromCSR([]int64{0, 1, 2}, []uint32{1, 0}, false, "tiny")
	if err != nil {
		t.Fatalf("FromCSR valid input: %v", err)
	}
	if g.NumEdges() != 1 {
		t.Fatalf("edges = %d", g.NumEdges())
	}

	cases := []struct {
		name string
		offs []int64
		adj  []uint32
	}{
		{"bad start", []int64{1, 2}, []uint32{0}},
		{"decreasing", []int64{0, 2, 1}, []uint32{0, 1}},
		{"bad end", []int64{0, 1}, []uint32{0, 0}},
		{"oob entry", []int64{0, 1}, []uint32{7}},
		{"asymmetric", []int64{0, 1, 1}, []uint32{1}},
	}
	for _, c := range cases {
		if _, err := FromCSR(c.offs, c.adj, false, c.name); err == nil {
			t.Errorf("FromCSR accepted %s", c.name)
		}
	}
}

func TestRelabelPreservesStructure(t *testing.T) {
	g := path5()
	perm := []uint32{4, 3, 2, 1, 0}
	h, err := g.Relabel(perm)
	if err != nil {
		t.Fatalf("Relabel: %v", err)
	}
	if h.NumEdges() != g.NumEdges() {
		t.Fatalf("edge count changed: %d vs %d", h.NumEdges(), g.NumEdges())
	}
	// path 0-1-2-3-4 relabeled by reversal is still the same path.
	if !h.HasEdge(4, 3) || !h.HasEdge(0, 1) {
		t.Fatal("relabeled path lost expected edges")
	}
	if h.PseudoDiameter() != 4 {
		t.Fatalf("relabeled diameter = %d", h.PseudoDiameter())
	}
}

func TestRelabelRejectsBadPerm(t *testing.T) {
	g := path5()
	if _, err := g.Relabel([]uint32{0, 1, 2}); err == nil {
		t.Fatal("accepted short perm")
	}
	if _, err := g.Relabel([]uint32{0, 0, 1, 2, 3}); err == nil {
		t.Fatal("accepted non-permutation")
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := 2 + int(seed%40)
		m := r.Intn(3 * n)
		edges := make([]Edge, 0, m)
		for i := 0; i < m; i++ {
			u, v := uint32(r.Intn(n)), uint32(r.Intn(n))
			edges = append(edges, Edge{u, v})
		}
		g := MustBuild(n, edges, Options{})
		// Rebuild from the extracted edge list; must be identical.
		h := MustBuild(n, g.EdgeList(), Options{})
		if g.NumArcs() != h.NumArcs() {
			return false
		}
		for v := 0; v < n; v++ {
			a, b := g.Neighbors(uint32(v)), h.Neighbors(uint32(v))
			if len(a) != len(b) {
				return false
			}
			for i := range a {
				if a[i] != b[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestStringSummary(t *testing.T) {
	s := path5().String()
	if s == "" {
		t.Fatal("empty String()")
	}
	g := MustBuild(1, nil, Options{Directed: true})
	if g.String() == "" {
		t.Fatal("empty String() for unnamed graph")
	}
}

func TestValidateSymmetryEnforced(t *testing.T) {
	// Directly-constructed asymmetric undirected graph must fail Validate.
	g := &Graph{offs: []int64{0, 1, 1}, adj: []uint32{1}, directed: false}
	if err := g.Validate(); err == nil {
		t.Fatal("asymmetric undirected graph passed Validate")
	}
}
