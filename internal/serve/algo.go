package serve

// Per-request algorithm selection. Query bodies name kernels with the
// same strings the bacc/babfs command lines use; the tables below
// canonicalize aliases (so "bb" and "sv-bb" coalesce into one batch key)
// and dispatch to exactly the kernels the facade enums map to, which is
// what keeps daemon responses byte-identical to direct library calls.

import (
	"fmt"
	"sort"
	"strings"

	"bagraph/internal/bfs"
	"bagraph/internal/cc"
	"bagraph/internal/graph"
	"bagraph/internal/par"
	"bagraph/internal/sssp"
)

// ccAliases maps accepted CC algorithm names to their canonical form.
// The empty string selects the serving default: the parallel hybrid,
// the paper's §6.2 recommendation on a warm pool.
var ccAliases = map[string]string{
	"":           "par-hybrid",
	"bb":         "sv-bb",
	"sv-bb":      "sv-bb",
	"ba":         "sv-ba",
	"sv-ba":      "sv-ba",
	"hybrid":     "hybrid",
	"sv-hybrid":  "hybrid",
	"unionfind":  "unionfind",
	"par-bb":     "par-bb",
	"par-ba":     "par-ba",
	"par-hybrid": "par-hybrid",
}

// bfsAliases maps accepted BFS variant names to their canonical form.
// "ms" is the batch-aware multi-source kernel: every request that
// lands in the same dispatch traverses through one shared bottom-up
// mask sweep per level instead of k independent traversals.
var bfsAliases = map[string]string{
	"":             "par-do",
	"bb":           "bb",
	"ba":           "ba",
	"dir-opt":      "dir-opt",
	"par-do":       "par-do",
	"ms":           "ms",
	"multi-source": "ms",
}

// ssspAliases maps accepted SSSP algorithm names to their canonical
// form. The empty string selects the serving default: the parallel
// delta-stepping hybrid on the warm pool, mirroring the CC default.
var ssspAliases = map[string]string{
	"":             "par-hybrid",
	"bb":           "bb",
	"bellman-ford": "bb",
	"ba":           "ba",
	"dijkstra":     "dijkstra",
	"par-bb":       "par-bb",
	"par-ba":       "par-ba",
	"par-hybrid":   "par-hybrid",
}

// canon resolves an algorithm name against an alias table.
func canon(aliases map[string]string, name, family string) (string, error) {
	c, ok := aliases[name]
	if !ok {
		known := make([]string, 0, len(aliases))
		for k := range aliases {
			if k != "" {
				known = append(known, k)
			}
		}
		sort.Strings(known)
		return "", fmt.Errorf("unknown %s algorithm %q (known: %s)", family, name, strings.Join(known, " "))
	}
	return c, nil
}

// usesPool reports whether a canonical algorithm runs its own passes on
// the shared worker pool. Such kernels must not be dispatched from
// inside pool.Run — the nested submit would wait on workers that are
// busy running it — so the batcher runs them back to back, each one
// owning the whole pool (intra-query parallelism), and fans out only
// the sequential kernels (inter-query parallelism). The multi-source
// BFS kernel also owns the pool, but runs once for the whole batch
// (see Batcher.dispatch).
func usesPool(algo string) bool { return strings.HasPrefix(algo, "par-") || algo == "ms" }

// runCC executes a canonical CC algorithm and returns the min-id
// component labeling.
func runCC(algo string, g *graph.Graph, pool *par.Pool) ([]uint32, error) {
	switch algo {
	case "sv-bb":
		labels, _ := cc.SVBranchBased(g)
		return labels, nil
	case "sv-ba":
		labels, _ := cc.SVBranchAvoiding(g)
		return labels, nil
	case "hybrid":
		labels, _ := cc.SVHybrid(g, cc.HybridOptions{SwitchIteration: -1})
		return labels, nil
	case "unionfind":
		return cc.UnionFind(g), nil
	case "par-bb":
		labels, _ := cc.SVParallel(g, cc.ParallelOptions{Pool: pool, Variant: cc.BranchBased})
		return labels, nil
	case "par-ba":
		labels, _ := cc.SVParallel(g, cc.ParallelOptions{Pool: pool, Variant: cc.BranchAvoiding})
		return labels, nil
	case "par-hybrid":
		labels, _ := cc.SVParallel(g, cc.ParallelOptions{Pool: pool, Variant: cc.Hybrid})
		return labels, nil
	default:
		return nil, fmt.Errorf("unknown CC algorithm %q", algo)
	}
}

// runBFS executes a canonical BFS variant and returns the hop distances
// (bfs.Inf for unreached vertices).
func runBFS(algo string, g *graph.Graph, root uint32, pool *par.Pool) ([]uint32, error) {
	switch algo {
	case "bb":
		dist, _ := bfs.TopDownBranchBased(g, root)
		return dist, nil
	case "ba":
		dist, _ := bfs.TopDownBranchAvoiding(g, root)
		return dist, nil
	case "dir-opt":
		dist, _ := bfs.DirectionOptimizing(g, root, 0, 0)
		return dist, nil
	case "par-do":
		dist, _ := bfs.ParallelDO(g, root, bfs.ParallelOptions{Pool: pool})
		return dist, nil
	default:
		return nil, fmt.Errorf("unknown BFS variant %q", algo)
	}
}

// runSSSP executes a canonical SSSP algorithm over the entry's
// weighted view (real edge weights for weighted loads, unit weights
// otherwise) and returns the distances (sssp.Inf for unreached
// vertices). delta is the entry's cached bucket width for the par-*
// kernels (Entry.SSSPDelta), saving the per-query weight-array sweep.
func runSSSP(algo string, w *graph.Weighted, root uint32, delta uint64, pool *par.Pool) ([]uint64, error) {
	switch algo {
	case "bb":
		dist, _ := sssp.BellmanFordBranchBased(w, root)
		return dist, nil
	case "ba":
		dist, _ := sssp.BellmanFordBranchAvoiding(w, root)
		return dist, nil
	case "dijkstra":
		return sssp.Dijkstra(w, root), nil
	case "par-bb":
		dist, _ := sssp.Parallel(w, root, sssp.ParallelOptions{Pool: pool, Variant: sssp.BranchBased, Delta: delta})
		return dist, nil
	case "par-ba":
		dist, _ := sssp.Parallel(w, root, sssp.ParallelOptions{Pool: pool, Variant: sssp.BranchAvoiding, Delta: delta})
		return dist, nil
	case "par-hybrid":
		dist, _ := sssp.Parallel(w, root, sssp.ParallelOptions{Pool: pool, Variant: sssp.Hybrid, Delta: delta})
		return dist, nil
	default:
		return nil, fmt.Errorf("unknown SSSP algorithm %q", algo)
	}
}

// runMultiSourceBFS executes one batch of BFS roots through the shared
// multi-source kernel, returning one distance array per root in order.
func runMultiSourceBFS(g *graph.Graph, roots []uint32, pool *par.Pool) [][]uint32 {
	dists, _ := bfs.MultiSource(g, roots, bfs.MultiSourceOptions{Pool: pool})
	return dists
}
