package serve

// Per-request algorithm selection. Query bodies name kernels with the
// same strings the bacc/babfs command lines use; the tables below
// canonicalize aliases (so "bb" and "sv-bb" coalesce into one batch key);
// canonical names dispatch through internal/algoreq, the translation
// table the CLIs share, into the facade Requests the unified
// bagraph.Run API executes — which is what keeps daemon responses
// byte-identical to direct library calls, and what threads each HTTP
// request's context down to the kernel pass barriers.

import (
	"fmt"
	"sort"
	"strings"
)

// ccAliases maps accepted CC algorithm names to their canonical form.
// The empty string selects the serving default: the parallel hybrid,
// the paper's §6.2 recommendation on a warm pool.
var ccAliases = map[string]string{
	"":           "par-hybrid",
	"auto":       "auto",
	"bb":         "sv-bb",
	"sv-bb":      "sv-bb",
	"ba":         "sv-ba",
	"sv-ba":      "sv-ba",
	"hybrid":     "hybrid",
	"sv-hybrid":  "hybrid",
	"unionfind":  "unionfind",
	"par-bb":     "par-bb",
	"par-ba":     "par-ba",
	"par-hybrid": "par-hybrid",
}

// bfsAliases maps accepted BFS variant names to their canonical form.
// "ms" is the batch-aware multi-source kernel: every request that
// lands in the same dispatch traverses through one shared bottom-up
// mask sweep per level instead of k independent traversals.
var bfsAliases = map[string]string{
	"":             "par-do",
	"auto":         "auto",
	"bb":           "bb",
	"ba":           "ba",
	"dir-opt":      "dir-opt",
	"par-do":       "par-do",
	"ms":           "ms",
	"multi-source": "ms",
}

// ssspAliases maps accepted SSSP algorithm names to their canonical
// form. The empty string selects the serving default: the parallel
// delta-stepping hybrid on the warm pool, mirroring the CC default.
var ssspAliases = map[string]string{
	"":             "par-hybrid",
	"auto":         "auto",
	"bb":           "bb",
	"bellman-ford": "bb",
	"ba":           "ba",
	"dijkstra":     "dijkstra",
	"par-bb":       "par-bb",
	"par-ba":       "par-ba",
	"par-hybrid":   "par-hybrid",
}

// canon resolves an algorithm name against an alias table.
func canon(aliases map[string]string, name, family string) (string, error) {
	c, ok := aliases[name]
	if !ok {
		known := make([]string, 0, len(aliases))
		for k := range aliases {
			if k != "" {
				known = append(known, k)
			}
		}
		sort.Strings(known)
		return "", fmt.Errorf("unknown %s algorithm %q (known: %s)", family, name, strings.Join(known, " "))
	}
	return c, nil
}

// usesPool reports whether a canonical algorithm runs its own passes on
// the shared worker pool. Such kernels must not be dispatched from
// inside pool fan-out — the nested submit would wait on workers that
// are busy running it — so the batcher runs them back to back, each one
// owning the whole pool (intra-query parallelism), and fans out only
// the sequential kernels (inter-query parallelism). The multi-source
// BFS kernel also owns the pool, but runs once for the whole batch
// (see Batcher.dispatch).
func usesPool(algo string) bool { return strings.HasPrefix(algo, "par-") || algo == "ms" }
