package serve_test

// Regression suite for the cancellable CC cache fill. The old fill
// detached from the requesting context (context.Background) so that a
// cancelled client could not poison the per-epoch cache — at the cost
// of a kernel run nobody was waiting for. The fill now runs under the
// interested queries' merged fill context (it stops at a pass barrier
// once every one of them is gone) and a failed fill is retired before
// its waiters wake: a cancelled cohort costs only its own queries, and
// the next query retries as a fresh filler instead of inheriting the
// error.

import (
	"context"
	"errors"
	"sync"
	"testing"

	"bagraph"
	"bagraph/internal/gen"
	"bagraph/internal/serve"
	"bagraph/internal/testutil"
)

// budgetCtx reports Canceled after a fixed number of Err calls; the
// kernels observe cancellation only through Err at pass barriers, so
// the budget cancels a fill mid-kernel without timing dependence.
type budgetCtx struct {
	context.Context
	mu   sync.Mutex
	left int
}

func (f *budgetCtx) Err() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.left <= 0 {
		return context.Canceled
	}
	f.left--
	return nil
}

func fillBudget(n int) *budgetCtx {
	return &budgetCtx{Context: context.Background(), left: n}
}

// ccEntry publishes a high-diameter graph (hundreds of SV passes, so a
// small Err budget always cancels mid-kernel) and a batcher around it.
func ccEntry(t *testing.T) (*serve.Batcher, *serve.Entry, *bagraph.Graph) {
	t.Helper()
	g := gen.Path(1024)
	reg := serve.NewRegistry()
	e, err := reg.Add("path", g)
	if err != nil {
		t.Fatal(err)
	}
	b := serve.NewBatcher(2, 8, -1, bagraph.ScheduleStatic)
	t.Cleanup(b.Close)
	return b, e, g
}

func TestCCFillCancelledFillerRetries(t *testing.T) {
	b, e, g := ccEntry(t)

	// First filler: cancelled mid-kernel. The error must surface and
	// must NOT be cached.
	_, _, _, shared, err := b.CC(fillBudget(3), e, "sv-bb")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled filler: err = %v, want context.Canceled", err)
	}
	if shared {
		t.Fatal("cancelled filler reported a shared result")
	}

	// Second query: a fresh fill (shared=false proves it retried
	// instead of serving the cancelled filler's error or labels).
	labels, comps, stats, shared, err := b.CC(context.Background(), e, "sv-bb")
	if err != nil {
		t.Fatalf("retry after cancelled filler: %v", err)
	}
	if shared {
		t.Fatal("retry was served from a cache the cancelled filler should have retired")
	}
	want, werr := bagraph.Run(context.Background(), g, bagraph.Request{Kind: bagraph.KindCC})
	if werr != nil {
		t.Fatal(werr)
	}
	testutil.MustEqualLabels(t, "retried fill", labels, want.Labels)
	if comps != 1 {
		t.Fatalf("path graph has %d components in the response", comps)
	}
	if stats.Passes == 0 {
		t.Fatal("fill carried no kernel stats")
	}

	// Third query: now it caches.
	_, _, stats3, shared, err := b.CC(context.Background(), e, "sv-bb")
	if err != nil || !shared {
		t.Fatalf("third query: shared=%v err=%v, want cached", shared, err)
	}
	if stats3.Passes != stats.Passes {
		t.Fatalf("cached stats diverge from the fill's: %d vs %d passes", stats3.Passes, stats.Passes)
	}
}

// TestCCFillConcurrentCancelledAndLive is the -race regression: a mix
// of cancelled and live queries hammering one cold cache entry. Every
// live query must end with the correct labeling (possibly after
// retrying behind a cancelled filler); no query may observe another's
// context error as its own unless its own context died.
func TestCCFillConcurrentCancelledAndLive(t *testing.T) {
	b, e, g := ccEntry(t)
	want, err := bagraph.Run(context.Background(), g, bagraph.Request{Kind: bagraph.KindCC})
	if err != nil {
		t.Fatal(err)
	}

	const rounds = 4
	const each = 8
	for round := 0; round < rounds; round++ {
		var wg sync.WaitGroup
		errs := make([]error, 2*each)
		labels := make([][]uint32, 2*each)
		for i := 0; i < 2*each; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				ctx := context.Context(context.Background())
				if i%2 == 0 {
					// Budgets straddle the fill length: some die before
					// the kernel, some mid-kernel.
					ctx = fillBudget(i / 2 * 3)
				}
				labels[i], _, _, _, errs[i] = b.CC(ctx, e, "sv-bb")
			}(i)
		}
		wg.Wait()
		for i := 0; i < 2*each; i++ {
			if i%2 == 1 {
				if errs[i] != nil {
					t.Fatalf("round %d: live query %d failed: %v", round, i, errs[i])
				}
				testutil.MustEqualLabels(t, "live query", labels[i], want.Labels)
			} else if errs[i] != nil && !errors.Is(errs[i], context.Canceled) {
				t.Fatalf("round %d: cancelled query %d: unexpected error %v", round, i, errs[i])
			}
		}
	}
}
