package serve

// The batching dispatcher. The paper's branch-avoiding kernels win
// exactly when per-query work is small — a BFS on a mid-size graph is
// milliseconds — which makes a query-serving daemon pay more for
// per-request goroutine churn and cold pools than for the traversal
// itself. The dispatcher amortizes that: concurrent traversal requests
// against the same (graph, kind, algorithm) are coalesced for a short
// window into one batch, and the batch of source vertices is fanned out
// across the one resident worker pool. Kernels that parallelize
// internally (par-*) instead run back to back, each owning the whole
// pool. The multi-source BFS kernel ("ms") coalesces deeper still: the
// whole batch becomes one kernel run whose shared level sweeps advance
// every batched source at once. CC queries have no per-request source,
// so they coalesce hardest: concurrent identical queries share a single
// kernel run and the label array is cached on the graph entry until its
// epoch is retired.

import (
	"sync"
	"time"

	"bagraph/internal/cc"
	"bagraph/internal/par"
)

// kind separates the two traversal families a batch can hold.
type kind int

const (
	kindBFS kind = iota
	kindSSSP
)

// Request is one traversal query: a source vertex against a resident
// graph with a canonical algorithm name.
type Request struct {
	entry *Entry
	kind  kind
	algo  string
	root  uint32
	done  chan Result
}

// Result is the outcome of one batched traversal. Exactly one of Hops
// and Dists is set, matching the request kind.
type Result struct {
	// Hops are BFS hop distances (bfs.Inf sentinel for unreached).
	Hops []uint32
	// Dists are weighted SSSP distances (sssp.Inf sentinel).
	Dists []uint64
	// Batch is the number of requests dispatched together, the
	// coalescing observability hook the tests and clients read.
	Batch int
	// Err is the per-request failure, if any.
	Err error
}

// batchKey identifies the batch a request may join: same graph entry
// (and therefore same epoch), same traversal kind, same canonical
// algorithm.
type batchKey struct {
	entry *Entry
	kind  kind
	algo  string
}

// pendingBatch accumulates requests until the window timer fires or the
// batch fills.
type pendingBatch struct {
	key     batchKey
	reqs    []*Request
	timer   *time.Timer
	flushed bool
}

// Batcher owns the worker pool and the pending-batch table.
type Batcher struct {
	pool     *par.Pool
	maxBatch int
	window   time.Duration

	mu      sync.Mutex
	pending map[batchKey]*pendingBatch
}

// NewBatcher starts a dispatcher over a pool of the given size
// (workers < 1 means GOMAXPROCS). maxBatch < 1 defaults to 32. A
// positive window holds the first request of a batch that long for
// company before dispatching; window <= 0 dispatches every request
// immediately on its own (no coalescing).
func NewBatcher(workers, maxBatch int, window time.Duration) *Batcher {
	if maxBatch < 1 {
		maxBatch = 32
	}
	return &Batcher{
		pool:     par.NewPool(workers),
		maxBatch: maxBatch,
		window:   window,
		pending:  make(map[batchKey]*pendingBatch),
	}
}

// Workers returns the resident pool size.
func (b *Batcher) Workers() int { return b.pool.Workers() }

// Close releases the worker pool. In-flight dispatches must have
// drained; the HTTP server's shutdown guarantees that.
func (b *Batcher) Close() { b.pool.Close() }

// BFS enqueues a BFS query and blocks until its batch is dispatched.
// algo must be canonical (see bfsAliases) and root in range.
func (b *Batcher) BFS(e *Entry, algo string, root uint32) Result {
	return b.traverse(&Request{entry: e, kind: kindBFS, algo: algo, root: root})
}

// SSSP enqueues a weighted SSSP query (real edge weights for weighted
// entries, unit weights otherwise) and blocks until its batch is
// dispatched. algo must be canonical (see ssspAliases) and root in
// range.
func (b *Batcher) SSSP(e *Entry, algo string, root uint32) Result {
	return b.traverse(&Request{entry: e, kind: kindSSSP, algo: algo, root: root})
}

// CC returns the component labeling and count for (e, algo), computing
// it at most once per graph epoch: concurrent identical queries block
// on the same sync.Once and share the result, later ones are served
// from the entry's cache. shared reports whether this call reused a
// computation started by another request (or an earlier one). The
// returned labels are shared and must not be mutated.
func (b *Batcher) CC(e *Entry, algo string) (labels []uint32, components int, shared bool, err error) {
	e.ccMu.Lock()
	res, ok := e.ccCache[algo]
	if !ok {
		res = &ccResult{}
		e.ccCache[algo] = res
	}
	e.ccMu.Unlock()
	first := false
	res.once.Do(func() {
		first = true
		res.labels, res.err = runCC(algo, e.Graph(), b.pool)
		if res.err == nil {
			res.components = cc.CountComponents(res.labels)
		}
	})
	return res.labels, res.components, !first, res.err
}

// traverse joins (or opens) the pending batch for the request's key and
// waits for the dispatch to deliver its result.
func (b *Batcher) traverse(req *Request) Result {
	req.done = make(chan Result, 1)
	key := batchKey{entry: req.entry, kind: req.kind, algo: req.algo}

	b.mu.Lock()
	pb := b.pending[key]
	if pb == nil {
		pb = &pendingBatch{key: key}
		b.pending[key] = pb
		if b.window > 0 {
			pb.timer = time.AfterFunc(b.window, func() { b.flushTimed(pb) })
		}
	}
	pb.reqs = append(pb.reqs, req)
	var dispatch []*Request
	if len(pb.reqs) >= b.maxBatch || b.window <= 0 {
		dispatch = b.takeLocked(pb)
	}
	b.mu.Unlock()

	if dispatch != nil {
		b.dispatch(key, dispatch)
	}
	return <-req.done
}

// takeLocked claims a pending batch for dispatch. Callers hold b.mu.
func (b *Batcher) takeLocked(pb *pendingBatch) []*Request {
	if pb.flushed {
		return nil
	}
	pb.flushed = true
	if pb.timer != nil {
		pb.timer.Stop()
	}
	delete(b.pending, pb.key)
	return pb.reqs
}

// flushTimed is the window-timer path: claim the batch if the size
// trigger has not already done so.
func (b *Batcher) flushTimed(pb *pendingBatch) {
	b.mu.Lock()
	reqs := b.takeLocked(pb)
	b.mu.Unlock()
	if reqs != nil {
		b.dispatch(pb.key, reqs)
	}
}

// dispatch runs one claimed batch and delivers per-request results.
// Three shapes, in decreasing order of sharing:
//
//   - Multi-source BFS ("ms"): the whole batch is ONE kernel run — the
//     batched roots traverse together through shared bottom-up mask
//     sweeps, one graph pass per level for up to 64 sources.
//   - Pool-using kernels (par-*): run back to back, each parallelizing
//     internally (a nested pool.Run would deadlock on its own workers).
//   - Sequential kernels: the batch of sources fans out across the
//     pool — the batch is the unit of parallelism.
func (b *Batcher) dispatch(key batchKey, reqs []*Request) {
	n := len(reqs)
	results := make([]Result, n)
	switch {
	case key.kind == kindBFS && key.algo == "ms":
		roots := make([]uint32, n)
		for i, r := range reqs {
			roots[i] = r.root
		}
		dists := runMultiSourceBFS(key.entry.Graph(), roots, b.pool)
		for i := range results {
			results[i] = Result{Hops: dists[i]}
		}
	case usesPool(key.algo):
		for i, r := range reqs {
			results[i] = b.runOne(r)
		}
	default:
		b.pool.Run(n, func(i int) { results[i] = b.runOne(reqs[i]) })
	}
	for i, r := range reqs {
		results[i].Batch = n
		r.done <- results[i]
	}
}

// runOne executes a single traversal.
func (b *Batcher) runOne(r *Request) Result {
	switch r.kind {
	case kindSSSP:
		w, err := r.entry.Weighted()
		if err != nil {
			return Result{Err: err}
		}
		dist, err := runSSSP(r.algo, w, r.root, r.entry.SSSPDelta(), b.pool)
		return Result{Dists: dist, Err: err}
	default:
		dist, err := runBFS(r.algo, r.entry.Graph(), r.root, b.pool)
		return Result{Hops: dist, Err: err}
	}
}
