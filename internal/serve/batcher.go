package serve

// The batching dispatcher. The paper's branch-avoiding kernels win
// exactly when per-query work is small — a BFS on a mid-size graph is
// milliseconds — which makes a query-serving daemon pay more for
// per-request goroutine churn and cold pools than for the traversal
// itself. The dispatcher amortizes that: concurrent traversal requests
// against the same (graph, kind, algorithm) are coalesced for a short
// window into one batch, and the batch of source vertices is fanned out
// across the one resident worker pool. Kernels that parallelize
// internally (par-*) instead run back to back, each owning the whole
// pool. The multi-source BFS kernel ("ms") coalesces deeper still: the
// whole batch becomes one kernel run whose shared level sweeps advance
// every batched source at once. CC queries have no per-request source,
// so they coalesce hardest: concurrent identical queries share a single
// kernel run and the label array is cached on the graph entry until its
// epoch is retired.
//
// Every request carries its originating context (the HTTP request's,
// for daemon traffic), threaded through Submit down to the kernel pass
// barriers. A request whose context dies while queued is dropped from
// the coalesced dispatch without running; a batch whose every waiter
// is gone cancels its shared kernel run at the next barrier.

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"bagraph"
	"bagraph/internal/algoreq"
	"bagraph/internal/cc"
	"bagraph/internal/tune"
)

// Kind separates the two traversal families a batch can hold.
type Kind int

// Traversal families.
const (
	KindBFS Kind = iota
	KindSSSP
)

// Request is one traversal query: a source vertex against a resident
// graph with a canonical algorithm name, on behalf of a context.
type Request struct {
	entry *Entry
	kind  Kind
	algo  string
	root  uint32
	ctx   context.Context
	done  chan Result
}

// Result is the outcome of one batched traversal. Exactly one of Hops
// and Dists is set, matching the request kind.
type Result struct {
	// Hops are BFS hop distances (bfs.Inf sentinel for unreached).
	Hops []uint32
	// Dists are weighted SSSP distances (sssp.Inf sentinel).
	Dists []uint64
	// Stats are the kernel counters of the run that served this
	// request. For a multi-source batch they describe the one shared
	// run every batched query rode.
	Stats bagraph.Stats
	// Batch is the number of requests dispatched together, the
	// coalescing observability hook the tests and clients read.
	Batch int
	// Err is the per-request failure, if any; a request abandoned by
	// its context carries the context's error.
	Err error
}

// batchKey identifies the batch a request may join: same graph entry
// (and therefore same epoch), same traversal kind, same canonical
// algorithm.
type batchKey struct {
	entry *Entry
	kind  Kind
	algo  string
}

// pendingBatch accumulates requests until the window timer fires or the
// batch fills.
type pendingBatch struct {
	key     batchKey
	reqs    []*Request
	timer   *time.Timer
	flushed bool
}

// Batcher owns the worker pool and the pending-batch table.
type Batcher struct {
	wp       *bagraph.WorkerPool
	maxBatch int
	window   time.Duration
	// schedule is the chunk schedule every dispatched parallel kernel
	// runs under, fixed at construction.
	schedule bagraph.Schedule
	// fills tracks detached CC cache-fill goroutines: a fill outlives
	// any handler whose deadline fired mid-kernel, so Close must wait
	// for it before releasing the pool it is running on.
	fills sync.WaitGroup

	// metrics, when set, receives batch sizes, cache events and kernel
	// counters; nil disables the plane (every observe is a nil no-op).
	metrics *Metrics
	// tuner, when set, overrides the static schedule/delta/light-heavy
	// knobs per dispatch and is fed each run's counters back. Both are
	// fixed before traffic (Server.New wires them); dispatches read
	// them without locks.
	tuner *tune.Controller

	mu      sync.Mutex
	pending map[batchKey]*pendingBatch
}

// NewBatcher starts a dispatcher over a pool of the given size
// (workers < 1 means GOMAXPROCS). maxBatch < 1 defaults to 32. A
// positive window holds the first request of a batch that long for
// company before dispatching; window <= 0 dispatches every request
// immediately on its own (no coalescing). Every dispatched parallel
// kernel runs under sched (bagraph.ScheduleStatic or
// bagraph.ScheduleStealing).
func NewBatcher(workers, maxBatch int, window time.Duration, sched bagraph.Schedule) *Batcher {
	if maxBatch < 1 {
		maxBatch = 32
	}
	return &Batcher{
		wp:       bagraph.NewWorkerPool(workers),
		maxBatch: maxBatch,
		window:   window,
		schedule: sched,
		pending:  make(map[batchKey]*pendingBatch),
	}
}

// SetMetrics attaches the aggregation plane. Call before serving
// traffic; dispatches read the field unsynchronized.
func (b *Batcher) SetMetrics(m *Metrics) { b.metrics = m }

// SetTuner attaches the adaptive controller. Call before serving
// traffic; dispatches read the field unsynchronized.
func (b *Batcher) SetTuner(t *tune.Controller) { b.tuner = t }

// Workers returns the resident pool size.
func (b *Batcher) Workers() int { return b.wp.Workers() }

// workload describes one dispatch to the tuner: the cell identity plus
// the static shape facts a first decision needs.
func (b *Batcher) workload(e *Entry, kind string, delta uint64) tune.Workload {
	g := e.Graph()
	return tune.Workload{
		Graph: e.Name(), Epoch: e.Epoch(), Kind: kind,
		Vertices: g.NumVertices(), Arcs: g.NumArcs(),
		MaxDegree: e.MaxDegree(), Workers: b.wp.Workers(),
		DefaultDelta: delta,
	}
}

// scheduleName renders a schedule for the autotune decisions metric.
func scheduleName(s bagraph.Schedule) string {
	if s == bagraph.ScheduleStealing {
		return "stealing"
	}
	return "static"
}

// kindLabel is the metric label for a batch key: the query family,
// except the multi-source BFS kernel which gets its own series (its
// batch and wave shapes are a different population).
func kindLabel(key batchKey) string {
	switch {
	case key.kind == KindSSSP:
		return tune.KindSSSP
	case key.algo == "ms":
		return tune.KindMS
	default:
		return tune.KindBFS
	}
}

// Close releases the worker pool. In-flight dispatches must have
// drained (the HTTP server's shutdown guarantees that); detached CC
// cache fills may still be running — their cohorts' handlers are gone,
// so they stop at their next pass barrier — and Close waits for them
// before releasing the pool they run on.
func (b *Batcher) Close() {
	b.fills.Wait()
	b.wp.Close()
}

// BFS enqueues a BFS query and blocks until its batch is dispatched or
// ctx dies. algo must be canonical (see bfsAliases) and root in range.
func (b *Batcher) BFS(ctx context.Context, e *Entry, algo string, root uint32) Result {
	return b.Submit(ctx, e, KindBFS, algo, root)
}

// SSSP enqueues a weighted SSSP query (real edge weights for weighted
// entries, unit weights otherwise) and blocks until its batch is
// dispatched or ctx dies. algo must be canonical (see ssspAliases) and
// root in range.
func (b *Batcher) SSSP(ctx context.Context, e *Entry, algo string, root uint32) Result {
	return b.Submit(ctx, e, KindSSSP, algo, root)
}

// fillContext is the context a CC cache fill runs under: alive while
// any query interested in the fill is alive. The kernels observe
// cancellation through Err alone at their pass barriers (never Done),
// so Err polls the interested contexts — nil while any is live, the
// filler's error once all are gone. One abandoned client therefore
// cannot kill a fill other clients are waiting on (a per-query
// deadline shorter than the kernel stops starving the cache as soon
// as queries overlap), while a fill nobody is waiting for still stops
// at its next barrier instead of burning the pool for an empty room.
type fillContext struct {
	context.Context // Background: no Done channel, no deadline
	mu              sync.Mutex
	parties         []context.Context
	sealed          bool
}

// newFillContext starts the interested set with the filler's context.
func newFillContext(ctx context.Context) *fillContext {
	return &fillContext{Context: context.Background(), parties: []context.Context{ctx}}
}

// join adds a query's context to the interested set. After seal it is
// a no-op: cache hits against a completed fill must not accumulate
// (and thereby retain) their request contexts for the epoch's
// lifetime.
func (f *fillContext) join(ctx context.Context) {
	f.mu.Lock()
	if !f.sealed {
		f.parties = append(f.parties, ctx)
	}
	f.mu.Unlock()
}

// seal marks the fill finished and releases the interested contexts.
func (f *fillContext) seal() {
	f.mu.Lock()
	f.sealed = true
	f.parties = nil
	f.mu.Unlock()
}

// Err reports nil while any interested context is live, and the first
// (the filler's) error once every one of them has died.
func (f *fillContext) Err() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	var first error
	for _, p := range f.parties {
		err := p.Err()
		if err == nil {
			return nil
		}
		if first == nil {
			first = err
		}
	}
	return first
}

// CC returns the component labeling, count and kernel stats for
// (e, algo), computing it at most once per graph epoch: the first
// query becomes the filler and runs the kernel under its own context,
// concurrent identical queries wait on the same fill, and later ones
// are served from the entry's cache. shared reports whether this call
// reused a computation another request started (or an earlier one
// finished). The returned labels are shared and must not be mutated.
//
// The fill runs under a fillContext every interested query joins: it
// keeps going while any of them is live and stops at its next pass
// barrier when the last one is gone. A fill that fails — every
// interested client cancelling mid-kernel is the expected case — is
// retired from the cache before its waiters wake, and any later query
// retries as a fresh filler. Cancelled clients therefore cost only
// their own queries; they neither poison the cache with their error
// nor leave a detached kernel run burning the pool for nobody.
func (b *Batcher) CC(ctx context.Context, e *Entry, algo string) (labels []uint32, components int, stats bagraph.Stats, shared bool, err error) {
	for {
		if err := ctx.Err(); err != nil {
			return nil, 0, bagraph.Stats{}, false, err
		}
		e.ccMu.Lock()
		res, ok := e.ccCache[algo]
		if !ok {
			res = &ccResult{ready: make(chan struct{}), fill: newFillContext(ctx)}
			e.ccCache[algo] = res
			e.ccMu.Unlock()
			b.metrics.ObserveCC("miss")
			// The fill runs in its own goroutine so the filler's
			// handler waits below like every other interested query:
			// its own deadline or disconnect still bounds ITS response
			// while the fill lives on for whoever else joined.
			b.fills.Add(1)
			go b.fillCC(res, algo, e)
		} else {
			e.ccMu.Unlock()
			b.metrics.ObserveCC("hit")
			// Joining keeps the in-flight fill alive for as long as
			// this query is; against a completed fill it is a no-op.
			res.fill.join(ctx)
		}
		select {
		case <-res.ready:
			if res.err != nil && (errors.Is(res.err, context.Canceled) || errors.Is(res.err, context.DeadlineExceeded)) {
				// The fill's whole cohort died and its entry is
				// retired; retry under our own (still live) context.
				// Non-context errors are the query's real answer.
				b.metrics.ObserveCC("retry")
				continue
			}
			// shared = ok: true exactly when this call joined a fill
			// (or cache) someone else installed.
			return res.labels, res.components, res.stats, ok, res.err
		case <-ctx.Done():
			return nil, 0, bagraph.Stats{}, false, ctx.Err()
		}
	}
}

// fillCC runs one CC cache fill to completion: kernel, component
// count, retire-on-failure, then wake the waiters. It owns res until
// ready closes.
func (b *Batcher) fillCC(res *ccResult, algo string, e *Entry) {
	defer b.fills.Done()
	res.labels, res.stats, res.err = b.runCC(res.fill, algo, e)
	if res.err == nil {
		res.components = cc.CountComponents(res.labels)
	} else {
		// Retire the failed fill so the next query retries; the guard
		// keeps a concurrent successor's entry intact.
		e.ccMu.Lock()
		if e.ccCache[algo] == res {
			delete(e.ccCache, algo)
		}
		e.ccMu.Unlock()
	}
	res.fill.seal()
	close(res.ready)
}

// runCC executes one CC cache fill through the facade under the
// cohort's fill context; a cancelled fill returns the context's error
// and caches nothing.
func (b *Batcher) runCC(ctx context.Context, algo string, e *Entry) ([]uint32, bagraph.Stats, error) {
	req, err := algoreq.CC(algo)
	if err != nil {
		return nil, bagraph.Stats{}, err
	}
	req.Schedule = b.schedule
	var w tune.Workload
	if b.tuner != nil {
		w = b.workload(e, tune.KindCC, 0)
		d := b.tuner.Decide(w)
		req.Schedule = d.Schedule
		b.metrics.ObserveAutotune(tune.KindCC, "schedule", scheduleName(d.Schedule))
	}
	res, err := b.wp.Run(ctx, e.target(), req)
	if err != nil {
		return nil, bagraph.Stats{}, err
	}
	if b.tuner != nil {
		b.tuner.Observe(w, res.Stats)
	}
	b.metrics.ObserveRun(tune.KindCC, res.Stats)
	return res.Labels, res.Stats, nil
}

// Submit joins (or opens) the pending batch for the query's key and
// waits for the dispatch to deliver its result. A context that dies
// before dispatch unblocks Submit immediately with ctx's error and the
// queued request is dropped when its batch flushes; one that dies
// mid-kernel is observed at the next pass barrier.
func (b *Batcher) Submit(ctx context.Context, e *Entry, k Kind, algo string, root uint32) Result {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return Result{Err: err}
	}
	req := &Request{entry: e, kind: k, algo: algo, root: root, ctx: ctx}
	req.done = make(chan Result, 1)
	key := batchKey{entry: e, kind: k, algo: algo}

	b.mu.Lock()
	pb := b.pending[key]
	if pb == nil {
		pb = &pendingBatch{key: key}
		b.pending[key] = pb
		if b.window > 0 {
			pb.timer = time.AfterFunc(b.window, func() { b.flushTimed(pb) })
		}
	}
	pb.reqs = append(pb.reqs, req)
	var dispatch []*Request
	if len(pb.reqs) >= b.maxBatch || b.window <= 0 {
		dispatch = b.takeLocked(pb)
	}
	b.mu.Unlock()

	if dispatch != nil {
		b.dispatch(key, dispatch)
	}
	// done is buffered, so an early ctx exit never blocks the
	// dispatcher; the request's result (or drop notice) is simply
	// discarded.
	select {
	case res := <-req.done:
		return res
	case <-ctx.Done():
		return Result{Err: ctx.Err()}
	}
}

// takeLocked claims a pending batch for dispatch. Callers hold b.mu.
func (b *Batcher) takeLocked(pb *pendingBatch) []*Request {
	if pb.flushed {
		return nil
	}
	pb.flushed = true
	if pb.timer != nil {
		pb.timer.Stop()
	}
	delete(b.pending, pb.key)
	return pb.reqs
}

// flushTimed is the window-timer path: claim the batch if the size
// trigger has not already done so.
func (b *Batcher) flushTimed(pb *pendingBatch) {
	b.mu.Lock()
	reqs := b.takeLocked(pb)
	b.mu.Unlock()
	if reqs != nil {
		b.dispatch(pb.key, reqs)
	}
}

// dropAbandoned filters a claimed batch down to the requests still
// worth running; requests whose context died while queued are answered
// with their context's error in place, without running anything.
func dropAbandoned(reqs []*Request) []*Request {
	live := reqs[:0]
	for _, r := range reqs {
		if err := r.ctx.Err(); err != nil {
			r.done <- Result{Err: err}
			continue
		}
		live = append(live, r)
	}
	return live
}

// batchContext derives a context that is cancelled once every request
// of the batch has been abandoned — the shared multi-source kernel run
// serves all waiters at once, so it keeps going while any of them is
// still listening, and stops at the next level barrier when none is.
// stop releases the watchers; it must be called when the dispatch
// finishes.
func batchContext(reqs []*Request) (ctx context.Context, stop func()) {
	bctx, cancel := context.WithCancel(context.Background())
	remaining := int64(len(reqs))
	stops := make([]func() bool, 0, len(reqs))
	for _, r := range reqs {
		stops = append(stops, context.AfterFunc(r.ctx, func() {
			if atomic.AddInt64(&remaining, -1) == 0 {
				cancel()
			}
		}))
	}
	return bctx, func() {
		for _, s := range stops {
			s()
		}
		cancel()
	}
}

// dispatch runs one claimed batch and delivers per-request results.
// Requests abandoned while queued are dropped first; the survivors run
// in one of three shapes, in decreasing order of sharing:
//
//   - Multi-source BFS ("ms"): the whole batch is ONE kernel run — the
//     batched roots traverse together through shared bottom-up mask
//     sweeps, one graph pass per level for up to 64 sources — executed
//     under a context that dies only when every waiter is gone.
//   - Pool-using kernels (par-*): run back to back, each parallelizing
//     internally (a nested pool fan-out would deadlock on its own
//     workers) under its own request's context.
//   - Sequential kernels: the batch of sources fans out across the
//     pool — the batch is the unit of parallelism — each under its own
//     request's context.
func (b *Batcher) dispatch(key batchKey, reqs []*Request) {
	reqs = dropAbandoned(reqs)
	n := len(reqs)
	if n == 0 {
		return
	}
	results := make([]Result, n)
	b.metrics.ObserveBatch(kindLabel(key), n)
	switch {
	case key.kind == KindBFS && key.algo == "ms":
		roots := make([]uint32, n)
		for i, r := range reqs {
			roots[i] = r.root
		}
		sched := b.schedule
		var w tune.Workload
		if b.tuner != nil {
			w = b.workload(key.entry, tune.KindMS, 0)
			d := b.tuner.Decide(w)
			sched = d.Schedule
			b.metrics.ObserveAutotune(tune.KindMS, "schedule", scheduleName(sched))
		}
		bctx, stop := batchContext(reqs)
		res, err := b.wp.Run(bctx, key.entry.target(), bagraph.Request{
			Kind: bagraph.KindBFSBatch, Roots: roots, Schedule: sched,
		})
		stop()
		if err == nil {
			if b.tuner != nil {
				b.tuner.Observe(w, res.Stats)
			}
			b.metrics.ObserveRun(tune.KindMS, res.Stats)
			b.metrics.ObserveWaveOccupancy(n, res.Stats.Waves)
		}
		for i := range results {
			if err != nil {
				results[i] = Result{Err: err}
			} else {
				results[i] = Result{Hops: res.HopsBatch[i], Stats: res.Stats}
			}
		}
	case usesPool(key.algo):
		for i, r := range reqs {
			results[i] = b.runOne(r)
		}
	default:
		b.wp.Each(n, func(i int) { results[i] = b.runOne(reqs[i]) })
	}
	for i, r := range reqs {
		results[i].Batch = n
		r.done <- results[i]
	}
}

// runOne executes a single traversal under its request's context. With
// a tuner attached, the dispatch's result-invariant knobs (schedule,
// delta, light/heavy) come from the cell's current decision and the
// run's counters are fed back; the algorithm itself is part of the
// batch key and never changes here.
func (b *Batcher) runOne(r *Request) Result {
	switch r.kind {
	case KindSSSP:
		tgt, err := r.entry.weightedTarget()
		if err != nil {
			return Result{Err: err}
		}
		req, err := algoreq.SSSP(r.algo, r.root, r.entry.SSSPDelta())
		if err != nil {
			return Result{Err: err}
		}
		req.Schedule = b.schedule
		var w tune.Workload
		if b.tuner != nil {
			w = b.workload(r.entry, tune.KindSSSP, r.entry.SSSPDelta())
			d := b.tuner.Decide(w)
			req.Schedule = d.Schedule
			req.LightHeavy = d.LightHeavy
			if d.Delta != 0 {
				req.Delta = d.Delta
			}
			b.metrics.ObserveAutotune(tune.KindSSSP, "schedule", scheduleName(d.Schedule))
			b.metrics.ObserveAutotune(tune.KindSSSP, "delta", formatDelta(req.Delta))
		}
		res, err := b.wp.Run(r.ctx, tgt, req)
		if err != nil {
			return Result{Err: err}
		}
		if b.tuner != nil {
			b.tuner.Observe(w, res.Stats)
		}
		b.metrics.ObserveRun(tune.KindSSSP, res.Stats)
		return Result{Dists: res.Dists, Stats: res.Stats}
	default:
		req, err := algoreq.BFS(r.algo, r.root)
		if err != nil {
			return Result{Err: err}
		}
		req.Schedule = b.schedule
		var w tune.Workload
		if b.tuner != nil {
			w = b.workload(r.entry, tune.KindBFS, 0)
			d := b.tuner.Decide(w)
			req.Schedule = d.Schedule
			b.metrics.ObserveAutotune(tune.KindBFS, "schedule", scheduleName(d.Schedule))
		}
		res, err := b.wp.Run(r.ctx, r.entry.target(), req)
		if err != nil {
			return Result{Err: err}
		}
		if b.tuner != nil {
			b.tuner.Observe(w, res.Stats)
		}
		b.metrics.ObserveRun(tune.KindBFS, res.Stats)
		return Result{Hops: res.Hops, Stats: res.Stats}
	}
}
