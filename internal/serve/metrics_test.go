package serve_test

// Black-box coverage for the aggregation plane: loaded daemons must
// expose parseable Prometheus text with the series the smoke script
// asserts on, the "auto" algorithm must answer byte-identically to the
// static defaults, and the per-query "stats" object must survive the
// HTTP round-trip for every family including the cached-CC replay.

import (
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"bagraph"
	"bagraph/internal/serve"
)

// scrape GETs /metrics and returns every sample line as series → value,
// failing on any line that does not match the exposition grammar.
func scrape(t *testing.T, baseURL string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	line := regexp.MustCompile(`^([A-Za-z_][A-Za-z0-9_]*(?:\{[^{}]*\})?) (-?[0-9eE+.]+|\+Inf|NaN)$`)
	out := make(map[string]float64)
	for _, l := range strings.Split(strings.TrimSpace(string(body)), "\n") {
		if l == "" || strings.HasPrefix(l, "#") {
			continue
		}
		m := line.FindStringSubmatch(l)
		if m == nil {
			t.Fatalf("unparseable exposition line %q", l)
		}
		v, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", l, err)
		}
		out[m[1]] = v
	}
	return out
}

// sumSeries totals every sample whose series name starts with prefix.
func sumSeries(samples map[string]float64, prefix string) float64 {
	total := 0.0
	for series, v := range samples {
		if strings.HasPrefix(series, prefix) {
			total += v
		}
	}
	return total
}

func TestMetricsEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)

	// Load the daemon: two identical CC queries (fill then cache hit),
	// a parallel BFS, a multi-source BFS, and an SSSP.
	for i := 0; i < 2; i++ {
		if code, _ := post[ccResp](t, ts.URL+"/query/cc",
			map[string]any{"graph": "cm", "algo": "par-hybrid"}); code != http.StatusOK {
			t.Fatalf("cc query %d: status %d", i, code)
		}
	}
	post[travResp](t, ts.URL+"/query/bfs", map[string]any{"graph": "cm", "root": 0, "algo": "par-do"})
	post[travResp](t, ts.URL+"/query/bfs", map[string]any{"graph": "cm", "root": 1, "algo": "ms"})
	post[ssspResp](t, ts.URL+"/query/sssp", map[string]any{"graph": "cm", "root": 0, "algo": "par-hybrid"})
	// One rejected query feeds the bad_request class.
	post[errResp](t, ts.URL+"/query/bfs", map[string]any{"graph": "cm", "root": 0, "algo": "nope"})

	samples := scrape(t, ts.URL)
	atLeast := func(series string, min float64) {
		t.Helper()
		if got := samples[series]; got < min {
			t.Fatalf("%s = %v, want >= %v\n(have %d series)", series, got, min, len(samples))
		}
	}
	atLeast(`baserved_queries_total{kind="cc",status="ok"}`, 2)
	atLeast(`baserved_queries_total{kind="bfs",status="ok"}`, 2)
	atLeast(`baserved_queries_total{kind="sssp",status="ok"}`, 1)
	atLeast(`baserved_queries_total{kind="bfs",status="bad_request"}`, 1)
	atLeast(`baserved_query_seconds_count{kind="cc"}`, 2)
	atLeast(`baserved_cc_cache_events_total{event="miss"}`, 1)
	atLeast(`baserved_cc_cache_events_total{event="hit"}`, 1)
	atLeast(`baserved_batch_size_count{kind="bfs"}`, 1)
	atLeast(`baserved_batch_size_count{kind="ms"}`, 1)
	atLeast(`baserved_batch_size_count{kind="sssp"}`, 1)
	atLeast(`baserved_ms_wave_occupancy_count`, 1)
	atLeast(`baserved_kernel_passes_total{kind="cc"}`, 1)
	atLeast(`baserved_kernel_passes_total{kind="bfs"}`, 1)
	atLeast(`baserved_kernel_passes_total{kind="sssp"}`, 1)
	atLeast(`baserved_kernel_chunks_total{kind="bfs"}`, 1)
	atLeast(`baserved_kernel_dist_stores_total{kind="sssp"}`, 1)
	atLeast(`baserved_kernel_light_relaxed_total{kind="sssp"}`, 1)
	atLeast(`baserved_kernel_words_scanned_total{kind="ms"}`, 1)
	if sumSeries(samples, "baserved_steals_per_pass_count") < 1 {
		t.Fatal("no steals_per_pass observations from chunked runs")
	}
	// The cached CC replay must not rerun the kernel: one fill's passes.
	if cc2 := samples[`baserved_query_seconds_count{kind="cc"}`]; cc2 < 2 {
		t.Fatalf("cc latency histogram count = %v, want 2", cc2)
	}
}

// autotuneServer publishes the same graph behind an autotuning core.
func autotuneServer(t *testing.T, g *bagraph.Graph, schedule bagraph.Schedule) *httptest.Server {
	t.Helper()
	reg := serve.NewRegistry()
	if _, err := reg.Add("cm", g); err != nil {
		t.Fatal(err)
	}
	core := serve.New(reg, serve.Config{Workers: 2, BatchWindow: -1, Schedule: schedule, Autotune: true})
	ts := httptest.NewServer(core.Handler())
	t.Cleanup(func() {
		ts.Close()
		core.Close()
	})
	return ts
}

// TestAutotuneAuto: with -autotune, algorithm "auto" (and the empty
// default) must answer byte-identically to the static defaults while
// the decisions counter records the picks — across enough rounds that
// the cells pass their settle boundaries and may switch kernels.
func TestAutotuneAuto(t *testing.T) {
	tsStatic, g := newTestServer(t)
	tsAuto := autotuneServer(t, g, bagraph.ScheduleStatic)

	_, wantCC := post[ccResp](t, tsStatic.URL+"/query/cc",
		map[string]any{"graph": "cm", "algo": "par-hybrid", "labels": true})
	_, wantBFS := post[travResp](t, tsStatic.URL+"/query/bfs",
		map[string]any{"graph": "cm", "root": 0})
	_, wantSSSP := post[ssspResp](t, tsStatic.URL+"/query/sssp",
		map[string]any{"graph": "cm", "root": 0})

	for round := 0; round < 12; round++ {
		algo := "auto"
		if round%2 == 1 {
			algo = "" // empty defaults to auto when the flag is on
		}
		code, cc := post[ccResp](t, tsAuto.URL+"/query/cc",
			map[string]any{"graph": "cm", "algo": algo, "labels": true})
		if code != http.StatusOK {
			t.Fatalf("round %d: cc status %d", round, code)
		}
		if cc.Components != wantCC.Components {
			t.Fatalf("round %d: auto cc %d components, static %d", round, cc.Components, wantCC.Components)
		}
		if cc.Algo == "auto" || cc.Algo == "" {
			t.Fatalf("round %d: response algo %q not resolved", round, cc.Algo)
		}
		// A fresh algo pick starts a fresh cache fill; labels must
		// nevertheless be identical arrays.
		for i, l := range cc.Labels {
			if l != wantCC.Labels[i] {
				t.Fatalf("round %d: auto cc labels diverge at %d: %d != %d", round, i, l, wantCC.Labels[i])
			}
		}
		_, bfsRes := post[travResp](t, tsAuto.URL+"/query/bfs",
			map[string]any{"graph": "cm", "root": 0, "algo": algo})
		for i, d := range bfsRes.Dist {
			if d != wantBFS.Dist[i] {
				t.Fatalf("round %d: auto bfs dist diverges at %d", round, i)
			}
		}
		_, ssspRes := post[ssspResp](t, tsAuto.URL+"/query/sssp",
			map[string]any{"graph": "cm", "root": 0, "algo": algo})
		if ssspRes.Sum != wantSSSP.Sum || ssspRes.Reached != wantSSSP.Reached {
			t.Fatalf("round %d: auto sssp sum %d/%d, static %d/%d",
				round, ssspRes.Sum, ssspRes.Reached, wantSSSP.Sum, wantSSSP.Reached)
		}
		for i, d := range ssspRes.Dist {
			if d != wantSSSP.Dist[i] {
				t.Fatalf("round %d: auto sssp dist diverges at %d", round, i)
			}
		}
	}

	samples := scrape(t, tsAuto.URL)
	for _, prefix := range []string{
		`baserved_autotune_decisions_total{kind="cc",param="algo"`,
		`baserved_autotune_decisions_total{kind="sssp",param="delta"`,
		`baserved_autotune_decisions_total{kind="sssp",param="schedule"`,
	} {
		if sumSeries(samples, prefix) < 1 {
			t.Fatalf("no autotune decisions recorded under %s", prefix)
		}
	}
}

// TestServerStatsRoundTrip: the per-query "stats" object carries the
// scheduler and light/heavy counters end-to-end for every family, and
// the cached-CC replay repeats the fill's stats verbatim.
func TestServerStatsRoundTrip(t *testing.T) {
	ts, _ := newTestServer(t)

	_, fresh := post[ccResp](t, ts.URL+"/query/cc",
		map[string]any{"graph": "cm", "algo": "par-hybrid"})
	if fresh.Stats.Passes == 0 || fresh.Stats.LabelStores == 0 {
		t.Fatalf("fresh cc stats empty: %+v", fresh.Stats)
	}
	if fresh.Stats.Chunks == 0 {
		t.Fatalf("parallel cc reported no scheduler chunks: %+v", fresh.Stats)
	}
	_, cached := post[ccResp](t, ts.URL+"/query/cc",
		map[string]any{"graph": "cm", "algo": "par-hybrid"})
	if !cached.Cached {
		t.Fatal("second identical cc query not served from cache")
	}
	if cached.Stats != fresh.Stats {
		t.Fatalf("cached cc replayed different stats:\nfill:   %+v\nreplay: %+v", fresh.Stats, cached.Stats)
	}

	_, bfsRes := post[travResp](t, ts.URL+"/query/bfs",
		map[string]any{"graph": "cm", "root": 0, "algo": "par-do"})
	if bfsRes.Stats.Chunks == 0 || bfsRes.Stats.DistStores == 0 {
		t.Fatalf("bfs stats missing scheduler/store counters: %+v", bfsRes.Stats)
	}
	// Root 0 on this graph flips the direction optimizer bottom-up, so
	// the bitset sweep counter must survive the JSON round trip (it was
	// silently dropped from the wire payload before words_scanned).
	if bfsRes.Stats.BottomUpLevels == 0 {
		t.Fatalf("par-do never went bottom-up; pick a denser root: %+v", bfsRes.Stats)
	}
	if bfsRes.Stats.WordsScanned == 0 {
		t.Fatalf("bfs words_scanned dropped from the wire payload: %+v", bfsRes.Stats)
	}

	_, msRes := post[travResp](t, ts.URL+"/query/bfs",
		map[string]any{"graph": "cm", "root": 0, "algo": "ms"})
	if msRes.Stats.WordsScanned == 0 {
		t.Fatalf("ms words_scanned dropped from the wire payload: %+v", msRes.Stats)
	}

	_, ssspRes := post[ssspResp](t, ts.URL+"/query/sssp",
		map[string]any{"graph": "cm", "root": 0, "algo": "par-hybrid"})
	st := ssspRes.Stats
	if st.Buckets == 0 || st.CandStores == 0 || st.DistStores == 0 {
		t.Fatalf("sssp stats missing delta counters: %+v", st)
	}
	if st.LightRelaxed == 0 {
		t.Fatalf("sssp stats missing light/heavy counters: %+v", st)
	}
	if st.Chunks == 0 {
		t.Fatalf("parallel sssp reported no scheduler chunks: %+v", st)
	}
}
