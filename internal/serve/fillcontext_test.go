package serve

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestFillContextMergesInterest pins the CC fill context's contract:
// Err stays nil while any interested context is live, reports the
// filler's error once all are gone, and carries no Done channel or
// deadline of its own (the kernels poll Err at barriers).
func TestFillContextMergesInterest(t *testing.T) {
	filler, cancelFiller := context.WithCancel(context.Background())
	f := newFillContext(filler)
	if f.Err() != nil {
		t.Fatal("fresh fill context reports an error")
	}
	if f.Done() != nil {
		t.Fatal("fill context exposes a Done channel; kernels must see Err only")
	}
	if _, ok := f.Deadline(); ok {
		t.Fatal("fill context inherited a deadline")
	}

	// A live waiter keeps the fill alive past the filler's death.
	waiter, cancelWaiter := context.WithCancel(context.Background())
	f.join(waiter)
	cancelFiller()
	if f.Err() != nil {
		t.Fatal("fill died while a waiter was still interested")
	}
	cancelWaiter()
	if !errors.Is(f.Err(), context.Canceled) {
		t.Fatalf("all parties dead: Err = %v, want Canceled", f.Err())
	}

	// After seal, joins are no-ops and retained contexts are released:
	// cache hits against a completed fill must not grow the set.
	f.seal()
	f.join(context.Background())
	f.mu.Lock()
	retained := len(f.parties)
	f.mu.Unlock()
	if retained != 0 {
		t.Fatalf("sealed fill context retained %d contexts", retained)
	}

	// The filler's error wins the report — a timed-out filler cohort
	// surfaces DeadlineExceeded even when later waiters were cancelled.
	expired, cancelExpired := context.WithDeadline(context.Background(), time.Now().Add(-time.Hour))
	defer cancelExpired()
	g := newFillContext(expired)
	gone, cancelGone := context.WithCancel(context.Background())
	g.join(gone)
	cancelGone()
	if !errors.Is(g.Err(), context.DeadlineExceeded) {
		t.Fatalf("Err = %v, want the filler's DeadlineExceeded", g.Err())
	}
}
