package serve

// Cancellation behaviour of the batching dispatcher: queued requests
// whose context dies are dropped from the coalesced dispatch, a batch
// whose every waiter is gone cancels its shared kernel run, and the
// batcher (and its resident pool) stays fully usable afterwards. The
// stress test runs the whole mix under -race.

import (
	"bagraph"

	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// enqueuedLen reports how many requests the pending batch for key
// currently holds (0 if none). Test-only peek under the batcher lock.
func (b *Batcher) enqueuedLen(key batchKey) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	pb := b.pending[key]
	if pb == nil {
		return 0
	}
	return len(pb.reqs)
}

// TestSubmitPreCancelled: a context dead on arrival returns its error
// without enqueueing anything.
func TestSubmitPreCancelled(t *testing.T) {
	e := newTestEntry(t)
	b := NewBatcher(2, 8, time.Hour, bagraph.ScheduleStatic) // window never fires in this test
	defer b.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := b.Submit(ctx, e, KindBFS, "ba", 0)
	if !errors.Is(res.Err, context.Canceled) {
		t.Fatalf("Err = %v, want context.Canceled", res.Err)
	}
	if n := b.enqueuedLen(batchKey{entry: e, kind: KindBFS, algo: "ba"}); n != 0 {
		t.Fatalf("pre-cancelled request was enqueued (%d pending)", n)
	}
}

// TestAbandonedRequestDroppedFromBatch: request A joins a batch, its
// client goes away, request B fills the batch — the dispatch must run
// B alone (Batch == 1) and A must come back with the context error.
func TestAbandonedRequestDroppedFromBatch(t *testing.T) {
	e := newTestEntry(t)
	// maxBatch 2: the second submit triggers the flush deterministically.
	b := NewBatcher(2, 2, time.Hour, bagraph.ScheduleStatic)
	defer b.Close()
	key := batchKey{entry: e, kind: KindBFS, algo: "ba"}

	ctxA, cancelA := context.WithCancel(context.Background())
	resA := make(chan Result, 1)
	go func() { resA <- b.Submit(ctxA, e, KindBFS, "ba", 0) }()
	for b.enqueuedLen(key) == 0 { // wait until A is in the pending batch
		time.Sleep(100 * time.Microsecond)
	}
	cancelA()

	resB := b.Submit(context.Background(), e, KindBFS, "ba", 1)
	if resB.Err != nil {
		t.Fatalf("live request failed: %v", resB.Err)
	}
	if resB.Batch != 1 {
		t.Fatalf("Batch = %d, want 1 (abandoned request not dropped)", resB.Batch)
	}
	if got := <-resA; !errors.Is(got.Err, context.Canceled) {
		t.Fatalf("abandoned request Err = %v, want context.Canceled", got.Err)
	}
}

// TestBatchContextCancelsWhenAllWaitersGone: the merged context of a
// shared dispatch dies exactly when the last member context dies.
func TestBatchContextCancelsWhenAllWaitersGone(t *testing.T) {
	ctx1, cancel1 := context.WithCancel(context.Background())
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	reqs := []*Request{{ctx: ctx1}, {ctx: ctx2}}
	bctx, stop := batchContext(reqs)
	defer stop()

	cancel1()
	select {
	case <-bctx.Done():
		t.Fatal("batch context died while a waiter remained")
	case <-time.After(20 * time.Millisecond):
	}
	cancel2()
	select {
	case <-bctx.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("batch context survived all waiters dying")
	}
	if !errors.Is(bctx.Err(), context.Canceled) {
		t.Fatalf("Err = %v", bctx.Err())
	}
}

// TestCancellationStress hammers the dispatcher with concurrent
// batched queries across every dispatch shape while roughly half the
// clients abandon their requests at random points. Invariants: live
// requests always succeed with non-empty results, abandoned ones
// surface only context errors, and the batcher answers a clean query
// correctly afterwards. Run under -race this is the proof the
// cancellation paths share no mutable state with in-flight kernels.
func TestCancellationStress(t *testing.T) {
	e := newTestEntry(t)
	b := NewBatcher(4, 8, 200*time.Microsecond, bagraph.ScheduleStatic)
	defer b.Close()

	algos := []struct {
		kind Kind
		algo string
	}{
		{KindBFS, "ba"},     // sequential: pool fan-out
		{KindBFS, "par-do"}, // pool-owning, back to back
		{KindBFS, "ms"},     // one shared kernel run per batch
		{KindSSSP, "par-hybrid"},
		{KindSSSP, "dijkstra"},
	}
	n := uint32(e.Graph().NumVertices())

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 40; i++ {
				a := algos[rng.Intn(len(algos))]
				root := uint32(rng.Intn(int(n)))
				ctx := context.Context(context.Background())
				abandoned := rng.Intn(2) == 0
				if abandoned {
					c, cancel := context.WithCancel(context.Background())
					ctx = c
					if rng.Intn(2) == 0 {
						cancel() // dead on arrival
					} else {
						delay := time.Duration(rng.Intn(300)) * time.Microsecond
						time.AfterFunc(delay, cancel) // dies somewhere in flight
					}
				}
				res := b.Submit(ctx, e, a.kind, a.algo, root)
				switch {
				case res.Err != nil:
					if !errors.Is(res.Err, context.Canceled) {
						t.Errorf("%v/%s: unexpected error %v", a.kind, a.algo, res.Err)
					}
					if !abandoned {
						t.Errorf("%v/%s: live request got %v", a.kind, a.algo, res.Err)
					}
				case a.kind == KindBFS:
					if len(res.Hops) != int(n) {
						t.Errorf("%s: %d hops, want %d", a.algo, len(res.Hops), n)
					}
				default:
					if len(res.Dists) != int(n) {
						t.Errorf("%s: %d dists, want %d", a.algo, len(res.Dists), n)
					}
				}
			}
		}(w)
	}
	wg.Wait()

	// The batcher and its pool survived: a clean query still answers
	// correctly against an independent traversal.
	res := b.Submit(context.Background(), e, KindBFS, "par-do", 3)
	if res.Err != nil || len(res.Hops) != int(n) {
		t.Fatalf("post-stress query: err=%v len=%d", res.Err, len(res.Hops))
	}
	want := b.Submit(context.Background(), e, KindBFS, "bb", 3)
	if want.Err != nil {
		t.Fatal(want.Err)
	}
	for v := range want.Hops {
		if res.Hops[v] != want.Hops[v] {
			t.Fatalf("post-stress distances differ at %d", v)
		}
	}
}
