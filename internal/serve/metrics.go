package serve

// The daemon's aggregation plane: every query, batch dispatch, kernel
// run and cache event feeds the instruments below, and GET /metrics
// renders them in the Prometheus text exposition format. A nil
// *Metrics disables the whole plane — every observe method is a
// nil-receiver no-op — so bare Batchers (library users, benchmarks
// measuring uninstrumented dispatch) pay nothing.

import (
	"net/http"
	"strconv"

	"bagraph"
	"bagraph/internal/metrics"
)

// Metrics is the serving layer's instrument set over one
// metrics.Registry. Construct with NewMetrics; the zero value is not
// usable, but a nil *Metrics is a valid "observability off" plane.
type Metrics struct {
	reg *metrics.Registry

	// HTTP plane.
	queries      *metrics.CounterVec   // baserved_queries_total{kind,status}
	querySeconds *metrics.HistogramVec // baserved_query_seconds{kind}

	// Dispatch plane.
	batchSize   *metrics.HistogramVec // baserved_batch_size{kind}
	msOccupancy *metrics.Histogram    // baserved_ms_wave_occupancy
	ccEvents    *metrics.CounterVec   // baserved_cc_cache_events_total{event}

	// Kernel plane, per query kind.
	stealsPerPass *metrics.Histogram
	passes        *metrics.CounterVec
	chunks        *metrics.CounterVec
	steals        *metrics.CounterVec
	words         *metrics.CounterVec
	light         *metrics.CounterVec
	heavy         *metrics.CounterVec
	cand          *metrics.CounterVec
	dist          *metrics.CounterVec

	// Autotune plane.
	autotune *metrics.CounterVec // baserved_autotune_decisions_total{kind,param,choice}
}

// NewMetrics builds the full instrument set on a fresh registry.
func NewMetrics() *Metrics {
	r := metrics.NewRegistry()
	batchBounds := []float64{1, 2, 4, 8, 16, 32, 64}
	return &Metrics{
		reg: r,
		queries: r.CounterVec("baserved_queries_total",
			"Queries served, by kind and outcome.", "kind", "status"),
		querySeconds: r.HistogramVec("baserved_query_seconds",
			"End-to-end query latency in seconds, by kind.",
			metrics.ExponentialBuckets(0.0001, 4, 9), "kind"),
		batchSize: r.HistogramVec("baserved_batch_size",
			"Requests coalesced per dispatch, by kind.", batchBounds, "kind"),
		msOccupancy: r.Histogram("baserved_ms_wave_occupancy",
			"Sources sharing one multi-source BFS wave group (<=64).", batchBounds),
		ccEvents: r.CounterVec("baserved_cc_cache_events_total",
			"CC cache path taken per query: hit, miss (became the filler), retry (fill's cohort died).",
			"event"),
		stealsPerPass: r.Histogram("baserved_steals_per_pass",
			"Chunks stolen per kernel pass (stealing-schedule runs with chunks).",
			[]float64{0.5, 1, 2, 4, 8, 16, 32}),
		passes: r.CounterVec("baserved_kernel_passes_total",
			"Kernel passes (SV sweeps, BFS levels, delta phases), by kind.", "kind"),
		chunks: r.CounterVec("baserved_kernel_chunks_total",
			"Scheduler chunks executed by parallel kernels, by kind.", "kind"),
		steals: r.CounterVec("baserved_kernel_steals_total",
			"Chunks run by a non-owning worker, by kind.", "kind"),
		words: r.CounterVec("baserved_kernel_words_scanned_total",
			"Succinct frontier-bitset words scanned by BFS sweeps, by kind.", "kind"),
		light: r.CounterVec("baserved_kernel_light_relaxed_total",
			"Light-arc relaxations applied by SSSP kernels, by kind.", "kind"),
		heavy: r.CounterVec("baserved_kernel_heavy_relaxed_total",
			"Heavy-arc relaxations applied by SSSP kernels, by kind.", "kind"),
		cand: r.CounterVec("baserved_kernel_cand_stores_total",
			"Delta-stepping candidate stores, by kind.", "kind"),
		dist: r.CounterVec("baserved_kernel_dist_stores_total",
			"Distance/queue-array stores applied, by kind.", "kind"),
		autotune: r.CounterVec("baserved_autotune_decisions_total",
			"Autotuner knob picks applied to dispatches.", "kind", "param", "choice"),
	}
}

// Registry exposes the underlying instrument registry so co-resident
// planes (the fleet router's series) land in the same /metrics scrape.
func (m *Metrics) Registry() *metrics.Registry { return m.reg }

// Handler serves the registry in the text exposition format.
func (m *Metrics) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = m.reg.WritePrometheus(w)
	})
}

// ObserveQuery records one finished HTTP query: its outcome class and
// wall-clock seconds.
func (m *Metrics) ObserveQuery(kind, status string, seconds float64) {
	if m == nil {
		return
	}
	m.queries.With(kind, status).Inc()
	m.querySeconds.With(kind).Observe(seconds)
}

// ObserveBatch records one dispatch's coalesced size.
func (m *Metrics) ObserveBatch(kind string, size int) {
	if m == nil {
		return
	}
	m.batchSize.With(kind).Observe(float64(size))
}

// ObserveWaveOccupancy records how many sources one multi-source run
// packed per wave group.
func (m *Metrics) ObserveWaveOccupancy(sources, waves int) {
	if m == nil || waves <= 0 {
		return
	}
	m.msOccupancy.Observe(float64(sources) / float64(waves))
}

// ObserveCC records which CC cache path a query took: "hit", "miss",
// or "retry".
func (m *Metrics) ObserveCC(event string) {
	if m == nil {
		return
	}
	m.ccEvents.With(event).Inc()
}

// ObserveRun folds one kernel run's counters into the per-kind totals.
func (m *Metrics) ObserveRun(kind string, st bagraph.Stats) {
	if m == nil {
		return
	}
	m.passes.With(kind).Add(uint64(st.Passes))
	if st.Chunks > 0 {
		m.chunks.With(kind).Add(uint64(st.Chunks))
		m.steals.With(kind).Add(st.Steals)
		m.stealsPerPass.Observe(st.StealsPerPass())
	}
	if st.WordsScanned > 0 {
		m.words.With(kind).Add(st.WordsScanned)
	}
	if st.LightRelaxed > 0 {
		m.light.With(kind).Add(st.LightRelaxed)
	}
	if st.HeavyRelaxed > 0 {
		m.heavy.With(kind).Add(st.HeavyRelaxed)
	}
	if st.CandStores > 0 {
		m.cand.With(kind).Add(st.CandStores)
	}
	if st.DistStores > 0 {
		m.dist.With(kind).Add(st.DistStores)
	}
}

// ObserveAutotune records one autotuner knob pick.
func (m *Metrics) ObserveAutotune(kind, param, choice string) {
	if m == nil {
		return
	}
	m.autotune.With(kind, param, choice).Inc()
}

// formatDelta renders a delta decision as a metric label choice.
func formatDelta(d uint64) string { return strconv.FormatUint(d, 10) }
