package serve

// Local is the in-process Backend: the registry of resident graphs
// plus the coalescing Batcher, which is what a single daemon and every
// fleet shard run. The fleet router swaps this implementation for
// ShardClients without the handlers noticing.

import (
	"context"
	"net/http"

	"bagraph/internal/bfs"
	"bagraph/internal/sssp"
	"bagraph/internal/tune"
)

// Local answers queries from a Registry through a Batcher. Construct
// with NewLocal; Server.New wires one up implicitly from its Registry.
type Local struct {
	reg     *Registry
	batcher *Batcher
	metrics *Metrics
	tuner   *tune.Controller
}

// NewLocal builds the in-process backend over a registry and a
// batcher. metrics and tuner may be nil (observability off, static
// knobs).
func NewLocal(reg *Registry, b *Batcher, m *Metrics, t *tune.Controller) *Local {
	return &Local{reg: reg, batcher: b, metrics: m, tuner: t}
}

// Batcher exposes the dispatcher (benchmarks drive it directly).
func (l *Local) Batcher() *Batcher { return l.batcher }

// Close releases the worker pool. Call after in-flight queries have
// drained.
func (l *Local) Close() { l.batcher.Close() }

// lookup resolves a graph name to its current entry.
func (l *Local) lookup(name string) (*Entry, error) {
	if name == "" {
		return nil, Errorf(http.StatusBadRequest, "missing graph name")
	}
	e, ok := l.reg.Get(name)
	if !ok {
		return nil, Errorf(http.StatusNotFound, "graph %q not loaded", name)
	}
	return e, nil
}

// checkRoot validates a traversal source against the entry's graph.
func checkRoot(e *Entry, root uint32) error {
	if n := e.Graph().NumVertices(); int(root) >= n {
		return Errorf(http.StatusBadRequest, "root %d out of range for %d vertices", root, n)
	}
	return nil
}

// resolveAuto maps the "auto" algorithm onto the tuner's current pick
// for the entry's cell (the static serving default when autotuning is
// off). Non-"auto" names pass through.
func (l *Local) resolveAuto(e *Entry, kind, algo string) string {
	if algo != "auto" {
		return algo
	}
	if l.tuner == nil {
		switch kind {
		case tune.KindCC:
			return ccAliases[""]
		case tune.KindSSSP:
			return ssspAliases[""]
		default:
			return bfsAliases[""]
		}
	}
	var delta uint64
	if kind == tune.KindSSSP {
		// The cell is keyed by (graph, epoch, kind) alone; the delta
		// only shapes the Delta decision, which the batcher re-derives,
		// so the entry's cached width (0 before the weighted view
		// exists) is fine here.
		delta = e.SSSPDelta()
	}
	d := l.tuner.Decide(l.batcher.workload(e, kind, delta))
	l.metrics.ObserveAutotune(kind, "algo", d.Algo)
	return d.Algo
}

// canonFor applies the default-to-auto rule (an empty algorithm means
// "auto" when a tuner is attached) and canonicalizes the name.
func (l *Local) canonFor(aliases map[string]string, algo, family string) (string, error) {
	if algo == "" && l.tuner != nil {
		algo = "auto"
	}
	c, err := canon(aliases, algo, family)
	if err != nil {
		return "", Errorf(http.StatusBadRequest, "%v", err)
	}
	return c, nil
}

// CC implements Backend over the epoch-cached coalescing CC path.
func (l *Local) CC(ctx context.Context, graph, algo string, labels bool) (*CCResponse, error) {
	algo, err := l.canonFor(ccAliases, algo, "CC")
	if err != nil {
		return nil, err
	}
	e, err := l.lookup(graph)
	if err != nil {
		return nil, err
	}
	algo = l.resolveAuto(e, tune.KindCC, algo)
	lab, components, stats, shared, err := l.batcher.CC(ctx, e, algo)
	if err != nil {
		return nil, err
	}
	resp := &CCResponse{
		Graph:      e.Name(),
		Epoch:      e.Epoch(),
		Algo:       algo,
		Components: components,
		Cached:     shared,
		Stats:      statsPayload(stats),
	}
	if labels {
		resp.Labels = lab
	}
	return resp, nil
}

// BFS implements Backend over the batching dispatcher.
func (l *Local) BFS(ctx context.Context, graph string, root uint32, algo string) (*BFSResponse, error) {
	algo, err := l.canonFor(bfsAliases, algo, "BFS")
	if err != nil {
		return nil, err
	}
	e, err := l.lookup(graph)
	if err != nil {
		return nil, err
	}
	if err := checkRoot(e, root); err != nil {
		return nil, err
	}
	algo = l.resolveAuto(e, tune.KindBFS, algo)
	res := l.batcher.BFS(ctx, e, algo, root)
	if res.Err != nil {
		return nil, res.Err
	}
	reached := 0
	for _, d := range res.Hops {
		if d != bfs.Inf {
			reached++
		}
	}
	return &BFSResponse{
		Graph:   e.Name(),
		Epoch:   e.Epoch(),
		Algo:    algo,
		Root:    root,
		Batch:   res.Batch,
		Reached: reached,
		Stats:   statsPayload(res.Stats),
		Dist:    res.Hops,
	}, nil
}

// SSSP implements Backend over the batching dispatcher.
func (l *Local) SSSP(ctx context.Context, graph string, root uint32, algo string) (*SSSPResponse, error) {
	algo, err := l.canonFor(ssspAliases, algo, "SSSP")
	if err != nil {
		return nil, err
	}
	e, err := l.lookup(graph)
	if err != nil {
		return nil, err
	}
	if err := checkRoot(e, root); err != nil {
		return nil, err
	}
	algo = l.resolveAuto(e, tune.KindSSSP, algo)
	res := l.batcher.SSSP(ctx, e, algo, root)
	if res.Err != nil {
		return nil, res.Err
	}
	reached := 0
	sum := uint64(0)
	for _, d := range res.Dists {
		if d != sssp.Inf {
			reached++
			sum += d
		}
	}
	return &SSSPResponse{
		Graph:   e.Name(),
		Epoch:   e.Epoch(),
		Algo:    algo,
		Root:    root,
		Batch:   res.Batch,
		Reached: reached,
		Sum:     sum,
		Stats:   statsPayload(res.Stats),
		Dist:    res.Dists,
	}, nil
}

// Graphs implements Backend from the registry's load-ordered entries.
func (l *Local) Graphs(ctx context.Context) ([]GraphInfo, error) {
	entries := l.reg.Entries()
	infos := make([]GraphInfo, 0, len(entries))
	for _, e := range entries {
		g := e.Graph()
		infos = append(infos, GraphInfo{
			Name:      e.Name(),
			Vertices:  g.NumVertices(),
			Edges:     g.NumEdges(),
			Directed:  g.Directed(),
			Weighted:  e.HasEdgeWeights(),
			Relabeled: e.Relabeled(),
			Epoch:     e.Epoch(),
		})
	}
	return infos, nil
}

// Healthz implements Backend: graph count and resident pool size.
func (l *Local) Healthz(ctx context.Context) (*Health, error) {
	return &Health{Status: "ok", Graphs: len(l.reg.Entries()), Workers: l.batcher.Workers()}, nil
}

// replaceRequest is the shard admin rollout body: swap the named
// graph's entry for a fresh load of the METIS file at path.
type replaceRequest struct {
	Graph string `json:"graph"`
	Path  string `json:"path"`
}

// ReplaceResponse reports the entry an admin rollout published.
type ReplaceResponse struct {
	Graph    string `json:"graph"`
	Epoch    uint64 `json:"epoch"`
	Vertices int    `json:"vertices"`
	Edges    int64  `json:"edges"`
	Weighted bool   `json:"weighted"`
}

// MountAdmin registers the shard-side admin plane: POST /admin/replace
// drives Registry.Replace/ReplaceWeighted for zero-downtime graph
// rollout — in-flight queries finish against the epoch they started
// with, the new epoch starts with cold caches, and the fleet router's
// rollout endpoint fans this across a graph's replicas one shard at a
// time. Mounted only when Config.Admin is set: it reads files from the
// daemon's filesystem and must not be reachable from query traffic.
func (l *Local) MountAdmin(mux *http.ServeMux) {
	mux.HandleFunc("POST /admin/replace", func(w http.ResponseWriter, r *http.Request) {
		r.Body = http.MaxBytesReader(w, r.Body, 1<<20)
		var q replaceRequest
		if !decodeQuery(w, r, &q) {
			return
		}
		if q.Graph == "" || q.Path == "" {
			writeError(w, http.StatusBadRequest, "replace wants graph and path")
			return
		}
		e, err := l.reg.ReplaceMETISFile(q.Graph, q.Path)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, ReplaceResponse{
			Graph:    e.Name(),
			Epoch:    e.Epoch(),
			Vertices: e.Graph().NumVertices(),
			Edges:    e.Graph().NumEdges(),
			Weighted: e.HasEdgeWeights(),
		})
	})
}

// ensure Local satisfies the interfaces the server wires against.
var (
	_ Backend         = (*Local)(nil)
	_ AdminBackend    = (*Local)(nil)
	_ closableBackend = (*Local)(nil)
)

// AdminBackend is implemented by backends that expose admin routes;
// the server mounts them only when Config.Admin is set.
type AdminBackend interface {
	MountAdmin(mux *http.ServeMux)
}

// closableBackend lets Server.Close release backend resources.
type closableBackend interface {
	Close()
}
