package serve

import (
	"fmt"
	"os"
	"sync"

	"bagraph"
	"bagraph/internal/corpus"
	"bagraph/internal/graph"
	"bagraph/internal/metis"
	"bagraph/internal/sssp"
)

// Entry is one named graph resident in the daemon: the immutable CSR
// graph, its weighted view for the SSSP kernels — real per-edge
// weights when the graph was loaded from a weighted METIS file, a
// lazily derived unit-weight view otherwise — and the per-epoch
// connected-components cache. Entries are immutable once published;
// Registry.Replace swaps in a fresh Entry under the same name with a
// bumped epoch, which retires the old entry's caches wholesale.
type Entry struct {
	name  string
	epoch uint64
	g     *graph.Graph
	// rel is the degree-ordered view the kernels run against when the
	// registry was configured with SetRelabel; nil otherwise. Queries
	// and results stay in original vertex ids either way (the facade
	// un-permutes), so relabeling is invisible to clients except in the
	// latency and the locality stats.
	rel *bagraph.Relabeled

	wOnce          sync.Once
	weighted       *graph.Weighted // preset for weighted loads, else lazily unit
	wErr           error
	ssspDelta      uint64 // delta-stepping bucket width, cached with the view
	hasEdgeWeights bool
	// maxDegree is cached at publish: with the pool size it bounds the
	// arc skew any static chunk partition can suffer, the structural
	// signal the autotuner's first schedule decision reads per dispatch.
	maxDegree int

	ccMu    sync.Mutex
	ccCache map[string]*ccResult
}

// ccResult is one cached CC computation. The first query to install it
// becomes the filler and starts the kernel under a fillContext that
// every later interested query joins: the fill keeps running while any
// of them is still live and stops at its next pass barrier when the
// last one goes away. ready is closed when the attempt finishes,
// successful or not. A failed fill (every interested client gone
// mid-kernel) is retired from the entry's cache before ready closes,
// so waiters and later queries retry with their own context instead of
// inheriting a dead cohort's error — the cache is never poisoned.
type ccResult struct {
	ready      chan struct{}
	fill       *fillContext
	labels     []uint32
	components int
	stats      bagraph.Stats
	err        error
}

// Name returns the registry name.
func (e *Entry) Name() string { return e.name }

// Graph returns the resident CSR graph.
func (e *Entry) Graph() *graph.Graph { return e.g }

// Epoch returns the entry's load generation; it increments each time
// the name is replaced, and retires cached results from prior epochs.
func (e *Entry) Epoch() uint64 { return e.epoch }

// ensureWeighted derives the entry's weighted views on first use: the
// plain view, and — for relabeled entries published unweighted — the
// permuted unit-weight view (entries published weighted carried their
// weights through the permute at publish time).
func (e *Entry) ensureWeighted() error {
	e.wOnce.Do(func() {
		unit := func(u, v uint32) uint32 { return 1 }
		if e.weighted == nil {
			e.weighted, e.wErr = graph.AttachWeights(e.g, unit)
		}
		if e.wErr == nil && e.rel != nil && e.rel.Weighted() == nil {
			_, e.wErr = e.rel.AttachWeights(unit)
		}
		if e.wErr == nil {
			// The delta-stepping default bucket width costs a pass over
			// the weight array; the view is immutable, so pay it once
			// per entry rather than per query. (The mean arc weight is
			// permutation-invariant, so one delta serves both views.)
			e.ssspDelta = sssp.DefaultDelta(e.weighted)
		}
	})
	return e.wErr
}

// Weighted returns the view the SSSP kernels run on: the graph's real
// per-edge weights when it was published weighted, otherwise a
// unit-weight view derived on first use. Either way the view is shared
// by all subsequent queries against this entry.
func (e *Entry) Weighted() (*graph.Weighted, error) {
	if err := e.ensureWeighted(); err != nil {
		return nil, err
	}
	return e.weighted, nil
}

// Relabeled reports whether the entry serves queries through a
// degree-ordered layout.
func (e *Entry) Relabeled() bool { return e.rel != nil }

// target returns what the batcher hands bagraph.Run for the unweighted
// kinds: the degree-ordered view when the entry is relabeled, the raw
// graph otherwise.
func (e *Entry) target() bagraph.Target {
	if e.rel != nil {
		return e.rel
	}
	return e.g
}

// weightedTarget is target for KindSSSP; it forces the weighted view
// into existence first.
func (e *Entry) weightedTarget() (bagraph.Target, error) {
	if err := e.ensureWeighted(); err != nil {
		return nil, err
	}
	if e.rel != nil {
		return e.rel, nil
	}
	return e.weighted, nil
}

// SSSPDelta returns the cached delta-stepping bucket width for the
// entry's weighted view. Valid after a successful Weighted call.
func (e *Entry) SSSPDelta() uint64 { return e.ssspDelta }

// HasEdgeWeights reports whether the entry was published with real
// per-edge weights (as opposed to the derived unit-weight view). Set
// at publish time and immutable afterwards.
func (e *Entry) HasEdgeWeights() bool { return e.hasEdgeWeights }

// MaxDegree returns the graph's largest vertex degree, cached at
// publish time.
func (e *Entry) MaxDegree() int { return e.maxDegree }

// Registry is the daemon's set of named resident graphs. Lookups are
// lock-cheap reads; loading happens at startup or through an explicit
// replace.
type Registry struct {
	mu      sync.RWMutex
	entries map[string]*Entry
	order   []string
	relabel bool
}

// SetRelabel controls whether graphs published from now on are stored
// degree-ordered (see bagraph.RelabelDegree). Flip it before loading;
// already published entries keep the layout they were built with.
func (r *Registry) SetRelabel(on bool) {
	r.mu.Lock()
	r.relabel = on
	r.mu.Unlock()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*Entry)}
}

// newEntry builds an unpublished entry; w, when non-nil, presets the
// weighted view with real per-edge weights.
func newEntry(name string, epoch uint64, g *graph.Graph, w *graph.Weighted) *Entry {
	return &Entry{
		name: name, epoch: epoch, g: g,
		weighted: w, hasEdgeWeights: w != nil,
		maxDegree: g.Degrees().Max,
		ccCache:   make(map[string]*ccResult),
	}
}

// publish installs an entry under name. With replace set the name may
// exist (its epoch is bumped); otherwise it must be new.
func (r *Registry) publish(name string, g *graph.Graph, w *graph.Weighted, replace bool) (*Entry, error) {
	if name == "" {
		return nil, fmt.Errorf("serve: empty graph name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	epoch := uint64(1)
	if old, ok := r.entries[name]; ok {
		if !replace {
			return nil, fmt.Errorf("serve: graph %q already loaded", name)
		}
		epoch = old.epoch + 1
	} else {
		r.order = append(r.order, name)
	}
	e := newEntry(name, epoch, g, w)
	if r.relabel {
		var tgt bagraph.Target = g
		if w != nil {
			tgt = w
		}
		rel, err := bagraph.RelabelDegree(tgt)
		if err != nil {
			return nil, fmt.Errorf("serve: relabel %q: %w", name, err)
		}
		e.rel = rel
	}
	r.entries[name] = e
	return e, nil
}

// Add publishes g under name; the name must be new.
func (r *Registry) Add(name string, g *graph.Graph) (*Entry, error) {
	return r.publish(name, g, nil, false)
}

// AddWeighted publishes w under name with its real per-edge weights;
// the name must be new. SSSP queries against the entry run on these
// weights instead of the derived unit-weight view.
func (r *Registry) AddWeighted(name string, w *graph.Weighted) (*Entry, error) {
	return r.publish(name, w.Graph, w, false)
}

// Replace publishes g under name, bumping the epoch past any previous
// entry's. In-flight queries against the old entry finish against the
// graph they started with; its caches are never consulted again.
func (r *Registry) Replace(name string, g *graph.Graph) (*Entry, error) {
	return r.publish(name, g, nil, true)
}

// ReplaceWeighted is Replace for a graph with real per-edge weights.
func (r *Registry) ReplaceWeighted(name string, w *graph.Weighted) (*Entry, error) {
	return r.publish(name, w.Graph, w, true)
}

// LoadMETISFile reads a METIS graph from path and publishes it. Files
// carrying per-edge weights (format code "1") publish a weighted
// entry; unweighted files serve SSSP through the unit-weight view.
func (r *Registry) LoadMETISFile(name, path string) (*Entry, error) {
	return r.publishMETISFile(name, path, false)
}

// ReplaceMETISFile reads a METIS graph from path and publishes it over
// the existing entry for name (the zero-downtime rollout path the
// admin endpoint drives): the epoch bumps past the old entry's, in-
// flight queries finish against the graph they started with, and the
// old epoch's caches are never consulted again. The name may also be
// new — a rollout that adds a graph is still a rollout.
func (r *Registry) ReplaceMETISFile(name, path string) (*Entry, error) {
	return r.publishMETISFile(name, path, true)
}

func (r *Registry) publishMETISFile(name, path string, replace bool) (*Entry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	defer f.Close()
	w, err := metis.ReadWeighted(f)
	if err != nil {
		return nil, fmt.Errorf("serve: %s: %w", path, err)
	}
	w.SetName(name)
	if w.HasWeights {
		return r.publish(name, w.Graph, w.Weighted, replace)
	}
	return r.publish(name, w.Graph, nil, replace)
}

// AddCorpus generates the named Table 2 stand-in at the given scale and
// publishes it under its corpus name.
func (r *Registry) AddCorpus(name string, scale float64, seed uint64) (*Entry, error) {
	d, ok := corpus.ByName(name)
	if !ok {
		return nil, fmt.Errorf("serve: unknown corpus graph %q (known: %v)", name, corpus.Names())
	}
	if scale <= 0 || scale > 1 {
		return nil, fmt.Errorf("serve: scale %v out of (0, 1]", scale)
	}
	return r.Add(name, d.Generate(scale, seed))
}

// Get returns the current entry for name.
func (r *Registry) Get(name string) (*Entry, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.entries[name]
	return e, ok
}

// Entries returns the current entries in load order.
func (r *Registry) Entries() []*Entry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Entry, 0, len(r.order))
	for _, name := range r.order {
		out = append(out, r.entries[name])
	}
	return out
}
