package serve

import (
	"fmt"
	"os"
	"sync"

	"bagraph/internal/corpus"
	"bagraph/internal/graph"
	"bagraph/internal/metis"
)

// Entry is one named graph resident in the daemon: the immutable CSR
// graph, a lazily derived unit-weight view for the weighted kernels,
// and the per-epoch connected-components cache. Entries are immutable
// once published; Registry.Replace swaps in a fresh Entry under the
// same name with a bumped epoch, which retires the old entry's caches
// wholesale.
type Entry struct {
	name  string
	epoch uint64
	g     *graph.Graph

	wOnce    sync.Once
	weighted *graph.Weighted
	wErr     error

	ccMu    sync.Mutex
	ccCache map[string]*ccResult
}

// ccResult is one cached CC computation; the sync.Once coalesces
// concurrent identical queries into a single kernel run.
type ccResult struct {
	once       sync.Once
	labels     []uint32
	components int
	err        error
}

// Name returns the registry name.
func (e *Entry) Name() string { return e.name }

// Graph returns the resident CSR graph.
func (e *Entry) Graph() *graph.Graph { return e.g }

// Epoch returns the entry's load generation; it increments each time
// the name is replaced, and retires cached results from prior epochs.
func (e *Entry) Epoch() uint64 { return e.epoch }

// Weighted returns the unit-weight view used by the SSSP kernels,
// derived on first use and shared by all subsequent queries.
func (e *Entry) Weighted() (*graph.Weighted, error) {
	e.wOnce.Do(func() {
		e.weighted, e.wErr = graph.AttachWeights(e.g, func(u, v uint32) uint32 { return 1 })
	})
	return e.weighted, e.wErr
}

// Registry is the daemon's set of named resident graphs. Lookups are
// lock-cheap reads; loading happens at startup or through an explicit
// replace.
type Registry struct {
	mu      sync.RWMutex
	entries map[string]*Entry
	order   []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*Entry)}
}

// Add publishes g under name; the name must be new.
func (r *Registry) Add(name string, g *graph.Graph) (*Entry, error) {
	if name == "" {
		return nil, fmt.Errorf("serve: empty graph name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.entries[name]; ok {
		return nil, fmt.Errorf("serve: graph %q already loaded", name)
	}
	e := &Entry{name: name, epoch: 1, g: g, ccCache: make(map[string]*ccResult)}
	r.entries[name] = e
	r.order = append(r.order, name)
	return e, nil
}

// Replace publishes g under name, bumping the epoch past any previous
// entry's. In-flight queries against the old entry finish against the
// graph they started with; its caches are never consulted again.
func (r *Registry) Replace(name string, g *graph.Graph) (*Entry, error) {
	if name == "" {
		return nil, fmt.Errorf("serve: empty graph name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	epoch := uint64(1)
	if old, ok := r.entries[name]; ok {
		epoch = old.epoch + 1
	} else {
		r.order = append(r.order, name)
	}
	e := &Entry{name: name, epoch: epoch, g: g, ccCache: make(map[string]*ccResult)}
	r.entries[name] = e
	return e, nil
}

// LoadMETISFile reads a METIS graph from path and publishes it.
func (r *Registry) LoadMETISFile(name, path string) (*Entry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	defer f.Close()
	g, err := metis.Read(f)
	if err != nil {
		return nil, fmt.Errorf("serve: %s: %w", path, err)
	}
	g.SetName(name)
	return r.Add(name, g)
}

// AddCorpus generates the named Table 2 stand-in at the given scale and
// publishes it under its corpus name.
func (r *Registry) AddCorpus(name string, scale float64, seed uint64) (*Entry, error) {
	d, ok := corpus.ByName(name)
	if !ok {
		return nil, fmt.Errorf("serve: unknown corpus graph %q (known: %v)", name, corpus.Names())
	}
	if scale <= 0 || scale > 1 {
		return nil, fmt.Errorf("serve: scale %v out of (0, 1]", scale)
	}
	return r.Add(name, d.Generate(scale, seed))
}

// Get returns the current entry for name.
func (r *Registry) Get(name string) (*Entry, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.entries[name]
	return e, ok
}

// Entries returns the current entries in load order.
func (r *Registry) Entries() []*Entry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Entry, 0, len(r.order))
	for _, name := range r.order {
		out = append(out, r.entries[name])
	}
	return out
}
