package serve

// BenchmarkServeBatch measures the serving-layer thesis: for small
// frequent queries — the regime where the paper's branch-avoiding
// kernels matter — dispatching a coalesced batch through the resident
// engine beats spawning a goroutine per request. Two families:
//
//   - bfs/*: k distinct sources, batched fan-out over the warm pool vs
//     k independent goroutines. The gap is pool parallelism plus
//     scheduler churn, so on single-core CI runners it narrows to
//     noise — per the ROADMAP, speedups are reported, never asserted.
//   - cc/*: k identical component queries. Coalescing collapses them
//     into one kernel run per epoch, so batched wins by ~k on any
//     hardware; this is the daemon's structural advantage, independent
//     of core count.
//
// The RMAT graph is kept small (scale 10) on purpose: serving-shaped
// queries are the small frequent ones.

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"bagraph"
	"bagraph/internal/bfs"
	"bagraph/internal/gen"
	"bagraph/internal/graph"
)

// benchGraph builds the skewed RMAT shape the parallel engine
// benchmarks use, at query-serving size.
func benchGraph() *graph.Graph {
	return gen.RMAT(10, 8, gen.DefaultRMAT, 42)
}

func BenchmarkServeBatch(b *testing.B) {
	g := benchGraph()
	r := NewRegistry()
	e, err := r.Add("rmat", g)
	if err != nil {
		b.Fatal(err)
	}
	n := uint32(g.NumVertices())
	for _, k := range []int{1, 8, 32} {
		roots := make([]uint32, k)
		for i := range roots {
			roots[i] = uint32(i*977) % n
		}

		// Batched BFS: one claimed batch of k sources fanned across
		// the resident pool — the dispatcher's steady-state hot path.
		b.Run(fmt.Sprintf("bfs/batched/k=%d", k), func(b *testing.B) {
			bt := NewBatcher(0, k, -1, bagraph.ScheduleStatic)
			defer bt.Close()
			key := batchKey{entry: e, kind: KindBFS, algo: "ba"}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				reqs := make([]*Request, k)
				for j := range reqs {
					reqs[j] = &Request{
						entry: e, kind: KindBFS, algo: "ba", root: roots[j], ctx: context.Background(),
						done: make(chan Result, 1),
					}
				}
				bt.dispatch(key, reqs)
				for _, req := range reqs {
					res := <-req.done
					if res.Err != nil || len(res.Hops) == 0 {
						b.Fatal("bad result")
					}
				}
			}
			reportQueries(b, k)
		})

		// Spawned BFS: the model the daemon replaces — one goroutine
		// per request.
		b.Run(fmt.Sprintf("bfs/spawned/k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				for j := 0; j < k; j++ {
					wg.Add(1)
					go func(root uint32) {
						defer wg.Done()
						dist, _ := bfs.TopDownBranchAvoiding(g, root)
						if len(dist) == 0 {
							b.Error("bad result")
						}
					}(roots[j])
				}
				wg.Wait()
			}
			reportQueries(b, k)
		})

		// Batched CC: k concurrent identical queries coalesce into one
		// kernel run per graph epoch (a fresh epoch each iteration so
		// every iteration pays exactly one computation).
		b.Run(fmt.Sprintf("cc/batched/k=%d", k), func(b *testing.B) {
			bt := NewBatcher(0, k, -1, bagraph.ScheduleStatic)
			defer bt.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				fresh, err := r.Replace("rmat", g)
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				var wg sync.WaitGroup
				for j := 0; j < k; j++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						if _, comps, _, _, err := bt.CC(context.Background(), fresh, "hybrid"); err != nil || comps == 0 {
							b.Error("bad result")
						}
					}()
				}
				wg.Wait()
			}
			reportQueries(b, k)
		})

		// Spawned CC: without coalescing every request runs the kernel.
		b.Run(fmt.Sprintf("cc/spawned/k=%d", k), func(b *testing.B) {
			bt := NewBatcher(0, k, -1, bagraph.ScheduleStatic)
			defer bt.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				for j := 0; j < k; j++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						res, err := bagraph.Run(context.Background(), g,
							bagraph.Request{Kind: bagraph.KindCC, CC: bagraph.CCHybrid})
						if err != nil || len(res.Labels) == 0 {
							b.Error("bad result")
						}
					}()
				}
				wg.Wait()
			}
			reportQueries(b, k)
		})
	}
}

// BenchmarkServeMultiSourceBFS measures the batch-aware kernel thesis:
// k batched BFS sources answered by ONE multi-source kernel run
// (shared bottom-up mask sweeps, one graph pass per level for the
// whole batch) versus the same batch fanned out as k independent
// traversals. The multi-source win is structural — each level reads
// the adjacency arrays once instead of k times — so unlike the pool
// fan-out it survives single-core CI runners.
func BenchmarkServeMultiSourceBFS(b *testing.B) {
	g := benchGraph()
	r := NewRegistry()
	e, err := r.Add("rmat", g)
	if err != nil {
		b.Fatal(err)
	}
	n := uint32(g.NumVertices())
	for _, k := range []int{8, 32, 64} {
		roots := make([]uint32, k)
		for i := range roots {
			roots[i] = uint32(i*977) % n
		}
		newReqs := func(algo string) []*Request {
			reqs := make([]*Request, k)
			for j := range reqs {
				reqs[j] = &Request{
					entry: e, kind: KindBFS, algo: algo, root: roots[j], ctx: context.Background(),
					done: make(chan Result, 1),
				}
			}
			return reqs
		}
		drain := func(reqs []*Request) {
			for _, req := range reqs {
				res := <-req.done
				if res.Err != nil || len(res.Hops) == 0 {
					b.Fatal("bad result")
				}
			}
		}
		b.Run(fmt.Sprintf("multi-source/k=%d", k), func(b *testing.B) {
			bt := NewBatcher(0, k, -1, bagraph.ScheduleStatic)
			defer bt.Close()
			key := batchKey{entry: e, kind: KindBFS, algo: "ms"}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				reqs := newReqs("ms")
				bt.dispatch(key, reqs)
				drain(reqs)
			}
			reportQueries(b, k)
		})
		b.Run(fmt.Sprintf("independent/k=%d", k), func(b *testing.B) {
			bt := NewBatcher(0, k, -1, bagraph.ScheduleStatic)
			defer bt.Close()
			key := batchKey{entry: e, kind: KindBFS, algo: "ba"}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				reqs := newReqs("ba")
				bt.dispatch(key, reqs)
				drain(reqs)
			}
			reportQueries(b, k)
		})
	}
}

// BenchmarkServeCCCache measures the epoch cache: the steady-state cost
// of a CC query is a map hit, not a kernel run.
func BenchmarkServeCCCache(b *testing.B) {
	r := NewRegistry()
	e, err := r.Add("rmat", benchGraph())
	if err != nil {
		b.Fatal(err)
	}
	bt := NewBatcher(0, 4, -1, bagraph.ScheduleStatic)
	defer bt.Close()
	if _, _, _, _, err := bt.CC(context.Background(), e, "par-hybrid"); err != nil { // warm the cache
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, _, shared, err := bt.CC(context.Background(), e, "par-hybrid")
		if err != nil || !shared {
			b.Fatal("cache miss")
		}
	}
}

// BenchmarkMetricsOverhead measures what the aggregation plane costs
// per dispatched query: the same single-request BFS dispatch with the
// instruments dark (bare) and lit (instrumented). Every instrument on
// the path is an atomic add or a fixed-bucket histogram observe, so
// the two must sit within noise of each other — the CI gate runs both
// so a regression that makes observability expensive shows up as a
// diverging pair, not a silent tax on every serving benchmark.
func BenchmarkMetricsOverhead(b *testing.B) {
	g := benchGraph()
	r := NewRegistry()
	e, err := r.Add("rmat", g)
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, bt *Batcher) {
		key := batchKey{entry: e, kind: KindBFS, algo: "ba"}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			req := &Request{
				entry: e, kind: KindBFS, algo: "ba", root: uint32(i*977) % uint32(g.NumVertices()),
				ctx: context.Background(), done: make(chan Result, 1),
			}
			bt.dispatch(key, []*Request{req})
			if res := <-req.done; res.Err != nil || len(res.Hops) == 0 {
				b.Fatal("bad result")
			}
		}
	}
	b.Run("bare", func(b *testing.B) {
		bt := NewBatcher(0, 1, -1, bagraph.ScheduleStatic)
		defer bt.Close()
		run(b, bt)
	})
	b.Run("instrumented", func(b *testing.B) {
		bt := NewBatcher(0, 1, -1, bagraph.ScheduleStatic)
		defer bt.Close()
		bt.SetMetrics(NewMetrics())
		run(b, bt)
	})
}

// reportQueries normalizes throughput to queries per second.
func reportQueries(b *testing.B, k int) {
	b.ReportMetric(float64(k)*float64(b.N)/b.Elapsed().Seconds(), "queries/s")
}
