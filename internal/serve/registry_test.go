package serve

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bagraph/internal/gen"
	"bagraph/internal/metis"
	"bagraph/internal/testutil"
)

func TestRegistryAddAndGet(t *testing.T) {
	r := NewRegistry()
	g := gen.Path(10)
	e, err := r.Add("p", g)
	if err != nil {
		t.Fatal(err)
	}
	if e.Name() != "p" || e.Epoch() != 1 || e.Graph() != g {
		t.Fatalf("entry mismatch: %q epoch %d", e.Name(), e.Epoch())
	}
	if _, err := r.Add("p", gen.Star(4)); err == nil {
		t.Fatal("duplicate name accepted")
	}
	if _, err := r.Add("", gen.Star(4)); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, ok := r.Get("q"); ok {
		t.Fatal("phantom graph found")
	}
	got, ok := r.Get("p")
	if !ok || got != e {
		t.Fatal("lookup returned wrong entry")
	}
}

func TestRegistryReplaceBumpsEpoch(t *testing.T) {
	r := NewRegistry()
	if _, err := r.Add("g", gen.Path(6)); err != nil {
		t.Fatal(err)
	}
	e2, err := r.Replace("g", gen.Star(6))
	if err != nil {
		t.Fatal(err)
	}
	if e2.Epoch() != 2 {
		t.Fatalf("epoch = %d, want 2", e2.Epoch())
	}
	// Replace under a fresh name behaves like Add.
	e3, err := r.Replace("h", gen.Path(3))
	if err != nil {
		t.Fatal(err)
	}
	if e3.Epoch() != 1 {
		t.Fatalf("fresh replace epoch = %d, want 1", e3.Epoch())
	}
	names := []string{}
	for _, e := range r.Entries() {
		names = append(names, e.Name())
	}
	if strings.Join(names, ",") != "g,h" {
		t.Fatalf("entries order = %v", names)
	}
}

func TestRegistryLoadMETISFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.metis")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := metis.Write(f, gen.Grid2D(4, 4, false)); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	r := NewRegistry()
	e, err := r.LoadMETISFile("grid", path)
	if err != nil {
		t.Fatal(err)
	}
	if e.Graph().NumVertices() != 16 {
		t.Fatalf("vertices = %d, want 16", e.Graph().NumVertices())
	}
	if e.Graph().Name() != "grid" {
		t.Fatalf("graph name = %q", e.Graph().Name())
	}
	if _, err := r.LoadMETISFile("missing", filepath.Join(dir, "nope.metis")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestRegistryAddCorpus(t *testing.T) {
	r := NewRegistry()
	e, err := r.AddCorpus("cond-mat-2005", 0.01, 7)
	if err != nil {
		t.Fatal(err)
	}
	if e.Graph().NumVertices() == 0 {
		t.Fatal("empty corpus graph")
	}
	if _, err := r.AddCorpus("karate", 0.01, 7); err == nil {
		t.Fatal("unknown corpus name accepted")
	}
	if _, err := r.AddCorpus("auto", 0, 7); err == nil {
		t.Fatal("zero scale accepted")
	}
}

func TestEntryWeightedIsUnitAndShared(t *testing.T) {
	r := NewRegistry()
	e, err := r.Add("p", gen.Path(5))
	if err != nil {
		t.Fatal(err)
	}
	if e.HasEdgeWeights() {
		t.Fatal("unweighted entry marked weighted")
	}
	w1, err := e.Weighted()
	if err != nil {
		t.Fatal(err)
	}
	w2, _ := e.Weighted()
	if w1 != w2 {
		t.Fatal("weighted view not shared")
	}
	for _, wt := range w1.ArcWeights() {
		if wt != 1 {
			t.Fatalf("non-unit weight %d", wt)
		}
	}
}

// TestRegistryLoadWeightedMETISFile pins the daemon's weighted path: a
// weighted file publishes a weighted entry whose SSSP view carries the
// file's weights byte for byte.
func TestRegistryLoadWeightedMETISFile(t *testing.T) {
	w := testutil.RandomWeighted(40, 90, 12, 33)
	dir := t.TempDir()
	path := filepath.Join(dir, "w.metis")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := metis.WriteWeighted(f, w); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	r := NewRegistry()
	e, err := r.LoadMETISFile("wg", path)
	if err != nil {
		t.Fatal(err)
	}
	if !e.HasEdgeWeights() {
		t.Fatal("weighted file published an unweighted entry")
	}
	got, err := e.Weighted()
	if err != nil {
		t.Fatal(err)
	}
	aw, bw := w.ArcWeights(), got.ArcWeights()
	if len(aw) != len(bw) {
		t.Fatalf("%d arcs, want %d", len(bw), len(aw))
	}
	for i := range aw {
		if aw[i] != bw[i] {
			t.Fatalf("arc %d weight %d, want %d", i, bw[i], aw[i])
		}
	}
}

// TestRegistryReplaceWeighted checks weighted hot-swap: epochs bump
// and the weighted marker follows the new entry.
func TestRegistryReplaceWeighted(t *testing.T) {
	r := NewRegistry()
	if _, err := r.Add("g", gen.Path(6)); err != nil {
		t.Fatal(err)
	}
	e2, err := r.ReplaceWeighted("g", testutil.RandomWeighted(20, 40, 5, 1))
	if err != nil {
		t.Fatal(err)
	}
	if e2.Epoch() != 2 || !e2.HasEdgeWeights() {
		t.Fatalf("epoch %d weighted %v", e2.Epoch(), e2.HasEdgeWeights())
	}
	e3, err := r.Replace("g", gen.Star(6))
	if err != nil {
		t.Fatal(err)
	}
	if e3.Epoch() != 3 || e3.HasEdgeWeights() {
		t.Fatalf("epoch %d weighted %v", e3.Epoch(), e3.HasEdgeWeights())
	}
	if _, err := r.AddWeighted("g", testutil.RandomWeighted(10, 20, 3, 2)); err == nil {
		t.Fatal("AddWeighted over an existing name accepted")
	}
}
