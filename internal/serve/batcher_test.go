package serve

import (
	"bagraph"

	"context"
	"sync"
	"testing"
	"time"

	"bagraph/internal/bfs"
	"bagraph/internal/cc"
	"bagraph/internal/gen"
	"bagraph/internal/sssp"
	"bagraph/internal/testutil"
)

// newTestEntry publishes a mid-size generated graph (disconnected, so
// sentinel handling is exercised) in a fresh registry.
func newTestEntry(t testing.TB) *Entry {
	t.Helper()
	r := NewRegistry()
	g := gen.GNM(400, 900, 11)
	e, err := r.Add("gnm", g)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestBatcherCoalescesBFS fires maxBatch concurrent queries with a long
// window: the size trigger must dispatch them as one batch and every
// response must match the sequential oracle.
func TestBatcherCoalescesBFS(t *testing.T) {
	e := newTestEntry(t)
	const k = 8
	b := NewBatcher(2, k, 5*time.Second, bagraph.ScheduleStatic)
	defer b.Close()

	results := make([]Result, k)
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = b.BFS(context.Background(), e, "ba", uint32(i))
		}(i)
	}
	wg.Wait()

	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("root %d: %v", i, res.Err)
		}
		if res.Batch != k {
			t.Fatalf("root %d dispatched in batch of %d, want %d", i, res.Batch, k)
		}
		want, _ := bfs.TopDownBranchAvoiding(e.Graph(), uint32(i))
		for v := range want {
			if res.Hops[v] != want[v] {
				t.Fatalf("root %d: dist[%d] = %d, want %d", i, v, res.Hops[v], want[v])
			}
		}
	}
}

// TestBatcherSeparatesKeys checks that different algorithms never share
// a batch even when concurrent.
func TestBatcherSeparatesKeys(t *testing.T) {
	e := newTestEntry(t)
	b := NewBatcher(2, 16, 50*time.Millisecond, bagraph.ScheduleStatic)
	defer b.Close()

	var wg sync.WaitGroup
	var ba, bb Result
	wg.Add(2)
	go func() { defer wg.Done(); ba = b.BFS(context.Background(), e, "ba", 0) }()
	go func() { defer wg.Done(); bb = b.BFS(context.Background(), e, "bb", 0) }()
	wg.Wait()
	if ba.Err != nil || bb.Err != nil {
		t.Fatalf("errs: %v %v", ba.Err, bb.Err)
	}
	if ba.Batch != 1 || bb.Batch != 1 {
		t.Fatalf("distinct algorithms coalesced: batches %d and %d", ba.Batch, bb.Batch)
	}
}

// TestBatcherImmediateWindow covers the window <= 0 fast path: requests
// dispatch inline without waiting.
func TestBatcherImmediateWindow(t *testing.T) {
	e := newTestEntry(t)
	b := NewBatcher(1, 4, -1, bagraph.ScheduleStatic)
	defer b.Close()
	res := b.BFS(context.Background(), e, "par-do", 3)
	if res.Err != nil || res.Batch != 1 {
		t.Fatalf("immediate dispatch: batch %d err %v", res.Batch, res.Err)
	}
	want, _, _ := bfs.ParallelDO(e.Graph(), 3, bfs.ParallelOptions{Workers: 1})
	for v := range want {
		if res.Hops[v] != want[v] {
			t.Fatalf("dist[%d] = %d, want %d", v, res.Hops[v], want[v])
		}
	}
}

// TestBatcherSSSP checks the weighted family end to end: sequential
// and parallel kernels alike, the batcher's distances must equal the
// Dijkstra oracle on the entry's shared view.
func TestBatcherSSSP(t *testing.T) {
	e := newTestEntry(t)
	b := NewBatcher(2, 4, -1, bagraph.ScheduleStatic)
	defer b.Close()
	for _, algo := range []string{"bb", "ba", "dijkstra", "par-bb", "par-ba", "par-hybrid"} {
		res := b.SSSP(context.Background(), e, algo, 5)
		if res.Err != nil {
			t.Fatalf("%s: %v", algo, res.Err)
		}
		w, err := e.Weighted()
		if err != nil {
			t.Fatal(err)
		}
		want := sssp.Dijkstra(w, 5)
		for v := range want {
			if res.Dists[v] != want[v] {
				t.Fatalf("%s: dist[%d] = %d, want %d", algo, v, res.Dists[v], want[v])
			}
		}
	}
}

// TestBatcherSSSPRealWeights pins the weighted-entry path: a weighted
// registry entry serves SSSP on its real edge weights, not the unit
// view, for every algorithm.
func TestBatcherSSSPRealWeights(t *testing.T) {
	r := NewRegistry()
	w := testutil.RandomWeighted(300, 800, 25, 21)
	e, err := r.AddWeighted("wg", w)
	if err != nil {
		t.Fatal(err)
	}
	if !e.HasEdgeWeights() {
		t.Fatal("weighted entry not marked weighted")
	}
	b := NewBatcher(2, 4, -1, bagraph.ScheduleStatic)
	defer b.Close()
	want := sssp.Dijkstra(w, 2)
	for _, algo := range []string{"bb", "ba", "dijkstra", "par-bb", "par-ba", "par-hybrid"} {
		res := b.SSSP(context.Background(), e, algo, 2)
		if res.Err != nil {
			t.Fatalf("%s: %v", algo, res.Err)
		}
		for v := range want {
			if res.Dists[v] != want[v] {
				t.Fatalf("%s: dist[%d] = %d, want %d", algo, v, res.Dists[v], want[v])
			}
		}
	}
}

// TestBatcherMultiSourceBFS fires a full batch of "ms" queries: the
// size trigger must coalesce them into ONE multi-source kernel run and
// every response must match an independent sequential traversal.
func TestBatcherMultiSourceBFS(t *testing.T) {
	e := newTestEntry(t)
	const k = 6
	b := NewBatcher(2, k, 5*time.Second, bagraph.ScheduleStatic)
	defer b.Close()

	results := make([]Result, k)
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = b.BFS(context.Background(), e, "ms", uint32(i*7))
		}(i)
	}
	wg.Wait()

	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("req %d: %v", i, res.Err)
		}
		if res.Batch != k {
			t.Fatalf("req %d dispatched in batch of %d, want %d", i, res.Batch, k)
		}
		want, _ := bfs.TopDownBranchBased(e.Graph(), uint32(i*7))
		for v := range want {
			if res.Hops[v] != want[v] {
				t.Fatalf("req %d: dist[%d] = %d, want %d", i, v, res.Hops[v], want[v])
			}
		}
	}

	// A lone "ms" query (batch of one, immediate dispatch) also
	// answers correctly.
	b1 := NewBatcher(2, 4, -1, bagraph.ScheduleStatic)
	defer b1.Close()
	solo := b1.BFS(context.Background(), e, "ms", 3)
	if solo.Err != nil {
		t.Fatal(solo.Err)
	}
	if solo.Batch != 1 {
		t.Fatalf("solo batch = %d, want 1", solo.Batch)
	}
	want, _ := bfs.TopDownBranchBased(e.Graph(), 3)
	for v := range want {
		if solo.Hops[v] != want[v] {
			t.Fatalf("solo: dist[%d] = %d, want %d", v, solo.Hops[v], want[v])
		}
	}
}

// TestBatcherCCCoalescesAndCaches checks the CC path: one kernel run
// per (entry, algorithm) epoch, shared labels, and independent cache
// slots per algorithm.
func TestBatcherCCCoalescesAndCaches(t *testing.T) {
	e := newTestEntry(t)
	b := NewBatcher(2, 4, -1, bagraph.ScheduleStatic)
	defer b.Close()

	labels1, comps1, _, shared1, err := b.CC(context.Background(), e, "par-hybrid")
	if err != nil {
		t.Fatal(err)
	}
	if shared1 {
		t.Fatal("first CC query reported shared")
	}
	labels2, comps2, _, shared2, err := b.CC(context.Background(), e, "par-hybrid")
	if err != nil {
		t.Fatal(err)
	}
	if !shared2 {
		t.Fatal("second CC query recomputed")
	}
	if &labels1[0] != &labels2[0] || comps1 != comps2 {
		t.Fatal("cached CC result not shared")
	}
	want, _ := cc.SVBranchBased(e.Graph())
	for v := range want {
		if labels1[v] != want[v] {
			t.Fatalf("labels[%d] = %d, want %d", v, labels1[v], want[v])
		}
	}
	if comps1 != cc.CountComponents(want) {
		t.Fatalf("components = %d, want %d", comps1, cc.CountComponents(want))
	}

	// A different algorithm gets its own slot (fresh computation).
	_, _, _, sharedOther, err := b.CC(context.Background(), e, "unionfind")
	if err != nil {
		t.Fatal(err)
	}
	if sharedOther {
		t.Fatal("distinct algorithm shared a cache slot")
	}

	// Concurrent identical queries coalesce onto one run.
	e2 := newTestEntry(t)
	const k = 6
	sharedCount := 0
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _, _, shared, err := b.CC(context.Background(), e2, "hybrid")
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			if shared {
				sharedCount++
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	if sharedCount != k-1 {
		t.Fatalf("shared count = %d, want %d (exactly one computation)", sharedCount, k-1)
	}
}

// TestReplaceInvalidatesCCCache checks epoch-based invalidation: a
// replaced graph starts with an empty cache.
func TestReplaceInvalidatesCCCache(t *testing.T) {
	r := NewRegistry()
	e1, err := r.Add("g", gen.Path(20))
	if err != nil {
		t.Fatal(err)
	}
	b := NewBatcher(1, 4, -1, bagraph.ScheduleStatic)
	defer b.Close()
	if _, _, _, shared, err := b.CC(context.Background(), e1, "hybrid"); err != nil || shared {
		t.Fatalf("first query: shared=%v err=%v", shared, err)
	}
	e2, err := r.Replace("g", gen.Star(20))
	if err != nil {
		t.Fatal(err)
	}
	if e2.Epoch() != e1.Epoch()+1 {
		t.Fatalf("epoch = %d, want %d", e2.Epoch(), e1.Epoch()+1)
	}
	_, comps, _, shared, err := b.CC(context.Background(), e2, "hybrid")
	if err != nil {
		t.Fatal(err)
	}
	if shared {
		t.Fatal("replaced graph served a stale cache")
	}
	if comps != 1 {
		t.Fatalf("star components = %d, want 1", comps)
	}
}
