package serve

// ShardClient is the remote Backend: it speaks the daemon's own
// HTTP+JSON API against one shard process, decoding responses into the
// same structs the in-process backend produces. Failures split into
// two families the fleet router routes on: an application answer from
// a live shard (any HTTP status, surfaced as *Error so the router
// passes it through byte-identically) versus a transport failure (the
// shard is unreachable or died mid-response — the router retries the
// query on a replica). The caller's context errors pass through
// unwrapped, so a cancelled client still maps to 499 and a fired
// deadline to 504, exactly as with the in-process backend.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// ShardClient implements Backend over one shard's HTTP API.
type ShardClient struct {
	base string
	hc   *http.Client
}

// NewShardClient builds a client for a shard at addr (host:port, or a
// full http:// base URL). hc nil means a dedicated client with
// keep-alives and no overall timeout (per-query contexts bound each
// call).
func NewShardClient(addr string, hc *http.Client) *ShardClient {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	if hc == nil {
		hc = &http.Client{}
	}
	return &ShardClient{base: strings.TrimSuffix(addr, "/"), hc: hc}
}

// Addr returns the shard's base URL.
func (c *ShardClient) Addr() string { return c.base }

// TransportError marks a failure to reach the shard at all (dial,
// reset, mid-body disconnect): the query never got an answer and is
// safe to retry on a replica. Application answers — any decoded HTTP
// status — are *Error instead.
type TransportError struct {
	Shard string
	Err   error
}

func (e *TransportError) Error() string {
	return fmt.Sprintf("shard %s unreachable: %v", e.Shard, e.Err)
}

func (e *TransportError) Unwrap() error { return e.Err }

// roundTrip POSTs (or GETs, with a nil body) one API call and decodes
// the JSON answer into out.
func (c *ShardClient) roundTrip(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		// The caller's own context dying is not a shard fault: surface
		// it unwrapped so it maps to 499/504 like an in-process query.
		if ctxErr := ctx.Err(); ctxErr != nil {
			return ctxErr
		}
		return &TransportError{Shard: c.base, Err: err}
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return ctxErr
		}
		return &TransportError{Shard: c.base, Err: err}
	}
	if resp.StatusCode != http.StatusOK {
		var e errorResponse
		if json.Unmarshal(raw, &e) != nil || e.Error == "" {
			e.Error = fmt.Sprintf("shard %s: %s", c.base, strings.TrimSpace(string(raw)))
		}
		return &Error{Status: resp.StatusCode, Message: e.Error, RetryAfter: e.RetryAfter}
	}
	if err := json.Unmarshal(raw, out); err != nil {
		return &TransportError{Shard: c.base, Err: fmt.Errorf("bad response body: %w", err)}
	}
	return nil
}

// CC implements Backend by forwarding to the shard's /query/cc.
func (c *ShardClient) CC(ctx context.Context, graph, algo string, labels bool) (*CCResponse, error) {
	var out CCResponse
	err := c.roundTrip(ctx, http.MethodPost, "/query/cc",
		ccQuery{Graph: graph, Algo: algo, Labels: labels}, &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// BFS implements Backend by forwarding to the shard's /query/bfs.
func (c *ShardClient) BFS(ctx context.Context, graph string, root uint32, algo string) (*BFSResponse, error) {
	var out BFSResponse
	err := c.roundTrip(ctx, http.MethodPost, "/query/bfs",
		traversalQuery{Graph: graph, Root: root, Algo: algo}, &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// SSSP implements Backend by forwarding to the shard's /query/sssp.
func (c *ShardClient) SSSP(ctx context.Context, graph string, root uint32, algo string) (*SSSPResponse, error) {
	var out SSSPResponse
	err := c.roundTrip(ctx, http.MethodPost, "/query/sssp",
		traversalQuery{Graph: graph, Root: root, Algo: algo}, &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// Graphs implements Backend by forwarding to the shard's /graphs.
func (c *ShardClient) Graphs(ctx context.Context) ([]GraphInfo, error) {
	var out struct {
		Graphs []GraphInfo `json:"graphs"`
	}
	if err := c.roundTrip(ctx, http.MethodGet, "/graphs", nil, &out); err != nil {
		return nil, err
	}
	return out.Graphs, nil
}

// Healthz implements Backend by probing the shard's /healthz.
func (c *ShardClient) Healthz(ctx context.Context) (*Health, error) {
	var out Health
	if err := c.roundTrip(ctx, http.MethodGet, "/healthz", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Replace drives the shard's admin rollout endpoint: swap the named
// graph for a fresh load of the METIS file at path (a path on the
// SHARD's filesystem).
func (c *ShardClient) Replace(ctx context.Context, graph, path string) (*ReplaceResponse, error) {
	var out ReplaceResponse
	err := c.roundTrip(ctx, http.MethodPost, "/admin/replace",
		replaceRequest{Graph: graph, Path: path}, &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// HealthzTimeout is a convenience probe with its own deadline, for
// health-check loops that must not hang on a wedged shard.
func (c *ShardClient) HealthzTimeout(parent context.Context, d time.Duration) (*Health, error) {
	ctx, cancel := context.WithTimeout(parent, d)
	defer cancel()
	return c.Healthz(ctx)
}

var _ Backend = (*ShardClient)(nil)
