package serve_test

// Black-box equivalence: every query answered over HTTP must carry
// exactly the arrays a direct facade call produces — the daemon is a
// transport, not a different algorithm.

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"bagraph"
	"bagraph/internal/serve"
)

// newTestServer publishes one small disconnected graph and returns the
// HTTP test harness around the daemon core.
func newTestServer(t *testing.T) (*httptest.Server, *bagraph.Graph) {
	t.Helper()
	g, err := bagraph.CorpusGraph("cond-mat-2005", 0.02, 9)
	if err != nil {
		t.Fatal(err)
	}
	reg := serve.NewRegistry()
	if _, err := reg.Add("cm", g); err != nil {
		t.Fatal(err)
	}
	core := serve.New(reg, serve.Config{Workers: 2, BatchWindow: -1})
	ts := httptest.NewServer(core.Handler())
	t.Cleanup(func() {
		ts.Close()
		core.Close()
	})
	return ts, g
}

// post sends a JSON query and decodes a JSON response of type R.
func post[R any](t *testing.T, url string, body any) (int, R) {
	t.Helper()
	var r R
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
	return resp.StatusCode, r
}

// statsResp mirrors the response's per-query kernel stats object.
type statsResp struct {
	Passes         int    `json:"passes"`
	LabelStores    uint64 `json:"label_stores"`
	DistStores     uint64 `json:"dist_stores"`
	QueueStores    uint64 `json:"queue_stores"`
	CandStores     uint64 `json:"cand_stores"`
	TopDownLevels  int    `json:"top_down_levels"`
	BottomUpLevels int    `json:"bottom_up_levels"`
	Buckets        int    `json:"buckets"`
	Chunks         int    `json:"chunks"`
	Steals         uint64 `json:"steals"`
	StealPasses    uint64 `json:"steal_passes"`
	WordsScanned   uint64 `json:"words_scanned"`
	LightRelaxed   uint64 `json:"light_relaxed"`
	HeavyRelaxed   uint64 `json:"heavy_relaxed"`
}

type ccResp struct {
	Graph      string    `json:"graph"`
	Epoch      uint64    `json:"epoch"`
	Algo       string    `json:"algo"`
	Components int       `json:"components"`
	Cached     bool      `json:"cached"`
	Stats      statsResp `json:"stats"`
	Labels     []uint32  `json:"labels"`
}

type travResp struct {
	Graph   string    `json:"graph"`
	Algo    string    `json:"algo"`
	Root    uint32    `json:"root"`
	Batch   int       `json:"batch"`
	Reached int       `json:"reached"`
	Stats   statsResp `json:"stats"`
	Dist    []uint32  `json:"dist"`
}

type ssspResp struct {
	Dist    []uint64  `json:"dist"`
	Reached int       `json:"reached"`
	Sum     uint64    `json:"sum"`
	Batch   int       `json:"batch"`
	Stats   statsResp `json:"stats"`
}

type errResp struct {
	Error string `json:"error"`
}

func TestServerCCMatchesFacade(t *testing.T) {
	ts, g := newTestServer(t)
	facade := map[string]bagraph.CCAlgorithm{
		"sv-bb":     bagraph.CCBranchBased,
		"sv-ba":     bagraph.CCBranchAvoiding,
		"hybrid":    bagraph.CCHybrid,
		"unionfind": bagraph.CCUnionFind,
	}
	for algo, alg := range facade {
		code, got := post[ccResp](t, ts.URL+"/query/cc",
			map[string]any{"graph": "cm", "algo": algo, "labels": true})
		if code != http.StatusOK {
			t.Fatalf("%s: status %d", algo, code)
		}
		res, err := bagraph.Run(context.Background(), g, bagraph.Request{Kind: bagraph.KindCC, CC: alg})
		if err != nil {
			t.Fatal(err)
		}
		want := res.Labels
		if !equalU32(got.Labels, want) {
			t.Fatalf("%s: labels differ from facade", algo)
		}
		if got.Components != bagraph.ComponentCount(want) {
			t.Fatalf("%s: components = %d, want %d", algo, got.Components, bagraph.ComponentCount(want))
		}
	}
	// Parallel forms against the parallel facade.
	parallel := map[string]bagraph.CCAlgorithm{
		"par-bb":     bagraph.CCBranchBased,
		"par-ba":     bagraph.CCBranchAvoiding,
		"par-hybrid": bagraph.CCHybrid,
	}
	for algo, alg := range parallel {
		_, got := post[ccResp](t, ts.URL+"/query/cc",
			map[string]any{"graph": "cm", "algo": algo, "labels": true})
		res, err := bagraph.Run(context.Background(), g, bagraph.Request{
			Kind: bagraph.KindCC, CC: alg, Parallel: true, Workers: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !equalU32(got.Labels, res.Labels) {
			t.Fatalf("%s: labels differ from parallel facade", algo)
		}
	}
	// Second identical query is served from the epoch cache.
	_, again := post[ccResp](t, ts.URL+"/query/cc",
		map[string]any{"graph": "cm", "algo": "hybrid"})
	if !again.Cached {
		t.Fatal("repeat CC query was not cached")
	}
	if len(again.Labels) != 0 {
		t.Fatal("labels sent without being requested")
	}
	if again.Stats.Passes == 0 || again.Stats.LabelStores == 0 {
		t.Fatalf("cached CC response carries no fill stats: %+v", again.Stats)
	}
}

// TestServerQueryStats: every query family surfaces the kernel's
// counters in a "stats" object, including the scheduler's chunk/steal
// accounting for parallel algos — per-query observability without a
// daemon-side aggregator.
func TestServerQueryStats(t *testing.T) {
	ts, _ := newTestServer(t)
	_, bfsRes := post[travResp](t, ts.URL+"/query/bfs",
		map[string]any{"graph": "cm", "root": 0, "algo": "dir-opt"})
	if bfsRes.Stats.Passes == 0 || bfsRes.Stats.DistStores == 0 {
		t.Fatalf("BFS stats empty: %+v", bfsRes.Stats)
	}
	if bfsRes.Stats.TopDownLevels+bfsRes.Stats.BottomUpLevels != bfsRes.Stats.Passes {
		t.Fatalf("BFS level split inconsistent: %+v", bfsRes.Stats)
	}
	_, parRes := post[travResp](t, ts.URL+"/query/bfs",
		map[string]any{"graph": "cm", "root": 0, "algo": "par-do"})
	if parRes.Stats.Chunks == 0 {
		t.Fatalf("parallel BFS reported no scheduler chunks: %+v", parRes.Stats)
	}
	_, ssspRes := post[ssspResp](t, ts.URL+"/query/sssp",
		map[string]any{"graph": "cm", "root": 0, "algo": "par-hybrid"})
	if ssspRes.Stats.Passes == 0 || ssspRes.Stats.Buckets == 0 {
		t.Fatalf("SSSP stats empty: %+v", ssspRes.Stats)
	}
	if ssspRes.Stats.LightRelaxed == 0 {
		t.Fatalf("SSSP reported no relaxations: %+v", ssspRes.Stats)
	}
}

// TestServerQueryTimeout: an expired per-query deadline maps to 504 on
// every query endpoint (the negative timeout expires the context
// before the kernel starts, making the status deterministic), and a
// generous deadline changes nothing.
func TestServerQueryTimeout(t *testing.T) {
	g, err := bagraph.CorpusGraph("cond-mat-2005", 0.02, 9)
	if err != nil {
		t.Fatal(err)
	}
	reg := serve.NewRegistry()
	if _, err := reg.Add("cm", g); err != nil {
		t.Fatal(err)
	}
	expired := serve.New(reg, serve.Config{Workers: 2, BatchWindow: -1, QueryTimeout: -time.Nanosecond})
	tsExpired := httptest.NewServer(expired.Handler())
	defer func() {
		tsExpired.Close()
		expired.Close()
	}()
	for _, q := range []struct {
		path string
		body map[string]any
	}{
		{"/query/cc", map[string]any{"graph": "cm", "algo": "hybrid"}},
		{"/query/bfs", map[string]any{"graph": "cm", "root": 0, "algo": "dir-opt"}},
		{"/query/sssp", map[string]any{"graph": "cm", "root": 0, "algo": "par-hybrid"}},
	} {
		code, e := post[errResp](t, tsExpired.URL+q.path, q.body)
		if code != http.StatusGatewayTimeout {
			t.Fatalf("%s: status %d (%s), want 504", q.path, code, e.Error)
		}
		if e.Error == "" {
			t.Fatalf("%s: no error body on timeout", q.path)
		}
	}

	roomy := serve.New(reg, serve.Config{Workers: 2, BatchWindow: -1, QueryTimeout: time.Minute})
	tsRoomy := httptest.NewServer(roomy.Handler())
	defer func() {
		tsRoomy.Close()
		roomy.Close()
	}()
	code, res := post[travResp](t, tsRoomy.URL+"/query/bfs",
		map[string]any{"graph": "cm", "root": 0, "algo": "dir-opt"})
	if code != http.StatusOK || res.Reached == 0 {
		t.Fatalf("roomy deadline: status %d reached %d", code, res.Reached)
	}
}

func TestServerBFSMatchesFacade(t *testing.T) {
	ts, g := newTestServer(t)
	hops := func(req bagraph.Request) func() ([]uint32, error) {
		return func() ([]uint32, error) {
			res, err := bagraph.Run(context.Background(), g, req)
			if err != nil {
				return nil, err
			}
			if req.Kind == bagraph.KindBFSBatch {
				return res.HopsBatch[0], nil
			}
			return res.Hops, nil
		}
	}
	variants := map[string]func() ([]uint32, error){
		"bb":      hops(bagraph.Request{Kind: bagraph.KindBFS, BFS: bagraph.BFSBranchBased, Root: 3}),
		"ba":      hops(bagraph.Request{Kind: bagraph.KindBFS, BFS: bagraph.BFSBranchAvoiding, Root: 3}),
		"dir-opt": hops(bagraph.Request{Kind: bagraph.KindBFS, BFS: bagraph.BFSDirectionOptimizing, Root: 3}),
		"par-do":  hops(bagraph.Request{Kind: bagraph.KindBFS, Parallel: true, Root: 3, Workers: 2}),
		"ms":      hops(bagraph.Request{Kind: bagraph.KindBFSBatch, Roots: []uint32{3}, Workers: 2}),
	}
	for algo, oracle := range variants {
		code, got := post[travResp](t, ts.URL+"/query/bfs",
			map[string]any{"graph": "cm", "root": 3, "algo": algo})
		if code != http.StatusOK {
			t.Fatalf("%s: status %d", algo, code)
		}
		want, err := oracle()
		if err != nil {
			t.Fatal(err)
		}
		if !equalU32(got.Dist, want) {
			t.Fatalf("%s: distances differ from facade", algo)
		}
		reached := 0
		for _, d := range want {
			if d != bagraph.Unreached {
				reached++
			}
		}
		if got.Reached != reached {
			t.Fatalf("%s: reached = %d, want %d", algo, got.Reached, reached)
		}
	}
}

func TestServerSSSPMatchesFacade(t *testing.T) {
	ts, g := newTestServer(t)
	w, err := bagraph.AttachWeights(g, func(u, v uint32) uint32 { return 1 })
	if err != nil {
		t.Fatal(err)
	}
	paths := func(req bagraph.Request) func() ([]uint64, error) {
		return func() ([]uint64, error) {
			res, err := bagraph.Run(context.Background(), w, req)
			if err != nil {
				return nil, err
			}
			return res.Dists, nil
		}
	}
	facade := map[string]func() ([]uint64, error){
		"bb":         paths(bagraph.Request{Kind: bagraph.KindSSSP, SSSP: bagraph.SSSPBellmanFord, Root: 7}),
		"ba":         paths(bagraph.Request{Kind: bagraph.KindSSSP, SSSP: bagraph.SSSPBellmanFordBranchAvoiding, Root: 7}),
		"dijkstra":   paths(bagraph.Request{Kind: bagraph.KindSSSP, SSSP: bagraph.SSSPDijkstra, Root: 7}),
		"par-bb":     paths(bagraph.Request{Kind: bagraph.KindSSSP, SSSP: bagraph.SSSPBellmanFord, Parallel: true, Root: 7, Workers: 2}),
		"par-ba":     paths(bagraph.Request{Kind: bagraph.KindSSSP, SSSP: bagraph.SSSPBellmanFordBranchAvoiding, Parallel: true, Root: 7, Workers: 2}),
		"par-hybrid": paths(bagraph.Request{Kind: bagraph.KindSSSP, SSSP: bagraph.SSSPHybrid, Parallel: true, Root: 7, Workers: 2}),
	}
	for algo, oracle := range facade {
		code, got := post[ssspResp](t, ts.URL+"/query/sssp",
			map[string]any{"graph": "cm", "root": 7, "algo": algo})
		if code != http.StatusOK {
			t.Fatalf("%s: status %d", algo, code)
		}
		want, err := oracle()
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Dist) != len(want) {
			t.Fatalf("%s: length %d, want %d", algo, len(got.Dist), len(want))
		}
		var sum uint64
		for v := range want {
			if got.Dist[v] != want[v] {
				t.Fatalf("%s: dist[%d] = %d, want %d", algo, v, got.Dist[v], want[v])
			}
			if want[v] != bagraph.InfDistance {
				sum += want[v]
			}
		}
		if got.Sum != sum {
			t.Fatalf("%s: sum = %d, want %d", algo, got.Sum, sum)
		}
	}
}

func TestServerMetaEndpoints(t *testing.T) {
	ts, g := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var health struct {
		Status  string `json:"status"`
		Graphs  int    `json:"graphs"`
		Workers int    `json:"workers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || health.Graphs != 1 || health.Workers != 2 {
		t.Fatalf("health = %+v", health)
	}

	resp2, err := http.Get(ts.URL + "/graphs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var listing struct {
		Graphs []struct {
			Name     string `json:"name"`
			Vertices int    `json:"vertices"`
			Edges    int64  `json:"edges"`
			Epoch    uint64 `json:"epoch"`
		} `json:"graphs"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Graphs) != 1 {
		t.Fatalf("graphs = %+v", listing.Graphs)
	}
	row := listing.Graphs[0]
	if row.Name != "cm" || row.Vertices != g.NumVertices() || row.Edges != g.NumEdges() || row.Epoch != 1 {
		t.Fatalf("graph row = %+v", row)
	}
}

func TestServerErrorPaths(t *testing.T) {
	ts, _ := newTestServer(t)
	cases := []struct {
		name string
		url  string
		body any
		code int
	}{
		{"unknown graph", "/query/cc", map[string]any{"graph": "nope"}, http.StatusNotFound},
		{"missing graph", "/query/cc", map[string]any{}, http.StatusBadRequest},
		{"unknown cc algo", "/query/cc", map[string]any{"graph": "cm", "algo": "quantum"}, http.StatusBadRequest},
		{"unknown bfs algo", "/query/bfs", map[string]any{"graph": "cm", "algo": "quantum"}, http.StatusBadRequest},
		{"unknown sssp algo", "/query/sssp", map[string]any{"graph": "cm", "algo": "quantum"}, http.StatusBadRequest},
		{"root out of range", "/query/bfs", map[string]any{"graph": "cm", "root": 1 << 30}, http.StatusBadRequest},
		{"sssp root out of range", "/query/sssp", map[string]any{"graph": "cm", "root": 1 << 30}, http.StatusBadRequest},
		{"unknown field", "/query/bfs", map[string]any{"graph": "cm", "seed": 3}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		code, body := post[errResp](t, ts.URL+tc.url, tc.body)
		if code != tc.code {
			t.Fatalf("%s: status %d, want %d", tc.name, code, tc.code)
		}
		if body.Error == "" {
			t.Fatalf("%s: empty error body", tc.name)
		}
	}
	// Method and body-shape errors.
	resp, err := http.Get(ts.URL + "/query/cc")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET on query endpoint: %d", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/query/cc", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("truncated body: %d", resp.StatusCode)
	}
}

// TestServerBodyTooLarge: a body over the configured cap answers 413
// naming the limit, not a generic 400 — and a body exactly at the cap
// still parses. Regression: http.MaxBytesReader's error used to fall
// through the generic bad-body branch.
func TestServerBodyTooLarge(t *testing.T) {
	g, err := bagraph.CorpusGraph("cond-mat-2005", 0.02, 9)
	if err != nil {
		t.Fatal(err)
	}
	reg := serve.NewRegistry()
	if _, err := reg.Add("cm", g); err != nil {
		t.Fatal(err)
	}
	const cap = 64
	core := serve.New(reg, serve.Config{Workers: 2, BatchWindow: -1, MaxBodyBytes: cap})
	ts := httptest.NewServer(core.Handler())
	defer func() {
		ts.Close()
		core.Close()
	}()

	// Pad a valid query with trailing spaces (whitespace is legal JSON
	// filler) to hit the cap exactly, then overshoot by one byte.
	query := []byte(`{"graph":"cm"}`)
	atCap := append(query, bytes.Repeat([]byte(" "), cap-len(query))...)
	overCap := append(query, bytes.Repeat([]byte(" "), cap-len(query)+1)...)

	resp, err := http.Post(ts.URL+"/query/cc", "application/json", bytes.NewReader(atCap))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("body at the %d-byte cap: status %d, want 200", cap, resp.StatusCode)
	}

	resp, err = http.Post(ts.URL+"/query/cc", "application/json", bytes.NewReader(overCap))
	if err != nil {
		t.Fatal(err)
	}
	var e errResp
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("body one byte over the cap: status %d, want 413", resp.StatusCode)
	}
	if !strings.Contains(e.Error, "64-byte limit") {
		t.Fatalf("413 body does not name the limit: %q", e.Error)
	}
}

// TestServerTrailingGarbage: bytes after the first JSON value reject
// with 400 instead of silently half-parsing a concatenated payload.
func TestServerTrailingGarbage(t *testing.T) {
	ts, _ := newTestServer(t)
	for _, body := range []string{
		`{"graph":"cm"}{"graph":"cm"}`,
		`{"graph":"cm"} trailing`,
		`{"graph":"cm"}]`,
	} {
		resp, err := http.Post(ts.URL+"/query/cc", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var e errResp
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %q: status %d, want 400", body, resp.StatusCode)
		}
		if !strings.Contains(e.Error, "trailing data") {
			t.Fatalf("body %q: error %q does not mention trailing data", body, e.Error)
		}
	}
}

func equalU32(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
