package serve

// The dispatch plane behind the HTTP handlers. A Backend answers the
// daemon's five logical operations — CC, BFS, SSSP, the graph listing
// and the health probe — in terms of graph NAMES, not registry
// entries, which is exactly the boundary that lets the same handlers
// front either an in-process batcher (Local, the single-daemon and
// shard configuration) or a remote shard over HTTP (ShardClient, what
// the fleet router fans queries through). Both implementations produce
// the same response structs and the same typed errors, so a response
// that travelled router → shard → router is byte-identical to one the
// shard would have served directly.

import (
	"context"
	"errors"
	"fmt"
	"net/http"

	"bagraph"
)

// Backend is the dispatch plane: everything the query handlers need,
// addressed by graph name. Implementations must map failures to *Error
// when the failure has a definite HTTP status (unknown graph, bad
// algorithm, out-of-range root) and pass context errors through
// unwrapped so the transport maps them to 504/499 uniformly.
type Backend interface {
	// CC answers a connected-components query. labels requests the full
	// per-vertex array.
	CC(ctx context.Context, graph, algo string, labels bool) (*CCResponse, error)
	// BFS answers a hop-distance query from root.
	BFS(ctx context.Context, graph string, root uint32, algo string) (*BFSResponse, error)
	// SSSP answers a weighted shortest-distance query from root.
	SSSP(ctx context.Context, graph string, root uint32, algo string) (*SSSPResponse, error)
	// Graphs lists the resident graphs.
	Graphs(ctx context.Context) ([]GraphInfo, error)
	// Healthz reports liveness and capacity.
	Healthz(ctx context.Context) (*Health, error)
}

// Error is a query failure carrying the HTTP status it must surface
// as. Backends return it for failures with a definite status; the
// handlers (and the fleet router, which distinguishes an application
// error from a dead shard by this type) unwrap it with errors.As.
type Error struct {
	Status  int
	Message string
	// RetryAfter, when positive, is the whole-seconds hint the client
	// should wait before retrying; the HTTP edge emits it as a
	// Retry-After header and a retry_after body field. Routers set it
	// on 503s (no live replica, admission shed) so well-behaved
	// clients back off instead of hammering a degraded fleet.
	RetryAfter int
}

func (e *Error) Error() string { return e.Message }

// Errorf builds a typed query failure.
func Errorf(status int, format string, args ...any) *Error {
	return &Error{Status: status, Message: fmt.Sprintf(format, args...)}
}

// ErrorStatus maps a backend failure to its HTTP status: a typed
// *Error carries its own, a passed deadline is the query timeout
// firing (504), a plain cancellation means the client went away (499),
// and anything else is a server fault.
func ErrorStatus(err error) int {
	var se *Error
	if errors.As(err, &se) {
		return se.Status
	}
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return statusClientClosedRequest
	default:
		return http.StatusInternalServerError
	}
}

// Health is the /healthz body. Shards reports live shards and is only
// present on a fleet router (omitted by in-process backends, keeping
// the single-daemon body unchanged).
type Health struct {
	Status  string `json:"status"`
	Graphs  int    `json:"graphs"`
	Workers int    `json:"workers"`
	Shards  int    `json:"shards,omitempty"`
}

// GraphInfo is one row of the /graphs listing.
type GraphInfo struct {
	Name      string `json:"name"`
	Vertices  int    `json:"vertices"`
	Edges     int64  `json:"edges"`
	Directed  bool   `json:"directed"`
	Weighted  bool   `json:"weighted"`
	Relabeled bool   `json:"relabeled"`
	Epoch     uint64 `json:"epoch"`
}

// QueryStats is the per-query kernel observability object: the pass
// structure, store counters and scheduler behavior of the run that
// served the query, so batching and steal behavior are visible per
// response without a daemon-side aggregator. Fields irrelevant to the
// kernel that ran are omitted.
type QueryStats struct {
	Passes         int    `json:"passes"`
	LabelStores    uint64 `json:"label_stores,omitempty"`
	DistStores     uint64 `json:"dist_stores,omitempty"`
	QueueStores    uint64 `json:"queue_stores,omitempty"`
	CandStores     uint64 `json:"cand_stores,omitempty"`
	TopDownLevels  int    `json:"top_down_levels,omitempty"`
	BottomUpLevels int    `json:"bottom_up_levels,omitempty"`
	Waves          int    `json:"waves,omitempty"`
	Buckets        int    `json:"buckets,omitempty"`
	Chunks         int    `json:"chunks,omitempty"`
	Steals         uint64 `json:"steals,omitempty"`
	StealPasses    uint64 `json:"steal_passes,omitempty"`
	WordsScanned   uint64 `json:"words_scanned,omitempty"`
	LightRelaxed   uint64 `json:"light_relaxed,omitempty"`
	HeavyRelaxed   uint64 `json:"heavy_relaxed,omitempty"`
}

// statsPayload projects the facade's Stats onto the response object.
func statsPayload(st bagraph.Stats) QueryStats {
	return QueryStats{
		Passes:         st.Passes,
		LabelStores:    st.LabelStores,
		DistStores:     st.DistStores,
		QueueStores:    st.QueueStores,
		CandStores:     st.CandStores,
		TopDownLevels:  st.TopDownLevels,
		BottomUpLevels: st.BottomUpLevels,
		Waves:          st.Waves,
		Buckets:        st.Buckets,
		Chunks:         st.Chunks,
		Steals:         st.Steals,
		StealPasses:    st.StealPasses,
		WordsScanned:   st.WordsScanned,
		LightRelaxed:   st.LightRelaxed,
		HeavyRelaxed:   st.HeavyRelaxed,
	}
}

// CCResponse is the /query/cc response body. Stats describe the run
// that filled the cache; a cached response repeats the fill's stats.
// Stale marks a degraded answer a fleet router served from its own
// cache because no live replica held the graph (bounded by the
// router's -max-stale age); in-process backends never set it.
type CCResponse struct {
	Graph      string     `json:"graph"`
	Epoch      uint64     `json:"epoch"`
	Algo       string     `json:"algo"`
	Components int        `json:"components"`
	Cached     bool       `json:"cached"`
	Stale      bool       `json:"stale,omitempty"`
	Stats      QueryStats `json:"stats"`
	Labels     []uint32   `json:"labels,omitempty"`
}

// BFSResponse is the /query/bfs response body.
type BFSResponse struct {
	Graph   string     `json:"graph"`
	Epoch   uint64     `json:"epoch"`
	Algo    string     `json:"algo"`
	Root    uint32     `json:"root"`
	Batch   int        `json:"batch"`
	Reached int        `json:"reached"`
	Stats   QueryStats `json:"stats"`
	Dist    []uint32   `json:"dist"`
}

// SSSPResponse is the /query/sssp response body. Sum (of finite
// distances) is the order-independent digest the smoke script compares
// against the CLI kernels without parsing the whole array.
type SSSPResponse struct {
	Graph   string     `json:"graph"`
	Epoch   uint64     `json:"epoch"`
	Algo    string     `json:"algo"`
	Root    uint32     `json:"root"`
	Batch   int        `json:"batch"`
	Reached int        `json:"reached"`
	Sum     uint64     `json:"sum"`
	Stats   QueryStats `json:"stats"`
	Dist    []uint64   `json:"dist"`
}
