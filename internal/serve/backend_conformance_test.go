package serve_test

// Backend conformance: the in-process Local backend and the HTTP
// ShardClient are two implementations of the same dispatch plane, so a
// query answered through either must JSON-encode to the same bytes —
// that equivalence is what lets the fleet router relay a shard's
// answer as if it had computed it. The suite drives both backends over
// identically-seeded registries with a static schedule (deterministic
// kernels), and pins the typed-error contract: *Error statuses and
// messages match, a pre-cancelled context maps to 499 and an expired
// deadline to 504 on both sides.

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"bagraph"
	"bagraph/internal/serve"
)

// conformanceBackends builds the two backends over identically-seeded
// registries: Local straight off one daemon core, and a ShardClient
// pointed at a second, identical core behind a real HTTP listener.
func conformanceBackends(t *testing.T) (local, remote serve.Backend) {
	t.Helper()
	cores := make([]*serve.Server, 2)
	for i := range cores {
		g, err := bagraph.CorpusGraph("cond-mat-2005", 0.02, 9)
		if err != nil {
			t.Fatal(err)
		}
		reg := serve.NewRegistry()
		if _, err := reg.Add("cm", g); err != nil {
			t.Fatal(err)
		}
		cores[i] = serve.New(reg, serve.Config{Workers: 2, BatchWindow: -1})
	}
	ts := httptest.NewServer(cores[1].Handler())
	t.Cleanup(func() {
		ts.Close()
		cores[0].Close()
		cores[1].Close()
	})
	return cores[0].Backend(), serve.NewShardClient(ts.URL, nil)
}

// mustJSON canonicalizes a response for byte comparison.
func mustJSON(t *testing.T, v any) string {
	t.Helper()
	buf, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(buf)
}

func TestBackendConformanceResponses(t *testing.T) {
	local, remote := conformanceBackends(t)
	ctx := context.Background()

	steps := []struct {
		name string
		call func(b serve.Backend) (any, error)
	}{
		{"cc labels", func(b serve.Backend) (any, error) {
			return b.CC(ctx, "cm", "par-hybrid", true)
		}},
		// The second identical CC query must replay from the epoch cache
		// on BOTH backends — Cached is part of the response bytes.
		{"cc cached", func(b serve.Backend) (any, error) {
			return b.CC(ctx, "cm", "par-hybrid", true)
		}},
		{"bfs par-do", func(b serve.Backend) (any, error) {
			return b.BFS(ctx, "cm", 0, "par-do")
		}},
		{"bfs ms", func(b serve.Backend) (any, error) {
			return b.BFS(ctx, "cm", 3, "ms")
		}},
		{"sssp par-hybrid", func(b serve.Backend) (any, error) {
			return b.SSSP(ctx, "cm", 0, "par-hybrid")
		}},
		{"graphs", func(b serve.Backend) (any, error) {
			return b.Graphs(ctx)
		}},
		{"healthz", func(b serve.Backend) (any, error) {
			return b.Healthz(ctx)
		}},
	}
	for _, step := range steps {
		lv, lerr := step.call(local)
		rv, rerr := step.call(remote)
		if lerr != nil || rerr != nil {
			t.Fatalf("%s: local err %v, remote err %v", step.name, lerr, rerr)
		}
		lj, rj := mustJSON(t, lv), mustJSON(t, rv)
		if lj != rj {
			t.Fatalf("%s: backends disagree\nlocal:  %s\nremote: %s", step.name, lj, rj)
		}
	}

	cc, err := local.CC(ctx, "cm", "par-hybrid", false)
	if err != nil {
		t.Fatal(err)
	}
	if !cc.Cached {
		t.Fatal("third cc query not served from cache")
	}
}

func TestBackendConformanceErrors(t *testing.T) {
	local, remote := conformanceBackends(t)
	ctx := context.Background()

	cases := []struct {
		name   string
		call   func(b serve.Backend) error
		status int
	}{
		{"unknown graph", func(b serve.Backend) error {
			_, err := b.CC(ctx, "nope", "", false)
			return err
		}, 404},
		{"missing graph name", func(b serve.Backend) error {
			_, err := b.CC(ctx, "", "", false)
			return err
		}, 400},
		{"bad algo", func(b serve.Backend) error {
			_, err := b.BFS(ctx, "cm", 0, "quantum")
			return err
		}, 400},
		{"root out of range", func(b serve.Backend) error {
			_, err := b.SSSP(ctx, "cm", 1<<30, "")
			return err
		}, 400},
	}
	for _, tc := range cases {
		lerr, rerr := tc.call(local), tc.call(remote)
		if lerr == nil || rerr == nil {
			t.Fatalf("%s: expected failures, got local %v, remote %v", tc.name, lerr, rerr)
		}
		if ls, rs := serve.ErrorStatus(lerr), serve.ErrorStatus(rerr); ls != tc.status || rs != tc.status {
			t.Fatalf("%s: status local %d, remote %d, want %d", tc.name, ls, rs, tc.status)
		}
		if lerr.Error() != rerr.Error() {
			t.Fatalf("%s: messages disagree\nlocal:  %q\nremote: %q", tc.name, lerr.Error(), rerr.Error())
		}
	}
}

// TestBackendConformanceContext: the caller's context dying maps the
// same way through both backends — cancellation to 499, a passed
// deadline to 504 — even though the remote path sees it as a transport
// failure first.
func TestBackendConformanceContext(t *testing.T) {
	local, remote := conformanceBackends(t)

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	expired, cancel2 := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel2()

	for _, tc := range []struct {
		name   string
		ctx    context.Context
		status int
	}{
		{"cancelled", cancelled, 499},
		{"deadline", expired, 504},
	} {
		for which, b := range map[string]serve.Backend{"local": local, "remote": remote} {
			_, err := b.CC(tc.ctx, "cm", "", false)
			if err == nil {
				t.Fatalf("%s/%s: query succeeded under a dead context", tc.name, which)
			}
			if got := serve.ErrorStatus(err); got != tc.status {
				t.Fatalf("%s/%s: status %d (err %v), want %d", tc.name, which, got, err, tc.status)
			}
		}
	}
}
