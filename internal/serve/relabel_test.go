package serve_test

// Relabeled registry equivalence: with SetRelabel the daemon stores
// graphs degree-ordered, but every query must answer exactly what the
// plain registry answers — vertex ids in queries and responses are
// always original ids.

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"bagraph"
	"bagraph/internal/serve"
)

// newRelabeledServer is newTestServer with degree-ordered storage.
func newRelabeledServer(t *testing.T) (*httptest.Server, *bagraph.Graph) {
	t.Helper()
	g, err := bagraph.CorpusGraph("cond-mat-2005", 0.02, 9)
	if err != nil {
		t.Fatal(err)
	}
	reg := serve.NewRegistry()
	reg.SetRelabel(true)
	e, err := reg.Add("cm", g)
	if err != nil {
		t.Fatal(err)
	}
	if !e.Relabeled() {
		t.Fatal("SetRelabel(true) entry is not relabeled")
	}
	core := serve.New(reg, serve.Config{Workers: 2, BatchWindow: -1})
	ts := httptest.NewServer(core.Handler())
	t.Cleanup(func() {
		ts.Close()
		core.Close()
	})
	return ts, g
}

func TestRelabeledServerMatchesFacade(t *testing.T) {
	ts, g := newRelabeledServer(t)
	ctx := context.Background()

	// /graphs advertises the layout.
	resp, err := http.Get(ts.URL + "/graphs")
	if err != nil {
		t.Fatal(err)
	}
	var listing struct {
		Graphs []struct {
			Name      string `json:"name"`
			Relabeled bool   `json:"relabeled"`
		} `json:"graphs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(listing.Graphs) != 1 || !listing.Graphs[0].Relabeled {
		t.Fatalf("/graphs = %+v, want one relabeled entry", listing.Graphs)
	}

	// CC: labels in original ids.
	ccWant, err := bagraph.Run(ctx, g, bagraph.Request{
		Kind: bagraph.KindCC, CC: bagraph.CCBranchAvoiding, Parallel: true, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	code, cc := post[ccResp](t, ts.URL+"/query/cc",
		map[string]any{"graph": "cm", "algo": "par-ba", "labels": true})
	if code != http.StatusOK {
		t.Fatalf("cc status %d", code)
	}
	if !equalU32(cc.Labels, ccWant.Labels) {
		t.Fatal("relabeled CC labels differ from facade on the raw graph")
	}

	// BFS (per-root and shared multi-source): hops in original ids.
	for _, algo := range []string{"par-do", "ms"} {
		code, bfsGot := post[travResp](t, ts.URL+"/query/bfs",
			map[string]any{"graph": "cm", "root": 3, "algo": algo})
		if code != http.StatusOK {
			t.Fatalf("bfs %s status %d", algo, code)
		}
		bfsWant, err := bagraph.Run(ctx, g, bagraph.Request{
			Kind: bagraph.KindBFS, Parallel: true, Root: 3, Workers: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !equalU32(bfsGot.Dist, bfsWant.Hops) {
			t.Fatalf("bfs %s: relabeled hops differ from facade", algo)
		}
	}

	// SSSP: the relabeled unit-weight view must price arcs like the
	// plain one.
	w, err := bagraph.AttachWeights(g, func(u, v uint32) uint32 { return 1 })
	if err != nil {
		t.Fatal(err)
	}
	ssspWant, err := bagraph.Run(ctx, w, bagraph.Request{
		Kind: bagraph.KindSSSP, SSSP: bagraph.SSSPHybrid, Parallel: true, Root: 7, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	code, sp := post[ssspResp](t, ts.URL+"/query/sssp",
		map[string]any{"graph": "cm", "root": 7, "algo": "par-hybrid"})
	if code != http.StatusOK {
		t.Fatalf("sssp status %d", code)
	}
	if len(sp.Dist) != len(ssspWant.Dists) {
		t.Fatalf("sssp length %d, want %d", len(sp.Dist), len(ssspWant.Dists))
	}
	for v := range sp.Dist {
		if sp.Dist[v] != ssspWant.Dists[v] {
			t.Fatalf("sssp dist[%d] = %d, want %d", v, sp.Dist[v], ssspWant.Dists[v])
		}
	}

	// Out-of-range roots still 400 with the caller's id in the message.
	code, bad := post[errResp](t, ts.URL+"/query/bfs",
		map[string]any{"graph": "cm", "root": uint32(g.NumVertices() + 5), "algo": "par-do"})
	if code != http.StatusBadRequest || bad.Error == "" {
		t.Fatalf("out-of-range root: status %d, error %q", code, bad.Error)
	}
}
