// Package serve is the query-serving layer: a long-lived daemon core
// that keeps named CSR graphs and a warm worker pool resident and
// answers connected-components, BFS and SSSP queries over an HTTP+JSON
// API, batching concurrent traversals into shared kernel dispatches
// (see batcher.go). cmd/baserved wraps it in a binary; tests drive it
// in-process through Handler.
//
// Endpoints:
//
//	GET  /healthz     — liveness: status, graph count, pool size
//	GET  /metrics     — Prometheus text exposition of the aggregation
//	                    plane: query counts and latency, batch sizes,
//	                    wave occupancy, CC cache events, kernel
//	                    counters, autotune decisions
//	GET  /graphs      — the resident graphs with sizes, epochs, and
//	                    whether they carry real edge weights
//	POST /query/cc    — {"graph","algo","labels"} → component count
//	                    (+labels on request); cached per graph epoch
//	POST /query/bfs   — {"graph","root","algo"} → hop distances; algo
//	                    "ms" lets concurrent queries share one
//	                    multi-source kernel run
//	POST /query/sssp  — {"graph","root","algo"} → weighted distances
//	                    (real edge weights for graphs loaded from
//	                    weighted METIS files, unit weights otherwise)
//
// Distance arrays use in-band sentinels for unreached vertices
// (4294967295 for BFS hops, 2^62 for SSSP), mirroring the library's
// Unreached/InfDistance constants. SSSP responses also carry the sum
// of finite distances, the cheap cross-check the smoke script compares
// against the CLI kernels.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"bagraph"
	"bagraph/internal/bfs"
	"bagraph/internal/sssp"
	"bagraph/internal/tune"
)

// Config sizes the daemon core. The zero value serves with GOMAXPROCS
// workers, batches of up to 32, and a 500µs coalescing window.
type Config struct {
	// Workers is the resident pool size; < 1 means GOMAXPROCS.
	Workers int
	// MaxBatch caps how many traversals one dispatch carries; < 1
	// means 32.
	MaxBatch int
	// BatchWindow is how long the first request of a batch waits for
	// company. 0 means the 500µs default; negative dispatches every
	// request immediately on its own (no added latency, no
	// coalescing).
	BatchWindow time.Duration
	// MaxBodyBytes caps query bodies; < 1 means 1 MiB.
	MaxBodyBytes int64
	// QueryTimeout caps each query's end-to-end time: the handlers
	// derive a context.WithTimeout from the request's own context, the
	// kernels observe it at their next pass barrier, and an expired
	// deadline maps to HTTP 504. 0 means no server-imposed deadline
	// (the client's connection is still honored).
	QueryTimeout time.Duration
	// Schedule is the chunk schedule the dispatched parallel kernels
	// run under: bagraph.ScheduleStatic (default) or
	// bagraph.ScheduleStealing for skew-heavy graphs.
	Schedule bagraph.Schedule
	// Autotune turns on the adaptive controller (internal/tune): the
	// schedule, delta-stepping width and light/heavy split of each
	// dispatch come from the per-(graph, kernel) cell's live counters
	// instead of the static flags above, queries may name algorithm
	// "auto" to let the cell pick the bb/ba/hybrid form, and an empty
	// algorithm defaults to "auto" instead of the static default. Every
	// knob the controller turns is result-invariant: responses stay
	// byte-identical to the static configuration.
	Autotune bool
}

// Server routes the HTTP API onto a Registry and a Batcher.
type Server struct {
	reg          *Registry
	batcher      *Batcher
	mux          *http.ServeMux
	queryTimeout time.Duration
	metrics      *Metrics
	tuner        *tune.Controller
}

// New builds a server core over the registry. Release with Close.
func New(reg *Registry, cfg Config) *Server {
	window := cfg.BatchWindow
	if window == 0 {
		window = 500 * time.Microsecond
	}
	maxBody := cfg.MaxBodyBytes
	if maxBody < 1 {
		maxBody = 1 << 20
	}
	s := &Server{
		reg:          reg,
		batcher:      NewBatcher(cfg.Workers, cfg.MaxBatch, window, cfg.Schedule),
		mux:          http.NewServeMux(),
		queryTimeout: cfg.QueryTimeout,
		metrics:      NewMetrics(),
	}
	s.batcher.SetMetrics(s.metrics)
	if cfg.Autotune {
		s.tuner = tune.New()
		s.batcher.SetTuner(s.tuner)
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.Handle("GET /metrics", s.metrics.Handler())
	s.mux.HandleFunc("GET /graphs", s.handleGraphs)
	s.mux.HandleFunc("POST /query/cc", s.instrument(tune.KindCC, bodyLimited(maxBody, s.handleCC)))
	s.mux.HandleFunc("POST /query/bfs", s.instrument(tune.KindBFS, bodyLimited(maxBody, s.handleBFS)))
	s.mux.HandleFunc("POST /query/sssp", s.instrument(tune.KindSSSP, bodyLimited(maxBody, s.handleSSSP)))
	return s
}

// Handler returns the HTTP entry point.
func (s *Server) Handler() http.Handler { return s.mux }

// Batcher exposes the dispatcher (benchmarks drive it directly).
func (s *Server) Batcher() *Batcher { return s.batcher }

// Metrics exposes the aggregation plane (tests read it in-process).
func (s *Server) Metrics() *Metrics { return s.metrics }

// statusWriter captures the response status for the query counters.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// statusLabel buckets an HTTP status into the low-cardinality outcome
// classes the queries_total counter carries.
func statusLabel(code int) string {
	switch {
	case code < 300:
		return "ok"
	case code == statusClientClosedRequest:
		return "canceled"
	case code == http.StatusGatewayTimeout:
		return "timeout"
	case code >= 400 && code < 500:
		return "bad_request"
	default:
		return "error"
	}
}

// instrument wraps a query handler with the per-kind count and latency
// instruments.
func (s *Server) instrument(kind string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		start := time.Now()
		h(sw, r)
		s.metrics.ObserveQuery(kind, statusLabel(sw.code), time.Since(start).Seconds())
	}
}

// resolveAuto maps the "auto" algorithm onto the tuner's current pick
// for the entry's cell (the static serving default when autotuning is
// off). Non-"auto" names pass through.
func (s *Server) resolveAuto(e *Entry, kind, algo string) string {
	if algo != "auto" {
		return algo
	}
	if s.tuner == nil {
		switch kind {
		case tune.KindCC:
			return ccAliases[""]
		case tune.KindSSSP:
			return ssspAliases[""]
		default:
			return bfsAliases[""]
		}
	}
	var delta uint64
	if kind == tune.KindSSSP {
		// The cell is keyed by (graph, epoch, kind) alone; the delta
		// only shapes the Delta decision, which the batcher re-derives,
		// so the entry's cached width (0 before the weighted view
		// exists) is fine here.
		delta = e.SSSPDelta()
	}
	d := s.tuner.Decide(s.batcher.workload(e, kind, delta))
	s.metrics.ObserveAutotune(kind, "algo", d.Algo)
	return d.Algo
}

// Close releases the worker pool. Call after the HTTP server has
// drained in-flight requests.
func (s *Server) Close() { s.batcher.Close() }

// bodyLimited wraps a handler with a request-body size cap.
func bodyLimited(maxBody int64, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		r.Body = http.MaxBytesReader(w, r.Body, maxBody)
		h(w, r)
	}
}

// errorResponse is the uniform failure body.
type errorResponse struct {
	Error string `json:"error"`
}

// statusClientClosedRequest is the (nginx-popularized) status for a
// request abandoned by its client: the response is written for logs
// and middleware — the client is no longer listening.
const statusClientClosedRequest = 499

// queryStatus maps a traversal failure to its HTTP status: a passed
// deadline is the server-imposed query timeout firing (504, the
// upstream-took-too-long status), a plain cancellation means the
// client went away and the batcher dropped or cancelled the work
// (499); anything else is a server fault.
func queryStatus(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return statusClientClosedRequest
	default:
		return http.StatusInternalServerError
	}
}

// queryContext derives the context a query runs under: the request's
// own (so a departed client still cancels the work) capped by the
// configured per-query deadline. cancel must be called when the query
// finishes. A negative timeout yields an already-expired context —
// deterministic 504s, which the timeout tests rely on.
func (s *Server) queryContext(r *http.Request) (context.Context, context.CancelFunc) {
	if s.queryTimeout != 0 {
		return context.WithTimeout(r.Context(), s.queryTimeout)
	}
	return r.Context(), func() {}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v) // the connection owns delivery; nothing to do on failure
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// decodeQuery parses a JSON query body.
func decodeQuery(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "bad query body: %v", err)
		return false
	}
	return true
}

// lookup resolves a graph name to its current entry.
func (s *Server) lookup(w http.ResponseWriter, name string) (*Entry, bool) {
	if name == "" {
		writeError(w, http.StatusBadRequest, "missing graph name")
		return nil, false
	}
	e, ok := s.reg.Get(name)
	if !ok {
		writeError(w, http.StatusNotFound, "graph %q not loaded", name)
		return nil, false
	}
	return e, true
}

// checkRoot validates a traversal source against the entry's graph.
func checkRoot(w http.ResponseWriter, e *Entry, root uint32) bool {
	if n := e.Graph().NumVertices(); int(root) >= n {
		writeError(w, http.StatusBadRequest, "root %d out of range for %d vertices", root, n)
		return false
	}
	return true
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Status  string `json:"status"`
		Graphs  int    `json:"graphs"`
		Workers int    `json:"workers"`
	}{"ok", len(s.reg.Entries()), s.batcher.Workers()})
}

// graphInfo is one row of the /graphs listing.
type graphInfo struct {
	Name      string `json:"name"`
	Vertices  int    `json:"vertices"`
	Edges     int64  `json:"edges"`
	Directed  bool   `json:"directed"`
	Weighted  bool   `json:"weighted"`
	Relabeled bool   `json:"relabeled"`
	Epoch     uint64 `json:"epoch"`
}

func (s *Server) handleGraphs(w http.ResponseWriter, r *http.Request) {
	entries := s.reg.Entries()
	infos := make([]graphInfo, 0, len(entries))
	for _, e := range entries {
		g := e.Graph()
		infos = append(infos, graphInfo{
			Name:      e.Name(),
			Vertices:  g.NumVertices(),
			Edges:     g.NumEdges(),
			Directed:  g.Directed(),
			Weighted:  e.HasEdgeWeights(),
			Relabeled: e.Relabeled(),
			Epoch:     e.Epoch(),
		})
	}
	writeJSON(w, http.StatusOK, struct {
		Graphs []graphInfo `json:"graphs"`
	}{infos})
}

// queryStats is the per-query kernel observability object: the pass
// structure, store counters and scheduler behavior of the run that
// served the query, so batching and steal behavior are visible per
// response without a daemon-side aggregator. Fields irrelevant to the
// kernel that ran are omitted.
type queryStats struct {
	Passes         int    `json:"passes"`
	LabelStores    uint64 `json:"label_stores,omitempty"`
	DistStores     uint64 `json:"dist_stores,omitempty"`
	QueueStores    uint64 `json:"queue_stores,omitempty"`
	CandStores     uint64 `json:"cand_stores,omitempty"`
	TopDownLevels  int    `json:"top_down_levels,omitempty"`
	BottomUpLevels int    `json:"bottom_up_levels,omitempty"`
	Waves          int    `json:"waves,omitempty"`
	Buckets        int    `json:"buckets,omitempty"`
	Chunks         int    `json:"chunks,omitempty"`
	Steals         uint64 `json:"steals,omitempty"`
	StealPasses    uint64 `json:"steal_passes,omitempty"`
	LightRelaxed   uint64 `json:"light_relaxed,omitempty"`
	HeavyRelaxed   uint64 `json:"heavy_relaxed,omitempty"`
}

// statsPayload projects the facade's Stats onto the response object.
func statsPayload(st bagraph.Stats) queryStats {
	return queryStats{
		Passes:         st.Passes,
		LabelStores:    st.LabelStores,
		DistStores:     st.DistStores,
		QueueStores:    st.QueueStores,
		CandStores:     st.CandStores,
		TopDownLevels:  st.TopDownLevels,
		BottomUpLevels: st.BottomUpLevels,
		Waves:          st.Waves,
		Buckets:        st.Buckets,
		Chunks:         st.Chunks,
		Steals:         st.Steals,
		StealPasses:    st.StealPasses,
		LightRelaxed:   st.LightRelaxed,
		HeavyRelaxed:   st.HeavyRelaxed,
	}
}

// ccQuery is the /query/cc request body.
type ccQuery struct {
	Graph string `json:"graph"`
	Algo  string `json:"algo"`
	// Labels requests the full per-vertex label array (sized |V|; omit
	// for large graphs when only the count matters).
	Labels bool `json:"labels"`
}

// ccResponse is the /query/cc response body. Stats describe the run
// that filled the cache; a cached response repeats the fill's stats.
type ccResponse struct {
	Graph      string     `json:"graph"`
	Epoch      uint64     `json:"epoch"`
	Algo       string     `json:"algo"`
	Components int        `json:"components"`
	Cached     bool       `json:"cached"`
	Stats      queryStats `json:"stats"`
	Labels     []uint32   `json:"labels,omitempty"`
}

func (s *Server) handleCC(w http.ResponseWriter, r *http.Request) {
	var q ccQuery
	if !decodeQuery(w, r, &q) {
		return
	}
	if q.Algo == "" && s.tuner != nil {
		q.Algo = "auto"
	}
	algo, err := canon(ccAliases, q.Algo, "CC")
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	e, ok := s.lookup(w, q.Graph)
	if !ok {
		return
	}
	algo = s.resolveAuto(e, tune.KindCC, algo)
	ctx, cancel := s.queryContext(r)
	defer cancel()
	labels, components, stats, shared, err := s.batcher.CC(ctx, e, algo)
	if err != nil {
		writeError(w, queryStatus(err), "%v", err)
		return
	}
	resp := ccResponse{
		Graph:      e.Name(),
		Epoch:      e.Epoch(),
		Algo:       algo,
		Components: components,
		Cached:     shared,
		Stats:      statsPayload(stats),
	}
	if q.Labels {
		resp.Labels = labels
	}
	writeJSON(w, http.StatusOK, resp)
}

// traversalQuery is the /query/bfs and /query/sssp request body.
type traversalQuery struct {
	Graph string `json:"graph"`
	Root  uint32 `json:"root"`
	Algo  string `json:"algo"`
}

// bfsResponse is the /query/bfs response body.
type bfsResponse struct {
	Graph   string     `json:"graph"`
	Epoch   uint64     `json:"epoch"`
	Algo    string     `json:"algo"`
	Root    uint32     `json:"root"`
	Batch   int        `json:"batch"`
	Reached int        `json:"reached"`
	Stats   queryStats `json:"stats"`
	Dist    []uint32   `json:"dist"`
}

func (s *Server) handleBFS(w http.ResponseWriter, r *http.Request) {
	var q traversalQuery
	if !decodeQuery(w, r, &q) {
		return
	}
	if q.Algo == "" && s.tuner != nil {
		q.Algo = "auto"
	}
	algo, err := canon(bfsAliases, q.Algo, "BFS")
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	e, ok := s.lookup(w, q.Graph)
	if !ok || !checkRoot(w, e, q.Root) {
		return
	}
	algo = s.resolveAuto(e, tune.KindBFS, algo)
	ctx, cancel := s.queryContext(r)
	defer cancel()
	res := s.batcher.BFS(ctx, e, algo, q.Root)
	if res.Err != nil {
		writeError(w, queryStatus(res.Err), "%v", res.Err)
		return
	}
	reached := 0
	for _, d := range res.Hops {
		if d != bfs.Inf {
			reached++
		}
	}
	writeJSON(w, http.StatusOK, bfsResponse{
		Graph:   e.Name(),
		Epoch:   e.Epoch(),
		Algo:    algo,
		Root:    q.Root,
		Batch:   res.Batch,
		Reached: reached,
		Stats:   statsPayload(res.Stats),
		Dist:    res.Hops,
	})
}

// ssspResponse is the /query/sssp response body. Sum (of finite
// distances) is the order-independent digest the smoke script compares
// against the CLI kernels without parsing the whole array.
type ssspResponse struct {
	Graph   string     `json:"graph"`
	Epoch   uint64     `json:"epoch"`
	Algo    string     `json:"algo"`
	Root    uint32     `json:"root"`
	Batch   int        `json:"batch"`
	Reached int        `json:"reached"`
	Sum     uint64     `json:"sum"`
	Stats   queryStats `json:"stats"`
	Dist    []uint64   `json:"dist"`
}

func (s *Server) handleSSSP(w http.ResponseWriter, r *http.Request) {
	var q traversalQuery
	if !decodeQuery(w, r, &q) {
		return
	}
	if q.Algo == "" && s.tuner != nil {
		q.Algo = "auto"
	}
	algo, err := canon(ssspAliases, q.Algo, "SSSP")
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	e, ok := s.lookup(w, q.Graph)
	if !ok || !checkRoot(w, e, q.Root) {
		return
	}
	algo = s.resolveAuto(e, tune.KindSSSP, algo)
	ctx, cancel := s.queryContext(r)
	defer cancel()
	res := s.batcher.SSSP(ctx, e, algo, q.Root)
	if res.Err != nil {
		writeError(w, queryStatus(res.Err), "%v", res.Err)
		return
	}
	reached := 0
	sum := uint64(0)
	for _, d := range res.Dists {
		if d != sssp.Inf {
			reached++
			sum += d
		}
	}
	writeJSON(w, http.StatusOK, ssspResponse{
		Graph:   e.Name(),
		Epoch:   e.Epoch(),
		Algo:    algo,
		Root:    q.Root,
		Batch:   res.Batch,
		Reached: reached,
		Sum:     sum,
		Stats:   statsPayload(res.Stats),
		Dist:    res.Dists,
	})
}
