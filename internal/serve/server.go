// Package serve is the query-serving layer: a long-lived daemon core
// that keeps named CSR graphs and a warm worker pool resident and
// answers connected-components, BFS and SSSP queries over an HTTP+JSON
// API, batching concurrent traversals into shared kernel dispatches
// (see batcher.go). cmd/baserved wraps it in a binary; tests drive it
// in-process through Handler.
//
// The HTTP handlers front a Backend (see backend.go): the in-process
// Local backend (registry + batcher) in a single daemon or fleet
// shard, or a fleet router fanning the same queries across remote
// shards through ShardClients. Handlers decode, delegate and encode;
// every dispatch decision lives behind the interface, which is what
// keeps a routed response byte-identical to a direct one.
//
// Endpoints:
//
//	GET  /healthz     — liveness: status, graph count, pool size
//	GET  /metrics     — Prometheus text exposition of the aggregation
//	                    plane: query counts and latency, batch sizes,
//	                    wave occupancy, CC cache events, kernel
//	                    counters, autotune decisions
//	GET  /graphs      — the resident graphs with sizes, epochs, and
//	                    whether they carry real edge weights
//	POST /query/cc    — {"graph","algo","labels"} → component count
//	                    (+labels on request); cached per graph epoch
//	POST /query/bfs   — {"graph","root","algo"} → hop distances; algo
//	                    "ms" lets concurrent queries share one
//	                    multi-source kernel run
//	POST /query/sssp  — {"graph","root","algo"} → weighted distances
//	                    (real edge weights for graphs loaded from
//	                    weighted METIS files, unit weights otherwise)
//	POST /admin/replace — (Config.Admin only) zero-downtime graph
//	                    rollout via Registry.Replace/ReplaceWeighted
//
// Distance arrays use in-band sentinels for unreached vertices
// (4294967295 for BFS hops, 2^62 for SSSP), mirroring the library's
// Unreached/InfDistance constants. SSSP responses also carry the sum
// of finite distances, the cheap cross-check the smoke script compares
// against the CLI kernels.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"bagraph"
	"bagraph/internal/tune"
)

// Config sizes the daemon core. The zero value serves with GOMAXPROCS
// workers, batches of up to 32, and a 500µs coalescing window.
type Config struct {
	// Workers is the resident pool size; < 1 means GOMAXPROCS.
	Workers int
	// MaxBatch caps how many traversals one dispatch carries; < 1
	// means 32.
	MaxBatch int
	// BatchWindow is how long the first request of a batch waits for
	// company. 0 means the 500µs default; negative dispatches every
	// request immediately on its own (no added latency, no
	// coalescing).
	BatchWindow time.Duration
	// MaxBodyBytes caps query bodies; < 1 means 1 MiB.
	MaxBodyBytes int64
	// QueryTimeout caps each query's end-to-end time: the handlers
	// derive a context.WithTimeout from the request's own context, the
	// kernels observe it at their next pass barrier, and an expired
	// deadline maps to HTTP 504. 0 means no server-imposed deadline
	// (the client's connection is still honored).
	QueryTimeout time.Duration
	// Schedule is the chunk schedule the dispatched parallel kernels
	// run under: bagraph.ScheduleStatic (default) or
	// bagraph.ScheduleStealing for skew-heavy graphs.
	Schedule bagraph.Schedule
	// Autotune turns on the adaptive controller (internal/tune): the
	// schedule, delta-stepping width and light/heavy split of each
	// dispatch come from the per-(graph, kernel) cell's live counters
	// instead of the static flags above, queries may name algorithm
	// "auto" to let the cell pick the bb/ba/hybrid form, and an empty
	// algorithm defaults to "auto" instead of the static default. Every
	// knob the controller turns is result-invariant: responses stay
	// byte-identical to the static configuration.
	Autotune bool
	// Admin mounts the backend's admin routes (POST /admin/replace on
	// a local backend, POST /admin/rollout on a fleet router). Off by
	// default: the admin plane loads files from the daemon's
	// filesystem and belongs behind the operator's network boundary,
	// not in query traffic.
	Admin bool
}

// Server routes the HTTP API onto a Backend.
type Server struct {
	backend      Backend
	mux          *http.ServeMux
	queryTimeout time.Duration
	metrics      *Metrics
	local        *Local // non-nil when the backend is in-process
}

// New builds a single-process server core over the registry: the
// backend is a Local wrapping a fresh Batcher. Release with Close.
func New(reg *Registry, cfg Config) *Server {
	window := cfg.BatchWindow
	if window == 0 {
		window = 500 * time.Microsecond
	}
	metrics := NewMetrics()
	batcher := NewBatcher(cfg.Workers, cfg.MaxBatch, window, cfg.Schedule)
	batcher.SetMetrics(metrics)
	var tuner *tune.Controller
	if cfg.Autotune {
		tuner = tune.New()
		batcher.SetTuner(tuner)
	}
	local := NewLocal(reg, batcher, metrics, tuner)
	s := newServer(local, cfg, metrics)
	s.local = local
	return s
}

// NewWithBackend builds a server core over an arbitrary backend (the
// fleet router hands in itself). The batching knobs of cfg are unused
// — the backend owns dispatch — but QueryTimeout, MaxBodyBytes and
// Admin apply as usual.
func NewWithBackend(b Backend, cfg Config) *Server {
	return newServer(b, cfg, NewMetrics())
}

func newServer(b Backend, cfg Config, metrics *Metrics) *Server {
	maxBody := cfg.MaxBodyBytes
	if maxBody < 1 {
		maxBody = 1 << 20
	}
	s := &Server{
		backend:      b,
		mux:          http.NewServeMux(),
		queryTimeout: cfg.QueryTimeout,
		metrics:      metrics,
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.Handle("GET /metrics", s.metrics.Handler())
	s.mux.HandleFunc("GET /graphs", s.handleGraphs)
	s.mux.HandleFunc("POST /query/cc", s.instrument(tune.KindCC, bodyLimited(maxBody, s.handleCC)))
	s.mux.HandleFunc("POST /query/bfs", s.instrument(tune.KindBFS, bodyLimited(maxBody, s.handleBFS)))
	s.mux.HandleFunc("POST /query/sssp", s.instrument(tune.KindSSSP, bodyLimited(maxBody, s.handleSSSP)))
	if cfg.Admin {
		if ab, ok := b.(AdminBackend); ok {
			ab.MountAdmin(s.mux)
		}
	}
	return s
}

// Handler returns the HTTP entry point.
func (s *Server) Handler() http.Handler { return s.mux }

// Backend exposes the dispatch plane the handlers front.
func (s *Server) Backend() Backend { return s.backend }

// Batcher exposes the in-process dispatcher (benchmarks drive it
// directly); nil when the server fronts a remote backend.
func (s *Server) Batcher() *Batcher {
	if s.local == nil {
		return nil
	}
	return s.local.Batcher()
}

// Metrics exposes the aggregation plane (tests read it in-process).
func (s *Server) Metrics() *Metrics { return s.metrics }

// statusWriter captures the response status for the query counters.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// statusLabel buckets an HTTP status into the low-cardinality outcome
// classes the queries_total counter carries.
func statusLabel(code int) string {
	switch {
	case code < 300:
		return "ok"
	case code == statusClientClosedRequest:
		return "canceled"
	case code == http.StatusGatewayTimeout:
		return "timeout"
	case code >= 400 && code < 500:
		return "bad_request"
	default:
		return "error"
	}
}

// instrument wraps a query handler with the per-kind count and latency
// instruments.
func (s *Server) instrument(kind string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		start := time.Now()
		h(sw, r)
		s.metrics.ObserveQuery(kind, statusLabel(sw.code), time.Since(start).Seconds())
	}
}

// Close releases the backend's resources (the worker pool for a local
// backend, the health checkers for a router). Call after the HTTP
// server has drained in-flight requests.
func (s *Server) Close() {
	if c, ok := s.backend.(closableBackend); ok {
		c.Close()
	}
}

// bodyLimited wraps a handler with a request-body size cap.
func bodyLimited(maxBody int64, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		r.Body = http.MaxBytesReader(w, r.Body, maxBody)
		h(w, r)
	}
}

// errorResponse is the uniform failure body. RetryAfter mirrors the
// Retry-After header on backoff-worthy failures (router 503s), so
// clients that never see headers (logs, body-only tooling) still get
// the hint.
type errorResponse struct {
	Error      string `json:"error"`
	RetryAfter int    `json:"retry_after,omitempty"`
}

// statusClientClosedRequest is the (nginx-popularized) status for a
// request abandoned by its client: the response is written for logs
// and middleware — the client is no longer listening.
const statusClientClosedRequest = 499

// queryContext derives the context a query runs under: the request's
// own (so a departed client still cancels the work) capped by the
// configured per-query deadline. cancel must be called when the query
// finishes. A negative timeout yields an already-expired context —
// deterministic 504s, which the timeout tests rely on.
func (s *Server) queryContext(r *http.Request) (context.Context, context.CancelFunc) {
	if s.queryTimeout != 0 {
		return context.WithTimeout(r.Context(), s.queryTimeout)
	}
	return r.Context(), func() {}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v) // the connection owns delivery; nothing to do on failure
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// writeBackendError maps a backend failure onto the wire: the status
// from ErrorStatus, plus — when the typed *Error carries a retry hint
// — a Retry-After header and the matching retry_after body field.
func writeBackendError(w http.ResponseWriter, err error) {
	retry := 0
	var se *Error
	if errors.As(err, &se) {
		retry = se.RetryAfter
	}
	if retry > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(retry))
	}
	writeJSON(w, ErrorStatus(err), errorResponse{Error: err.Error(), RetryAfter: retry})
}

// decodeQuery parses a JSON query body: exactly one JSON value, within
// the configured size cap. A body that tripped http.MaxBytesReader
// answers 413 naming the limit (not a generic 400 — the client must
// know shrinking the body is the fix), and trailing data after the
// first value is rejected rather than silently ignored, so a
// concatenated or corrupted payload cannot half-parse into a valid
// query.
func decodeQuery(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge,
				"query body exceeds the %d-byte limit", mbe.Limit)
			return false
		}
		writeError(w, http.StatusBadRequest, "bad query body: %v", err)
		return false
	}
	if _, err := dec.Token(); err != io.EOF {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			// The value parsed, but the body keeps going past the cap.
			writeError(w, http.StatusRequestEntityTooLarge,
				"query body exceeds the %d-byte limit", mbe.Limit)
			return false
		}
		writeError(w, http.StatusBadRequest, "bad query body: trailing data after JSON value")
		return false
	}
	return true
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h, err := s.backend.Healthz(r.Context())
	if err != nil {
		writeBackendError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, h)
}

func (s *Server) handleGraphs(w http.ResponseWriter, r *http.Request) {
	infos, err := s.backend.Graphs(r.Context())
	if err != nil {
		writeBackendError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Graphs []GraphInfo `json:"graphs"`
	}{infos})
}

// ccQuery is the /query/cc request body.
type ccQuery struct {
	Graph string `json:"graph"`
	Algo  string `json:"algo"`
	// Labels requests the full per-vertex label array (sized |V|; omit
	// for large graphs when only the count matters).
	Labels bool `json:"labels"`
}

func (s *Server) handleCC(w http.ResponseWriter, r *http.Request) {
	var q ccQuery
	if !decodeQuery(w, r, &q) {
		return
	}
	ctx, cancel := s.queryContext(r)
	defer cancel()
	resp, err := s.backend.CC(ctx, q.Graph, q.Algo, q.Labels)
	if err != nil {
		writeBackendError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// traversalQuery is the /query/bfs and /query/sssp request body.
type traversalQuery struct {
	Graph string `json:"graph"`
	Root  uint32 `json:"root"`
	Algo  string `json:"algo"`
}

func (s *Server) handleBFS(w http.ResponseWriter, r *http.Request) {
	var q traversalQuery
	if !decodeQuery(w, r, &q) {
		return
	}
	ctx, cancel := s.queryContext(r)
	defer cancel()
	resp, err := s.backend.BFS(ctx, q.Graph, q.Root, q.Algo)
	if err != nil {
		writeBackendError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSSSP(w http.ResponseWriter, r *http.Request) {
	var q traversalQuery
	if !decodeQuery(w, r, &q) {
		return
	}
	ctx, cancel := s.queryContext(r)
	defer cancel()
	resp, err := s.backend.SSSP(ctx, q.Graph, q.Root, q.Algo)
	if err != nil {
		writeBackendError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}
