package serve

// Epoch-safety stress: the registry's contract is that a query runs to
// completion against the entry it resolved, while Replace concurrently
// publishes fresh entries (different sizes, weighted and unweighted)
// under the same name. Under -race this is the proof that hot graph
// replacement never shares mutable state with in-flight traversals —
// the property the ROADMAP's admin-reload direction leans on.

import (
	"bagraph"

	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bagraph/internal/gen"
	"bagraph/internal/graph"
	"bagraph/internal/testutil"
)

func TestReplaceUnderConcurrentQueries(t *testing.T) {
	r := NewRegistry()
	b := NewBatcher(2, 8, 100*time.Microsecond, bagraph.ScheduleStatic)
	defer b.Close()

	// Alternating replacement targets with different vertex counts, so
	// a query that illegally crossed epochs would trip the length
	// checks below.
	shapes := []*graph.Graph{
		gen.GNM(300, 700, 1),
		gen.GNM(500, 1200, 2),
		gen.Grid2D(15, 15, false),
	}
	weighted := testutil.RandomWeighted(400, 900, 9, 3)
	if _, err := r.Add("hot", shapes[0]); err != nil {
		t.Fatal(err)
	}

	const queriers = 4
	const queriesEach = 60
	// stop lets a failed replacer cut the query loops short instead of
	// letting them grind on against a registry that stopped changing.
	var stop atomic.Bool
	var wg sync.WaitGroup
	errc := make(chan error, queriers+1)

	for q := 0; q < queriers; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			algos := []struct {
				kind string
				algo string
			}{
				{"bfs", "ba"}, {"bfs", "ms"}, {"bfs", "par-do"},
				{"sssp", "par-hybrid"}, {"cc", "hybrid"},
			}
			for i := 0; i < queriesEach && !stop.Load(); i++ {
				e, ok := r.Get("hot")
				if !ok {
					errc <- fmt.Errorf("querier %d: graph vanished", q)
					return
				}
				n := e.Graph().NumVertices()
				root := uint32((q*31 + i*7) % n)
				a := algos[(q+i)%len(algos)]
				switch a.kind {
				case "bfs":
					res := b.BFS(context.Background(), e, a.algo, root)
					if res.Err != nil {
						errc <- fmt.Errorf("querier %d: bfs %s: %w", q, a.algo, res.Err)
						return
					}
					if len(res.Hops) != n {
						errc <- fmt.Errorf("querier %d: bfs %s: %d hops for %d vertices", q, a.algo, len(res.Hops), n)
						return
					}
					if res.Hops[root] != 0 {
						errc <- fmt.Errorf("querier %d: bfs %s: dist[root] = %d", q, a.algo, res.Hops[root])
						return
					}
				case "sssp":
					res := b.SSSP(context.Background(), e, a.algo, root)
					if res.Err != nil {
						errc <- fmt.Errorf("querier %d: sssp: %w", q, res.Err)
						return
					}
					if len(res.Dists) != n || res.Dists[root] != 0 {
						errc <- fmt.Errorf("querier %d: sssp: %d dists for %d vertices, dist[root]=%d",
							q, len(res.Dists), n, res.Dists[root])
						return
					}
				default:
					labels, comps, _, _, err := b.CC(context.Background(), e, a.algo)
					if err != nil {
						errc <- fmt.Errorf("querier %d: cc: %w", q, err)
						return
					}
					if len(labels) != n || comps < 1 {
						errc <- fmt.Errorf("querier %d: cc: %d labels for %d vertices, %d comps",
							q, len(labels), n, comps)
						return
					}
				}
			}
		}(q)
	}

	// Replacer: hot-swap between shapes (including a weighted one)
	// while the queriers hammer the name.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 30; i++ {
			var err error
			if i%4 == 3 {
				_, err = r.ReplaceWeighted("hot", weighted)
			} else {
				_, err = r.Replace("hot", shapes[i%len(shapes)])
			}
			if err != nil {
				errc <- fmt.Errorf("replace %d: %w", i, err)
				stop.Store(true)
				return
			}
			time.Sleep(500 * time.Microsecond)
		}
	}()

	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}
