package serve_test

// Shutdown hygiene: a daemon core that has served real traffic —
// batched traversals included — must unwind every goroutine it spawned
// (worker pool, batcher windows, per-request timers) when Close
// returns. The guard registers first, so it runs after the harness
// cleanup closes the server and core.

import (
	"testing"
	"time"

	"bagraph"
	"bagraph/internal/serve"
	"bagraph/internal/testleak"
)

func TestBatcherShutdownLeavesNoGoroutines(t *testing.T) {
	testleak.Check(t)
	g, err := bagraph.CorpusGraph("cond-mat-2005", 0.02, 9)
	if err != nil {
		t.Fatal(err)
	}
	reg := serve.NewRegistry()
	if _, err := reg.Add("cm", g); err != nil {
		t.Fatal(err)
	}
	// A positive batch window keeps the batching goroutines honest: the
	// dispatch timer path runs, not just the immediate path.
	core := serve.New(reg, serve.Config{Workers: 2, BatchWindow: 200 * time.Microsecond})
	t.Cleanup(core.Close)

	b := core.Backend()
	ctx := t.Context()
	if _, err := b.CC(ctx, "cm", "", false); err != nil {
		t.Fatal(err)
	}
	for root := uint32(0); root < 4; root++ {
		if _, err := b.BFS(ctx, "cm", root, ""); err != nil {
			t.Fatal(err)
		}
		if _, err := b.SSSP(ctx, "cm", root, ""); err != nil {
			t.Fatal(err)
		}
	}
}
