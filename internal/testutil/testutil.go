// Package testutil is the shared property-test harness for the kernel
// equivalence suites. Before it existed, the cc, bfs and sssp packages
// each carried a hand-rolled copy of the same generator loop (skewed
// RMAT, stencil grids, uniform GNM, structural edge cases) and the same
// element-for-element comparison against a sequential oracle. The
// harness centralizes both: Corpus/WeightedCorpus produce the
// seed-parameterized graph sets, ForEachGraph/ForEachWeighted run a
// check as one subtest per (seed, graph), and MustEqualDists /
// MustEqualLabels are the oracle comparators every suite shares.
//
// The corpus spans the generator classes the paper's Table 2 stands in
// for — social/collaboration (RMAT, skewed degrees), FEM/road meshes
// (2D/3D grids), uniform random (GNM) — plus the structural edge cases
// parallel kernels historically break on: disconnected graphs, stars
// (one-vertex ranges next to the full arc volume), paths (maximum
// diameter), singletons and the empty graph.
package testutil

import (
	"fmt"
	"testing"

	"bagraph/internal/gen"
	"bagraph/internal/graph"
	"bagraph/internal/xrand"
)

// WorkerCounts is the standard worker sweep for parallel-kernel
// equivalence tests: it covers the inline fast path (1), non-trivial
// partitions (2, 4), and more workers than the CI container has
// cores (8).
var WorkerCounts = []int{1, 2, 4, 8}

// DefaultSeeds is the seed set ForEachGraph and ForEachWeighted use
// when the caller passes none: two independent draws keep the
// randomized corpus honest without doubling suite runtime for every
// new axis.
var DefaultSeeds = []uint64{1, 2}

// Hub returns the forced-skew scheduling adversary: vertex 0 carries
// its n-1 star arcs plus loops parallel self-loops, so it owns well
// over half of all arcs (a simple undirected graph caps a vertex at
// exactly half — the kept parallel self-loops push past it). Any
// arc-balanced partition must hand one worker a block dominated by the
// hub; a scheduler that cannot shed that block's remaining chunks
// stalls every pass barrier. Self-loops are relaxation no-ops in every
// kernel (a vertex never improves its own label, distance, or
// frontier bit), so oracles are unaffected.
func Hub(n, loops int) *graph.Graph {
	edges := make([]graph.Edge, 0, n-1+loops)
	for i := 1; i < n; i++ {
		edges = append(edges, graph.Edge{U: 0, V: uint32(i)})
	}
	for i := 0; i < loops; i++ {
		edges = append(edges, graph.Edge{U: 0, V: 0})
	}
	return graph.MustBuild(n, edges, graph.Options{
		Name: fmt.Sprintf("hub%d+%d", n, loops), KeepSelfLoops: true, KeepParallelEdges: true,
	})
}

// Corpus returns the deterministic equivalence corpus for one seed.
// The random members (RMAT, GNM, the disconnected composite) are
// re-drawn per seed; the structural members are fixed shapes.
func Corpus(seed uint64) []*graph.Graph {
	return []*graph.Graph{
		gen.RMAT(10, 8, gen.DefaultRMAT, seed),
		gen.RMAT(12, 4, gen.DefaultRMAT, seed+100),
		gen.Grid2D(40, 40, false),
		gen.Grid3D(12, 12, 12, 1),
		gen.GNM(2000, 6000, seed+200),
		gen.GNM(500, 400, seed+300), // sparse: many components, BFS reaches a fragment
		gen.Disconnected(gen.GNM(300, 900, seed+400), 4),
		gen.Star(100),
		Hub(192, 600), // one vertex owning >50% of arcs: the steal-schedule adversary
		gen.Path(257),
		graph.MustBuild(1, nil, graph.Options{Name: "single"}),
		graph.MustBuild(0, nil, graph.Options{Name: "empty"}),
	}
}

// ForEachGraph runs fn as one subtest per (seed, corpus graph). A nil
// or empty seed list means DefaultSeeds.
func ForEachGraph(t *testing.T, seeds []uint64, fn func(t *testing.T, g *graph.Graph)) {
	t.Helper()
	if len(seeds) == 0 {
		seeds = DefaultSeeds
	}
	for _, seed := range seeds {
		for _, g := range Corpus(seed) {
			t.Run(fmt.Sprintf("seed%d/%s", seed, g), func(t *testing.T) { fn(t, g) })
		}
	}
}

// RandomWeighted builds a random weighted graph from one seed: a
// random spanning path (keeping most of it connected) plus m extra
// uniform edges, weights in [1, maxW].
func RandomWeighted(n, m int, maxW uint32, seed uint64) *graph.Weighted {
	r := xrand.New(seed)
	edges := make([]graph.WeightedEdge, 0, m+n)
	perm := r.Perm(n)
	for i := 0; i+1 < n; i++ {
		edges = append(edges, graph.WeightedEdge{
			U: uint32(perm[i]), V: uint32(perm[i+1]), W: 1 + r.Uint32()%maxW,
		})
	}
	for i := 0; i < m; i++ {
		edges = append(edges, graph.WeightedEdge{
			U: uint32(r.Intn(n)), V: uint32(r.Intn(n)), W: 1 + r.Uint32()%maxW,
		})
	}
	return graph.MustBuildWeighted(n, edges, false, fmt.Sprintf("wrand-%d-%d", n, m))
}

// AttachHashWeights wraps g with deterministic symmetric hash weights
// in [1, maxW] (xrand.SymmetricWeights).
func AttachHashWeights(tb testing.TB, g *graph.Graph, maxW uint32, seed uint64) *graph.Weighted {
	tb.Helper()
	w, err := graph.AttachWeights(g, xrand.SymmetricWeights(maxW, seed))
	if err != nil {
		tb.Fatalf("testutil: attach weights to %s: %v", g, err)
	}
	return w
}

// WeightedCorpus returns the weighted equivalence corpus for one seed:
// random weighted multigraphs (whose parallel edges and self-loops
// exercise the builder's collapse rules), hash-weighted structural
// corpus members, a deliberate shortcut triangle, zero-weight edges,
// and the weighted degenerates.
func WeightedCorpus(tb testing.TB, seed uint64) []*graph.Weighted {
	tb.Helper()
	return []*graph.Weighted{
		RandomWeighted(50, 120, 10, seed),
		RandomWeighted(200, 600, 100, seed+100),
		RandomWeighted(400, 1600, 7, seed+200),
		AttachHashWeights(tb, gen.Grid2D(17, 23, false), 50, seed),
		AttachHashWeights(tb, gen.Grid3D(8, 8, 8, 1), 31, seed+300),
		AttachHashWeights(tb, gen.RMAT(9, 6, gen.DefaultRMAT, seed+400), 20, seed+400),
		AttachHashWeights(tb, gen.BarabasiAlbert(150, 3, seed+500), 50, seed+500),
		AttachHashWeights(tb, gen.Disconnected(gen.GNM(120, 300, seed+600), 3), 9, seed+600),
		AttachHashWeights(tb, Hub(192, 600), 50, seed+700),
		graph.MustBuildWeighted(4, []graph.WeightedEdge{
			{U: 0, V: 1, W: 10}, {U: 0, V: 2, W: 1}, {U: 2, V: 1, W: 1},
		}, false, "shortcut"),
		graph.MustBuildWeighted(3, []graph.WeightedEdge{
			{U: 0, V: 1, W: 0}, {U: 1, V: 2, W: 0},
		}, false, "zeros"),
		graph.MustBuildWeighted(1, nil, false, "wsingle"),
		graph.MustBuildWeighted(0, nil, false, "wempty"),
	}
}

// ForEachWeighted runs fn as one subtest per (seed, weighted corpus
// graph). A nil or empty seed list means DefaultSeeds.
func ForEachWeighted(t *testing.T, seeds []uint64, fn func(t *testing.T, g *graph.Weighted)) {
	t.Helper()
	if len(seeds) == 0 {
		seeds = DefaultSeeds
	}
	for _, seed := range seeds {
		for _, g := range WeightedCorpus(t, seed) {
			t.Run(fmt.Sprintf("seed%d/%s", seed, g), func(t *testing.T) { fn(t, g) })
		}
	}
}

// MustEqualDists fails the test unless got matches want element for
// element. It reports the first mismatching index and stops the test:
// a kernel that disagrees with its oracle once will usually disagree
// thousands of times, and the first divergence is the diagnostic one.
func MustEqualDists[E comparable](tb testing.TB, ctx string, got, want []E) {
	tb.Helper()
	if len(got) != len(want) {
		tb.Fatalf("%s: %d distances, oracle has %d", ctx, len(got), len(want))
	}
	for v := range want {
		if got[v] != want[v] {
			tb.Fatalf("%s: dist[%d] = %v, oracle says %v", ctx, v, got[v], want[v])
		}
	}
}

// MustEqualLabels is the component-labeling comparator: identical to
// MustEqualDists but named for the CC suites' intent.
func MustEqualLabels(tb testing.TB, ctx string, got, want []uint32) {
	tb.Helper()
	if len(got) != len(want) {
		tb.Fatalf("%s: %d labels, oracle has %d", ctx, len(got), len(want))
	}
	for v := range want {
		if got[v] != want[v] {
			tb.Fatalf("%s: vertex %d labeled %d, oracle says %d", ctx, v, got[v], want[v])
		}
	}
}
