package stats

import (
	"math"
	"testing"
	"testing/quick"

	"bagraph/internal/xrand"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVarianceKnown(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Mean(xs) != 5 {
		t.Fatalf("Mean = %v", Mean(xs))
	}
	if Variance(xs) != 4 {
		t.Fatalf("Variance = %v", Variance(xs))
	}
	if StdDev(xs) != 2 {
		t.Fatalf("StdDev = %v", StdDev(xs))
	}
	if Mean(nil) != 0 || Variance(nil) != 0 {
		t.Fatal("empty inputs not zero")
	}
}

func TestPearsonPerfectCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{10, 20, 30, 40, 50}
	if r := Pearson(xs, ys); !approx(r, 1, 1e-12) {
		t.Fatalf("r = %v, want 1", r)
	}
	neg := []float64{50, 40, 30, 20, 10}
	if r := Pearson(xs, neg); !approx(r, -1, 1e-12) {
		t.Fatalf("r = %v, want -1", r)
	}
}

func TestPearsonAffineInvarianceProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := 5 + r.Intn(50)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64()
			ys[i] = r.NormFloat64()
		}
		base := Pearson(xs, ys)
		// Positive affine transforms must not change r.
		xs2 := make([]float64, n)
		for i := range xs {
			xs2[i] = 3*xs[i] + 7
		}
		return approx(Pearson(xs2, ys), base, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPearsonBounds(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := 3 + r.Intn(40)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = r.Float64()
			ys[i] = r.Float64()
		}
		p := Pearson(xs, ys)
		return p >= -1-1e-12 && p <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPearsonDegenerate(t *testing.T) {
	if Pearson([]float64{1, 1, 1}, []float64{1, 2, 3}) != 0 {
		t.Fatal("constant series must give 0")
	}
	if Pearson(nil, nil) != 0 {
		t.Fatal("empty series must give 0")
	}
}

func TestPearsonMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	Pearson([]float64{1}, []float64{1, 2})
}

func TestCorrMatrix(t *testing.T) {
	time := []float64{10, 20, 30, 41}
	instr := []float64{1, 2, 3, 4}
	noise := []float64{5, -3, 8, 1}
	m := NewCorrMatrix([]string{"T", "I", "N"}, [][]float64{time, instr, noise})
	for i := range m.Names {
		if m.R[i][i] != 1 {
			t.Fatal("diagonal not 1")
		}
	}
	ti, ok := m.Get("T", "I")
	if !ok || ti < 0.99 {
		t.Fatalf("T-I correlation = %v", ti)
	}
	it, _ := m.Get("I", "T")
	if ti != it {
		t.Fatal("matrix not symmetric")
	}
	if _, ok := m.Get("T", "missing"); ok {
		t.Fatal("Get found missing series")
	}
}

func TestCorrMatrixMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatch did not panic")
		}
	}()
	NewCorrMatrix([]string{"a"}, nil)
}

func TestLinearFit(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7} // y = 2x + 1
	slope, intercept := LinearFit(xs, ys)
	if !approx(slope, 2, 1e-12) || !approx(intercept, 1, 1e-12) {
		t.Fatalf("fit = %v, %v", slope, intercept)
	}
	s0, i0 := LinearFit([]float64{5, 5}, []float64{1, 3})
	if s0 != 0 || i0 != 2 {
		t.Fatalf("degenerate fit = %v, %v", s0, i0)
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 4}); !approx(g, 2, 1e-12) {
		t.Fatalf("GeoMean = %v", g)
	}
	if GeoMean(nil) != 0 {
		t.Fatal("empty GeoMean not 0")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("non-positive GeoMean did not panic")
		}
	}()
	GeoMean([]float64{1, 0})
}
