// Package stats provides the small statistical toolkit behind the paper's
// Fig. 10: Pearson correlations between per-iteration hardware events.
package stats

import (
	"fmt"
	"math"
)

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Pearson returns the Pearson correlation coefficient of the paired
// samples. It returns 0 when either series is constant (correlation is
// undefined there; 0 keeps downstream reports readable, matching how
// figure-10-style tables display degenerate cells). It panics if the
// slices have different lengths.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic(fmt.Sprintf("stats: length mismatch %d vs %d", len(xs), len(ys)))
	}
	n := len(xs)
	if n == 0 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// CorrMatrix computes the full Pearson correlation matrix of the named
// series. All series must have equal length.
type CorrMatrix struct {
	Names []string
	// R[i][j] is the correlation between series i and j.
	R [][]float64
}

// NewCorrMatrix builds the correlation matrix for the given series, in
// order.
func NewCorrMatrix(names []string, series [][]float64) CorrMatrix {
	if len(names) != len(series) {
		panic("stats: names/series length mismatch")
	}
	k := len(series)
	r := make([][]float64, k)
	for i := range r {
		r[i] = make([]float64, k)
		for j := range r[i] {
			if i == j {
				r[i][j] = 1
				continue
			}
			r[i][j] = Pearson(series[i], series[j])
		}
	}
	return CorrMatrix{Names: names, R: r}
}

// Get returns the correlation between the two named series.
func (m CorrMatrix) Get(a, b string) (float64, bool) {
	ia, ib := -1, -1
	for i, n := range m.Names {
		if n == a {
			ia = i
		}
		if n == b {
			ib = i
		}
	}
	if ia < 0 || ib < 0 {
		return 0, false
	}
	return m.R[ia][ib], true
}

// LinearFit returns the least-squares slope and intercept of y on x.
// A constant x yields slope 0 and intercept Mean(ys).
func LinearFit(xs, ys []float64) (slope, intercept float64) {
	if len(xs) != len(ys) {
		panic("stats: length mismatch")
	}
	if len(xs) == 0 {
		return 0, 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx float64
	for i := range xs {
		dx := xs[i] - mx
		sxy += dx * (ys[i] - my)
		sxx += dx * dx
	}
	if sxx == 0 {
		return 0, my
	}
	slope = sxy / sxx
	return slope, my - slope*mx
}

// GeoMean returns the geometric mean of positive values; it panics on
// non-positive inputs (speedup aggregation must not silently absorb
// zeros).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			panic("stats: GeoMean requires positive values")
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}
