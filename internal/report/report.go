// Package report renders experiment results as aligned ASCII tables and
// compact ratio-series, the textual equivalent of the paper's figures.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple aligned text table.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// Add appends a row; the cell count must match the header count.
func (t *Table) Add(cells ...string) {
	if len(cells) != len(t.Headers) {
		panic(fmt.Sprintf("report: row has %d cells, table has %d columns", len(cells), len(t.Headers)))
	}
	t.rows = append(t.rows, cells)
}

// AddF appends a row of formatted values: each value is rendered with %v
// unless it is a float64, which is rendered with %.3g.
func (t *Table) AddF(values ...any) {
	cells := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			cells[i] = fmt.Sprintf("%.3g", x)
		default:
			cells[i] = fmt.Sprint(x)
		}
	}
	t.Add(cells...)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Render writes the table.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
	}
	line(t.Headers)
	rule := make([]string, len(widths))
	for i, wd := range widths {
		rule[i] = strings.Repeat("-", wd)
	}
	line(rule)
	for _, row := range t.rows {
		line(row)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// sparkRunes spans eight intensity levels.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders vals as a unicode mini-chart scaled to [min, max].
// Empty input yields an empty string. Series whose relative spread is
// below 0.5% render flat, so measurement jitter does not masquerade as
// shape (the paper's branch-count curves are constant per iteration and
// must look constant).
func Sparkline(vals []float64) string {
	if len(vals) == 0 {
		return ""
	}
	lo, hi := vals[0], vals[0]
	for _, v := range vals {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	span := hi - lo
	scale := hi
	if -lo > hi {
		scale = -lo
	}
	flat := span == 0 || (scale > 0 && span/scale < 0.005)
	var b strings.Builder
	for _, v := range vals {
		idx := 0
		if !flat {
			idx = int((v - lo) / span * float64(len(sparkRunes)-1))
		}
		b.WriteRune(sparkRunes[idx])
	}
	return b.String()
}

// Ratio formats a ratio the way the paper annotates its subplots ("1.31x").
func Ratio(r float64) string { return fmt.Sprintf("%.2fx", r) }

// Section writes a titled separator, used between experiment blocks.
func Section(w io.Writer, title string) {
	fmt.Fprintf(w, "\n=== %s ===\n\n", title)
}
