package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("Systems", "Name", "Freq")
	tb.Add("Haswell", "3.5")
	tb.Add("Bonnell", "1.6")
	var buf bytes.Buffer
	tb.Render(&buf)
	out := buf.String()
	for _, want := range []string{"Systems", "Name", "Haswell", "Bonnell", "----"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if tb.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
}

func TestTableAlignment(t *testing.T) {
	tb := NewTable("", "A", "BBBB")
	tb.Add("xxxxxx", "y")
	var buf bytes.Buffer
	tb.Render(&buf)
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines", len(lines))
	}
	// Header and row must align: column B starts at the same offset.
	if strings.Index(lines[0], "BBBB") != strings.Index(lines[2], "y") {
		t.Errorf("columns misaligned:\n%s", buf.String())
	}
}

func TestTableMismatchedRowPanics(t *testing.T) {
	tb := NewTable("t", "one")
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched row did not panic")
		}
	}()
	tb.Add("a", "b")
}

func TestAddFFormatsFloats(t *testing.T) {
	tb := NewTable("", "v", "f")
	tb.AddF(42, 1.23456)
	var buf bytes.Buffer
	tb.Render(&buf)
	if !strings.Contains(buf.String(), "1.23") {
		t.Errorf("float not formatted: %s", buf.String())
	}
	if strings.Contains(buf.String(), "1.23456") {
		t.Errorf("float not truncated: %s", buf.String())
	}
}

func TestSparkline(t *testing.T) {
	if Sparkline(nil) != "" {
		t.Fatal("empty sparkline not empty")
	}
	s := Sparkline([]float64{0, 1, 2, 3})
	if len([]rune(s)) != 4 {
		t.Fatalf("sparkline rune count = %d", len([]rune(s)))
	}
	runes := []rune(s)
	if runes[0] != '▁' || runes[3] != '█' {
		t.Fatalf("sparkline extremes wrong: %q", s)
	}
	flat := Sparkline([]float64{5, 5, 5})
	for _, r := range flat {
		if r != '▁' {
			t.Fatalf("constant series not at floor: %q", flat)
		}
	}
}

func TestRatioFormat(t *testing.T) {
	if Ratio(1.314) != "1.31x" {
		t.Fatalf("Ratio = %q", Ratio(1.314))
	}
}

func TestSection(t *testing.T) {
	var buf bytes.Buffer
	Section(&buf, "Fig 3")
	if !strings.Contains(buf.String(), "=== Fig 3 ===") {
		t.Fatalf("Section output %q", buf.String())
	}
}
