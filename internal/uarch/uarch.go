// Package uarch catalogs the seven microarchitectures of the paper's
// Table 1 as simulation cost models.
//
// The paper measured wall-clock time and hardware counters on physical
// systems; this reproduction replaces each system with a parameterized
// model. Geometry (frequency, cache sizes) comes straight from Table 1.
// The cost parameters — base CPI, branch-misprediction penalty, predicated
// (conditional-move) execution cost, store cost and per-cache-level load
// latencies — are estimates assembled from public sources (Agner Fog's
// microarchitecture guide, vendor optimization manuals), chosen to
// reproduce the qualitative per-platform behaviour the paper reports:
//
//   - big out-of-order cores (Haswell, Ivy Bridge, Piledriver) hide most
//     costs except mispredictions, so branch-avoiding SV wins there;
//   - the in-order Bonnell pays heavily for the serializing conditional
//     move and for store traffic, so branch-based SV can win there (the
//     paper's ~20% counter-example) and branch-avoiding BFS loses badly;
//   - Silvermont has a short pipeline (low penalty) and cheap local
//     stores, making it the one platform where branch-avoiding BFS tends
//     to win (the paper's §6.3 observation).
//
// Absolute times produced by these models are not calibrated against the
// physical machines; only ratio shapes are meaningful, which is also how
// the paper reports its figures (each curve is normalized to the fastest
// iteration of the branch-based kernel).
package uarch

import (
	"fmt"

	"bagraph/internal/cachesim"
	"bagraph/internal/perfcount"
)

// Model is one simulated microarchitecture.
type Model struct {
	Name      string // microarchitecture name, as in Table 1
	ISA       string // "x86-64" or "ARM v7-A"
	Processor string // the physical part the paper used
	FreqGHz   float64
	DRAM      string

	// Cache geometry; a zero-size L3 means the level is absent.
	L1, L2, L3 cachesim.Config

	// Cost parameters (cycles).
	CPI               float64 // base cycles per retired instruction
	MispredictPenalty float64 // pipeline refill cost per branch miss
	CondMoveExtra     float64 // extra cost per predicated operation
	StoreCost         float64 // extra cost per store (buffer pressure)
	// LoadExtra[i] is the extra latency for a load served at cache level
	// i+1; LoadExtra[3] is a memory access. L1 hits are considered fully
	// pipelined (cost absorbed in CPI).
	LoadExtra [4]float64
}

// HasL3 reports whether the model has a third cache level.
func (m Model) HasL3() bool { return m.L3.SizeBytes > 0 }

// NewCache builds a fresh cache hierarchy with the model's geometry.
func (m Model) NewCache() *cachesim.Hierarchy {
	cfgs := []cachesim.Config{m.L1, m.L2}
	if m.HasL3() {
		cfgs = append(cfgs, m.L3)
	}
	return cachesim.MustNewHierarchy(cfgs...)
}

// levelExtra maps a cachesim.Hierarchy access result (1-based level,
// levels+1 = memory) to the model's extra-latency table.
func (m Model) levelExtra(level, numLevels int) float64 {
	if level > numLevels {
		return m.LoadExtra[3]
	}
	return m.LoadExtra[level-1]
}

// LoadCost returns the extra cycles for a memory read served at the given
// hierarchy level (as returned by cachesim.Hierarchy.Access).
func (m Model) LoadCost(level, numLevels int) float64 {
	return m.levelExtra(level, numLevels)
}

// Cycles prices an event-count snapshot in cycles under the model:
//
//	cycles = I·CPI + M·penalty + cmov·extra + S·storeCost
//	         + Σ_level hits(level)·loadExtra(level)
//
// The cache-level terms use the counter's L1/L2/L3/Mem breakdown, which
// the simulated machine fills in as it runs.
func (m Model) Cycles(c perfcount.Counters) float64 {
	cycles := float64(c.Instructions)*m.CPI +
		float64(c.Mispredicts)*m.MispredictPenalty +
		float64(c.CondMoves)*m.CondMoveExtra +
		float64(c.Stores)*m.StoreCost
	cycles += float64(c.L2) * m.LoadExtra[1]
	cycles += float64(c.L3) * m.LoadExtra[2]
	cycles += float64(c.Mem) * m.LoadExtra[3]
	return cycles
}

// Seconds converts an event snapshot to simulated seconds.
func (m Model) Seconds(c perfcount.Counters) float64 {
	return m.Cycles(c) / (m.FreqGHz * 1e9)
}

// String implements fmt.Stringer.
func (m Model) String() string {
	return fmt.Sprintf("%s (%s, %s, %.1f GHz)", m.Name, m.ISA, m.Processor, m.FreqGHz)
}

// kb returns a cache config of the given size in KiB.
func kb(size, ways int) cachesim.Config {
	return cachesim.Config{SizeBytes: size << 10, Ways: ways}
}

// Systems returns the seven microarchitectures of Table 1 in the paper's
// row order.
func Systems() []Model {
	return []Model{
		{
			Name: "Cortex-A15", ISA: "ARM v7-A", Processor: "Samsung Exynos 5250",
			FreqGHz: 1.7, DRAM: "SC DDR3-800",
			L1: kb(32, 8), L2: kb(1024, 16),
			CPI: 0.50, MispredictPenalty: 15, CondMoveExtra: 0.5, StoreCost: 2.2,
			LoadExtra: [4]float64{0, 10, 0, 140},
		},
		{
			Name: "Piledriver", ISA: "x86-64", Processor: "AMD FX-6300",
			FreqGHz: 3.5, DRAM: "DC DDR3-1600",
			L1: kb(16, 4), L2: kb(2048, 16), L3: kb(8192, 16),
			CPI: 0.42, MispredictPenalty: 19, CondMoveExtra: 0.20, StoreCost: 1.6,
			LoadExtra: [4]float64{0, 9, 30, 115},
		},
		{
			Name: "Bobcat", ISA: "x86-64", Processor: "AMD E2-1800",
			FreqGHz: 1.7, DRAM: "SC DDR3-1333",
			L1: kb(32, 8), L2: kb(512, 8),
			CPI: 0.60, MispredictPenalty: 13, CondMoveExtra: 0.6, StoreCost: 2.0,
			LoadExtra: [4]float64{0, 9, 0, 130},
		},
		{
			Name: "Haswell", ISA: "x86-64", Processor: "Intel Core i7-4770K",
			FreqGHz: 3.5, DRAM: "DC DDR3-2133",
			L1: kb(32, 8), L2: kb(256, 8), L3: kb(8192, 16),
			CPI: 0.30, MispredictPenalty: 17, CondMoveExtra: 0.10, StoreCost: 1.3,
			LoadExtra: [4]float64{0, 7, 22, 95},
		},
		{
			Name: "Ivy Bridge", ISA: "x86-64", Processor: "Intel Core i3-3217U",
			FreqGHz: 1.8, DRAM: "DC DDR3-1600",
			L1: kb(32, 8), L2: kb(256, 8), L3: kb(3072, 12),
			CPI: 0.34, MispredictPenalty: 15, CondMoveExtra: 0.12, StoreCost: 1.4,
			LoadExtra: [4]float64{0, 7, 21, 110},
		},
		{
			Name: "Silvermont", ISA: "x86-64", Processor: "Intel Atom C2750",
			FreqGHz: 2.4, DRAM: "DC DDR3-1600",
			L1: kb(24, 6), L2: kb(1024, 16),
			CPI: 0.62, MispredictPenalty: 10, CondMoveExtra: 0.7, StoreCost: 0.2,
			LoadExtra: [4]float64{0, 9, 0, 120},
		},
		{
			Name: "Bonnell", ISA: "x86-64", Processor: "Intel Atom 330",
			FreqGHz: 1.6, DRAM: "SC DDR3-800",
			L1: kb(24, 6), L2: kb(512, 8),
			CPI: 0.90, MispredictPenalty: 12, CondMoveExtra: 3.0, StoreCost: 3.0,
			LoadExtra: [4]float64{0, 11, 0, 150},
		},
	}
}

// ByName looks up a model by its microarchitecture name.
func ByName(name string) (Model, bool) {
	for _, m := range Systems() {
		if m.Name == name {
			return m, true
		}
	}
	return Model{}, false
}

// Names returns the system names in Table-1 order.
func Names() []string {
	sys := Systems()
	names := make([]string, len(sys))
	for i, m := range sys {
		names[i] = m.Name
	}
	return names
}
