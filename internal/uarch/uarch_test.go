package uarch

import (
	"strings"
	"testing"

	"bagraph/internal/perfcount"
)

func TestSystemsMatchTable1(t *testing.T) {
	sys := Systems()
	if len(sys) != 7 {
		t.Fatalf("Systems() returned %d models, Table 1 has 7", len(sys))
	}
	// Spot-check geometry against Table 1.
	checks := map[string]struct {
		freq   float64
		l1KB   int
		l2KB   int
		l3KB   int // 0 = absent
		isaARM bool
	}{
		"Cortex-A15": {1.7, 32, 1024, 0, true},
		"Piledriver": {3.5, 16, 2048, 8192, false},
		"Bobcat":     {1.7, 32, 512, 0, false},
		"Haswell":    {3.5, 32, 256, 8192, false},
		"Ivy Bridge": {1.8, 32, 256, 3072, false},
		"Silvermont": {2.4, 24, 1024, 0, false},
		"Bonnell":    {1.6, 24, 512, 0, false},
	}
	for name, want := range checks {
		m, ok := ByName(name)
		if !ok {
			t.Errorf("missing system %q", name)
			continue
		}
		if m.FreqGHz != want.freq {
			t.Errorf("%s freq = %v, want %v", name, m.FreqGHz, want.freq)
		}
		if m.L1.SizeBytes != want.l1KB<<10 {
			t.Errorf("%s L1 = %d B, want %d KB", name, m.L1.SizeBytes, want.l1KB)
		}
		if m.L2.SizeBytes != want.l2KB<<10 {
			t.Errorf("%s L2 = %d B, want %d KB", name, m.L2.SizeBytes, want.l2KB)
		}
		if want.l3KB == 0 && m.HasL3() {
			t.Errorf("%s should not have an L3", name)
		}
		if want.l3KB > 0 && m.L3.SizeBytes != want.l3KB<<10 {
			t.Errorf("%s L3 = %d B, want %d KB", name, m.L3.SizeBytes, want.l3KB)
		}
		if got := m.ISA == "ARM v7-A"; got != want.isaARM {
			t.Errorf("%s ISA = %q", name, m.ISA)
		}
	}
}

func TestCacheConfigsAreValid(t *testing.T) {
	for _, m := range Systems() {
		h := m.NewCache() // panics on invalid geometry
		wantLevels := 2
		if m.HasL3() {
			wantLevels = 3
		}
		if h.Levels() != wantLevels {
			t.Errorf("%s cache has %d levels, want %d", m.Name, h.Levels(), wantLevels)
		}
	}
}

func TestByNameMiss(t *testing.T) {
	if _, ok := ByName("Zen4"); ok {
		t.Fatal("ByName found a system not in Table 1")
	}
}

func TestNamesOrder(t *testing.T) {
	names := Names()
	if len(names) != 7 || names[0] != "Cortex-A15" {
		t.Fatalf("Names() = %v", names)
	}
}

func TestCyclesMonotoneInEvents(t *testing.T) {
	base := perfcount.Counters{Instructions: 1000, Branches: 200, Loads: 300, Stores: 100, L1: 400}
	for _, m := range Systems() {
		c0 := m.Cycles(base)

		more := base
		more.Mispredicts += 50
		if m.Cycles(more) <= c0 {
			t.Errorf("%s: extra mispredictions did not cost cycles", m.Name)
		}

		more = base
		more.Stores += 500
		more.L1 += 500
		if m.Cycles(more) <= c0 {
			t.Errorf("%s: extra stores did not cost cycles", m.Name)
		}

		more = base
		more.L1 -= 100
		more.Mem += 100
		if m.Cycles(more) <= c0 {
			t.Errorf("%s: pushing hits to memory did not cost cycles", m.Name)
		}
	}
}

func TestSecondsUsesFrequency(t *testing.T) {
	c := perfcount.Counters{Instructions: 1_000_000, L1: 100}
	hsw, _ := ByName("Haswell")
	ivb, _ := ByName("Ivy Bridge")
	// Same event counts: the faster-clocked machine with lower CPI must
	// finish sooner.
	if hsw.Seconds(c) >= ivb.Seconds(c) {
		t.Errorf("Haswell (3.5 GHz) slower than Ivy Bridge (1.8 GHz) on identical events")
	}
	if hsw.Seconds(c) <= 0 {
		t.Error("non-positive simulated time")
	}
}

func TestLoadCostLevels(t *testing.T) {
	m, _ := ByName("Haswell") // 3 levels
	if m.LoadCost(1, 3) != 0 {
		t.Error("L1 hit should be free beyond CPI")
	}
	if m.LoadCost(2, 3) != m.LoadExtra[1] {
		t.Error("L2 cost mismatch")
	}
	if m.LoadCost(4, 3) != m.LoadExtra[3] {
		t.Error("memory cost mismatch for 3-level hierarchy")
	}
	two, _ := ByName("Bobcat") // 2 levels
	if two.LoadCost(3, 2) != two.LoadExtra[3] {
		t.Error("memory cost mismatch for 2-level hierarchy")
	}
}

func TestCostParametersPlausible(t *testing.T) {
	for _, m := range Systems() {
		if m.CPI <= 0 || m.CPI > 2 {
			t.Errorf("%s CPI = %v out of plausible range", m.Name, m.CPI)
		}
		if m.MispredictPenalty < 5 || m.MispredictPenalty > 30 {
			t.Errorf("%s penalty = %v out of plausible range", m.Name, m.MispredictPenalty)
		}
		if m.LoadExtra[3] < m.LoadExtra[1] {
			t.Errorf("%s memory latency below L2 latency", m.Name)
		}
	}
}

func TestInOrderCoreCostsMore(t *testing.T) {
	// Design-choice pin: Bonnell (in-order) must have the highest
	// conditional-move and store costs — this is what reproduces the
	// paper's Bonnell counter-examples.
	bon, _ := ByName("Bonnell")
	for _, m := range Systems() {
		if m.Name == "Bonnell" {
			continue
		}
		if m.CondMoveExtra >= bon.CondMoveExtra {
			t.Errorf("%s cmov cost %v >= Bonnell %v", m.Name, m.CondMoveExtra, bon.CondMoveExtra)
		}
	}
	// Silvermont must have the cheapest stores (paper: the only platform
	// where branch-avoiding BFS tends to win).
	slv, _ := ByName("Silvermont")
	for _, m := range Systems() {
		if m.Name == "Silvermont" {
			continue
		}
		if m.StoreCost <= slv.StoreCost {
			t.Errorf("%s store cost %v <= Silvermont %v", m.Name, m.StoreCost, slv.StoreCost)
		}
	}
}

func TestStringIncludesProcessor(t *testing.T) {
	m, _ := ByName("Haswell")
	if !strings.Contains(m.String(), "4770K") {
		t.Errorf("String() = %q", m.String())
	}
}
