package bitset

import (
	"testing"
	"testing/quick"

	"bagraph/internal/xrand"
)

// TestWordBoundaryEdges pins set/clear/test/Bit/scan behavior exactly at
// the 64-bit word seams (bits 63, 64, 127) for capacities that do and do
// not divide evenly by 64.
func TestWordBoundaryEdges(t *testing.T) {
	for _, n := range []int{65, 100, 128, 129, 200} {
		s := New(n)
		for _, i := range []int{63, 64} {
			s.Set(i)
			if !s.Test(i) || s.Bit(i) != 1 {
				t.Fatalf("n=%d: bit %d not set (Test=%v Bit=%d)", n, i, s.Test(i), s.Bit(i))
			}
		}
		if n > 127 {
			s.Set(127)
			if s.Bit(127) != 1 || s.Bit(126) != 0 {
				t.Fatalf("n=%d: Bit around 127 wrong: Bit(127)=%d Bit(126)=%d", n, s.Bit(127), s.Bit(126))
			}
		}
		// Neighbors across the seam must be untouched.
		for _, i := range []int{62, 65} {
			if s.Test(i) || s.Bit(i) != 0 {
				t.Fatalf("n=%d: neighbor bit %d leaked", n, i)
			}
		}
		if got := s.NextSet(64); got != 64 {
			t.Fatalf("n=%d: NextSet(64) = %d, want 64", n, got)
		}
		s.Clear(63)
		if s.Test(63) || !s.Test(64) {
			t.Fatalf("n=%d: Clear(63) crossed the word boundary", n)
		}
		s.Clear(64)
		if got := s.NextSet(0); n > 127 && got != 127 {
			t.Fatalf("n=%d: NextSet(0) after clears = %d, want 127", n, got)
		}
	}
}

func TestZeroLengthSet(t *testing.T) {
	s := New(0)
	if s.Len() != 0 || s.Count() != 0 || s.Any() {
		t.Fatal("zero-length set not empty")
	}
	if got := s.NextSet(0); got != -1 {
		t.Fatalf("NextSet(0) on empty universe = %d, want -1", got)
	}
	if idx, w := s.NextSetIn(0, 0); idx != -1 || w != 0 {
		t.Fatalf("NextSetIn on empty universe = (%d, %d), want (-1, 0)", idx, w)
	}
	s.Reset()
	s.SetAll()
	if s.Count() != 0 {
		t.Fatal("SetAll on zero-length set produced bits")
	}
	s.BuildRank()
	if got := s.Rank(0); got != 0 {
		t.Fatalf("Rank(0) on empty universe = %d", got)
	}
	if got := s.Select(0); got != -1 {
		t.Fatalf("Select(0) on empty universe = %d, want -1", got)
	}
	s.ForEach(func(i int) { t.Fatalf("ForEach visited %d on empty universe", i) })
}

func TestSetAllTailMasking(t *testing.T) {
	for _, n := range []int{1, 63, 64, 65, 127, 128, 129, 511, 512, 513} {
		s := New(n)
		s.SetAll()
		if got := s.Count(); got != n {
			t.Fatalf("n=%d: SetAll count = %d", n, got)
		}
		// The bits beyond n in the last word must stay zero so NextSet
		// never reports an out-of-universe index.
		if got := s.NextSet(n - 1); got != n-1 {
			t.Fatalf("n=%d: NextSet(n-1) = %d", n, got)
		}
		s.Clear(n - 1)
		if got := s.NextSet(n - 1); got != -1 {
			t.Fatalf("n=%d: NextSet past last real bit = %d, want -1", n, got)
		}
	}
}

func TestRankSelectAgainstNaive(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := 1 + int(seed%2000)
		s := New(n)
		for i := 0; i < n/3+1; i++ {
			s.Set(r.Intn(n))
		}
		s.BuildRank()
		if !s.HasRank() {
			return false
		}
		// rank(i) vs naive prefix popcount, select(k) inverts rank.
		c := 0
		for i := 0; i <= n; i++ {
			if s.Rank(i) != c {
				t.Logf("seed %d: Rank(%d) = %d, want %d", seed, i, s.Rank(i), c)
				return false
			}
			if i < n && s.Test(i) {
				if got := s.Select(c); got != i {
					t.Logf("seed %d: Select(%d) = %d, want %d", seed, c, got, i)
					return false
				}
				c++
			}
		}
		return s.Select(c) == -1 && s.Select(-1) == -1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestRankWithoutDirectory(t *testing.T) {
	s := New(300)
	for _, i := range []int{0, 63, 64, 127, 128, 299} {
		s.Set(i)
	}
	// Rank/Select fall back to plain scans with no directory built.
	if s.HasRank() {
		t.Fatal("fresh set claims a rank directory")
	}
	if got := s.Rank(128); got != 4 {
		t.Fatalf("Rank(128) without directory = %d, want 4", got)
	}
	if got := s.Select(4); got != 128 {
		t.Fatalf("Select(4) without directory = %d, want 128", got)
	}
}

func TestNextSetInSkipsEmptyBlocks(t *testing.T) {
	// 10 blocks of 512 bits; only blocks 0 and 9 hold bits.
	n := 10 * rankBlockBits
	s := New(n)
	s.Set(3)
	s.Set(9*rankBlockBits + 17)
	idx, scanned := s.NextSetIn(4, n)
	if idx != 9*rankBlockBits+17 {
		t.Fatalf("NextSetIn without directory = %d", idx)
	}
	plain := scanned
	s.BuildRank()
	idx, scanned = s.NextSetIn(4, n)
	if idx != 9*rankBlockBits+17 {
		t.Fatalf("NextSetIn with directory = %d", idx)
	}
	if scanned >= plain {
		t.Fatalf("directory scan loaded %d words, plain scan %d — no skip happened", scanned, plain)
	}
	// Range caps: a hi before the hit must report -1.
	if idx, _ := s.NextSetIn(4, 9*rankBlockBits); idx != -1 {
		t.Fatalf("NextSetIn(4, blockStart) = %d, want -1", idx)
	}
	// Shrink-only staleness: clearing the found bit after the build must
	// still be correct (block 9 now empty but directory says otherwise —
	// costs a scan, never wrong).
	s.Clear(9*rankBlockBits + 17)
	if idx, _ := s.NextSetIn(4, n); idx != -1 {
		t.Fatalf("NextSetIn after clear = %d, want -1", idx)
	}
}

func TestNextSetInMatchesNextSet(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := 1 + int(seed%3000)
		s := New(n)
		for i := 0; i < n/50+1; i++ {
			s.Set(r.Intn(n))
		}
		if seed%2 == 0 {
			s.BuildRank()
		}
		for i := -1; i <= n; i++ {
			want := -1
			for j := max(i, 0); j < n; j++ {
				if s.Test(j) {
					want = j
					break
				}
			}
			if idx, _ := s.NextSetIn(i, n); idx != want {
				t.Logf("seed %d n %d: NextSetIn(%d) = %d, want %d", seed, n, i, idx, want)
				return false
			}
			if got := s.NextSet(i); got != want {
				t.Logf("seed %d n %d: NextSet(%d) = %d, want %d", seed, n, i, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestBulkMutatorsDropDirectory(t *testing.T) {
	s := New(1024)
	s.Set(1000)
	s.BuildRank()
	s.Reset()
	if s.HasRank() {
		t.Fatal("Reset kept the rank directory")
	}
	// Without the drop, the stale all-empty directory would make this
	// NextSet skip the freshly set bit.
	s.Set(700)
	if got := s.NextSet(0); got != 700 {
		t.Fatalf("NextSet after Reset+Set = %d, want 700", got)
	}

	s.BuildRank()
	s.SetAll()
	if s.HasRank() {
		t.Fatal("SetAll kept the rank directory")
	}
	s.BuildRank()
	t2 := New(1024)
	t2.Set(5)
	s.CopyFrom(t2)
	if s.HasRank() {
		t.Fatal("CopyFrom kept the rank directory")
	}
	s.BuildRank()
	s.Union(t2)
	if s.HasRank() {
		t.Fatal("Union kept the rank directory")
	}
	s.BuildRank()
	s.Intersect(t2)
	if !s.HasRank() {
		t.Fatal("Intersect dropped the directory despite only clearing bits")
	}
	if got := s.NextSet(0); got != 5 {
		t.Fatalf("NextSet after Intersect = %d, want 5", got)
	}
}

// BenchmarkBitsetRank measures the directory's effect on sparse scans:
// a hub-clustered frontier (all bits in the low words of a large
// universe) swept with NextSetIn, with and without BuildRank.
func BenchmarkBitsetRank(b *testing.B) {
	const n = 1 << 20
	mk := func() *Set {
		s := New(n)
		for i := 0; i < 512; i++ { // low-word cluster, rest of universe empty
			s.Set(i * 3 % 2048)
		}
		s.Set(n - 1) // one straggler forcing a full-universe sweep
		return s
	}
	for _, bc := range []struct {
		name   string
		ranked bool
	}{{"plain", false}, {"ranked", true}} {
		b.Run(bc.name, func(b *testing.B) {
			s := mk()
			if bc.ranked {
				s.BuildRank()
			}
			b.ResetTimer()
			var words, visited int
			for i := 0; i < b.N; i++ {
				for j, w := s.NextSetIn(0, n); j != -1; j, w = s.NextSetIn(j+1, n) {
					words += w
					visited++
				}
			}
			b.ReportMetric(float64(words)/float64(b.N), "words/op")
			if visited == 0 {
				b.Fatal("scan found no bits")
			}
		})
	}
	b.Run("build", func(b *testing.B) {
		s := mk()
		for i := 0; i < b.N; i++ {
			s.BuildRank()
		}
	})
}
