// Package bitset implements a dense fixed-capacity bitset.
//
// BFS frontiers and visited sets are the primary users. The representation
// is a flat []uint64, one bit per element, which keeps the memory footprint
// at |V|/8 bytes and makes clearing between searches a memclr.
package bitset

import "math/bits"

const wordBits = 64

// Set is a fixed-capacity bitset over the universe [0, Len()).
type Set struct {
	words []uint64
	n     int
}

// New returns a bitset with capacity for n elements, all cleared.
func New(n int) *Set {
	if n < 0 {
		panic("bitset: negative size")
	}
	return &Set{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// Len returns the capacity of the set (the size of the universe).
func (s *Set) Len() int { return s.n }

// Set sets bit i.
func (s *Set) Set(i int) {
	s.words[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// Clear clears bit i.
func (s *Set) Clear(i int) {
	s.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
}

// Test reports whether bit i is set.
func (s *Set) Test(i int) bool {
	return s.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// Bit returns bit i as 0 or 1. Unlike Test it involves no boolean
// conversion the compiler might lower to a branch; the branch-avoiding
// bottom-up BFS sweep accumulates these directly.
func (s *Set) Bit(i int) uint32 {
	return uint32(s.words[i/wordBits]>>(uint(i)%wordBits)) & 1
}

// TestAndSet sets bit i and reports whether it was previously set.
func (s *Set) TestAndSet(i int) bool {
	w, b := i/wordBits, uint64(1)<<(uint(i)%wordBits)
	old := s.words[w]&b != 0
	s.words[w] |= b
	return old
}

// Reset clears every bit.
func (s *Set) Reset() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Count returns the number of set bits.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Any reports whether at least one bit is set.
func (s *Set) Any() bool {
	for _, w := range s.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// ForEach calls fn for every set bit in increasing order.
func (s *Set) ForEach(fn func(i int)) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(wi*wordBits + b)
			w &= w - 1
		}
	}
}

// NextSet returns the index of the first set bit at or after i, or -1 if
// there is none.
func (s *Set) NextSet(i int) int {
	if i >= s.n {
		return -1
	}
	if i < 0 {
		i = 0
	}
	wi := i / wordBits
	w := s.words[wi] >> (uint(i) % wordBits)
	if w != 0 {
		return i + bits.TrailingZeros64(w)
	}
	for wi++; wi < len(s.words); wi++ {
		if s.words[wi] != 0 {
			return wi*wordBits + bits.TrailingZeros64(s.words[wi])
		}
	}
	return -1
}

// Union sets s = s ∪ t. The sets must have the same capacity.
func (s *Set) Union(t *Set) {
	if s.n != t.n {
		panic("bitset: capacity mismatch")
	}
	for i := range s.words {
		s.words[i] |= t.words[i]
	}
}

// Intersect sets s = s ∩ t. The sets must have the same capacity.
func (s *Set) Intersect(t *Set) {
	if s.n != t.n {
		panic("bitset: capacity mismatch")
	}
	for i := range s.words {
		s.words[i] &= t.words[i]
	}
}

// CopyFrom copies t into s. The sets must have the same capacity.
func (s *Set) CopyFrom(t *Set) {
	if s.n != t.n {
		panic("bitset: capacity mismatch")
	}
	copy(s.words, t.words)
}
