// Package bitset implements a dense fixed-capacity bitset with an
// optional succinct rank directory.
//
// BFS frontiers and visited sets are the primary users. The representation
// is a flat []uint64, one bit per element, which keeps the memory footprint
// at |V|/8 bytes and makes clearing between searches a memclr.
//
// The rank directory (BuildRank) adds one uint32 of cumulative popcount
// per 512-bit block — a 1/128 space overhead — and lets scans skip whole
// empty blocks: NextSetIn consults it to jump over runs of zero words,
// and Rank/Select answer position queries without rescanning. The
// directory is a snapshot; see BuildRank for the staleness contract the
// kernels rely on (bits may be cleared after a build, never set).
package bitset

import "math/bits"

const (
	wordBits = 64
	// rankBlockWords is the rank-directory granularity: 8 words = 512
	// bits per block, one cache line of payload per directory entry.
	rankBlockWords = 8
	rankBlockBits  = rankBlockWords * wordBits
)

// Set is a fixed-capacity bitset over the universe [0, Len()).
type Set struct {
	words []uint64
	n     int
	// rank[b] is the number of set bits in blocks [0, b) as of the last
	// BuildRank; len numBlocks+1, empty until built (bulk mutators drop
	// it back to empty).
	rank []uint32
}

// New returns a bitset with capacity for n elements, all cleared.
func New(n int) *Set {
	if n < 0 {
		panic("bitset: negative size")
	}
	return &Set{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// Len returns the capacity of the set (the size of the universe).
func (s *Set) Len() int { return s.n }

// Set sets bit i.
func (s *Set) Set(i int) {
	s.words[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// Clear clears bit i.
func (s *Set) Clear(i int) {
	s.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
}

// Test reports whether bit i is set.
func (s *Set) Test(i int) bool {
	return s.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// Bit returns bit i as 0 or 1. Unlike Test it involves no boolean
// conversion the compiler might lower to a branch; the branch-avoiding
// bottom-up BFS sweep accumulates these directly.
func (s *Set) Bit(i int) uint32 {
	return uint32(s.words[i/wordBits]>>(uint(i)%wordBits)) & 1
}

// TestAndSet sets bit i and reports whether it was previously set.
func (s *Set) TestAndSet(i int) bool {
	w, b := i/wordBits, uint64(1)<<(uint(i)%wordBits)
	old := s.words[w]&b != 0
	s.words[w] |= b
	return old
}

// Reset clears every bit and drops the rank directory (the built
// snapshot describes contents that no longer exist).
func (s *Set) Reset() {
	for i := range s.words {
		s.words[i] = 0
	}
	s.rank = s.rank[:0]
}

// SetAll sets every bit in [0, Len()) and drops the rank directory.
// Bits of the final partial word beyond Len() stay zero, preserving the
// Count/NextSet invariants.
func (s *Set) SetAll() {
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	if tail := uint(s.n % wordBits); tail != 0 {
		s.words[len(s.words)-1] = (uint64(1) << tail) - 1
	}
	s.rank = s.rank[:0]
}

// Count returns the number of set bits.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Any reports whether at least one bit is set.
func (s *Set) Any() bool {
	for _, w := range s.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// ForEach calls fn for every set bit in increasing order.
func (s *Set) ForEach(fn func(i int)) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(wi*wordBits + b)
			w &= w - 1
		}
	}
}

// NextSet returns the index of the first set bit at or after i, or -1 if
// there is none. When a rank directory is present the scan skips
// directory-empty blocks (see NextSetIn for the staleness contract).
func (s *Set) NextSet(i int) int {
	j, _ := s.NextSetIn(i, s.n)
	return j
}

// NextSetIn returns the index of the first set bit in [i, hi), or -1 if
// the range holds none, along with the number of 64-bit words the scan
// actually loaded — the locality proxy the bottom-up BFS reports.
//
// When a rank directory is present (BuildRank), whole 8-word blocks
// whose directory popcount is zero are skipped without touching their
// words. A stale directory is safe as long as no bit has been SET since
// the build: clearing bits only makes blocks emptier, so a block that
// was empty at build time is still empty, and non-empty directory
// entries merely cost the normal word scan. Callers that set bits after
// a build must Reset or rebuild first.
func (s *Set) NextSetIn(i, hi int) (idx, wordsScanned int) {
	if hi > s.n {
		hi = s.n
	}
	if i < 0 {
		i = 0
	}
	if i >= hi {
		return -1, 0
	}
	wi := i / wordBits
	last := (hi - 1) / wordBits
	w := s.words[wi] >> (uint(i) % wordBits)
	scanned := 1
	if w != 0 {
		if j := i + bits.TrailingZeros64(w); j < hi {
			return j, scanned
		}
		return -1, scanned
	}
	ranked := len(s.rank) != 0
	for wi++; wi <= last; {
		if ranked && wi%rankBlockWords == 0 {
			if b := wi / rankBlockWords; s.rank[b+1] == s.rank[b] {
				wi += rankBlockWords
				continue
			}
		}
		scanned++
		if w := s.words[wi]; w != 0 {
			if j := wi*wordBits + bits.TrailingZeros64(w); j < hi {
				return j, scanned
			}
			return -1, scanned
		}
		wi++
	}
	return -1, scanned
}

// BuildRank (re)builds the rank directory: one cumulative uint32
// popcount per 512-bit block. Costs one linear popcount pass; call it
// single-threaded at a pass barrier. The directory is a snapshot — the
// point mutators (Set, Clear, TestAndSet) deliberately leave it stale so
// the hot kernel loops stay store-free and race-free, and scans remain
// CORRECT only while bits are cleared, never set, after the build. The
// bulk mutators (Reset, SetAll) drop the directory entirely.
func (s *Set) BuildRank() {
	nb := (len(s.words) + rankBlockWords - 1) / rankBlockWords
	if cap(s.rank) < nb+1 {
		s.rank = make([]uint32, nb+1)
	}
	s.rank = s.rank[:nb+1]
	c := uint32(0)
	s.rank[0] = 0
	for b := 0; b < nb; b++ {
		lo := b * rankBlockWords
		hi := lo + rankBlockWords
		if hi > len(s.words) {
			hi = len(s.words)
		}
		for _, w := range s.words[lo:hi] {
			c += uint32(bits.OnesCount64(w))
		}
		s.rank[b+1] = c
	}
}

// HasRank reports whether a rank directory is currently built.
func (s *Set) HasRank() bool { return len(s.rank) != 0 }

// Rank returns the number of set bits in [0, i), using the directory to
// skip ahead when one is built. With a stale directory the answer
// reflects a mix of build-time and current state; call it only when the
// directory is fresh.
func (s *Set) Rank(i int) int {
	if i <= 0 {
		return 0
	}
	if i > s.n {
		i = s.n
	}
	wi := i / wordBits
	c, w0 := 0, 0
	if len(s.rank) != 0 {
		b := wi / rankBlockWords
		c, w0 = int(s.rank[b]), b*rankBlockWords
	}
	for _, w := range s.words[w0:wi] {
		c += bits.OnesCount64(w)
	}
	if r := uint(i) % wordBits; r != 0 {
		c += bits.OnesCount64(s.words[wi] & (1<<r - 1))
	}
	return c
}

// Select returns the index of the k-th set bit (0-based), or -1 if
// fewer than k+1 bits are set. With a directory built, the containing
// block is found by binary search over the cumulative counts and only
// that block's words are popcounted; the same freshness caveat as Rank
// applies.
func (s *Set) Select(k int) int {
	if k < 0 {
		return -1
	}
	c, wi := 0, 0
	if len(s.rank) != 0 {
		// Largest block b with rank[b] <= k.
		lo, hi := 0, len(s.rank)-1
		for lo < hi {
			mid := int(uint(lo+hi+1) >> 1)
			if int(s.rank[mid]) <= k {
				lo = mid
			} else {
				hi = mid - 1
			}
		}
		c, wi = int(s.rank[lo]), lo*rankBlockWords
	}
	for ; wi < len(s.words); wi++ {
		pc := bits.OnesCount64(s.words[wi])
		if c+pc > k {
			return wi*wordBits + selectWord(s.words[wi], k-c)
		}
		c += pc
	}
	return -1
}

// selectWord returns the index of the k-th set bit of w; k must be less
// than popcount(w).
func selectWord(w uint64, k int) int {
	for ; k > 0; k-- {
		w &= w - 1
	}
	return bits.TrailingZeros64(w)
}

// Union sets s = s ∪ t and drops s's rank directory (bits may be
// set). The sets must have the same capacity.
func (s *Set) Union(t *Set) {
	if s.n != t.n {
		panic("bitset: capacity mismatch")
	}
	for i := range s.words {
		s.words[i] |= t.words[i]
	}
	s.rank = s.rank[:0]
}

// Intersect sets s = s ∩ t. The sets must have the same capacity. A
// built rank directory survives: intersection only clears bits, which
// the staleness contract permits.
func (s *Set) Intersect(t *Set) {
	if s.n != t.n {
		panic("bitset: capacity mismatch")
	}
	for i := range s.words {
		s.words[i] &= t.words[i]
	}
}

// CopyFrom copies t's bits into s and drops s's rank directory. The
// sets must have the same capacity.
func (s *Set) CopyFrom(t *Set) {
	if s.n != t.n {
		panic("bitset: capacity mismatch")
	}
	copy(s.words, t.words)
	s.rank = s.rank[:0]
}
