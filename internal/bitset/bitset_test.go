package bitset

import (
	"testing"
	"testing/quick"

	"bagraph/internal/xrand"
)

func TestSetTestClear(t *testing.T) {
	s := New(200)
	for i := 0; i < 200; i += 3 {
		s.Set(i)
	}
	for i := 0; i < 200; i++ {
		want := i%3 == 0
		if got := s.Test(i); got != want {
			t.Fatalf("Test(%d) = %v, want %v", i, got, want)
		}
	}
	for i := 0; i < 200; i += 3 {
		s.Clear(i)
	}
	if s.Any() {
		t.Fatal("set not empty after clearing all bits")
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestTestAndSet(t *testing.T) {
	s := New(64)
	if s.TestAndSet(10) {
		t.Fatal("TestAndSet on clear bit returned true")
	}
	if !s.TestAndSet(10) {
		t.Fatal("TestAndSet on set bit returned false")
	}
	if !s.Test(10) {
		t.Fatal("bit 10 not set after TestAndSet")
	}
}

func TestCountMatchesManual(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := 1 + int(seed%300)
		s := New(n)
		want := 0
		marked := make([]bool, n)
		for i := 0; i < n/2+1; i++ {
			k := r.Intn(n)
			if !marked[k] {
				marked[k] = true
				want++
			}
			s.Set(k)
		}
		return s.Count() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestForEachOrderAndCompleteness(t *testing.T) {
	s := New(300)
	want := []int{0, 1, 63, 64, 65, 127, 128, 255, 299}
	for _, i := range want {
		s.Set(i)
	}
	var got []int
	s.ForEach(func(i int) { got = append(got, i) })
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %d bits, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach order mismatch at %d: got %d, want %d", i, got[i], want[i])
		}
	}
}

func TestNextSet(t *testing.T) {
	s := New(200)
	s.Set(5)
	s.Set(64)
	s.Set(199)
	cases := []struct{ from, want int }{
		{0, 5}, {5, 5}, {6, 64}, {64, 64}, {65, 199}, {199, 199}, {200, -1}, {-3, 5},
	}
	for _, c := range cases {
		if got := s.NextSet(c.from); got != c.want {
			t.Errorf("NextSet(%d) = %d, want %d", c.from, got, c.want)
		}
	}
	empty := New(100)
	if got := empty.NextSet(0); got != -1 {
		t.Errorf("NextSet on empty set = %d, want -1", got)
	}
}

func TestUnionIntersect(t *testing.T) {
	a, b := New(128), New(128)
	a.Set(1)
	a.Set(2)
	b.Set(2)
	b.Set(3)

	u := New(128)
	u.CopyFrom(a)
	u.Union(b)
	for i, want := range map[int]bool{1: true, 2: true, 3: true, 4: false} {
		if u.Test(i) != want {
			t.Errorf("union bit %d = %v, want %v", i, u.Test(i), want)
		}
	}

	x := New(128)
	x.CopyFrom(a)
	x.Intersect(b)
	if !x.Test(2) || x.Count() != 1 {
		t.Errorf("intersection wrong: count=%d", x.Count())
	}
}

func TestCapacityMismatchPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"union":     func() { New(10).Union(New(11)) },
		"intersect": func() { New(10).Intersect(New(11)) },
		"copy":      func() { New(10).CopyFrom(New(11)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s with mismatched capacity did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestReset(t *testing.T) {
	s := New(500)
	for i := 0; i < 500; i += 7 {
		s.Set(i)
	}
	s.Reset()
	if s.Any() || s.Count() != 0 {
		t.Fatal("Reset left bits set")
	}
}

func TestLen(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 1000} {
		if got := New(n).Len(); got != n {
			t.Errorf("New(%d).Len() = %d", n, got)
		}
	}
}
