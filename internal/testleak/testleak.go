// Package testleak is the goroutine-leak guard the robustness tests
// hang off t.Cleanup: snapshot the goroutine count when the test
// starts, and after every other cleanup has run (servers closed,
// routers drained, batchers shut down) insist the count settles back.
// Health loops, hedged-request losers and batcher workers all die by
// this check if anything forgets to reap them.
package testleak

import (
	"runtime"
	"testing"
	"time"
)

// Check registers the guard. Call it FIRST in a test, before any
// t.Cleanup the test wants counted — cleanups run LIFO, so the first
// registration runs last, after the test's servers and routers have
// closed.
func Check(t testing.TB) {
	t.Helper()
	base := runtime.NumGoroutine()
	t.Cleanup(func() {
		// Goroutines unwind asynchronously after a Close returns; give
		// them a grace window before calling it a leak.
		deadline := time.Now().Add(5 * time.Second)
		for {
			n := runtime.NumGoroutine()
			if n <= base {
				return
			}
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				buf = buf[:runtime.Stack(buf, true)]
				t.Errorf("goroutine leak: %d live, started with %d\n%s", n, base, buf)
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	})
}
