package gen

import (
	"testing"
	"testing/quick"

	"bagraph/internal/graph"
)

func validate(t *testing.T, g *graph.Graph) {
	t.Helper()
	if err := g.Validate(); err != nil {
		t.Fatalf("%s failed validation: %v", g.Name(), err)
	}
}

func TestPath(t *testing.T) {
	g := Path(10)
	validate(t, g)
	if g.NumVertices() != 10 || g.NumEdges() != 9 {
		t.Fatalf("path10: V=%d E=%d", g.NumVertices(), g.NumEdges())
	}
	if g.PseudoDiameter() != 9 || !g.IsConnected() {
		t.Fatal("path10 shape wrong")
	}
}

func TestCycle(t *testing.T) {
	g := Cycle(8)
	validate(t, g)
	if g.NumEdges() != 8 {
		t.Fatalf("cycle8 edges = %d", g.NumEdges())
	}
	st := g.Degrees()
	if st.Min != 2 || st.Max != 2 {
		t.Fatalf("cycle degrees: %+v", st)
	}
}

func TestStar(t *testing.T) {
	g := Star(50)
	validate(t, g)
	if g.Degree(0) != 49 {
		t.Fatalf("star center degree = %d", g.Degree(0))
	}
	if g.PseudoDiameter() != 2 {
		t.Fatalf("star diameter = %d", g.PseudoDiameter())
	}
}

func TestComplete(t *testing.T) {
	g := Complete(12)
	validate(t, g)
	if g.NumEdges() != 66 {
		t.Fatalf("K12 edges = %d", g.NumEdges())
	}
	st := g.Degrees()
	if st.Min != 11 || st.Max != 11 {
		t.Fatalf("K12 degrees: %+v", st)
	}
}

func TestGNMExactEdgeCount(t *testing.T) {
	g := GNM(500, 2000, 42)
	validate(t, g)
	if g.NumEdges() != 2000 {
		t.Fatalf("GNM edges = %d, want 2000", g.NumEdges())
	}
	if g.NumVertices() != 500 {
		t.Fatalf("GNM vertices = %d", g.NumVertices())
	}
}

func TestGNMDeterministic(t *testing.T) {
	a := GNM(200, 800, 7)
	b := GNM(200, 800, 7)
	if a.NumArcs() != b.NumArcs() {
		t.Fatal("same-seed GNM differ in size")
	}
	for v := 0; v < 200; v++ {
		na, nb := a.Neighbors(uint32(v)), b.Neighbors(uint32(v))
		if len(na) != len(nb) {
			t.Fatalf("vertex %d: neighbor counts differ", v)
		}
		for i := range na {
			if na[i] != nb[i] {
				t.Fatalf("vertex %d neighbor %d differs", v, i)
			}
		}
	}
}

func TestGNMSeedSensitivity(t *testing.T) {
	a := GNM(200, 800, 1)
	b := GNM(200, 800, 2)
	diff := false
	for v := 0; v < 200 && !diff; v++ {
		na, nb := a.Neighbors(uint32(v)), b.Neighbors(uint32(v))
		if len(na) != len(nb) {
			diff = true
			break
		}
		for i := range na {
			if na[i] != nb[i] {
				diff = true
				break
			}
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical GNM graphs")
	}
}

func TestGNMPanicsWhenOverfull(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("GNM with m > max did not panic")
		}
	}()
	GNM(4, 100, 1)
}

func TestRMATShape(t *testing.T) {
	g := RMAT(10, 8, DefaultRMAT, 3)
	validate(t, g)
	if g.NumVertices() != 1024 {
		t.Fatalf("rmat vertices = %d", g.NumVertices())
	}
	// Dedup drops some edges; expect within (50%, 100%] of nominal.
	nominal := int64(8 * 1024)
	if g.NumEdges() <= nominal/2 || g.NumEdges() > nominal {
		t.Fatalf("rmat edges = %d, nominal %d", g.NumEdges(), nominal)
	}
	// Skew: max degree far above mean.
	st := g.Degrees()
	if float64(st.Max) < 4*st.Mean {
		t.Fatalf("rmat not skewed: max=%d mean=%.1f", st.Max, st.Mean)
	}
}

func TestRMATBadParamsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("RMAT with bad params did not panic")
		}
	}()
	RMAT(4, 2, RMATParams{A: 0.9, B: 0.9, C: 0.1, D: 0.1}, 1)
}

func TestBarabasiAlbert(t *testing.T) {
	g := BarabasiAlbert(2000, 4, 9)
	validate(t, g)
	if g.NumVertices() != 2000 {
		t.Fatalf("BA vertices = %d", g.NumVertices())
	}
	if !g.IsConnected() {
		t.Fatal("BA graph must be connected by construction")
	}
	st := g.Degrees()
	if st.Min < 4-1 { // arrivals bring k edges; seed clique has k
		t.Fatalf("BA min degree = %d", st.Min)
	}
	// Power-law tail: hubs should greatly exceed the mean.
	if float64(st.Max) < 5*st.Mean {
		t.Fatalf("BA lacks hubs: max=%d mean=%.1f", st.Max, st.Mean)
	}
}

func TestBarabasiAlbertPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("BarabasiAlbert(3, 5) did not panic")
		}
	}()
	BarabasiAlbert(3, 5, 1)
}

func TestWattsStrogatz(t *testing.T) {
	g := WattsStrogatz(1000, 3, 0.1, 17)
	validate(t, g)
	if g.NumVertices() != 1000 {
		t.Fatalf("WS vertices = %d", g.NumVertices())
	}
	// beta=0 gives the pure ring lattice with diameter ~n/(2k).
	ring := WattsStrogatz(100, 2, 0, 1)
	validate(t, ring)
	st := ring.Degrees()
	if st.Min != 4 || st.Max != 4 {
		t.Fatalf("ring lattice degrees: %+v", st)
	}
	if d := ring.PseudoDiameter(); d != 25 {
		t.Fatalf("ring lattice diameter = %d, want 25", d)
	}
}

func TestWattsStrogatzPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("WattsStrogatz(4, 2) did not panic")
		}
	}()
	WattsStrogatz(4, 2, 0.1, 1)
}

func TestGrid2D(t *testing.T) {
	g := Grid2D(10, 12, false)
	validate(t, g)
	if g.NumVertices() != 120 {
		t.Fatalf("grid vertices = %d", g.NumVertices())
	}
	// Interior degree 4, corner degree 2.
	wantEdges := int64(10*11 + 9*12)
	if g.NumEdges() != wantEdges {
		t.Fatalf("grid edges = %d, want %d", g.NumEdges(), wantEdges)
	}
	if g.PseudoDiameter() != 10+12-2 {
		t.Fatalf("grid diameter = %d", g.PseudoDiameter())
	}

	moore := Grid2D(5, 5, true)
	validate(t, moore)
	if moore.Degrees().Max != 8 {
		t.Fatalf("moore grid max degree = %d", moore.Degrees().Max)
	}
}

func TestGrid3D(t *testing.T) {
	g := Grid3D(6, 5, 4, 1)
	validate(t, g)
	if g.NumVertices() != 120 {
		t.Fatalf("grid3d vertices = %d", g.NumVertices())
	}
	st := g.Degrees()
	if st.Max != 26 {
		t.Fatalf("grid3d interior degree = %d, want 26", st.Max)
	}
	if st.Min != 7 {
		t.Fatalf("grid3d corner degree = %d, want 7", st.Min)
	}
	if !g.IsConnected() {
		t.Fatal("grid3d disconnected")
	}
}

func TestGrid3DRadiusPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Grid3D radius 0 did not panic")
		}
	}()
	Grid3D(2, 2, 2, 0)
}

func TestCommunity(t *testing.T) {
	g := Community(10, 30, 0.5, 100, 5)
	validate(t, g)
	if g.NumVertices() != 300 {
		t.Fatalf("community vertices = %d", g.NumVertices())
	}
	if !g.IsConnected() {
		t.Fatal("community graph must be connected via ring links")
	}
}

func TestDisconnected(t *testing.T) {
	g := Disconnected(Cycle(10), 3)
	validate(t, g)
	if g.NumVertices() != 30 || g.NumEdges() != 30 {
		t.Fatalf("disconnected: V=%d E=%d", g.NumVertices(), g.NumEdges())
	}
	if g.IsConnected() {
		t.Fatal("disjoint copies reported connected")
	}
	if g.Reached(0) != 10 {
		t.Fatalf("component size = %d", g.Reached(0))
	}
}

func TestDisconnectedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Disconnected k=0 did not panic")
		}
	}()
	Disconnected(Path(2), 0)
}

func TestGeneratorsAlwaysValid(t *testing.T) {
	f := func(seed uint64) bool {
		n := 20 + int(seed%100)
		g := GNM(n, int64(n), seed)
		if g.Validate() != nil {
			return false
		}
		b := BarabasiAlbert(n, 3, seed)
		return b.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestGeneratorsBitReproducible pins the package contract the smoke
// pipeline depends on: two calls with the same seed yield identical
// edge lists. (BarabasiAlbert once ranged over a map while building
// its endpoint list, which silently randomized every subsequent
// degree-proportional draw.)
func TestGeneratorsBitReproducible(t *testing.T) {
	builders := map[string]func(seed uint64) *graph.Graph{
		"gnm":  func(seed uint64) *graph.Graph { return GNM(200, 600, seed) },
		"ba":   func(seed uint64) *graph.Graph { return BarabasiAlbert(300, 4, seed) },
		"ws":   func(seed uint64) *graph.Graph { return WattsStrogatz(200, 3, 0.2, seed) },
		"rmat": func(seed uint64) *graph.Graph { return RMAT(9, 6, DefaultRMAT, seed) },
		"community": func(seed uint64) *graph.Graph {
			return Community(8, 20, 0.3, 40, seed)
		},
	}
	for name, build := range builders {
		for _, seed := range []uint64{1, 7} {
			a, b := build(seed).EdgeList(), build(seed).EdgeList()
			if len(a) != len(b) {
				t.Fatalf("%s seed %d: edge counts %d vs %d", name, seed, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("%s seed %d: edge %d differs: %v vs %v", name, seed, i, a[i], b[i])
				}
			}
		}
	}
}
