// Package gen provides deterministic synthetic graph generators.
//
// The paper evaluates on five DIMACS-10 graphs (Table 2) spanning three
// structure classes: FEM matrices (audikw1, ldoor), a partitioned mesh
// (auto), and social/collaboration networks (coAuthorsDBLP,
// cond-mat-2005). The proprietary inputs are not redistributable, so the
// corpus package composes these generators into stand-ins of the same
// class; see internal/corpus. Every generator takes an explicit seed and is
// bit-reproducible.
package gen

import (
	"fmt"

	"bagraph/internal/graph"
	"bagraph/internal/xrand"
)

// Path returns the path graph 0-1-…-(n-1).
func Path(n int) *graph.Graph {
	edges := make([]graph.Edge, 0, n-1)
	for i := 0; i+1 < n; i++ {
		edges = append(edges, graph.Edge{U: uint32(i), V: uint32(i + 1)})
	}
	return graph.MustBuild(n, edges, graph.Options{Name: fmt.Sprintf("path%d", n)})
}

// Cycle returns the n-cycle.
func Cycle(n int) *graph.Graph {
	edges := make([]graph.Edge, 0, n)
	for i := 0; i < n; i++ {
		edges = append(edges, graph.Edge{U: uint32(i), V: uint32((i + 1) % n)})
	}
	return graph.MustBuild(n, edges, graph.Options{Name: fmt.Sprintf("cycle%d", n)})
}

// Star returns the star with center 0 and n-1 leaves.
func Star(n int) *graph.Graph {
	edges := make([]graph.Edge, 0, n-1)
	for i := 1; i < n; i++ {
		edges = append(edges, graph.Edge{U: 0, V: uint32(i)})
	}
	return graph.MustBuild(n, edges, graph.Options{Name: fmt.Sprintf("star%d", n)})
}

// Complete returns K_n.
func Complete(n int) *graph.Graph {
	edges := make([]graph.Edge, 0, n*(n-1)/2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			edges = append(edges, graph.Edge{U: uint32(i), V: uint32(j)})
		}
	}
	return graph.MustBuild(n, edges, graph.Options{Name: fmt.Sprintf("K%d", n)})
}

// GNM returns an Erdős–Rényi G(n, m) graph: m distinct undirected edges
// chosen uniformly without replacement (self-loops excluded).
func GNM(n int, m int64, seed uint64) *graph.Graph {
	maxEdges := int64(n) * int64(n-1) / 2
	if m > maxEdges {
		panic(fmt.Sprintf("gen: GNM m=%d exceeds max %d for n=%d", m, maxEdges, n))
	}
	r := xrand.New(seed)
	seen := make(map[uint64]struct{}, m)
	edges := make([]graph.Edge, 0, m)
	for int64(len(edges)) < m {
		u := uint32(r.Intn(n))
		v := uint32(r.Intn(n))
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		key := uint64(u)<<32 | uint64(v)
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		edges = append(edges, graph.Edge{U: u, V: v})
	}
	return graph.MustBuild(n, edges, graph.Options{Name: fmt.Sprintf("gnm-%d-%d", n, m)})
}

// RMATParams are the recursive-matrix quadrant probabilities. They must be
// positive and sum to 1 (within rounding).
type RMATParams struct {
	A, B, C, D float64
}

// DefaultRMAT is the Graph500-style parameterization producing skewed,
// community-structured graphs.
var DefaultRMAT = RMATParams{A: 0.57, B: 0.19, C: 0.19, D: 0.05}

// RMAT generates an undirected R-MAT graph with 2^scale vertices and
// approximately edgeFactor·2^scale edges (duplicates and self-loops are
// dropped by the CSR builder, so the realized count is slightly lower).
func RMAT(scale int, edgeFactor int, p RMATParams, seed uint64) *graph.Graph {
	if sum := p.A + p.B + p.C + p.D; sum < 0.999 || sum > 1.001 {
		panic(fmt.Sprintf("gen: RMAT params sum to %v, want 1", sum))
	}
	n := 1 << uint(scale)
	m := int64(edgeFactor) * int64(n)
	r := xrand.New(seed)
	edges := make([]graph.Edge, 0, m)
	for i := int64(0); i < m; i++ {
		u, v := 0, 0
		for bit := 0; bit < scale; bit++ {
			f := r.Float64()
			switch {
			case f < p.A:
				// upper-left quadrant: no bits set
			case f < p.A+p.B:
				v |= 1 << uint(bit)
			case f < p.A+p.B+p.C:
				u |= 1 << uint(bit)
			default:
				u |= 1 << uint(bit)
				v |= 1 << uint(bit)
			}
		}
		edges = append(edges, graph.Edge{U: uint32(u), V: uint32(v)})
	}
	return graph.MustBuild(n, edges, graph.Options{Name: fmt.Sprintf("rmat-s%d-e%d", scale, edgeFactor)})
}

// BarabasiAlbert generates a preferential-attachment graph: vertices arrive
// one at a time and connect k edges to existing vertices with probability
// proportional to current degree. This is the classic generative model for
// collaboration networks (power-law degree tail, low diameter), the class
// of coAuthorsDBLP and cond-mat-2005 in the paper's Table 2.
func BarabasiAlbert(n, k int, seed uint64) *graph.Graph {
	if k < 1 || n < k+1 {
		panic("gen: BarabasiAlbert requires k >= 1 and n > k")
	}
	r := xrand.New(seed)
	// endpoint list: each edge contributes both endpoints, so sampling a
	// uniform element of this list samples vertices ∝ degree.
	endpoints := make([]uint32, 0, 2*n*k)
	edges := make([]graph.Edge, 0, n*k)
	// Seed clique over the first k+1 vertices.
	for i := 0; i <= k; i++ {
		for j := i + 1; j <= k; j++ {
			edges = append(edges, graph.Edge{U: uint32(i), V: uint32(j)})
			endpoints = append(endpoints, uint32(i), uint32(j))
		}
	}
	// chosen is a small slice with a linear dedup scan, not a map:
	// ranging over a map would append endpoints in randomized order and
	// silently break the generator's bit-reproducibility contract (the
	// endpoint order feeds every later degree-proportional draw).
	chosen := make([]uint32, 0, k)
	for v := k + 1; v < n; v++ {
		chosen = chosen[:0]
		for len(chosen) < k {
			t := endpoints[r.Intn(len(endpoints))]
			dup := false
			for _, c := range chosen {
				if c == t {
					dup = true
					break
				}
			}
			if !dup {
				chosen = append(chosen, t)
			}
		}
		for _, t := range chosen {
			edges = append(edges, graph.Edge{U: uint32(v), V: t})
			endpoints = append(endpoints, uint32(v), t)
		}
	}
	return graph.MustBuild(n, edges, graph.Options{Name: fmt.Sprintf("ba-%d-%d", n, k)})
}

// WattsStrogatz generates a small-world graph: an n-cycle where every
// vertex connects to its k nearest neighbors on each side, with each edge
// rewired to a random endpoint with probability beta.
func WattsStrogatz(n, k int, beta float64, seed uint64) *graph.Graph {
	if k < 1 || n < 2*k+1 {
		panic("gen: WattsStrogatz requires n > 2k")
	}
	r := xrand.New(seed)
	edges := make([]graph.Edge, 0, n*k)
	for i := 0; i < n; i++ {
		for j := 1; j <= k; j++ {
			u, v := uint32(i), uint32((i+j)%n)
			if r.Float64() < beta {
				// Rewire the far endpoint.
				for {
					w := uint32(r.Intn(n))
					if w != u {
						v = w
						break
					}
				}
			}
			edges = append(edges, graph.Edge{U: u, V: v})
		}
	}
	return graph.MustBuild(n, edges, graph.Options{Name: fmt.Sprintf("ws-%d-%d", n, k)})
}

// Grid2D generates a rows×cols lattice with the 4-neighbor (von Neumann)
// stencil, plus diagonals when diag is true (8-neighbor Moore stencil).
func Grid2D(rows, cols int, diag bool) *graph.Graph {
	n := rows * cols
	idx := func(r, c int) uint32 { return uint32(r*cols + c) }
	edges := make([]graph.Edge, 0, 4*n)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				edges = append(edges, graph.Edge{U: idx(r, c), V: idx(r, c+1)})
			}
			if r+1 < rows {
				edges = append(edges, graph.Edge{U: idx(r, c), V: idx(r+1, c)})
			}
			if diag && r+1 < rows {
				if c+1 < cols {
					edges = append(edges, graph.Edge{U: idx(r, c), V: idx(r+1, c+1)})
				}
				if c > 0 {
					edges = append(edges, graph.Edge{U: idx(r, c), V: idx(r+1, c-1)})
				}
			}
		}
	}
	name := fmt.Sprintf("grid2d-%dx%d", rows, cols)
	return graph.MustBuild(n, edges, graph.Options{Name: name})
}

// Grid3D generates an nx×ny×nz lattice with a box stencil of the given
// radius: vertices are adjacent when every coordinate differs by at most
// radius (and they are distinct). Radius 1 is the 26-point stencil of
// trilinear finite elements — the structure class of audikw1 and ldoor in
// the paper's Table 2 (sparse matrices from 3-D FEM discretizations with
// high, nearly-uniform degree and large diameter).
func Grid3D(nx, ny, nz, radius int) *graph.Graph {
	if radius < 1 {
		panic("gen: Grid3D radius must be >= 1")
	}
	n := nx * ny * nz
	idx := func(x, y, z int) uint32 { return uint32((z*ny+y)*nx + x) }
	edges := make([]graph.Edge, 0, n*((2*radius+1)*(2*radius+1)*(2*radius+1)-1)/2)
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				u := idx(x, y, z)
				// Enumerate only the "forward" half of the stencil so each
				// undirected edge is emitted once.
				for dz := 0; dz <= radius; dz++ {
					for dy := -radius; dy <= radius; dy++ {
						for dx := -radius; dx <= radius; dx++ {
							if dz == 0 && (dy < 0 || (dy == 0 && dx <= 0)) {
								continue
							}
							X, Y, Z := x+dx, y+dy, z+dz
							if X < 0 || X >= nx || Y < 0 || Y >= ny || Z >= nz {
								continue
							}
							edges = append(edges, graph.Edge{U: u, V: idx(X, Y, Z)})
						}
					}
				}
			}
		}
	}
	name := fmt.Sprintf("grid3d-%dx%dx%d-r%d", nx, ny, nz, radius)
	return graph.MustBuild(n, edges, graph.Options{Name: name})
}

// Community generates a relaxed-caveman graph: nc communities of size cs
// built as dense G(cs, p·max) subgraphs, chained in a ring, plus extra
// random inter-community edges. A simple model of clustered collaboration
// networks with high clustering coefficient.
func Community(nc, cs int, intraP float64, interEdges int, seed uint64) *graph.Graph {
	r := xrand.New(seed)
	n := nc * cs
	edges := make([]graph.Edge, 0, n*4)
	for c := 0; c < nc; c++ {
		base := c * cs
		for i := 0; i < cs; i++ {
			for j := i + 1; j < cs; j++ {
				if r.Float64() < intraP {
					edges = append(edges, graph.Edge{U: uint32(base + i), V: uint32(base + j)})
				}
			}
		}
		// Ring link to the next community keeps the graph connected.
		next := ((c + 1) % nc) * cs
		edges = append(edges, graph.Edge{U: uint32(base), V: uint32(next)})
	}
	for i := 0; i < interEdges; i++ {
		u := uint32(r.Intn(n))
		v := uint32(r.Intn(n))
		if u != v {
			edges = append(edges, graph.Edge{U: u, V: v})
		}
	}
	name := fmt.Sprintf("community-%dx%d", nc, cs)
	return graph.MustBuild(n, edges, graph.Options{Name: name})
}

// Disconnected returns a graph made of k disjoint copies of g, for
// exercising multi-component connected-components behaviour.
func Disconnected(g *graph.Graph, k int) *graph.Graph {
	if k < 1 {
		panic("gen: Disconnected requires k >= 1")
	}
	n := g.NumVertices()
	src := g.EdgeList()
	edges := make([]graph.Edge, 0, len(src)*k)
	for c := 0; c < k; c++ {
		off := uint32(c * n)
		for _, e := range src {
			edges = append(edges, graph.Edge{U: e.U + off, V: e.V + off})
		}
	}
	name := fmt.Sprintf("%s-x%d", g.Name(), k)
	return graph.MustBuild(n*k, edges, graph.Options{Name: name, Directed: g.Directed()})
}
