package gen

import (
	"fmt"

	"bagraph/internal/graph"
)

// Offset3 is a relative (dx, dy, dz) stencil offset.
type Offset3 struct {
	DX, DY, DZ int
}

// Grid3DStencil generates an nx×ny×nz lattice where each vertex connects
// to the given relative offsets (and, implicitly, their negations —
// undirected symmetrization adds the reverse arcs). Offsets must be
// non-zero and distinct. This generalization of Grid3D lets the corpus
// match the mean degree of specific FEM matrices: e.g. audikw1's ≈81
// average degree comes from a (2,2,1)-box stencil, ldoor's ≈48 from a
// (2,1,1)-box.
func Grid3DStencil(nx, ny, nz int, offsets []Offset3, name string) *graph.Graph {
	if len(offsets) == 0 {
		panic("gen: empty stencil")
	}
	seen := make(map[Offset3]struct{}, len(offsets))
	for _, o := range offsets {
		if o == (Offset3{}) {
			panic("gen: zero stencil offset")
		}
		if _, dup := seen[o]; dup {
			panic("gen: duplicate stencil offset")
		}
		seen[o] = struct{}{}
	}
	n := nx * ny * nz
	idx := func(x, y, z int) uint32 { return uint32((z*ny+y)*nx + x) }
	edges := make([]graph.Edge, 0, n*len(offsets))
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				for _, o := range offsets {
					X, Y, Z := x+o.DX, y+o.DY, z+o.DZ
					if X < 0 || X >= nx || Y < 0 || Y >= ny || Z < 0 || Z >= nz {
						continue
					}
					edges = append(edges, graph.Edge{U: idx(x, y, z), V: idx(X, Y, Z)})
				}
			}
		}
	}
	if name == "" {
		name = fmt.Sprintf("stencil3d-%dx%dx%d", nx, ny, nz)
	}
	return graph.MustBuild(n, edges, graph.Options{Name: name})
}

// BoxStencil returns the "forward half" of a box stencil with the given
// per-axis radii: all offsets within the box except the origin, keeping
// one representative per ± pair (the builder symmetrizes). A box with
// radii (rx, ry, rz) yields vertex degree (2rx+1)(2ry+1)(2rz+1) − 1 in the
// lattice interior.
func BoxStencil(rx, ry, rz int) []Offset3 {
	if rx < 0 || ry < 0 || rz < 0 || (rx == 0 && ry == 0 && rz == 0) {
		panic("gen: invalid box radii")
	}
	var out []Offset3
	for dz := 0; dz <= rz; dz++ {
		for dy := -ry; dy <= ry; dy++ {
			for dx := -rx; dx <= rx; dx++ {
				if dz == 0 && (dy < 0 || (dy == 0 && dx <= 0)) {
					continue
				}
				out = append(out, Offset3{dx, dy, dz})
			}
		}
	}
	return out
}

// FaceEdgeStencil returns the forward half of the 3-D stencil connecting
// the 6 face neighbors plus the 8 in-plane (xy and xz) edge diagonals —
// 14 neighbors per interior vertex, approximating the connectivity of
// tetrahedral partitioning meshes like the paper's "auto" graph
// (average degree ≈ 14.8).
func FaceEdgeStencil() []Offset3 {
	return []Offset3{
		{1, 0, 0}, {0, 1, 0}, {0, 0, 1}, // faces (forward half)
		{1, 1, 0}, {1, -1, 0}, // xy diagonals
		{1, 0, 1}, {-1, 0, 1}, // xz diagonals
	}
}
