package gen

import "testing"

func TestBoxStencilDegrees(t *testing.T) {
	cases := []struct {
		rx, ry, rz int
		wantDegree int
	}{
		{1, 1, 1, 26},  // trilinear FEM stencil
		{2, 1, 1, 44},  // ldoor-class
		{2, 2, 1, 74},  // audikw1-class
		{1, 0, 0, 2},   // 1-D 3-point
		{2, 2, 2, 124}, // radius-2 box
	}
	for _, c := range cases {
		offs := BoxStencil(c.rx, c.ry, c.rz)
		// The forward half must contain exactly degree/2 offsets.
		if len(offs)*2 != c.wantDegree {
			t.Errorf("BoxStencil(%d,%d,%d): %d forward offsets, want %d",
				c.rx, c.ry, c.rz, len(offs), c.wantDegree/2)
		}
	}
}

func TestBoxStencilForwardHalfOnly(t *testing.T) {
	offs := BoxStencil(2, 2, 1)
	seen := map[Offset3]bool{}
	for _, o := range offs {
		if seen[o] {
			t.Fatalf("duplicate offset %v", o)
		}
		seen[o] = true
		// The negation must NOT appear (the builder symmetrizes).
		if seen[Offset3{-o.DX, -o.DY, -o.DZ}] {
			t.Fatalf("offset %v and its negation both present", o)
		}
	}
}

func TestBoxStencilPanics(t *testing.T) {
	for _, r := range [][3]int{{0, 0, 0}, {-1, 1, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("BoxStencil(%v) did not panic", r)
				}
			}()
			BoxStencil(r[0], r[1], r[2])
		}()
	}
}

func TestGrid3DStencilMatchesGrid3D(t *testing.T) {
	// Grid3DStencil with the radius-1 box must reproduce Grid3D(r=1).
	a := Grid3D(5, 4, 3, 1)
	b := Grid3DStencil(5, 4, 3, BoxStencil(1, 1, 1), "")
	if a.NumArcs() != b.NumArcs() || a.NumVertices() != b.NumVertices() {
		t.Fatalf("stencil grid differs from Grid3D: %s vs %s", a, b)
	}
	for v := 0; v < a.NumVertices(); v++ {
		na, nb := a.Neighbors(uint32(v)), b.Neighbors(uint32(v))
		if len(na) != len(nb) {
			t.Fatalf("vertex %d degree differs", v)
		}
		for i := range na {
			if na[i] != nb[i] {
				t.Fatalf("vertex %d adjacency differs", v)
			}
		}
	}
}

func TestGrid3DStencilInteriorDegree(t *testing.T) {
	g := Grid3DStencil(9, 9, 9, FaceEdgeStencil(), "tet")
	if g.Name() != "tet" {
		t.Fatalf("name = %q", g.Name())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := g.Degrees().Max; got != 14 {
		t.Fatalf("face+edge stencil interior degree = %d, want 14", got)
	}
	if !g.IsConnected() {
		t.Fatal("stencil mesh disconnected")
	}
}

func TestGrid3DStencilDefaultName(t *testing.T) {
	g := Grid3DStencil(3, 3, 3, BoxStencil(1, 1, 1), "")
	if g.Name() == "" {
		t.Fatal("empty default name")
	}
}

func TestGrid3DStencilPanics(t *testing.T) {
	cases := map[string][]Offset3{
		"empty":     {},
		"zero":      {{0, 0, 0}},
		"duplicate": {{1, 0, 0}, {1, 0, 0}},
	}
	for name, offs := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s stencil did not panic", name)
				}
			}()
			Grid3DStencil(3, 3, 3, offs, "")
		}()
	}
}

func TestFaceEdgeStencilShape(t *testing.T) {
	offs := FaceEdgeStencil()
	if len(offs) != 7 {
		t.Fatalf("forward half has %d offsets, want 7 (degree 14)", len(offs))
	}
}
