package simkern

import (
	"testing"

	"bagraph/internal/gen"
	"bagraph/internal/graph"
	"bagraph/internal/sssp"
	"bagraph/internal/testutil"
)

func weighted(t *testing.T, g *graph.Graph, seed uint64) *graph.Weighted {
	t.Helper()
	return testutil.AttachHashWeights(t, g, 30, seed)
}

func TestBellmanFordMatchesNativeAndDijkstra(t *testing.T) {
	graphs := []*graph.Weighted{
		weighted(t, gen.Grid2D(6, 7, false), 1),
		weighted(t, gen.BarabasiAlbert(120, 3, 2), 3),
		weighted(t, gen.Cycle(30), 5),
	}
	for _, g := range graphs {
		oracle := sssp.Dijkstra(g, 0)
		rBB := BellmanFordBranchBased(machine(), g, 0)
		rBA := BellmanFordBranchAvoiding(machine(), g, 0)
		for v := range oracle {
			want := oracle[v]
			if want == sssp.Inf {
				want = SSSPInf
			}
			if rBB.Dist[v] != want || rBA.Dist[v] != want {
				t.Fatalf("%s: dist[%d]: BB=%d BA=%d want %d", g, v, rBB.Dist[v], rBA.Dist[v], want)
			}
		}
		if rBB.Passes != rBA.Passes {
			t.Fatalf("%s: passes differ: %d vs %d", g, rBB.Passes, rBA.Passes)
		}
		native, nst := sssp.BellmanFordBranchBased(g, 0)
		if nst.Passes != rBB.Passes {
			t.Fatalf("%s: instrumented passes %d != native %d", g, rBB.Passes, nst.Passes)
		}
		for v := range native {
			if native[v] != sssp.Inf && rBB.Dist[v] != native[v] {
				t.Fatalf("%s: instrumented dist differs from native at %d", g, v)
			}
		}
	}
}

// TestBellmanFordExactCounts pins the closed-form branch counts per
// pass: BB = 2A + 2V + 2, BA = A + 2V + 2, exactly as SV (the weight
// load changes loads, not branches).
func TestBellmanFordExactCounts(t *testing.T) {
	g := weighted(t, gen.Grid2D(8, 8, false), 9)
	V := uint64(g.NumVertices())
	A := uint64(g.NumArcs())

	rBB := BellmanFordBranchBased(machine(), g, 0)
	rBA := BellmanFordBranchAvoiding(machine(), g, 0)

	for i, c := range rBB.PerPass {
		want := 2*A + 2*V + 2
		if i == len(rBB.PerPass)-1 {
			want++
		}
		if c.Branches != want {
			t.Fatalf("BB pass %d branches = %d, want %d", i, c.Branches, want)
		}
	}
	for i, c := range rBA.PerPass {
		want := A + 2*V + 2
		if i == len(rBA.PerPass)-1 {
			want++
		}
		if c.Branches != want {
			t.Fatalf("BA pass %d branches = %d, want %d", i, c.Branches, want)
		}
		// Loads: 3 per vertex + 3 per arc (adj, dist, weight).
		if got, wantL := c.Loads, 3*V+3*A; got != wantL {
			t.Fatalf("BA pass %d loads = %d, want %d", i, got, wantL)
		}
		if c.Stores != V {
			t.Fatalf("BA pass %d stores = %d, want %d", i, c.Stores, V)
		}
		if c.CondMoves != A {
			t.Fatalf("BA pass %d condmoves = %d, want %d", i, c.CondMoves, A)
		}
	}
}

// TestBellmanFordMispredictShape: the SV finding transfers — the
// branch-based relaxation mispredicts far more than the loop floor while
// churn lasts.
func TestBellmanFordMispredictShape(t *testing.T) {
	g := weighted(t, gen.BarabasiAlbert(300, 4, 7), 11)
	rBB := BellmanFordBranchBased(machine(), g, 0)
	rBA := BellmanFordBranchAvoiding(machine(), g, 0)
	if rBB.PerPass.Total().Mispredicts <= rBA.PerPass.Total().Mispredicts {
		t.Fatal("branch-based Bellman-Ford did not mispredict more")
	}
	if rBB.Passes >= 3 {
		first := rBB.PerPass[0].Mispredicts
		last := rBB.PerPass[rBB.Passes-1].Mispredicts
		if first <= last {
			t.Fatalf("BB mispredicts did not decay: %d -> %d", first, last)
		}
	}
	if rBB.Total().Instructions == 0 {
		t.Fatal("Total() empty")
	}
}
