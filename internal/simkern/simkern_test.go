package simkern

import (
	"testing"

	"bagraph/internal/bfs"
	"bagraph/internal/cc"
	"bagraph/internal/gen"
	"bagraph/internal/graph"
	"bagraph/internal/perfsim"
	"bagraph/internal/uarch"
)

func machine() *perfsim.Machine {
	m, ok := uarch.ByName("Haswell")
	if !ok {
		panic("no Haswell model")
	}
	return perfsim.NewDefault(m)
}

func testGraphs() []*graph.Graph {
	return []*graph.Graph{
		gen.Path(40),
		gen.Cycle(33),
		gen.Star(64),
		gen.Grid2D(8, 9, false),
		gen.Grid3D(4, 4, 4, 1),
		gen.GNM(120, 300, 5),
		gen.BarabasiAlbert(150, 3, 7),
		gen.Disconnected(gen.Cycle(7), 4),
		gen.Community(5, 12, 0.5, 20, 3),
	}
}

// TestSVMatchesNative cross-validates the instrumented SV kernels against
// the native implementations: identical labels and pass counts.
func TestSVMatchesNative(t *testing.T) {
	for _, g := range testGraphs() {
		nativeLabels, nativeStats := cc.SVBranchBased(g)

		rBB := SVBranchBased(machine(), g)
		rBA := SVBranchAvoiding(machine(), g)

		if rBB.Iterations != nativeStats.Iterations || rBA.Iterations != nativeStats.Iterations {
			t.Fatalf("%s: iterations BB=%d BA=%d native=%d", g, rBB.Iterations, rBA.Iterations, nativeStats.Iterations)
		}
		for v := range nativeLabels {
			if rBB.Labels[v] != nativeLabels[v] || rBA.Labels[v] != nativeLabels[v] {
				t.Fatalf("%s: label mismatch at %d", g, v)
			}
		}
		if err := cc.Verify(g, rBB.Labels); err != nil {
			t.Fatalf("%s: %v", g, err)
		}
	}
}

// TestBFSMatchesNative cross-validates instrumented BFS against native.
func TestBFSMatchesNative(t *testing.T) {
	for _, g := range testGraphs() {
		want, nativeStats := bfs.TopDownBranchBased(g, 0)

		rBB := BFSBranchBased(machine(), g, 0)
		rBA := BFSBranchAvoiding(machine(), g, 0)

		for v := range want {
			if rBB.Dist[v] != want[v] || rBA.Dist[v] != want[v] {
				t.Fatalf("%s: distance mismatch at %d", g, v)
			}
		}
		if rBB.Levels != nativeStats.Levels || rBA.Levels != nativeStats.Levels {
			t.Fatalf("%s: levels BB=%d BA=%d native=%d", g, rBB.Levels, rBA.Levels, nativeStats.Levels)
		}
		if rBB.Reached != nativeStats.Reached || rBA.Reached != nativeStats.Reached {
			t.Fatalf("%s: reached mismatch", g)
		}
		for i := range nativeStats.LevelSizes {
			if rBB.LevelSizes[i] != nativeStats.LevelSizes[i] {
				t.Fatalf("%s: level %d size mismatch", g, i)
			}
		}
	}
}

// TestSVExactBranchCounts pins the closed-form per-iteration branch counts
// that reproduce the paper's Fig. 4 ratios:
//
//	branch-based:    2A + 2V + 2 per pass (+1 on the last pass)
//	branch-avoiding:  A + 2V + 2 per pass (+1 on the last pass)
func TestSVExactBranchCounts(t *testing.T) {
	g := gen.Grid2D(10, 10, false)
	V := uint64(g.NumVertices())
	A := uint64(g.NumArcs())

	rBB := SVBranchBased(machine(), g)
	rBA := SVBranchAvoiding(machine(), g)

	for i, c := range rBB.PerIter {
		want := 2*A + 2*V + 2
		if i == len(rBB.PerIter)-1 {
			want++
		}
		if c.Branches != want {
			t.Fatalf("BB pass %d branches = %d, want %d", i, c.Branches, want)
		}
	}
	for i, c := range rBA.PerIter {
		want := A + 2*V + 2
		if i == len(rBA.PerIter)-1 {
			want++
		}
		if c.Branches != want {
			t.Fatalf("BA pass %d branches = %d, want %d", i, c.Branches, want)
		}
	}
}

// TestSVExactLoadAndStoreCounts pins loads (identical for both variants)
// and the store asymmetry (BA: exactly V per pass).
func TestSVExactLoadAndStoreCounts(t *testing.T) {
	g := gen.GNM(80, 200, 11)
	V := uint64(g.NumVertices())
	A := uint64(g.NumArcs())

	rBB := SVBranchBased(machine(), g)
	rBA := SVBranchAvoiding(machine(), g)

	for i := range rBA.PerIter {
		if got, want := rBA.PerIter[i].Loads, 3*V+2*A; got != want {
			t.Fatalf("BA pass %d loads = %d, want %d", i, got, want)
		}
		if got := rBA.PerIter[i].Stores; got != V {
			t.Fatalf("BA pass %d stores = %d, want %d", i, got, V)
		}
		if got, want := rBB.PerIter[i].Loads, 3*V+2*A; got != want {
			t.Fatalf("BB pass %d loads = %d, want %d", i, got, want)
		}
	}
	// BB's final pass observes no improvement: zero stores.
	if last := rBB.PerIter[len(rBB.PerIter)-1].Stores; last != 0 {
		t.Fatalf("BB final pass stores = %d, want 0", last)
	}
	// BA performs one conditional move per arc per pass; BB none.
	for i := range rBA.PerIter {
		if got := rBA.PerIter[i].CondMoves; got != A {
			t.Fatalf("BA pass %d condmoves = %d, want %d", i, got, A)
		}
		if rBB.PerIter[i].CondMoves != 0 {
			t.Fatal("BB recorded conditional moves")
		}
	}
}

// TestBFSExactCounts pins the whole-run formulas on a connected graph
// where BFS reaches all V vertices over A arcs:
//
//	branch-based:    branches 2A+2V+1, stores 2(V-1)
//	branch-avoiding: branches  A+2V+1, stores 2A, condmoves 2A
func TestBFSExactCounts(t *testing.T) {
	g := gen.Grid3D(5, 5, 5, 1)
	V := uint64(g.NumVertices())
	A := uint64(g.NumArcs())

	rBB := BFSBranchBased(machine(), g, 0)
	rBA := BFSBranchAvoiding(machine(), g, 0)

	bb := rBB.PerLevel.Total()
	ba := rBA.PerLevel.Total()

	if got, want := bb.Branches, 2*A+2*V+1; got != want {
		t.Fatalf("BB branches = %d, want %d", got, want)
	}
	if got, want := ba.Branches, A+2*V+1; got != want {
		t.Fatalf("BA branches = %d, want %d", got, want)
	}
	if got, want := bb.Stores, 2*(V-1); got != want {
		t.Fatalf("BB stores = %d, want %d", got, want)
	}
	if got, want := ba.Stores, 2*A; got != want {
		t.Fatalf("BA stores = %d, want %d", got, want)
	}
	if got, want := ba.CondMoves, 2*A; got != want {
		t.Fatalf("BA condmoves = %d, want %d", got, want)
	}
	if bb.CondMoves != 0 {
		t.Fatal("BB recorded conditional moves")
	}
	// Loads identical between variants.
	if bb.Loads != ba.Loads {
		t.Fatalf("loads differ: BB %d, BA %d", bb.Loads, ba.Loads)
	}
	// Setup: V init stores + 2 root stores for both.
	if rBB.Setup.Stores != V+2 || rBA.Setup.Stores != V+2 {
		t.Fatalf("setup stores BB=%d BA=%d, want %d", rBB.Setup.Stores, rBA.Setup.Stores, V+2)
	}
}

// TestStoreBlowupRatio pins the paper's §6.3 headline on a dense mesh:
// branch-avoiding BFS stores ≈ (A/V)× more than branch-based.
func TestStoreBlowupRatio(t *testing.T) {
	g := gen.Grid3D(7, 7, 7, 1)
	rBB := BFSBranchBased(machine(), g, 0)
	rBA := BFSBranchAvoiding(machine(), g, 0)
	ratio := float64(rBA.PerLevel.Total().Stores) / float64(rBB.PerLevel.Total().Stores)
	if ratio < 8 {
		t.Fatalf("store ratio %.1f, want ≈ A/V ≈ %.1f", ratio, float64(g.NumArcs())/float64(g.NumVertices()))
	}
}

// TestSVMispredictShape verifies the paper's central SV observation: the
// branch-based kernel mispredicts far more in early passes than in late
// passes, while the branch-avoiding kernel is nearly flat at the loop
// floor.
func TestSVMispredictShape(t *testing.T) {
	g := gen.Community(8, 25, 0.4, 60, 13)
	rBB := SVBranchBased(machine(), g)
	rBA := SVBranchAvoiding(machine(), g)

	if rBB.Iterations < 3 {
		t.Skipf("graph converged too fast (%d passes) for shape check", rBB.Iterations)
	}
	first := rBB.PerIter[0].Mispredicts
	last := rBB.PerIter[rBB.Iterations-1].Mispredicts
	if first <= last {
		t.Fatalf("BB mispredicts did not decay: first %d, last %d", first, last)
	}
	// BA mispredictions come only from loop-exit branches: at most
	// ~(V + 2) per pass plus slack for the outer tests.
	V := uint64(g.NumVertices())
	for i, c := range rBA.PerIter {
		if c.Mispredicts > V+8 {
			t.Fatalf("BA pass %d mispredicts = %d, above loop floor %d", i, c.Mispredicts, V+8)
		}
	}
	// Aggregate: BB must mispredict strictly more than BA.
	if rBB.PerIter.Total().Mispredicts <= rBA.PerIter.Total().Mispredicts {
		t.Fatal("branch-based SV did not mispredict more than branch-avoiding")
	}
}

// TestBFSMispredictShape: branch-avoiding BFS eliminates the if-branch
// misses; branch-based sits between |V| and ~3|V| total (§5.1).
func TestBFSMispredictShape(t *testing.T) {
	g := gen.BarabasiAlbert(400, 4, 21)
	rBB := BFSBranchBased(machine(), g, 0)
	rBA := BFSBranchAvoiding(machine(), g, 0)
	if rBB.PerLevel.Total().Mispredicts <= rBA.PerLevel.Total().Mispredicts {
		t.Fatal("branch-based BFS did not mispredict more than branch-avoiding")
	}
}

// TestEmptyGraphs ensures the instrumented kernels handle degenerate
// inputs.
func TestEmptyGraphs(t *testing.T) {
	empty := graph.MustBuild(0, nil, graph.Options{})
	rBB := SVBranchBased(machine(), empty)
	if rBB.Iterations != 1 { // one pass over zero vertices, then exit
		t.Fatalf("empty SV iterations = %d", rBB.Iterations)
	}
	b := BFSBranchBased(machine(), empty, 0)
	if b.Levels != 0 || len(b.Dist) != 0 {
		t.Fatal("empty BFS mishandled")
	}
	ba := BFSBranchAvoiding(machine(), empty, 0)
	if ba.Levels != 0 {
		t.Fatal("empty BA BFS mishandled")
	}
}

// TestTotalsIncludeSetup checks Total() composition.
func TestTotalsIncludeSetup(t *testing.T) {
	g := gen.Path(20)
	r := SVBranchAvoiding(machine(), g)
	tot := r.Total()
	if tot.Stores != r.Setup.Stores+r.PerIter.Total().Stores {
		t.Fatal("SVResult.Total does not include setup")
	}
	b := BFSBranchAvoiding(machine(), g, 0)
	if b.Total().Stores != b.Setup.Stores+b.PerLevel.Total().Stores {
		t.Fatal("BFSResult.Total does not include setup")
	}
}

// TestDeterminism: identical machines produce identical event streams.
func TestDeterminism(t *testing.T) {
	g := gen.GNM(100, 250, 3)
	a := SVBranchBased(machine(), g)
	b := SVBranchBased(machine(), g)
	if len(a.PerIter) != len(b.PerIter) {
		t.Fatal("pass counts differ between identical runs")
	}
	for i := range a.PerIter {
		if a.PerIter[i] != b.PerIter[i] {
			t.Fatalf("pass %d counters differ between identical runs", i)
		}
	}
}
