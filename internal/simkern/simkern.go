// Package simkern expresses the paper's four kernels — Shiloach-Vishkin
// connected components and top-down BFS, each in branch-based and
// branch-avoiding form — as the assembly-level operation sequences the
// paper measures, executed against the instrumented machine of
// internal/perfsim.
//
// Every load, store, ALU op, conditional move and conditional branch of
// the paper's Algorithms 2–5 is recorded explicitly, so the simulated
// event counts are exact (not sampled) under the paper's 2-bit predictor
// model. The kernels simultaneously perform the real computation, and the
// results are cross-validated against the native kernels in internal/cc
// and internal/bfs by the tests.
//
// Static branch sites follow the paper's per-branch analysis (§4.1, §5.1):
// the while test, the vertex (outer) for test, the neighbor (inner) for
// test, and — in the branch-based kernels only — the data-dependent if.
package simkern

import (
	"bagraph/internal/graph"
	"bagraph/internal/perfcount"
	"bagraph/internal/perfsim"
)

// Static branch site ids, shared by all kernels so that predictor state
// for a site is meaningful within one kernel run.
const (
	SiteWhile    = 0 // outer while (SV: change ≠ 0; BFS: queue not empty)
	SiteOuterFor = 1 // SV's per-vertex loop
	SiteInnerFor = 2 // adjacency-list loop
	SiteIf       = 3 // the data-dependent comparison (branch-based only)
)

// elemLabel/elemOffs are the element widths of the simulated arrays:
// 4-byte labels, distances, adjacency and queue entries; 8-byte CSR
// offsets.
const (
	elemLabel = 4
	elemOffs  = 8
)

// SVResult is the outcome of an instrumented Shiloach-Vishkin run.
type SVResult struct {
	Labels     []uint32
	Iterations int
	// Setup holds the events of the initialization loop (label array
	// init); PerIter holds one delta per while-loop pass.
	Setup   perfcount.Counters
	PerIter perfcount.Series
}

// Total returns the event total across setup and all iterations.
func (r SVResult) Total() perfcount.Counters {
	t := r.Setup
	t.Add(r.PerIter.Total())
	return t
}

type svArrays struct {
	cc, adj perfsim.Region
	offs    perfsim.Region
}

func allocSV(m *perfsim.Machine, g *graph.Graph) svArrays {
	n := int64(g.NumVertices())
	return svArrays{
		cc:   m.Alloc(elemLabel, n),
		offs: m.Alloc(elemOffs, n+1),
		adj:  m.Alloc(elemLabel, g.NumArcs()),
	}
}

// svInit performs the label initialization loop (CCid[v] ← v): one store
// and one loop-counter ALU op per vertex, plus the init loop's own branch
// (site SiteOuterFor is reused; the paper does not analyze the init loop
// separately and its contribution is O(|V|) with at most 3 misses).
func svInit(m *perfsim.Machine, a svArrays, labels []uint32) {
	n := len(labels)
	for v := 0; v < n; v++ {
		m.Branch(SiteOuterFor, true)
		labels[v] = uint32(v)
		m.Store(a.cc, int64(v))
		m.ALU(1)
	}
	m.Branch(SiteOuterFor, false)
	m.ALU(1) // change ← 1
}

// SVBranchBased runs Algorithm 2 on the instrumented machine.
func SVBranchBased(m *perfsim.Machine, g *graph.Graph) SVResult {
	n := g.NumVertices()
	labels := make([]uint32, n)
	a := allocSV(m, g)
	adj := g.Adjacency()
	offs := g.Offsets()

	base := m.Counters()
	svInit(m, a, labels)
	res := SVResult{Labels: labels, Setup: m.Counters().Delta(base)}
	prev := m.Counters()

	change := true
	for {
		taken := change
		m.Branch(SiteWhile, taken)
		if !taken {
			foldTrailing(m, &res, prev)
			break
		}
		change = false
		m.ALU(1) // change ← 0
		for v := 0; v < n; v++ {
			m.Branch(SiteOuterFor, true)
			m.Load(a.offs, int64(v))
			m.Load(a.offs, int64(v)+1)
			m.Load(a.cc, int64(v))
			cv := labels[v]
			m.ALU(1) // loop counter
			for j := offs[v]; j < offs[v+1]; j++ {
				m.Branch(SiteInnerFor, true)
				m.Load(a.adj, j)
				u := adj[j]
				m.Load(a.cc, int64(u))
				cu := labels[u]
				m.ALU(2) // compare + loop counter
				if m.Branch(SiteIf, cu < cv) {
					cv = cu
					labels[v] = cu
					m.ALU(2) // cv ← cu; change ← 1
					m.Store(a.cc, int64(v))
					change = true
				}
			}
			m.Branch(SiteInnerFor, false)
		}
		m.Branch(SiteOuterFor, false)

		cur := m.Counters()
		res.PerIter = append(res.PerIter, cur.Delta(prev))
		prev = cur
		res.Iterations++
	}
	return res
}

// SVBranchAvoiding runs Algorithm 3 on the instrumented machine: the if
// becomes a compare feeding a conditional move, the label writeback is
// unconditional (once per vertex), and the change flag is maintained with
// XOR/OR arithmetic.
func SVBranchAvoiding(m *perfsim.Machine, g *graph.Graph) SVResult {
	n := g.NumVertices()
	labels := make([]uint32, n)
	a := allocSV(m, g)
	adj := g.Adjacency()
	offs := g.Offsets()

	base := m.Counters()
	svInit(m, a, labels)
	res := SVResult{Labels: labels, Setup: m.Counters().Delta(base)}
	prev := m.Counters()

	change := uint32(1)
	for {
		taken := change != 0
		m.Branch(SiteWhile, taken)
		if !taken {
			foldTrailing(m, &res, prev)
			break
		}
		change = 0
		m.ALU(1)
		for v := 0; v < n; v++ {
			m.Branch(SiteOuterFor, true)
			m.Load(a.offs, int64(v))
			m.Load(a.offs, int64(v)+1)
			m.Load(a.cc, int64(v))
			cinit := labels[v]
			cv := cinit
			m.ALU(2) // cv ← cinit; loop counter
			for j := offs[v]; j < offs[v+1]; j++ {
				m.Branch(SiteInnerFor, true)
				m.Load(a.adj, j)
				u := adj[j]
				m.Load(a.cc, int64(u))
				cu := labels[u]
				m.ALU(2) // compare + loop counter
				m.CondMove()
				if cu < cv { // architecturally a CMOV: no branch recorded
					cv = cu
				}
			}
			m.Branch(SiteInnerFor, false)
			labels[v] = cv
			m.Store(a.cc, int64(v))
			m.ALU(2) // change ← change OR (cv XOR cinit)
			change |= cv ^ cinit
		}
		m.Branch(SiteOuterFor, false)

		cur := m.Counters()
		res.PerIter = append(res.PerIter, cur.Delta(prev))
		prev = cur
		res.Iterations++
	}
	return res
}

// foldTrailing attributes the events recorded after the last per-iteration
// snapshot — exactly the final not-taken while test — to the last
// iteration (or to setup when the while loop never ran a pass).
func foldTrailing(m *perfsim.Machine, res *SVResult, prev perfcount.Counters) {
	extra := m.Counters().Delta(prev)
	if k := len(res.PerIter); k > 0 {
		res.PerIter[k-1].Add(extra)
	} else {
		res.Setup.Add(extra)
	}
}
