package simkern

// Instrumented top-down BFS kernels (the paper's Algorithms 4 and 5).
// Per-level accounting mirrors the paper's Figures 6–8: the FIFO queue is
// level-ordered, so each level is a contiguous queue window and counter
// snapshots are taken at window boundaries.

import (
	"bagraph/internal/graph"
	"bagraph/internal/perfcount"
	"bagraph/internal/perfsim"
)

// BFSInf marks unreached vertices in instrumented BFS results.
const BFSInf = ^uint32(0)

// BFSResult is the outcome of an instrumented BFS run.
type BFSResult struct {
	Dist       []uint32
	Levels     int
	LevelSizes []int
	// EdgesPerLevel[i] is the number of arcs traversed while processing
	// level i — the per-edge normalizer of the paper's Fig. 10.
	EdgesPerLevel []int64
	Reached       int
	// Setup holds the distance-array initialization events; PerLevel
	// holds one delta per BFS level.
	Setup    perfcount.Counters
	PerLevel perfcount.Series
}

// Total returns the event total across setup and all levels.
func (r BFSResult) Total() perfcount.Counters {
	t := r.Setup
	t.Add(r.PerLevel.Total())
	return t
}

type bfsArrays struct {
	dist, adj, q perfsim.Region
	offs         perfsim.Region
}

func allocBFS(m *perfsim.Machine, g *graph.Graph) bfsArrays {
	n := int64(g.NumVertices())
	return bfsArrays{
		dist: m.Alloc(elemLabel, n),
		offs: m.Alloc(elemOffs, n+1),
		adj:  m.Alloc(elemLabel, g.NumArcs()),
		q:    m.Alloc(elemLabel, n+1),
	}
}

// bfsInit initializes d[v] ← ∞ for all v and enqueues the root.
func bfsInit(m *perfsim.Machine, a bfsArrays, dist []uint32, qbuf []uint32, root uint32) {
	n := len(dist)
	for v := 0; v < n; v++ {
		m.Branch(SiteOuterFor, true)
		dist[v] = BFSInf
		m.Store(a.dist, int64(v))
		m.ALU(1)
	}
	m.Branch(SiteOuterFor, false)
	// enqueue r; d[r] ← 0
	qbuf[0] = root
	m.Store(a.q, 0)
	dist[root] = 0
	m.Store(a.dist, int64(root))
	m.ALU(2) // head/tail registers
}

// BFSBranchBased runs Algorithm 4 on the instrumented machine.
func BFSBranchBased(m *perfsim.Machine, g *graph.Graph, root uint32) BFSResult {
	n := g.NumVertices()
	res := BFSResult{Dist: make([]uint32, n)}
	if n == 0 {
		return res
	}
	a := allocBFS(m, g)
	adj := g.Adjacency()
	offs := g.Offsets()
	qbuf := make([]uint32, n+1)

	base := m.Counters()
	bfsInit(m, a, res.Dist, qbuf, root)
	res.Setup = m.Counters().Delta(base)
	prev := m.Counters()

	dist := res.Dist
	head, tail := 0, 1
	for head < tail {
		levelEnd := tail
		levelStart := head
		var levelEdges int64
		for head < levelEnd {
			m.Branch(SiteWhile, true) // queue not empty
			m.Load(a.q, int64(head))
			v := qbuf[head]
			head++
			m.ALU(1) // head++
			m.Load(a.dist, int64(v))
			next := dist[v] + 1
			m.ALU(1) // next ← d[v]+1
			m.Load(a.offs, int64(v))
			m.Load(a.offs, int64(v)+1)
			levelEdges += offs[v+1] - offs[v]
			for j := offs[v]; j < offs[v+1]; j++ {
				m.Branch(SiteInnerFor, true)
				m.Load(a.adj, j)
				w := adj[j]
				m.Load(a.dist, int64(w))
				m.ALU(2) // compare + loop counter
				if m.Branch(SiteIf, dist[w] == BFSInf) {
					qbuf[tail] = w
					m.Store(a.q, int64(tail))
					tail++
					m.ALU(1) // tail++
					dist[w] = next
					m.Store(a.dist, int64(w))
				}
			}
			m.Branch(SiteInnerFor, false)
		}
		res.LevelSizes = append(res.LevelSizes, levelEnd-levelStart)
		res.EdgesPerLevel = append(res.EdgesPerLevel, levelEdges)
		res.Levels++
		cur := m.Counters()
		res.PerLevel = append(res.PerLevel, cur.Delta(prev))
		prev = cur
	}
	// Final while test: queue empty.
	m.Branch(SiteWhile, false)
	foldTrailingBFS(m, &res, prev)
	res.Reached = tail
	return res
}

// BFSBranchAvoiding runs Algorithm 5 on the instrumented machine: per
// traversed edge it unconditionally stores the neighbor at the queue tail
// and writes the neighbor's distance back, with two predicated operations
// (distance select, tail advance) replacing the discovery branch.
func BFSBranchAvoiding(m *perfsim.Machine, g *graph.Graph, root uint32) BFSResult {
	n := g.NumVertices()
	res := BFSResult{Dist: make([]uint32, n)}
	if n == 0 {
		return res
	}
	a := allocBFS(m, g)
	adj := g.Adjacency()
	offs := g.Offsets()
	qbuf := make([]uint32, n+1)

	base := m.Counters()
	bfsInit(m, a, res.Dist, qbuf, root)
	res.Setup = m.Counters().Delta(base)
	prev := m.Counters()

	dist := res.Dist
	head, tail := 0, 1
	for head < tail {
		levelEnd := tail
		levelStart := head
		var levelEdges int64
		for head < levelEnd {
			m.Branch(SiteWhile, true)
			m.Load(a.q, int64(head))
			v := qbuf[head]
			head++
			m.ALU(1)
			m.Load(a.dist, int64(v))
			next := dist[v] + 1
			m.ALU(1)
			m.Load(a.offs, int64(v))
			m.Load(a.offs, int64(v)+1)
			levelEdges += offs[v+1] - offs[v]
			for j := offs[v]; j < offs[v+1]; j++ {
				m.Branch(SiteInnerFor, true)
				m.Load(a.adj, j)
				w := adj[j]
				// LOAD(temp, d[w]); CMP(temp, next_level)
				m.Load(a.dist, int64(w))
				temp := dist[w]
				m.ALU(2) // compare + loop counter
				// Q[Qlen] ← w (unconditional, possibly "outside" the queue)
				qbuf[tail] = w
				m.Store(a.q, int64(tail))
				// COND_MOVE_GREATER(temp, next_level)
				m.CondMove()
				isNew := temp > next
				if isNew {
					temp = next
				}
				// COND_ADD(Qlen, 1)
				m.CondMove()
				if isNew {
					tail++
				}
				// STORE(temp, d[w])
				dist[w] = temp
				m.Store(a.dist, int64(w))
			}
			m.Branch(SiteInnerFor, false)
		}
		res.LevelSizes = append(res.LevelSizes, levelEnd-levelStart)
		res.EdgesPerLevel = append(res.EdgesPerLevel, levelEdges)
		res.Levels++
		cur := m.Counters()
		res.PerLevel = append(res.PerLevel, cur.Delta(prev))
		prev = cur
	}
	m.Branch(SiteWhile, false)
	foldTrailingBFS(m, &res, prev)
	res.Reached = tail
	return res
}

func foldTrailingBFS(m *perfsim.Machine, res *BFSResult, prev perfcount.Counters) {
	extra := m.Counters().Delta(prev)
	if k := len(res.PerLevel); k > 0 {
		res.PerLevel[k-1].Add(extra)
	} else {
		res.Setup.Add(extra)
	}
}
