package simkern

// Instrumented Bellman-Ford kernels — the weighted extension of the SV
// pair. The operation mix per edge adds exactly one weight load and one
// addition to SV's sequence, so the branch-count closed forms shift
// accordingly; everything else (sites, store asymmetry, change flag)
// mirrors SVBranchBased/SVBranchAvoiding.

import (
	"bagraph/internal/graph"
	"bagraph/internal/perfcount"
	"bagraph/internal/perfsim"
)

// SSSPInf is the unreachable sentinel used by the instrumented
// Bellman-Ford kernels (2^62, safely below signed overflow for
// mask-based comparison).
const SSSPInf = uint64(1) << 62

// SSSPResult is the outcome of an instrumented Bellman-Ford run.
type SSSPResult struct {
	Dist    []uint64
	Passes  int
	Setup   perfcount.Counters
	PerPass perfcount.Series
}

// Total returns the event total across setup and all passes.
func (r SSSPResult) Total() perfcount.Counters {
	t := r.Setup
	t.Add(r.PerPass.Total())
	return t
}

type ssspArrays struct {
	dist, adj, w perfsim.Region
	offs         perfsim.Region
}

func allocSSSP(m *perfsim.Machine, g *graph.Weighted) ssspArrays {
	n := int64(g.NumVertices())
	return ssspArrays{
		dist: m.Alloc(8, n), // 64-bit distances
		offs: m.Alloc(elemOffs, n+1),
		adj:  m.Alloc(elemLabel, g.NumArcs()),
		w:    m.Alloc(elemLabel, g.NumArcs()),
	}
}

func ssspInit(m *perfsim.Machine, a ssspArrays, dist []uint64, src uint32) {
	for v := range dist {
		m.Branch(SiteOuterFor, true)
		dist[v] = SSSPInf
		m.Store(a.dist, int64(v))
		m.ALU(1)
	}
	m.Branch(SiteOuterFor, false)
	dist[src] = 0
	m.Store(a.dist, int64(src))
	m.ALU(1) // change ← 1
}

// BellmanFordBranchBased runs the pull-style branch-based Bellman-Ford on
// the instrumented machine.
func BellmanFordBranchBased(m *perfsim.Machine, g *graph.Weighted, src uint32) SSSPResult {
	n := g.NumVertices()
	dist := make([]uint64, n)
	a := allocSSSP(m, g)
	adj := g.Adjacency()
	ws := g.ArcWeights()
	offs := g.Offsets()

	base := m.Counters()
	ssspInit(m, a, dist, src)
	res := SSSPResult{Dist: dist, Setup: m.Counters().Delta(base)}
	prev := m.Counters()

	change := true
	for {
		taken := change
		m.Branch(SiteWhile, taken)
		if !taken {
			foldTrailingSSSP(m, &res, prev)
			break
		}
		change = false
		m.ALU(1)
		for v := 0; v < n; v++ {
			m.Branch(SiteOuterFor, true)
			m.Load(a.offs, int64(v))
			m.Load(a.offs, int64(v)+1)
			m.Load(a.dist, int64(v))
			dv := dist[v]
			m.ALU(1)
			for j := offs[v]; j < offs[v+1]; j++ {
				m.Branch(SiteInnerFor, true)
				m.Load(a.adj, j)
				u := adj[j]
				m.Load(a.dist, int64(u))
				m.Load(a.w, j)
				cand := dist[u] + uint64(ws[j])
				m.ALU(3) // add + compare + loop counter
				if m.Branch(SiteIf, cand < dv) {
					dv = cand
					dist[v] = cand
					m.ALU(2)
					m.Store(a.dist, int64(v))
					change = true
				}
			}
			m.Branch(SiteInnerFor, false)
		}
		m.Branch(SiteOuterFor, false)

		cur := m.Counters()
		res.PerPass = append(res.PerPass, cur.Delta(prev))
		prev = cur
		res.Passes++
	}
	return res
}

// BellmanFordBranchAvoiding runs the conditional-move Bellman-Ford on the
// instrumented machine: SV's Algorithm 3 pattern with one extra load and
// add per edge.
func BellmanFordBranchAvoiding(m *perfsim.Machine, g *graph.Weighted, src uint32) SSSPResult {
	n := g.NumVertices()
	dist := make([]uint64, n)
	a := allocSSSP(m, g)
	adj := g.Adjacency()
	ws := g.ArcWeights()
	offs := g.Offsets()

	base := m.Counters()
	ssspInit(m, a, dist, src)
	res := SSSPResult{Dist: dist, Setup: m.Counters().Delta(base)}
	prev := m.Counters()

	change := uint64(1)
	for {
		taken := change != 0
		m.Branch(SiteWhile, taken)
		if !taken {
			foldTrailingSSSP(m, &res, prev)
			break
		}
		change = 0
		m.ALU(1)
		for v := 0; v < n; v++ {
			m.Branch(SiteOuterFor, true)
			m.Load(a.offs, int64(v))
			m.Load(a.offs, int64(v)+1)
			m.Load(a.dist, int64(v))
			dinit := dist[v]
			dv := dinit
			m.ALU(2)
			for j := offs[v]; j < offs[v+1]; j++ {
				m.Branch(SiteInnerFor, true)
				m.Load(a.adj, j)
				u := adj[j]
				m.Load(a.dist, int64(u))
				m.Load(a.w, j)
				cand := dist[u] + uint64(ws[j])
				m.ALU(3)
				m.CondMove()
				if cand < dv {
					dv = cand
				}
			}
			m.Branch(SiteInnerFor, false)
			dist[v] = dv
			m.Store(a.dist, int64(v))
			m.ALU(2)
			change |= dv ^ dinit
		}
		m.Branch(SiteOuterFor, false)

		cur := m.Counters()
		res.PerPass = append(res.PerPass, cur.Delta(prev))
		prev = cur
		res.Passes++
	}
	return res
}

func foldTrailingSSSP(m *perfsim.Machine, res *SSSPResult, prev perfcount.Counters) {
	extra := m.Counters().Delta(prev)
	if k := len(res.PerPass); k > 0 {
		res.PerPass[k-1].Add(extra)
	} else {
		res.Setup.Add(extra)
	}
}
