// Package sssp implements single-source shortest paths with
// branch-avoiding variants — the extension the paper's §1 anticipates
// ("the findings of our paper can in principle be extended to ...
// All-Pairs Shortest-Paths" and the shortest-path algorithm family).
//
// Bellman-Ford in its pull formulation is the weighted analogue of
// Shiloach-Vishkin: every pass, each vertex takes the minimum of
// d[u] + w(u, v) over its neighbors, and the algorithm stops when a pass
// changes nothing. The comparison in the inner loop is exactly SV's
// data-dependent branch, so the same conditional-move transformation
// applies — and, as in SV, it leaves the loop branches as the only
// branches and makes the store count exactly |V| per pass.
//
// Dijkstra (binary heap) is included as the classical baseline and as an
// independent oracle for cross-validation.
package sssp

import (
	"context"
	"fmt"
	"time"

	"bagraph/internal/core"
	"bagraph/internal/graph"
	"bagraph/internal/heap"
)

// Inf marks unreachable vertices. It is 2^62, within the safe range of
// the 64-bit branchless comparisons.
const Inf = uint64(1) << 62

// Stats describes one SSSP kernel run (a Bellman-Ford sweep sequence,
// or the parallel delta-stepping kernel's pass sequence).
type Stats struct {
	// Passes counts outer-loop sweeps — for Bellman-Ford including the
	// final no-change sweep, for Parallel one per scatter/merge pass.
	Passes int
	// PassDurations holds wall-clock time per sweep.
	PassDurations []time.Duration
	// PassChanges holds the number of vertices whose distance improved
	// in each sweep.
	PassChanges []int
	// DistStores counts writes to the distance array.
	DistStores uint64
	// CandStores counts candidate-buffer writes in the parallel
	// kernel's scatter phase. The branch-avoiding loop stores one
	// candidate per scanned arc (the paper's §5.2 store blow-up, with
	// the candidate buffer in the queue's role); the branch-based loop
	// stores only improvements. Zero for the sequential kernels.
	CandStores uint64
	// Buckets counts delta-stepping bucket activations (zero for the
	// sequential kernels).
	Buckets int
	// Chunks, Steals and StealPasses describe the parallel kernel's
	// chunk scheduling across all passes (see par.ChunkStats). Chunks
	// is zero only for the sequential kernels; Steals and StealPasses
	// are also zero under par.Static.
	Chunks      int
	Steals      uint64
	StealPasses uint64
	// LightRelaxed and HeavyRelaxed count the relaxations the parallel
	// kernel applied (distance improvements folded into the array)
	// through light (weight <= delta) and heavy arcs. Without the
	// light/heavy split every relaxation counts as light.
	LightRelaxed uint64
	HeavyRelaxed uint64
}

// Total returns the summed wall-clock time of all sweeps.
func (s Stats) Total() time.Duration {
	var t time.Duration
	for _, d := range s.PassDurations {
		t += d
	}
	return t
}

// initDist initializes the distance array for a run from src, reusing
// buf when it has length n (its prior contents are overwritten).
func initDist(buf []uint64, n int, src uint32) []uint64 {
	dist := buf
	if dist == nil || len(dist) != n {
		dist = make([]uint64, n)
	}
	for i := range dist {
		dist[i] = Inf
	}
	if int(src) < n {
		dist[src] = 0
	}
	return dist
}

// BellmanFordBranchBased computes shortest-path distances from src with
// the pull-style Bellman-Ford: the relaxation test is a conditional
// branch, taken whenever a neighbor offers a shorter path.
func BellmanFordBranchBased(g *graph.Weighted, src uint32) ([]uint64, Stats) {
	return BellmanFordBranchBasedInto(g, src, nil)
}

// BellmanFordBranchBasedInto is BellmanFordBranchBased writing into dist
// when it has length |V| (the returned slice aliases it); any other
// length allocates.
func BellmanFordBranchBasedInto(g *graph.Weighted, src uint32, dist []uint64) ([]uint64, Stats) {
	out, st, _ := BellmanFordBranchBasedCtx(context.Background(), g, src, dist)
	return out, st
}

// BellmanFordBranchBasedCtx is BellmanFordBranchBasedInto with
// cooperative cancellation: the context is observed between sweeps
// (never in the relaxation loop, which stays exactly the paper's
// operation mix), and a cancelled run returns the tentative distances
// computed so far alongside ctx's error.
func BellmanFordBranchBasedCtx(ctx context.Context, g *graph.Weighted, src uint32, dist []uint64) ([]uint64, Stats, error) {
	n := g.NumVertices()
	dist = initDist(dist, n, src)
	var st Stats
	adj := g.Adjacency()
	ws := g.ArcWeights()
	offs := g.Offsets()

	for change := true; change; {
		if err := ctx.Err(); err != nil {
			return dist, st, err
		}
		change = false
		changed := 0
		start := time.Now()
		for v := 0; v < n; v++ {
			dv := dist[v]
			dv0 := dv
			for j := offs[v]; j < offs[v+1]; j++ {
				u := adj[j]
				cand := dist[u] + uint64(ws[j])
				if cand < dv {
					dv = cand
					dist[v] = cand
					st.DistStores++
					change = true
				}
			}
			if dv != dv0 {
				changed++
			}
		}
		st.PassDurations = append(st.PassDurations, time.Since(start))
		st.PassChanges = append(st.PassChanges, changed)
		st.Passes++
	}
	return dist, st, nil
}

// BellmanFordBranchAvoiding is the conditional-move formulation: the
// relaxation feeds a 64-bit mask select, the register-accumulated
// distance is written back exactly once per vertex per pass, and the
// change flag is maintained with XOR/OR arithmetic — the weighted twin
// of the paper's Algorithm 3.
func BellmanFordBranchAvoiding(g *graph.Weighted, src uint32) ([]uint64, Stats) {
	return BellmanFordBranchAvoidingInto(g, src, nil)
}

// BellmanFordBranchAvoidingInto is BellmanFordBranchAvoiding writing into
// dist when it has length |V| (the returned slice aliases it); any other
// length allocates.
func BellmanFordBranchAvoidingInto(g *graph.Weighted, src uint32, dist []uint64) ([]uint64, Stats) {
	out, st, _ := BellmanFordBranchAvoidingCtx(context.Background(), g, src, dist)
	return out, st
}

// BellmanFordBranchAvoidingCtx is BellmanFordBranchAvoidingInto with
// cooperative cancellation at sweep boundaries (see
// BellmanFordBranchBasedCtx).
func BellmanFordBranchAvoidingCtx(ctx context.Context, g *graph.Weighted, src uint32, dist []uint64) ([]uint64, Stats, error) {
	n := g.NumVertices()
	dist = initDist(dist, n, src)
	var st Stats
	adj := g.Adjacency()
	ws := g.ArcWeights()
	offs := g.Offsets()

	for change := uint64(1); change != 0; {
		if err := ctx.Err(); err != nil {
			return dist, st, err
		}
		change = 0
		changed := 0
		start := time.Now()
		//ba:branch-free
		for v := 0; v < n; v++ {
			dinit := dist[v]
			dv := dinit
			for j := offs[v]; j < offs[v+1]; j++ {
				u := adj[j]
				cand := dist[u] + uint64(ws[j])
				m := core.MaskLess64(cand, dv)
				dv = core.Select64(m, cand, dv)
			}
			dist[v] = dv
			st.DistStores++
			diff := dv ^ dinit
			change |= diff
			changed += int(core.Bit64(^core.MaskEqual64(diff, 0)))
		}
		st.PassDurations = append(st.PassDurations, time.Since(start))
		st.PassChanges = append(st.PassChanges, changed)
		st.Passes++
	}
	return dist, st, nil
}

// Dijkstra computes shortest-path distances with a binary-heap priority
// queue — the oracle the Bellman-Ford kernels are validated against.
func Dijkstra(g *graph.Weighted, src uint32) []uint64 {
	return DijkstraInto(g, src, nil)
}

// DijkstraInto is Dijkstra writing into dist when it has length |V| (the
// returned slice aliases it); any other length allocates.
func DijkstraInto(g *graph.Weighted, src uint32, dist []uint64) []uint64 {
	out, _ := DijkstraCtx(context.Background(), g, src, dist)
	return out
}

// dijkstraCancelStride is how many settled vertices pass between
// context checks in DijkstraCtx. Dijkstra has no pass structure to
// hang a barrier on, so the check runs on a vertex-count stride —
// rare enough to stay invisible in the settle loop's profile.
const dijkstraCancelStride = 4096

// DijkstraCtx is DijkstraInto with cooperative cancellation, observed
// every dijkstraCancelStride settled vertices.
func DijkstraCtx(ctx context.Context, g *graph.Weighted, src uint32, dist []uint64) ([]uint64, error) {
	n := g.NumVertices()
	dist = initDist(dist, n, src)
	if n == 0 {
		return dist, ctx.Err()
	}
	h := heap.NewMin(n)
	h.Push(src, 0)
	settled := make([]bool, n)
	settles := 0
	for h.Len() > 0 {
		if settles%dijkstraCancelStride == 0 {
			if err := ctx.Err(); err != nil {
				return dist, err
			}
		}
		settles++
		v, dv := h.Pop()
		if settled[v] {
			continue
		}
		settled[v] = true
		adj, ws := g.NeighborWeights(v)
		for i, u := range adj {
			if settled[u] {
				continue
			}
			cand := dv + uint64(ws[i])
			if cand < dist[u] {
				dist[u] = cand
				h.PushOrDecrease(u, cand)
			}
		}
	}
	return dist, nil
}

// Verify checks that dist is the shortest-path distance labeling from
// src: the source is 0, every edge is "relaxed" (no edge offers a
// shortcut), and every reachable non-source vertex has a tight incoming
// edge (a predecessor on a shortest path).
func Verify(g *graph.Weighted, src uint32, dist []uint64) error {
	n := g.NumVertices()
	if len(dist) != n {
		return fmt.Errorf("sssp: %d distances for %d vertices", len(dist), n)
	}
	if n == 0 {
		return nil
	}
	if dist[src] != 0 {
		return fmt.Errorf("sssp: dist[src=%d] = %d", src, dist[src])
	}
	for v := 0; v < n; v++ {
		adj, ws := g.NeighborWeights(uint32(v))
		for i, u := range adj {
			if dist[u] == Inf {
				continue
			}
			if dist[u]+uint64(ws[i]) < dist[v] {
				return fmt.Errorf("sssp: edge (%d,%d,w=%d) not relaxed: %d + %d < %d",
					u, v, ws[i], dist[u], ws[i], dist[v])
			}
		}
	}
	for v := 0; v < n; v++ {
		if dist[v] == Inf || dist[v] == 0 || uint32(v) == src {
			continue
		}
		tight := false
		adj, ws := g.NeighborWeights(uint32(v))
		for i, u := range adj {
			if dist[u] != Inf && dist[u]+uint64(ws[i]) == dist[v] {
				tight = true
				break
			}
		}
		if !tight {
			return fmt.Errorf("sssp: vertex %d at distance %d has no tight predecessor", v, dist[v])
		}
	}
	return nil
}
