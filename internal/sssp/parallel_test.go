package sssp

import (
	"fmt"
	"testing"

	"bagraph/internal/graph"
	"bagraph/internal/par"
	"bagraph/internal/testutil"
)

// TestParallelMatchesDijkstra is the acceptance property: every
// relaxation variant, every worker count, every corpus graph — the
// delta-stepping kernel must reproduce the Dijkstra oracle element for
// element.
func TestParallelMatchesDijkstra(t *testing.T) {
	testutil.ForEachWeighted(t, nil, func(t *testing.T, g *graph.Weighted) {
		want := Dijkstra(g, 0)
		if g.NumVertices() > 0 {
			if err := Verify(g, 0, want); err != nil {
				t.Fatalf("dijkstra oracle invalid: %v", err)
			}
		}
		for _, variant := range []Variant{BranchBased, BranchAvoiding, Hybrid} {
			for _, workers := range testutil.WorkerCounts {
				name := fmt.Sprintf("%s/w%d", variant, workers)
				dist, st, _ := Parallel(g, 0, ParallelOptions{Workers: workers, Variant: variant})
				testutil.MustEqualDists(t, name, dist, want)
				if g.NumVertices() > 0 {
					if err := Verify(g, 0, dist); err != nil {
						t.Fatalf("%s: %v", name, err)
					}
					if st.Passes == 0 || st.Buckets == 0 {
						t.Fatalf("%s: no passes/buckets recorded (%d/%d)", name, st.Passes, st.Buckets)
					}
				}
			}
		}
	})
}

// TestParallelDeltaSweep pins that correctness is independent of the
// bucket width: tiny deltas (many buckets, Dijkstra-like) and huge
// deltas (one bucket, Bellman-Ford-like) must agree with the oracle.
func TestParallelDeltaSweep(t *testing.T) {
	g := testutil.RandomWeighted(300, 900, 50, 7)
	want := Dijkstra(g, 3)
	for _, delta := range []uint64{1, 2, 16, 1 << 20} {
		for _, variant := range []Variant{BranchBased, BranchAvoiding, Hybrid} {
			dist, _, _ := Parallel(g, 3, ParallelOptions{Workers: 4, Variant: variant, Delta: delta})
			testutil.MustEqualDists(t, fmt.Sprintf("delta=%d/%s", delta, variant), dist, want)
		}
	}
}

// TestParallelLightHeavyMatchesDijkstra: the light/heavy split must
// not change a single distance, for every variant, schedule, worker
// count and bucket width — only the relaxation schedule moves.
func TestParallelLightHeavyMatchesDijkstra(t *testing.T) {
	testutil.ForEachWeighted(t, nil, func(t *testing.T, g *graph.Weighted) {
		want := Dijkstra(g, 0)
		for _, variant := range []Variant{BranchBased, BranchAvoiding, Hybrid} {
			for _, sched := range []par.Schedule{par.Static, par.Stealing} {
				for _, workers := range []int{1, 4} {
					name := fmt.Sprintf("%s/%v/w%d", variant, sched, workers)
					dist, _, _ := Parallel(g, 0, ParallelOptions{
						Workers: workers, Variant: variant,
						LightHeavy: true, Schedule: sched,
					})
					testutil.MustEqualDists(t, name, dist, want)
				}
			}
		}
	})
}

// TestParallelLightHeavySplitsWork pins that the split actually
// reroutes relaxations: with weights well above the bucket width, the
// heavy pass must apply a non-trivial share of them, and the unsplit
// run must count everything as light.
func TestParallelLightHeavySplitsWork(t *testing.T) {
	g := testutil.RandomWeighted(300, 1200, 100, 17)
	want := Dijkstra(g, 0)
	dist, split, _ := Parallel(g, 0, ParallelOptions{
		Workers: 2, LightHeavy: true, Delta: 8,
	})
	testutil.MustEqualDists(t, "light-heavy delta=8", dist, want)
	if split.HeavyRelaxed == 0 {
		t.Fatal("no heavy relaxations despite weights far above delta")
	}
	if split.LightRelaxed == 0 {
		t.Fatal("no light relaxations")
	}
	_, unsplit, _ := Parallel(g, 0, ParallelOptions{Workers: 2, Delta: 8})
	if unsplit.HeavyRelaxed != 0 {
		t.Fatalf("unsplit run counted %d heavy relaxations", unsplit.HeavyRelaxed)
	}
	if unsplit.LightRelaxed == 0 {
		t.Fatal("unsplit run counted no relaxations")
	}
	// Deferring heavy arcs to one bucket-close pass must not do MORE
	// relaxation work than re-scanning them every in-bucket pass.
	if split.LightRelaxed+split.HeavyRelaxed > unsplit.LightRelaxed {
		t.Fatalf("split applied %d+%d relaxations, unsplit %d",
			split.LightRelaxed, split.HeavyRelaxed, unsplit.LightRelaxed)
	}
}

// TestParallelNonZeroSourceAndBuffer covers non-zero sources and the
// Dist reuse contract: a |V|-length buffer is aliased, anything else
// allocates.
func TestParallelNonZeroSourceAndBuffer(t *testing.T) {
	g := testutil.RandomWeighted(200, 700, 30, 9)
	n := g.NumVertices()
	buf := make([]uint64, n)
	for _, src := range []uint32{1, 17, uint32(n - 1)} {
		want := Dijkstra(g, src)
		dist, _, _ := Parallel(g, src, ParallelOptions{Workers: 3, Dist: buf})
		if &dist[0] != &buf[0] {
			t.Fatal("result does not alias the caller buffer")
		}
		testutil.MustEqualDists(t, fmt.Sprintf("src=%d", src), dist, want)
	}
	small := make([]uint64, 3)
	dist, _, _ := Parallel(g, 0, ParallelOptions{Workers: 2, Dist: small})
	if len(dist) != n {
		t.Fatalf("wrong-size buffer: len=%d, want %d", len(dist), n)
	}
}

// TestParallelSharedPool reuses one resident pool across runs; the
// kernel must not close it and repeated runs must stay correct.
func TestParallelSharedPool(t *testing.T) {
	pool := par.NewPool(4)
	defer pool.Close()
	g := testutil.RandomWeighted(150, 500, 20, 11)
	want := Dijkstra(g, 0)
	for run := 0; run < 3; run++ {
		dist, _, _ := Parallel(g, 0, ParallelOptions{Pool: pool, Variant: Hybrid})
		testutil.MustEqualDists(t, fmt.Sprintf("run%d", run), dist, want)
	}
}

// TestParallelStoreAsymmetry pins the paper's headline on the scatter
// phase: the branch-avoiding loop stores one candidate per scanned
// arc, the branch-based loop only per improvement.
func TestParallelStoreAsymmetry(t *testing.T) {
	g := testutil.RandomWeighted(400, 1600, 9, 13)
	_, bb, _ := Parallel(g, 0, ParallelOptions{Workers: 2, Variant: BranchBased})
	_, ba, _ := Parallel(g, 0, ParallelOptions{Workers: 2, Variant: BranchAvoiding})
	if ba.CandStores <= bb.CandStores {
		t.Fatalf("BA cand stores = %d, not above BB's %d", ba.CandStores, bb.CandStores)
	}
	if bb.CandStores == 0 {
		t.Fatal("BB recorded no candidate stores")
	}
	if bb.Total() <= 0 || ba.Total() <= 0 {
		t.Fatal("no pass time recorded")
	}
}

// TestParallelOutOfRangeSource mirrors the sequential kernels: an
// out-of-range source yields an all-Inf labeling rather than a panic.
func TestParallelOutOfRangeSource(t *testing.T) {
	g := graph.MustBuildWeighted(3, []graph.WeightedEdge{{U: 0, V: 1, W: 2}}, false, "tiny")
	dist, st, _ := Parallel(g, 9, ParallelOptions{Workers: 2})
	for v, d := range dist {
		if d != Inf {
			t.Fatalf("dist[%d] = %d, want Inf", v, d)
		}
	}
	if st.Passes != 0 {
		t.Fatalf("passes = %d for out-of-range source", st.Passes)
	}
}

// TestVariantString pins the canonical names the CLI and daemon expose.
func TestVariantString(t *testing.T) {
	for v, want := range map[Variant]string{
		BranchBased: "branch-based", BranchAvoiding: "branch-avoiding",
		Hybrid: "hybrid", Variant(42): "unknown",
	} {
		if got := v.String(); got != want {
			t.Errorf("Variant(%d).String() = %q, want %q", int(v), got, want)
		}
	}
}
