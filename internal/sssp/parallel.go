package sssp

// Parallel weighted SSSP on the internal/par engine: a delta-stepping
// style kernel with the paper's branch-based / branch-avoiding / hybrid
// relaxation inner loops.
//
// The sequential Bellman-Ford kernels in sssp.go sweep every vertex
// every pass. The parallel kernel instead keeps the classic
// delta-stepping shape: tentative distances bucket vertices by
// dist/delta, buckets are processed in nondecreasing order, and each
// relaxation pass pushes only the current bucket's frontier. The
// light/heavy edge split of Meyer & Sanders is available behind
// ParallelOptions.LightHeavy: in-bucket passes then relax only light
// arcs (weight <= delta, the only ones that can re-fill the current
// bucket) and each settled vertex's heavy arcs relax exactly once at
// bucket close, instead of being re-scanned by every in-bucket pass.
// The weight-class test folds into the relaxation mask, so the
// branch-avoiding inner loop stays branch-free either way.
//
// Each pass is a scatter + merge, mirroring how the other engine
// kernels stay race-free without per-element atomics:
//
//   - Scatter (parallel): the frontier is partitioned into
//     degree-balanced ranges (par.Partition over the frontier's own arc
//     prefix array). Every worker walks its range's out-edges against
//     the immutable distance array and emits improving candidates
//     (vertex, proposed distance) into a private buffer. The relaxation
//     test "cand < dist[u]" is the data-dependent branch the paper
//     measures, and the variants differ exactly here: the branch-based
//     loop appends behind a conditional; the branch-avoiding loop
//     performs the paper's Algorithm 5 trick — an unconditional store
//     to the buffer tail plus a mask-computed tail increment — so the
//     candidate buffer plays the role BFS's queue plays in §5.2, stores
//     growing from O(improvements) to O(frontier arcs).
//
//   - Merge (at the pass barrier): per-worker candidate buffers are
//     folded into the distance array with a min, newly improved
//     vertices are re-bucketed by their new distance, and the buffers
//     reset. The merge is the barrier-time accumulator fold every
//     engine kernel performs (cc merges change counts, parallel BFS
//     concatenates queues); candidates are a small filtered subset of
//     the scanned arcs, so the sequential fold is off the critical
//     path.
//
// Correctness does not depend on delta: any improvement re-activates
// its vertex, so the kernel terminates only at the relaxation fixed
// point — the same labeling Dijkstra produces. Delta only tunes how
// much wasted re-relaxation the schedule admits. Candidates produced
// while processing bucket b have distance >= b*delta (weights are
// non-negative), so buckets are visited in nondecreasing order.

import (
	"context"
	"math/bits"
	"time"

	"bagraph/internal/bitset"
	"bagraph/internal/core"
	"bagraph/internal/graph"
	"bagraph/internal/par"
)

// Variant selects the relaxation inner loop of Parallel.
type Variant int

const (
	// BranchBased tests each relaxation with a conditional branch (the
	// weighted analogue of the paper's Algorithm 2 comparison).
	BranchBased Variant = iota
	// BranchAvoiding emits every candidate with an unconditional store
	// and a mask-selected tail increment (the Algorithm 3/5
	// conditional-move transformation): no data-dependent branch in the
	// scatter loop.
	BranchAvoiding
	// Hybrid relaxes branch-avoidingly while improvements are frequent
	// (the branch is unpredictable) and switches to the branch-based
	// loop once the per-pass improvement rate drops below
	// ParallelOptions.ChangeFraction — the paper's §6.2 crossover,
	// applied to the relaxation success rate.
	Hybrid
)

// String implements fmt.Stringer.
func (v Variant) String() string {
	switch v {
	case BranchBased:
		return "branch-based"
	case BranchAvoiding:
		return "branch-avoiding"
	case Hybrid:
		return "hybrid"
	default:
		return "unknown"
	}
}

// ParallelOptions configures Parallel.
type ParallelOptions struct {
	// Ctx, when non-nil, cancels the run cooperatively: it is observed
	// at each scatter/merge pass barrier (workers never see it) and a
	// cancelled run returns the tentative distances computed so far
	// alongside the context's error.
	Ctx context.Context
	// Workers is the number of concurrent workers; < 1 means GOMAXPROCS.
	Workers int
	// Variant selects the relaxation inner loop (default BranchBased).
	Variant Variant
	// Delta is the bucket width; it is rounded up to a power of two.
	// 0 picks the default: the smallest power of two >= the mean arc
	// weight, which makes unit-weight graphs run one bucket per hop
	// level (BFS-like) and keeps re-relaxation bounded on weighted
	// inputs.
	Delta uint64
	// ChangeFraction is the Hybrid switch threshold: once a pass's
	// improved-vertex count falls below this fraction of the arcs it
	// scanned, the relaxation branch has become predictable and later
	// passes run branch-based. 0 means the default of 2%.
	ChangeFraction float64
	// LightHeavy enables the Meyer & Sanders light/heavy edge split:
	// in-bucket passes relax only light arcs (weight <= delta, the only
	// ones that can re-fill the current bucket), and each vertex's
	// heavy arcs are relaxed exactly once when its bucket closes —
	// instead of every inner pass re-scanning them. The distances are
	// byte-identical either way; what changes is the wasted
	// re-relaxation volume, visible in Stats.HeavyRelaxed vs the
	// repeated scans it replaces.
	LightHeavy bool
	// Schedule selects how each scatter pass's frontier chunks reach
	// the workers: par.Static (the default) fixes one degree-balanced
	// block per worker; par.Stealing over-decomposes the frontier and
	// lets idle workers steal whole chunks from stragglers. Both
	// schedules produce byte-identical distances.
	Schedule par.Schedule
	// ChunkFactor scales the Stealing schedule's chunks per worker;
	// 0 means par.DefaultChunkFactor. Ignored under par.Static.
	ChunkFactor int
	// Pool, when non-nil, supplies the worker pool (its size overrides
	// Workers). The caller keeps ownership; Parallel will not close it.
	Pool *par.Pool
	// Dist, when of length |V|, receives the distances and suppresses
	// the per-call result allocation; its prior contents are
	// overwritten. The returned slice aliases it. Long-lived callers
	// (the serving layer) reuse this across queries.
	Dist []uint64
}

// candidate is one proposed relaxation: a target vertex and the
// distance some frontier vertex offers it. Candidates are produced in
// parallel and folded into the distance array at the pass barrier.
type candidate struct {
	v uint32
	d uint64
}

// DefaultDelta returns the bucket width Parallel uses when
// ParallelOptions.Delta is zero: the smallest power of two >= the mean
// arc weight. It costs one pass over the weight array; long-lived
// callers holding an immutable graph (the serving layer) compute it
// once and pass it through ParallelOptions.Delta instead of paying
// the sweep per query.
func DefaultDelta(g *graph.Weighted) uint64 {
	arcs := g.NumArcs()
	if arcs == 0 {
		return 1
	}
	var total uint64
	for _, w := range g.ArcWeights() {
		total += uint64(w)
	}
	mean := total / uint64(arcs)
	if mean <= 1 {
		return 1
	}
	return uint64(1) << uint(bits.Len64(mean-1))
}

// deltaShift resolves the bucket width to a shift amount.
func deltaShift(delta uint64, g *graph.Weighted) uint {
	if delta == 0 {
		delta = DefaultDelta(g)
	}
	if delta <= 1 {
		return 0
	}
	return uint(bits.Len64(delta - 1))
}

// Parallel computes shortest-path distances from src with the
// delta-stepping engine kernel; the result is element-for-element
// identical to Dijkstra's for every variant. A cancelled
// ParallelOptions.Ctx is observed at the next pass barrier and
// returned as the error.
func Parallel(g *graph.Weighted, src uint32, opt ParallelOptions) ([]uint64, Stats, error) {
	ctx := opt.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	n := g.NumVertices()
	dist := initDist(opt.Dist, n, src)
	var st Stats
	if n == 0 || int(src) >= n {
		return dist, st, ctx.Err()
	}
	pool := opt.Pool
	if pool == nil {
		pool = par.NewPool(opt.Workers)
		defer pool.Close()
	}
	adj := g.Adjacency()
	ws := g.ArcWeights()
	offs := g.Offsets()
	shift := deltaShift(opt.Delta, g)

	threshold := opt.ChangeFraction
	if threshold == 0 {
		threshold = 0.02
	}
	avoiding := opt.Variant == BranchAvoiding || opt.Variant == Hybrid

	// The light/heavy split: arcs with weight < lightCut relax in the
	// in-bucket passes, the rest wait for the one heavy pass at bucket
	// close. Without the split every arc is "light". The cut stays in
	// MaskLess64's domain (operands <= 2^62) and above any uint32
	// weight when the split is off or delta already exceeds all
	// weights — 2^33 does both.
	const allLight = uint64(1) << 33
	delta := uint64(1) << shift
	split := opt.LightHeavy
	lightCut := allLight
	if split && delta < allLight-1 {
		lightCut = delta + 1
	}

	// buckets[b] holds vertices pending relaxation whose distance fell
	// into [b<<shift, (b+1)<<shift) when they improved. Entries go
	// stale when a vertex improves again; staleness is filtered at pop
	// time against the vertex's current bucket, so duplicates are
	// harmless. order is a lazy min-heap of bucket ids (pushed when a
	// key first appears, stale ids skipped at pop), so finding the next
	// bucket costs O(log B) instead of a full key scan per activation.
	buckets := map[uint64][]uint32{0: {src}}
	order := bucketHeap{0}

	nw := pool.Workers()
	chunkTarget := par.ChunkCount(nw, opt.Schedule, opt.ChunkFactor)
	cands := make([][]candidate, nw)
	candStores := make([]uint64, nw) // per-worker, merged at the barrier
	// sink publishes each worker's prefetch-lookahead accumulator (see
	// the scatter loops) so the early loads stay live; written once per
	// chunk, never read.
	sink := make([]uint64, nw)
	frontier := make([]uint32, 0, 64)
	// fronOffs is the frontier's private arc-count prefix array; feeding
	// it to par.Partition degree-balances the scatter chunks exactly as
	// the whole-graph kernels balance vertex ranges.
	fronOffs := make([]int64, 1, 65)
	inFrontier := bitset.New(n)
	changed := make([]uint32, 0, 64) // vertices improved this pass
	changedBits := bitset.New(n)

	// settled collects the current bucket's processed vertices for the
	// heavy close pass; settledBits dedupes re-activations within the
	// bucket (a vertex's heavy arcs relax once, at its final in-bucket
	// distance).
	var settled []uint32
	var setOffs []int64
	var settledBits *bitset.Set
	if split {
		settled = make([]uint32, 0, 64)
		setOffs = make([]int64, 1, 65)
		settledBits = bitset.New(n)
	}

	// relaxPass is one scatter + merge over verts (with its arc-count
	// prefix vOffs): scatter the wanted weight class of every vert's
	// arcs against the immutable distance array into per-worker
	// candidate buffers, fold them in at the barrier, and re-bucket the
	// improved set. Chunks are degree-balanced; under par.Stealing idle
	// workers take whole chunks from stragglers (an RMAT hub's chunk
	// can no longer stall the pass barrier behind it).
	relaxPass := func(verts []uint32, vOffs []int64, heavy bool) (int, error) {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		start := time.Now()
		scanned := vOffs[len(vOffs)-1]
		chunks := par.Partition(vOffs, chunkTarget, 1)
		// Workers fill private candidate buffers; all folding happens at
		// the pass barrier below.
		//ba:atomic-free
		cst := pool.RunChunks(chunks, opt.Schedule, func(t int, r par.Range) {
			buf := cands[t]
			stores := candStores[t]
			if avoiding {
				pf := uint64(0)
				for _, v := range verts[r.Lo:r.Hi] {
					dv := dist[v]
					lo, hi := offs[v], offs[v+1]
					// Room for the unconditional tail stores: every
					// edge writes a slot, the mask decides whether
					// the tail keeps it.
					need := len(buf) + int(hi-lo)
					if cap(buf) < need {
						nb := make([]candidate, len(buf), need+need/2)
						copy(nb, buf)
						buf = nb
					}
					buf = buf[:need]
					tail := need - int(hi-lo)
					// The weight-class selection is per vertex and
					// loop-invariant: without the split the inner loop
					// is exactly the paper's op mix, with it the class
					// test folds into the relaxation mask. Each case
					// runs software-prefetch shaped: the scatter's miss
					// is the dependent dist[adj[j]] load, so the main
					// loop issues the load core.Lookahead arcs ahead
					// into an accumulator before consuming arc j, with
					// a mask-free tail loop finishing the row — no
					// data-dependent branch appears either way.
					la := hi - core.Lookahead
					switch {
					case !split:
						j := lo
						//ba:branch-free
						for ; j < la; j++ {
							pf ^= dist[adj[j+core.Lookahead]]
							u := adj[j]
							c := dv + uint64(ws[j])
							m := core.MaskLess64(c, dist[u])
							buf[tail] = candidate{u, c}
							tail += int(core.Bit64(m))
						}
						//ba:branch-free
						for ; j < hi; j++ {
							u := adj[j]
							c := dv + uint64(ws[j])
							m := core.MaskLess64(c, dist[u])
							buf[tail] = candidate{u, c}
							tail += int(core.Bit64(m))
						}
					case heavy:
						j := lo
						//ba:branch-free
						for ; j < la; j++ {
							pf ^= dist[adj[j+core.Lookahead]]
							u := adj[j]
							c := dv + uint64(ws[j])
							m := core.MaskLess64(c, dist[u]) &^ core.MaskLess64(uint64(ws[j]), lightCut)
							buf[tail] = candidate{u, c}
							tail += int(core.Bit64(m))
						}
						//ba:branch-free
						for ; j < hi; j++ {
							u := adj[j]
							c := dv + uint64(ws[j])
							m := core.MaskLess64(c, dist[u]) &^ core.MaskLess64(uint64(ws[j]), lightCut)
							buf[tail] = candidate{u, c}
							tail += int(core.Bit64(m))
						}
					default:
						j := lo
						//ba:branch-free
						for ; j < la; j++ {
							pf ^= dist[adj[j+core.Lookahead]]
							u := adj[j]
							c := dv + uint64(ws[j])
							m := core.MaskLess64(c, dist[u]) & core.MaskLess64(uint64(ws[j]), lightCut)
							buf[tail] = candidate{u, c}
							tail += int(core.Bit64(m))
						}
						//ba:branch-free
						for ; j < hi; j++ {
							u := adj[j]
							c := dv + uint64(ws[j])
							m := core.MaskLess64(c, dist[u]) & core.MaskLess64(uint64(ws[j]), lightCut)
							buf[tail] = candidate{u, c}
							tail += int(core.Bit64(m))
						}
					}
					stores += uint64(hi - lo)
					buf = buf[:tail]
				}
				sink[t] ^= pf
			} else {
				for _, v := range verts[r.Lo:r.Hi] {
					dv := dist[v]
					switch {
					case !split:
						for j := offs[v]; j < offs[v+1]; j++ {
							u := adj[j]
							c := dv + uint64(ws[j])
							if c < dist[u] {
								buf = append(buf, candidate{u, c})
								stores++
							}
						}
					case heavy:
						for j := offs[v]; j < offs[v+1]; j++ {
							u := adj[j]
							c := dv + uint64(ws[j])
							if uint64(ws[j]) >= lightCut && c < dist[u] {
								buf = append(buf, candidate{u, c})
								stores++
							}
						}
					default:
						for j := offs[v]; j < offs[v+1]; j++ {
							u := adj[j]
							c := dv + uint64(ws[j])
							if uint64(ws[j]) < lightCut && c < dist[u] {
								buf = append(buf, candidate{u, c})
								stores++
							}
						}
					}
				}
			}
			cands[t] = buf
			candStores[t] = stores
		})
		st.Chunks += cst.Chunks
		st.Steals += cst.Steals
		st.StealPasses += cst.StealPasses

		// Merge at the barrier: fold candidates into the distance
		// array (min), collect the improved set, re-bucket it by
		// its final post-pass distances.
		relaxed := uint64(0)
		changed = changed[:0]
		for t := range cands {
			st.CandStores += candStores[t]
			candStores[t] = 0
			if avoiding {
				for _, c := range cands[t] {
					dv := dist[c.v]
					m := core.MaskLess64(c.d, dv)
					dist[c.v] = core.Select64(m, c.d, dv)
					st.DistStores++
					if m != 0 {
						relaxed++
						if !changedBits.TestAndSet(int(c.v)) {
							changed = append(changed, c.v)
						}
					}
				}
			} else {
				for _, c := range cands[t] {
					if c.d < dist[c.v] {
						dist[c.v] = c.d
						st.DistStores++
						relaxed++
						if !changedBits.TestAndSet(int(c.v)) {
							changed = append(changed, c.v)
						}
					}
				}
			}
			cands[t] = cands[t][:0]
		}
		if heavy {
			st.HeavyRelaxed += relaxed
		} else {
			st.LightRelaxed += relaxed
		}
		for _, v := range changed {
			changedBits.Clear(int(v))
			b := dist[v] >> shift
			if _, live := buckets[b]; !live {
				order.push(b)
			}
			buckets[b] = append(buckets[b], v)
		}
		st.PassDurations = append(st.PassDurations, time.Since(start))
		st.PassChanges = append(st.PassChanges, len(changed))
		st.Passes++
		if opt.Variant == Hybrid && avoiding && scanned > 0 &&
			float64(len(changed)) < threshold*float64(scanned) {
			avoiding = false
		}
		return len(changed), nil
	}

	for len(buckets) > 0 {
		// The lowest pending bucket; candidate distances never fall
		// below the current bucket floor, so this advances
		// monotonically.
		cur, ok := order.popLive(buckets)
		if !ok {
			break // unreachable: every map key has a heap id
		}
		st.Buckets++

		for {
			pending := buckets[cur]
			delete(buckets, cur)
			frontier = frontier[:0]
			fronOffs = fronOffs[:1]
			for _, v := range pending {
				if dist[v]>>shift != cur || inFrontier.Test(int(v)) {
					continue
				}
				inFrontier.Set(int(v))
				frontier = append(frontier, v)
				fronOffs = append(fronOffs, fronOffs[len(fronOffs)-1]+offs[v+1]-offs[v])
			}
			if len(frontier) == 0 {
				break
			}
			for _, v := range frontier {
				inFrontier.Clear(int(v))
			}
			if split {
				for _, v := range frontier {
					if !settledBits.TestAndSet(int(v)) {
						settled = append(settled, v)
					}
				}
			}

			// In-bucket pass: light arcs only (they alone can re-fill
			// the current bucket; without the split, all arcs).
			if _, err := relaxPass(frontier, fronOffs, false); err != nil {
				return dist, st, err
			}
			// Improvements may have re-filled the current bucket
			// (short edges); drain it before moving on.
			if _, again := buckets[cur]; !again {
				break
			}
		}

		// Bucket close: the settled vertices' distances are final (heavy
		// arcs reach strictly later buckets, later buckets never improve
		// earlier ones), so each vertex's heavy arcs relax exactly once.
		if split && len(settled) > 0 {
			setOffs = setOffs[:1]
			for _, v := range settled {
				setOffs = append(setOffs, setOffs[len(setOffs)-1]+offs[v+1]-offs[v])
			}
			if _, err := relaxPass(settled, setOffs, true); err != nil {
				return dist, st, err
			}
			for _, v := range settled {
				settledBits.Clear(int(v))
			}
			settled = settled[:0]
		}
	}
	return dist, st, nil
}

// bucketHeap is a binary min-heap of bucket ids. It is lazy: an id is
// pushed whenever its bucket key is (re)created, so after a bucket is
// drained and re-filled the heap can hold stale duplicates — popLive
// discards ids with no live bucket instead of keeping the heap exact.
type bucketHeap []uint64

func (h *bucketHeap) push(b uint64) {
	q := *h
	q = append(q, b)
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if q[parent] <= q[i] {
			break
		}
		q[parent], q[i] = q[i], q[parent]
		i = parent
	}
	*h = q
}

// popLive removes and returns the smallest id that is a live key of
// buckets, discarding stale entries along the way.
func (h *bucketHeap) popLive(buckets map[uint64][]uint32) (uint64, bool) {
	q := *h
	for len(q) > 0 {
		top := q[0]
		last := len(q) - 1
		q[0] = q[last]
		q = q[:last]
		i := 0
		for {
			l, r := 2*i+1, 2*i+2
			smallest := i
			if l < len(q) && q[l] < q[smallest] {
				smallest = l
			}
			if r < len(q) && q[r] < q[smallest] {
				smallest = r
			}
			if smallest == i {
				break
			}
			q[i], q[smallest] = q[smallest], q[i]
			i = smallest
		}
		if _, live := buckets[top]; live {
			*h = q
			return top, true
		}
	}
	*h = q
	return 0, false
}
