package sssp

import (
	"testing"
	"testing/quick"

	"bagraph/internal/gen"
	"bagraph/internal/graph"
	"bagraph/internal/xrand"
)

// weightedRandom builds a random connected-ish weighted graph.
func weightedRandom(n, m int, maxW uint32, seed uint64) *graph.Weighted {
	r := xrand.New(seed)
	edges := make([]graph.WeightedEdge, 0, m+n)
	// A random spanning path keeps most graphs connected.
	perm := r.Perm(n)
	for i := 0; i+1 < n; i++ {
		edges = append(edges, graph.WeightedEdge{
			U: uint32(perm[i]), V: uint32(perm[i+1]), W: 1 + r.Uint32()%maxW,
		})
	}
	for i := 0; i < m; i++ {
		edges = append(edges, graph.WeightedEdge{
			U: uint32(r.Intn(n)), V: uint32(r.Intn(n)), W: 1 + r.Uint32()%maxW,
		})
	}
	return graph.MustBuildWeighted(n, edges, false, "wrand")
}

func weightedFromUnweighted(t *testing.T, g *graph.Graph, seed uint64) *graph.Weighted {
	t.Helper()
	w, err := graph.AttachWeights(g, func(u, v uint32) uint32 {
		if u > v {
			u, v = v, u
		}
		return uint32(xrand.Hash64(seed^uint64(u)<<32|uint64(v)))%50 + 1
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestKernelsAgreeWithDijkstra(t *testing.T) {
	graphs := []*graph.Weighted{
		weightedRandom(50, 120, 10, 1),
		weightedRandom(200, 600, 100, 2),
		weightedFromUnweighted(t, gen.Grid2D(8, 9, false), 3),
		weightedFromUnweighted(t, gen.BarabasiAlbert(150, 3, 4), 5),
		graph.MustBuildWeighted(4, []graph.WeightedEdge{{U: 0, V: 1, W: 10}, {U: 0, V: 2, W: 1}, {U: 2, V: 1, W: 1}}, false, "shortcut"),
	}
	for _, g := range graphs {
		want := Dijkstra(g, 0)
		bb, stBB := BellmanFordBranchBased(g, 0)
		ba, stBA := BellmanFordBranchAvoiding(g, 0)
		if err := Verify(g, 0, want); err != nil {
			t.Fatalf("%s: dijkstra oracle invalid: %v", g, err)
		}
		for v := range want {
			if bb[v] != want[v] {
				t.Fatalf("%s: branch-based dist[%d] = %d, dijkstra %d", g, v, bb[v], want[v])
			}
			if ba[v] != want[v] {
				t.Fatalf("%s: branch-avoiding dist[%d] = %d, dijkstra %d", g, v, ba[v], want[v])
			}
		}
		// Both BF variants sweep identically.
		if stBB.Passes != stBA.Passes {
			t.Fatalf("%s: passes differ: %d vs %d", g, stBB.Passes, stBA.Passes)
		}
	}
}

func TestAgreementProperty(t *testing.T) {
	f := func(seed uint64) bool {
		n := 10 + int(seed%80)
		g := weightedRandom(n, 2*n, 20, seed)
		src := uint32(seed % uint64(n))
		want := Dijkstra(g, src)
		bb, _ := BellmanFordBranchBased(g, src)
		ba, _ := BellmanFordBranchAvoiding(g, src)
		for v := range want {
			if bb[v] != want[v] || ba[v] != want[v] {
				return false
			}
		}
		return Verify(g, src, want) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestStoreAsymmetry(t *testing.T) {
	// Branch-avoiding stores exactly |V| per pass; branch-based stores
	// per improvement.
	g := weightedFromUnweighted(t, gen.Grid3D(6, 6, 6, 1), 7)
	_, bb := BellmanFordBranchBased(g, 0)
	_, ba := BellmanFordBranchAvoiding(g, 0)
	v := uint64(g.NumVertices())
	if ba.DistStores != v*uint64(ba.Passes) {
		t.Fatalf("BA stores = %d, want %d", ba.DistStores, v*uint64(ba.Passes))
	}
	if bb.DistStores == 0 || bb.DistStores == ba.DistStores {
		t.Fatalf("BB stores = %d, suspicious", bb.DistStores)
	}
	// Final sweep changes nothing.
	if bb.PassChanges[bb.Passes-1] != 0 || ba.PassChanges[ba.Passes-1] != 0 {
		t.Fatal("final sweep reported changes")
	}
	if bb.Total() <= 0 {
		t.Fatal("no time recorded")
	}
}

func TestPassChangesAgree(t *testing.T) {
	g := weightedRandom(120, 400, 9, 11)
	_, bb := BellmanFordBranchBased(g, 5)
	_, ba := BellmanFordBranchAvoiding(g, 5)
	for i := range bb.PassChanges {
		if bb.PassChanges[i] != ba.PassChanges[i] {
			t.Fatalf("pass %d: changes %d vs %d", i, bb.PassChanges[i], ba.PassChanges[i])
		}
	}
}

func TestDisconnected(t *testing.T) {
	g := graph.MustBuildWeighted(4, []graph.WeightedEdge{{U: 0, V: 1, W: 3}, {U: 2, V: 3, W: 4}}, false, "2comp")
	for _, f := range []func(*graph.Weighted, uint32) ([]uint64, Stats){BellmanFordBranchBased, BellmanFordBranchAvoiding} {
		dist, _ := f(g, 0)
		if dist[2] != Inf || dist[3] != Inf {
			t.Fatal("unreachable vertices not Inf")
		}
		if dist[1] != 3 {
			t.Fatalf("dist[1] = %d", dist[1])
		}
	}
	d := Dijkstra(g, 0)
	if d[2] != Inf {
		t.Fatal("dijkstra reached other component")
	}
}

func TestZeroWeightEdges(t *testing.T) {
	g := graph.MustBuildWeighted(3, []graph.WeightedEdge{{U: 0, V: 1, W: 0}, {U: 1, V: 2, W: 0}}, false, "zeros")
	for _, f := range []func(*graph.Weighted, uint32) ([]uint64, Stats){BellmanFordBranchBased, BellmanFordBranchAvoiding} {
		dist, _ := f(g, 0)
		if dist[1] != 0 || dist[2] != 0 {
			t.Fatalf("zero-weight distances: %v", dist)
		}
		if err := Verify(g, 0, dist); err != nil {
			t.Fatal(err)
		}
	}
}

func TestEmptyAndSingleton(t *testing.T) {
	empty := graph.MustBuildWeighted(0, nil, false, "")
	if d := Dijkstra(empty, 0); len(d) != 0 {
		t.Fatal("empty dijkstra")
	}
	single := graph.MustBuildWeighted(1, nil, false, "")
	dist, st := BellmanFordBranchAvoiding(single, 0)
	if dist[0] != 0 || st.Passes != 1 {
		t.Fatal("singleton BF wrong")
	}
}

func TestVerifyCatchesCorruption(t *testing.T) {
	g := weightedRandom(30, 80, 10, 13)
	dist := Dijkstra(g, 0)
	cases := []func([]uint64){
		func(d []uint64) { d[0] = 1 },             // source nonzero
		func(d []uint64) { d[10] = 0 },            // too small (no tight pred)
		func(d []uint64) { d[10] = d[10] + 1000 }, // too large (unrelaxed edge)
	}
	for i, corrupt := range cases {
		bad := make([]uint64, len(dist))
		copy(bad, dist)
		corrupt(bad)
		if err := Verify(g, 0, bad); err == nil {
			t.Errorf("corruption %d not caught", i)
		}
	}
	if err := Verify(g, 0, dist[:5]); err == nil {
		t.Error("length mismatch not caught")
	}
}
