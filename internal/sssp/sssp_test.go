package sssp

import (
	"strings"
	"testing"
	"testing/quick"

	"bagraph/internal/gen"
	"bagraph/internal/graph"
	"bagraph/internal/testutil"
)

func TestKernelsAgreeWithDijkstra(t *testing.T) {
	testutil.ForEachWeighted(t, nil, func(t *testing.T, g *graph.Weighted) {
		want := Dijkstra(g, 0)
		bb, stBB := BellmanFordBranchBased(g, 0)
		ba, stBA := BellmanFordBranchAvoiding(g, 0)
		if g.NumVertices() > 0 {
			if err := Verify(g, 0, want); err != nil {
				t.Fatalf("dijkstra oracle invalid: %v", err)
			}
		}
		testutil.MustEqualDists(t, "branch-based", bb, want)
		testutil.MustEqualDists(t, "branch-avoiding", ba, want)
		// Both BF variants sweep identically.
		if stBB.Passes != stBA.Passes {
			t.Fatalf("passes differ: %d vs %d", stBB.Passes, stBA.Passes)
		}
	})
}

func TestAgreementProperty(t *testing.T) {
	f := func(seed uint64) bool {
		n := 10 + int(seed%80)
		g := testutil.RandomWeighted(n, 2*n, 20, seed)
		src := uint32(seed % uint64(n))
		want := Dijkstra(g, src)
		bb, _ := BellmanFordBranchBased(g, src)
		ba, _ := BellmanFordBranchAvoiding(g, src)
		par, _, _ := Parallel(g, src, ParallelOptions{Workers: 2, Variant: Hybrid})
		for v := range want {
			if bb[v] != want[v] || ba[v] != want[v] || par[v] != want[v] {
				return false
			}
		}
		return Verify(g, src, want) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestStoreAsymmetry(t *testing.T) {
	// Branch-avoiding stores exactly |V| per pass; branch-based stores
	// per improvement.
	g := testutil.AttachHashWeights(t, gen.Grid3D(6, 6, 6, 1), 50, 7)
	_, bb := BellmanFordBranchBased(g, 0)
	_, ba := BellmanFordBranchAvoiding(g, 0)
	v := uint64(g.NumVertices())
	if ba.DistStores != v*uint64(ba.Passes) {
		t.Fatalf("BA stores = %d, want %d", ba.DistStores, v*uint64(ba.Passes))
	}
	if bb.DistStores == 0 || bb.DistStores == ba.DistStores {
		t.Fatalf("BB stores = %d, suspicious", bb.DistStores)
	}
	// Final sweep changes nothing.
	if bb.PassChanges[bb.Passes-1] != 0 || ba.PassChanges[ba.Passes-1] != 0 {
		t.Fatal("final sweep reported changes")
	}
	if bb.Total() <= 0 {
		t.Fatal("no time recorded")
	}
}

func TestPassChangesAgree(t *testing.T) {
	g := testutil.RandomWeighted(120, 400, 9, 11)
	_, bb := BellmanFordBranchBased(g, 5)
	_, ba := BellmanFordBranchAvoiding(g, 5)
	for i := range bb.PassChanges {
		if bb.PassChanges[i] != ba.PassChanges[i] {
			t.Fatalf("pass %d: changes %d vs %d", i, bb.PassChanges[i], ba.PassChanges[i])
		}
	}
}

func TestDisconnected(t *testing.T) {
	g := graph.MustBuildWeighted(4, []graph.WeightedEdge{{U: 0, V: 1, W: 3}, {U: 2, V: 3, W: 4}}, false, "2comp")
	for _, f := range []func(*graph.Weighted, uint32) ([]uint64, Stats){BellmanFordBranchBased, BellmanFordBranchAvoiding} {
		dist, _ := f(g, 0)
		if dist[2] != Inf || dist[3] != Inf {
			t.Fatal("unreachable vertices not Inf")
		}
		if dist[1] != 3 {
			t.Fatalf("dist[1] = %d", dist[1])
		}
	}
	d := Dijkstra(g, 0)
	if d[2] != Inf {
		t.Fatal("dijkstra reached other component")
	}
}

func TestZeroWeightEdges(t *testing.T) {
	g := graph.MustBuildWeighted(3, []graph.WeightedEdge{{U: 0, V: 1, W: 0}, {U: 1, V: 2, W: 0}}, false, "zeros")
	for _, f := range []func(*graph.Weighted, uint32) ([]uint64, Stats){BellmanFordBranchBased, BellmanFordBranchAvoiding} {
		dist, _ := f(g, 0)
		if dist[1] != 0 || dist[2] != 0 {
			t.Fatalf("zero-weight distances: %v", dist)
		}
		if err := Verify(g, 0, dist); err != nil {
			t.Fatal(err)
		}
	}
}

func TestEmptyAndSingleton(t *testing.T) {
	empty := graph.MustBuildWeighted(0, nil, false, "")
	if d := Dijkstra(empty, 0); len(d) != 0 {
		t.Fatal("empty dijkstra")
	}
	single := graph.MustBuildWeighted(1, nil, false, "")
	dist, st := BellmanFordBranchAvoiding(single, 0)
	if dist[0] != 0 || st.Passes != 1 {
		t.Fatal("singleton BF wrong")
	}
}

// TestMaxWeightNoOverflow pins the overflow contract: path sums of
// maximal uint32 weights stay far below the 2^62 Inf sentinel, so the
// branchless 64-bit comparisons stay in their safe range and every
// kernel still agrees.
func TestMaxWeightNoOverflow(t *testing.T) {
	const maxW = ^uint32(0)
	n := 50
	edges := make([]graph.WeightedEdge, 0, n-1)
	for i := 0; i+1 < n; i++ {
		edges = append(edges, graph.WeightedEdge{U: uint32(i), V: uint32(i + 1), W: maxW})
	}
	g := graph.MustBuildWeighted(n, edges, false, "maxw-path")
	want := Dijkstra(g, 0)
	if want[n-1] != uint64(n-1)*uint64(maxW) {
		t.Fatalf("end distance = %d, want %d", want[n-1], uint64(n-1)*uint64(maxW))
	}
	bb, _ := BellmanFordBranchBased(g, 0)
	ba, _ := BellmanFordBranchAvoiding(g, 0)
	par, _, _ := Parallel(g, 0, ParallelOptions{Workers: 3})
	testutil.MustEqualDists(t, "branch-based", bb, want)
	testutil.MustEqualDists(t, "branch-avoiding", ba, want)
	testutil.MustEqualDists(t, "parallel", par, want)
	if err := Verify(g, 0, want); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyCatchesCorruption(t *testing.T) {
	g := testutil.RandomWeighted(30, 80, 10, 13)
	dist := Dijkstra(g, 0)
	cases := []func([]uint64){
		func(d []uint64) { d[0] = 1 },             // source nonzero
		func(d []uint64) { d[10] = 0 },            // too small (no tight pred)
		func(d []uint64) { d[10] = d[10] + 1000 }, // too large (unrelaxed edge)
	}
	for i, corrupt := range cases {
		bad := make([]uint64, len(dist))
		copy(bad, dist)
		corrupt(bad)
		if err := Verify(g, 0, bad); err == nil {
			t.Errorf("corruption %d not caught", i)
		}
	}
	if err := Verify(g, 0, dist[:5]); err == nil {
		t.Error("length mismatch not caught")
	}
}

// TestVerifyMessages pins each distinct Verify failure mode by its
// diagnostic, so a refactor cannot silently merge or drop a check.
func TestVerifyMessages(t *testing.T) {
	g := graph.MustBuildWeighted(3, []graph.WeightedEdge{{U: 0, V: 1, W: 2}, {U: 1, V: 2, W: 3}}, false, "p3")
	cases := []struct {
		dist []uint64
		want string
	}{
		{[]uint64{0, 2}, "distances for"},
		{[]uint64{7, 2, 5}, "dist[src"},
		{[]uint64{0, 9, 5}, "not relaxed"},
		{[]uint64{0, 2, 4}, "no tight predecessor"},
	}
	for _, tc := range cases {
		err := Verify(g, 0, tc.dist)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Verify(%v) = %v, want %q", tc.dist, err, tc.want)
		}
	}
	// Valid labelings (including unreached-as-Inf and empty graphs) pass.
	if err := Verify(g, 0, []uint64{0, 2, 5}); err != nil {
		t.Errorf("valid labeling rejected: %v", err)
	}
	empty := graph.MustBuildWeighted(0, nil, false, "")
	if err := Verify(empty, 0, nil); err != nil {
		t.Errorf("empty graph rejected: %v", err)
	}
	two := graph.MustBuildWeighted(2, nil, false, "")
	if err := Verify(two, 0, []uint64{0, Inf}); err != nil {
		t.Errorf("unreached vertex rejected: %v", err)
	}
}
