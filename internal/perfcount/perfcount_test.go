package perfcount

import (
	"strings"
	"testing"
)

func sample(k uint64) Counters {
	return Counters{
		Instructions: 10 * k, Branches: 4 * k, Mispredicts: k,
		Loads: 3 * k, Stores: 2 * k, CondMoves: k,
		L1: 4 * k, L2: k, L3: 0, Mem: 0,
	}
}

func TestAddAndDeltaInverse(t *testing.T) {
	a := sample(3)
	b := sample(5)
	sum := a
	sum.Add(b)
	if got := sum.Delta(a); got != b {
		t.Fatalf("Delta(Add) mismatch: %+v != %+v", got, b)
	}
	if got := sum.Delta(b); got != a {
		t.Fatalf("Delta(Add) mismatch: %+v != %+v", got, a)
	}
}

func TestMemOps(t *testing.T) {
	c := Counters{Loads: 7, Stores: 5}
	if c.MemOps() != 12 {
		t.Fatalf("MemOps = %d", c.MemOps())
	}
}

func TestMissRate(t *testing.T) {
	c := Counters{Branches: 200, Mispredicts: 50}
	if c.MissRate() != 0.25 {
		t.Fatalf("MissRate = %v", c.MissRate())
	}
	if (Counters{}).MissRate() != 0 {
		t.Fatal("empty MissRate should be 0")
	}
}

func TestSeriesTotal(t *testing.T) {
	s := Series{sample(1), sample(2), sample(4)}
	total := s.Total()
	want := sample(7)
	if total != want {
		t.Fatalf("Series.Total = %+v, want %+v", total, want)
	}
	if (Series{}).Total() != (Counters{}) {
		t.Fatal("empty series total nonzero")
	}
}

func TestStringMentionsEvents(t *testing.T) {
	s := sample(2).String()
	for _, field := range []string{"I=", "B=", "M=", "L=", "S="} {
		if !strings.Contains(s, field) {
			t.Errorf("String() missing %q: %s", field, s)
		}
	}
}
