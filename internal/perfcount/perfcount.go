// Package perfcount defines the hardware-event counter set used by the
// simulated machine.
//
// The paper's Fig. 10 correlates six per-edge quantities — time (T),
// instructions (I), branches (B), mispredictions (M), loads (L) and
// stores (S). Counters carries exactly those events plus the cache-level
// breakdown the timing model needs to turn loads into cycles.
package perfcount

import "fmt"

// Counters is a snapshot of simulated hardware event counts. The zero
// value is an empty snapshot; counters are deltas under subtraction, so
// per-iteration series are computed by snapshotting around iteration
// boundaries.
type Counters struct {
	Instructions uint64 // all retired instructions, including branches
	Branches     uint64 // retired conditional branches
	Mispredicts  uint64 // mispredicted conditional branches
	Loads        uint64 // memory read operations
	Stores       uint64 // memory write operations
	CondMoves    uint64 // predicated (conditional-move/add) operations

	// Cache-level hit breakdown for loads and stores combined. L1 + L2 +
	// L3 + Mem equals Loads + Stores.
	L1, L2, L3, Mem uint64
}

// Add accumulates o into c.
func (c *Counters) Add(o Counters) {
	c.Instructions += o.Instructions
	c.Branches += o.Branches
	c.Mispredicts += o.Mispredicts
	c.Loads += o.Loads
	c.Stores += o.Stores
	c.CondMoves += o.CondMoves
	c.L1 += o.L1
	c.L2 += o.L2
	c.L3 += o.L3
	c.Mem += o.Mem
}

// Delta returns c - base. Each field of base must not exceed the
// corresponding field of c (snapshots of a monotone counter set).
func (c Counters) Delta(base Counters) Counters {
	return Counters{
		Instructions: c.Instructions - base.Instructions,
		Branches:     c.Branches - base.Branches,
		Mispredicts:  c.Mispredicts - base.Mispredicts,
		Loads:        c.Loads - base.Loads,
		Stores:       c.Stores - base.Stores,
		CondMoves:    c.CondMoves - base.CondMoves,
		L1:           c.L1 - base.L1,
		L2:           c.L2 - base.L2,
		L3:           c.L3 - base.L3,
		Mem:          c.Mem - base.Mem,
	}
}

// MemOps returns Loads + Stores.
func (c Counters) MemOps() uint64 { return c.Loads + c.Stores }

// MissRate returns Mispredicts / Branches, or 0 for a branch-free window.
func (c Counters) MissRate() float64 {
	if c.Branches == 0 {
		return 0
	}
	return float64(c.Mispredicts) / float64(c.Branches)
}

// String implements fmt.Stringer with a compact event summary.
func (c Counters) String() string {
	return fmt.Sprintf("I=%d B=%d M=%d L=%d S=%d cmov=%d (L1=%d L2=%d L3=%d mem=%d)",
		c.Instructions, c.Branches, c.Mispredicts, c.Loads, c.Stores, c.CondMoves,
		c.L1, c.L2, c.L3, c.Mem)
}

// Series is a per-iteration (SV) or per-level (BFS) sequence of counter
// deltas, the unit of every per-iteration figure in the paper.
type Series []Counters

// Total sums the series.
func (s Series) Total() Counters {
	var t Counters
	for _, c := range s {
		t.Add(c)
	}
	return t
}
