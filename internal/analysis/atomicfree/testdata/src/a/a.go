// Fixture for the atomicfree analyzer: synchronization inside
// //ba:atomic-free and //ba:branch-free regions.
package a

import (
	"sync"
	"sync/atomic"
)

var counter int64
var mu sync.Mutex

//ba:atomic-free
func dirtyWorker(ch chan int, done chan struct{}) {
	for i := 0; i < 8; i++ {
		atomic.AddInt64(&counter, 1) // want `atomic operation sync/atomic.AddInt64 in //ba:atomic-free region`
		mu.Lock()                    // want `sync primitive \(\*sync.Mutex\).Lock in //ba:atomic-free region`
		mu.Unlock()                  // want `sync primitive \(\*sync.Mutex\).Unlock in //ba:atomic-free region`
		ch <- i                      // want `channel send in //ba:atomic-free region`
		<-ch                         // want `channel receive in //ba:atomic-free region`
	}
	select { // want `select in //ba:atomic-free region`
	case <-done: // want `channel receive in //ba:atomic-free region`
	default:
	}
	close(ch)      // want `channel close in //ba:atomic-free region`
	for range ch { // want `range over channel in //ba:atomic-free region`
	}
}

// The branch-free contract implies atomic-free.
//
//ba:branch-free
func dirtyKernel(dst []int64) {
	for i := range dst {
		atomic.StoreInt64(&dst[i], 0) // want `atomic operation sync/atomic.StoreInt64 in //ba:branch-free region`
	}
}

//ba:atomic-free
func sanctionedWorker(cursors []int64, hi int64) int64 {
	var sum int64
	for {
		//ba:allow-atomic the chunk cursor: one fetch per chunk handoff, never per element
		i := atomic.AddInt64(&cursors[0], 1) - 1
		if i >= hi {
			break
		}
		sum += i
	}
	return sum
}

// Unmarked code may synchronize freely.
func barrier(ch chan int) {
	mu.Lock()
	defer mu.Unlock()
	atomic.AddInt64(&counter, 1)
	ch <- 1
}
