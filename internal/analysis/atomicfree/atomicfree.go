// Package atomicfree enforces the atomic-free half of the kernel
// contract: inside a //ba:atomic-free or //ba:branch-free region no
// atomic operation, mutex, or channel operation may appear.
//
// The engine's whole design (PR 1/5) is that synchronization happens at
// pass barriers and chunk handoffs, never per element: workers own
// disjoint state and the inner loops pay zero coherence traffic. One
// atomic.AddUint64 dropped into a relaxation loop to "just count
// something" serializes the cache line it touches and the tests stay
// green. The sanctioned exceptions — the work-stealing chunk cursor in
// internal/par — carry //ba:allow-atomic escapes, so every atomic a
// marked region performs is visible in the diff with its justification.
//
// Flagged inside a marked region:
//
//   - calls into sync/atomic (free functions and the atomic.* types'
//     methods) and sync (Mutex, RWMutex, WaitGroup, Once, ...)
//   - channel sends, receives, close, and range over a channel
//     (select is already rejected by branchfree in branch-free
//     regions; in atomic-free regions it is flagged here)
package atomicfree

import (
	"go/ast"
	"go/token"
	"go/types"

	"bagraph/internal/analysis"
	"bagraph/internal/analysis/directive"
)

// Analyzer is the atomicfree check.
var Analyzer = &analysis.Analyzer{
	Name: "atomicfree",
	Doc:  "reject atomics, mutexes, and channel ops inside //ba:atomic-free and //ba:branch-free regions",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	info := directive.Parse(pass)
	for _, r := range info.Regions {
		// Both region kinds are atomic-free; branch-free is the stronger
		// contract.
		body := r.RegionBody()
		if body == nil {
			continue
		}
		check(pass, info, r, body)
	}
	return nil, nil
}

func check(pass *analysis.Pass, info directive.Info, r directive.Region, body ast.Node) {
	allowed := func(pos token.Pos) bool {
		return info.Escaped(directive.AllowAtomic, pos)
	}
	region := func() string {
		return "//ba:" + r.Name + " region (marked at " + pass.Fset.Position(r.Pos).String() + ")"
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			fn := analysis.Callee(pass.TypesInfo, n)
			if fn == nil {
				if analysis.BuiltinName(pass.TypesInfo, n) == "close" && !allowed(n.Pos()) {
					pass.Reportf(n.Pos(), "channel close in %s", region())
				}
				return true
			}
			if pkg := fn.Pkg(); pkg != nil && !allowed(n.Pos()) {
				switch pkg.Path() {
				case "sync/atomic":
					pass.Reportf(n.Pos(), "atomic operation %s in %s", fn.FullName(), region())
				case "sync":
					pass.Reportf(n.Pos(), "sync primitive %s in %s", fn.FullName(), region())
				}
			}
		case *ast.SendStmt:
			if !allowed(n.Pos()) {
				pass.Reportf(n.Pos(), "channel send in %s", region())
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !allowed(n.Pos()) {
				pass.Reportf(n.Pos(), "channel receive in %s", region())
			}
		case *ast.SelectStmt:
			if !allowed(n.Pos()) {
				pass.Reportf(n.Pos(), "select in %s", region())
			}
		case *ast.RangeStmt:
			if tv, ok := pass.TypesInfo.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan && !allowed(n.Pos()) {
					pass.Reportf(n.Pos(), "range over channel in %s", region())
				}
			}
		}
		return true
	})
}
