package atomicfree_test

import (
	"testing"

	"bagraph/internal/analysis/analysistest"
	"bagraph/internal/analysis/atomicfree"
)

func TestAtomicFree(t *testing.T) {
	analysistest.Run(t, atomicfree.Analyzer, "a")
}
