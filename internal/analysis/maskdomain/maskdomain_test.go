package maskdomain_test

import (
	"testing"

	"bagraph/internal/analysis/analysistest"
	"bagraph/internal/analysis/maskdomain"
)

func TestMaskDomain(t *testing.T) {
	analysistest.Run(t, maskdomain.Analyzer, "a")
}
