// Package maskdomain enforces the operand domain of the 64-bit mask
// primitives. core.MaskLess64 computes its mask from a signed
// subtraction — uint64((int64(a) - int64(b)) >> 63) — which is only
// correct while the subtraction cannot overflow, i.e. for operands
// <= 2^62 (the documented contract; distances are capped by
// core.MaxDist64 and the Inf sentinel is exactly 2^62). Feed it
// ^uint64(0) as a "disabled" threshold and every comparison against it
// silently inverts — the footgun PR 5's light/heavy cut hit, where the
// disabled cut had to be 2^33 rather than MaxUint64.
//
// For every call to a domain-limited primitive (MaskLess64,
// MaskGreater64, Min64) the analyzer flags:
//
//   - a constant argument whose value exceeds 2^62 — the caller is
//     planting a comparison that will misevaluate;
//   - an argument converted to uint64 from a type the domain cannot
//     contain: the 64-bit integer types (a negative int/int64 wraps
//     past 2^63; a uint64/uintptr is unbounded) and the floats. A
//     conversion from uint8/16/32 is provably in domain and passes.
//
// Arguments that are plain uint64 expressions are the caller's proof
// obligation (distances stay under MaxDist64 by construction) and pass
// unexamined; a call the analyzer cannot see into but the author has
// proven can carry //ba:allow-mask <reason>.
package maskdomain

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"bagraph/internal/analysis"
	"bagraph/internal/analysis/directive"
)

// Analyzer is the maskdomain check.
var Analyzer = &analysis.Analyzer{
	Name: "maskdomain",
	Doc:  "reject core.MaskLess64-family operands provably outside the 2^62 mask domain",
	Run:  run,
}

// corePath is the package that owns the mask primitives.
const corePath = "bagraph/internal/core"

// domainLimited are the primitives whose documented contract is
// "operands <= 2^62". (MaskEqual64, Select64, and Bit64 are total.)
var domainLimited = map[string]bool{
	"MaskLess64":    true,
	"MaskGreater64": true,
	"Min64":         true,
}

// maxDomain is the largest operand the primitives accept: 2^62.
const maxDomain = uint64(1) << 62

func run(pass *analysis.Pass) (interface{}, error) {
	info := directive.Parse(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.Callee(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if strings.TrimSuffix(fn.Pkg().Path(), "_test") != corePath || !domainLimited[fn.Name()] {
				return true
			}
			if info.Escaped(directive.AllowMask, call.Pos()) {
				return true
			}
			for _, arg := range call.Args {
				checkArg(pass, fn.Name(), arg)
			}
			return true
		})
	}
	return nil, nil
}

// checkArg flags one argument of a domain-limited call when it provably
// exceeds the domain.
func checkArg(pass *analysis.Pass, callee string, arg ast.Expr) {
	tv, ok := pass.TypesInfo.Types[ast.Unparen(arg)]
	if !ok {
		return
	}
	// Constant operand: compare the value itself.
	if tv.Value != nil {
		if v, exact := constant.Uint64Val(constant.ToInt(tv.Value)); exact && v > maxDomain {
			pass.Reportf(arg.Pos(), "constant %s exceeds core.%s's 2^62 operand domain: the signed-subtraction mask misevaluates (use a cut <= 2^62, e.g. 1<<33 for a disabled threshold)", tv.Value.ExactString(), callee)
		}
		return
	}
	// Conversion operand: uint64(x) from a type wider than the domain.
	conv, ok := ast.Unparen(arg).(*ast.CallExpr)
	if !ok || !analysis.IsConversion(pass.TypesInfo, conv) || len(conv.Args) != 1 {
		return
	}
	opTV, ok := pass.TypesInfo.Types[conv.Args[0]]
	if !ok || opTV.Value != nil { // constant conversions were handled above
		return
	}
	basic, ok := opTV.Type.Underlying().(*types.Basic)
	if !ok {
		return
	}
	switch basic.Kind() {
	case types.Int, types.Int64, types.Uint, types.Uint64, types.Uintptr,
		types.Float32, types.Float64:
		pass.Reportf(arg.Pos(), "conversion from %s may exceed core.%s's 2^62 operand domain (a negative or large value wraps past the sign bit); convert from a provably narrow type or annotate //ba:allow-mask with the range proof", basic.Name(), callee)
	}
}
