// Fixture for the maskdomain analyzer: operands of the domain-limited
// mask primitives.
package a

import "bagraph/internal/core"

func constants(d uint64) uint64 {
	m := core.MaskLess64(d, ^uint64(0))  // want `constant 18446744073709551615 exceeds core.MaskLess64's 2\^62 operand domain`
	m |= core.MaskGreater64(d, 1<<63)    // want `constant 9223372036854775808 exceeds core.MaskGreater64's 2\^62 operand domain`
	m |= core.Min64(d, 1<<62)            // exactly the cap: ok
	m |= core.MaskLess64(d, 1<<33)       // the disabled-threshold idiom: ok
	m |= core.Select64(m, d, ^uint64(0)) // Select64 is total: ok
	return m
}

func conversions(d uint64, i int, i64 int64, u uint64, up uintptr, f float64, w uint32, b uint8) uint64 {
	m := core.MaskLess64(d, uint64(i))    // want `conversion from int may exceed core.MaskLess64's 2\^62 operand domain`
	m |= core.MaskLess64(d, uint64(i64))  // want `conversion from int64 may exceed core.MaskLess64's 2\^62 operand domain`
	m |= core.MaskGreater64(d, uint64(f)) // want `conversion from float64 may exceed core.MaskGreater64's 2\^62 operand domain`
	m |= core.Min64(d, uint64(up))        // want `conversion from uintptr may exceed core.Min64's 2\^62 operand domain`
	m |= core.MaskLess64(d, uint64(w))    // uint32 cannot exceed the domain: ok
	m |= core.MaskLess64(d, uint64(b))    // uint8 cannot exceed the domain: ok
	m |= core.MaskLess64(d, u)            // plain uint64 expression: caller's proof obligation, ok
	return m
}

func escaped(d uint64, i int64) uint64 {
	//ba:allow-mask i is a vertex count, bounded by 2^31 at graph build
	return core.MaskLess64(d, uint64(i))
}
