// Package core is a fixture stand-in for the real mask-primitive
// package: maskdomain matches its domain-limited functions by path.
package core

func MaskLess64(a, b uint64) uint64 {
	return uint64((int64(a) - int64(b)) >> 63)
}

func MaskGreater64(a, b uint64) uint64 {
	return MaskLess64(b, a)
}

func Min64(a, b uint64) uint64 {
	return Select64(MaskLess64(a, b), a, b)
}

func Select64(mask, a, b uint64) uint64 {
	return (a & mask) | (b &^ mask)
}
