// Package deprecated is the type-resolved replacement for the grep-based
// deprecation guard (scripts/deprecation_guard.sh, retired in PR 9).
//
// PR 4 replaced the per-kernel facade entry points with the unified
// Run(ctx, g, Request) API; the old functions survive only as deprecated
// wrappers for external callers mid-migration. First-party code — the
// CLIs, the examples, the serving layer, every internal package — must
// go through Run / WorkerPool.Run, which carry cancellation, kernel
// Stats, and reusable workspaces the wrappers discard.
//
// The grep guard matched the literal call text, so an aliased import
// (ba "bagraph"; ba.ShortestHops(...)), a dot import, or a method value
// walked straight past it. This analyzer resolves every call through
// the type checker instead: any call whose callee is one of the listed
// *types.Func objects of package bagraph is flagged, however the name
// was spelled at the call site. The root package itself (and its tests,
// which pin wrapper-vs-Run equivalence) is exempt — it is where the
// wrappers live.
package deprecated

import (
	"go/ast"
	"strings"

	"bagraph/internal/analysis"
)

// Analyzer is the deprecated-facade check.
var Analyzer = &analysis.Analyzer{
	Name: "deprecated",
	Doc:  "reject first-party calls to the deprecated facade wrappers; use Run / WorkerPool.Run",
	Run:  run,
}

// rootPkg is the package that owns the wrappers (and is exempt).
const rootPkg = "bagraph"

// wrappers are the deprecated entry points: the free functions and the
// WorkerPool methods PR 4 turned into shims over Run. Matching is by
// (package, name) on the resolved callee, so free function and method
// homonyms (ConnectedComponents) are both covered.
var wrappers = map[string]bool{
	"ConnectedComponents":         true,
	"ConnectedComponentsParallel": true,
	"ShortestHops":                true,
	"ShortestHopsParallel":        true,
	"ShortestHopsBatch":           true,
	"ShortestHopsMultiSource":     true,
	"ShortestPaths":               true,
	"ShortestPathsParallel":       true,
	"ShortestPathsInto":           true,
}

func run(pass *analysis.Pass) (interface{}, error) {
	// The wrappers live in the root package; its own files (including
	// in-package and external tests, which pin wrapper equivalence) may
	// call them.
	if path := pass.Pkg.Path(); path == rootPkg || path == rootPkg+"_test" ||
		strings.HasPrefix(path, rootPkg+" [") || strings.HasPrefix(path, rootPkg+"_test [") {
		return nil, nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.Callee(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if fn.Pkg().Path() == rootPkg && wrappers[fn.Name()] {
				pass.Reportf(call.Pos(), "call to deprecated facade %s: first-party code uses bagraph.Run / WorkerPool.Run (cancellation, Stats, workspaces; see run.go)", fn.FullName())
			}
			return true
		})
	}
	return nil, nil
}
