// Fixture for the deprecated analyzer: a dot import, where the wrapper
// name appears with no package qualifier at all.
package b

import . "bagraph"

func dotted(g *Graph) {
	ShortestPaths(g, 0) // want `call to deprecated facade bagraph.ShortestPaths`
	Run(g)              // ok
}
