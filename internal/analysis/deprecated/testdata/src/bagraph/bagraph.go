// Package bagraph is a fixture stand-in for the root package: the
// deprecated analyzer matches the facade wrappers by (package, name) on
// the resolved callee.
package bagraph

type Graph struct{}

type CCAlgorithm int

type WorkerPool struct{}

// Deprecated: use Run.
func ConnectedComponents(g *Graph, algo CCAlgorithm) ([]uint32, error) { return nil, nil }

// Deprecated: use Run.
func ShortestHops(g *Graph, root uint32) ([]uint32, error) { return nil, nil }

// Deprecated: use Run.
func ShortestPaths(g *Graph, src uint32) ([]uint64, error) { return nil, nil }

// Deprecated: use WorkerPool.Run.
func (p *WorkerPool) ShortestHopsParallel(g *Graph, root uint32) ([]uint32, error) { return nil, nil }

// Run is the unified entry point.
func Run(g *Graph) error { return nil }

// rootMayCall shows the root package itself is exempt: the wrappers
// live here and the equivalence tests call them.
func rootMayCall(g *Graph) {
	ConnectedComponents(g, 0)
	ShortestHops(g, 0)
}
