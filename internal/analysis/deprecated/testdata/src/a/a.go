// Fixture for the deprecated analyzer: the plain, aliased, dot-import,
// and method-value spellings the grep-based guard could not all see.
package a

import (
	"bagraph"
	ba "bagraph"
)

func plain(g *bagraph.Graph) {
	bagraph.ConnectedComponents(g, 0) // want `call to deprecated facade bagraph.ConnectedComponents`
	bagraph.Run(g)                    // the replacement API: ok
}

func aliased(g *ba.Graph) {
	ba.ShortestHops(g, 0) // want `call to deprecated facade bagraph.ShortestHops`
}

func methodAndValue(p *bagraph.WorkerPool, g *bagraph.Graph) {
	p.ShortestHopsParallel(g, 0) // want `call to deprecated facade \(\*bagraph.WorkerPool\).ShortestHopsParallel`
	f := bagraph.ShortestPaths
	f(g, 0) // a function value: resolved at the binding, not flagged here
	_ = f
}
