package deprecated_test

import (
	"testing"

	"bagraph/internal/analysis/analysistest"
	"bagraph/internal/analysis/deprecated"
)

func TestFirstParty(t *testing.T) {
	analysistest.Run(t, deprecated.Analyzer, "a")
}

func TestDotImport(t *testing.T) {
	analysistest.Run(t, deprecated.Analyzer, "b")
}

func TestRootPackageExempt(t *testing.T) {
	analysistest.Run(t, deprecated.Analyzer, "bagraph")
}
