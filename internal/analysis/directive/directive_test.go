package directive

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parse(t *testing.T, src string) (Info, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return ParseFile(fset, f), fset
}

func TestAttachment(t *testing.T) {
	info, fset := parse(t, `package x

// doc comment prose.
//
//ba:branch-free
func kernel(xs []int) int {
	s := 0
	//ba:atomic-free
	for _, x := range xs {
		s += x
	}
	//ba:allow-branch the early exit, taken once
	if s == 0 {
		return 0
	}
	return s
}
`)
	if len(info.Errors) != 0 {
		t.Fatalf("unexpected errors: %+v", info.Errors)
	}
	if len(info.Regions) != 2 {
		t.Fatalf("got %d regions, want 2", len(info.Regions))
	}
	if info.Regions[0].Name != BranchFree {
		t.Errorf("region 0 name = %q", info.Regions[0].Name)
	}
	if got := fset.Position(info.Regions[0].Node.Pos()).Line; got != 6 {
		t.Errorf("func region attaches to line %d, want 6", got)
	}
	if info.Regions[1].Name != AtomicFree {
		t.Errorf("region 1 name = %q", info.Regions[1].Name)
	}
	if got := fset.Position(info.Regions[1].Node.Pos()).Line; got != 9 {
		t.Errorf("loop region attaches to line %d, want 9", got)
	}
	if len(info.Escapes) != 1 {
		t.Fatalf("got %d escapes, want 1", len(info.Escapes))
	}
	e := info.Escapes[0]
	if e.Name != AllowBranch || e.Reason != "the early exit, taken once" {
		t.Errorf("escape = %q reason %q", e.Name, e.Reason)
	}
	// The escape covers the if statement's subtree.
	ifPos := e.Node.Pos()
	if !info.Escaped(AllowBranch, ifPos) {
		t.Error("if statement not covered by its own escape")
	}
	if info.Escaped(AllowBranch, info.Regions[0].Node.Pos()) {
		t.Error("escape leaked outside its statement")
	}
}

func TestMalformed(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{
			src:  "package x\n\n//ba:frobnicate\nfunc f() {}\n",
			want: "unknown directive //ba:frobnicate",
		},
		{
			src:  "package x\n\n//ba:allow-atomic\nvar v = func() { v() }\n",
			want: "//ba:allow-atomic needs a reason",
		},
		{
			src:  "package x\n\n//ba:branch-free\nvar v int\n",
			want: "cannot mark a non-func declaration",
		},
		{
			src:  "package x\n\n//ba:branch-free\n\nfunc f() {}\n",
			want: "governs nothing",
		},
		{
			src:  "package x\n\nfunc f() {\n\t_ = 1\n\t//ba:allow-ctx a reason\n}\n",
			want: "governs nothing",
		},
	}
	for _, c := range cases {
		info, _ := parse(t, c.src)
		if len(info.Errors) != 1 {
			t.Errorf("src %q: got %d errors (%+v), want 1", c.src, len(info.Errors), info.Errors)
			continue
		}
		if !strings.Contains(info.Errors[0].Message, c.want) {
			t.Errorf("src %q: error %q does not contain %q", c.src, info.Errors[0].Message, c.want)
		}
		if len(info.Regions)+len(info.Escapes) != 0 {
			t.Errorf("src %q: malformed directive still produced regions/escapes", c.src)
		}
	}
}
