// Package directive parses the //ba:* comment grammar through which the
// kernels declare their machine-checked contracts.
//
// Region directives mark a contract region — the comment's own line must
// sit immediately above the construct it governs, exactly like a //go:
// directive:
//
//	//ba:branch-free    on a func declaration or a for/range statement:
//	                    the region must stay free of data-dependent
//	                    branches AND of atomics (a branch-avoiding hot
//	                    loop; checked by branchfree and atomicfree).
//	//ba:atomic-free    on a func declaration or any statement (usually
//	                    the pool dispatch whose closure is the worker
//	                    loop): the region must stay free of atomics,
//	                    mutexes, and channel operations, but may branch
//	                    (checked by atomicfree).
//
// Escape directives sanction one specific violation inside a region, so
// every exception is visible in the diff and carries its justification:
//
//	//ba:allow-atomic <reason>   the statement below may use atomics
//	                             (the steal cursor in internal/par).
//	//ba:allow-branch <reason>   the statement below may branch inside a
//	                             branch-free region (the bottom-up
//	                             early-exit probe, taken once per vertex
//	                             and predicted until then).
//	//ba:allow-ctx <reason>      the statement below may observe ctx at
//	                             an inner barrier (multisource's wave
//	                             loop; checked by barrierctx).
//	//ba:allow-mask <reason>     the call below may feed a mask primitive
//	                             an operand the analyzer cannot bound
//	                             (checked by maskdomain).
//
// The <reason> is mandatory: an escape with no justification is itself a
// diagnostic (reported by branchfree, which every balint run includes).
package directive

import (
	"go/ast"
	"go/token"
	"strings"

	"bagraph/internal/analysis"
)

// Region directive names.
const (
	BranchFree = "branch-free"
	AtomicFree = "atomic-free"
)

// Escape directive names.
const (
	AllowAtomic = "allow-atomic"
	AllowBranch = "allow-branch"
	AllowCtx    = "allow-ctx"
	AllowMask   = "allow-mask"
)

// prefix is the comment marker of the grammar.
const prefix = "//ba:"

// Region is one marked contract region: the subtree of Node.
type Region struct {
	// Name is BranchFree or AtomicFree.
	Name string
	// Node is the governed construct (a *ast.FuncDecl or an ast.Stmt);
	// the region is its whole subtree.
	Node ast.Node
	// Pos is the directive comment's position.
	Pos token.Pos
}

// Escape is one sanctioned exception: the subtree of Node.
type Escape struct {
	// Name is one of the Allow* constants.
	Name string
	// Reason is the mandatory justification text.
	Reason string
	// Node is the governed statement; the escape covers its subtree.
	Node ast.Node
	// Pos is the directive comment's position.
	Pos token.Pos
}

// Bad is a malformed directive: unknown name, missing escape reason, or
// a directive with no governable construct on the next line.
type Bad struct {
	Pos     token.Pos
	Message string
}

// Info holds one file's parsed directives.
type Info struct {
	Regions []Region
	Escapes []Escape
	Errors  []Bad
}

// ParseFile extracts the //ba:* directives of one file. Attachment is
// positional: a directive governs the outermost declaration or statement
// that begins on the line immediately after the comment line (so a
// directive written as the last line of a doc comment governs the
// declaration the doc comment documents).
func ParseFile(fset *token.FileSet, file *ast.File) Info {
	var info Info

	// Outermost node starting on each line: candidates are declarations
	// and statements; when several start on one line (a statement and
	// its own sub-statements), the first one visited by Inspect is the
	// outermost.
	nodeAt := make(map[int]ast.Node)
	ast.Inspect(file, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.FuncDecl, *ast.GenDecl:
		default:
			if _, ok := n.(ast.Stmt); !ok {
				return true
			}
		}
		line := fset.Position(n.Pos()).Line
		if _, taken := nodeAt[line]; !taken {
			nodeAt[line] = n
		}
		return true
	})

	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, prefix) {
				continue
			}
			rest := strings.TrimPrefix(c.Text, prefix)
			name, reason, _ := strings.Cut(rest, " ")
			reason = strings.TrimSpace(reason)
			line := fset.Position(c.Pos()).Line
			node := nodeAt[line+1]
			switch name {
			case BranchFree, AtomicFree:
				if node == nil {
					info.Errors = append(info.Errors, Bad{c.Pos(),
						"//ba:" + name + " governs nothing: it must sit immediately above a func declaration or statement"})
					continue
				}
				if _, ok := node.(*ast.GenDecl); ok {
					info.Errors = append(info.Errors, Bad{c.Pos(),
						"//ba:" + name + " cannot mark a non-func declaration"})
					continue
				}
				info.Regions = append(info.Regions, Region{Name: name, Node: node, Pos: c.Pos()})
			case AllowAtomic, AllowBranch, AllowCtx, AllowMask:
				if reason == "" {
					info.Errors = append(info.Errors, Bad{c.Pos(),
						"//ba:" + name + " needs a reason: every escape carries its justification"})
					continue
				}
				if node == nil {
					info.Errors = append(info.Errors, Bad{c.Pos(),
						"//ba:" + name + " governs nothing: it must sit immediately above the statement it sanctions"})
					continue
				}
				info.Escapes = append(info.Escapes, Escape{Name: name, Reason: reason, Node: node, Pos: c.Pos()})
			default:
				info.Errors = append(info.Errors, Bad{c.Pos(),
					"unknown directive //ba:" + name + " (want branch-free, atomic-free, allow-atomic, allow-branch, allow-ctx, or allow-mask)"})
			}
		}
	}
	return info
}

// Parse extracts the directives of every file in the pass.
func Parse(pass *analysis.Pass) Info {
	var info Info
	for _, f := range pass.Files {
		fi := ParseFile(pass.Fset, f)
		info.Regions = append(info.Regions, fi.Regions...)
		info.Escapes = append(info.Escapes, fi.Escapes...)
		info.Errors = append(info.Errors, fi.Errors...)
	}
	return info
}

// Escaped reports whether position pos falls inside an escape of the
// given name.
func (in Info) Escaped(name string, pos token.Pos) bool {
	for _, e := range in.Escapes {
		if e.Name == name && e.Node.Pos() <= pos && pos < e.Node.End() {
			return true
		}
	}
	return false
}

// RegionBody returns the node whose subtree a region's contract covers:
// the function body for a marked declaration, the node itself otherwise.
// A marked declaration with no body (an assembly stub) covers nothing.
func (r Region) RegionBody() ast.Node {
	if fd, ok := r.Node.(*ast.FuncDecl); ok {
		if fd.Body == nil {
			return nil
		}
		return fd.Body
	}
	return r.Node
}
