// Package barrierctx enforces the PR 4 cancellation design in the
// kernel packages: a context is observed at pass barriers only, and
// through ctx.Err() alone.
//
// The contract has two halves. Workers and inner loops never see the
// context — that is what keeps the per-element loops free of the
// synchronized channel read ctx.Done() implies and of per-element
// polling overhead; cancellation granularity is one pass. And the
// observation is always Err(), never Done(): Done() allocates the done
// channel on first use and invites select-shaped code into kernels,
// and the repo's barrier-exact cancellation tests drive Err-only fuse
// contexts that Done() would not trip.
//
// In the kernel packages (internal/cc, internal/bfs, internal/sssp,
// internal/par) the analyzer flags:
//
//   - any ctx.Done() call — the Err-only contract, no escape;
//   - ctx.Err() inside a marked //ba:branch-free or //ba:atomic-free
//     region — the hot loops themselves, no escape;
//   - ctx.Err() at loop depth >= 2 within a function (function literals
//     reset the depth: a barrier helper closure polls at its top, depth
//     0). The outermost loop of a kernel is its pass loop and may poll;
//     anything deeper is per-vertex or per-arc territory. A legitimate
//     inner barrier (multisource's per-level sweep inside the wave
//     loop) carries //ba:allow-ctx with its justification.
package barrierctx

import (
	"go/ast"
	"go/types"
	"strings"

	"bagraph/internal/analysis"
	"bagraph/internal/analysis/directive"
)

// Analyzer is the barrierctx check.
var Analyzer = &analysis.Analyzer{
	Name: "barrierctx",
	Doc:  "restrict context observation in kernel packages to pass barriers, via ctx.Err() only",
	Run:  run,
}

// kernelPackages are the package paths the contract governs.
var kernelPackages = map[string]bool{
	"bagraph/internal/cc":   true,
	"bagraph/internal/bfs":  true,
	"bagraph/internal/sssp": true,
	"bagraph/internal/par":  true,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !kernelPackages[strings.TrimSuffix(pass.Pkg.Path(), "_test")] {
		return nil, nil
	}
	info := directive.Parse(pass)

	inMarkedRegion := func(pos ast.Node) bool {
		for _, r := range info.Regions {
			body := r.RegionBody()
			if body != nil && body.Pos() <= pos.Pos() && pos.Pos() < body.End() {
				return true
			}
		}
		return false
	}

	for _, f := range pass.Files {
		// Walk with explicit loop depth; function literals reset it.
		var walk func(n ast.Node, depth int)
		walk = func(n ast.Node, depth int) {
			ast.Inspect(n, func(m ast.Node) bool {
				if m == nil || m == n {
					return m == n
				}
				switch m := m.(type) {
				case *ast.FuncLit:
					walk(m.Body, 0)
					return false
				case *ast.ForStmt:
					if m.Init != nil {
						walk(m.Init, depth)
					}
					if m.Cond != nil {
						walk(m.Cond, depth)
					}
					if m.Post != nil {
						walk(m.Post, depth)
					}
					walk(m.Body, depth+1)
					return false
				case *ast.RangeStmt:
					walk(m.X, depth)
					walk(m.Body, depth+1)
					return false
				case *ast.CallExpr:
					checkCall(pass, info, m, depth, inMarkedRegion)
				}
				return true
			})
		}
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				walk(fd.Body, 0)
			}
		}
	}
	return nil, nil
}

// checkCall flags one ctx.Err()/ctx.Done() call that breaks the
// contract.
func checkCall(pass *analysis.Pass, info directive.Info, call *ast.CallExpr, depth int, inMarked func(ast.Node) bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	name := sel.Sel.Name
	if name != "Err" && name != "Done" {
		return
	}
	tv, ok := pass.TypesInfo.Types[sel.X]
	if !ok || !isContext(tv.Type) {
		return
	}
	switch name {
	case "Done":
		pass.Reportf(call.Pos(), "ctx.Done() in a kernel package: cancellation is observed through ctx.Err() at pass barriers only (PR 4 contract; Done() allocates and invites per-element selects)")
	case "Err":
		if inMarked(call) {
			pass.Reportf(call.Pos(), "ctx.Err() inside a //ba: marked region: workers and branch-avoiding loops never observe the context; poll at the pass barrier instead")
			return
		}
		if depth >= 2 && !info.Escaped(directive.AllowCtx, call.Pos()) {
			pass.Reportf(call.Pos(), "ctx.Err() at loop depth %d: kernels observe cancellation at pass barriers only (the outermost loop); annotate //ba:allow-ctx if this is a genuine inner barrier", depth)
		}
	}
}

// isContext reports whether t is context.Context.
func isContext(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}
