// Fixture for the barrierctx analyzer: a non-kernel package, where the
// contract does not apply and nothing is flagged.
package a

import "context"

func free(ctx context.Context, n int) {
	<-ctx.Done()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			_ = ctx.Err()
		}
	}
}
