// Fixture for the barrierctx analyzer, placed at a kernel package path
// (the contract only governs bagraph/internal/{cc,bfs,sssp,par}).
package cc

import "context"

func doneAnywhere(ctx context.Context) {
	select {
	case <-ctx.Done(): // want `ctx.Done\(\) in a kernel package`
	default:
	}
}

func barriers(ctx context.Context, n int) error {
	if err := ctx.Err(); err != nil { // depth 0: ok
		return err
	}
	for pass := 0; pass < n; pass++ {
		if err := ctx.Err(); err != nil { // depth 1, the pass barrier: ok
			return err
		}
		for v := 0; v < n; v++ {
			if err := ctx.Err(); err != nil { // want `ctx.Err\(\) at loop depth 2`
				return err
			}
		}
	}
	return nil
}

func innerBarrier(ctx context.Context, waves, levels int) error {
	for w := 0; w < waves; w++ {
		for l := 0; l < levels; l++ {
			//ba:allow-ctx one check per level inside the wave loop, a genuine sweep barrier
			if err := ctx.Err(); err != nil {
				return err
			}
		}
	}
	return nil
}

func closureResetsDepth(ctx context.Context, n int) error {
	relax := func() error {
		return ctx.Err() // depth 0 inside the literal: ok
	}
	for pass := 0; pass < n; pass++ {
		for sub := 0; sub < n; sub++ {
			if err := relax(); err != nil {
				return err
			}
		}
	}
	return nil
}

func insideMarkedRegion(ctx context.Context, dst []uint64) {
	//ba:atomic-free
	for i := range dst {
		_ = ctx.Err() // want `ctx.Err\(\) inside a //ba: marked region`
		dst[i] = 0
	}
}
