package barrierctx_test

import (
	"testing"

	"bagraph/internal/analysis/analysistest"
	"bagraph/internal/analysis/barrierctx"
)

func TestKernelPackage(t *testing.T) {
	analysistest.Run(t, barrierctx.Analyzer, "bagraph/internal/cc")
}

func TestNonKernelPackageExempt(t *testing.T) {
	analysistest.Run(t, barrierctx.Analyzer, "a")
}
