// Package unitchecker lets a suite of analyzers run as a "go vet
// -vettool" backend without depending on x/tools. The go command drives
// vet tools through a small protocol:
//
//   - tool -V=full        print an identifying line ending in a build ID
//     (the go command hashes it into its action cache, so a rebuilt
//     tool invalidates cached vet results);
//   - tool -flags         print a JSON description of the tool's flags
//     (the go command validates user-passed vet flags against it);
//   - tool <unit>.cfg     analyze one compilation unit described by the
//     JSON config file: parse the listed Go files, type-check against
//     the export data of already-compiled dependencies, run the
//     analyzers, print diagnostics to stderr, and write the (for this
//     suite, empty) facts file the config names.
//
// Type-checking imports re-uses the compiler's export data through
// go/importer's lookup mode — the same mechanism x/tools' gcexportdata
// wraps — so the driver needs nothing outside the standard library.
// The suite's analyzers are purely local (no cross-package facts), so
// dependency units in VetxOnly mode are satisfied by an empty facts
// file without running anything.
package unitchecker

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"bagraph/internal/analysis"
)

// Config is the JSON schema of the .cfg file the go command hands a vet
// tool, one per compilation unit (field set mirrors x/tools
// unitchecker.Config; unused fields are accepted and ignored).
type Config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main is the entry point of a vet tool built on this driver: parse the
// protocol flags, then analyze the unit config named on the command
// line. It does not return.
func Main(analyzers ...*analysis.Analyzer) {
	progname := filepath.Base(os.Args[0])
	if err := analysis.Validate(analyzers); err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
		os.Exit(1)
	}

	args := os.Args[1:]
	for _, arg := range args {
		switch {
		case arg == "-V=full" || arg == "--V=full":
			printVersion()
			os.Exit(0)
		case arg == "-flags" || arg == "--flags":
			// No tool-specific flags: the suite runs whole.
			fmt.Println("[]")
			os.Exit(0)
		case arg == "help" || arg == "-h" || arg == "-help" || arg == "--help":
			usage(progname, analyzers)
			os.Exit(0)
		}
	}
	if len(args) != 1 || !strings.HasSuffix(args[0], ".cfg") {
		usage(progname, analyzers)
		os.Exit(1)
	}

	diags, err := Run(args[0], analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
		os.Exit(1)
	}
	if len(diags) > 0 {
		os.Exit(2)
	}
	os.Exit(0)
}

// usage prints the tool's own documentation. Direct invocation is for
// humans reading --help; analysis runs always come from the go command.
func usage(progname string, analyzers []*analysis.Analyzer) {
	fmt.Fprintf(os.Stderr, "%s: the branch-avoiding kernel contract checker.\n\n", progname)
	fmt.Fprintf(os.Stderr, "Run it through the go command:\n\n\tgo vet -vettool=$(which %s) ./...\n\nChecks:\n", progname)
	for _, a := range analyzers {
		doc, _, _ := strings.Cut(a.Doc, "\n")
		fmt.Fprintf(os.Stderr, "\t%-12s %s\n", a.Name, doc)
	}
}

// printVersion implements the -V=full handshake: the line must end in a
// token the go command can treat as a build ID, so the binary hashes
// itself — a rebuilt balint then invalidates prior cached vet results.
func printVersion() {
	name, err := os.Executable()
	if err != nil {
		name = os.Args[0]
	}
	h := sha256.New()
	if f, err := os.Open(name); err == nil {
		io.Copy(h, f)
		f.Close()
	}
	fmt.Printf("%s version devel buildID=%02x\n", name, h.Sum(nil))
}

// A posDiagnostic is one rendered finding.
type posDiagnostic struct {
	Analyzer string
	Posn     token.Position
	Message  string
}

// Run analyzes the unit described by cfgFile and returns the rendered
// diagnostics, which it also prints to stderr.
func Run(cfgFile string, analyzers []*analysis.Analyzer) ([]posDiagnostic, error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return nil, err
	}
	var cfg Config
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("parsing %s: %v", cfgFile, err)
	}

	// The facts file must exist whether or not we have facts (the go
	// command registers it as the action's output); this suite's
	// analyzers are fact-free, so it is always empty.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			return nil, err
		}
	}
	if cfg.VetxOnly {
		// A dependency unit analyzed only for facts: nothing to do.
		return nil, nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil, nil
			}
			return nil, err
		}
		files = append(files, f)
	}

	pkg, info, err := typecheck(&cfg, fset, files)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, nil
		}
		return nil, err
	}

	var diags []posDiagnostic
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
		}
		pass.Report = func(d analysis.Diagnostic) {
			diags = append(diags, posDiagnostic{
				Analyzer: a.Name,
				Posn:     fset.Position(d.Pos),
				Message:  d.Message,
			})
		}
		if _, err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %v", a.Name, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Posn, diags[j].Posn
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Offset < b.Offset
	})
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s\n", d.Posn, d.Message)
	}
	return diags, nil
}

// typecheck builds the unit's *types.Package against the export data of
// its already-compiled dependencies.
func typecheck(cfg *Config, fset *token.FileSet, files []*ast.File) (*types.Package, *types.Info, error) {
	// The gc importer's lookup mode reads export data from wherever the
	// driver says — here, the per-dependency files the go command listed
	// in the unit config.
	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		if mapped, ok := cfg.ImportMap[importPath]; ok {
			importPath = mapped
		}
		if importPath == "unsafe" {
			return types.Unsafe, nil
		}
		return compilerImporter.Import(importPath)
	})
	tc := &types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor("gc", runtime.GOARCH),
		GoVersion: goVersion(cfg.GoVersion),
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	return pkg, info, err
}

// goVersion normalizes the config's language version for types.Config,
// which rejects versions with a point release or with no "go" prefix.
func goVersion(v string) string {
	if v == "" {
		return ""
	}
	if !strings.HasPrefix(v, "go") {
		v = "go" + v
	}
	parts := strings.SplitN(v, ".", 3)
	if len(parts) >= 2 {
		return parts[0] + "." + parts[1]
	}
	return v
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
