// Package core is a fixture stand-in for the real intrinsic package:
// branchfree allowlists every function here by package path.
package core

func MaskLess32(a, b uint32) uint32 {
	return uint32((int64(a) - int64(b)) >> 63)
}

func Select32(mask, a, b uint32) uint32 {
	return (a & mask) | (b &^ mask)
}

func Bit(mask uint32) int {
	return int(mask & 1)
}
