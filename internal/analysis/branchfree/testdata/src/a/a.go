// Fixture for the branchfree analyzer: violations and sanctioned
// patterns inside //ba:branch-free regions.
package a

import (
	"fmt"
	"math/bits"

	"bagraph/internal/core"
)

// minMask is itself marked, so marked callers may call it.
//
//ba:branch-free
func minMask(a, b uint32) uint32 {
	return core.Select32(core.MaskLess32(a, b), a, b)
}

func helper(x uint32) uint32 { return x + 1 }

//ba:branch-free
func cleanKernel(labels []uint32, adj []uint32) uint32 {
	cv := labels[0]
	for _, u := range adj {
		cu := labels[u]
		cv = minMask(cu, cv)                       // marked same-package callee: ok
		cv = core.Select32(cv, cu, cv)             // intrinsic: ok
		cv += uint32(bits.TrailingZeros32(cu + 1)) // intrinsic + conversion: ok
		_ = len(adj)                               // branchless builtin: ok
	}
	return cv
}

//ba:branch-free
func branchyKernel(labels []uint32, adj []uint32, m map[int]int) uint32 {
	cv := labels[0]
	for _, u := range adj {
		if u < cv { // want `if statement in //ba:branch-free region`
			cv = u
		}
		ok := u > 0 && cv > 0 // want `short-circuit && in //ba:branch-free region`
		_ = ok
		cv = helper(u) // want `call to a.helper in //ba:branch-free region`
		fmt.Sprint(u)  // want `call to fmt.Sprint in //ba:branch-free region`
	}
	for k := range m { // want `map iteration in //ba:branch-free region`
		_ = k
	}
	switch cv { // want `switch statement in //ba:branch-free region`
	case 0:
	}
	return cv
}

//ba:branch-free
func indirectCall(fns []func() uint32) uint32 {
	return fns[0]() // want `call through a function value in //ba:branch-free region`
}

func loopRegion(labels []uint32, adj []uint32) uint32 {
	cv := labels[0]
	// Only the marked loop is a region; branches before and after it
	// are free.
	if cv == 0 {
		cv = 1
	}
	//ba:branch-free
	for _, u := range adj {
		cv = minMask(labels[u], cv)
	}
	//ba:branch-free
	for _, u := range adj {
		//ba:allow-branch predictable early exit, taken once
		if cv == 0 {
			break
		}
		cv = minMask(labels[u], cv)
	}
	if cv == 7 {
		cv = 8
	}
	return cv
}
