// Package branchfree enforces the //ba:branch-free contract: inside a
// marked region no data-dependent branch may appear. The paper's entire
// speedup comes from hot loops whose per-element work is a load, a
// compare, and a conditional move; one if statement (or a short-circuit
// operator, which compiles to a branch) silently reverts a kernel to
// the branch-based form while every test keeps passing — the regression
// is invisible except to perf. This analyzer makes it a build break.
//
// Flagged inside a marked region:
//
//   - if / switch / type-switch / select statements
//   - short-circuit && and || (each compiles to a conditional jump)
//   - range over a map (runtime iterator calls, unpredictable order)
//   - calls to functions that are not themselves branch-free: anything
//     except the mask-primitive packages (bagraph/internal/core,
//     math/bits, the bitset probe Set.Bit), a same-package function
//     itself marked //ba:branch-free, or the handful of branchless
//     builtins (len, cap, min, max, real, imag, complex)
//
// min and max on integer operands lower to conditional moves, not
// branches, which is exactly the transformation the kernels hand-build;
// they are allowed so future code can use them where the compiler
// cooperates. A sanctioned branch (the bottom-up probe's early exit)
// carries //ba:allow-branch with its justification.
//
// branchfree is also the suite's directive grammarian: malformed //ba:*
// comments anywhere in the package are reported here (and only here, so
// the suite does not repeat itself five times per typo).
package branchfree

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"bagraph/internal/analysis"
	"bagraph/internal/analysis/directive"
)

// Analyzer is the branchfree check.
var Analyzer = &analysis.Analyzer{
	Name: "branchfree",
	Doc:  "reject data-dependent branches inside //ba:branch-free regions",
	Run:  run,
}

// intrinsics are the callee packages whose exported functions are
// branch-free by construction: the repo's own mask primitives and the
// stdlib bit-twiddling package (whose functions compile to single
// instructions). The bitset entry allows only the branchless word probe
// the bottom-up kernels accumulate into their found mask.
var intrinsics = map[string][]string{
	"bagraph/internal/core":   {"*"},
	"math/bits":               {"*"},
	"bagraph/internal/bitset": {"Bit"},
}

// branchlessBuiltins are builtins that cannot introduce a branch or an
// allocation: pure length/arithmetic forms. Integer min/max lower to
// conditional moves — the very transformation the kernels hand-build.
var branchlessBuiltins = map[string]bool{
	"len": true, "cap": true, "min": true, "max": true,
	"real": true, "imag": true, "complex": true,
}

func run(pass *analysis.Pass) (interface{}, error) {
	info := directive.Parse(pass)
	for _, bad := range info.Errors {
		pass.Reportf(bad.Pos, "%s", bad.Message)
	}

	// Same-package functions marked branch-free are callable from any
	// marked region.
	marked := make(map[*types.Func]bool)
	for _, r := range info.Regions {
		if r.Name != directive.BranchFree {
			continue
		}
		if fd, ok := r.Node.(*ast.FuncDecl); ok {
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				marked[fn] = true
			}
		}
	}

	for _, r := range info.Regions {
		if r.Name != directive.BranchFree {
			continue
		}
		body := r.RegionBody()
		if body == nil {
			continue
		}
		check(pass, info, marked, r, body)
	}
	return nil, nil
}

// check walks one marked region's subtree and reports every construct
// the contract forbids.
func check(pass *analysis.Pass, info directive.Info, marked map[*types.Func]bool, r directive.Region, body ast.Node) {
	allowed := func(pos token.Pos) bool {
		return info.Escaped(directive.AllowBranch, pos)
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IfStmt:
			if !allowed(n.Pos()) {
				pass.Reportf(n.Pos(), "if statement in //ba:branch-free region (marked at %s)", pass.Fset.Position(r.Pos))
			}
		case *ast.SwitchStmt:
			if !allowed(n.Pos()) {
				pass.Reportf(n.Pos(), "switch statement in //ba:branch-free region (marked at %s)", pass.Fset.Position(r.Pos))
			}
		case *ast.TypeSwitchStmt:
			if !allowed(n.Pos()) {
				pass.Reportf(n.Pos(), "type switch in //ba:branch-free region (marked at %s)", pass.Fset.Position(r.Pos))
			}
		case *ast.SelectStmt:
			if !allowed(n.Pos()) {
				pass.Reportf(n.Pos(), "select statement in //ba:branch-free region (marked at %s)", pass.Fset.Position(r.Pos))
			}
		case *ast.BinaryExpr:
			if (n.Op == token.LAND || n.Op == token.LOR) && !allowed(n.Pos()) {
				pass.Reportf(n.OpPos, "short-circuit %s in //ba:branch-free region (marked at %s)", n.Op, pass.Fset.Position(r.Pos))
			}
		case *ast.RangeStmt:
			if tv, ok := pass.TypesInfo.Types[n.X]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap && !allowed(n.Pos()) {
					pass.Reportf(n.Pos(), "map iteration in //ba:branch-free region (marked at %s)", pass.Fset.Position(r.Pos))
				}
			}
		case *ast.CallExpr:
			if allowed(n.Pos()) {
				return true
			}
			if analysis.IsConversion(pass.TypesInfo, n) {
				return true
			}
			if b := analysis.BuiltinName(pass.TypesInfo, n); b != "" {
				if !branchlessBuiltins[b] {
					pass.Reportf(n.Pos(), "call to builtin %s in //ba:branch-free region (marked at %s)", b, pass.Fset.Position(r.Pos))
				}
				return true
			}
			fn := analysis.Callee(pass.TypesInfo, n)
			if fn == nil {
				pass.Reportf(n.Pos(), "call through a function value in //ba:branch-free region (marked at %s): the analyzer cannot prove the callee branch-free", pass.Fset.Position(r.Pos))
				return true
			}
			if intrinsic(fn) || marked[fn] {
				return true
			}
			pass.Reportf(n.Pos(), "call to %s in //ba:branch-free region (marked at %s): not an intrinsic and not itself marked //ba:branch-free", fn.FullName(), pass.Fset.Position(r.Pos))
		}
		return true
	})
}

// intrinsic reports whether fn belongs to the branch-free callee
// allowlist.
func intrinsic(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false // error.Error and friends
	}
	names, ok := intrinsics[strings.TrimSuffix(pkg.Path(), "_test")]
	if !ok {
		return false
	}
	for _, n := range names {
		if n == "*" || n == fn.Name() {
			return true
		}
	}
	return false
}
