package branchfree_test

import (
	"testing"

	"bagraph/internal/analysis/analysistest"
	"bagraph/internal/analysis/branchfree"
)

func TestBranchFree(t *testing.T) {
	analysistest.Run(t, branchfree.Analyzer, "a")
}
