// Package analysis is a minimal, dependency-free reimplementation of
// the golang.org/x/tools/go/analysis vocabulary: an Analyzer inspects
// one type-checked package through a Pass and reports Diagnostics.
//
// The repo's correctness rests on contracts the compiler never checks —
// hot loops that must stay branch-free and atomic-free, mask primitives
// whose operands must stay within a proven domain, cancellation that
// may only be observed at pass barriers — and this package is the
// machinery that checks them. The toolchain's own go/analysis lives in
// x/tools, which this module deliberately does not depend on; the
// subset an in-repo linter needs (no facts, no suggested fixes, no
// cross-analyzer requirements) is small enough to carry here, and the
// shapes are kept source-compatible with x/tools so the analyzers
// could migrate to the real framework verbatim if a dependency ever
// becomes acceptable.
//
// The suite itself lives in the subpackages (branchfree, atomicfree,
// maskdomain, barrierctx, deprecated), the //ba:* directive grammar in
// directive, the "go vet -vettool" driver in unitchecker, and the
// fixture-based test harness in analysistest. cmd/balint compiles the
// suite into the multichecker CI runs.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and test expectations.
	// It must be a valid Go identifier.
	Name string
	// Doc is the analyzer's documentation: a one-line summary, a blank
	// line, then detail.
	Doc string
	// Run applies the analyzer to a package and reports diagnostics
	// through pass.Report. The interface{} result exists for x/tools
	// source compatibility; the suite's analyzers return (nil, nil).
	Run func(*Pass) (interface{}, error)
}

// Pass is the interface between one Analyzer run and one package.
type Pass struct {
	// Analyzer is the check being applied.
	Analyzer *Analyzer
	// Fset maps token positions of Files.
	Fset *token.FileSet
	// Files are the package's parsed syntax trees, with comments.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo holds the package's type-checking results.
	TypesInfo *types.Info
	// Report delivers one diagnostic. The driver fills it in.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding.
type Diagnostic struct {
	// Pos anchors the finding.
	Pos token.Pos
	// Message states the contract violation.
	Message string
}

// Validate checks the suite is well-formed before a driver runs it:
// every analyzer named, documented, runnable, and named uniquely.
func Validate(analyzers []*Analyzer) error {
	seen := make(map[string]bool)
	for _, a := range analyzers {
		if a == nil {
			return fmt.Errorf("analysis: nil analyzer")
		}
		if a.Name == "" {
			return fmt.Errorf("analysis: analyzer with empty name")
		}
		if a.Doc == "" {
			return fmt.Errorf("analysis: analyzer %s has no documentation", a.Name)
		}
		if a.Run == nil {
			return fmt.Errorf("analysis: analyzer %s has no Run", a.Name)
		}
		if seen[a.Name] {
			return fmt.Errorf("analysis: duplicate analyzer name %s", a.Name)
		}
		seen[a.Name] = true
	}
	return nil
}
