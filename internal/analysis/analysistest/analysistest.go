// Package analysistest runs an analyzer over fixture packages and
// checks its diagnostics against // want comments, mirroring the
// x/tools package of the same name on the standard library only.
//
// Fixtures live under the calling test's testdata/src directory, one
// subdirectory per import path (testdata/src/a, testdata/src/bagraph,
// testdata/src/bagraph/internal/core, ...). A fixture package may
// import other fixture packages — imports resolve inside testdata/src
// first — and standard-library packages, which are type-checked from
// GOROOT source (the container has no pre-compiled export data for a
// separate test build context).
//
// Expectations are comments of the form
//
//	code // want "regexp"
//	code // want "regexp1" "regexp2"
//
// Each diagnostic must be matched by a want regexp on its line, and
// each want regexp must match exactly one diagnostic.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"bagraph/internal/analysis"
)

// Run loads the fixture package at pkgPath under testdata/src, runs the
// analyzer on it, and reports mismatches between diagnostics and want
// comments as test errors.
func Run(t *testing.T, a *analysis.Analyzer, pkgPath string) {
	t.Helper()
	srcRoot, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	ld := &loader{
		srcRoot: srcRoot,
		fset:    token.NewFileSet(),
		pkgs:    make(map[string]*fixture),
		std:     importer.ForCompiler(token.NewFileSet(), "source", nil),
	}
	fx, err := ld.load(pkgPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pkgPath, err)
	}

	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      ld.fset,
		Files:     fx.files,
		Pkg:       fx.pkg,
		TypesInfo: fx.info,
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("analyzer %s: %v", a.Name, err)
	}
	check(t, ld.fset, fx.files, diags)
}

// fixture is one loaded testdata package.
type fixture struct {
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
}

// loader type-checks fixture packages, resolving fixture-internal
// imports inside srcRoot and everything else from GOROOT source.
type loader struct {
	srcRoot string
	fset    *token.FileSet
	pkgs    map[string]*fixture
	std     types.Importer
	loading []string // cycle detection
}

func (l *loader) load(path string) (*fixture, error) {
	if fx, ok := l.pkgs[path]; ok {
		return fx, nil
	}
	for _, p := range l.loading {
		if p == path {
			return nil, fmt.Errorf("import cycle through %s", path)
		}
	}
	dir := filepath.Join(l.srcRoot, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}

	l.loading = append(l.loading, path)
	defer func() { l.loading = l.loading[:len(l.loading)-1] }()

	imp := importerFunc(func(importPath string) (*types.Package, error) {
		if st, err := os.Stat(filepath.Join(l.srcRoot, filepath.FromSlash(importPath))); err == nil && st.IsDir() {
			fx, err := l.load(importPath)
			if err != nil {
				return nil, err
			}
			return fx.pkg, nil
		}
		return l.std.Import(importPath)
	})
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	tc := &types.Config{Importer: imp}
	pkg, err := tc.Check(path, l.fset, files, info)
	if err != nil {
		return nil, err
	}
	fx := &fixture{files: files, pkg: pkg, info: info}
	l.pkgs[path] = fx
	return fx, nil
}

// expectation is one want regexp at a file line.
type expectation struct {
	posn token.Position // file and line of the want comment
	rx   *regexp.Regexp
	hit  bool
}

// wantRe matches the quoted regexps of a want comment — double-quoted
// or backquoted, as in x/tools.
var wantRe = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

// check compares diagnostics against the fixtures' want comments.
func check(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				idx := strings.Index(text, "want ")
				if idx < 0 || strings.TrimSpace(text[:idx]) != "" {
					continue
				}
				posn := fset.Position(c.Pos())
				for _, q := range wantRe.FindAllString(text[idx+len("want "):], -1) {
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Errorf("%s: bad want pattern %s: %v", posn, q, err)
						continue
					}
					rx, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s: bad want regexp %q: %v", posn, pat, err)
						continue
					}
					wants = append(wants, &expectation{posn: posn, rx: rx})
				}
			}
		}
	}

	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	for _, d := range diags {
		posn := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.hit && w.posn.Filename == posn.Filename && w.posn.Line == posn.Line && w.rx.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", posn, d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s: no diagnostic matched want %q", w.posn, w.rx)
		}
	}
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
