package analysis

import (
	"go/ast"
	"go/types"
)

// Callee resolves the function or method a call expression invokes, or
// nil when the callee is not a declared function (a builtin, a type
// conversion, a called function-typed value).
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			obj = sel.Obj()
		} else {
			// Package-qualified call: pkg.F.
			obj = info.Uses[fun.Sel]
		}
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// IsConversion reports whether a call expression is a type conversion.
func IsConversion(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	return ok && tv.IsType()
}

// BuiltinName returns the name of the builtin a call invokes, or "".
func BuiltinName(info *types.Info, call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if b, ok := info.Uses[id].(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}
