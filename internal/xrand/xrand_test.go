package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference outputs for seed 0 from the canonical SplitMix64
	// implementation (Vigna). Guards against silent constant drift.
	state := uint64(0)
	want := []uint64{
		0xe220a8397b1dcdaf,
		0x6e789e6aa1b965f4,
		0x06c45d188009454f,
		0xf88bb8a8724c81ec,
		0x1b39896a51a8749b,
	}
	for i, w := range want {
		if got := SplitMix64(&state); got != w {
			t.Fatalf("SplitMix64 output %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestHash64MatchesSplitMix(t *testing.T) {
	for _, x := range []uint64{0, 1, 42, 1 << 40, math.MaxUint64} {
		state := x
		want := SplitMix64(&state)
		if got := Hash64(x); got != want {
			t.Errorf("Hash64(%d) = %#x, want SplitMix64 step %#x", x, got, want)
		}
	}
}

func TestNewDeterministic(t *testing.T) {
	a, b := New(12345), New(12345)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("same-seed streams diverge at step %d: %#x vs %#x", i, av, bv)
		}
	}
}

func TestNewDistinctSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams with different seeds agree on %d/100 outputs", same)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(7)
	for _, n := range []int{1, 2, 3, 10, 1000, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestIntnUniformity(t *testing.T) {
	// Chi-squared style sanity check on 10 buckets.
	r := New(99)
	const buckets = 10
	const samples = 100000
	var counts [buckets]int
	for i := 0; i < samples; i++ {
		counts[r.Intn(buckets)]++
	}
	expected := float64(samples) / buckets
	for b, c := range counts {
		dev := math.Abs(float64(c)-expected) / expected
		if dev > 0.05 {
			t.Errorf("bucket %d count %d deviates %.1f%% from uniform", b, c, dev*100)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		r := New(seed)
		n := 1 + int(seed%57)
		p := r.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestShuffleIntsPreservesMultiset(t *testing.T) {
	r := New(3)
	s := []int{5, 5, 1, 2, 9, 9, 9}
	sum := 0
	for _, v := range s {
		sum += v
	}
	r.ShuffleInts(s)
	sum2 := 0
	for _, v := range s {
		sum2 += v
	}
	if sum != sum2 || len(s) != 7 {
		t.Fatalf("shuffle changed contents: %v", s)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(11)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(21)
	p := 0.25
	const n = 100000
	sum := 0
	for i := 0; i < n; i++ {
		sum += r.Geometric(p)
	}
	mean := float64(sum) / n
	want := (1 - p) / p // mean of the failures-before-success geometric
	if math.Abs(mean-want)/want > 0.05 {
		t.Errorf("geometric mean = %v, want ~%v", mean, want)
	}
}

func TestGeometricPOne(t *testing.T) {
	r := New(2)
	for i := 0; i < 100; i++ {
		if g := r.Geometric(1); g != 0 {
			t.Fatalf("Geometric(1) = %d, want 0", g)
		}
	}
}

func TestGeometricPanicsOnBadP(t *testing.T) {
	for _, p := range []float64{0, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Geometric(%v) did not panic", p)
				}
			}()
			New(1).Geometric(p)
		}()
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += r.Intn(1000003)
	}
	_ = sink
}
