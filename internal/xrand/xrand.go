// Package xrand provides small, fast, deterministic pseudo-random number
// generators used throughout the repository.
//
// Every synthetic graph in this project is produced from an explicit 64-bit
// seed so that experiments are bit-for-bit reproducible across runs and
// machines. The package implements SplitMix64 (used for seeding and cheap
// stateless hashing) and xoshiro256** (the workhorse generator), both from
// the public-domain reference designs by Blackman and Vigna.
package xrand

import (
	"math"
	"math/bits"
)

// SplitMix64 advances the given state by one step and returns the next
// 64-bit output. It is the recommended seeding function for xoshiro
// generators and is also useful as a cheap avalanche hash.
func SplitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Hash64 applies the SplitMix64 finalizer to x. It is a stateless mixing
// function: equal inputs give equal outputs, and small input differences
// produce avalanche in the output. Useful for deriving per-vertex or
// per-edge randomness without carrying generator state.
func Hash64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// SymmetricWeights returns a deterministic symmetric per-edge weight
// function in [1, maxW], hashed from the endpoint pair and a seed —
// the one scheme shared by the weighted CLIs, exhibits, benches and
// tests (graph.AttachWeights requires symmetry on undirected graphs).
// maxW must be positive.
func SymmetricWeights(maxW uint32, seed uint64) func(u, v uint32) uint32 {
	if maxW == 0 {
		panic("xrand: SymmetricWeights needs maxW >= 1")
	}
	return func(u, v uint32) uint32 {
		if u > v {
			u, v = v, u
		}
		// Parenthesized: ^ and | share precedence, so the bare form
		// would OR the seed's low bits into v and collapse distinct
		// neighbors onto one weight.
		return uint32(Hash64(seed^(uint64(u)<<32|uint64(v))))%maxW + 1
	}
}

// Rand is a xoshiro256** generator. The zero value is not usable; construct
// with New.
type Rand struct {
	s [4]uint64
}

// New returns a generator seeded from the given 64-bit seed via SplitMix64,
// as recommended by the xoshiro authors. Distinct seeds give independent
// streams for all practical purposes.
func New(seed uint64) *Rand {
	var r Rand
	sm := seed
	for i := range r.s {
		r.s[i] = SplitMix64(&sm)
	}
	// Guard against the theoretical all-zero state (cannot happen with
	// SplitMix64 seeding, but keep the invariant explicit).
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return &r
}

// Uint64 returns the next 64-bit value in the stream.
func (r *Rand) Uint64() uint64 {
	s := &r.s
	result := bits.RotateLeft64(s[1]*5, 7) * 9

	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = bits.RotateLeft64(s[3], 45)

	return result
}

// Uint32 returns the next 32-bit value in the stream.
func (r *Rand) Uint32() uint32 {
	return uint32(r.Uint64() >> 32)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
// It uses Lemire's nearly-divisionless bounded reduction.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn called with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform value in [0, n). It panics if n == 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n called with n == 0")
	}
	// Lemire's method: multiply-shift with a rejection step to remove bias.
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		threshold := -n % n
		for lo < threshold {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability 1/2.
func (r *Rand) Bool() bool {
	return r.Uint64()&1 == 1
}

// Perm returns a uniformly random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.ShuffleInts(p)
	return p
}

// ShuffleInts permutes s uniformly at random (Fisher–Yates).
func (r *Rand) ShuffleInts(s []int) {
	for i := len(s) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		s[i], s[j] = s[j], s[i]
	}
}

// Shuffle permutes n elements using the provided swap function
// (Fisher–Yates), mirroring math/rand's API.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// NormFloat64 returns a normally distributed value with mean 0 and standard
// deviation 1, using the polar (Marsaglia) method.
func (r *Rand) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return u * math.Sqrt(-2*math.Log(s)/s)
	}
}

// Geometric returns a sample from a geometric distribution with success
// probability p in (0, 1]: the number of failures before the first success.
func (r *Rand) Geometric(p float64) int {
	if p <= 0 || p > 1 {
		panic("xrand: Geometric requires p in (0, 1]")
	}
	if p == 1 {
		return 0
	}
	n := 0
	for r.Float64() >= p {
		n++
		if n > 1<<30 {
			// Defensive cap: with any sane p this is unreachable.
			return n
		}
	}
	return n
}
