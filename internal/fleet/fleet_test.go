package fleet

// End-to-end router behavior against real shard processes (daemon
// cores behind httptest listeners): placement, failover mid-traffic,
// the 404-vs-503 distinction, the fleet-wide listing, CC warm-on-join
// and zero-downtime rollout. Everything runs under -race in CI, so the
// health loops, query path and admin plane exercise their locking for
// real.

import (
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"bagraph"
	"bagraph/internal/serve"
)

// newShardServer builds one real shard: a daemon core with the admin
// plane mounted, behind a live HTTP listener.
func newShardServer(t *testing.T, graphs map[string]*bagraph.Graph) *httptest.Server {
	t.Helper()
	reg := serve.NewRegistry()
	for name, g := range graphs {
		if _, err := reg.Add(name, g); err != nil {
			t.Fatal(err)
		}
	}
	core := serve.New(reg, serve.Config{Workers: 2, BatchWindow: -1, Admin: true})
	ts := httptest.NewServer(core.Handler())
	t.Cleanup(func() {
		ts.Close()
		core.Close()
	})
	return ts
}

func corpusGraph(t *testing.T) *bagraph.Graph {
	t.Helper()
	g, err := bagraph.CorpusGraph("cond-mat-2005", 0.02, 9)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// newTestRouter wires a started router over the shard URLs and waits
// for every shard to go live. A long health interval keeps the router
// from noticing deaths on its own, so tests exercise the query-path
// failover deterministically; the immediate first probe still makes
// joins fast.
func newTestRouter(t *testing.T, interval time.Duration, urls ...string) *Router {
	t.Helper()
	r, err := New(Config{Shards: urls, HealthInterval: interval, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	r.Start()
	t.Cleanup(r.Close)
	deadline := time.Now().Add(10 * time.Second)
	for {
		h, _ := r.Healthz(context.Background())
		if h.Shards == len(urls) {
			return r
		}
		if time.Now().After(deadline) {
			t.Fatalf("shards never went live: %+v", h)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestRouterFailoverMidTraffic(t *testing.T) {
	g := corpusGraph(t)
	shard1 := newShardServer(t, map[string]*bagraph.Graph{"cm": g})
	shard2 := newShardServer(t, map[string]*bagraph.Graph{"cm": g})
	r := newTestRouter(t, time.Hour, shard1.URL, shard2.URL)
	ctx := context.Background()

	want, err := r.CC(ctx, "cm", "par-hybrid", true)
	if err != nil {
		t.Fatal(err)
	}

	// Kill the shard the router would pick next, then keep querying:
	// the transport failure must mark it dead and retry on the replica
	// invisibly — every query still answers, with identical bytes.
	cands, known := r.candidates("cm")
	if !known || len(cands) != 2 {
		t.Fatalf("want 2 live candidates, got %d (known %v)", len(cands), known)
	}
	preferred := cands[0]
	for _, ts := range []*httptest.Server{shard1, shard2} {
		if ts.URL == preferred.addr {
			ts.CloseClientConnections()
			ts.Close()
		}
	}
	for i := 0; i < 5; i++ {
		got, err := r.CC(ctx, "cm", "par-hybrid", true)
		if err != nil {
			t.Fatalf("query %d failed during failover: %v", i, err)
		}
		if got.Components != want.Components || len(got.Labels) != len(want.Labels) {
			t.Fatalf("replica answered differently: %d/%d components", got.Components, want.Components)
		}
	}
	if preferred.live() {
		t.Fatal("failed shard's circuit was not opened by the query path")
	}
	if st := preferred.brk.currentState(); st != breakerOpen {
		t.Fatalf("failed shard's circuit is %v, want open", st)
	}
	if cands, _ := r.candidates("cm"); len(cands) != 1 {
		t.Fatalf("dead shard still a candidate: %d", len(cands))
	}

	// BFS and SSSP ride the same route plane.
	if _, err := r.BFS(ctx, "cm", 0, "par-do"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.SSSP(ctx, "cm", 0, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRouterNoReplicaLeftIs503(t *testing.T) {
	g := corpusGraph(t)
	shard1 := newShardServer(t, map[string]*bagraph.Graph{"cm": g})
	r := newTestRouter(t, time.Hour, shard1.URL)
	ctx := context.Background()

	if _, err := r.CC(ctx, "cm", "", false); err != nil {
		t.Fatal(err)
	}
	shard1.CloseClientConnections()
	shard1.Close()

	// First query after the death eats the transport error...
	_, err := r.CC(ctx, "cm", "", false)
	if serve.ErrorStatus(err) != http.StatusServiceUnavailable {
		t.Fatalf("all replicas down: got %v, want 503", err)
	}
	// ...and from then on the shard is out of the candidate set, but the
	// graph is still KNOWN: 503 (retryable), never 404 (authoritative).
	_, err = r.CC(ctx, "cm", "", false)
	if serve.ErrorStatus(err) != http.StatusServiceUnavailable {
		t.Fatalf("known graph with no live replica: got %v, want 503", err)
	}

	// A graph no shard ever held is authoritatively absent.
	_, err = r.CC(ctx, "nope", "", false)
	if serve.ErrorStatus(err) != http.StatusNotFound {
		t.Fatalf("unknown graph: got %v, want 404", err)
	}
}

func TestRouterGraphsUnion(t *testing.T) {
	g := corpusGraph(t)
	g2, err := bagraph.CorpusGraph("coAuthorsDBLP", 0.01, 7)
	if err != nil {
		t.Fatal(err)
	}
	shard1 := newShardServer(t, map[string]*bagraph.Graph{"cm": g, "dblp": g2})
	shard2 := newShardServer(t, map[string]*bagraph.Graph{"cm": g})
	r := newTestRouter(t, time.Hour, shard1.URL, shard2.URL)

	infos, err := r.Graphs(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 || infos[0].Name != "cm" || infos[1].Name != "dblp" {
		t.Fatalf("fleet listing wrong: %+v", infos)
	}

	h, err := r.Healthz(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Shards != 2 || h.Graphs != 2 || h.Workers != 4 {
		t.Fatalf("fleet health wrong: %+v", h)
	}
}

// TestRouterWarmOnJoin: the router refills a joining shard's CC cache
// before it takes traffic, so the FIRST client query already replays
// from the epoch cache.
func TestRouterWarmOnJoin(t *testing.T) {
	g := corpusGraph(t)
	shard1 := newShardServer(t, map[string]*bagraph.Graph{"cm": g})
	r := newTestRouter(t, time.Hour, shard1.URL)

	cc, err := r.CC(context.Background(), "cm", "", false)
	if err != nil {
		t.Fatal(err)
	}
	if !cc.Cached {
		t.Fatal("first client query missed the cache; join did not warm the shard")
	}
}

// p3METIS is a 3-vertex path graph in METIS format, the rollout
// payload (the "new build" a deploy would push).
const p3METIS = "3 2\n2\n1 3\n2\n"

func TestRouterRollout(t *testing.T) {
	g := corpusGraph(t)
	shard1 := newShardServer(t, map[string]*bagraph.Graph{"cm": g})
	shard2 := newShardServer(t, map[string]*bagraph.Graph{"cm": g})
	r := newTestRouter(t, time.Hour, shard1.URL, shard2.URL)
	ctx := context.Background()

	path := filepath.Join(t.TempDir(), "p3.metis")
	if err := os.WriteFile(path, []byte(p3METIS), 0o644); err != nil {
		t.Fatal(err)
	}

	// A graph new to the fleet lands on the first Replicas live shards
	// in ring order.
	resp := r.rollout(ctx, "p3", path)
	if len(resp.Shards) != 2 {
		t.Fatalf("new graph placed on %d shards, want 2: %+v", len(resp.Shards), resp.Shards)
	}
	for _, s := range resp.Shards {
		if s.Error != "" {
			t.Fatalf("rollout failed on %s: %s", s.Shard, s.Error)
		}
	}

	// The listing refresh makes the new graph routable immediately, and
	// the per-shard warm makes the first query a cache replay.
	cc, err := r.CC(ctx, "p3", "", false)
	if err != nil {
		t.Fatal(err)
	}
	if cc.Components != 1 || !cc.Cached {
		t.Fatalf("rolled-out graph answered %+v, want 1 cached component", cc)
	}

	// Rolling the SAME graph again bumps the epoch on every holder,
	// one shard at a time.
	resp = r.rollout(ctx, "p3", path)
	if len(resp.Shards) != 2 {
		t.Fatalf("existing graph rolled to %d shards, want its 2 holders", len(resp.Shards))
	}
	for _, s := range resp.Shards {
		if s.Error != "" || s.Epoch < 2 {
			t.Fatalf("re-rollout on %s: epoch %d err %q, want epoch >= 2", s.Shard, s.Epoch, s.Error)
		}
	}
	if cc2, err := r.CC(ctx, "p3", "", false); err != nil || cc2.Epoch <= cc.Epoch {
		t.Fatalf("epoch did not advance after rollout: %+v err %v", cc2, err)
	}
}

// TestRouterRecovery: a shard that was down when the router started
// joins the fleet as soon as a probe lands, passing through the
// warming state.
func TestRouterRecovery(t *testing.T) {
	g := corpusGraph(t)
	// A started-then-stopped httptest server leaves us a dead address
	// the router can be pointed at before anything listens there.
	down := httptest.NewServer(http.NotFoundHandler())
	addr := down.Listener.Addr().String()
	down.Close()

	r, err := New(Config{
		Shards:         []string{addr},
		HealthInterval: 20 * time.Millisecond,
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	r.Start()
	t.Cleanup(r.Close)

	// Nothing listening: the shard never joins, its graphs are unknown.
	time.Sleep(60 * time.Millisecond)
	if _, err := r.CC(context.Background(), "cm", "", false); serve.ErrorStatus(err) != http.StatusNotFound {
		t.Fatalf("query against a fleet with no live shard: %v, want 404", err)
	}

	// Bring a real shard up on that same address.
	reg := serve.NewRegistry()
	if _, err := reg.Add("cm", g); err != nil {
		t.Fatal(err)
	}
	core := serve.New(reg, serve.Config{Workers: 2, BatchWindow: -1})
	srv := &http.Server{Handler: core.Handler()}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() {
		srv.Close()
		core.Close()
	})

	deadline := time.Now().Add(10 * time.Second)
	for {
		cc, err := r.CC(context.Background(), "cm", "", false)
		if err == nil {
			if !cc.Cached {
				t.Fatal("recovered shard took traffic before its CC warm")
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("shard never rejoined: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
