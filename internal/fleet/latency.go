package fleet

// The hedge trigger's latency estimator: a small per-query-kind
// reservoir of recent winning-leg latencies, queried for a percentile.
// 128 samples bound both memory and the per-query sort, and recent-N
// (rather than a decayed histogram) tracks regime changes — a graph
// swap that doubles CC latency ages out of the window in 128 queries.

import (
	"sort"
	"sync"
	"time"
)

const (
	samplerSize = 128
	samplerMin  = 16 // no hedging until this much history exists
)

// sampler is a fixed ring of recent latencies. The zero value is
// ready to use.
type sampler struct {
	mu  sync.Mutex
	buf [samplerSize]time.Duration
	n   int // filled entries, up to samplerSize
	idx int // next write position
}

// observe records one successful attempt's latency.
func (s *sampler) observe(d time.Duration) {
	s.mu.Lock()
	s.buf[s.idx] = d
	s.idx = (s.idx + 1) % samplerSize
	if s.n < samplerSize {
		s.n++
	}
	s.mu.Unlock()
}

// percentile returns the p'th (0 < p < 1) latency over the window, or
// false while fewer than samplerMin samples exist — hedging on a
// cold estimate would duplicate every early query.
func (s *sampler) percentile(p float64) (time.Duration, bool) {
	s.mu.Lock()
	n := s.n
	var tmp [samplerSize]time.Duration
	copy(tmp[:n], s.buf[:n])
	s.mu.Unlock()
	if n < samplerMin {
		return 0, false
	}
	w := tmp[:n]
	sort.Slice(w, func(a, b int) bool { return w[a] < w[b] })
	return w[int(p*float64(n-1))], true
}
