package fleet

// The hardened failure path under deterministic fault injection: every
// router failure feature — breaker transitions, retry budgets, hedging,
// admission control, stale-serve degradation, the 499 classification —
// driven from scripted fault plans, plus the seeded chaos soak that
// replays a whole kill/recover/latency schedule from one uint64 and
// insists every successful answer is byte-identical to a fault-free
// oracle. All of it runs under -race in CI.

import (
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bagraph"
	"bagraph/internal/fault"
	"bagraph/internal/metrics"
	"bagraph/internal/serve"
	"bagraph/internal/testleak"
)

// host strips the scheme, yielding the fault plan's target key (the
// transport addresses targets by URL.Host).
func host(u string) string { return strings.TrimPrefix(u, "http://") }

// newChaosRouter wires a started router whose every shard connection
// flows through the given fault transport, waits for the fleet to go
// live (the transport sees traffic from the start — keep its plan
// empty, or hand it in disarmed, if the join must be clean), and
// attaches a private metrics set the test can read back.
func newChaosRouter(t *testing.T, tr *fault.Transport, mut func(*Config), urls ...string) (*Router, *Metrics) {
	t.Helper()
	cfg := Config{
		Shards:         urls,
		HealthInterval: time.Hour,
		Logf:           t.Logf,
		Client:         &http.Client{Transport: tr},
	}
	if mut != nil {
		mut(&cfg)
	}
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMetrics(metrics.NewRegistry())
	r.SetMetrics(m)
	r.Start()
	t.Cleanup(r.Close)
	deadline := time.Now().Add(10 * time.Second)
	for {
		h, _ := r.Healthz(context.Background())
		if h.Shards == len(urls) {
			return r, m
		}
		if time.Now().After(deadline) {
			t.Fatalf("shards never joined: %+v", h)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestCtxCancelDoesNotTripBreaker: a caller hanging up (the 499 path)
// is not evidence against the shard. The query must return the
// caller's own context error unwrapped, and the shard must stay live
// with its circuit closed.
func TestCtxCancelDoesNotTripBreaker(t *testing.T) {
	testleak.Check(t)
	g := corpusGraph(t)
	shard := newShardServer(t, map[string]*bagraph.Graph{"cm": g})
	script := fault.NewScript()
	r, _ := newChaosRouter(t, fault.NewTransport(script, nil), nil, shard.URL)

	script.Queue(host(shard.URL), fault.Fault{Kind: fault.Latency, Delay: 10 * time.Second})
	ctx, cancel := context.WithCancel(context.Background())
	timer := time.AfterFunc(30*time.Millisecond, cancel)
	defer timer.Stop()
	defer cancel()

	start := time.Now()
	_, err := r.CC(ctx, "cm", "", false)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled caller got %v, want context.Canceled", err)
	}
	if st := serve.ErrorStatus(err); st != 499 {
		t.Fatalf("cancelled caller maps to %d, want 499", st)
	}
	if took := time.Since(start); took > 5*time.Second {
		t.Fatalf("cancellation took %v to surface", took)
	}

	s := r.shards[0]
	if !s.live() || s.brk.currentState() != breakerClosed {
		t.Fatalf("caller cancellation tripped the breaker: live=%v state=%v",
			s.live(), s.brk.currentState())
	}
	if _, err := r.CC(context.Background(), "cm", "", false); err != nil {
		t.Fatalf("shard wrongly penalized; follow-up query failed: %v", err)
	}
}

// TestBreakerHalfOpenTrialRecovers walks the circuit through its whole
// life: a transport fault opens it, the open circuit refuses traffic
// with a 503 whose body names the graph and dead-holder count (and
// carries the Retry-After hint), the elapsed cooldown admits exactly
// one trial, and the trial's success closes it.
func TestBreakerHalfOpenTrialRecovers(t *testing.T) {
	testleak.Check(t)
	g := corpusGraph(t)
	shard := newShardServer(t, map[string]*bagraph.Graph{"cm": g})
	script := fault.NewScript()
	r, _ := newChaosRouter(t, fault.NewTransport(script, nil), func(c *Config) {
		c.RetryBudget = 1
		c.BreakerCooldown = 50 * time.Millisecond
	}, shard.URL)
	ctx := context.Background()
	s := r.shards[0]

	script.Queue(host(shard.URL), fault.Fault{Kind: fault.Refuse})
	_, err := r.CC(ctx, "cm", "", false)
	var se *serve.Error
	if !errors.As(err, &se) || se.Status != http.StatusServiceUnavailable {
		t.Fatalf("refused shard: got %v, want 503", err)
	}
	if se.RetryAfter < 1 {
		t.Fatalf("503 without a Retry-After hint: %+v", se)
	}
	if !strings.Contains(se.Message, `graph "cm"`) || !strings.Contains(se.Message, "1 of 1 holders dead") {
		t.Fatalf("503 body does not name the graph and dead-holder count: %q", se.Message)
	}
	if st := s.brk.currentState(); st != breakerOpen {
		t.Fatalf("circuit is %v after the fault, want open", st)
	}

	// Open circuit: no candidate, still 503, no request reaches the shard.
	if _, err := r.CC(ctx, "cm", "", false); serve.ErrorStatus(err) != http.StatusServiceUnavailable {
		t.Fatalf("open circuit answered %v, want 503", err)
	}

	time.Sleep(60 * time.Millisecond)
	if st := s.brk.currentState(); st != breakerHalfOpen {
		t.Fatalf("circuit is %v after the cooldown, want half-open", st)
	}
	cc, err := r.CC(ctx, "cm", "", false)
	if err != nil {
		t.Fatalf("half-open trial failed: %v", err)
	}
	if cc.Stale {
		t.Fatal("trial answer wrongly marked stale")
	}
	if st := s.brk.currentState(); st != breakerClosed {
		t.Fatalf("circuit is %v after the successful trial, want closed", st)
	}
}

// TestRetryableStatusFailsOver: a 5xx ANSWER from a live shard is
// retried on a replica without opening the answering shard's circuit —
// it answered, so it is alive.
func TestRetryableStatusFailsOver(t *testing.T) {
	testleak.Check(t)
	g := corpusGraph(t)
	shard1 := newShardServer(t, map[string]*bagraph.Graph{"cm": g})
	shard2 := newShardServer(t, map[string]*bagraph.Graph{"cm": g})
	script := fault.NewScript()
	r, m := newChaosRouter(t, fault.NewTransport(script, nil), nil, shard1.URL, shard2.URL)
	ctx := context.Background()

	cands, _ := r.candidates("cm")
	if len(cands) != 2 {
		t.Fatalf("want 2 candidates, got %d", len(cands))
	}
	preferred := cands[0]
	script.Queue(host(preferred.addr), fault.Fault{Kind: fault.Status, Status: 500})

	cc, err := r.CC(ctx, "cm", "", false)
	if err != nil {
		t.Fatalf("5xx failover did not recover: %v", err)
	}
	if cc.Graph != "cm" {
		t.Fatalf("wrong answer: %+v", cc)
	}
	if !preferred.live() {
		t.Fatal("a 500 ANSWER opened the circuit; only transport faults may")
	}
	if got := m.retries.With(preferred.addr).Value(); got != 1 {
		t.Fatalf("retries on %s = %d, want 1", preferred.addr, got)
	}
}

// TestHedgeRacesSlowReplica: after the hedge delay the query is
// duplicated on the second replica; the fast leg wins, the slow leg is
// cancelled, and nobody's circuit moves.
func TestHedgeRacesSlowReplica(t *testing.T) {
	testleak.Check(t)
	g := corpusGraph(t)
	shard1 := newShardServer(t, map[string]*bagraph.Graph{"cm": g})
	shard2 := newShardServer(t, map[string]*bagraph.Graph{"cm": g})
	script := fault.NewScript()
	r, m := newChaosRouter(t, fault.NewTransport(script, nil), func(c *Config) {
		c.HedgeAfter = 10 * time.Millisecond
	}, shard1.URL, shard2.URL)

	cands, _ := r.candidates("cm")
	preferred := cands[0]
	script.Queue(host(preferred.addr), fault.Fault{Kind: fault.Latency, Delay: 2 * time.Second})

	start := time.Now()
	cc, err := r.CC(context.Background(), "cm", "", false)
	if err != nil {
		t.Fatalf("hedged query failed: %v", err)
	}
	if took := time.Since(start); took > time.Second {
		t.Fatalf("hedge did not race the slow replica: %v", took)
	}
	if !cc.Cached {
		t.Fatalf("hedge answered cold: %+v", cc)
	}
	if got := m.hedges.With("cc").Value(); got != 1 {
		t.Fatalf("hedges fired = %d, want 1", got)
	}
	if got := m.hedgeWins.With("cc").Value(); got != 1 {
		t.Fatalf("hedge wins = %d, want 1", got)
	}
	for _, s := range r.shards {
		if !s.live() {
			t.Fatalf("hedging moved %s's circuit", s.addr)
		}
	}
}

// TestAdmissionShedBypassesStale: at the inflight cap the router sheds
// with 503 + Retry-After BEFORE routing — a shed is a capacity answer,
// so it must not dip into the stale cache even when one exists.
func TestAdmissionShedBypassesStale(t *testing.T) {
	testleak.Check(t)
	g := corpusGraph(t)
	shard := newShardServer(t, map[string]*bagraph.Graph{"cm": g})
	script := fault.NewScript()
	r, m := newChaosRouter(t, fault.NewTransport(script, nil), func(c *Config) {
		c.MaxInflight = 1
		c.MaxStale = time.Minute
	}, shard.URL)
	ctx := context.Background()

	if _, err := r.CC(ctx, "cm", "", false); err != nil {
		t.Fatal(err) // primes the stale cache
	}

	script.Queue(host(shard.URL), fault.Fault{Kind: fault.Latency, Delay: 300 * time.Millisecond})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := r.CC(ctx, "cm", "", false); err != nil {
			t.Errorf("occupying query failed: %v", err)
		}
	}()
	time.Sleep(50 * time.Millisecond) // the slow query is now in flight

	_, err := r.CC(ctx, "cm", "", false)
	var se *serve.Error
	if !errors.As(err, &se) || se.Status != http.StatusServiceUnavailable {
		t.Fatalf("at capacity: got %v, want 503 (NOT a stale answer)", err)
	}
	if se.RetryAfter < 1 || !strings.Contains(se.Message, "capacity") {
		t.Fatalf("shed answer malformed: %+v", se)
	}
	if got := m.shed.With("cc").Value(); got != 1 {
		t.Fatalf("shed count = %d, want 1", got)
	}
	wg.Wait()
}

// TestStaleServeOnTotalLoss: with every holder gone, CC degrades to
// the router's last good answer marked "stale", bounded by MaxStale;
// shapes never cached — and traversals, always — stay 503.
func TestStaleServeOnTotalLoss(t *testing.T) {
	testleak.Check(t)
	g := corpusGraph(t)
	shard := newShardServer(t, map[string]*bagraph.Graph{"cm": g})
	script := fault.NewScript()
	r, m := newChaosRouter(t, fault.NewTransport(script, nil), func(c *Config) {
		c.MaxStale = time.Minute
	}, shard.URL)
	ctx := context.Background()

	fresh, err := r.CC(ctx, "cm", "", false)
	if err != nil {
		t.Fatal(err)
	}
	shard.CloseClientConnections()
	shard.Close()

	stale, err := r.CC(ctx, "cm", "", false)
	if err != nil {
		t.Fatalf("total holder loss did not degrade to stale: %v", err)
	}
	if !stale.Stale {
		t.Fatal("degraded answer not marked stale")
	}
	if stale.Components != fresh.Components || stale.Epoch != fresh.Epoch {
		t.Fatalf("stale answer diverged: %+v vs %+v", stale, fresh)
	}
	if got := m.staleHits.With("cm").Value(); got != 1 {
		t.Fatalf("stale serves = %d, want 1", got)
	}

	// A request shape never answered has nothing to degrade to.
	if _, err := r.CC(ctx, "cm", "", true); serve.ErrorStatus(err) != http.StatusServiceUnavailable {
		t.Fatalf("uncached shape: got %v, want 503", err)
	}
	// Traversals are rooted; a stale answer would be wrong, not degraded.
	if _, err := r.BFS(ctx, "cm", 0, ""); serve.ErrorStatus(err) != http.StatusServiceUnavailable {
		t.Fatalf("BFS under total loss: got %v, want 503", err)
	}

	// Entries age out of eligibility.
	r.stale.now = func() time.Time { return time.Now().Add(2 * time.Minute) }
	if _, err := r.CC(ctx, "cm", "", false); serve.ErrorStatus(err) != http.StatusServiceUnavailable {
		t.Fatalf("expired stale entry still served: %v", err)
	}
}

// TestRetryAfterOverHTTP: the satellite contract at the wire — a
// router-fronted server answers 503 with a Retry-After HEADER and a
// JSON body carrying the same whole-seconds hint plus a message naming
// the graph and its dead-holder count.
func TestRetryAfterOverHTTP(t *testing.T) {
	testleak.Check(t)
	g := corpusGraph(t)
	shard := newShardServer(t, map[string]*bagraph.Graph{"cm": g})

	r, err := New(Config{Shards: []string{shard.URL}, HealthInterval: time.Hour, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	core := serve.NewWithBackend(r, serve.Config{})
	r.Start()
	front := httptest.NewServer(core.Handler())
	t.Cleanup(func() {
		front.Close()
		core.Close() // closes the router backend
	})
	waitLive := time.Now().Add(10 * time.Second)
	for {
		if h, _ := r.Healthz(context.Background()); h.Shards == 1 {
			break
		}
		if time.Now().After(waitLive) {
			t.Fatal("shard never joined")
		}
		time.Sleep(5 * time.Millisecond)
	}

	shard.CloseClientConnections()
	shard.Close()

	resp, err := http.Post(front.URL+"/query/cc", "application/json",
		strings.NewReader(`{"graph":"cm"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	header := resp.Header.Get("Retry-After")
	if header == "" {
		t.Fatal("503 without a Retry-After header")
	}
	var body struct {
		Error      string `json:"error"`
		RetryAfter int    `json:"retry_after"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if strconv.Itoa(body.RetryAfter) != header {
		t.Fatalf("body retry_after %d disagrees with header %q", body.RetryAfter, header)
	}
	if !strings.Contains(body.Error, `graph "cm"`) || !strings.Contains(body.Error, "1 of 1 holders dead") {
		t.Fatalf("503 body does not name the graph and dead-holder count: %q", body.Error)
	}
}

// chaosQuery is one query shape the soak replays; serial kernels keep
// every field of the response — stats included — deterministic, so the
// oracle comparison can demand byte identity.
type chaosQuery struct {
	kind  string
	graph string
	root  uint32
}

// TestChaosSoak is the acceptance drill: a seeded fault plan
// (refusals, latency spikes, mid-body hangs, 5xx, truncated and
// corrupted JSON, plus sustained one-victim outage windows) over a
// 2-graph × 2-replica fleet, under concurrent load, under -race.
// Every successful answer must be byte-identical to the fault-free
// oracle (stale answers modulo their marker); every failure must be a
// well-formed 503 carrying Retry-After; no query may be lost. Re-run
// any logged schedule with CHAOS_SEED=<n>.
func TestChaosSoak(t *testing.T) {
	testleak.Check(t)
	seed := uint64(1)
	if env := os.Getenv("CHAOS_SEED"); env != "" {
		v, err := strconv.ParseUint(env, 10, 64)
		if err != nil {
			t.Fatalf("bad CHAOS_SEED %q: %v", env, err)
		}
		seed = v
	}
	t.Logf("chaos seed %d (re-run with CHAOS_SEED=%d)", seed, seed)

	gCM := corpusGraph(t)
	gDB, err := bagraph.CorpusGraph("coAuthorsDBLP", 0.01, 7)
	if err != nil {
		t.Fatal(err)
	}
	s1 := newShardServer(t, map[string]*bagraph.Graph{"cm": gCM})
	s2 := newShardServer(t, map[string]*bagraph.Graph{"cm": gCM})
	s3 := newShardServer(t, map[string]*bagraph.Graph{"dblp": gDB})
	s4 := newShardServer(t, map[string]*bagraph.Graph{"dblp": gDB})
	servers := []*httptest.Server{s1, s2, s3, s4}
	hosts := make([]string, len(servers))
	for i, ts := range servers {
		hosts[i] = host(ts.URL)
	}

	plan := &fault.Seeded{
		Seed:   seed,
		Refuse: 0.05, Latency: 0.06, Hang: 0.04,
		Status: 0.05, Truncate: 0.03, Corrupt: 0.03,
		MaxDelay:    25 * time.Millisecond,
		OutageEvery: 60,
		OutageRate:  0.35,
		Targets:     hosts,
	}
	tr := fault.NewTransport(plan, nil)
	tr.SetEnabled(false) // the join and oracle phases run clean
	r, m := newChaosRouter(t, tr, func(c *Config) {
		c.RetryBudget = 3
		c.HedgeAfter = 5 * time.Millisecond
		c.BreakerCooldown = 30 * time.Millisecond
		c.MaxInflight = 7
		c.MaxStale = time.Minute
		c.Seed = seed
	}, s1.URL, s2.URL, s3.URL, s4.URL)
	ctx := context.Background()

	// Pre-fill every replica's CC cache for the soak's algorithm, so a
	// CC answer is a cache replay (with the fill's deterministic serial
	// stats) no matter which replica serves it.
	for _, ts := range servers {
		c := serve.NewShardClient(ts.URL, nil)
		infos, err := c.Graphs(ctx)
		if err != nil {
			t.Fatal(err)
		}
		for _, g := range infos {
			if _, err := c.CC(ctx, g.Name, "bb", false); err != nil {
				t.Fatal(err)
			}
		}
	}

	queries := []chaosQuery{
		{"cc", "cm", 0}, {"cc", "dblp", 0},
		{"bfs", "cm", 0}, {"bfs", "cm", 1}, {"bfs", "dblp", 0}, {"bfs", "dblp", 2},
		{"sssp", "cm", 0}, {"sssp", "dblp", 1},
	}
	do := func(q chaosQuery) (stale bool, raw []byte, err error) {
		switch q.kind {
		case "cc":
			resp, e := r.CC(ctx, q.graph, "bb", false)
			if e != nil {
				return false, nil, e
			}
			stale = resp.Stale
			if stale {
				c := *resp
				c.Stale = false
				resp = &c
			}
			raw, err = json.Marshal(resp)
			return stale, raw, err
		case "bfs":
			resp, e := r.BFS(ctx, q.graph, q.root, "bb")
			if e != nil {
				return false, nil, e
			}
			raw, err = json.Marshal(resp)
			return false, raw, err
		default:
			resp, e := r.SSSP(ctx, q.graph, q.root, "bb")
			if e != nil {
				return false, nil, e
			}
			raw, err = json.Marshal(resp)
			return false, raw, err
		}
	}

	oracle := make(map[chaosQuery][]byte, len(queries))
	for _, q := range queries {
		stale, raw, err := do(q)
		if err != nil || stale {
			t.Fatalf("oracle capture %+v: stale=%v err=%v", q, stale, err)
		}
		oracle[q] = raw
	}

	// Soak under fire.
	tr.SetEnabled(true)
	const workers, perWorker = 8, 40
	var ok, mismatches, degraded, shed, staleServes atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(seed)*1315423911 + int64(w)))
			for i := 0; i < perWorker; i++ {
				q := queries[rng.Intn(len(queries))]
				stale, raw, err := do(q)
				if err == nil {
					if stale {
						staleServes.Add(1)
					}
					if string(raw) != string(oracle[q]) {
						mismatches.Add(1)
						t.Errorf("%+v answered bytes diverging from the oracle:\n got %s\nwant %s",
							q, raw, oracle[q])
					} else {
						ok.Add(1)
					}
					continue
				}
				var se *serve.Error
				if !errors.As(err, &se) || se.Status != http.StatusServiceUnavailable || se.RetryAfter < 1 {
					t.Errorf("%+v failed outside the 503+Retry-After contract: %v", q, err)
					continue
				}
				if strings.Contains(se.Message, "capacity") {
					shed.Add(1)
				} else {
					degraded.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	tr.SetEnabled(false)

	total := ok.Load() + mismatches.Load() + degraded.Load() + shed.Load()
	if want := uint64(workers * perWorker); total != want {
		t.Fatalf("queries lost: %d accounted, %d sent", total, want)
	}
	t.Logf("soak: %d ok (%d stale), %d degraded 503, %d shed, %d mismatches",
		ok.Load(), staleServes.Load(), degraded.Load(), shed.Load(), mismatches.Load())
	if ok.Load() == 0 {
		t.Fatal("no query survived the soak; the plan is too hostile to mean anything")
	}

	var failovers, retries uint64
	for _, s := range r.shards {
		failovers += m.failovers.With(s.addr).Value()
		retries += m.retries.With(s.addr).Value()
	}
	hedges := m.hedges.With("cc").Value() + m.hedges.With("bfs").Value() + m.hedges.With("sssp").Value()
	if failovers == 0 || retries == 0 || hedges == 0 {
		t.Fatalf("soak exercised too little: failovers=%d retries=%d hedges=%d",
			failovers, retries, hedges)
	}

	// Deterministic epilogue: both cm holders die for real. CC degrades
	// to the stale oracle answer; BFS answers the full 503 contract.
	for _, ts := range []*httptest.Server{s1, s2} {
		ts.CloseClientConnections()
		ts.Close()
	}
	stale, raw, err := do(chaosQuery{"cc", "cm", 0})
	if err != nil || !stale {
		t.Fatalf("total cm loss: stale=%v err=%v, want a stale serve", stale, err)
	}
	if string(raw) != string(oracle[chaosQuery{"cc", "cm", 0}]) {
		t.Fatalf("stale answer diverged from the oracle:\n got %s\nwant %s",
			raw, oracle[chaosQuery{"cc", "cm", 0}])
	}
	_, _, err = do(chaosQuery{"bfs", "cm", 0})
	var se *serve.Error
	if !errors.As(err, &se) || se.Status != http.StatusServiceUnavailable {
		t.Fatalf("BFS under total loss: %v, want 503", err)
	}
	if se.RetryAfter < 1 || !strings.Contains(se.Message, `graph "cm"`) ||
		!strings.Contains(se.Message, "2 of 2 holders dead") {
		t.Fatalf("503 contract violated: %+v", se)
	}
	if m.staleHits.With("cm").Value() == 0 {
		t.Fatal("stale-serve metric never moved")
	}
	if m.exhausted.With("bfs").Value() == 0 {
		t.Fatal("retry-budget-exhausted metric never moved")
	}
	if shed.Load() > 0 && m.shed.With("cc").Value()+m.shed.With("bfs").Value()+m.shed.With("sssp").Value() == 0 {
		t.Fatal("shed metric disagrees with observed sheds")
	}
}
