package fleet

// The per-shard circuit breaker: the principled replacement for PR 8's
// binary live/dead flag. Closed admits traffic; enough consecutive
// shard faults open the circuit, which refuses traffic for a cooldown
// that doubles on every consecutive open (capped at 8x); an elapsed
// cooldown admits exactly ONE half-open trial request, whose outcome
// either closes the circuit or re-opens it with the next escalation.
// The health loop uses the same state machine — probe streaks trip it,
// a successful probe (after re-warming) closes it — so the query path
// and the prober can never disagree about whether a shard takes
// traffic.

import (
	"sync"
	"time"
)

// breakerState enumerates the circuit positions. The numeric values
// are exported as the breaker-state gauge: 0 closed, 1 half-open,
// 2 open.
type breakerState int32

const (
	breakerClosed   breakerState = iota // admitting traffic
	breakerHalfOpen                     // cooldown elapsed; one trial in flight
	breakerOpen                         // refusing traffic until the cooldown passes
)

// String names the state for logs and metric labels.
func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerHalfOpen:
		return "half_open"
	}
	return "open"
}

// breaker is one shard's circuit. All methods are safe for concurrent
// use; now is injectable so tests drive the cooldown clock.
type breaker struct {
	threshold int           // consecutive faults that open a closed circuit
	cooldown  time.Duration // first open→half-open wait; doubles per consecutive open, capped at 8x
	now       func() time.Time

	mu        sync.Mutex
	state     breakerState
	failures  int // consecutive faults while closed
	opens     int // consecutive opens without an intervening close
	openUntil time.Time
	trial     bool // a half-open trial is outstanding
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// effective returns the circuit position with the lazy open→half-open
// transition applied (the breaker has no timer of its own; an elapsed
// cooldown shows as half-open to the next observer). Callers hold mu.
func (b *breaker) effective() breakerState {
	if b.state == breakerOpen && !b.now().Before(b.openUntil) {
		return breakerHalfOpen
	}
	return b.state
}

// state reports the effective circuit position without consuming a
// trial; the candidate scan peeks with this.
func (b *breaker) currentState() breakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.effective()
}

// allow asks to send one request: closed admits freely; half-open
// (including an open circuit whose cooldown has elapsed) admits one
// trial at a time; open refuses. trial is true when this request IS
// the half-open probe — its outcome decides the circuit, and the
// caller must report it via onSuccess/onFailure or release it.
func (b *breaker) allow() (ok, trial bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.effective() {
	case breakerClosed:
		return true, false
	case breakerHalfOpen:
		if b.trial {
			return false, false
		}
		b.state = breakerHalfOpen
		b.trial = true
		return true, true
	}
	return false, false
}

// onSuccess closes the circuit: the shard answered, so failure streaks
// and cooldown escalation reset.
func (b *breaker) onSuccess() {
	b.mu.Lock()
	b.state = breakerClosed
	b.failures = 0
	b.opens = 0
	b.trial = false
	b.mu.Unlock()
}

// onFailure counts one shard fault (the caller has already classified
// it — context cancellations never reach here). A half-open trial
// failure re-opens with the next cooldown escalation; a closed-state
// streak reaching the threshold opens. Returns true when THIS call
// opened the circuit — the caller owns the transition's metrics/log.
func (b *breaker) onFailure() (opened bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.trial = false
	if b.effective() == breakerHalfOpen {
		b.open()
		return true
	}
	if b.state == breakerOpen {
		return false
	}
	b.failures++
	if b.failures >= b.threshold {
		b.open()
		return true
	}
	return false
}

// trip opens the circuit unconditionally (the health loop's demotion
// after a probe streak). Returns false if it was already open.
func (b *breaker) trip() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == breakerOpen && b.now().Before(b.openUntil) {
		return false
	}
	b.open()
	return true
}

// release returns an unused half-open trial slot (the request it was
// granted to died of caller-context cancellation, which says nothing
// about the shard).
func (b *breaker) release() {
	b.mu.Lock()
	b.trial = false
	b.mu.Unlock()
}

// open moves to the open state with the escalated cooldown. Callers
// hold mu.
func (b *breaker) open() {
	shift := b.opens
	if shift > 3 {
		shift = 3
	}
	b.opens++
	b.state = breakerOpen
	b.failures = 0
	b.trial = false
	b.openUntil = b.now().Add(b.cooldown << shift)
}
