package fleet

// Consistent hashing over graph names. Each shard owns a set of
// virtual points on a uint64 circle; a graph hashes to a point and its
// replica preference order is the distinct shards met walking
// clockwise from there. The properties the router leans on: placement
// is a pure function of (graph name, shard set) — every stateless
// router instance computes the same order with no coordination — and
// adding or removing one shard moves only the graphs adjacent to its
// points, not the whole placement.

import (
	"fmt"
	"sort"
)

// pointsPerShard balances the ring: more virtual points smooth the
// load split between shards at the cost of a larger sorted array.
const pointsPerShard = 64

// fnv1a is the 64-bit FNV-1a hash run through a 64-bit finalizer,
// inlined to keep the ring dependency-free and the hash stable across
// Go releases. Raw FNV-1a avalanches poorly on short suffix changes —
// the virtual points "addr#0".."addr#63" land clustered on the circle
// and starve shards of primaries — so the finalizer (the murmur3
// fmix64 constants) spreads them.
func fnv1a(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// ringPoint is one virtual node: a position owned by a shard index.
type ringPoint struct {
	pos   uint64
	shard int
}

// ring is an immutable consistent-hash circle over shard indices.
type ring struct {
	points []ringPoint
	shards int
}

// newRing builds the circle for n shards named by ids.
func newRing(ids []string) ring {
	pts := make([]ringPoint, 0, len(ids)*pointsPerShard)
	for i, id := range ids {
		for p := 0; p < pointsPerShard; p++ {
			pts = append(pts, ringPoint{pos: fnv1a(fmt.Sprintf("%s#%d", id, p)), shard: i})
		}
	}
	sort.Slice(pts, func(a, b int) bool {
		if pts[a].pos != pts[b].pos {
			return pts[a].pos < pts[b].pos
		}
		return pts[a].shard < pts[b].shard
	})
	return ring{points: pts, shards: len(ids)}
}

// order returns every shard index in the graph's replica preference
// order: the distinct shards met walking clockwise from the graph's
// hash point. The first entry is the graph's primary placement, the
// next its first replica, and so on.
func (r ring) order(graph string) []int {
	if len(r.points) == 0 {
		return nil
	}
	start := sort.Search(len(r.points), func(i int) bool {
		return r.points[i].pos >= fnv1a(graph)
	})
	out := make([]int, 0, r.shards)
	seen := make([]bool, r.shards)
	for i := 0; i < len(r.points) && len(out) < r.shards; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.shard] {
			seen[p.shard] = true
			out = append(out, p.shard)
		}
	}
	return out
}
