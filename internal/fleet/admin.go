package fleet

// The fleet's rollout plane. POST /admin/rollout drives a
// zero-downtime graph replacement across the fleet: the router fans
// the shard-side /admin/replace (Registry.Replace/ReplaceWeighted)
// across the graph's replicas ONE SHARD AT A TIME — while one replica
// swaps epochs the others keep answering — then re-warms each shard's
// CC cache at the new epoch before moving on. A graph new to the fleet
// is placed on the first Replicas live shards in ring order, which is
// what "placing graphs by consistent hashing" means operationally:
// the operator names the graph, the ring names the shards.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
)

// rolloutRequest is the /admin/rollout body. Path names a METIS file
// on the SHARDS' filesystem (fleet deployments share graph storage).
type rolloutRequest struct {
	Graph string `json:"graph"`
	Path  string `json:"path"`
}

// shardRollout is one shard's outcome within a rollout.
type shardRollout struct {
	Shard string `json:"shard"`
	Epoch uint64 `json:"epoch,omitempty"`
	Error string `json:"error,omitempty"`
}

// rolloutResponse reports the fleet-wide outcome.
type rolloutResponse struct {
	Graph  string         `json:"graph"`
	Shards []shardRollout `json:"shards"`
}

// rolloutTargets picks the shards a rollout touches: the live holders
// in ring preference order, or — for a graph the fleet has never seen
// — the first Replicas live shards in ring order.
func (r *Router) rolloutTargets(graph string) []*shard {
	var holders, fresh []*shard
	for _, idx := range r.ring.order(graph) {
		s := r.shards[idx]
		if !s.live() {
			continue
		}
		if s.holds(graph) {
			holders = append(holders, s)
		} else if len(fresh) < r.cfg.Replicas {
			fresh = append(fresh, s)
		}
	}
	if len(holders) > 0 {
		return holders
	}
	return fresh
}

// rollout replaces the graph on each target serially, re-warming the
// CC cache and refreshing the holdings listing after each swap.
func (r *Router) rollout(ctx context.Context, graph, path string) rolloutResponse {
	resp := rolloutResponse{Graph: graph}
	for _, s := range r.rolloutTargets(graph) {
		out := shardRollout{Shard: s.addr}
		rep, err := s.client.Replace(ctx, graph, path)
		if err != nil {
			out.Error = err.Error()
			resp.Shards = append(resp.Shards, out)
			continue
		}
		out.Epoch = rep.Epoch
		// The new epoch starts with a cold CC cache; refill it before
		// the next shard swaps so the fleet never serves two cold
		// replicas at once.
		if _, err := s.client.CC(ctx, graph, "", false); err == nil {
			r.metrics.observeWarm(s.addr)
		}
		if infos, err := s.client.Graphs(ctx); err == nil {
			s.setListing(infos, s.workerCount())
		}
		r.logf("fleet: rolled out %s epoch %d on %s", graph, rep.Epoch, s.addr)
		resp.Shards = append(resp.Shards, out)
	}
	return resp
}

// MountAdmin registers the router's admin plane on the serving mux
// (reached only when serve.Config.Admin is set).
func (r *Router) MountAdmin(mux *http.ServeMux) {
	mux.HandleFunc("POST /admin/rollout", func(w http.ResponseWriter, req *http.Request) {
		req.Body = http.MaxBytesReader(w, req.Body, 1<<20)
		var q rolloutRequest
		if err := json.NewDecoder(req.Body).Decode(&q); err != nil {
			adminError(w, http.StatusBadRequest, "bad rollout body: %v", err)
			return
		}
		if q.Graph == "" || q.Path == "" {
			adminError(w, http.StatusBadRequest, "rollout wants graph and path")
			return
		}
		resp := r.rollout(req.Context(), q.Graph, q.Path)
		if len(resp.Shards) == 0 {
			adminError(w, http.StatusServiceUnavailable,
				"graph %q: no live shard to roll out to", q.Graph)
			return
		}
		code := http.StatusBadGateway
		for _, s := range resp.Shards {
			if s.Error == "" {
				code = http.StatusOK
				break
			}
		}
		adminJSON(w, code, resp)
	})
}

func adminJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func adminError(w http.ResponseWriter, code int, format string, args ...any) {
	adminJSON(w, code, struct {
		Error string `json:"error"`
	}{fmt.Sprintf(format, args...)})
}
