package fleet

import (
	"fmt"
	"testing"
)

// TestRingOrder: every order is a permutation of all shards, identical
// across independently-built rings (the no-coordination property), and
// growing the fleet by one shard only moves placements onto the new
// shard — never shuffles graphs between survivors.
func TestRingOrder(t *testing.T) {
	ids := []string{"10.0.0.1:9101", "10.0.0.2:9101", "10.0.0.3:9101"}
	a, b := newRing(ids), newRing(ids)

	names := make([]string, 200)
	for i := range names {
		names[i] = fmt.Sprintf("graph-%d", i)
	}
	primaries := make(map[int]int)
	for _, name := range names {
		oa, ob := a.order(name), b.order(name)
		if len(oa) != len(ids) {
			t.Fatalf("%s: order %v misses shards", name, oa)
		}
		seen := make([]bool, len(ids))
		for _, s := range oa {
			if seen[s] {
				t.Fatalf("%s: order %v repeats a shard", name, oa)
			}
			seen[s] = true
		}
		for i := range oa {
			if oa[i] != ob[i] {
				t.Fatalf("%s: independent rings disagree: %v vs %v", name, oa, ob)
			}
		}
		primaries[oa[0]]++
	}
	for i := range ids {
		if primaries[i] == 0 {
			t.Fatalf("shard %d never primary over %d graphs: %v", i, len(names), primaries)
		}
	}

	grown := newRing(append(append([]string{}, ids...), "10.0.0.4:9101"))
	moved := 0
	for _, name := range names {
		was, now := a.order(name)[0], grown.order(name)[0]
		if now != was {
			if now != 3 {
				t.Fatalf("%s: grew the fleet and moved from shard %d to OLD shard %d", name, was, now)
			}
			moved++
		}
	}
	if moved == 0 || moved == len(names) {
		t.Fatalf("adding a shard moved %d/%d graphs; want some but not all", moved, len(names))
	}
}
