// Package fleet promotes baserved from one process to a sharded,
// replicated query fleet: a stateless Router implements the serving
// layer's Backend interface over N shard processes (each an ordinary
// baserved with the admin plane enabled), so the same HTTP handlers
// that front an in-process batcher front the whole fleet.
//
// Placement is consistent hashing over graph names (see ring.go): a
// graph's replica preference order is a pure function of the name and
// the shard list, so any number of stateless routers agree without
// coordination. A graph's candidates are the live shards that actually
// hold it (the router learns holdings from each shard's /graphs,
// refreshed by the health loop), tried least-loaded first. A shard
// that fails at the transport level mid-query is marked dead on the
// spot and the query retries on the next replica — the caller sees one
// answer, not the failover — and 503 surfaces only when no live
// replica holds the graph. Dead shards are probed with backoff and
// re-join through a warming state: the router refills their CC cache
// per held graph before they take traffic again.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"bagraph/internal/serve"
)

// Shard lifecycle states.
const (
	stateWarming int32 = iota // known but not yet taking traffic
	stateLive                 // healthy, in the candidate set
	stateDead                 // failed; probed with backoff
)

// Config shapes a Router.
type Config struct {
	// Shards lists the shard addresses (host:port or http:// URLs).
	Shards []string
	// Replicas is how many shards a NEW graph is placed on when a
	// rollout introduces it (existing graphs live wherever they are
	// already loaded). < 1 means 2.
	Replicas int
	// HealthInterval is the live-shard probe period; 0 means 1s. Dead
	// shards back off to 8x this.
	HealthInterval time.Duration
	// HealthTimeout bounds one probe; 0 means 2s.
	HealthTimeout time.Duration
	// FailAfter is how many consecutive probe failures demote a live
	// shard; < 1 means 2. (A query-path transport failure demotes
	// immediately — a refused connection is not a flaky probe.)
	FailAfter int
	// WarmTimeout bounds each CC warm-up query on a joining shard; 0
	// means 30s.
	WarmTimeout time.Duration
	// Client is the HTTP client the shard clients share; nil means a
	// dedicated keep-alive client.
	Client *http.Client
	// Logf, when set, receives shard lifecycle events (join, death,
	// warm-up); nil disables logging.
	Logf func(format string, args ...any)
}

// shard is one member's live state.
type shard struct {
	addr     string
	client   *serve.ShardClient
	state    atomic.Int32
	inflight atomic.Int64 // queries in progress, the load signal

	mu      sync.RWMutex
	graphs  map[string]serve.GraphInfo // last /graphs listing
	workers int
}

// holds reports whether the shard's last listing carried the graph.
func (s *shard) holds(graph string) bool {
	s.mu.RLock()
	_, ok := s.graphs[graph]
	s.mu.RUnlock()
	return ok
}

func (s *shard) setListing(infos []serve.GraphInfo, workers int) {
	m := make(map[string]serve.GraphInfo, len(infos))
	for _, g := range infos {
		m[g.Name] = g
	}
	s.mu.Lock()
	s.graphs = m
	s.workers = workers
	s.mu.Unlock()
}

// Router is the stateless query front: a serve.Backend whose dispatch
// plane is the fleet.
type Router struct {
	cfg     Config
	shards  []*shard
	ring    ring
	metrics *Metrics

	stop chan struct{}
	wg   sync.WaitGroup
}

// New builds a router over the configured shards. Call SetMetrics (if
// wanted) and then Start to launch the health loops; Close releases
// them.
func New(cfg Config) (*Router, error) {
	if len(cfg.Shards) == 0 {
		return nil, fmt.Errorf("fleet: no shards configured")
	}
	if cfg.Replicas < 1 {
		cfg.Replicas = 2
	}
	if cfg.HealthInterval <= 0 {
		cfg.HealthInterval = time.Second
	}
	if cfg.HealthTimeout <= 0 {
		cfg.HealthTimeout = 2 * time.Second
	}
	if cfg.FailAfter < 1 {
		cfg.FailAfter = 2
	}
	if cfg.WarmTimeout <= 0 {
		cfg.WarmTimeout = 30 * time.Second
	}
	r := &Router{cfg: cfg, stop: make(chan struct{})}
	seen := make(map[string]bool, len(cfg.Shards))
	for _, addr := range cfg.Shards {
		c := serve.NewShardClient(addr, cfg.Client)
		if seen[c.Addr()] {
			return nil, fmt.Errorf("fleet: duplicate shard %s", c.Addr())
		}
		seen[c.Addr()] = true
		r.shards = append(r.shards, &shard{addr: c.Addr(), client: c})
	}
	ids := make([]string, len(r.shards))
	for i, s := range r.shards {
		ids[i] = s.addr
	}
	r.ring = newRing(ids)
	return r, nil
}

// SetMetrics attaches the router's instrument set. Call before Start.
func (r *Router) SetMetrics(m *Metrics) { r.metrics = m }

// Start launches one health loop per shard. Shards join through the
// warming state, so the router answers 503 until the first probes
// land.
func (r *Router) Start() {
	for _, s := range r.shards {
		r.wg.Add(1)
		go r.healthLoop(s)
	}
}

// Close stops the health loops. In-flight queries must have drained
// (the HTTP server's shutdown guarantees that).
func (r *Router) Close() {
	close(r.stop)
	r.wg.Wait()
}

func (r *Router) logf(format string, args ...any) {
	if r.cfg.Logf != nil {
		r.cfg.Logf(format, args...)
	}
}

// markDead demotes a shard. Its graphs re-route to their replicas on
// the next candidate selection; the health loop keeps probing with
// backoff and re-warms it on recovery.
func (r *Router) markDead(s *shard, cause string) {
	if s.state.CompareAndSwap(stateLive, stateDead) {
		r.metrics.observeFailover(s.addr)
		r.metrics.setUp(s.addr, false)
		r.logf("fleet: shard %s dead (%s); rerouting its graphs to replicas", s.addr, cause)
	}
}

// healthLoop probes one shard forever: live shards every
// HealthInterval, dead ones with exponential backoff up to 8x. A probe
// is a /healthz round-trip plus a /graphs refresh (holdings drive
// placement, so they must track rollouts); FailAfter consecutive
// failures demote a live shard, and a recovering shard is warmed
// before it rejoins the candidate set.
func (r *Router) healthLoop(s *shard) {
	defer r.wg.Done()
	failures := 0
	delay := time.Duration(0) // probe immediately on start
	for {
		select {
		case <-r.stop:
			return
		case <-time.After(delay):
		}
		if r.probe(s) {
			failures = 0
			delay = r.cfg.HealthInterval
			continue
		}
		failures++
		if failures >= r.cfg.FailAfter {
			r.markDead(s, fmt.Sprintf("%d consecutive failed probes", failures))
		}
		if s.state.Load() == stateDead {
			// Exponential backoff while dead, capped at 8 intervals.
			shift := failures - r.cfg.FailAfter
			if shift > 3 {
				shift = 3
			}
			delay = r.cfg.HealthInterval << shift
		} else {
			delay = r.cfg.HealthInterval
		}
	}
}

// probe runs one health check; true means the shard answered and its
// listing is fresh.
func (r *Router) probe(s *shard) bool {
	ctx, cancel := context.WithTimeout(context.Background(), r.cfg.HealthTimeout)
	defer cancel()
	h, err := s.client.Healthz(ctx)
	if err == nil {
		var infos []serve.GraphInfo
		infos, err = s.client.Graphs(ctx)
		if err == nil {
			s.setListing(infos, h.Workers)
		}
	}
	r.metrics.observeHealth(s.addr, err == nil)
	if err != nil {
		return false
	}
	if s.state.Load() != stateLive {
		r.warm(s)
		s.state.Store(stateLive)
		r.metrics.setUp(s.addr, true)
		r.logf("fleet: shard %s live (%d graphs, %d workers)", s.addr, len(s.listing()), s.workerCount())
	}
	return true
}

// warm refills a joining shard's CC cache before it takes traffic: one
// CC query (default algorithm, no labels) per held graph, so the first
// real query after a join or rollout hits a warm epoch cache instead
// of paying the fill. Best-effort — a failed warm-up only costs the
// first client the fill it would have paid anyway.
func (r *Router) warm(s *shard) {
	for _, g := range s.listing() {
		ctx, cancel := context.WithTimeout(context.Background(), r.cfg.WarmTimeout)
		_, err := s.client.CC(ctx, g.Name, "", false)
		cancel()
		r.metrics.observeWarm(s.addr)
		if err != nil {
			r.logf("fleet: warm %s on %s: %v", g.Name, s.addr, err)
			continue
		}
	}
}

func (s *shard) listing() []serve.GraphInfo {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]serve.GraphInfo, 0, len(s.graphs))
	for _, g := range s.graphs {
		out = append(out, g)
	}
	return out
}

func (s *shard) workerCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.workers
}

// candidates returns the live shards holding the graph, ring
// preference order re-sorted least-loaded first (ties keep ring
// order), plus whether ANY shard — live or not — holds it (the
// 404-vs-503 distinction).
func (r *Router) candidates(graph string) (cands []*shard, known bool) {
	for _, idx := range r.ring.order(graph) {
		s := r.shards[idx]
		if !s.holds(graph) {
			continue
		}
		known = true
		if s.state.Load() == stateLive {
			cands = append(cands, s)
		}
	}
	sort.SliceStable(cands, func(a, b int) bool {
		return cands[a].inflight.Load() < cands[b].inflight.Load()
	})
	return cands, known
}

// route runs one query against the graph's replica set: the
// least-loaded live holder first, failing over on transport errors
// (the failed shard is marked dead immediately) until a replica
// answers. An application-level answer from a shard — success or a
// typed *serve.Error — ends the loop either way; only an unreachable
// shard triggers the next replica.
func route[T any](r *Router, ctx context.Context, graph, kind string,
	call func(context.Context, *serve.ShardClient) (T, error)) (T, error) {
	var zero T
	cands, known := r.candidates(graph)
	if len(cands) == 0 {
		if known {
			return zero, serve.Errorf(http.StatusServiceUnavailable,
				"graph %q: no live replica", graph)
		}
		return zero, serve.Errorf(http.StatusNotFound, "graph %q not loaded", graph)
	}
	var lastErr error
	for _, s := range cands {
		if err := ctx.Err(); err != nil {
			return zero, err
		}
		r.metrics.observeRequest(s.addr, kind)
		s.inflight.Add(1)
		out, err := call(ctx, s.client)
		s.inflight.Add(-1)
		var te *serve.TransportError
		if errors.As(err, &te) {
			r.markDead(s, te.Err.Error())
			r.metrics.observeRetry(s.addr)
			lastErr = err
			continue
		}
		return out, err
	}
	return zero, serve.Errorf(http.StatusServiceUnavailable,
		"graph %q: every replica failed (%v)", graph, lastErr)
}

// CC implements serve.Backend across the fleet.
func (r *Router) CC(ctx context.Context, graph, algo string, labels bool) (*serve.CCResponse, error) {
	return route(r, ctx, graph, "cc", func(ctx context.Context, c *serve.ShardClient) (*serve.CCResponse, error) {
		return c.CC(ctx, graph, algo, labels)
	})
}

// BFS implements serve.Backend across the fleet.
func (r *Router) BFS(ctx context.Context, graph string, root uint32, algo string) (*serve.BFSResponse, error) {
	return route(r, ctx, graph, "bfs", func(ctx context.Context, c *serve.ShardClient) (*serve.BFSResponse, error) {
		return c.BFS(ctx, graph, root, algo)
	})
}

// SSSP implements serve.Backend across the fleet.
func (r *Router) SSSP(ctx context.Context, graph string, root uint32, algo string) (*serve.SSSPResponse, error) {
	return route(r, ctx, graph, "sssp", func(ctx context.Context, c *serve.ShardClient) (*serve.SSSPResponse, error) {
		return c.SSSP(ctx, graph, root, algo)
	})
}

// Graphs implements serve.Backend: the union of the live shards'
// listings, replicated graphs deduplicated (first ring holder wins),
// sorted by name for a stable fleet-wide view.
func (r *Router) Graphs(ctx context.Context) ([]serve.GraphInfo, error) {
	byName := make(map[string]serve.GraphInfo)
	for _, s := range r.shards {
		if s.state.Load() != stateLive {
			continue
		}
		for _, g := range s.listing() {
			if _, dup := byName[g.Name]; !dup {
				byName[g.Name] = g
			}
		}
	}
	out := make([]serve.GraphInfo, 0, len(byName))
	for _, g := range byName {
		out = append(out, g)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Name < out[b].Name })
	return out, nil
}

// Healthz implements serve.Backend: distinct graphs and summed workers
// over the live shards. Status degrades (without failing the probe)
// when no shard is taking traffic.
func (r *Router) Healthz(ctx context.Context) (*serve.Health, error) {
	h := &serve.Health{Status: "ok"}
	names := make(map[string]bool)
	for _, s := range r.shards {
		if s.state.Load() != stateLive {
			continue
		}
		h.Shards++
		h.Workers += s.workerCount()
		for _, g := range s.listing() {
			names[g.Name] = true
		}
	}
	h.Graphs = len(names)
	if h.Shards == 0 {
		h.Status = "degraded"
	}
	return h, nil
}

var _ serve.Backend = (*Router)(nil)
