// Package fleet promotes baserved from one process to a sharded,
// replicated query fleet: a stateless Router implements the serving
// layer's Backend interface over N shard processes (each an ordinary
// baserved with the admin plane enabled), so the same HTTP handlers
// that front an in-process batcher front the whole fleet.
//
// Placement is consistent hashing over graph names (see ring.go): a
// graph's replica preference order is a pure function of the name and
// the shard list, so any number of stateless routers agree without
// coordination. A graph's candidates are the live shards that actually
// hold it (the router learns holdings from each shard's /graphs,
// refreshed by the health loop), tried least-loaded first.
//
// The failure path is budgeted, hedged, breaker-guarded and degradable
// (see breaker.go and stale.go):
//
//   - Each query gets a retry budget (Config.RetryBudget attempts)
//     with capped, seed-jittered exponential backoff between attempts;
//     transport failures and retryable 5xx answers move to the next
//     replica, final application answers end the query.
//   - A per-shard circuit breaker subsumes the old live/dead flag:
//     transport faults open it, an escalating cooldown leads to a
//     half-open state that admits exactly one trial query, and either
//     the trial or the health loop's probe-and-warm closes it.
//   - Queries hedge: after a latency-percentile delay (or a fixed
//     Config.HedgeAfter) the query is duplicated on the next live
//     replica; the first decisive answer wins and the loser is
//     cancelled.
//   - Admission control sheds load at Config.MaxInflight with a 503
//     carrying Retry-After, before any shard is touched.
//   - When no live replica holds a graph, a CC query can still be
//     answered from the router's own cache of the last good response,
//     marked "stale": true and bounded by Config.MaxStale.
//
// A query that fails because the CALLER's context died is returned
// unwrapped (the 499/504 path) and never counts against a shard.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"bagraph/internal/serve"
)

// Config shapes a Router.
type Config struct {
	// Shards lists the shard addresses (host:port or http:// URLs).
	Shards []string
	// Replicas is how many shards a NEW graph is placed on when a
	// rollout introduces it (existing graphs live wherever they are
	// already loaded). < 1 means 2.
	Replicas int
	// HealthInterval is the live-shard probe period; 0 means 1s. Shards
	// with an open circuit back off to 8x this. It also sets the
	// Retry-After hint on 503s.
	HealthInterval time.Duration
	// HealthTimeout bounds one probe; 0 means 2s.
	HealthTimeout time.Duration
	// FailAfter is how many consecutive probe failures trip a shard's
	// circuit from the health loop; < 1 means 2. (Query-path transport
	// faults have their own threshold — see BreakerThreshold.)
	FailAfter int
	// WarmTimeout bounds each CC warm-up query on a joining shard; 0
	// means 30s.
	WarmTimeout time.Duration
	// RetryBudget is the maximum attempts one query spends across the
	// replica set (first try included); < 1 means 3.
	RetryBudget int
	// RetryBackoff is the base delay before the first retry; it doubles
	// per attempt up to RetryBackoffCap and is jittered into [d/2, d].
	// 0 means 5ms.
	RetryBackoff time.Duration
	// RetryBackoffCap bounds the exponential growth; 0 means 250ms.
	RetryBackoffCap time.Duration
	// HedgeAfter controls request hedging: > 0 is a fixed delay after
	// which the query is duplicated on the next live replica; 0 (the
	// default) adapts the delay to the observed per-kind latency
	// percentile (HedgePercentile, once 16 samples exist, floored at
	// 1ms); < 0 disables hedging.
	HedgeAfter time.Duration
	// HedgePercentile is the adaptive hedge trigger in (0, 1);
	// 0 means 0.95.
	HedgePercentile float64
	// BreakerThreshold is how many consecutive query-path transport
	// faults open a shard's circuit; < 1 means 1 (a refused connection
	// is not a flaky probe).
	BreakerThreshold int
	// BreakerCooldown is the first open→half-open wait; it doubles per
	// consecutive open up to 8x. 0 means 5s.
	BreakerCooldown time.Duration
	// MaxInflight caps concurrent queries through the router; excess is
	// shed with a 503 + Retry-After before any shard is touched. 0
	// means unlimited.
	MaxInflight int
	// MaxStale is how old a router-cached CC answer may be and still be
	// served (marked "stale": true) when no live replica holds the
	// graph. 0 disables stale serving.
	MaxStale time.Duration
	// Seed drives the retry-jitter PRNG; 0 means 1. Fixing it makes a
	// test run's backoff schedule reproducible.
	Seed uint64
	// Client is the HTTP client the shard clients share; nil means a
	// dedicated keep-alive client whose idle connections the Router
	// closes on Close.
	Client *http.Client
	// Logf, when set, receives shard lifecycle events (join, circuit
	// transitions, stale serves); nil disables logging.
	Logf func(format string, args ...any)
}

// shard is one member's live state.
type shard struct {
	addr     string
	client   *serve.ShardClient
	brk      *breaker
	joined   atomic.Bool  // completed at least one probe+warm; holdings known
	inflight atomic.Int64 // queries in progress, the load signal

	mu      sync.RWMutex
	graphs  map[string]serve.GraphInfo // last /graphs listing
	workers int
}

// holds reports whether the shard's last listing carried the graph.
func (s *shard) holds(graph string) bool {
	s.mu.RLock()
	_, ok := s.graphs[graph]
	s.mu.RUnlock()
	return ok
}

// live reports whether the shard is taking normal traffic: joined and
// circuit closed.
func (s *shard) live() bool {
	return s.joined.Load() && s.brk.currentState() == breakerClosed
}

func (s *shard) setListing(infos []serve.GraphInfo, workers int) {
	m := make(map[string]serve.GraphInfo, len(infos))
	for _, g := range infos {
		m[g.Name] = g
	}
	s.mu.Lock()
	s.graphs = m
	s.workers = workers
	s.mu.Unlock()
}

func (s *shard) listing() []serve.GraphInfo {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]serve.GraphInfo, 0, len(s.graphs))
	for _, g := range s.graphs {
		out = append(out, g)
	}
	return out
}

func (s *shard) workerCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.workers
}

// Router is the stateless query front: a serve.Backend whose dispatch
// plane is the fleet.
type Router struct {
	cfg     Config
	shards  []*shard
	ring    ring
	metrics *Metrics
	stale   *staleCache

	inflight atomic.Int64  // router-wide, for admission control
	rng      atomic.Uint64 // splitmix64 state for retry jitter

	lat map[string]*sampler // per-kind latency reservoirs (hedge trigger)

	stop chan struct{}
	wg   sync.WaitGroup // health loops
	legs sync.WaitGroup // query attempt legs, hedges included
}

// New builds a router over the configured shards. Call SetMetrics (if
// wanted) and then Start to launch the health loops; Close releases
// them.
func New(cfg Config) (*Router, error) {
	if len(cfg.Shards) == 0 {
		return nil, fmt.Errorf("fleet: no shards configured")
	}
	if cfg.Replicas < 1 {
		cfg.Replicas = 2
	}
	if cfg.HealthInterval <= 0 {
		cfg.HealthInterval = time.Second
	}
	if cfg.HealthTimeout <= 0 {
		cfg.HealthTimeout = 2 * time.Second
	}
	if cfg.FailAfter < 1 {
		cfg.FailAfter = 2
	}
	if cfg.WarmTimeout <= 0 {
		cfg.WarmTimeout = 30 * time.Second
	}
	if cfg.RetryBudget < 1 {
		cfg.RetryBudget = 3
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 5 * time.Millisecond
	}
	if cfg.RetryBackoffCap <= 0 {
		cfg.RetryBackoffCap = 250 * time.Millisecond
	}
	if cfg.HedgePercentile <= 0 || cfg.HedgePercentile >= 1 {
		cfg.HedgePercentile = 0.95
	}
	if cfg.BreakerThreshold < 1 {
		cfg.BreakerThreshold = 1
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 5 * time.Second
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Transport: &http.Transport{}}
	}
	r := &Router{
		cfg:   cfg,
		stale: newStaleCache(),
		lat: map[string]*sampler{
			"cc": new(sampler), "bfs": new(sampler), "sssp": new(sampler),
		},
		stop: make(chan struct{}),
	}
	r.rng.Store(cfg.Seed)
	seen := make(map[string]bool, len(cfg.Shards))
	for _, addr := range cfg.Shards {
		c := serve.NewShardClient(addr, cfg.Client)
		if seen[c.Addr()] {
			return nil, fmt.Errorf("fleet: duplicate shard %s", c.Addr())
		}
		seen[c.Addr()] = true
		r.shards = append(r.shards, &shard{
			addr:   c.Addr(),
			client: c,
			brk:    newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown),
		})
	}
	ids := make([]string, len(r.shards))
	for i, s := range r.shards {
		ids[i] = s.addr
	}
	r.ring = newRing(ids)
	return r, nil
}

// SetMetrics attaches the router's instrument set. Call before Start.
func (r *Router) SetMetrics(m *Metrics) { r.metrics = m }

// Start launches one health loop per shard. Shards join through the
// warming state, so the router answers 503 until the first probes
// land.
func (r *Router) Start() {
	for _, s := range r.shards {
		r.noteState(s)
		r.wg.Add(1)
		go r.healthLoop(s)
	}
}

// Close stops the health loops, waits for outstanding attempt legs
// (cancelled hedges included) and releases the dedicated client's idle
// connections. In-flight queries must have drained (the HTTP server's
// shutdown guarantees that).
func (r *Router) Close() {
	close(r.stop)
	r.wg.Wait()
	r.legs.Wait()
	r.cfg.Client.CloseIdleConnections()
}

func (r *Router) logf(format string, args ...any) {
	if r.cfg.Logf != nil {
		r.cfg.Logf(format, args...)
	}
}

// splitmix is the SplitMix64 output function, the jitter PRNG.
func splitmix(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// nextRand draws from the router's seeded PRNG: deterministic for a
// given Config.Seed, lock-free under concurrent queries.
func (r *Router) nextRand() uint64 {
	return splitmix(r.rng.Add(0x9e3779b97f4a7c15))
}

// noteState refreshes the shard's gauges after a circuit transition.
func (r *Router) noteState(s *shard) {
	st := s.brk.currentState()
	r.metrics.setBreaker(s.addr, st)
	r.metrics.setUp(s.addr, s.joined.Load() && st == breakerClosed)
}

// noteFailure counts one classified shard fault against its circuit.
func (r *Router) noteFailure(s *shard, cause string) {
	if s.brk.onFailure() {
		r.metrics.observeFailover(s.addr)
		r.logf("fleet: shard %s circuit opened (%s); rerouting its graphs to replicas", s.addr, cause)
	}
	r.noteState(s)
}

// noteSuccess closes the shard's circuit (any answer — success or a
// typed application error — proves the shard alive).
func (r *Router) noteSuccess(s *shard) {
	reopened := s.brk.currentState() != breakerClosed
	s.brk.onSuccess()
	if reopened {
		r.noteState(s)
		r.logf("fleet: shard %s circuit closed by a successful query", s.addr)
	}
}

// healthLoop probes one shard forever: closed-circuit shards every
// HealthInterval, open ones with exponential backoff up to 8x. A probe
// is a /healthz round-trip plus a /graphs refresh (holdings drive
// placement, so they must track rollouts); FailAfter consecutive
// failures trip a closed circuit, and a recovering shard is warmed
// before its circuit closes.
func (r *Router) healthLoop(s *shard) {
	defer r.wg.Done()
	failures := 0
	delay := time.Duration(0) // probe immediately on start
	for {
		select {
		case <-r.stop:
			return
		case <-time.After(delay):
		}
		if r.probe(s) {
			failures = 0
			delay = r.cfg.HealthInterval
			continue
		}
		failures++
		if failures >= r.cfg.FailAfter && s.brk.currentState() == breakerClosed {
			if s.brk.trip() {
				r.metrics.observeFailover(s.addr)
				r.logf("fleet: shard %s circuit opened (%d consecutive failed probes)", s.addr, failures)
			}
			r.noteState(s)
		}
		if s.brk.currentState() != breakerClosed {
			// Exponential backoff while the circuit is open, capped at 8
			// intervals.
			shift := failures - r.cfg.FailAfter
			if shift < 0 {
				shift = 0
			}
			if shift > 3 {
				shift = 3
			}
			delay = r.cfg.HealthInterval << shift
		} else {
			delay = r.cfg.HealthInterval
		}
	}
}

// probe runs one health check; true means the shard answered and its
// listing is fresh. A probe landing on a shard whose circuit is not
// closed re-warms it and closes the circuit — the health loop is the
// recovery path that restores caches; the query path's half-open trial
// is the fast path for transient partitions.
func (r *Router) probe(s *shard) bool {
	ctx, cancel := context.WithTimeout(context.Background(), r.cfg.HealthTimeout)
	defer cancel()
	h, err := s.client.Healthz(ctx)
	if err == nil {
		var infos []serve.GraphInfo
		infos, err = s.client.Graphs(ctx)
		if err == nil {
			s.setListing(infos, h.Workers)
		}
	}
	r.metrics.observeHealth(s.addr, err == nil)
	if err != nil {
		return false
	}
	if !s.joined.Load() || s.brk.currentState() != breakerClosed {
		r.warm(s)
		s.brk.onSuccess()
		s.joined.Store(true)
		r.noteState(s)
		r.logf("fleet: shard %s live (%d graphs, %d workers)", s.addr, len(s.listing()), s.workerCount())
	}
	return true
}

// warm refills a joining shard's CC cache before it takes traffic: one
// CC query (default algorithm, no labels) per held graph, so the first
// real query after a join or rollout hits a warm epoch cache instead
// of paying the fill. Best-effort — a failed warm-up only costs the
// first client the fill it would have paid anyway.
func (r *Router) warm(s *shard) {
	for _, g := range s.listing() {
		ctx, cancel := context.WithTimeout(context.Background(), r.cfg.WarmTimeout)
		_, err := s.client.CC(ctx, g.Name, "", false)
		cancel()
		r.metrics.observeWarm(s.addr)
		if err != nil {
			r.logf("fleet: warm %s on %s: %v", g.Name, s.addr, err)
			continue
		}
	}
}

// candidates returns the holders taking normal traffic (circuit
// closed), ring preference order re-sorted least-loaded first (ties
// keep ring order), plus whether ANY shard — live or not — holds the
// graph (the 404-vs-503 distinction). This is the peek view; the
// query path picks through pick(), which also admits half-open trials.
func (r *Router) candidates(graph string) (cands []*shard, known bool) {
	for _, idx := range r.ring.order(graph) {
		s := r.shards[idx]
		if !s.holds(graph) {
			continue
		}
		known = true
		if s.live() {
			cands = append(cands, s)
		}
	}
	sort.SliceStable(cands, func(a, b int) bool {
		return cands[a].inflight.Load() < cands[b].inflight.Load()
	})
	return cands, known
}

// deadHolders counts graph's holders that cannot take traffic right
// now — the number the router's 503 bodies report.
func (r *Router) deadHolders(graph string) (dead, holders int) {
	for _, idx := range r.ring.order(graph) {
		s := r.shards[idx]
		if !s.holds(graph) {
			continue
		}
		holders++
		if !s.live() {
			dead++
		}
	}
	return dead, holders
}

// pick selects the next shard to try for graph: closed-circuit holders
// least-loaded first, then half-open holders (whose admission is the
// circuit's one trial). Shards in tried are avoided while a fresh
// alternative exists; with none left they are re-admitted — a shard
// may have recovered across a backoff. trial reports whether the
// granted request is a half-open probe the caller must settle.
func (r *Router) pick(graph string, tried map[string]bool) (s *shard, trial, known bool) {
	var closed, half []*shard
	for _, idx := range r.ring.order(graph) {
		sh := r.shards[idx]
		if !sh.holds(graph) {
			continue
		}
		known = true
		if !sh.joined.Load() {
			continue
		}
		switch sh.brk.currentState() {
		case breakerClosed:
			closed = append(closed, sh)
		case breakerHalfOpen:
			half = append(half, sh)
		}
	}
	sort.SliceStable(closed, func(a, b int) bool {
		return closed[a].inflight.Load() < closed[b].inflight.Load()
	})
	for _, skipTried := range []bool{true, false} {
		for _, set := range [][]*shard{closed, half} {
			for _, sh := range set {
				if skipTried && tried[sh.addr] {
					continue
				}
				if ok, tr := sh.brk.allow(); ok {
					return sh, tr, known
				}
			}
		}
	}
	return nil, false, known
}

// retryAfter is the whole-seconds Retry-After hint on 503s: one health
// interval, the soonest the candidate set can plausibly change.
func (r *Router) retryAfter() int {
	s := int((r.cfg.HealthInterval + time.Second - 1) / time.Second)
	if s < 1 {
		s = 1
	}
	return s
}

// admit applies router-side admission control; a non-nil return is the
// shed answer (503 + Retry-After), recorded before any shard is
// touched.
func (r *Router) admit(kind string) *serve.Error {
	if max := r.cfg.MaxInflight; max > 0 && r.inflight.Load() >= int64(max) {
		r.metrics.observeShed(kind)
		return &serve.Error{
			Status:     http.StatusServiceUnavailable,
			RetryAfter: r.retryAfter(),
			Message:    fmt.Sprintf("router at capacity: %d queries in flight", max),
		}
	}
	return nil
}

// backoff sleeps the capped, jittered exponential delay before the
// attempt'th retry (1-based), observing ctx. The jitter draw comes
// from the router's seeded PRNG, landing in [d/2, d].
func (r *Router) backoff(ctx context.Context, attempt int) error {
	d := r.cfg.RetryBackoff << (attempt - 1)
	if d > r.cfg.RetryBackoffCap || d <= 0 {
		d = r.cfg.RetryBackoffCap
	}
	d = d/2 + time.Duration(r.nextRand()%uint64(d/2+1))
	select {
	case <-time.After(d):
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// hedgeDelay returns the delay after which a query should hedge to a
// second replica, or < 0 when hedging is off (disabled, or no latency
// history yet for the adaptive trigger).
func (r *Router) hedgeDelay(kind string) time.Duration {
	switch {
	case r.cfg.HedgeAfter > 0:
		return r.cfg.HedgeAfter
	case r.cfg.HedgeAfter < 0:
		return -1
	}
	p, ok := r.lat[kind].percentile(r.cfg.HedgePercentile)
	if !ok {
		return -1
	}
	if p < time.Millisecond {
		p = time.Millisecond
	}
	return p
}

// retryableStatus reports whether a shard's application answer is
// worth retrying on a replica: 5xx a replica may not share. 504 is the
// shard's own query deadline firing — a replica would burn the same
// time — and stays final, as do all 4xx (authoritative).
func retryableStatus(code int) bool {
	return code == http.StatusInternalServerError ||
		code == http.StatusBadGateway ||
		code == http.StatusServiceUnavailable
}

// merged copies tried with addr added — the hedge's exclusion set,
// built without mutating the caller's map before the primary settles.
func merged(tried map[string]bool, addr string) map[string]bool {
	m := make(map[string]bool, len(tried)+1)
	for k, v := range tried {
		m[k] = v
	}
	m[addr] = true
	return m
}

// leg is one attempt leg's outcome (primary or hedge).
type leg[T any] struct {
	out   T
	err   error
	s     *shard
	trial bool
	hedge bool
	took  time.Duration
}

// attempt runs one budgeted attempt: a primary call on s, hedged onto
// the next admissible replica after the hedge delay. The first
// decisive answer — a success or a final application error — wins and
// the loser's context is cancelled; a transport fault or retryable
// 5xx from one leg is counted (breaker, tried set) and the other leg
// is awaited. The caller's own context error returns unwrapped and is
// never blamed on a shard: a cancelled client is the 499 path, not a
// dead replica.
func attempt[T any](r *Router, ctx context.Context, kind, graph string, s *shard, trial bool,
	tried map[string]bool, call func(context.Context, *serve.ShardClient) (T, error)) (T, error) {
	var zero T
	ch := make(chan leg[T], 2)
	launch := func(cctx context.Context, sh *shard, tr, hedge bool) {
		r.legs.Add(1)
		go func() {
			defer r.legs.Done()
			sh.inflight.Add(1)
			start := time.Now()
			out, err := call(cctx, sh.client)
			sh.inflight.Add(-1)
			ch <- leg[T]{out: out, err: err, s: sh, trial: tr, hedge: hedge, took: time.Since(start)}
		}()
	}
	pctx, pcancel := context.WithCancel(ctx)
	defer pcancel()
	hctx, hcancel := context.WithCancel(ctx)
	defer hcancel()

	r.metrics.observeRequest(s.addr, kind)
	launch(pctx, s, trial, false)
	outstanding := 1

	var timerC <-chan time.Time
	if hd := r.hedgeDelay(kind); hd >= 0 && !trial {
		timer := time.NewTimer(hd)
		defer timer.Stop()
		timerC = timer.C
	}

	var lastErr error
	for {
		select {
		case <-timerC:
			timerC = nil
			// Hedge onto the next admissible replica. Half-open trials
			// are not duplicated — a probe should be one request — so a
			// granted trial slot is returned unused.
			hs, htrial, _ := r.pick(graph, merged(tried, s.addr))
			if hs == nil || hs == s {
				continue
			}
			if htrial {
				hs.brk.release()
				continue
			}
			r.metrics.observeHedge(kind)
			r.metrics.observeRequest(hs.addr, kind)
			launch(hctx, hs, false, true)
			outstanding++
		case lg := <-ch:
			outstanding--
			if lg.err == nil {
				pcancel()
				hcancel()
				r.noteSuccess(lg.s)
				r.lat[kind].observe(lg.took)
				if lg.hedge {
					r.metrics.observeHedgeWon(kind)
				}
				return lg.out, nil
			}
			if pe := ctx.Err(); pe != nil {
				// The caller died; release any unsettled trial and let
				// the cancelled legs drain on their own.
				if lg.trial {
					lg.s.brk.release()
				}
				pcancel()
				hcancel()
				return zero, pe
			}
			var te *serve.TransportError
			var se *serve.Error
			switch {
			case errors.As(lg.err, &te):
				// Genuine transport fault: count it against the shard.
				tried[lg.s.addr] = true
				lastErr = lg.err
				r.noteFailure(lg.s, te.Err.Error())
				r.metrics.observeRetry(lg.s.addr)
			case errors.As(lg.err, &se) && retryableStatus(se.Status):
				// The shard answered (it is alive — the circuit resets),
				// but a replica may do better: retry without blame.
				tried[lg.s.addr] = true
				lastErr = lg.err
				r.noteSuccess(lg.s)
				r.metrics.observeRetry(lg.s.addr)
			default:
				// Final application answer (4xx, 504): decisive.
				pcancel()
				hcancel()
				r.noteSuccess(lg.s)
				return zero, lg.err
			}
			if outstanding == 0 {
				return zero, lastErr
			}
		}
	}
}

// route runs one query against the graph's replica set under the
// retry budget: each attempt picks the least-loaded admissible holder
// (hedging to a second), transport faults and retryable 5xx move on
// after a jittered backoff, and a final application answer ends the
// query. An exhausted budget answers 503 with a Retry-After hint and
// a body naming the graph and its dead-holder count.
func route[T any](r *Router, ctx context.Context, graph, kind string,
	call func(context.Context, *serve.ShardClient) (T, error)) (T, error) {
	var zero T
	r.inflight.Add(1)
	defer r.inflight.Add(-1)
	tried := make(map[string]bool, 2)
	known := false
	var lastErr error
	budget := r.cfg.RetryBudget
	for a := 0; a < budget; a++ {
		if a > 0 {
			if err := r.backoff(ctx, a); err != nil {
				return zero, err
			}
		}
		s, trial, k := r.pick(graph, tried)
		known = known || k
		if s == nil {
			if !known {
				break // authoritatively absent: don't burn the budget
			}
			// No admissible holder this instant; the next backoff gives
			// a cooldown or the health loop time to return one.
			continue
		}
		out, err := attempt(r, ctx, kind, graph, s, trial, tried, call)
		if err == nil {
			return out, nil
		}
		var te *serve.TransportError
		var se *serve.Error
		switch {
		case errors.As(err, &te),
			errors.As(err, &se) && retryableStatus(se.Status):
			lastErr = err
			continue
		default:
			// Final application answers and caller-context errors pass
			// through unwrapped (the 4xx/499/504 paths).
			return zero, err
		}
	}
	if !known {
		return zero, serve.Errorf(http.StatusNotFound, "graph %q not loaded", graph)
	}
	r.metrics.observeBudgetExhausted(kind)
	dead, holders := r.deadHolders(graph)
	msg := fmt.Sprintf("graph %q: no live replica (%d of %d holders dead; retry budget %d exhausted)",
		graph, dead, holders, budget)
	if lastErr != nil {
		msg += fmt.Sprintf(": %v", lastErr)
	}
	return zero, &serve.Error{
		Status:     http.StatusServiceUnavailable,
		RetryAfter: r.retryAfter(),
		Message:    msg,
	}
}

// CC implements serve.Backend across the fleet. Successful answers
// refresh the router's degradation cache; a 503 (no live replica
// within the budget) falls back to the cached answer, marked stale,
// when one exists within Config.MaxStale.
func (r *Router) CC(ctx context.Context, graph, algo string, labels bool) (*serve.CCResponse, error) {
	if se := r.admit("cc"); se != nil {
		return nil, se
	}
	out, err := route(r, ctx, graph, "cc", func(ctx context.Context, c *serve.ShardClient) (*serve.CCResponse, error) {
		return c.CC(ctx, graph, algo, labels)
	})
	if err == nil {
		r.stale.store(graph, algo, labels, out)
		return out, nil
	}
	if resp, ok := r.staleFor(graph, algo, labels, err); ok {
		return resp, nil
	}
	return nil, err
}

// staleFor serves the degraded answer for a 503: the last good CC
// response for the same (graph, algo, labels) request, if it is
// younger than MaxStale, marked "stale": true.
func (r *Router) staleFor(graph, algo string, labels bool, err error) (*serve.CCResponse, bool) {
	if r.cfg.MaxStale <= 0 {
		return nil, false
	}
	var se *serve.Error
	if !errors.As(err, &se) || se.Status != http.StatusServiceUnavailable {
		return nil, false
	}
	resp, age, ok := r.stale.get(graph, algo, labels, r.cfg.MaxStale)
	if !ok {
		return nil, false
	}
	r.metrics.observeStale(graph)
	r.logf("fleet: serving stale CC for %q (age %v, no live replica)", graph, age.Round(time.Millisecond))
	return resp, true
}

// BFS implements serve.Backend across the fleet.
func (r *Router) BFS(ctx context.Context, graph string, root uint32, algo string) (*serve.BFSResponse, error) {
	if se := r.admit("bfs"); se != nil {
		return nil, se
	}
	return route(r, ctx, graph, "bfs", func(ctx context.Context, c *serve.ShardClient) (*serve.BFSResponse, error) {
		return c.BFS(ctx, graph, root, algo)
	})
}

// SSSP implements serve.Backend across the fleet.
func (r *Router) SSSP(ctx context.Context, graph string, root uint32, algo string) (*serve.SSSPResponse, error) {
	if se := r.admit("sssp"); se != nil {
		return nil, se
	}
	return route(r, ctx, graph, "sssp", func(ctx context.Context, c *serve.ShardClient) (*serve.SSSPResponse, error) {
		return c.SSSP(ctx, graph, root, algo)
	})
}

// Graphs implements serve.Backend: the union of the live shards'
// listings, replicated graphs deduplicated (first ring holder wins),
// sorted by name for a stable fleet-wide view.
func (r *Router) Graphs(ctx context.Context) ([]serve.GraphInfo, error) {
	byName := make(map[string]serve.GraphInfo)
	for _, s := range r.shards {
		if !s.live() {
			continue
		}
		for _, g := range s.listing() {
			if _, dup := byName[g.Name]; !dup {
				byName[g.Name] = g
			}
		}
	}
	out := make([]serve.GraphInfo, 0, len(byName))
	for _, g := range byName {
		out = append(out, g)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Name < out[b].Name })
	return out, nil
}

// Healthz implements serve.Backend: distinct graphs and summed workers
// over the live shards. Status degrades (without failing the probe)
// when no shard is taking traffic.
func (r *Router) Healthz(ctx context.Context) (*serve.Health, error) {
	h := &serve.Health{Status: "ok"}
	names := make(map[string]bool)
	for _, s := range r.shards {
		if !s.live() {
			continue
		}
		h.Shards++
		h.Workers += s.workerCount()
		for _, g := range s.listing() {
			names[g.Name] = true
		}
	}
	h.Graphs = len(names)
	if h.Shards == 0 {
		h.Status = "degraded"
	}
	return h, nil
}

var _ serve.Backend = (*Router)(nil)
