package fleet

// The router's observability series, registered onto the serving
// layer's metrics registry so one GET /metrics scrape covers both the
// HTTP plane and the fleet plane. A nil *Metrics disables everything
// (each observe is a nil-receiver no-op), mirroring serve.Metrics.

import "bagraph/internal/metrics"

// Metrics is the router's instrument set.
type Metrics struct {
	requests  *metrics.CounterVec // baserved_router_shard_requests_total{shard,kind}
	retries   *metrics.CounterVec // baserved_router_retries_total{shard}
	failovers *metrics.CounterVec // baserved_router_failovers_total{shard}
	up        *metrics.GaugeVec   // baserved_router_shard_up{shard}
	health    *metrics.CounterVec // baserved_router_health_checks_total{shard,result}
	warms     *metrics.CounterVec // baserved_router_warm_queries_total{shard}
	breaker   *metrics.GaugeVec   // baserved_router_breaker_state{shard}
	hedges    *metrics.CounterVec // baserved_router_hedges_total{kind}
	hedgeWins *metrics.CounterVec // baserved_router_hedge_wins_total{kind}
	exhausted *metrics.CounterVec // baserved_router_retry_budget_exhausted_total{kind}
	staleHits *metrics.CounterVec // baserved_router_stale_serves_total{graph}
	shed      *metrics.CounterVec // baserved_router_shed_total{kind}
}

// NewMetrics registers the router series on reg (typically the serving
// core's registry, via serve.Metrics.Registry()).
func NewMetrics(reg *metrics.Registry) *Metrics {
	return &Metrics{
		requests: reg.CounterVec("baserved_router_shard_requests_total",
			"Queries the router attempted against each shard, by kind.", "shard", "kind"),
		retries: reg.CounterVec("baserved_router_retries_total",
			"Queries retried on a replica after a shard transport failure.", "shard"),
		failovers: reg.CounterVec("baserved_router_failovers_total",
			"Live-to-dead shard transitions; the shard's graphs re-route to replicas.", "shard"),
		up: reg.GaugeVec("baserved_router_shard_up",
			"Shard health: 1 live (taking traffic), 0 warming or dead.", "shard"),
		health: reg.CounterVec("baserved_router_health_checks_total",
			"Health probes per shard, by result (ok | fail).", "shard", "result"),
		warms: reg.CounterVec("baserved_router_warm_queries_total",
			"CC cache warm-up queries issued to joining shards.", "shard"),
		breaker: reg.GaugeVec("baserved_router_breaker_state",
			"Per-shard circuit position: 0 closed, 1 half-open, 2 open.", "shard"),
		hedges: reg.CounterVec("baserved_router_hedges_total",
			"Hedge legs fired (query duplicated on a second replica), by kind.", "kind"),
		hedgeWins: reg.CounterVec("baserved_router_hedge_wins_total",
			"Hedge legs that answered before the primary, by kind.", "kind"),
		exhausted: reg.CounterVec("baserved_router_retry_budget_exhausted_total",
			"Queries that burned their whole retry budget and answered 503, by kind.", "kind"),
		staleHits: reg.CounterVec("baserved_router_stale_serves_total",
			"Degraded CC answers served from the router's cache, by graph.", "graph"),
		shed: reg.CounterVec("baserved_router_shed_total",
			"Queries shed by admission control (inflight cap), by kind.", "kind"),
	}
}

func (m *Metrics) observeRequest(shard, kind string) {
	if m != nil {
		m.requests.With(shard, kind).Inc()
	}
}

func (m *Metrics) observeRetry(shard string) {
	if m != nil {
		m.retries.With(shard).Inc()
	}
}

func (m *Metrics) observeFailover(shard string) {
	if m != nil {
		m.failovers.With(shard).Inc()
	}
}

func (m *Metrics) setUp(shard string, up bool) {
	if m != nil {
		v := 0.0
		if up {
			v = 1
		}
		m.up.With(shard).Set(v)
	}
}

func (m *Metrics) observeHealth(shard string, ok bool) {
	if m != nil {
		result := "fail"
		if ok {
			result = "ok"
		}
		m.health.With(shard, result).Inc()
	}
}

func (m *Metrics) observeWarm(shard string) {
	if m != nil {
		m.warms.With(shard).Inc()
	}
}

func (m *Metrics) setBreaker(shard string, st breakerState) {
	if m != nil {
		m.breaker.With(shard).Set(float64(st))
	}
}

func (m *Metrics) observeHedge(kind string) {
	if m != nil {
		m.hedges.With(kind).Inc()
	}
}

func (m *Metrics) observeHedgeWon(kind string) {
	if m != nil {
		m.hedgeWins.With(kind).Inc()
	}
}

func (m *Metrics) observeBudgetExhausted(kind string) {
	if m != nil {
		m.exhausted.With(kind).Inc()
	}
}

func (m *Metrics) observeStale(graph string) {
	if m != nil {
		m.staleHits.With(graph).Inc()
	}
}

func (m *Metrics) observeShed(kind string) {
	if m != nil {
		m.shed.With(kind).Inc()
	}
}
