package fleet

// The router-side degradation cache: the last good CC answer per
// (graph, algo, labels) request shape, served — marked "stale": true —
// when every replica holding the graph is gone and the entry is still
// younger than Config.MaxStale. CC is the one query this is sound for:
// the answer is per-graph (no per-query root), so the last response IS
// the best available approximation of the current one. Traversals stay
// 503 — a stale distance array rooted at someone else's vertex is not
// a degraded answer, it is a wrong one.

import (
	"sync"
	"time"

	"bagraph/internal/serve"
)

type staleKey struct {
	graph  string
	algo   string
	labels bool
}

type staleEntry struct {
	resp serve.CCResponse
	at   time.Time
}

// staleCache holds last-good CC responses. now is injectable so tests
// can age entries without sleeping.
type staleCache struct {
	now func() time.Time

	mu sync.RWMutex
	m  map[staleKey]staleEntry
}

func newStaleCache() *staleCache {
	return &staleCache{now: time.Now, m: make(map[staleKey]staleEntry)}
}

// store records a fresh answer for its request shape.
func (c *staleCache) store(graph, algo string, labels bool, resp *serve.CCResponse) {
	k := staleKey{graph: graph, algo: algo, labels: labels}
	c.mu.Lock()
	c.m[k] = staleEntry{resp: *resp, at: c.now()}
	c.mu.Unlock()
}

// get returns a copy of the cached answer with Stale set, plus its
// age, when one exists within maxAge. The copy is shallow: the Labels
// slice is shared with the stored entry and treated read-only.
func (c *staleCache) get(graph, algo string, labels bool, maxAge time.Duration) (*serve.CCResponse, time.Duration, bool) {
	k := staleKey{graph: graph, algo: algo, labels: labels}
	c.mu.RLock()
	e, ok := c.m[k]
	c.mu.RUnlock()
	if !ok {
		return nil, 0, false
	}
	age := c.now().Sub(e.at)
	if age > maxAge {
		return nil, 0, false
	}
	resp := e.resp
	resp.Stale = true
	return &resp, age, true
}
