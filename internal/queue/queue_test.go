package queue

import "testing"

func TestFIFOOrder(t *testing.T) {
	q := New(10)
	for i := uint32(0); i < 10; i++ {
		q.Push(i)
	}
	for i := uint32(0); i < 10; i++ {
		if got := q.Pop(); got != i {
			t.Fatalf("Pop() = %d, want %d", got, i)
		}
	}
	if !q.Empty() {
		t.Fatal("queue not empty after draining")
	}
}

func TestLen(t *testing.T) {
	q := New(5)
	if q.Len() != 0 {
		t.Fatalf("new queue Len = %d", q.Len())
	}
	q.Push(1)
	q.Push(2)
	if q.Len() != 2 {
		t.Fatalf("Len = %d, want 2", q.Len())
	}
	q.Pop()
	if q.Len() != 1 {
		t.Fatalf("Len = %d, want 1", q.Len())
	}
}

func TestPopEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Pop on empty queue did not panic")
		}
	}()
	New(3).Pop()
}

func TestReset(t *testing.T) {
	q := New(4)
	q.Push(9)
	q.Push(8)
	q.Reset()
	if !q.Empty() || q.Len() != 0 || q.Head() != 0 || q.Tail() != 0 {
		t.Fatal("Reset did not clear queue state")
	}
}

func TestDirectTailManipulation(t *testing.T) {
	// Emulates the branch-avoiding enqueue: write at tail, conditionally
	// advance. Writing without advancing must leave the element outside
	// the logical queue.
	q := New(8)
	buf := q.Buf()
	buf[q.Tail()] = 42
	// Not advanced: element is invisible.
	if q.Len() != 0 {
		t.Fatal("unadvanced write became visible")
	}
	q.SetTail(q.Tail() + 1)
	if q.Len() != 1 || q.Pop() != 42 {
		t.Fatal("advanced write not visible as FIFO element")
	}
}

func TestExtraSlackSlot(t *testing.T) {
	// The queue must allow a write at buf[tail] even after n pushes.
	n := 16
	q := New(n)
	for i := 0; i < n; i++ {
		q.Push(uint32(i))
	}
	// This write must not be out of bounds.
	q.Buf()[q.Tail()] = 999
	if q.Len() != n {
		t.Fatalf("Len = %d after %d pushes", q.Len(), n)
	}
}

func TestDrained(t *testing.T) {
	q := New(6)
	for i := uint32(0); i < 4; i++ {
		q.Push(i * 10)
	}
	q.Pop()
	q.Pop()
	d := q.Drained()
	if len(d) != 4 {
		t.Fatalf("Drained len = %d, want 4", len(d))
	}
	for i, v := range d {
		if v != uint32(i*10) {
			t.Fatalf("Drained[%d] = %d, want %d", i, v, i*10)
		}
	}
}
