// Package queue provides the flat FIFO vertex queue used by the BFS
// kernels.
//
// The paper's BFS implementations (Algorithms 4 and 5) use a single
// preallocated array of |V| slots: every vertex enters the queue at most
// once, so the queue never wraps. Keeping the representation this simple
// matters for the branch-avoiding variant, whose correctness depends on
// being able to write one slot past the logical tail ("outside" the queue,
// §5.2) and to advance the tail with a conditional add.
package queue

// VertexQueue is a fixed-capacity FIFO of uint32 vertex ids. Each vertex is
// expected to be enqueued at most once, so capacity |V| suffices and the
// storage never wraps.
type VertexQueue struct {
	buf  []uint32
	head int
	tail int
}

// New returns a queue with capacity for n vertices.
func New(n int) *VertexQueue {
	// One extra slot so the branch-avoiding BFS can always store a
	// candidate at buf[tail] even when the queue already holds n-1 live
	// vertices plus the cursor.
	return &VertexQueue{buf: make([]uint32, n+1)}
}

// Reset empties the queue without releasing storage.
func (q *VertexQueue) Reset() { q.head, q.tail = 0, 0 }

// Len returns the number of enqueued-but-not-dequeued vertices.
func (q *VertexQueue) Len() int { return q.tail - q.head }

// Empty reports whether the queue holds no vertices.
func (q *VertexQueue) Empty() bool { return q.head == q.tail }

// Push appends v.
func (q *VertexQueue) Push(v uint32) {
	q.buf[q.tail] = v
	q.tail++
}

// Pop removes and returns the oldest vertex. It panics on an empty queue.
func (q *VertexQueue) Pop() uint32 {
	if q.head == q.tail {
		panic("queue: pop from empty queue")
	}
	v := q.buf[q.head]
	q.head++
	return v
}

// Buf exposes the backing storage. The branch-avoiding BFS writes directly
// to Buf()[Tail()] and then conditionally advances the tail, mirroring the
// paper's Q[Qlen] ← w followed by COND_ADD(Qlen, 1).
func (q *VertexQueue) Buf() []uint32 { return q.buf }

// Tail returns the tail index (the next write position).
func (q *VertexQueue) Tail() int { return q.tail }

// SetTail overwrites the tail index. The caller is responsible for keeping
// head ≤ tail ≤ cap.
func (q *VertexQueue) SetTail(t int) { q.tail = t }

// Head returns the head index (the next read position).
func (q *VertexQueue) Head() int { return q.head }

// Drained returns the slice of all vertices ever pushed (in FIFO order)
// since the last Reset. Useful for inspecting a completed traversal.
func (q *VertexQueue) Drained() []uint32 { return q.buf[:q.tail] }
