package cachesim

import (
	"testing"

	"bagraph/internal/xrand"
)

func TestConfigValidation(t *testing.T) {
	good := Config{SizeBytes: 32 * 1024, Ways: 8}
	if err := good.Valid(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{SizeBytes: 0, Ways: 4},
		{SizeBytes: 1024, Ways: 0},
		{SizeBytes: 1000, Ways: 2},       // not a multiple of way set
		{SizeBytes: 3 * 64 * 2, Ways: 2}, // 3 sets: not a power of two
	}
	for _, c := range bad {
		if err := c.Valid(); err == nil {
			t.Errorf("invalid config accepted: %+v", c)
		}
	}
}

func TestNewHierarchyRejectsBadConfig(t *testing.T) {
	if _, err := NewHierarchy(Config{SizeBytes: 7, Ways: 3}); err == nil {
		t.Fatal("NewHierarchy accepted invalid config")
	}
}

func TestColdMissThenHit(t *testing.T) {
	h := MustNewHierarchy(Config{SizeBytes: 1024, Ways: 2})
	if lvl := h.Access(0); lvl != 2 {
		t.Fatalf("cold access served at level %d, want memory (2)", lvl)
	}
	if lvl := h.Access(0); lvl != 1 {
		t.Fatalf("warm access served at level %d, want L1", lvl)
	}
	// Same line, different byte.
	if lvl := h.Access(63); lvl != 1 {
		t.Fatalf("same-line access served at level %d, want L1", lvl)
	}
	// Next line: cold again.
	if lvl := h.Access(64); lvl != 2 {
		t.Fatalf("next-line access served at level %d, want memory", lvl)
	}
}

func TestLRUEviction(t *testing.T) {
	// Direct-mapped-ish: 2 ways, 2 sets => 4 lines capacity.
	h := MustNewHierarchy(Config{SizeBytes: 4 * LineBytes, Ways: 2})
	// Three lines mapping to the same set (stride = 2 lines): A, B, C.
	a, b, c := uint64(0), uint64(2*LineBytes), uint64(4*LineBytes)
	h.Access(a)
	h.Access(b)
	h.Access(c) // evicts a (LRU)
	if lvl := h.Access(b); lvl != 1 {
		t.Fatalf("b evicted unexpectedly (level %d)", lvl)
	}
	if lvl := h.Access(a); lvl == 1 {
		t.Fatal("a should have been evicted (LRU)")
	}
}

func TestLRUTouchRefreshesRecency(t *testing.T) {
	h := MustNewHierarchy(Config{SizeBytes: 4 * LineBytes, Ways: 2})
	a, b, c := uint64(0), uint64(2*LineBytes), uint64(4*LineBytes)
	h.Access(a)
	h.Access(b)
	h.Access(a) // refresh a; b becomes LRU
	h.Access(c) // evicts b
	if lvl := h.Access(a); lvl != 1 {
		t.Fatal("refreshed line a was evicted")
	}
	if lvl := h.Access(b); lvl == 1 {
		t.Fatal("stale line b survived eviction")
	}
}

func TestTwoLevelFill(t *testing.T) {
	h := MustNewHierarchy(
		Config{SizeBytes: 2 * LineBytes, Ways: 1}, // tiny L1: 2 lines
		Config{SizeBytes: 64 * LineBytes, Ways: 4},
	)
	if h.Levels() != 2 {
		t.Fatalf("Levels = %d", h.Levels())
	}
	// Fill: first touch goes to memory (level 3).
	if lvl := h.Access(0); lvl != 3 {
		t.Fatalf("cold access level %d, want 3", lvl)
	}
	// Evict it from L1 by touching the conflicting line.
	h.Access(2 * LineBytes) // same L1 set (direct-mapped, 2 sets)
	// Now address 0 must miss L1 but hit L2.
	if lvl := h.Access(0); lvl != 2 {
		t.Fatalf("access after L1 eviction served at %d, want L2", lvl)
	}
}

func TestResetColdens(t *testing.T) {
	h := MustNewHierarchy(Config{SizeBytes: 1024, Ways: 2})
	h.Access(128)
	h.Reset()
	if lvl := h.Access(128); lvl != 2 {
		t.Fatalf("post-Reset access level %d, want memory", lvl)
	}
}

func TestZeroLevelHierarchy(t *testing.T) {
	h := MustNewHierarchy()
	if lvl := h.Access(0); lvl != 1 {
		t.Fatalf("uncached hierarchy served at %d, want 1 (memory)", lvl)
	}
}

func TestWorkingSetFitsCapacity(t *testing.T) {
	// A working set smaller than the cache must achieve a 100% hit rate
	// after the first pass, for any access order.
	h := MustNewHierarchy(Config{SizeBytes: 32 * 1024, Ways: 8})
	lines := 256 // 16 KB < 32 KB
	r := xrand.New(9)
	// Warm.
	for i := 0; i < lines; i++ {
		h.Access(uint64(i * LineBytes))
	}
	// Random probes must all hit.
	for i := 0; i < 10000; i++ {
		addr := uint64(r.Intn(lines) * LineBytes)
		if lvl := h.Access(addr); lvl != 1 {
			t.Fatalf("fit working set missed at access %d (level %d)", i, lvl)
		}
	}
}

func TestStreamingMissesDominate(t *testing.T) {
	// A working set 16x the cache, streamed cyclically, must miss every
	// time with LRU (the classic LRU worst case).
	h := MustNewHierarchy(Config{SizeBytes: 8 * 1024, Ways: 4})
	lines := 16 * 8 * 1024 / LineBytes
	misses := 0
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < lines; i++ {
			if h.Access(uint64(i*LineBytes)) != 1 {
				misses++
			}
		}
	}
	if misses != 2*lines {
		t.Fatalf("cyclic streaming: %d misses, want %d", misses, 2*lines)
	}
}

func BenchmarkAccessHot(b *testing.B) {
	h := MustNewHierarchy(
		Config{SizeBytes: 32 * 1024, Ways: 8},
		Config{SizeBytes: 256 * 1024, Ways: 8},
		Config{SizeBytes: 8 << 20, Ways: 16},
	)
	for i := 0; i < b.N; i++ {
		h.Access(uint64(i%512) * LineBytes)
	}
}

func BenchmarkAccessStreaming(b *testing.B) {
	h := MustNewHierarchy(
		Config{SizeBytes: 32 * 1024, Ways: 8},
		Config{SizeBytes: 256 * 1024, Ways: 8},
	)
	for i := 0; i < b.N; i++ {
		h.Access(uint64(i) * LineBytes)
	}
}
