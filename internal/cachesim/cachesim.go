// Package cachesim simulates a multi-level set-associative LRU cache
// hierarchy.
//
// The paper's timing discussion (Table 1 lists each system's cache
// geometry; §6.4 weighs memory behaviour against branch behaviour) needs
// loads and stores priced by where they hit. The simulator models up to
// three inclusive levels with 64-byte lines, true-LRU replacement within a
// set, and write-allocate stores. Writeback traffic is not modeled — the
// kernels under study are read-dominated and the paper's store argument is
// about buffer pressure, which the timing model prices per store instead.
package cachesim

import "fmt"

// LineBytes is the cache line size used throughout (64 bytes, as on every
// system in the paper's Table 1).
const LineBytes = 64

// Config describes one cache level.
type Config struct {
	SizeBytes int // total capacity; must be a multiple of Ways*LineBytes
	Ways      int // associativity
}

// Valid reports whether the configuration is internally consistent.
func (c Config) Valid() error {
	if c.SizeBytes <= 0 || c.Ways <= 0 {
		return fmt.Errorf("cachesim: non-positive geometry %+v", c)
	}
	setBytes := c.Ways * LineBytes
	if c.SizeBytes%setBytes != 0 {
		return fmt.Errorf("cachesim: size %d not a multiple of way set %d", c.SizeBytes, setBytes)
	}
	sets := c.SizeBytes / setBytes
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cachesim: set count %d not a power of two", sets)
	}
	return nil
}

type level struct {
	tags    []uint64 // sets × ways; tag 0 means empty (tags are shifted+1)
	numSets int
	ways    int
	mask    uint64
}

func newLevel(c Config) *level {
	sets := c.SizeBytes / (c.Ways * LineBytes)
	return &level{
		tags:    make([]uint64, sets*c.Ways),
		numSets: sets,
		ways:    c.Ways,
		mask:    uint64(sets - 1),
	}
}

// access looks up the line; on hit it refreshes LRU order and returns
// true. On miss it installs the line (evicting LRU) and returns false.
func (l *level) access(line uint64) bool {
	set := int(line & l.mask)
	base := set * l.ways
	tag := line + 1 // avoid the empty sentinel 0
	ways := l.tags[base : base+l.ways]
	for i, t := range ways {
		if t == tag {
			// Move to front (MRU at index 0).
			copy(ways[1:i+1], ways[:i])
			ways[0] = tag
			return true
		}
	}
	// Miss: evict LRU (last slot), install as MRU.
	copy(ways[1:], ways[:l.ways-1])
	ways[0] = tag
	return false
}

func (l *level) reset() {
	for i := range l.tags {
		l.tags[i] = 0
	}
}

// Hierarchy is a stack of cache levels backed by memory. Level 1 is
// checked first; a miss at level i is looked up (and filled) at level i+1.
type Hierarchy struct {
	levels []*level
}

// NewHierarchy builds a hierarchy from the given level configurations,
// ordered L1 first. Zero levels is valid and models an uncached machine.
func NewHierarchy(configs ...Config) (*Hierarchy, error) {
	h := &Hierarchy{}
	for _, c := range configs {
		if err := c.Valid(); err != nil {
			return nil, err
		}
		h.levels = append(h.levels, newLevel(c))
	}
	return h, nil
}

// MustNewHierarchy is NewHierarchy that panics on configuration errors.
func MustNewHierarchy(configs ...Config) *Hierarchy {
	h, err := NewHierarchy(configs...)
	if err != nil {
		panic(err)
	}
	return h
}

// Levels returns the number of cache levels.
func (h *Hierarchy) Levels() int { return len(h.levels) }

// Access performs one memory access at the byte address and returns the
// level that served it: 1-based cache level, or Levels()+1 for memory.
// Lines are installed in every level on the refill path (inclusive fill).
func (h *Hierarchy) Access(addr uint64) int {
	line := addr / LineBytes
	for i, l := range h.levels {
		if l.access(line) {
			return i + 1
		}
	}
	return len(h.levels) + 1
}

// Reset invalidates every line.
func (h *Hierarchy) Reset() {
	for _, l := range h.levels {
		l.reset()
	}
}
