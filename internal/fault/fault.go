// Package fault is the deterministic fault-injection layer: a plan of
// scheduled faults — connection refusals, latency spikes, mid-body
// hangs, 5xx answers, truncated or corrupted JSON — produced either
// from an explicit script or from a seed, applied to traffic through
// an http.RoundTripper wrapper (transport.go) or a serve.Backend
// decorator (backend.go).
//
// The point is reproducibility: every failure path in the fleet router
// (retry budgets, hedging, circuit breaking, stale-serve degradation)
// is drivable from a unit test under -race without SIGTERM-ing real
// processes. A Script plan pins exact fault sequences per target for
// deterministic unit tests; a Seeded plan derives per-call faults and
// sustained outage windows from a single uint64 seed, so a chaos soak
// can be re-run from its logged seed. Neither plan touches the global
// rand or the wall clock for decisions — all randomness is splitmix64
// over (seed, target, per-target call counter).
package fault

import (
	"sync"
	"sync/atomic"
	"time"
)

// Kind classifies one injected fault.
type Kind uint8

const (
	// None passes the operation through untouched.
	None Kind = iota
	// Refuse fails the operation before any bytes move, as a refused
	// connection would: the caller sees a transport error and the
	// request is safe to retry elsewhere.
	Refuse
	// Latency delays the operation by Delay, then forwards it. The
	// operation still succeeds — this drives hedging, not retries.
	Latency
	// Hang forwards the request but stalls mid-body for Delay, then
	// resets: the caller gets headers and a byte prefix, then a
	// transport error. The nastiest real-world failure shape — the
	// answer looked like it was coming.
	Hang
	// Status short-circuits the operation with a synthesized HTTP
	// error status (Fault.Status; 503 when zero).
	Status
	// Truncate forwards the operation but cuts the response body in
	// half, so the JSON no longer parses.
	Truncate
	// Corrupt forwards the operation but overwrites a byte of the
	// response body with NUL, which is invalid anywhere in JSON.
	Corrupt
)

// String names the kind for logs and metrics.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Refuse:
		return "refuse"
	case Latency:
		return "latency"
	case Hang:
		return "hang"
	case Status:
		return "status"
	case Truncate:
		return "truncate"
	case Corrupt:
		return "corrupt"
	}
	return "unknown"
}

// Fault is one scheduled fault.
type Fault struct {
	Kind   Kind
	Delay  time.Duration // Latency: added delay; Hang: stall before the reset
	Status int           // Status faults; 0 means 503
}

// Plan produces the fault schedule. Next is called once per operation
// against target (a shard address for the transport wrapper, the
// configured name for a backend decorator) and must be safe for
// concurrent use.
type Plan interface {
	Next(target string) Fault
}

// Script is an explicit per-target fault queue: tests pin the exact
// sequence each target sees. Targets with no queued faults (or whose
// queue has drained) pass through.
type Script struct {
	mu   sync.Mutex
	seqs map[string][]Fault
}

// NewScript returns an empty script (everything passes through until
// faults are queued).
func NewScript() *Script {
	return &Script{seqs: make(map[string][]Fault)}
}

// Queue appends faults to target's schedule; they are consumed in
// order, one per operation.
func (s *Script) Queue(target string, faults ...Fault) {
	s.mu.Lock()
	s.seqs[target] = append(s.seqs[target], faults...)
	s.mu.Unlock()
}

// Next pops target's next scheduled fault.
func (s *Script) Next(target string) Fault {
	s.mu.Lock()
	defer s.mu.Unlock()
	q := s.seqs[target]
	if len(q) == 0 {
		return Fault{}
	}
	f := q[0]
	s.seqs[target] = q[1:]
	return f
}

// Seeded derives faults from a single seed: per-call fault classes by
// configured rate, plus sustained outage windows during which one
// target at a time refuses everything — the schedule a chaos soak
// replays from its logged seed. The zero value injects nothing.
//
// Determinism: each draw is splitmix64 over (Seed, target, the
// target's own call counter), so a target's fault sequence depends
// only on how many calls it has seen, not on cross-target
// interleaving. Outage windows advance on a global call counter, so
// their exact call-boundaries shift with goroutine interleaving, but
// which windows are outages and who they hit is pure seed.
type Seeded struct {
	// Seed drives every decision. Two runs with the same seed and the
	// same per-target call counts see the same faults.
	Seed uint64
	// Per-call fault rates in [0, 1); their sum must stay below 1.
	Refuse, Latency, Hang, Status, Truncate, Corrupt float64
	// MaxDelay bounds latency spikes and hang stalls; 0 means 20ms.
	// The actual delay is seed-derived in [MaxDelay/4, MaxDelay].
	MaxDelay time.Duration
	// OutageEvery is the outage-window width in global calls; 0
	// disables windows. Each window picks (by seed) whether an outage
	// happens and which of Targets it takes down; a down target
	// refuses every call for the window's duration — the sustained
	// kill/recover schedule that exercises breakers and health loops.
	OutageEvery uint64
	// OutageRate is the per-window probability of an outage.
	OutageRate float64
	// Targets lists the addresses eligible for outage windows.
	Targets []string

	total    atomic.Uint64 // global call counter (outage windows)
	counters sync.Map      // target → *atomic.Uint64
}

// splitmix64 is the SplitMix64 output function: a fast, well-mixed
// 64-bit finalizer, the standard seed expander.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hashString folds a string into a uint64 (FNV-1a).
func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// unit maps a 64-bit draw onto [0, 1).
func unit(x uint64) float64 { return float64(x>>11) / (1 << 53) }

// Next implements Plan.
func (s *Seeded) Next(target string) Fault {
	call := s.total.Add(1) - 1
	c, _ := s.counters.LoadOrStore(target, new(atomic.Uint64))
	mine := c.(*atomic.Uint64).Add(1) - 1

	// Sustained outage window: one target at a time refuses everything.
	if s.OutageEvery > 0 && len(s.Targets) > 0 {
		window := call / s.OutageEvery
		draw := splitmix64(s.Seed ^ 0xa0d1e5c4b3f29687 ^ window)
		if unit(draw) < s.OutageRate {
			victim := s.Targets[int(splitmix64(draw)%uint64(len(s.Targets)))]
			if victim == target {
				return Fault{Kind: Refuse}
			}
		}
	}

	draw := splitmix64(s.Seed ^ hashString(target) ^ splitmix64(mine))
	u := unit(draw)
	maxDelay := s.MaxDelay
	if maxDelay <= 0 {
		maxDelay = 20 * time.Millisecond
	}
	// The delay draw reuses the class draw's upper mix so it stays a
	// pure function of (seed, target, counter).
	delay := maxDelay/4 + time.Duration(splitmix64(draw)%uint64(3*maxDelay/4+1))
	for _, c := range []struct {
		rate float64
		f    Fault
	}{
		{s.Refuse, Fault{Kind: Refuse}},
		{s.Latency, Fault{Kind: Latency, Delay: delay}},
		{s.Hang, Fault{Kind: Hang, Delay: delay}},
		{s.Status, Fault{Kind: Status, Status: []int{500, 502, 503}[draw%3]}},
		{s.Truncate, Fault{Kind: Truncate}},
		{s.Corrupt, Fault{Kind: Corrupt}},
	} {
		if u < c.rate {
			return c.f
		}
		u -= c.rate
	}
	return Fault{}
}
