package fault

// The HTTP edge of the injection layer: a RoundTripper wrapper that
// consults the plan once per request and produces the scheduled fault
// at the transport level, where the fleet's ShardClient classifies
// failures. Refuse and Hang surface as transport errors (retried on a
// replica), Status as an application answer (passed through or
// retried by status), Truncate and Corrupt as undecodable bodies
// (transport errors at the decode step), and Latency as a slow but
// correct answer (hedging bait).

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"
)

// Transport wraps an inner RoundTripper with a fault plan. Targets are
// addressed by request host (URL.Host).
type Transport struct {
	plan    Plan
	inner   http.RoundTripper
	enabled atomic.Bool
}

// NewTransport builds an armed fault transport over inner (nil means a
// fresh *http.Transport, so fault tests never pollute the shared
// http.DefaultTransport connection pool).
func NewTransport(plan Plan, inner http.RoundTripper) *Transport {
	if inner == nil {
		inner = &http.Transport{}
	}
	t := &Transport{plan: plan, inner: inner}
	t.enabled.Store(true)
	return t
}

// SetEnabled arms or disarms injection; disarmed, every request passes
// straight through. Chaos tests capture their fault-free oracle
// disarmed, then arm the same transport.
func (t *Transport) SetEnabled(on bool) { t.enabled.Store(on) }

// CloseIdleConnections forwards to the inner transport so clients
// holding a fault transport can release keep-alive connections.
func (t *Transport) CloseIdleConnections() {
	if c, ok := t.inner.(interface{ CloseIdleConnections() }); ok {
		c.CloseIdleConnections()
	}
}

// Error is the transport-level failure an injected fault produces;
// callers see it wrapped in *url.Error like any dial failure.
type Error struct {
	Target string
	Kind   Kind
}

func (e *Error) Error() string {
	return fmt.Sprintf("fault: injected %s against %s", e.Kind, e.Target)
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	if !t.enabled.Load() {
		return t.inner.RoundTrip(req)
	}
	f := t.plan.Next(req.URL.Host)
	switch f.Kind {
	case Refuse:
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, &Error{Target: req.URL.Host, Kind: Refuse}
	case Latency:
		select {
		case <-time.After(f.Delay):
		case <-req.Context().Done():
			if req.Body != nil {
				req.Body.Close()
			}
			return nil, req.Context().Err()
		}
		return t.inner.RoundTrip(req)
	case Status:
		if req.Body != nil {
			req.Body.Close()
		}
		return synthesized(req, f), nil
	case Hang:
		resp, err := t.inner.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		resp.Body = &hangBody{
			inner:  resp.Body,
			allow:  16,
			stall:  f.Delay,
			done:   req.Context().Done(),
			target: req.URL.Host,
		}
		return resp, nil
	case Truncate, Corrupt:
		resp, err := t.inner.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		mangleBody(resp, f.Kind)
		return resp, nil
	}
	return t.inner.RoundTrip(req)
}

// synthesized builds the Status fault's answer: a JSON error body with
// the scheduled status, shaped like a real upstream failure.
func synthesized(req *http.Request, f Fault) *http.Response {
	status := f.Status
	if status == 0 {
		status = http.StatusServiceUnavailable
	}
	body := fmt.Sprintf("{\"error\":\"fault: injected %d from %s\"}\n", status, req.URL.Host)
	h := make(http.Header)
	h.Set("Content-Type", "application/json")
	h.Set("Content-Length", strconv.Itoa(len(body)))
	return &http.Response{
		Status:        fmt.Sprintf("%d %s", status, http.StatusText(status)),
		StatusCode:    status,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        h,
		Body:          io.NopCloser(bytes.NewReader([]byte(body))),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}

// mangleBody reads the whole response body and replaces it with a
// damaged copy: half the bytes (Truncate) or a NUL overwrite near the
// middle (Corrupt). Either way the JSON no longer decodes, which is a
// transport-class failure to the shard client.
func mangleBody(resp *http.Response, kind Kind) {
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		raw = nil
	}
	switch kind {
	case Truncate:
		raw = raw[:len(raw)/2]
	case Corrupt:
		if len(raw) > 0 {
			raw = append([]byte(nil), raw...)
			raw[len(raw)/2] = 0x00
		}
	}
	resp.Body = io.NopCloser(bytes.NewReader(raw))
	resp.ContentLength = int64(len(raw))
	resp.Header.Del("Content-Length")
	resp.TransferEncoding = nil
}

// hangBody yields a small prefix of the real body, then stalls for the
// scheduled duration (or until the request context dies) and reports a
// reset. The caller saw headers and bytes — the failure happens
// mid-answer, after the decision to trust this replica was made.
type hangBody struct {
	inner   io.ReadCloser
	allow   int
	stall   time.Duration
	done    <-chan struct{}
	target  string
	stalled bool
}

func (b *hangBody) Read(p []byte) (int, error) {
	if b.allow > 0 {
		if len(p) > b.allow {
			p = p[:b.allow]
		}
		n, err := b.inner.Read(p)
		b.allow -= n
		if err != nil {
			return n, err
		}
		return n, nil
	}
	if !b.stalled {
		b.stalled = true
		select {
		case <-time.After(b.stall):
		case <-b.done:
		}
	}
	return 0, &Error{Target: b.target, Kind: Hang}
}

func (b *hangBody) Close() error { return b.inner.Close() }
