package fault

// The dispatch-plane edge of the injection layer: a serve.Backend
// decorator, for driving failure paths in a shard's own process —
// behind real HTTP handlers or fully in-process — without touching
// sockets. Byte-level faults (Truncate, Corrupt) have no meaning at
// this layer and pass through; Refuse and Hang map onto the 502 a
// dying upstream would produce once the handlers serialize them.

import (
	"context"
	"net/http"
	"time"

	"bagraph/internal/serve"
)

// Backend wraps an inner serve.Backend with a fault plan. The plan is
// consulted once per query (CC, BFS, SSSP); listing and health calls
// pass through so health loops see the process as alive — the injected
// failures hit query traffic, which is the path under test.
type Backend struct {
	inner  serve.Backend
	plan   Plan
	target string
}

// NewBackend decorates inner; target names this backend in the plan.
func NewBackend(plan Plan, inner serve.Backend, target string) *Backend {
	return &Backend{inner: inner, plan: plan, target: target}
}

// apply runs one scheduled fault; a nil return means proceed.
func (b *Backend) apply(ctx context.Context) error {
	f := b.plan.Next(b.target)
	switch f.Kind {
	case Refuse:
		return serve.Errorf(http.StatusBadGateway, "fault: injected refusal on %s", b.target)
	case Status:
		status := f.Status
		if status == 0 {
			status = http.StatusServiceUnavailable
		}
		return serve.Errorf(status, "fault: injected %d on %s", status, b.target)
	case Latency:
		select {
		case <-time.After(f.Delay):
		case <-ctx.Done():
			return ctx.Err()
		}
	case Hang:
		select {
		case <-time.After(f.Delay):
		case <-ctx.Done():
			return ctx.Err()
		}
		return serve.Errorf(http.StatusBadGateway, "fault: injected hang on %s", b.target)
	}
	return nil
}

// CC implements serve.Backend.
func (b *Backend) CC(ctx context.Context, graph, algo string, labels bool) (*serve.CCResponse, error) {
	if err := b.apply(ctx); err != nil {
		return nil, err
	}
	return b.inner.CC(ctx, graph, algo, labels)
}

// BFS implements serve.Backend.
func (b *Backend) BFS(ctx context.Context, graph string, root uint32, algo string) (*serve.BFSResponse, error) {
	if err := b.apply(ctx); err != nil {
		return nil, err
	}
	return b.inner.BFS(ctx, graph, root, algo)
}

// SSSP implements serve.Backend.
func (b *Backend) SSSP(ctx context.Context, graph string, root uint32, algo string) (*serve.SSSPResponse, error) {
	if err := b.apply(ctx); err != nil {
		return nil, err
	}
	return b.inner.SSSP(ctx, graph, root, algo)
}

// Graphs implements serve.Backend (pass-through).
func (b *Backend) Graphs(ctx context.Context) ([]serve.GraphInfo, error) {
	return b.inner.Graphs(ctx)
}

// Healthz implements serve.Backend (pass-through).
func (b *Backend) Healthz(ctx context.Context) (*serve.Health, error) {
	return b.inner.Healthz(ctx)
}

var _ serve.Backend = (*Backend)(nil)
