package fault

// The injection layer's own contract tests: plan determinism (the
// whole point — a chaos run must replay from its seed), and the
// transport wrapper producing exactly the failure classes the fleet's
// ShardClient routes on.

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"bagraph/internal/serve"
)

func TestScriptPopsInOrderThenPassesThrough(t *testing.T) {
	s := NewScript()
	s.Queue("a", Fault{Kind: Refuse}, Fault{Kind: Status, Status: 500})
	s.Queue("b", Fault{Kind: Hang, Delay: time.Millisecond})

	if f := s.Next("a"); f.Kind != Refuse {
		t.Fatalf("a[0] = %v, want refuse", f.Kind)
	}
	if f := s.Next("b"); f.Kind != Hang {
		t.Fatalf("b[0] = %v, want hang", f.Kind)
	}
	if f := s.Next("a"); f.Kind != Status || f.Status != 500 {
		t.Fatalf("a[1] = %+v, want status 500", f)
	}
	// Drained (and never-scripted) targets pass through.
	for _, target := range []string{"a", "b", "never"} {
		if f := s.Next(target); f.Kind != None {
			t.Fatalf("drained %q injected %v", target, f.Kind)
		}
	}
}

func TestSeededZeroValueInjectsNothing(t *testing.T) {
	var s Seeded
	for i := 0; i < 100; i++ {
		if f := s.Next("x"); f.Kind != None {
			t.Fatalf("zero-value plan injected %v", f.Kind)
		}
	}
}

// TestSeededReplays: the same seed gives each target the same fault
// sequence, regardless of how other targets' calls interleave.
func TestSeededReplays(t *testing.T) {
	mk := func(seed uint64) *Seeded {
		return &Seeded{
			Seed: seed, Refuse: 0.1, Latency: 0.1, Hang: 0.1,
			Status: 0.1, Truncate: 0.1, Corrupt: 0.1,
		}
	}
	const n = 400
	run := func(s *Seeded, target string, interleave bool) []Fault {
		out := make([]Fault, n)
		for i := range out {
			if interleave {
				s.Next("noise-" + target) // other targets must not shift the sequence
			}
			out[i] = s.Next(target)
		}
		return out
	}
	a := run(mk(42), "shard-1", false)
	b := run(mk(42), "shard-1", true)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("call %d diverged under interleaving: %+v vs %+v", i, a[i], b[i])
		}
	}
	kinds := make(map[Kind]int)
	for _, f := range a {
		kinds[f.Kind]++
	}
	for _, k := range []Kind{None, Refuse, Latency, Hang, Status, Truncate, Corrupt} {
		if kinds[k] == 0 {
			t.Fatalf("seed 42 never produced %v over %d calls: %v", k, n, kinds)
		}
	}
	c := run(mk(43), "shard-1", false)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == n {
		t.Fatal("seeds 42 and 43 produced identical schedules")
	}
}

// TestSeededOutageWindows: windows deterministically pick one victim
// that refuses everything while the window lasts.
func TestSeededOutageWindows(t *testing.T) {
	s := &Seeded{Seed: 7, OutageEvery: 50, OutageRate: 0.5, Targets: []string{"a", "b"}}
	refusals := map[string]int{}
	for i := 0; i < 1000; i++ {
		target := []string{"a", "b"}[i%2]
		if s.Next(target).Kind == Refuse {
			refusals[target]++
		}
	}
	if refusals["a"]+refusals["b"] == 0 {
		t.Fatal("no outage window ever fired")
	}
	// Re-running the same seed reproduces the same refusal totals when
	// the call sequence is identical.
	s2 := &Seeded{Seed: 7, OutageEvery: 50, OutageRate: 0.5, Targets: []string{"a", "b"}}
	refusals2 := map[string]int{}
	for i := 0; i < 1000; i++ {
		target := []string{"a", "b"}[i%2]
		if s2.Next(target).Kind == Refuse {
			refusals2[target]++
		}
	}
	if refusals["a"] != refusals2["a"] || refusals["b"] != refusals2["b"] {
		t.Fatalf("outage schedule not reproducible: %v vs %v", refusals, refusals2)
	}
}

// TestTransportClassification drives every fault kind through a real
// HTTP round-trip and asserts the ShardClient classifies it into the
// family the router routes on: transport errors retry on a replica,
// application answers pass through.
func TestTransportClassification(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		// Long enough that a Hang's 16-byte prefix is a strict subset.
		w.Write([]byte(`{"status":"ok","graphs":3,"workers":2,"shards":0}`))
	}))
	defer ts.Close()
	u, _ := url.Parse(ts.URL)
	target := u.Host

	script := NewScript()
	tr := NewTransport(script, nil)
	defer tr.CloseIdleConnections()
	client := serve.NewShardClient(ts.URL, &http.Client{Transport: tr})
	ctx := context.Background()

	isTransport := func(err error) bool {
		var te *serve.TransportError
		return errors.As(err, &te)
	}

	// Baseline: no fault scheduled, the call succeeds.
	if h, err := client.Healthz(ctx); err != nil || h.Graphs != 3 {
		t.Fatalf("pass-through failed: %+v, %v", h, err)
	}

	for _, tc := range []struct {
		fault Fault
		check func(error) bool
		want  string
	}{
		{Fault{Kind: Refuse}, isTransport, "transport error"},
		{Fault{Kind: Hang, Delay: time.Millisecond}, isTransport, "transport error"},
		{Fault{Kind: Truncate}, isTransport, "transport error"},
		{Fault{Kind: Corrupt}, isTransport, "transport error"},
		{Fault{Kind: Status, Status: 503}, func(err error) bool {
			var se *serve.Error
			return errors.As(err, &se) && se.Status == 503
		}, "*serve.Error 503"},
	} {
		script.Queue(target, tc.fault)
		_, err := client.Healthz(ctx)
		if err == nil || !tc.check(err) {
			t.Fatalf("%v: got %v, want %s", tc.fault.Kind, err, tc.want)
		}
		if strings.Contains(strings.ToLower(tc.want), "transport") && isTransport(err) {
			var te *serve.TransportError
			errors.As(err, &te)
			if te.Shard != ts.URL {
				t.Fatalf("%v blamed %q, want %q", tc.fault.Kind, te.Shard, ts.URL)
			}
		}
	}

	// Latency: slow but correct — hedging bait, not a failure.
	script.Queue(target, Fault{Kind: Latency, Delay: 30 * time.Millisecond})
	start := time.Now()
	h, err := client.Healthz(ctx)
	if err != nil || h.Graphs != 3 {
		t.Fatalf("latency fault broke the answer: %+v, %v", h, err)
	}
	if took := time.Since(start); took < 30*time.Millisecond {
		t.Fatalf("latency fault added only %v", took)
	}

	// Disarmed, scheduled faults do not fire.
	script.Queue(target, Fault{Kind: Refuse})
	tr.SetEnabled(false)
	if _, err := client.Healthz(ctx); err != nil {
		t.Fatalf("disarmed transport still injected: %v", err)
	}
	tr.SetEnabled(true)
	if _, err := client.Healthz(ctx); !isTransport(err) {
		t.Fatalf("re-armed transport did not fire the queued refusal: %v", err)
	}
}

// stubBackend answers every query with fixed bodies — the in-process
// target for the Backend decorator tests.
type stubBackend struct{}

func (stubBackend) CC(context.Context, string, string, bool) (*serve.CCResponse, error) {
	return &serve.CCResponse{Graph: "g", Components: 1}, nil
}
func (stubBackend) BFS(context.Context, string, uint32, string) (*serve.BFSResponse, error) {
	return &serve.BFSResponse{Graph: "g"}, nil
}
func (stubBackend) SSSP(context.Context, string, uint32, string) (*serve.SSSPResponse, error) {
	return &serve.SSSPResponse{Graph: "g"}, nil
}
func (stubBackend) Graphs(context.Context) ([]serve.GraphInfo, error) {
	return []serve.GraphInfo{{Name: "g"}}, nil
}
func (stubBackend) Healthz(context.Context) (*serve.Health, error) {
	return &serve.Health{Status: "ok"}, nil
}

func TestBackendDecorator(t *testing.T) {
	script := NewScript()
	b := NewBackend(script, stubBackend{}, "shard-0")
	ctx := context.Background()

	script.Queue("shard-0",
		Fault{Kind: Refuse},
		Fault{Kind: Status, Status: 500},
		Fault{Kind: None},
	)
	if _, err := b.CC(ctx, "g", "", false); serve.ErrorStatus(err) != http.StatusBadGateway {
		t.Fatalf("refusal: %v, want 502", err)
	}
	if _, err := b.BFS(ctx, "g", 0, ""); serve.ErrorStatus(err) != http.StatusInternalServerError {
		t.Fatalf("status fault: %v, want 500", err)
	}
	if out, err := b.SSSP(ctx, "g", 0, ""); err != nil || out.Graph != "g" {
		t.Fatalf("pass-through query: %+v, %v", out, err)
	}

	// Listing and health never consume the plan: the injected failures
	// hit query traffic, not the health loop's view of the process.
	script.Queue("shard-0", Fault{Kind: Refuse})
	if _, err := b.Graphs(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Healthz(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := b.CC(ctx, "g", "", false); serve.ErrorStatus(err) != http.StatusBadGateway {
		t.Fatalf("queued refusal should still be waiting for a query: %v", err)
	}

	// A latency fault under a dead caller context surfaces the caller's
	// error, not a shard-blamed one.
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	script.Queue("shard-0", Fault{Kind: Latency, Delay: time.Hour})
	if _, err := b.CC(cctx, "g", "", false); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled caller got %v, want context.Canceled", err)
	}
}
