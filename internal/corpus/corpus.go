// Package corpus provides the experimental graph corpus: synthetic
// stand-ins for the five DIMACS-10 graphs of the paper's Table 2.
//
//	Name            Type           |V|        |E|
//	audikw1         Matrix         943,695    38,354,076
//	auto            Partitioning   448,695    3,314,611
//	coAuthorsDBLP   Collaboration  299,067    977,676
//	cond-mat-2005   Clustering     40,421     175,691
//	ldoor           Matrix         952,203    22,785,136
//
// The original files are not redistributable with this repository, so
// each dataset is generated to match its structure class and mean degree:
// the two FEM matrices become 3-D box-stencil lattices with the matching
// stencil width, "auto" becomes a face+edge-diagonal partitioning mesh,
// and the two social networks become preferential-attachment graphs with
// the matching attachment count. A scale parameter shrinks |V| while
// preserving degree structure, because the per-iteration branch behaviour
// the paper studies depends on structure, not absolute size.
//
// If the real METIS files are available locally, load them with
// internal/metis instead; every kernel and experiment accepts any
// graph.Graph.
package corpus

import (
	"fmt"
	"math"
	"sort"

	"bagraph/internal/gen"
	"bagraph/internal/graph"
	"bagraph/internal/xrand"
)

// Dataset describes one Table 2 graph and how to generate its stand-in.
type Dataset struct {
	// Name is the DIMACS-10 name used in the paper.
	Name string
	// Class is the paper's "Graph Type" column.
	Class string
	// PaperV, PaperE are the |V| and |E| reported in Table 2.
	PaperV, PaperE int64
	// build generates the stand-in at the given scale.
	build func(scale float64, seed uint64) *graph.Graph
}

// Generate builds the stand-in graph at the given scale in (0, 1] with
// the given seed. Scale 1 approximates the paper's sizes; smaller scales
// shrink |V| proportionally.
func (d Dataset) Generate(scale float64, seed uint64) *graph.Graph {
	if scale <= 0 || scale > 1 {
		panic(fmt.Sprintf("corpus: scale %v out of (0, 1]", scale))
	}
	g := d.build(scale, seed)
	g.SetName(d.Name)
	return g
}

// cube returns the lattice side for a target vertex count.
func cube(targetV float64) int {
	side := int(math.Round(math.Cbrt(targetV)))
	if side < 3 {
		side = 3
	}
	return side
}

// shuffled relabels g by a seeded random permutation. The DIMACS mesh
// files carry application-specific node numberings, and that ordering is
// what the paper's per-iteration SV behaviour depends on: audikw1 (a
// bandwidth-reduced FEM matrix) converges in ~4 passes while ldoor needs
// ~60 (Fig. 3's x-axes). A raster-numbered lattice behaves like the
// former; permuting reproduces the latter and restores the unpredictable
// early-iteration comparison branch the paper measures.
func shuffled(g *graph.Graph, seed uint64) *graph.Graph {
	return blockShuffled(g, seed, g.NumVertices())
}

// blockShuffled relabels g by a random permutation applied within
// consecutive windows of the given size. window = |V| is a full shuffle;
// a window of one lattice plane models a bandwidth-reduced ordering:
// locally irregular (the comparison branch stays unpredictable) but
// globally banded (label propagation still converges in few passes, like
// audikw1's ~4 in the paper).
func blockShuffled(g *graph.Graph, seed uint64, window int) *graph.Graph {
	if window < 1 {
		panic("corpus: window must be positive")
	}
	r := xrand.New(seed)
	n := g.NumVertices()
	perm := make([]uint32, n)
	for i := range perm {
		perm[i] = uint32(i)
	}
	for base := 0; base < n; base += window {
		end := base + window
		if end > n {
			end = n
		}
		blk := perm[base:end]
		r.Shuffle(len(blk), func(i, j int) { blk[i], blk[j] = blk[j], blk[i] })
	}
	h, err := g.Relabel(perm)
	if err != nil {
		panic(err)
	}
	return h
}

// All returns the five datasets in Table 2's row order.
func All() []Dataset {
	return []Dataset{
		{
			Name: "audikw1", Class: "Matrix", PaperV: 943_695, PaperE: 38_354_076,
			build: func(scale float64, seed uint64) *graph.Graph {
				// Automotive crankshaft FEM: mean degree ≈ 81 →
				// (2,2,1)-box stencil (74 interior neighbors). audikw1 is
				// bandwidth-ordered (SV converges in ~4 passes in the
				// paper), so shuffle only within 2-plane windows: locally
				// irregular, globally banded.
				s := cube(943_695 * scale)
				g := gen.Grid3DStencil(s, s, s, gen.BoxStencil(2, 2, 1), "audikw1")
				return blockShuffled(g, seed^0xaad1, 4*s*s)
			},
		},
		{
			Name: "auto", Class: "Partitioning", PaperV: 448_695, PaperE: 3_314_611,
			build: func(scale float64, seed uint64) *graph.Graph {
				// 3-D tetrahedral partitioning mesh: mean degree ≈ 14.8 →
				// face + edge-diagonal stencil (14 interior neighbors),
				// with a permuted node numbering (partitioning inputs are
				// not bandwidth-ordered).
				s := cube(448_695 * scale)
				return shuffled(gen.Grid3DStencil(s, s, s, gen.FaceEdgeStencil(), "auto"), seed^0xa070)
			},
		},
		{
			Name: "coAuthorsDBLP", Class: "Collaboration", PaperV: 299_067, PaperE: 977_676,
			build: func(scale float64, seed uint64) *graph.Graph {
				// Collaboration network: mean degree ≈ 6.5 →
				// preferential attachment with k=3.
				n := int(299_067 * scale)
				if n < 8 {
					n = 8
				}
				return gen.BarabasiAlbert(n, 3, seed^0xdb1)
			},
		},
		{
			Name: "cond-mat-2005", Class: "Clustering", PaperV: 40_421, PaperE: 175_691,
			build: func(scale float64, seed uint64) *graph.Graph {
				// Condensed-matter collaboration network: mean degree
				// ≈ 8.7 → preferential attachment with k=4.
				n := int(40_421 * scale)
				if n < 10 {
					n = 10
				}
				return gen.BarabasiAlbert(n, 4, seed^0xc0d)
			},
		},
		{
			Name: "ldoor", Class: "Matrix", PaperV: 952_203, PaperE: 22_785_136,
			build: func(scale float64, seed uint64) *graph.Graph {
				// Large-door FEM: mean degree ≈ 48 → (2,1,1)-box stencil
				// (44 interior neighbors), with a permuted node numbering
				// (ldoor's ordering makes SV converge slowly — ~60 passes
				// in the paper's Fig. 3 — unlike raster order).
				s := cube(952_203 * scale)
				return shuffled(gen.Grid3DStencil(s, s, s, gen.BoxStencil(2, 1, 1), "ldoor"), seed^0x1d00)
			},
		},
	}
}

// Names returns the dataset names in Table 2 order.
func Names() []string {
	ds := All()
	names := make([]string, len(ds))
	for i, d := range ds {
		names[i] = d.Name
	}
	return names
}

// ByName looks up a dataset.
func ByName(name string) (Dataset, bool) {
	for _, d := range All() {
		if d.Name == name {
			return d, true
		}
	}
	return Dataset{}, false
}

// Subset returns the datasets with the given names, preserving Table 2
// order; unknown names produce an error.
func Subset(names []string) ([]Dataset, error) {
	want := make(map[string]bool, len(names))
	for _, n := range names {
		if _, ok := ByName(n); !ok {
			known := Names()
			sort.Strings(known)
			return nil, fmt.Errorf("corpus: unknown dataset %q (known: %v)", n, known)
		}
		want[n] = true
	}
	var out []Dataset
	for _, d := range All() {
		if want[d.Name] {
			out = append(out, d)
		}
	}
	return out, nil
}
