package corpus

import (
	"math"
	"testing"
)

func TestTableTwoRoster(t *testing.T) {
	ds := All()
	if len(ds) != 5 {
		t.Fatalf("corpus has %d datasets, Table 2 has 5", len(ds))
	}
	wantOrder := []string{"audikw1", "auto", "coAuthorsDBLP", "cond-mat-2005", "ldoor"}
	for i, d := range ds {
		if d.Name != wantOrder[i] {
			t.Fatalf("dataset %d is %q, want %q", i, d.Name, wantOrder[i])
		}
	}
	// Paper sizes pinned.
	if d, _ := ByName("audikw1"); d.PaperV != 943_695 || d.PaperE != 38_354_076 {
		t.Fatal("audikw1 paper sizes wrong")
	}
	if d, _ := ByName("cond-mat-2005"); d.PaperV != 40_421 {
		t.Fatal("cond-mat-2005 paper size wrong")
	}
}

func TestGenerateSmallScaleValidConnected(t *testing.T) {
	for _, d := range All() {
		g := d.Generate(0.002, 42)
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		if g.Name() != d.Name {
			t.Fatalf("%s: graph named %q", d.Name, g.Name())
		}
		if !g.IsConnected() {
			t.Fatalf("%s stand-in is disconnected", d.Name)
		}
	}
}

// TestMeanDegreeMatchesPaper checks that each stand-in's mean degree is
// within 35% of the paper graph's (2|E|/|V|) — the property that drives
// the branch-count ratios in Figs. 4 and 7.
func TestMeanDegreeMatchesPaper(t *testing.T) {
	for _, d := range All() {
		g := d.Generate(0.01, 1)
		got := g.Degrees().Mean
		want := 2 * float64(d.PaperE) / float64(d.PaperV)
		if rel := math.Abs(got-want) / want; rel > 0.35 {
			t.Errorf("%s: mean degree %.1f, paper %.1f (%.0f%% off)", d.Name, got, want, rel*100)
		}
	}
}

func TestScaleControlsSize(t *testing.T) {
	d, _ := ByName("coAuthorsDBLP")
	small := d.Generate(0.005, 1)
	large := d.Generate(0.02, 1)
	if small.NumVertices() >= large.NumVertices() {
		t.Fatal("scale did not grow the graph")
	}
	// Scale ~ |V|: 4x scale ≈ 4x vertices.
	ratio := float64(large.NumVertices()) / float64(small.NumVertices())
	if ratio < 3 || ratio > 5 {
		t.Fatalf("vertex ratio %.2f for 4x scale", ratio)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	d, _ := ByName("cond-mat-2005")
	a := d.Generate(0.02, 9)
	b := d.Generate(0.02, 9)
	if a.NumArcs() != b.NumArcs() || a.NumVertices() != b.NumVertices() {
		t.Fatal("same seed produced different graphs")
	}
}

func TestGeneratePanicsOnBadScale(t *testing.T) {
	d, _ := ByName("auto")
	for _, s := range []float64{0, -1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("scale %v did not panic", s)
				}
			}()
			d.Generate(s, 1)
		}()
	}
}

func TestByNameAndSubset(t *testing.T) {
	if _, ok := ByName("karate"); ok {
		t.Fatal("ByName found unknown dataset")
	}
	sub, err := Subset([]string{"ldoor", "auto"})
	if err != nil {
		t.Fatal(err)
	}
	if len(sub) != 2 || sub[0].Name != "auto" || sub[1].Name != "ldoor" {
		t.Fatalf("Subset order wrong: %v", sub)
	}
	if _, err := Subset([]string{"nope"}); err == nil {
		t.Fatal("Subset accepted unknown name")
	}
}

func TestNames(t *testing.T) {
	if len(Names()) != 5 {
		t.Fatalf("Names() = %v", Names())
	}
}

// TestSocialStandInsAreSkewed verifies the collaboration stand-ins have
// hubs (power-law-ish tails), unlike the mesh stand-ins.
func TestSocialStandInsAreSkewed(t *testing.T) {
	co, _ := ByName("coAuthorsDBLP")
	g := co.Generate(0.02, 5)
	st := g.Degrees()
	if float64(st.Max) < 5*st.Mean {
		t.Errorf("coAuthorsDBLP stand-in lacks hubs: max=%d mean=%.1f", st.Max, st.Mean)
	}
	mesh, _ := ByName("ldoor")
	mg := mesh.Generate(0.001, 5)
	mst := mg.Degrees()
	if float64(mst.Max) > 2*mst.Mean {
		t.Errorf("ldoor stand-in too skewed for a mesh: max=%d mean=%.1f", mst.Max, mst.Mean)
	}
}
