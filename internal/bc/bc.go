// Package bc implements betweenness centrality (Brandes' algorithm) with
// a branch-avoiding forward phase — one of the extensions the paper's §1
// names explicitly ("betweenness centrality [26, 10]").
//
// Brandes' forward phase is a top-down BFS that additionally accumulates
// shortest-path counts (sigma); its discovery branch and its
// "is w on the next level" test are both data-dependent, so the paper's
// transformation applies to each: the queue write becomes unconditional
// with a predicated tail advance (exactly Algorithm 5), and the sigma
// accumulation becomes an unconditional load-modify-store whose addend is
// masked to zero for non-successors. As with BFS, the price is O(|E|)
// stores per source instead of O(|V|) — the negative-result side of the
// paper, inherited by the heavier kernel. The backward (dependency)
// phase is shared verbatim by both variants.
package bc

import (
	"fmt"
	"math"

	"bagraph/internal/core"
	"bagraph/internal/graph"
)

const inf = ^uint32(0)

// Stats describes one full betweenness computation.
type Stats struct {
	// Sources is the number of BFS sources processed (|V|).
	Sources int
	// DistStores and SigmaStores count writes to the per-source distance
	// and sigma arrays across all sources; QueueStores counts queue
	// writes. The branch-avoiding variant's store blow-up shows up here.
	DistStores  uint64
	SigmaStores uint64
	QueueStores uint64
}

// state carries the per-source scratch arrays, reused across sources.
type state struct {
	dist  []uint32
	sigma []float64
	delta []float64
	queue []uint32
}

func newState(n int) *state {
	return &state{
		dist:  make([]uint32, n),
		sigma: make([]float64, n),
		delta: make([]float64, n),
		queue: make([]uint32, 0, n),
	}
}

func (s *state) reset(n int) {
	for i := 0; i < n; i++ {
		s.dist[i] = inf
		s.sigma[i] = 0
		s.delta[i] = 0
	}
	s.queue = s.queue[:0]
}

// BranchBased computes exact betweenness centrality for every vertex of
// an undirected, unweighted graph with the classical branch-based
// forward phase.
func BranchBased(g *graph.Graph) ([]float64, Stats) {
	return brandes(g, forwardBranchBased)
}

// BranchAvoiding computes the same centralities with the branch-avoiding
// forward phase. Results are bit-identical to BranchBased: the two
// forward phases perform the same floating-point operations in the same
// order; only the control flow differs.
func BranchAvoiding(g *graph.Graph) ([]float64, Stats) {
	return brandes(g, forwardBranchAvoiding)
}

func brandes(g *graph.Graph, forward func(*graph.Graph, uint32, *state, *Stats)) ([]float64, Stats) {
	n := g.NumVertices()
	bc := make([]float64, n)
	var st Stats
	scratch := newState(n)
	for s := 0; s < n; s++ {
		scratch.reset(n)
		forward(g, uint32(s), scratch, &st)
		accumulate(g, uint32(s), scratch, bc)
		st.Sources++
	}
	// Undirected: each pair counted from both endpoints.
	if !g.Directed() {
		for i := range bc {
			bc[i] /= 2
		}
	}
	return bc, st
}

// forwardBranchBased is Brandes' BFS with sigma accumulation, branch
// style (paper Algorithm 4 plus the successor test).
func forwardBranchBased(g *graph.Graph, s uint32, sc *state, st *Stats) {
	adj := g.Adjacency()
	offs := g.Offsets()
	sc.dist[s] = 0
	sc.sigma[s] = 1
	sc.queue = append(sc.queue, s)
	st.DistStores++
	st.SigmaStores++
	st.QueueStores++
	for head := 0; head < len(sc.queue); head++ {
		v := sc.queue[head]
		next := sc.dist[v] + 1
		sv := sc.sigma[v]
		for j := offs[v]; j < offs[v+1]; j++ {
			w := adj[j]
			if sc.dist[w] == inf {
				sc.dist[w] = next
				st.DistStores++
				sc.queue = append(sc.queue, w)
				st.QueueStores++
			}
			if sc.dist[w] == next {
				sc.sigma[w] += sv
				st.SigmaStores++
			}
		}
	}
}

// forwardBranchAvoiding replaces both data-dependent branches with
// predicated operations: the queue slot is written unconditionally and
// the tail advanced by a mask bit (Algorithm 5), and sigma[w] is
// read-modified-written unconditionally with a masked addend.
func forwardBranchAvoiding(g *graph.Graph, s uint32, sc *state, st *Stats) {
	adj := g.Adjacency()
	offs := g.Offsets()
	sc.dist[s] = 0
	sc.sigma[s] = 1
	st.DistStores++
	st.SigmaStores++
	// The queue needs full capacity for unconditional tail writes.
	q := sc.queue[:cap(sc.queue)]
	if len(q) < g.NumVertices()+1 {
		q = make([]uint32, g.NumVertices()+1)
	}
	q[0] = s
	st.QueueStores++
	head, tail := 0, 1
	for head < tail {
		v := q[head]
		head++
		next := sc.dist[v] + 1
		sv := sc.sigma[v]
		for j := offs[v]; j < offs[v+1]; j++ {
			w := adj[j]
			temp := sc.dist[w]
			// Unconditional queue write, predicated tail advance.
			q[tail] = w
			st.QueueStores++
			isNew := core.MaskGreater32(temp, next)
			temp = core.Select32(isNew, next, temp)
			tail += core.Bit(isNew)
			sc.dist[w] = temp
			st.DistStores++
			// Masked sigma accumulation: addend is sv when w sits on the
			// next level, else 0. Unconditional load-modify-store.
			onNext := core.MaskEqual32(temp, next)
			addend := sv * float64(core.Bit(onNext))
			sc.sigma[w] += addend
			st.SigmaStores++
		}
	}
	sc.queue = q[:tail]
}

// accumulate runs the (shared) backward dependency phase and folds the
// per-source dependencies into bc.
func accumulate(g *graph.Graph, s uint32, sc *state, bc []float64) {
	adj := g.Adjacency()
	offs := g.Offsets()
	// Reverse BFS order: vertices farthest from s first.
	for i := len(sc.queue) - 1; i >= 0; i-- {
		v := sc.queue[i]
		dv := sc.dist[v]
		coeff := 0.0
		for j := offs[v]; j < offs[v+1]; j++ {
			w := adj[j]
			if sc.dist[w] == dv+1 {
				coeff += (1 + sc.delta[w]) / sc.sigma[w]
			}
		}
		sc.delta[v] = sc.sigma[v] * coeff
		if v != s {
			bc[v] += sc.delta[v]
		}
	}
}

// Verify checks a betweenness vector against an independently computed
// reference (brute-force path counting), within tolerance. Intended for
// small graphs in tests.
func Verify(g *graph.Graph, got []float64, tol float64) error {
	want := Reference(g)
	if len(got) != len(want) {
		return fmt.Errorf("bc: %d values for %d vertices", len(got), len(want))
	}
	for v := range want {
		if math.Abs(got[v]-want[v]) > tol {
			return fmt.Errorf("bc: vertex %d: got %.6f, reference %.6f", v, got[v], want[v])
		}
	}
	return nil
}

// Reference computes exact betweenness by brute force: for every ordered
// pair (s, t), count shortest s-t paths through each intermediate vertex
// via BFS path counting from both endpoints. O(V·(V+E)) time, O(V²) used
// only in spirit — fine for test-sized graphs.
func Reference(g *graph.Graph) []float64 {
	n := g.NumVertices()
	bc := make([]float64, n)
	distFrom := make([][]uint32, n)
	countFrom := make([][]float64, n)
	for s := 0; s < n; s++ {
		distFrom[s], countFrom[s] = bfsCounts(g, uint32(s))
	}
	for s := 0; s < n; s++ {
		for t := 0; t < n; t++ {
			if s == t || distFrom[s][t] == inf {
				continue
			}
			total := countFrom[s][t]
			for v := 0; v < n; v++ {
				if v == s || v == t {
					continue
				}
				// v lies on a shortest s-t path iff the distances add up.
				if distFrom[s][v] != inf && distFrom[t][v] != inf &&
					distFrom[s][v]+distFrom[t][v] == distFrom[s][t] {
					bc[v] += countFrom[s][v] * countFrom[t][v] / total
				}
			}
		}
	}
	// Ordered pairs double-count for undirected graphs.
	for i := range bc {
		bc[i] /= 2
	}
	return bc
}

func bfsCounts(g *graph.Graph, s uint32) ([]uint32, []float64) {
	n := g.NumVertices()
	dist := make([]uint32, n)
	count := make([]float64, n)
	for i := range dist {
		dist[i] = inf
	}
	dist[s] = 0
	count[s] = 1
	queue := []uint32{s}
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		for _, w := range g.Neighbors(v) {
			if dist[w] == inf {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
			if dist[w] == dist[v]+1 {
				count[w] += count[v]
			}
		}
	}
	return dist, count
}
