package bc

import (
	"math"
	"testing"
	"testing/quick"

	"bagraph/internal/gen"
	"bagraph/internal/graph"
)

func TestPathGraphKnownValues(t *testing.T) {
	// P4 (0-1-2-3): BC(0)=BC(3)=0; BC(1)=BC(2)=2
	// (vertex 1 lies on shortest paths {0,2}, {0,3}; likewise vertex 2).
	g := gen.Path(4)
	for name, f := range kernels() {
		bc, _ := f(g)
		want := []float64{0, 2, 2, 0}
		for v := range want {
			if math.Abs(bc[v]-want[v]) > 1e-12 {
				t.Fatalf("%s: P4 bc = %v, want %v", name, bc, want)
			}
		}
	}
}

func TestStarKnownValues(t *testing.T) {
	// Star with center 0 and k leaves: BC(center) = k(k-1)/2.
	g := gen.Star(8)
	for name, f := range kernels() {
		bc, _ := f(g)
		if math.Abs(bc[0]-21) > 1e-12 { // 7*6/2
			t.Fatalf("%s: star center bc = %v, want 21", name, bc[0])
		}
		for v := 1; v < 8; v++ {
			if bc[v] != 0 {
				t.Fatalf("%s: leaf %d bc = %v", name, v, bc[v])
			}
		}
	}
}

func TestCycleUniform(t *testing.T) {
	// All vertices of a cycle are equivalent: equal centrality.
	g := gen.Cycle(9)
	for name, f := range kernels() {
		bc, _ := f(g)
		for v := 1; v < 9; v++ {
			if math.Abs(bc[v]-bc[0]) > 1e-9 {
				t.Fatalf("%s: cycle bc not uniform: %v", name, bc)
			}
		}
	}
}

func kernels() map[string]func(*graph.Graph) ([]float64, Stats) {
	return map[string]func(*graph.Graph) ([]float64, Stats){
		"branch-based":    BranchBased,
		"branch-avoiding": BranchAvoiding,
	}
}

func TestVariantsBitIdentical(t *testing.T) {
	graphs := []*graph.Graph{
		gen.Grid2D(5, 6, false),
		gen.BarabasiAlbert(60, 3, 9),
		gen.Community(4, 10, 0.5, 15, 2),
		gen.Disconnected(gen.Path(5), 3),
	}
	for _, g := range graphs {
		bb, _ := BranchBased(g)
		ba, _ := BranchAvoiding(g)
		for v := range bb {
			if bb[v] != ba[v] {
				t.Fatalf("%s: variants differ at vertex %d: %v vs %v (must be bit-identical)",
					g, v, bb[v], ba[v])
			}
		}
	}
}

func TestAgainstBruteForceReference(t *testing.T) {
	graphs := []*graph.Graph{
		gen.Path(7),
		gen.Cycle(8),
		gen.Star(9),
		gen.Grid2D(3, 4, false),
		gen.Complete(6),
		gen.GNM(12, 20, 5),
		gen.Disconnected(gen.Cycle(4), 2),
	}
	for _, g := range graphs {
		for name, f := range kernels() {
			bc, _ := f(g)
			if err := Verify(g, bc, 1e-9); err != nil {
				t.Fatalf("%s on %s: %v", name, g, err)
			}
		}
	}
}

func TestAgainstReferenceProperty(t *testing.T) {
	f := func(seed uint64) bool {
		n := 5 + int(seed%12)
		g := gen.GNM(n, int64(n), seed)
		bc, _ := BranchAvoiding(g)
		return Verify(g, bc, 1e-9) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestStoreBlowupInherited pins the extension's finding: the
// branch-avoiding forward phase inherits the BFS store blow-up, now
// doubled (distance + sigma writes per edge).
func TestStoreBlowupInherited(t *testing.T) {
	g := gen.Grid3D(5, 5, 5, 1)
	_, bb := BranchBased(g)
	_, ba := BranchAvoiding(g)
	if bb.Sources != g.NumVertices() || ba.Sources != g.NumVertices() {
		t.Fatal("source counts wrong")
	}
	// BB: dist stores = reached per source; BA: one per edge traversal.
	if ba.DistStores < 10*bb.DistStores {
		t.Fatalf("dist store blow-up only %.1fx", float64(ba.DistStores)/float64(bb.DistStores))
	}
	// Sigma: BB writes once per (new or successor) edge; BA per edge.
	if ba.SigmaStores <= bb.SigmaStores {
		t.Fatal("sigma stores did not grow")
	}
}

func TestEmptyAndTiny(t *testing.T) {
	empty := graph.MustBuild(0, nil, graph.Options{})
	for _, f := range kernels() {
		bc, st := f(empty)
		if len(bc) != 0 || st.Sources != 0 {
			t.Fatal("empty graph mishandled")
		}
	}
	single := graph.MustBuild(1, nil, graph.Options{})
	for _, f := range kernels() {
		bc, _ := f(single)
		if bc[0] != 0 {
			t.Fatal("single vertex bc nonzero")
		}
	}
	pair := graph.MustBuild(2, []graph.Edge{{U: 0, V: 1}}, graph.Options{})
	for _, f := range kernels() {
		bc, _ := f(pair)
		if bc[0] != 0 || bc[1] != 0 {
			t.Fatal("edge endpoints have nonzero bc")
		}
	}
}

func TestVerifyCatchesErrors(t *testing.T) {
	g := gen.Path(5)
	bc, _ := BranchBased(g)
	bad := make([]float64, len(bc))
	copy(bad, bc)
	bad[2] += 1
	if err := Verify(g, bad, 1e-9); err == nil {
		t.Fatal("corrupted bc accepted")
	}
	if err := Verify(g, bc[:2], 1e-9); err == nil {
		t.Fatal("short bc accepted")
	}
}
