// Package heap implements an indexed binary min-heap with decrease-key,
// the priority queue behind the Dijkstra baseline used to cross-validate
// the Bellman-Ford kernels.
package heap

// Min is an indexed min-heap over item ids [0, n) with uint64 priorities.
// Each id may be present at most once; DecreaseKey addresses items by id.
type Min struct {
	ids  []uint32 // heap order
	prio []uint64 // priority per heap slot
	pos  []int32  // id -> heap slot, -1 if absent
}

// NewMin returns a heap with capacity for ids [0, n).
func NewMin(n int) *Min {
	pos := make([]int32, n)
	for i := range pos {
		pos[i] = -1
	}
	return &Min{pos: pos}
}

// Len returns the number of items in the heap.
func (h *Min) Len() int { return len(h.ids) }

// Contains reports whether id is currently in the heap.
func (h *Min) Contains(id uint32) bool { return h.pos[id] >= 0 }

// Push inserts id with the given priority. It panics if id is already
// present.
func (h *Min) Push(id uint32, prio uint64) {
	if h.pos[id] >= 0 {
		panic("heap: duplicate push")
	}
	h.ids = append(h.ids, id)
	h.prio = append(h.prio, prio)
	h.pos[id] = int32(len(h.ids) - 1)
	h.up(len(h.ids) - 1)
}

// Pop removes and returns the item with the smallest priority. It panics
// on an empty heap.
func (h *Min) Pop() (id uint32, prio uint64) {
	if len(h.ids) == 0 {
		panic("heap: pop from empty heap")
	}
	id, prio = h.ids[0], h.prio[0]
	last := len(h.ids) - 1
	h.swap(0, last)
	h.ids = h.ids[:last]
	h.prio = h.prio[:last]
	h.pos[id] = -1
	if last > 0 {
		h.down(0)
	}
	return id, prio
}

// DecreaseKey lowers id's priority. It panics if id is absent or the new
// priority is larger than the current one.
func (h *Min) DecreaseKey(id uint32, prio uint64) {
	slot := h.pos[id]
	if slot < 0 {
		panic("heap: decrease-key on absent id")
	}
	if prio > h.prio[slot] {
		panic("heap: decrease-key increases priority")
	}
	h.prio[slot] = prio
	h.up(int(slot))
}

// PushOrDecrease inserts id or lowers its priority, whichever applies;
// it reports whether the heap changed (a larger priority is a no-op).
func (h *Min) PushOrDecrease(id uint32, prio uint64) bool {
	slot := h.pos[id]
	if slot < 0 {
		h.Push(id, prio)
		return true
	}
	if prio >= h.prio[slot] {
		return false
	}
	h.prio[slot] = prio
	h.up(int(slot))
	return true
}

func (h *Min) swap(i, j int) {
	h.ids[i], h.ids[j] = h.ids[j], h.ids[i]
	h.prio[i], h.prio[j] = h.prio[j], h.prio[i]
	h.pos[h.ids[i]] = int32(i)
	h.pos[h.ids[j]] = int32(j)
}

func (h *Min) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if h.prio[parent] <= h.prio[i] {
			return
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *Min) down(i int) {
	n := len(h.ids)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.prio[l] < h.prio[smallest] {
			smallest = l
		}
		if r < n && h.prio[r] < h.prio[smallest] {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}
