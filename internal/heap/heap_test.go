package heap

import (
	"sort"
	"testing"
	"testing/quick"

	"bagraph/internal/xrand"
)

func TestPushPopSorted(t *testing.T) {
	h := NewMin(10)
	prios := []uint64{5, 3, 8, 1, 9, 2, 7, 0, 6, 4}
	for id, p := range prios {
		h.Push(uint32(id), p)
	}
	if h.Len() != 10 {
		t.Fatalf("Len = %d", h.Len())
	}
	for want := uint64(0); want < 10; want++ {
		_, p := h.Pop()
		if p != want {
			t.Fatalf("pop priority %d, want %d", p, want)
		}
	}
	if h.Len() != 0 {
		t.Fatal("heap not empty")
	}
}

func TestDecreaseKeyReorders(t *testing.T) {
	h := NewMin(3)
	h.Push(0, 10)
	h.Push(1, 20)
	h.Push(2, 30)
	h.DecreaseKey(2, 5)
	if id, p := h.Pop(); id != 2 || p != 5 {
		t.Fatalf("pop = (%d, %d), want (2, 5)", id, p)
	}
}

func TestPushOrDecrease(t *testing.T) {
	h := NewMin(2)
	if !h.PushOrDecrease(0, 10) {
		t.Fatal("initial push reported no-op")
	}
	if h.PushOrDecrease(0, 15) {
		t.Fatal("priority increase reported as change")
	}
	if !h.PushOrDecrease(0, 5) {
		t.Fatal("decrease reported no-op")
	}
	if _, p := h.Pop(); p != 5 {
		t.Fatalf("priority = %d, want 5", p)
	}
}

func TestContains(t *testing.T) {
	h := NewMin(4)
	h.Push(2, 1)
	if !h.Contains(2) || h.Contains(1) {
		t.Fatal("Contains wrong")
	}
	h.Pop()
	if h.Contains(2) {
		t.Fatal("popped id still contained")
	}
}

func TestPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"pop empty":   func() { NewMin(1).Pop() },
		"dup push":    func() { h := NewMin(2); h.Push(0, 1); h.Push(0, 2) },
		"dk absent":   func() { NewMin(2).DecreaseKey(0, 1) },
		"dk increase": func() { h := NewMin(2); h.Push(0, 1); h.DecreaseKey(0, 5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

// Property: popping everything yields priorities in sorted order, for
// random insert/decrease sequences.
func TestHeapOrderProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := 1 + r.Intn(200)
		h := NewMin(n)
		current := make(map[uint32]uint64)
		for i := 0; i < n; i++ {
			id := uint32(r.Intn(n))
			p := r.Uint64() % 1000
			if cur, ok := current[id]; ok {
				if p < cur {
					h.DecreaseKey(id, p)
					current[id] = p
				}
				continue
			}
			h.Push(id, p)
			current[id] = p
		}
		var want []uint64
		for _, p := range current {
			want = append(want, p)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for _, w := range want {
			_, p := h.Pop()
			if p != w {
				return false
			}
		}
		return h.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
