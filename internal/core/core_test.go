package core

import (
	"math"
	"testing"
	"testing/quick"
)

// The edge values that break naive 32-bit mask arithmetic.
var edgeValues = []uint32{0, 1, 2, math.MaxUint32, math.MaxUint32 - 1, 1 << 31, 1<<31 - 1, 1<<31 + 1}

func TestMaskLess32Edges(t *testing.T) {
	for _, a := range edgeValues {
		for _, b := range edgeValues {
			want := uint32(0)
			if a < b {
				want = math.MaxUint32
			}
			if got := MaskLess32(a, b); got != want {
				t.Errorf("MaskLess32(%d, %d) = %#x, want %#x", a, b, got, want)
			}
		}
	}
}

func TestMaskVariantsEdges(t *testing.T) {
	for _, a := range edgeValues {
		for _, b := range edgeValues {
			if got, want := MaskGreater32(a, b) == math.MaxUint32, a > b; got != want {
				t.Errorf("MaskGreater32(%d, %d) wrong", a, b)
			}
			if got, want := MaskLessEq32(a, b) == math.MaxUint32, a <= b; got != want {
				t.Errorf("MaskLessEq32(%d, %d) wrong", a, b)
			}
			if got, want := MaskEqual32(a, b) == math.MaxUint32, a == b; got != want {
				t.Errorf("MaskEqual32(%d, %d) wrong", a, b)
			}
		}
	}
}

func TestMasksAreAllOrNothing(t *testing.T) {
	f := func(a, b uint32) bool {
		for _, m := range []uint32{MaskLess32(a, b), MaskGreater32(a, b), MaskLessEq32(a, b), MaskEqual32(a, b)} {
			if m != 0 && m != math.MaxUint32 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSelect32(t *testing.T) {
	if Select32(math.MaxUint32, 7, 9) != 7 {
		t.Error("all-ones mask must select a")
	}
	if Select32(0, 7, 9) != 9 {
		t.Error("zero mask must select b")
	}
}

func TestMin32MatchesBranchyProperty(t *testing.T) {
	f := func(a, b uint32) bool {
		want := a
		if b < a {
			want = b
		}
		return Min32(a, b) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMax32MatchesBranchyProperty(t *testing.T) {
	f := func(a, b uint32) bool {
		want := a
		if b > a {
			want = b
		}
		return Max32(a, b) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMinMaxEdges(t *testing.T) {
	for _, a := range edgeValues {
		for _, b := range edgeValues {
			if Min32(a, b) != min(a, b) {
				t.Errorf("Min32(%d, %d) = %d", a, b, Min32(a, b))
			}
			if Max32(a, b) != max(a, b) {
				t.Errorf("Max32(%d, %d) = %d", a, b, Max32(a, b))
			}
		}
	}
}

func TestCondAssignLess32(t *testing.T) {
	f := func(dst, val uint32) bool {
		got := dst
		CondAssignLess32(&got, val)
		want := dst
		if val < dst {
			want = val
		}
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBit(t *testing.T) {
	if Bit(math.MaxUint32) != 1 || Bit(0) != 0 {
		t.Fatal("Bit conversion wrong")
	}
}

func BenchmarkMin32Branchless(b *testing.B) {
	var sink uint32
	for i := 0; i < b.N; i++ {
		sink = Min32(sink^uint32(i), uint32(i)*2654435761)
	}
	_ = sink
}

func branchyMin(a, b uint32) uint32 {
	if a < b {
		return a
	}
	return b
}

func BenchmarkMin32Branchy(b *testing.B) {
	var sink uint32
	for i := 0; i < b.N; i++ {
		sink = branchyMin(sink^uint32(i), uint32(i)*2654435761)
	}
	_ = sink
}
