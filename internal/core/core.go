// Package core provides the branch-avoiding primitives that are the
// paper's central technique: data-dependent selections computed with
// arithmetic masks instead of conditional branches.
//
// The paper implements its kernels in assembly so that comparisons feed
// conditional moves (CMOVcc on x86-64, predicated instructions on ARM)
// rather than conditional jumps. Go provides no intrinsic for CMOV and the
// compiler only sometimes lowers an if to one (the same compiler problem
// the paper's §6.1 describes), so these helpers construct the select from
// a comparison mask explicitly:
//
//	mask = all-ones if the condition holds, else zero
//	out  = (a AND mask) OR (b AND NOT mask)
//
// Every helper is straight-line code: no conditional branch appears in
// the compiled function body, so the branch-misprediction cost of a
// data-dependent condition is structurally eliminated.
package core

// MaskLess32 returns 0xFFFFFFFF when a < b (unsigned), else 0, without
// branching. The subtraction is widened to int64 so the full uint32 range
// is handled.
//
//ba:branch-free
func MaskLess32(a, b uint32) uint32 {
	return uint32((int64(a) - int64(b)) >> 63)
}

// MaskGreater32 returns 0xFFFFFFFF when a > b (unsigned), else 0.
//
//ba:branch-free
func MaskGreater32(a, b uint32) uint32 {
	return MaskLess32(b, a)
}

// MaskLessEq32 returns 0xFFFFFFFF when a <= b (unsigned), else 0.
//
//ba:branch-free
func MaskLessEq32(a, b uint32) uint32 {
	return ^MaskLess32(b, a)
}

// MaskEqual32 returns 0xFFFFFFFF when a == b, else 0.
//
//ba:branch-free
func MaskEqual32(a, b uint32) uint32 {
	d := int64(a ^ b)
	// d == 0 iff equal; (d-1)>>63 is all-ones only when d == 0 given
	// 0 <= d < 2^32.
	return uint32((d - 1) >> 63)
}

// Select32 returns a when mask is all-ones and b when mask is zero. Any
// other mask blends bits and is a caller error.
//
//ba:branch-free
func Select32(mask, a, b uint32) uint32 {
	return (a & mask) | (b &^ mask)
}

// Min32 returns the unsigned minimum of a and b without branching — the
// conditional-move at the heart of the branch-avoiding Shiloach-Vishkin
// kernel (Algorithm 3).
//
//ba:branch-free
func Min32(a, b uint32) uint32 {
	m := MaskLess32(a, b)
	return Select32(m, a, b)
}

// Max32 returns the unsigned maximum of a and b without branching.
//
//ba:branch-free
func Max32(a, b uint32) uint32 {
	m := MaskLess32(a, b)
	return Select32(m, b, a)
}

// CondAssignLess32 performs *dst = val when val < *dst, without branching.
//
//ba:branch-free
func CondAssignLess32(dst *uint32, val uint32) {
	m := MaskLess32(val, *dst)
	*dst = Select32(m, val, *dst)
}

// Bit returns 1 when mask is all-ones, 0 when mask is zero — the
// conditional-add operand used by the branch-avoiding BFS (Algorithm 5's
// COND_ADD on the queue length).
//
//ba:branch-free
func Bit(mask uint32) int {
	return int(mask & 1)
}

// Lookahead is the fixed index distance the software-prefetch-shaped
// relaxation loops run ahead of the consuming iteration: before
// processing edge i of a row, the loop issues the (otherwise dependent)
// indirect load for edge i+Lookahead so the out-of-order engine can
// overlap its cache miss with useful work. Go has no prefetch intrinsic,
// so the early load is a real load accumulated into a per-worker sink.
// Eight 4-byte slots is two miss latencies of typical relaxation work
// ahead while staying well inside one adjacency cache line pair.
const Lookahead = 8
