package core

import (
	"testing"
	"testing/quick"
)

var edge64 = []uint64{0, 1, 2, MaxDist64, MaxDist64 - 1, 1 << 61, 1 << 40}

func TestMaskLess64Edges(t *testing.T) {
	for _, a := range edge64 {
		for _, b := range edge64 {
			want := uint64(0)
			if a < b {
				want = ^uint64(0)
			}
			if got := MaskLess64(a, b); got != want {
				t.Errorf("MaskLess64(%d, %d) = %#x, want %#x", a, b, got, want)
			}
			if got, w := MaskGreater64(a, b) == ^uint64(0), a > b; got != w {
				t.Errorf("MaskGreater64(%d, %d) wrong", a, b)
			}
			if got, w := MaskEqual64(a, b) == ^uint64(0), a == b; got != w {
				t.Errorf("MaskEqual64(%d, %d) wrong", a, b)
			}
		}
	}
}

func TestMin64Property(t *testing.T) {
	f := func(a, b uint64) bool {
		a %= MaxDist64 + 1
		b %= MaxDist64 + 1
		want := a
		if b < a {
			want = b
		}
		return Min64(a, b) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMaskEqual64FullRange(t *testing.T) {
	// MaskEqual64 has no range restriction; check extremes.
	f := func(a, b uint64) bool {
		got := MaskEqual64(a, b) == ^uint64(0)
		return got == (a == b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSelect64AndBit64(t *testing.T) {
	if Select64(^uint64(0), 3, 9) != 3 || Select64(0, 3, 9) != 9 {
		t.Fatal("Select64 wrong")
	}
	if Bit64(^uint64(0)) != 1 || Bit64(0) != 0 {
		t.Fatal("Bit64 wrong")
	}
}
