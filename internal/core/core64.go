package core

// 64-bit branch-avoiding primitives, used by the weighted-kernel
// extensions (Bellman-Ford relaxation, betweenness accumulation). The
// mask construction mirrors the 32-bit versions but operates on values
// the caller guarantees fit in 63 bits (distances are capped by
// MaxDist64), so signed subtraction cannot overflow.

// MaxDist64 is the largest distance value the 64-bit primitives accept:
// 2^62 - 1. Path lengths are sums of uint32 weights over at most 2^31
// vertices, far below this cap; the Inf sentinel used by the shortest-path
// kernels is 2^62.
const MaxDist64 = 1<<62 - 1

// MaskLess64 returns all-ones when a < b, else 0, for a, b ≤ 2^62.
//
//ba:branch-free
func MaskLess64(a, b uint64) uint64 {
	return uint64((int64(a) - int64(b)) >> 63)
}

// MaskGreater64 returns all-ones when a > b, else 0, for a, b ≤ 2^62.
//
//ba:branch-free
func MaskGreater64(a, b uint64) uint64 {
	return MaskLess64(b, a)
}

// MaskEqual64 returns all-ones when a == b, else 0.
//
//ba:branch-free
func MaskEqual64(a, b uint64) uint64 {
	d := a ^ b
	// Branchless "d == 0": OR together all bits of d, then the low bit of
	// (d|-d)>>63 is 1 exactly when d != 0.
	nonzero := (d | -d) >> 63
	return nonzero - 1
}

// Select64 returns a when mask is all-ones and b when mask is zero.
//
//ba:branch-free
func Select64(mask, a, b uint64) uint64 {
	return (a & mask) | (b &^ mask)
}

// Min64 returns the minimum of a and b without branching, for a, b ≤ 2^62.
//
//ba:branch-free
func Min64(a, b uint64) uint64 {
	return Select64(MaskLess64(a, b), a, b)
}

// Bit64 returns 1 when mask is all-ones, 0 when mask is zero.
//
//ba:branch-free
func Bit64(mask uint64) uint64 {
	return mask & 1
}
