// Package relabel computes vertex-relabeling permutations that improve
// the memory layout of CSR graphs without changing their structure.
//
// The flagship ordering is DegreeOrder: hub clustering. Sorting vertices
// by descending degree packs the high-degree hubs — the vertices most
// likely to sit on any frontier — into the lowest vertex ids, which (a)
// concentrates frontier/visited bits into the low words of the kernels'
// bitsets, exactly the shape the rank directory in internal/bitset
// exploits, and (b) clusters the hottest adjacency rows at the front of
// the CSR arrays where they share pages and cache lines.
//
// Permutations use the perm[old] = new convention throughout, matching
// (*graph.Graph).Permute. Inverse flips one into inv[new] = old so
// results computed in the permuted id space can be written back out
// under original ids.
package relabel

import (
	"sort"

	"bagraph/internal/graph"
	"bagraph/internal/xrand"
)

// DegreeOrder returns the hub-clustering permutation for g: vertices
// sorted by descending degree, ties broken by ascending original id so
// the ordering is deterministic. perm[old] = new.
func DegreeOrder(g *graph.Graph) []uint32 {
	n := g.NumVertices()
	order := make([]uint32, n)
	for v := range order {
		order[v] = uint32(v)
	}
	sort.Slice(order, func(i, j int) bool {
		di, dj := g.Degree(order[i]), g.Degree(order[j])
		if di != dj {
			return di > dj
		}
		return order[i] < order[j]
	})
	perm := make([]uint32, n)
	for nid, oid := range order {
		perm[oid] = uint32(nid)
	}
	return perm
}

// Identity returns the identity permutation of [0, n).
func Identity(n int) []uint32 {
	perm := make([]uint32, n)
	for v := range perm {
		perm[v] = uint32(v)
	}
	return perm
}

// Inverse returns the inverse of perm: inv[perm[old]] = old. perm must
// be a permutation of [0, len(perm)); a malformed one panics via the
// index check rather than corrupting silently.
func Inverse(perm []uint32) []uint32 {
	inv := make([]uint32, len(perm))
	for oid, nid := range perm {
		inv[nid] = uint32(oid)
	}
	return inv
}

// Shuffle returns a uniformly random permutation of [0, n) drawn
// deterministically from seed — the adversarial layout bagen -shuffle
// uses so benchmarks do not inherit generator-order locality for free.
func Shuffle(n int, seed uint64) []uint32 {
	p := xrand.New(seed).Perm(n)
	perm := make([]uint32, n)
	for i, v := range p {
		perm[i] = uint32(v)
	}
	return perm
}

// Apply permutes g by perm, preserving arc multiplicity.
func Apply(g *graph.Graph, perm []uint32) (*graph.Graph, error) {
	return g.Permute(perm)
}

// ApplyWeighted permutes w by perm, carrying arc weights along.
func ApplyWeighted(w *graph.Weighted, perm []uint32) (*graph.Weighted, error) {
	return w.Permute(perm)
}
