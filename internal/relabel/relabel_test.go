package relabel

import (
	"testing"

	"bagraph/internal/graph"
	"bagraph/internal/testutil"
)

// TestRoundTripIdentity checks perm ∘ inv = id (and inv ∘ perm = id) for
// every ordering over the full corpus.
func TestRoundTripIdentity(t *testing.T) {
	testutil.ForEachGraph(t, nil, func(t *testing.T, g *graph.Graph) {
		n := g.NumVertices()
		for name, perm := range map[string][]uint32{
			"degree":   DegreeOrder(g),
			"identity": Identity(n),
			"shuffle":  Shuffle(n, 42),
		} {
			inv := Inverse(perm)
			for v := 0; v < n; v++ {
				if int(inv[perm[v]]) != v {
					t.Fatalf("%s: inv[perm[%d]] = %d", name, v, inv[perm[v]])
				}
				if int(perm[inv[v]]) != v {
					t.Fatalf("%s: perm[inv[%d]] = %d", name, v, perm[inv[v]])
				}
			}
		}
	})
}

func TestDegreeOrderSortsDescending(t *testing.T) {
	testutil.ForEachGraph(t, nil, func(t *testing.T, g *graph.Graph) {
		perm := DegreeOrder(g)
		inv := Inverse(perm)
		for nid := 1; nid < len(inv); nid++ {
			dPrev, dCur := g.Degree(inv[nid-1]), g.Degree(inv[nid])
			if dPrev < dCur {
				t.Fatalf("new id %d has degree %d > predecessor's %d", nid, dCur, dPrev)
			}
			if dPrev == dCur && inv[nid-1] > inv[nid] {
				t.Fatalf("tie at degree %d broken unstably: old ids %d before %d",
					dCur, inv[nid-1], inv[nid])
			}
		}
	})
}

func TestShuffleDeterministic(t *testing.T) {
	a, b := Shuffle(1000, 7), Shuffle(1000, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different permutations")
		}
	}
	c := Shuffle(1000, 8)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical permutations")
	}
}

// TestApplyPreservesMultiplicity checks the permuted graph has exactly
// the original arc multiset (under relabeled ids), including self-loops
// and parallel arcs, for every corpus graph — the property graph.Relabel
// does NOT have.
func TestApplyPreservesMultiplicity(t *testing.T) {
	testutil.ForEachGraph(t, nil, func(t *testing.T, g *graph.Graph) {
		perm := DegreeOrder(g)
		pg, err := Apply(g, perm)
		if err != nil {
			t.Fatal(err)
		}
		if pg.NumVertices() != g.NumVertices() || pg.NumArcs() != g.NumArcs() {
			t.Fatalf("size changed: %v vs %v", pg, g)
		}
		n := g.NumVertices()
		for u := 0; u < n; u++ {
			want := map[uint32]int{}
			for _, v := range g.Neighbors(uint32(u)) {
				want[perm[v]]++
			}
			got := map[uint32]int{}
			for _, v := range pg.Neighbors(perm[u]) {
				got[v]++
			}
			if len(got) != len(want) {
				t.Fatalf("vertex %d: neighbor multiset size %d, want %d", u, len(got), len(want))
			}
			for v, c := range want {
				if got[v] != c {
					t.Fatalf("vertex %d: neighbor %d multiplicity %d, want %d", u, v, got[v], c)
				}
			}
		}
		if err := pg.Validate(); err != nil {
			t.Fatalf("permuted graph invalid: %v", err)
		}
	})
}

func TestApplyWeightedCarriesWeights(t *testing.T) {
	for _, seed := range testutil.DefaultSeeds {
		for _, w := range testutil.WeightedCorpus(t, seed) {
			perm := DegreeOrder(w.Graph)
			pw, err := ApplyWeighted(w, perm)
			if err != nil {
				t.Fatal(err)
			}
			n := w.NumVertices()
			for u := 0; u < n; u++ {
				adj, ws := w.NeighborWeights(uint32(u))
				for i, v := range adj {
					// Weighted graphs have unique (u,v) arcs, so the
					// permuted arc's weight is directly addressable.
					padj, pws := pw.NeighborWeights(perm[u])
					found := false
					for j, pv := range padj {
						if pv == perm[v] && pws[j] == ws[i] {
							found = true
							break
						}
					}
					if !found {
						t.Fatalf("%s: arc (%d,%d) w=%d missing after permute", w, u, v, ws[i])
					}
				}
			}
			if pw.NumArcs() != w.NumArcs() {
				t.Fatalf("%s: arc count changed", w)
			}
		}
	}
}

func TestApplyRejectsBadPerm(t *testing.T) {
	g := testutil.Hub(16, 4)
	if _, err := Apply(g, make([]uint32, 3)); err == nil {
		t.Fatal("short perm accepted")
	}
	bad := Identity(16)
	bad[0] = 1 // duplicate
	if _, err := Apply(g, bad); err == nil {
		t.Fatal("non-permutation accepted")
	}
}
