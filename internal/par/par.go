// Package par provides the data-parallel execution engine shared by the
// parallel kernel variants: a small persistent worker pool and a
// degree-balanced CSR vertex-range partitioner.
//
// The branch-avoiding kernels win exactly when per-element work is tiny
// (a load, a compare, a conditional move), which is also the regime where
// one core leaves the memory system idle. The engine keeps the paper's
// inner loops untouched and parallelizes the outer vertex sweep: each
// pass, every worker owns a contiguous vertex range chosen so ranges have
// near-equal *arc* counts (vertex-balanced splits starve workers on
// skewed degree distributions such as the RMAT corpus graphs). Workers
// write only to state owned by their range and merge per-worker
// accumulators (change counts, frontier queues) at a barrier, so kernels
// built on the engine are free of data races without per-element atomics.
package par

import (
	"context"
	"runtime"
	"sort"
	"sync"
)

// Range is a half-open vertex interval [Lo, Hi).
type Range struct {
	Lo, Hi int
}

// Len returns the number of vertices in the range.
func (r Range) Len() int { return r.Hi - r.Lo }

// Partition splits the vertex set [0, n) of a CSR graph into at most
// parts contiguous ranges with near-equal arc counts, where offs is the
// graph's offsets array (len n+1). Every boundary except 0 and n is
// rounded down to a multiple of align (align <= 1 means no alignment);
// alignment lets bitset-writing kernels give each worker exclusive
// ownership of whole 64-bit words. The returned ranges are non-empty,
// sorted, and cover [0, n) exactly.
func Partition(offs []int64, parts, align int) []Range {
	n := len(offs) - 1
	if n <= 0 {
		return nil
	}
	if parts < 1 {
		parts = 1
	}
	if align < 1 {
		align = 1
	}
	total := offs[n]
	ranges := make([]Range, 0, parts)
	lo := 0
	for k := 1; k <= parts && lo < n; k++ {
		var hi int
		if k == parts {
			hi = n
		} else {
			// First vertex whose prefix arc count reaches the k-th
			// equal-volume target; offs is non-decreasing so this is a
			// binary search.
			target := total * int64(k) / int64(parts)
			hi = sort.Search(n, func(v int) bool { return offs[v] >= target })
			hi = hi / align * align
			if hi > n {
				hi = n
			}
		}
		if hi <= lo {
			continue
		}
		ranges = append(ranges, Range{lo, hi})
		lo = hi
	}
	// The k == parts arm pins hi to n, so the loop always exits with
	// lo == n: the ranges cover [0, n) exactly.
	return ranges
}

// PartitionSlice splits [0, n) into at most parts near-equal-count
// ranges, for work without a degree skew to balance (frontier chunks,
// plain index sweeps).
func PartitionSlice(n, parts int) []Range {
	if n <= 0 {
		return nil
	}
	if parts < 1 {
		parts = 1
	}
	if parts > n {
		parts = n
	}
	ranges := make([]Range, 0, parts)
	for k := 0; k < parts; k++ {
		lo := n * k / parts
		hi := n * (k + 1) / parts
		if hi > lo {
			ranges = append(ranges, Range{lo, hi})
		}
	}
	return ranges
}

// Pool is a fixed set of persistent worker goroutines. A Pool amortizes
// goroutine startup across the many short barrier-synchronized passes of
// an iterative kernel (an SV pass or a BFS level each end at a barrier).
// A Pool must be released with Close; kernels that create one internally
// do so with defer.
type Pool struct {
	workers int
	tasks   chan task
	closed  sync.Once
}

type task struct {
	fn   func(i int)
	i    int
	done *sync.WaitGroup
}

// DefaultWorkers resolves a worker-count request: values < 1 mean
// GOMAXPROCS.
func DefaultWorkers(workers int) int {
	if workers < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// NewPool starts a pool of the given size; workers < 1 means GOMAXPROCS.
func NewPool(workers int) *Pool {
	workers = DefaultWorkers(workers)
	p := &Pool{workers: workers, tasks: make(chan task)}
	for w := 0; w < workers; w++ {
		go func() {
			for t := range p.tasks {
				t.fn(t.i)
				t.done.Done()
			}
		}()
	}
	return p
}

// Workers returns the pool size.
func (p *Pool) Workers() int { return p.workers }

// Run executes fn(0), ..., fn(n-1) across the pool's workers and returns
// when all calls have completed — the return is the pass barrier. Calls
// run concurrently (at most Workers at a time), so distinct indices must
// not write shared state.
func (p *Pool) Run(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if n == 1 || p.workers == 1 {
		// Degenerate case: run inline, no cross-goroutine handoff.
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var done sync.WaitGroup
	done.Add(n)
	for i := 0; i < n; i++ {
		p.tasks <- task{fn: fn, i: i, done: &done}
	}
	done.Wait()
}

// RunCtx is Run with cooperative cancellation at the pass barrier: it
// skips the pass entirely when ctx is already cancelled, and otherwise
// reports ctx.Err() after the barrier. Workers never observe ctx — a
// pass always runs to completion once dispatched, which is what keeps
// the kernels' inner loops free of per-element atomics and branches;
// the granularity of cancellation is one pass (one SV sweep, one BFS
// level, one SSSP scatter). Cancellation is detected through ctx.Err()
// alone, never Done(), so tests can drive deterministic barrier-exact
// cancellation with an Err-only context.
func (p *Pool) RunCtx(ctx context.Context, n int, fn func(i int)) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	p.Run(n, fn)
	return ctx.Err()
}

// Close stops the worker goroutines. The pool must not be used after
// Close; Close is idempotent.
func (p *Pool) Close() {
	p.closed.Do(func() { close(p.tasks) })
}
