// Package par provides the data-parallel execution engine shared by the
// parallel kernel variants: a small persistent worker pool, a
// degree-balanced CSR vertex-range partitioner, and a chunked
// work-stealing scheduler for skewed passes.
//
// The branch-avoiding kernels win exactly when per-element work is tiny
// (a load, a compare, a conditional move), which is also the regime where
// one core leaves the memory system idle. The engine keeps the paper's
// inner loops untouched and parallelizes the outer vertex sweep: each
// pass, every worker owns a contiguous vertex range chosen so ranges have
// near-equal *arc* counts (vertex-balanced splits starve workers on
// skewed degree distributions such as the RMAT corpus graphs). Workers
// write only to state owned by their range and merge per-worker
// accumulators (change counts, frontier queues) at a barrier, so kernels
// built on the engine are free of data races without per-element atomics.
//
// A static launch-time split pays nothing during the pass but stalls
// the barrier on a straggler when the work is skewed (an RMAT hub in
// one range, a sparse late-level frontier). RunChunks therefore
// over-decomposes a pass into arc-balanced chunks and, under the
// Stealing schedule, lets idle workers take whole chunks from the
// most-loaded victim through a single atomic cursor fetch — control
// flow is bought once per chunk, and the per-element inner loops the
// paper transforms stay branch-free and atomic-free.
package par

import (
	"context"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// Range is a half-open vertex interval [Lo, Hi).
type Range struct {
	Lo, Hi int
}

// Len returns the number of vertices in the range.
func (r Range) Len() int { return r.Hi - r.Lo }

// Partition splits the vertex set [0, n) of a CSR graph into at most
// parts contiguous ranges with near-equal arc counts, where offs is the
// graph's offsets array (len n+1). Every boundary except 0 and n is
// rounded down to a multiple of align (align <= 1 means no alignment);
// alignment lets bitset-writing kernels give each worker exclusive
// ownership of whole 64-bit words. The returned ranges are non-empty,
// sorted, and cover [0, n) exactly.
func Partition(offs []int64, parts, align int) []Range {
	n := len(offs) - 1
	if n <= 0 {
		return nil
	}
	if parts < 1 {
		parts = 1
	}
	if align < 1 {
		align = 1
	}
	total := offs[n]
	ranges := make([]Range, 0, parts)
	lo := 0
	for k := 1; k <= parts && lo < n; k++ {
		var hi int
		if k == parts {
			hi = n
		} else {
			// First vertex whose prefix arc count reaches the k-th
			// equal-volume target; offs is non-decreasing so this is a
			// binary search.
			target := total * int64(k) / int64(parts)
			hi = sort.Search(n, func(v int) bool { return offs[v] >= target })
			hi = hi / align * align
			if hi > n {
				hi = n
			}
		}
		if hi <= lo {
			continue
		}
		ranges = append(ranges, Range{lo, hi})
		lo = hi
	}
	// The k == parts arm pins hi to n, so the loop always exits with
	// lo == n: the ranges cover [0, n) exactly.
	return ranges
}

// PartitionSlice splits [0, n) into at most parts near-equal-count
// ranges, for work without a degree skew to balance (frontier chunks,
// plain index sweeps).
func PartitionSlice(n, parts int) []Range {
	if n <= 0 {
		return nil
	}
	if parts < 1 {
		parts = 1
	}
	if parts > n {
		parts = n
	}
	ranges := make([]Range, 0, parts)
	for k := 0; k < parts; k++ {
		lo := n * k / parts
		hi := n * (k + 1) / parts
		if hi > lo {
			ranges = append(ranges, Range{lo, hi})
		}
	}
	return ranges
}

// Pool is a fixed set of persistent worker goroutines. A Pool amortizes
// goroutine startup across the many short barrier-synchronized passes of
// an iterative kernel (an SV pass or a BFS level each end at a barrier).
// A Pool must be released with Close; kernels that create one internally
// do so with defer.
type Pool struct {
	workers int
	tasks   chan task
	closed  sync.Once
}

type task struct {
	fn   func(i int)
	i    int
	done *sync.WaitGroup
}

// DefaultWorkers resolves a worker-count request: values < 1 mean
// GOMAXPROCS.
func DefaultWorkers(workers int) int {
	if workers < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// NewPool starts a pool of the given size; workers < 1 means GOMAXPROCS.
func NewPool(workers int) *Pool {
	workers = DefaultWorkers(workers)
	p := &Pool{workers: workers, tasks: make(chan task)}
	for w := 0; w < workers; w++ {
		go func() {
			for t := range p.tasks {
				t.fn(t.i)
				t.done.Done()
			}
		}()
	}
	return p
}

// Workers returns the pool size.
func (p *Pool) Workers() int { return p.workers }

// Run executes fn(0), ..., fn(n-1) across the pool's workers and returns
// when all calls have completed — the return is the pass barrier. Calls
// run concurrently (at most Workers at a time), so distinct indices must
// not write shared state.
func (p *Pool) Run(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if n == 1 || p.workers == 1 {
		// Degenerate case: run inline, no cross-goroutine handoff.
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var done sync.WaitGroup
	done.Add(n)
	for i := 0; i < n; i++ {
		p.tasks <- task{fn: fn, i: i, done: &done}
	}
	done.Wait()
}

// RunCtx is Run with cooperative cancellation at the pass barrier: it
// skips the pass entirely when ctx is already cancelled, and otherwise
// reports ctx.Err() after the barrier. Workers never observe ctx — a
// pass always runs to completion once dispatched, which is what keeps
// the kernels' inner loops free of per-element atomics and branches;
// the granularity of cancellation is one pass (one SV sweep, one BFS
// level, one SSSP scatter). Cancellation is detected through ctx.Err()
// alone, never Done(), so tests can drive deterministic barrier-exact
// cancellation with an Err-only context.
func (p *Pool) RunCtx(ctx context.Context, n int, fn func(i int)) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	p.Run(n, fn)
	return ctx.Err()
}

// Close stops the worker goroutines. The pool must not be used after
// Close; Close is idempotent.
func (p *Pool) Close() {
	p.closed.Do(func() { close(p.tasks) })
}

// Schedule selects how a pass's chunks are assigned to workers.
type Schedule int

const (
	// Static gives each worker one contiguous block of the chunk list,
	// fixed for the whole pass — the launch-time partitioning the
	// original engine used, with zero scheduling traffic. A straggler
	// block stalls the pass barrier.
	Static Schedule = iota
	// Stealing also blocks the chunk list contiguously, but workers
	// drain their block through an atomic cursor and, when empty, steal
	// whole chunks from the most-loaded victim's cursor. Control-flow
	// cost is paid once per chunk, never per element: the chunk bodies
	// the kernels run stay atomic-free.
	Stealing
)

// String implements fmt.Stringer.
func (s Schedule) String() string {
	switch s {
	case Static:
		return "static"
	case Stealing:
		return "stealing"
	default:
		return "unknown"
	}
}

// DefaultChunkFactor is the chunks-per-worker over-decomposition the
// Stealing schedule uses when the caller does not pick one. More chunks
// mean finer rebalancing but more cursor traffic; 8 keeps the per-chunk
// amortization deep while letting a straggler shed 7/8 of its backlog.
const DefaultChunkFactor = 8

// ChunkCount returns the chunk-list length a pass should partition
// into: one chunk per worker under Static (the original launch-time
// split), factor chunks per worker under Stealing (factor < 1 means
// DefaultChunkFactor).
func ChunkCount(workers int, sched Schedule, factor int) int {
	if sched == Static {
		return workers
	}
	if factor < 1 {
		factor = DefaultChunkFactor
	}
	return workers * factor
}

// ChunkStats describes the scheduling work of one RunChunks pass.
type ChunkStats struct {
	// Chunks is the length of the chunk list.
	Chunks int
	// Steals counts chunks executed by a worker that did not own them.
	Steals uint64
	// StealPasses counts victim-selection scans (each picks the
	// most-loaded victim and takes one chunk from its cursor).
	StealPasses uint64
}

// chunkCursor is one worker's next-chunk index, padded to a cache line
// so cursor traffic from thieves does not false-share with neighbors.
type chunkCursor struct {
	next int64
	_    [7]int64
}

// RunChunks executes fn once per chunk across the pool and returns at
// the pass barrier. fn receives the executing worker's index (dense in
// [0, Workers())) and the chunk; all fn calls for one worker index run
// serially on one goroutine, so per-worker accumulators indexed by it
// need no atomics — the only atomics are the chunk cursors inside the
// scheduler itself, one fetch per chunk handoff.
//
// Under Static every worker runs exactly its contiguous block of the
// chunk list. Under Stealing a worker that drains its block scans for
// the victim with the most chunks left and takes one chunk per scan
// until every cursor is exhausted; a pass with no idle workers degrades
// to Static plus one atomic per chunk.
func (p *Pool) RunChunks(chunks []Range, sched Schedule, fn func(worker int, c Range)) ChunkStats {
	st := ChunkStats{Chunks: len(chunks)}
	if len(chunks) == 0 {
		return st
	}
	blocks := PartitionSlice(len(chunks), p.workers)
	if sched == Static || len(blocks) == 1 {
		p.Run(len(blocks), func(w int) {
			for i := blocks[w].Lo; i < blocks[w].Hi; i++ {
				fn(w, chunks[i])
			}
		})
		return st
	}
	cursors := make([]chunkCursor, len(blocks))
	for w := range blocks {
		cursors[w].next = int64(blocks[w].Lo)
	}
	// Per-worker steal counters, padded like the cursors; folded into
	// st after the barrier (the barrier is the happens-before edge).
	counts := make([]chunkCursor, 2*len(blocks))
	// The scheduler's cursor fetches are the only sanctioned atomics in
	// the engine: one per chunk handoff, never per element. The chunk
	// bodies (fn) stay atomic-free — balint enforces it.
	//ba:atomic-free
	p.Run(len(blocks), func(w int) {
		// Drain the worker's own block. The owner pops through the same
		// cursor thieves steal from, so a chunk runs exactly once.
		for {
			//ba:allow-atomic owner pop: one cursor fetch per chunk, shared with thieves so each chunk runs exactly once
			i := atomic.AddInt64(&cursors[w].next, 1) - 1
			if i >= int64(blocks[w].Hi) {
				break
			}
			fn(w, chunks[i])
		}
		// Steal: one scan picks the most-loaded victim, one atomic
		// fetch takes a chunk. Rescanning per chunk keeps the
		// most-loaded choice honest as backlogs drain.
		for {
			victim, best := -1, int64(0)
			for v := range blocks {
				if v == w {
					continue
				}
				//ba:allow-atomic victim scan: cursor loads to find the most-loaded backlog, one scan per steal
				if rem := int64(blocks[v].Hi) - atomic.LoadInt64(&cursors[v].next); rem > best {
					best, victim = rem, v
				}
			}
			if victim < 0 {
				break
			}
			counts[2*w+1].next++ // steal pass
			//ba:allow-atomic steal fetch: the one cursor increment that transfers a chunk to the thief
			i := atomic.AddInt64(&cursors[victim].next, 1) - 1
			if i >= int64(blocks[victim].Hi) {
				continue // another thief won the last chunk; rescan
			}
			fn(w, chunks[i])
			counts[2*w].next++ // steal
		}
	})
	for w := range blocks {
		st.Steals += uint64(counts[2*w].next)
		st.StealPasses += uint64(counts[2*w+1].next)
	}
	return st
}

// RunChunksCtx is RunChunks with cooperative cancellation at the pass
// barrier, mirroring RunCtx: a context already cancelled skips the pass
// entirely, and otherwise ctx.Err() is reported after the barrier.
// Workers never observe ctx — once dispatched, a pass runs every chunk.
func (p *Pool) RunChunksCtx(ctx context.Context, chunks []Range, sched Schedule, fn func(worker int, c Range)) (ChunkStats, error) {
	if err := ctx.Err(); err != nil {
		return ChunkStats{}, err
	}
	st := p.RunChunks(chunks, sched, fn)
	return st, ctx.Err()
}
