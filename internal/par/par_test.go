package par

import (
	"context"
	"sync/atomic"
	"testing"
)

// offsFromDegrees builds a CSR offsets array from a degree sequence.
func offsFromDegrees(deg []int) []int64 {
	offs := make([]int64, len(deg)+1)
	for i, d := range deg {
		offs[i+1] = offs[i] + int64(d)
	}
	return offs
}

func checkCover(t *testing.T, ranges []Range, n int) {
	t.Helper()
	lo := 0
	for _, r := range ranges {
		if r.Lo != lo {
			t.Fatalf("range %v does not start at %d", r, lo)
		}
		if r.Hi <= r.Lo {
			t.Fatalf("empty or inverted range %v", r)
		}
		lo = r.Hi
	}
	if lo != n {
		t.Fatalf("ranges end at %d, want %d", lo, n)
	}
}

func TestPartitionCoversAndBalances(t *testing.T) {
	// Skewed degrees: vertex 0 holds half of all arcs.
	deg := make([]int, 1000)
	deg[0] = 1000
	for i := 1; i < len(deg); i++ {
		deg[i] = 1
	}
	offs := offsFromDegrees(deg)
	ranges := Partition(offs, 4, 1)
	checkCover(t, ranges, len(deg))
	// The heavy vertex must sit alone-ish: no range besides the first
	// should carry much more than total/parts arcs.
	total := offs[len(offs)-1]
	for i, r := range ranges {
		arcs := offs[r.Hi] - offs[r.Lo]
		if i > 0 && arcs > total/2 {
			t.Errorf("range %d = %v has %d of %d arcs", i, r, arcs, total)
		}
	}
}

func TestPartitionUniform(t *testing.T) {
	deg := make([]int, 64)
	for i := range deg {
		deg[i] = 3
	}
	offs := offsFromDegrees(deg)
	for _, parts := range []int{1, 2, 3, 4, 7, 64, 100} {
		ranges := Partition(offs, parts, 1)
		checkCover(t, ranges, len(deg))
		if len(ranges) > parts {
			t.Errorf("parts=%d produced %d ranges", parts, len(ranges))
		}
	}
}

func TestPartitionAligned(t *testing.T) {
	deg := make([]int, 1000)
	for i := range deg {
		deg[i] = 1 + i%5
	}
	offs := offsFromDegrees(deg)
	ranges := Partition(offs, 8, 64)
	checkCover(t, ranges, len(deg))
	for i, r := range ranges {
		if i > 0 && r.Lo%64 != 0 {
			t.Errorf("range %d = %v not 64-aligned", i, r)
		}
	}
}

func TestPartitionEdgeCases(t *testing.T) {
	if got := Partition([]int64{0}, 4, 1); got != nil {
		t.Errorf("empty graph: got %v", got)
	}
	// All-isolated vertices: zero arcs everywhere.
	offs := make([]int64, 11)
	ranges := Partition(offs, 4, 1)
	checkCover(t, ranges, 10)
}

func TestPartitionSlice(t *testing.T) {
	for _, tc := range []struct{ n, parts int }{
		{0, 4}, {1, 4}, {10, 3}, {10, 10}, {10, 20}, {1000, 7},
	} {
		ranges := PartitionSlice(tc.n, tc.parts)
		if tc.n == 0 {
			if ranges != nil {
				t.Errorf("n=0: got %v", ranges)
			}
			continue
		}
		checkCover(t, ranges, tc.n)
		if len(ranges) > tc.parts {
			t.Errorf("n=%d parts=%d produced %d ranges", tc.n, tc.parts, len(ranges))
		}
	}
}

func TestPoolRunsEveryTask(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		p := NewPool(workers)
		if p.Workers() != workers {
			t.Fatalf("Workers() = %d, want %d", p.Workers(), workers)
		}
		hits := make([]int32, 100)
		for pass := 0; pass < 10; pass++ {
			p.Run(len(hits), func(i int) {
				atomic.AddInt32(&hits[i], 1)
			})
		}
		p.Close()
		p.Close() // idempotent
		for i, h := range hits {
			if h != 10 {
				t.Fatalf("workers=%d: task %d ran %d times, want 10", workers, i, h)
			}
		}
	}
}

func TestPoolBarrier(t *testing.T) {
	// Run must not return before every task completes: accumulate into a
	// plain slice (no atomics) and read it after the barrier; the race
	// detector cross-checks the happens-before edge.
	p := NewPool(4)
	defer p.Close()
	sums := make([]int64, 8)
	for pass := 0; pass < 50; pass++ {
		p.Run(len(sums), func(i int) { sums[i]++ })
		for i, s := range sums {
			if s != int64(pass+1) {
				t.Fatalf("pass %d: sums[%d] = %d", pass, i, s)
			}
		}
	}
}

func TestRunChunksCoversEveryChunkOnce(t *testing.T) {
	// Every chunk must execute exactly once under both schedules, for
	// worker counts below, at, and above the chunk count.
	chunks := PartitionSlice(1000, 37)
	for _, sched := range []Schedule{Static, Stealing} {
		for _, workers := range []int{1, 2, 4, 8, 64} {
			p := NewPool(workers)
			hits := make([]int32, 1000)
			st := p.RunChunks(chunks, sched, func(w int, c Range) {
				if w < 0 || w >= p.Workers() {
					t.Errorf("worker id %d out of range", w)
				}
				for i := c.Lo; i < c.Hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			p.Close()
			if st.Chunks != len(chunks) {
				t.Errorf("%v/workers=%d: Chunks = %d, want %d", sched, workers, st.Chunks, len(chunks))
			}
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("%v/workers=%d: index %d ran %d times", sched, workers, i, h)
				}
			}
		}
	}
}

func TestRunChunksWorkerSerial(t *testing.T) {
	// All fn calls for one worker index run serially: per-worker
	// accumulators written without atomics must survive -race.
	p := NewPool(4)
	defer p.Close()
	chunks := PartitionSlice(4096, 64)
	acc := make([]int64, p.Workers()*8) // padded slots, one per worker
	for pass := 0; pass < 20; pass++ {
		st := p.RunChunks(chunks, Stealing, func(w int, c Range) {
			acc[w*8] += int64(c.Len())
		})
		total := int64(0)
		for w := 0; w < p.Workers(); w++ {
			total += acc[w*8]
		}
		if total != int64(4096*(pass+1)) {
			t.Fatalf("pass %d: accumulated %d vertices, want %d", pass, total, 4096*(pass+1))
		}
		if st.Steals > 0 && st.StealPasses == 0 {
			t.Fatal("steals recorded without steal passes")
		}
	}
}

func TestRunChunksStealsFromBlockedOwner(t *testing.T) {
	// Deterministic steal: worker 0's first chunk blocks until every
	// other chunk has run. Those chunks sit behind worker 0's cursor,
	// so they can only complete if another worker steals them —
	// scheduler-timing independent, works even on one CPU because the
	// gate is a goroutine blocking point.
	p := NewPool(2)
	defer p.Close()
	// 8 chunks; blocks are [0,4) and [4,8). Chunk 0 gates on the other 7.
	chunks := PartitionSlice(8, 8)
	gate := make(chan struct{})
	var rest int32
	st := p.RunChunks(chunks, Stealing, func(w int, c Range) {
		if c.Lo == 0 {
			<-gate
			return
		}
		if atomic.AddInt32(&rest, 1) == 7 {
			close(gate)
		}
	})
	if st.Steals == 0 {
		t.Fatal("no chunks were stolen from the blocked owner")
	}
	if st.StealPasses < st.Steals {
		t.Fatalf("StealPasses = %d < Steals = %d", st.StealPasses, st.Steals)
	}
}

func TestRunChunksEmpty(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	for _, sched := range []Schedule{Static, Stealing} {
		st := p.RunChunks(nil, sched, func(int, Range) { t.Fatal("ran a chunk of nothing") })
		if st != (ChunkStats{}) {
			t.Errorf("%v: stats %+v for the empty chunk list", sched, st)
		}
	}
}

func TestRunChunksCtx(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	chunks := PartitionSlice(16, 8)
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.RunChunksCtx(cancelled, chunks, Stealing, func(int, Range) {
		t.Fatal("pre-cancelled pass dispatched a chunk")
	}); err == nil {
		t.Fatal("pre-cancelled RunChunksCtx reported no error")
	}
	ran := int32(0)
	st, err := p.RunChunksCtx(context.Background(), chunks, Static, func(_ int, c Range) {
		atomic.AddInt32(&ran, 1)
	})
	if err != nil || int(ran) != st.Chunks {
		t.Fatalf("ran %d chunks of %d, err %v", ran, st.Chunks, err)
	}
}

func TestChunkCount(t *testing.T) {
	if got := ChunkCount(4, Static, 16); got != 4 {
		t.Errorf("Static: %d chunks, want workers", got)
	}
	if got := ChunkCount(4, Stealing, 0); got != 4*DefaultChunkFactor {
		t.Errorf("Stealing default: %d", got)
	}
	if got := ChunkCount(4, Stealing, 3); got != 12 {
		t.Errorf("Stealing factor 3: %d", got)
	}
}

func TestScheduleString(t *testing.T) {
	if Static.String() != "static" || Stealing.String() != "stealing" {
		t.Errorf("Schedule strings: %v %v", Static, Stealing)
	}
}

func TestDefaultWorkers(t *testing.T) {
	if DefaultWorkers(3) != 3 {
		t.Error("explicit count not honored")
	}
	if DefaultWorkers(0) < 1 || DefaultWorkers(-1) < 1 {
		t.Error("default must be at least 1")
	}
}
