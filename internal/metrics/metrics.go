// Package metrics is the daemon's aggregation plane: lock-cheap
// counters and fixed-bucket histograms collected into a registry that
// renders the Prometheus text exposition format (version 0.0.4).
//
// The serving layer's hot paths run many short kernel dispatches per
// second, so every instrument is a plain atomic: a Counter is one
// atomic add, a Histogram Observe is two atomic adds plus a CAS-loop
// float accumulate over a handful of fixed buckets chosen at
// registration. There is no sampling, no time windows, and no
// dependency — scrape-side tooling (Prometheus, curl | grep) does the
// rate math, which is exactly the division of labor the exposition
// format is designed for.
//
// Families are registered once at startup (Registry methods panic on
// duplicate or malformed names — misregistration is a programming
// error, not a runtime condition) and labeled children are created on
// first use and cached, so steady-state observation never allocates.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing value: one atomic word.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can move in both directions: one atomic word
// holding a float64 bit pattern. Set overwrites; there is no
// accumulate — gauges report current state (a shard's health, a queue
// depth), not totals.
type Gauge struct {
	bits atomic.Uint64
}

// Set overwrites the gauge's value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// atomicFloat accumulates a float64 with compare-and-swap on its bit
// pattern — the histogram sum must be a float in the exposition format,
// and a mutex per Observe would be the only alternative.
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) load() float64 { return math.Float64frombits(f.bits.Load()) }

// Histogram counts observations into fixed upper-bound buckets
// (cumulative `le` semantics at exposition time: a value lands in the
// first bucket whose bound is >= the value, and every wider bucket's
// exposed count includes it).
type Histogram struct {
	bounds  []float64
	buckets []atomic.Uint64 // len(bounds)+1; the last is +Inf
	count   atomic.Uint64
	sum     atomicFloat
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.add(v)
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.load() }

// ExponentialBuckets returns n bounds start, start*factor, ... —
// the standard shape for latency histograms. start must be positive
// and factor > 1.
func ExponentialBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("metrics: invalid exponential bucket spec")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// LinearBuckets returns n bounds start, start+width, ...
func LinearBuckets(start, width float64, n int) []float64 {
	if width <= 0 || n < 1 {
		panic("metrics: invalid linear bucket spec")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start += width
	}
	return out
}

// family is one registered metric name: its metadata plus the labeled
// children that carry the values. An unlabeled metric is a family with
// exactly one child under the empty label key.
type family struct {
	name   string
	help   string
	typ    string // "counter" | "gauge" | "histogram"
	labels []string
	bounds []float64 // histograms only

	mu       sync.RWMutex
	children map[string]*child
	order    []string
}

type child struct {
	rendered string // `{k="v",...}` or ""
	counter  *Counter
	gauge    *Gauge
	hist     *Histogram
}

// get returns (creating on first use) the child for the label values.
func (f *family) get(values []string) *child {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("metrics: %s wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\x00")
	f.mu.RLock()
	c := f.children[key]
	f.mu.RUnlock()
	if c != nil {
		return c
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c = f.children[key]; c != nil {
		return c
	}
	c = &child{rendered: renderLabels(f.labels, values)}
	switch f.typ {
	case "histogram":
		c.hist = &Histogram{bounds: f.bounds, buckets: make([]atomic.Uint64, len(f.bounds)+1)}
	case "gauge":
		c.gauge = &Gauge{}
	default:
		c.counter = &Counter{}
	}
	f.children[key] = c
	f.order = append(f.order, key)
	return c
}

// renderLabels formats a label set for exposition, escaping the label
// values per the format spec (backslash, quote, newline).
func renderLabels(names, values []string) string {
	if len(names) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// CounterVec is a counter family keyed by label values.
type CounterVec struct {
	f *family
}

// With returns the counter for the given label values, creating it on
// first use. Callers on hot paths should cache the returned *Counter.
func (v *CounterVec) With(values ...string) *Counter { return v.f.get(values).counter }

// GaugeVec is a gauge family keyed by label values.
type GaugeVec struct {
	f *family
}

// With returns the gauge for the given label values, creating it on
// first use.
func (v *GaugeVec) With(values ...string) *Gauge { return v.f.get(values).gauge }

// HistogramVec is a histogram family keyed by label values.
type HistogramVec struct {
	f *family
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram { return v.f.get(values).hist }

// Registry is an ordered collection of metric families with a text
// exposition writer. The zero value is not usable; construct with
// NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// register installs a family; the name must be new and well-formed.
func (r *Registry) register(f *family) *family {
	if !validName(f.name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", f.name))
	}
	for _, l := range f.labels {
		if !validName(l) {
			panic(fmt.Sprintf("metrics: invalid label name %q on %s", l, f.name))
		}
	}
	if f.typ == "histogram" {
		if len(f.bounds) == 0 {
			panic(fmt.Sprintf("metrics: histogram %s needs at least one bucket bound", f.name))
		}
		if !sort.Float64sAreSorted(f.bounds) {
			panic(fmt.Sprintf("metrics: histogram %s bounds must be sorted", f.name))
		}
	}
	f.children = make(map[string]*child)
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[f.name]; dup {
		panic(fmt.Sprintf("metrics: duplicate metric name %q", f.name))
	}
	r.byName[f.name] = f
	r.families = append(r.families, f)
	return f
}

// validName checks the exposition format's metric/label name grammar.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		alpha := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !alpha && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

// Counter registers and returns an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(&family{name: name, help: help, typ: "counter"})
	return f.get(nil).counter
}

// CounterVec registers a counter family with the given label names.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if len(labels) == 0 {
		panic(fmt.Sprintf("metrics: CounterVec %s needs labels (use Counter)", name))
	}
	return &CounterVec{r.register(&family{name: name, help: help, typ: "counter", labels: labels})}
}

// Gauge registers and returns an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(&family{name: name, help: help, typ: "gauge"})
	return f.get(nil).gauge
}

// GaugeVec registers a gauge family with the given label names.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if len(labels) == 0 {
		panic(fmt.Sprintf("metrics: GaugeVec %s needs labels (use Gauge)", name))
	}
	return &GaugeVec{r.register(&family{name: name, help: help, typ: "gauge", labels: labels})}
}

// Histogram registers and returns an unlabeled histogram with the
// given upper-bound buckets (a +Inf bucket is implicit).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	f := r.register(&family{name: name, help: help, typ: "histogram", bounds: bounds})
	return f.get(nil).hist
}

// HistogramVec registers a histogram family with the given buckets and
// label names.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	if len(labels) == 0 {
		panic(fmt.Sprintf("metrics: HistogramVec %s needs labels (use Histogram)", name))
	}
	return &HistogramVec{r.register(&family{name: name, help: help, typ: "histogram", bounds: bounds, labels: labels})}
}

// WritePrometheus renders every family in registration order in the
// text exposition format. Values are read with atomic loads but not
// snapshotted as a set: a scrape racing live traffic can see bucket
// counts mid-update relative to each other, which Prometheus's
// ingestion model tolerates (counters only move forward).
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, len(r.families))
	copy(fams, r.families)
	r.mu.Unlock()
	var b strings.Builder
	for _, f := range fams {
		b.Reset()
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, strings.ReplaceAll(f.help, "\n", " "))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		f.mu.RLock()
		for _, key := range f.order {
			c := f.children[key]
			switch f.typ {
			case "histogram":
				writeHistogram(&b, f.name, c)
			case "gauge":
				fmt.Fprintf(&b, "%s%s %s\n", f.name, c.rendered, formatFloat(c.gauge.Value()))
			default:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, c.rendered, c.counter.Value())
			}
		}
		f.mu.RUnlock()
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// writeHistogram renders one histogram child: cumulative le buckets,
// then _sum and _count.
func writeHistogram(b *strings.Builder, name string, c *child) {
	h := c.hist
	cum := uint64(0)
	for i, bound := range h.bounds {
		cum += h.buckets[i].Load()
		fmt.Fprintf(b, "%s_bucket%s %d\n", name, mergeLabel(c.rendered, "le", formatFloat(bound)), cum)
	}
	cum += h.buckets[len(h.bounds)].Load()
	fmt.Fprintf(b, "%s_bucket%s %d\n", name, mergeLabel(c.rendered, "le", "+Inf"), cum)
	fmt.Fprintf(b, "%s_sum%s %s\n", name, c.rendered, formatFloat(h.Sum()))
	fmt.Fprintf(b, "%s_count%s %d\n", name, c.rendered, h.Count())
}

// mergeLabel appends one label pair to an already-rendered label set.
func mergeLabel(rendered, name, value string) string {
	pair := name + `="` + value + `"`
	if rendered == "" {
		return "{" + pair + "}"
	}
	return rendered[:len(rendered)-1] + "," + pair + "}"
}

// formatFloat renders a float the way the exposition format expects:
// shortest round-trip representation, integral values without a
// trailing ".0".
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
