package metrics

import (
	"regexp"
	"strings"
	"sync"
	"testing"
)

func TestCounterAndVec(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits_total", "plain hits")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	v := r.CounterVec("queries_total", "queries by kind", "kind", "status")
	v.With("bfs", "ok").Add(3)
	v.With("bfs", "ok").Inc()
	v.With("cc", "error").Inc()
	if got := v.With("bfs", "ok").Value(); got != 4 {
		t.Fatalf("vec child = %d, want 4", got)
	}
	if got := v.With("cc", "error").Value(); got != 1 {
		t.Fatalf("vec child = %d, want 1", got)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("sizes", "batch sizes", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 2, 4, 100} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
	if h.Sum() != 0.5+1+1.5+2+4+100 {
		t.Fatalf("sum = %v", h.Sum())
	}
	// A value exactly on a bound belongs to that bound's bucket
	// (le is <=): buckets are {<=1: 2, <=2: 4, <=4: 5, +Inf: 6}
	// cumulatively.
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`sizes_bucket{le="1"} 2`,
		`sizes_bucket{le="2"} 4`,
		`sizes_bucket{le="4"} 5`,
		`sizes_bucket{le="+Inf"} 6`,
		`sizes_count 6`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "first")
	v := r.CounterVec("b_total", "second", "kind")
	v.With("x").Inc()
	hv := r.HistogramVec("lat_seconds", "latency", []float64{0.1, 1}, "kind")
	hv.With("y").Observe(0.05)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP a_total first\n# TYPE a_total counter\na_total 0\n",
		"# TYPE b_total counter\n" + `b_total{kind="x"} 1`,
		`lat_seconds_bucket{kind="y",le="0.1"} 1`,
		`lat_seconds_sum{kind="y"} 0.05`,
		`lat_seconds_count{kind="y"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Families render in registration order.
	if strings.Index(out, "a_total") > strings.Index(out, "b_total") {
		t.Fatalf("families out of registration order:\n%s", out)
	}
	// Every non-comment line must parse as `name{labels} value`.
	line := regexp.MustCompile(`^[A-Za-z_][A-Za-z0-9_]*(\{[^{}]*\})? [0-9eE+.induIfna-]+$`)
	for _, l := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(l, "#") {
			continue
		}
		if !line.MatchString(l) {
			t.Fatalf("unparseable exposition line %q", l)
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("esc_total", "", "name")
	v.With("a\"b\\c\nd").Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `esc_total{name="a\"b\\c\nd"} 1`) {
		t.Fatalf("label not escaped:\n%s", b.String())
	}
}

func TestRegistrationPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: no panic", name)
			}
		}()
		fn()
	}
	r := NewRegistry()
	r.Counter("dup_total", "")
	mustPanic("duplicate name", func() { r.Counter("dup_total", "") })
	mustPanic("bad name", func() { r.Counter("0bad", "") })
	mustPanic("bad label", func() { r.CounterVec("ok_total", "", "bad-label") })
	mustPanic("unsorted bounds", func() { r.Histogram("h", "", []float64{2, 1}) })
	mustPanic("empty bounds", func() { r.Histogram("h2", "", nil) })
	mustPanic("label arity", func() {
		v := r.CounterVec("arity_total", "", "a", "b")
		v.With("only-one")
	})
}

func TestBucketHelpers(t *testing.T) {
	exp := ExponentialBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if exp[i] != want[i] {
			t.Fatalf("exponential = %v", exp)
		}
	}
	lin := LinearBuckets(0, 0.5, 3)
	wantLin := []float64{0, 0.5, 1}
	for i := range wantLin {
		if lin[i] != wantLin[i] {
			t.Fatalf("linear = %v", lin)
		}
	}
}

// TestConcurrentObserve hammers one counter and one histogram from
// many goroutines; exact totals prove no update is lost and -race
// proves the paths are clean.
func TestConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	c := r.CounterVec("conc_total", "", "kind")
	h := r.Histogram("conc_sizes", "", []float64{4, 16, 64})
	const workers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.With("k").Inc()
				h.Observe(float64(i % 100))
			}
		}(w)
	}
	wg.Wait()
	if got := c.With("k").Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	if h.Count() != workers*per {
		t.Fatalf("histogram count = %d, want %d", h.Count(), workers*per)
	}
	var sum float64
	for i := 0; i < per; i++ {
		sum += float64(i % 100)
	}
	if h.Sum() != sum*workers {
		t.Fatalf("histogram sum = %v, want %v", h.Sum(), sum*workers)
	}
}
