package exp

// Extension experiments: the algorithm families the paper's §1 predicts
// the findings extend to. Three exhibits:
//
//   - Bellman-Ford (shortest-path family, weighted SV twin): simulated
//     branch/misprediction/time ratios on representative platforms — the
//     SV result transfers;
//   - Brandes betweenness centrality (BFS-family, heavier): native store
//     counters — the BFS store blow-up transfers (and doubles);
//   - APSP by repeated BFS: whole-sweep native timings of both kernels
//     plus the distance summary, the |V|-fold amplification of the BFS
//     trade-off.

import (
	"fmt"
	"io"
	"time"

	"bagraph/internal/apsp"
	"bagraph/internal/bc"
	"bagraph/internal/corpus"
	"bagraph/internal/graph"
	"bagraph/internal/perfsim"
	"bagraph/internal/report"
	"bagraph/internal/simkern"
	"bagraph/internal/uarch"
	"bagraph/internal/xrand"
)

// weightedStandIn attaches deterministic symmetric weights in [1, 64] to
// a corpus graph.
func weightedStandIn(g *graph.Graph, seed uint64) (*graph.Weighted, error) {
	return graph.AttachWeights(g, xrand.SymmetricWeights(64, seed))
}

// ExtensionSSSP renders the Bellman-Ford extension table.
func ExtensionSSSP(w io.Writer, opt Options) error {
	opt = opt.WithDefaults()
	ds, err := corpus.Subset(opt.Graphs)
	if err != nil {
		return err
	}
	report.Section(w, "Extension: branch-avoiding Bellman-Ford (weighted SV analogue, paper §1)")
	t := report.NewTable("simulated; speedup = branch-based time / branch-avoiding time",
		"Platform", "Graph", "passes", "branch ratio", "mispred ratio", "store ratio", "speedup")
	platforms := []string{"Haswell", "Bonnell"}
	for _, d := range ds {
		g := d.Generate(opt.Scale, opt.Seed)
		wg, err := weightedStandIn(g, opt.Seed)
		if err != nil {
			return err
		}
		for _, pname := range platforms {
			model, ok := uarch.ByName(pname)
			if !ok {
				return fmt.Errorf("exp: unknown platform %q", pname)
			}
			rBB := simkern.BellmanFordBranchBased(perfsim.NewDefault(model), wg, 0)
			rBA := simkern.BellmanFordBranchAvoiding(perfsim.NewDefault(model), wg, 0)
			bb, ba := rBB.PerPass.Total(), rBA.PerPass.Total()
			t.Add(pname, d.Name, fmt.Sprint(rBB.Passes),
				fmt.Sprintf("%.2f", float64(bb.Branches)/float64(ba.Branches)),
				fmt.Sprintf("%.2f", float64(bb.Mispredicts)/float64(ba.Mispredicts)),
				fmt.Sprintf("%.2f", float64(ba.Stores)/float64(bb.Stores)),
				report.Ratio(model.Seconds(bb)/model.Seconds(ba)))
		}
	}
	t.Render(w)
	return nil
}

// ExtensionBC renders the betweenness-centrality extension table. BC is
// O(|V|·|E|), so it runs on the two smallest corpus graphs regardless of
// the option's graph list.
func ExtensionBC(w io.Writer, opt Options) error {
	opt = opt.WithDefaults()
	report.Section(w, "Extension: branch-avoiding Brandes betweenness centrality (paper §1)")
	t := report.NewTable("native kernels; the BFS store blow-up transfers to the forward phase",
		"Graph", "|V|", "|E|", "BB stores", "BA stores", "store ratio", "BB time", "BA time")
	for _, name := range []string{"cond-mat-2005", "coAuthorsDBLP"} {
		d, ok := corpus.ByName(name)
		if !ok {
			return fmt.Errorf("exp: missing corpus graph %q", name)
		}
		// Quarter scale: BC is quadratic-ish and this is a demonstration.
		g := d.Generate(opt.Scale/4, opt.Seed)

		start := time.Now()
		bbVals, bbSt := bc.BranchBased(g)
		bbTime := time.Since(start)

		start = time.Now()
		baVals, baSt := bc.BranchAvoiding(g)
		baTime := time.Since(start)

		for v := range bbVals {
			if bbVals[v] != baVals[v] {
				return fmt.Errorf("exp: BC variants disagree on %s at vertex %d", name, v)
			}
		}
		bbStores := bbSt.DistStores + bbSt.SigmaStores + bbSt.QueueStores
		baStores := baSt.DistStores + baSt.SigmaStores + baSt.QueueStores
		t.Add(d.Name, fmt.Sprint(g.NumVertices()), fmt.Sprint(g.NumEdges()),
			fmt.Sprint(bbStores), fmt.Sprint(baStores),
			fmt.Sprintf("%.1fx", float64(baStores)/float64(bbStores)),
			fmt.Sprint(bbTime.Round(time.Microsecond)),
			fmt.Sprint(baTime.Round(time.Microsecond)))
	}
	t.Render(w)
	return nil
}

// ExtensionAPSP renders the all-pairs extension table.
func ExtensionAPSP(w io.Writer, opt Options) error {
	opt = opt.WithDefaults()
	report.Section(w, "Extension: APSP by repeated BFS (paper §1's APSP family)")
	t := report.NewTable("native kernels; |V| BFS sweeps per cell",
		"Graph", "|V|", "diameter", "radius", "mean dist", "BB sweep", "BA sweep")
	for _, name := range []string{"cond-mat-2005", "auto"} {
		d, ok := corpus.ByName(name)
		if !ok {
			return fmt.Errorf("exp: missing corpus graph %q", name)
		}
		g := d.Generate(opt.Scale/4, opt.Seed)

		start := time.Now()
		rBB := apsp.Summary(g, apsp.BranchBased)
		bbTime := time.Since(start)

		start = time.Now()
		rBA := apsp.Summary(g, apsp.BranchAvoiding)
		baTime := time.Since(start)

		if rBB.Diameter != rBA.Diameter || rBB.ReachablePairs != rBA.ReachablePairs {
			return fmt.Errorf("exp: APSP variants disagree on %s", name)
		}
		t.Add(d.Name, fmt.Sprint(g.NumVertices()),
			fmt.Sprint(rBB.Diameter), fmt.Sprint(rBB.Radius),
			fmt.Sprintf("%.2f", rBB.MeanDistance),
			fmt.Sprint(bbTime.Round(time.Microsecond)),
			fmt.Sprint(baTime.Round(time.Microsecond)))
	}
	t.Render(w)
	return nil
}

// Extensions runs all three extension exhibits.
func Extensions(w io.Writer, opt Options) error {
	if err := ExtensionSSSP(w, opt); err != nil {
		return err
	}
	if err := ExtensionBC(w, opt); err != nil {
		return err
	}
	return ExtensionAPSP(w, opt)
}
