package exp

// Ablations for the design choices DESIGN.md calls out:
//
//  1. Predictor model — re-run the branch-based SV kernel under the
//     predictor zoo (1-bit, static, gshare) to show the 2-bit model's
//     misprediction profile is the operative one.
//  2. Store cost — the BFS result hinges on the per-store charge; since
//     event counts are cost-independent, the sweep reprices the recorded
//     event series under varying store costs and reports where the
//     branch-avoiding kernel starts winning (the paper's §7 speculation
//     about microarchitectural store resources).
//  3. Conditional-move cost — same repricing for SV on the in-order
//     Bonnell model, which explains the paper's Bonnell counter-example.

import (
	"fmt"
	"io"
	"sort"

	"bagraph/internal/corpus"
	"bagraph/internal/perfsim"
	"bagraph/internal/predictor"
	"bagraph/internal/report"
	"bagraph/internal/simkern"
	"bagraph/internal/uarch"
)

// AblationPredictors runs branch-based SV under every predictor model on
// one graph and reports total mispredictions.
func AblationPredictors(w io.Writer, opt Options) error {
	opt = opt.WithDefaults()
	ds, err := corpus.Subset(opt.Graphs[:1])
	if err != nil {
		return err
	}
	g := ds[0].Generate(opt.Scale, opt.Seed)
	model, _ := uarch.ByName("Haswell")

	report.Section(w, fmt.Sprintf("Ablation 1: predictor model (branch-based SV on %s, Haswell)", g.Name()))
	t := report.NewTable("", "Predictor", "branches", "mispredictions", "miss rate", "sim time")

	cat := predictor.Catalog()
	names := make([]string, 0, len(cat))
	for name := range cat {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		m := perfsim.New(model, cat[name]())
		r := simkern.SVBranchBased(m, g)
		tot := r.Total()
		t.Add(name, fmt.Sprint(tot.Branches), fmt.Sprint(tot.Mispredicts),
			fmt.Sprintf("%.2f%%", 100*tot.MissRate()),
			fmt.Sprintf("%.3gms", model.Seconds(tot)*1e3))
	}
	t.Render(w)
	return nil
}

// AblationStoreCost sweeps the per-store charge and reports the BFS BB/BA
// speedup under each, locating the crossover where cheap stores make the
// branch-avoiding kernel win.
func AblationStoreCost(w io.Writer, opt Options) error {
	opt = opt.WithDefaults()
	ds, err := corpus.Subset(opt.Graphs)
	if err != nil {
		return err
	}
	model, _ := uarch.ByName("Haswell")
	costs := []float64{0, 0.25, 0.5, 1, 2, 4}

	report.Section(w, "Ablation 2: store cost vs branch-avoiding BFS viability (Haswell geometry)")
	headers := []string{"Graph"}
	for _, c := range costs {
		headers = append(headers, fmt.Sprintf("cost=%.2g", c))
	}
	t := report.NewTable("cells: BFS speedup (BB time / BA time); >1 means branch-avoiding wins", headers...)

	for _, d := range ds {
		g := d.Generate(opt.Scale, opt.Seed)
		rBB := simkern.BFSBranchBased(perfsim.NewDefault(model), g, 0)
		rBA := simkern.BFSBranchAvoiding(perfsim.NewDefault(model), g, 0)
		cells := []string{d.Name}
		for _, c := range costs {
			m := model
			m.StoreCost = c
			cells = append(cells, report.Ratio(m.Seconds(rBB.Total())/m.Seconds(rBA.Total())))
		}
		t.Add(cells...)
	}
	t.Render(w)
	return nil
}

// AblationCmovCost sweeps the predicated-operation cost on the in-order
// Bonnell model and reports the SV BB/BA speedup — the knob behind the
// paper's "branch-based 20% faster on Bonnell" counter-example.
func AblationCmovCost(w io.Writer, opt Options) error {
	opt = opt.WithDefaults()
	ds, err := corpus.Subset(opt.Graphs)
	if err != nil {
		return err
	}
	model, _ := uarch.ByName("Bonnell")
	costs := []float64{0, 1, 2, 3, 4, 6}

	report.Section(w, "Ablation 3: conditional-move cost vs branch-avoiding SV viability (Bonnell geometry)")
	headers := []string{"Graph"}
	for _, c := range costs {
		headers = append(headers, fmt.Sprintf("cost=%.2g", c))
	}
	t := report.NewTable("cells: SV speedup (BB time / BA time); >1 means branch-avoiding wins", headers...)

	for _, d := range ds {
		g := d.Generate(opt.Scale, opt.Seed)
		rBB := simkern.SVBranchBased(perfsim.NewDefault(model), g)
		rBA := simkern.SVBranchAvoiding(perfsim.NewDefault(model), g)
		cells := []string{d.Name}
		for _, c := range costs {
			m := model
			m.CondMoveExtra = c
			cells = append(cells, report.Ratio(m.Seconds(rBB.Total())/m.Seconds(rBA.Total())))
		}
		t.Add(cells...)
	}
	t.Render(w)
	return nil
}

// Ablations runs all three.
func Ablations(w io.Writer, opt Options) error {
	if err := AblationPredictors(w, opt); err != nil {
		return err
	}
	if err := AblationStoreCost(w, opt); err != nil {
		return err
	}
	return AblationCmovCost(w, opt)
}
