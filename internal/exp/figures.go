package exp

// Renderers for the paper's tables and figures. Each function writes the
// textual equivalent of one exhibit to w.

import (
	"fmt"
	"io"

	"bagraph/internal/bounds"
	"bagraph/internal/corpus"
	"bagraph/internal/gen"
	"bagraph/internal/perfcount"
	"bagraph/internal/predictor"
	"bagraph/internal/report"
	"bagraph/internal/uarch"
)

// Table1 prints the system catalog (paper Table 1) plus the simulation
// cost parameters this reproduction adds.
func Table1(w io.Writer) {
	report.Section(w, "Table 1: Systems used in experiments")
	t := report.NewTable("",
		"Microarchitecture", "ISA", "Processor", "GHz", "L1", "L2", "L3", "DRAM",
		"CPI", "MissPenalty", "CmovExtra", "StoreCost")
	for _, m := range uarch.Systems() {
		l3 := "-"
		if m.HasL3() {
			l3 = fmt.Sprintf("%d KB", m.L3.SizeBytes>>10)
		}
		t.AddF(m.Name, m.ISA, m.Processor, m.FreqGHz,
			fmt.Sprintf("%d KB", m.L1.SizeBytes>>10),
			fmt.Sprintf("%d KB", m.L2.SizeBytes>>10), l3, m.DRAM,
			m.CPI, m.MispredictPenalty, m.CondMoveExtra, m.StoreCost)
	}
	t.Render(w)
}

// Table2 prints the graph corpus (paper Table 2) with both the paper's
// sizes and the generated stand-in sizes at the selected scale.
func Table2(w io.Writer, opt Options) error {
	opt = opt.WithDefaults()
	report.Section(w, fmt.Sprintf("Table 2: Graph corpus (DIMACS-10 stand-ins, scale %g)", opt.Scale))
	t := report.NewTable("",
		"Name", "Type", "|V| (paper)", "|E| (paper)", "|V| (gen)", "|E| (gen)", "deg (paper)", "deg (gen)", "diam (gen)")
	ds, err := corpus.Subset(opt.Graphs)
	if err != nil {
		return err
	}
	for _, d := range ds {
		g := d.Generate(opt.Scale, opt.Seed)
		t.AddF(d.Name, d.Class, d.PaperV, d.PaperE,
			g.NumVertices(), g.NumEdges(),
			2*float64(d.PaperE)/float64(d.PaperV), g.Degrees().Mean,
			g.PseudoDiameter())
	}
	t.Render(w)
	return nil
}

// Fig1 prints the 2-bit predictor finite-state automaton (paper Fig. 1).
func Fig1(w io.Writer) {
	report.Section(w, "Fig 1: 2-bit branch predictor FSA")
	t := report.NewTable("", "State", "Predicts", "on Taken ->", "on Not-Taken ->")
	states := []predictor.State{
		predictor.StronglyNotTaken, predictor.WeaklyNotTaken,
		predictor.WeaklyTaken, predictor.StronglyTaken,
	}
	for _, s := range states {
		pred := "not taken"
		if s.Predict() {
			pred = "taken"
		}
		t.Add(s.String(), pred, s.Next(true).String(), s.Next(false).String())
	}
	t.Render(w)
}

// Fig2 demonstrates component-label propagation over SV iterations on a
// small connected graph (paper Fig. 2): each row is the label array after
// one pass.
func Fig2(w io.Writer) {
	report.Section(w, "Fig 2: connected-component id propagation across SV iterations")
	// A ring of 8 vertices with ids scrambled so propagation takes
	// several passes, mirroring the paper's multi-step convergence.
	g := gen.Cycle(8)
	n := g.NumVertices()
	labels := make([]uint32, n)
	for i := range labels {
		labels[i] = uint32(i)
	}
	fmt.Fprintf(w, "graph: %s\n", g)
	fmt.Fprintf(w, "pass 0 (init): %v\n", labels)
	for pass := 1; ; pass++ {
		change := false
		for v := 0; v < n; v++ {
			cv := labels[v]
			for _, u := range g.Neighbors(uint32(v)) {
				if labels[u] < cv {
					cv = labels[u]
					labels[v] = cv
					change = true
				}
			}
		}
		if !change {
			fmt.Fprintf(w, "pass %d: %v (no change; converged, %d component)\n",
				pass, labels, countDistinct(labels))
			break
		}
		fmt.Fprintf(w, "pass %d: %v\n", pass, labels)
	}
}

func countDistinct(labels []uint32) int {
	seen := map[uint32]struct{}{}
	for _, l := range labels {
		seen[l] = struct{}{}
	}
	return len(seen)
}

// seriesRatios normalizes a per-iteration float series by the minimum of
// the reference series, the paper's figure normalization.
func seriesRatios(vals []float64, refMin float64) []float64 {
	out := make([]float64, len(vals))
	for i, v := range vals {
		out[i] = v / refMin
	}
	return out
}

func minOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

func firstMinLast(xs []float64) (first, min, last float64) {
	return xs[0], minOf(xs), xs[len(xs)-1]
}

// svSeries extracts a per-iteration metric from an SVRun.
func svMetric(series perfcount.Series, pick func(perfcount.Counters) float64) []float64 {
	out := make([]float64, len(series))
	for i, c := range series {
		out[i] = pick(c)
	}
	return out
}

// renderPerIterFigure renders one Fig-3-style block: for each
// (platform, graph), the BB and BA per-iteration curves normalized to
// min(BB), with the totals ratio annotated.
func renderPerIterFigure(w io.Writer, title, unit string, rows []perIterRow) {
	report.Section(w, title)
	t := report.NewTable(fmt.Sprintf("curves normalized to min of branch-based %s; ratio = total BB / total BA", unit),
		"Platform", "Graph", "iters", "branch-based", "first/min/last", "branch-avoiding", "first/min/last", "ratio")
	for _, r := range rows {
		nbb := seriesRatios(r.bb, minOf(r.bb))
		nba := seriesRatios(r.ba, minOf(r.bb))
		f1, m1, l1 := firstMinLast(nbb)
		f2, m2, l2 := firstMinLast(nba)
		t.Add(r.platform, r.graph, fmt.Sprint(len(r.bb)),
			report.Sparkline(nbb), fmt.Sprintf("%.2f/%.2f/%.2f", f1, m1, l1),
			report.Sparkline(nba), fmt.Sprintf("%.2f/%.2f/%.2f", f2, m2, l2),
			report.Ratio(sum(r.bb)/sum(r.ba)))
	}
	t.Render(w)
}

type perIterRow struct {
	platform, graph string
	bb, ba          []float64
}

func svRows(runs []SVRun, pick func(SVRun) (bb, ba []float64)) []perIterRow {
	rows := make([]perIterRow, len(runs))
	for i, r := range runs {
		bb, ba := pick(r)
		rows[i] = perIterRow{r.Platform, r.Graph, bb, ba}
	}
	return rows
}

func bfsRows(runs []BFSRun, pick func(BFSRun) (bb, ba []float64)) []perIterRow {
	rows := make([]perIterRow, len(runs))
	for i, r := range runs {
		bb, ba := pick(r)
		rows[i] = perIterRow{r.Platform, r.Graph, bb, ba}
	}
	return rows
}

// Fig3 renders SV time per iteration (paper Fig. 3).
func Fig3(w io.Writer, runs []SVRun) {
	renderPerIterFigure(w, "Fig 3: Shiloach-Vishkin time per iteration", "time",
		svRows(runs, func(r SVRun) ([]float64, []float64) { return r.BBTime, r.BATime }))
}

// Fig4 renders SV branches per iteration (paper Fig. 4).
func Fig4(w io.Writer, runs []SVRun) {
	pickB := func(c perfcount.Counters) float64 { return float64(c.Branches) }
	renderPerIterFigure(w, "Fig 4: Shiloach-Vishkin branches per iteration", "branches",
		svRows(runs, func(r SVRun) ([]float64, []float64) {
			return svMetric(r.BB, pickB), svMetric(r.BA, pickB)
		}))
}

// Fig5 renders SV branch mispredictions per iteration (paper Fig. 5).
func Fig5(w io.Writer, runs []SVRun) {
	pickM := func(c perfcount.Counters) float64 { return float64(c.Mispredicts) }
	renderPerIterFigure(w, "Fig 5: Shiloach-Vishkin mispredictions per iteration", "mispredictions",
		svRows(runs, func(r SVRun) ([]float64, []float64) {
			return svMetric(r.BB, pickM), svMetric(r.BA, pickM)
		}))
}

// Fig6 renders BFS time per level (paper Fig. 6).
func Fig6(w io.Writer, runs []BFSRun) {
	renderPerIterFigure(w, "Fig 6: top-down BFS time per level", "time",
		bfsRows(runs, func(r BFSRun) ([]float64, []float64) { return r.BBTime, r.BATime }))
}

// Fig7 renders BFS branches per level (paper Fig. 7).
func Fig7(w io.Writer, runs []BFSRun) {
	pickB := func(c perfcount.Counters) float64 { return float64(c.Branches) }
	renderPerIterFigure(w, "Fig 7: top-down BFS branches per level", "branches",
		bfsRows(runs, func(r BFSRun) ([]float64, []float64) {
			return svMetric(r.BB, pickB), svMetric(r.BA, pickB)
		}))
}

// Fig8 renders BFS mispredictions per level (paper Fig. 8).
func Fig8(w io.Writer, runs []BFSRun) {
	pickM := func(c perfcount.Counters) float64 { return float64(c.Mispredicts) }
	renderPerIterFigure(w, "Fig 8: top-down BFS mispredictions per level", "mispredictions",
		bfsRows(runs, func(r BFSRun) ([]float64, []float64) {
			return svMetric(r.BB, pickM), svMetric(r.BA, pickM)
		}))
}

// Fig9a renders SV total mispredictions relative to the analytic lower
// bound (paper Fig. 9a): the branch-avoiding kernel should sit near 1.0.
func Fig9a(w io.Writer, runs []SVRun) {
	report.Section(w, "Fig 9a: SV branch mispredictions relative to lower bound (y=1)")
	t := report.NewTable("", "Platform", "Graph", "lower bound", "branch-based", "branch-avoiding")
	for _, r := range runs {
		lb := bounds.SVLowerBound(r.Vertices, r.Iterations)
		t.Add(r.Platform, r.Graph, fmt.Sprint(lb),
			fmt.Sprintf("%.2f", bounds.Ratio(r.BB.Total().Mispredicts, lb)),
			fmt.Sprintf("%.2f", bounds.Ratio(r.BA.Total().Mispredicts, lb)))
	}
	t.Render(w)
}

// Fig9b renders BFS total mispredictions relative to the analytic bounds
// (paper Fig. 9b): lower bound at 1, upper bound at 3.
func Fig9b(w io.Writer, runs []BFSRun) {
	report.Section(w, "Fig 9b: BFS branch mispredictions relative to lower bound (y=1, upper bound y=3)")
	t := report.NewTable("", "Platform", "Graph", "lower bound", "branch-based", "branch-avoiding")
	for _, r := range runs {
		lb := bounds.BFSLowerBound(r.Reached)
		t.Add(r.Platform, r.Graph, fmt.Sprint(lb),
			fmt.Sprintf("%.2f", bounds.Ratio(r.BB.Total().Mispredicts, lb)),
			fmt.Sprintf("%.2f", bounds.Ratio(r.BA.Total().Mispredicts, lb)))
	}
	t.Render(w)
}

// Speedups prints the whole-run BB/BA time ratios per platform and graph —
// the numbers annotated in each subplot of Figs. 3 and 6.
func Speedups(w io.Writer, res *Results) {
	report.Section(w, "Headline speedups (branch-based time / branch-avoiding time; >1 favors branch-avoiding)")
	t := report.NewTable("", "Platform", "Graph", "SV speedup", "BFS speedup")
	bfsIdx := map[string]BFSRun{}
	for _, r := range res.BFS {
		bfsIdx[r.Platform+"/"+r.Graph] = r
	}
	for _, r := range res.SV {
		b, ok := bfsIdx[r.Platform+"/"+r.Graph]
		bfsCell := "-"
		if ok {
			bfsCell = report.Ratio(b.Speedup())
		}
		t.Add(r.Platform, r.Graph, report.Ratio(r.Speedup()), bfsCell)
	}
	t.Render(w)
}
