// Package exp drives the paper's experiments: every table and figure of
// the evaluation section (§6) has a runner here that prints the same
// rows/series the paper reports, using the simulated machines of
// internal/perfsim and the corpus of internal/corpus.
//
// The figures in the paper are per-iteration (SV) or per-level (BFS)
// curves of time, branches and branch mispredictions, normalized within
// each subplot to the fastest iteration of the branch-based kernel, with
// the whole-run speedup annotated. The runners reproduce exactly that
// normalization; curves are rendered as sparklines plus first/min/last
// values so shapes and crossovers are visible in text.
package exp

import (
	"fmt"

	"bagraph/internal/corpus"
	"bagraph/internal/graph"
	"bagraph/internal/par"
	"bagraph/internal/perfcount"
	"bagraph/internal/perfsim"
	"bagraph/internal/simkern"
	"bagraph/internal/uarch"
)

// Options configures an experiment run.
type Options struct {
	// Scale shrinks the corpus graphs; 1.0 approximates the paper's
	// sizes. The default 0.01 keeps a full 7-platform sweep in seconds.
	Scale float64
	// Seed drives every generator.
	Seed uint64
	// Graphs selects corpus datasets by name (default: all five).
	Graphs []string
	// Platforms selects uarch models by name (default: all seven).
	Platforms []string
	// Root is the BFS source vertex.
	Root uint32
	// Workers sizes the pool the graph×platform sweep cells run on;
	// < 1 means GOMAXPROCS. Each cell simulates on a fresh machine, so
	// results are identical at any width.
	Workers int
}

// WithDefaults fills unset fields.
func (o Options) WithDefaults() Options {
	if o.Scale == 0 {
		o.Scale = 0.01
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	if len(o.Graphs) == 0 {
		o.Graphs = corpus.Names()
	}
	if len(o.Platforms) == 0 {
		o.Platforms = uarch.Names()
	}
	return o
}

func (o Options) platforms() ([]uarch.Model, error) {
	models := make([]uarch.Model, 0, len(o.Platforms))
	for _, name := range o.Platforms {
		m, ok := uarch.ByName(name)
		if !ok {
			return nil, fmt.Errorf("exp: unknown platform %q (known: %v)", name, uarch.Names())
		}
		models = append(models, m)
	}
	return models, nil
}

func (o Options) graphs() ([]*graph.Graph, error) {
	ds, err := corpus.Subset(o.Graphs)
	if err != nil {
		return nil, err
	}
	gs := make([]*graph.Graph, len(ds))
	for i, d := range ds {
		gs[i] = d.Generate(o.Scale, o.Seed)
	}
	return gs, nil
}

// SVRun holds one (platform, graph) Shiloach-Vishkin measurement: the
// per-iteration event series of both kernels and their per-iteration
// simulated times.
type SVRun struct {
	Platform   string
	Graph      string
	Vertices   int
	Arcs       int64
	Iterations int
	BB, BA     perfcount.Series
	// BBTime/BATime are simulated seconds per iteration.
	BBTime, BATime []float64
}

// Speedup returns total branch-based time over total branch-avoiding time
// (the number annotated in each Fig. 3 subplot; >1 means branch-avoiding
// wins).
func (r SVRun) Speedup() float64 {
	return sum(r.BBTime) / sum(r.BATime)
}

// BFSRun holds one (platform, graph) BFS measurement.
type BFSRun struct {
	Platform       string
	Graph          string
	Vertices       int
	Arcs           int64
	Levels         int
	Reached        int
	LevelSizes     []int
	EdgesPerLevel  []int64
	BB, BA         perfcount.Series
	BBTime, BATime []float64
}

// Speedup returns total branch-based time over total branch-avoiding time
// (the Fig. 6 subplot annotation; <1 means branch-avoiding loses).
func (r BFSRun) Speedup() float64 {
	return sum(r.BBTime) / sum(r.BATime)
}

func sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

func secondsPer(model uarch.Model, series perfcount.Series) []float64 {
	out := make([]float64, len(series))
	for i, c := range series {
		out[i] = model.Seconds(c)
	}
	return out
}

// Results caches the expensive simulated sweeps so multiple figures can
// share one computation.
type Results struct {
	Opt Options
	SV  []SVRun
	BFS []BFSRun
}

// ComputeSV runs the SV sweep: every selected graph on every selected
// platform, branch-based and branch-avoiding, on fresh machines.
func ComputeSV(opt Options) ([]SVRun, error) {
	opt = opt.WithDefaults()
	models, err := opt.platforms()
	if err != nil {
		return nil, err
	}
	graphs, err := opt.graphs()
	if err != nil {
		return nil, err
	}
	// The sweep cells are independent (each simulates on a fresh
	// machine), so they fan out over a pool; runs stays in
	// graph-major, platform-minor order because cells are addressed by
	// index, not appended.
	runs := make([]SVRun, len(graphs)*len(models))
	errs := make([]error, len(runs))
	pool := par.NewPool(opt.Workers)
	defer pool.Close()
	pool.Run(len(runs), func(i int) {
		g, model := graphs[i/len(models)], models[i%len(models)]
		rBB := simkern.SVBranchBased(perfsim.NewDefault(model), g)
		rBA := simkern.SVBranchAvoiding(perfsim.NewDefault(model), g)
		if rBB.Iterations != rBA.Iterations {
			errs[i] = fmt.Errorf("exp: SV variants disagree on %s/%s: %d vs %d passes",
				model.Name, g.Name(), rBB.Iterations, rBA.Iterations)
			return
		}
		runs[i] = SVRun{
			Platform:   model.Name,
			Graph:      g.Name(),
			Vertices:   g.NumVertices(),
			Arcs:       g.NumArcs(),
			Iterations: rBB.Iterations,
			BB:         rBB.PerIter,
			BA:         rBA.PerIter,
			BBTime:     secondsPer(model, rBB.PerIter),
			BATime:     secondsPer(model, rBA.PerIter),
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return runs, nil
}

// ComputeBFS runs the BFS sweep.
func ComputeBFS(opt Options) ([]BFSRun, error) {
	opt = opt.WithDefaults()
	models, err := opt.platforms()
	if err != nil {
		return nil, err
	}
	graphs, err := opt.graphs()
	if err != nil {
		return nil, err
	}
	runs := make([]BFSRun, len(graphs)*len(models))
	pool := par.NewPool(opt.Workers)
	defer pool.Close()
	pool.Run(len(runs), func(i int) {
		g, model := graphs[i/len(models)], models[i%len(models)]
		root := opt.Root
		if int(root) >= g.NumVertices() {
			root = 0
		}
		rBB := simkern.BFSBranchBased(perfsim.NewDefault(model), g, root)
		rBA := simkern.BFSBranchAvoiding(perfsim.NewDefault(model), g, root)
		runs[i] = BFSRun{
			Platform:      model.Name,
			Graph:         g.Name(),
			Vertices:      g.NumVertices(),
			Arcs:          g.NumArcs(),
			Levels:        rBB.Levels,
			Reached:       rBB.Reached,
			LevelSizes:    rBB.LevelSizes,
			EdgesPerLevel: rBB.EdgesPerLevel,
			BB:            rBB.PerLevel,
			BA:            rBA.PerLevel,
			BBTime:        secondsPer(model, rBB.PerLevel),
			BATime:        secondsPer(model, rBA.PerLevel),
		}
	})
	return runs, nil
}

// Compute runs both sweeps.
func Compute(opt Options) (*Results, error) {
	sv, err := ComputeSV(opt)
	if err != nil {
		return nil, err
	}
	bfs, err := ComputeBFS(opt)
	if err != nil {
		return nil, err
	}
	return &Results{Opt: opt.WithDefaults(), SV: sv, BFS: bfs}, nil
}
