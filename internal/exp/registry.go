package exp

import (
	"fmt"
	"io"
	"sort"
)

// Runner regenerates one named experiment.
type Runner func(w io.Writer, opt Options) error

// Registry maps experiment names (as used by cmd/baexp -experiment) to
// runners. "all" runs every exhibit sharing one computed sweep.
func Registry() map[string]Runner {
	return map[string]Runner{
		"table1": func(w io.Writer, _ Options) error { Table1(w); return nil },
		"table2": Table2,
		"fig1":   func(w io.Writer, _ Options) error { Fig1(w); return nil },
		"fig2":   func(w io.Writer, _ Options) error { Fig2(w); return nil },
		"fig3":   withSV(func(w io.Writer, runs []SVRun) { Fig3(w, runs) }),
		"fig4":   withSV(func(w io.Writer, runs []SVRun) { Fig4(w, runs) }),
		"fig5":   withSV(func(w io.Writer, runs []SVRun) { Fig5(w, runs) }),
		"fig6":   withBFS(func(w io.Writer, runs []BFSRun) { Fig6(w, runs) }),
		"fig7":   withBFS(func(w io.Writer, runs []BFSRun) { Fig7(w, runs) }),
		"fig8":   withBFS(func(w io.Writer, runs []BFSRun) { Fig8(w, runs) }),
		"fig9a":  withSV(func(w io.Writer, runs []SVRun) { Fig9a(w, runs) }),
		"fig9b":  withBFS(func(w io.Writer, runs []BFSRun) { Fig9b(w, runs) }),
		"fig10": func(w io.Writer, opt Options) error {
			res, err := Compute(opt)
			if err != nil {
				return err
			}
			Fig10(w, res)
			return nil
		},
		"speedups": func(w io.Writer, opt Options) error {
			res, err := Compute(opt)
			if err != nil {
				return err
			}
			Speedups(w, res)
			return nil
		},
		"hybrid":     withSV(func(w io.Writer, runs []SVRun) { Hybrid(w, runs) }),
		"ablation":   Ablations,
		"extensions": Extensions,
		"all":        All,
	}
}

func withSV(f func(io.Writer, []SVRun)) Runner {
	return func(w io.Writer, opt Options) error {
		runs, err := ComputeSV(opt)
		if err != nil {
			return err
		}
		f(w, runs)
		return nil
	}
}

func withBFS(f func(io.Writer, []BFSRun)) Runner {
	return func(w io.Writer, opt Options) error {
		runs, err := ComputeBFS(opt)
		if err != nil {
			return err
		}
		f(w, runs)
		return nil
	}
}

// Names returns the registered experiment names, sorted.
func Names() []string {
	reg := Registry()
	names := make([]string, 0, len(reg))
	for n := range reg {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Run executes a named experiment.
func Run(name string, w io.Writer, opt Options) error {
	r, ok := Registry()[name]
	if !ok {
		return fmt.Errorf("exp: unknown experiment %q (known: %v)", name, Names())
	}
	return r(w, opt)
}

// All regenerates every exhibit, computing the simulated sweeps once.
func All(w io.Writer, opt Options) error {
	Table1(w)
	if err := Table2(w, opt); err != nil {
		return err
	}
	Fig1(w)
	Fig2(w)
	res, err := Compute(opt)
	if err != nil {
		return err
	}
	Fig3(w, res.SV)
	Fig4(w, res.SV)
	Fig5(w, res.SV)
	Fig6(w, res.BFS)
	Fig7(w, res.BFS)
	Fig8(w, res.BFS)
	Fig9a(w, res.SV)
	Fig9b(w, res.BFS)
	Fig10(w, res)
	Speedups(w, res)
	Hybrid(w, res.SV)
	if err := Ablations(w, opt); err != nil {
		return err
	}
	return Extensions(w, opt)
}
